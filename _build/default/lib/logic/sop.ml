type t = Cube.t list
(* Invariant: sorted by Cube.compare, no cube covered by another. *)

let zero = []
let one = [ Cube.universe ]

let of_cubes cubes =
  let sorted = List.sort_uniq Cube.compare cubes in
  (* Drop any cube covered by another (single-cube containment). *)
  let keep c =
    not (List.exists (fun d -> (not (Cube.equal c d)) && Cube.covers d c) sorted)
  in
  List.filter keep sorted

let cubes t = t
let num_cubes = List.length
let num_literals t = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t
let support t = List.fold_left (fun acc c -> acc lor Cube.support c) 0 t

let support_list t =
  let mask = support t in
  let rec go v acc =
    if v < 0 then acc else go (v - 1) (if mask land (1 lsl v) <> 0 then v :: acc else acc)
  in
  go (Cube.max_vars - 1) []

let is_zero t = t = []
let is_one t = match t with [ c ] -> Cube.is_universe c | [] | _ :: _ -> false
let lit v phase = [ Cube.lit v phase ]
let var v = lit v true
let sum a b = of_cubes (a @ b)

let product a b =
  let cubes =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.inter ca cb) b)
      a
  in
  of_cubes cubes

let cofactor t v phase =
  (* A cube carrying the opposite literal contradicts the assignment and is
     dropped; otherwise any literal on [v] is now satisfied and removed. *)
  let opposite = Cube.lit v (not phase) in
  t
  |> List.filter_map (fun c ->
         if Cube.covers opposite c then None else Some (Cube.remove_var c v))
  |> of_cubes

let map_vars f t =
  (* A non-injective renaming can merge literals (s AND s = s) or empty a
     cube (s AND s' = 0); both are handled, so aliased fanins are safe. *)
  t
  |> List.filter_map (fun c ->
         Cube.of_literals_merged
           (List.map (fun (v, ph) -> (f v, ph)) (Cube.literals c)))
  |> of_cubes

let divide_by_cube t c =
  let q, r =
    List.fold_left
      (fun (q, r) cu ->
        match Cube.divide cu c with
        | Some quot -> (quot :: q, r)
        | None -> (q, cu :: r))
      ([], []) t
  in
  (of_cubes q, of_cubes r)

let divide t d =
  match d with
  | [] -> invalid_arg "Sop.divide: divisor is zero"
  | first :: rest ->
    let q0, _ = divide_by_cube t first in
    let quotient =
      List.fold_left
        (fun acc c ->
          let qi, _ = divide_by_cube t c in
          (* Intersection of cube sets. *)
          List.filter (fun cu -> List.exists (Cube.equal cu) qi) acc)
        q0 rest
    in
    let quotient = of_cubes quotient in
    if is_zero quotient then (zero, t)
    else begin
      let covered = product quotient d in
      let remainder =
        List.filter (fun c -> not (List.exists (Cube.equal c) covered)) t
      in
      (quotient, of_cubes remainder)
    end

let largest_common_cube = function
  | [] -> Cube.universe
  | first :: rest -> List.fold_left Cube.common first rest

let make_cube_free t =
  let c = largest_common_cube t in
  if Cube.is_universe c then t
  else
    let q, _ = divide_by_cube t c in
    q

let is_cube_free t = Cube.is_universe (largest_common_cube t)

let pick_var t =
  (* Most frequent variable in the support — good Shannon splitting var. *)
  let counts = Array.make Cube.max_vars 0 in
  List.iter
    (fun c ->
      List.iter (fun (v, _) -> counts.(v) <- counts.(v) + 1) (Cube.literals c))
    t;
  let best = ref (-1) in
  Array.iteri (fun v n -> if n > 0 && (!best < 0 || n > counts.(!best)) then best := v) counts;
  !best

exception Too_big

let complement ?(max_cubes = 512) t =
  let rec go t =
    if is_zero t then one
    else if List.exists Cube.is_universe t then zero
    else
      match t with
      | [ c ] ->
        (* De Morgan on a single cube. *)
        of_cubes (List.map (fun (v, ph) -> Cube.lit v (not ph)) (Cube.literals c))
      | _ ->
        let v = pick_var t in
        let fpos = go (cofactor t v true) and fneg = go (cofactor t v false) in
        let r = sum (product (var v) fpos) (product (lit v false) fneg) in
        if num_cubes r > max_cubes then raise Too_big;
        r
  in
  match go t with r -> Some r | exception Too_big -> None

let split_on_var t v =
  let qpos = ref [] and qneg = ref [] and free = ref [] in
  List.iter
    (fun c ->
      if Cube.covers (Cube.lit v true) c then qpos := Cube.remove_var c v :: !qpos
      else if Cube.covers (Cube.lit v false) c then qneg := Cube.remove_var c v :: !qneg
      else free := c :: !free)
    t;
  (of_cubes !qpos, of_cubes !qneg, of_cubes !free)

let can_substitute ?(max_cubes = 512) t v g =
  let _, qneg, _ = split_on_var t v in
  (is_zero qneg || complement ~max_cubes g <> None)
  && num_cubes g * num_cubes t <= max_cubes

let substitute t v g =
  let qpos, qneg, free = split_on_var t v in
  let positive = product g qpos in
  let negative =
    if is_zero qneg then zero
    else
      match complement g with
      | Some gc -> product gc qneg
      | None -> invalid_arg "Sop.substitute: complement too large"
  in
  sum (sum positive negative) free

let eval t inputs = List.exists (fun c -> Cube.eval c inputs) t

let eval64 t inputs =
  List.fold_left (fun acc c -> Int64.logor acc (Cube.eval64 c inputs)) 0L t

let equal a b = List.length a = List.length b && List.for_all2 Cube.equal a b

let to_string ?names t =
  if is_zero t then "<0>"
  else String.concat " + " (List.map (Cube.to_string ?names) t)
