(** Technology-independent optimization (the "SIS" role in the paper).

    The passes minimize the factored-literal count of the network by
    algebraic restructuring: shared-divisor extraction (kernels and common
    cubes) plus node elimination. The paper's premise is that this
    unrestrained sharing, while optimal for cell area, creates high-fanout
    structure that congests routing — so this module is both a substrate
    (front end of every flow) and the "SIS" comparison subject of Tables
    1-5. *)

type stats = {
  live_nodes : int;
  literals : int;
}

val stats : Network.t -> stats

val eliminate : ?value_threshold:int -> Network.t -> int
(** Collapse nodes whose elimination "value" (extra literals created by
    collapsing) is at most the threshold (default 0) into their consumers.
    Returns the number of nodes eliminated. *)

val extract_common_cubes : ?max_rounds:int -> Network.t -> int
(** Repeatedly extract the best-value common cube as a new AND node.
    Considers both identical cubes shared across nodes (PLA product terms)
    and pairwise cube intersections within a node. Returns the number of
    divisor nodes created. *)

val extract_kernels : ?max_rounds:int -> ?max_node_cubes:int -> Network.t -> int
(** Repeatedly extract the best-value multi-cube kernel as a new node.
    Nodes with more than [max_node_cubes] cubes (default 40) are skipped as
    kernel sources (but still rewritten as uses). Returns the number of
    divisor nodes created. *)

val script_area : ?rounds:int -> Network.t -> unit
(** The aggressive area script: sweep, then alternate cube and kernel
    extraction with elimination, then sweep. Mirrors a SIS
    [script.algebraic] run in spirit. *)

val script_light : Network.t -> unit
(** Sweep only — the front end used for the "DAGON" baseline netlists. *)
