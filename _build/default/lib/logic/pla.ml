exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse text =
  let ni = ref (-1) and no = ref (-1) in
  let ilb = ref None and ob = ref None in
  let products : (int * string * string) list ref = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         let line = String.trim line in
         if line <> "" then begin
           match tokens line with
           | ".i" :: [ n ] -> ni := int_of_string n
           | ".o" :: [ n ] -> no := int_of_string n
           | ".p" :: [ _ ] -> ()
           | ".ilb" :: names -> ilb := Some (Array.of_list names)
           | ".ob" :: names -> ob := Some (Array.of_list names)
           | ".type" :: [ ("fr" | "f") ] -> ()
           | ".type" :: [ t ] -> fail !lineno ("unsupported PLA type " ^ t)
           | [ ".e" ] | [ ".end" ] -> ()
           | [ inp; out ] -> products := (!lineno, inp, out) :: !products
           | _ -> fail !lineno ("cannot parse: " ^ line)
         end);
  if !ni <= 0 || !no <= 0 then raise (Parse_error "missing .i or .o");
  if !ni > Cube.max_vars then raise (Parse_error "too many inputs (limit 60)");
  let in_names =
    match !ilb with
    | Some names when Array.length names = !ni -> names
    | Some _ -> raise (Parse_error ".ilb arity mismatch")
    | None -> Array.init !ni (fun i -> Printf.sprintf "in%d" i)
  in
  let out_names =
    match !ob with
    | Some names when Array.length names = !no -> names
    | Some _ -> raise (Parse_error ".ob arity mismatch")
    | None -> Array.init !no (fun i -> Printf.sprintf "out%d" i)
  in
  let net = Network.create ~pi_names:in_names in
  let per_output = Array.make !no [] in
  List.iter
    (fun (line, inp, out) ->
      if String.length inp <> !ni then fail line "input column width mismatch";
      if String.length out <> !no then fail line "output column width mismatch";
      let lits = ref [] in
      String.iteri
        (fun i c ->
          match c with
          | '1' -> lits := (i, true) :: !lits
          | '0' -> lits := (i, false) :: !lits
          | '-' | '~' -> ()
          | _ -> fail line (Printf.sprintf "bad input character %c" c))
        inp;
      let cube = Cube.of_literals !lits in
      String.iteri
        (fun o c ->
          match c with
          | '1' | '4' -> per_output.(o) <- cube :: per_output.(o)
          | '0' | '-' | '~' | '2' | '3' -> ()
          | _ -> fail line (Printf.sprintf "bad output character %c" c))
        out)
    (List.rev !products);
  Array.iteri
    (fun o cubes ->
      let fanins = Array.init !ni (fun i -> Network.Pi i) in
      let id = Network.add_node net fanins (Sop.of_cubes cubes) in
      Network.set_output net out_names.(o) (Network.Node id))
    per_output;
  net

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print net =
  let pis = Network.pi_names net in
  let ni = Array.length pis in
  let outs = Network.outputs net in
  let no = Array.length outs in
  (* Collect each output's cubes over primary inputs. *)
  let rows : (Cube.t, bytes) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun o (_, s) ->
      let node =
        match s with
        | Network.Node i -> Network.node net i
        | Network.Pi _ -> invalid_arg "Pla.print: output wired to an input"
      in
      Array.iter
        (function
          | Network.Pi _ -> ()
          | Network.Node _ -> invalid_arg "Pla.print: network is not two-level")
        node.Network.fanins;
      List.iter
        (fun c ->
          let global =
            Cube.of_literals
              (List.map
                 (fun (v, ph) ->
                   match node.Network.fanins.(v) with
                   | Network.Pi i -> (i, ph)
                   | Network.Node _ -> assert false)
                 (Cube.literals c))
          in
          let mask =
            match Hashtbl.find_opt rows global with
            | Some m -> m
            | None ->
              let m = Bytes.make no '0' in
              Hashtbl.add rows global m;
              order := global :: !order;
              m
          in
          Bytes.set mask o '1')
        (Sop.cubes node.Network.sop))
    outs;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" ni no);
  Buffer.add_string buf
    (".ilb " ^ String.concat " " (Array.to_list pis) ^ "\n");
  Buffer.add_string buf
    (".ob " ^ String.concat " " (List.map fst (Array.to_list outs)) ^ "\n");
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (Hashtbl.length rows));
  List.iter
    (fun cube ->
      let pat = Bytes.make ni '-' in
      List.iter
        (fun (v, ph) -> Bytes.set pat v (if ph then '1' else '0'))
        (Cube.literals cube);
      Buffer.add_string buf
        (Bytes.to_string pat ^ " " ^ Bytes.to_string (Hashtbl.find rows cube) ^ "\n"))
    (List.rev !order);
  Buffer.add_string buf ".e\n";
  Buffer.contents buf
