type t = {
  pos : int;
  neg : int;
}

let max_vars = 60
let universe = { pos = 0; neg = 0 }

let check_var v =
  if v < 0 || v >= max_vars then invalid_arg "Cube: variable out of range"

let lit v phase =
  check_var v;
  if phase then { pos = 1 lsl v; neg = 0 } else { pos = 0; neg = 1 lsl v }

let of_literals lits =
  List.fold_left
    (fun c (v, phase) ->
      check_var v;
      let bit = 1 lsl v in
      if (c.pos lor c.neg) land bit <> 0 then
        invalid_arg "Cube.of_literals: duplicate or contradictory literal";
      if phase then { c with pos = c.pos lor bit } else { c with neg = c.neg lor bit })
    universe lits

let of_literals_merged lits =
  let rec go c = function
    | [] -> Some c
    | (v, phase) :: rest ->
      check_var v;
      let bit = 1 lsl v in
      if (if phase then c.neg else c.pos) land bit <> 0 then None
      else
        go
          (if phase then { c with pos = c.pos lor bit }
           else { c with neg = c.neg lor bit })
          rest
  in
  go universe lits

let literals c =
  let rec collect v acc =
    if v < 0 then acc
    else
      let bit = 1 lsl v in
      let acc =
        if c.pos land bit <> 0 then (v, true) :: acc
        else if c.neg land bit <> 0 then (v, false) :: acc
        else acc
      in
      collect (v - 1) acc
  in
  collect (max_vars - 1) []

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let num_literals c = popcount c.pos + popcount c.neg
let support c = c.pos lor c.neg
let has_var c v = support c land (1 lsl v) <> 0
let is_universe c = c.pos = 0 && c.neg = 0

let inter a b =
  let pos = a.pos lor b.pos and neg = a.neg lor b.neg in
  if pos land neg <> 0 then None else Some { pos; neg }

let covers c d = c.pos land lnot d.pos = 0 && c.neg land lnot d.neg = 0

let divide c d =
  if covers d c then Some { pos = c.pos land lnot d.pos; neg = c.neg land lnot d.neg }
  else None

let remove_var c v =
  let bit = lnot (1 lsl v) in
  { pos = c.pos land bit; neg = c.neg land bit }

let common a b = { pos = a.pos land b.pos; neg = a.neg land b.neg }

let eval c inputs =
  let ok = ref true in
  List.iter (fun (v, phase) -> if inputs.(v) <> phase then ok := false) (literals c);
  !ok

let eval64 c inputs =
  List.fold_left
    (fun acc (v, phase) ->
      let bits = if phase then inputs.(v) else Int64.lognot inputs.(v) in
      Int64.logand acc bits)
    Int64.minus_one (literals c)

let compare a b =
  match Int.compare a.pos b.pos with 0 -> Int.compare a.neg b.neg | c -> c

let equal a b = a.pos = b.pos && a.neg = b.neg

let to_string ?names c =
  if is_universe c then "<1>"
  else
    literals c
    |> List.map (fun (v, phase) ->
           let base =
             match names with
             | Some arr when v < Array.length arr -> arr.(v)
             | Some _ | None -> Printf.sprintf "x%d" v
           in
           if phase then base else base ^ "'")
    |> String.concat " "
