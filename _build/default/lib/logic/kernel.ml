type t = {
  cokernel : Cube.t;
  kernel : Sop.t;
}

(* Classic recursive kernel enumeration (Brayton & McMullen).  [j] is the
   smallest variable allowed as the next co-kernel literal, preventing the
   same kernel from being produced along several literal orders. *)
let all f =
  let results = ref [] in
  let seen = Hashtbl.create 64 in
  let add cokernel kernel =
    let key = List.map Cube.literals (Sop.cubes kernel) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      results := { cokernel; kernel } :: !results
    end
  in
  let literal_count g v =
    List.fold_left
      (fun acc c -> if Cube.has_var c v then acc + 1 else acc)
      0 (Sop.cubes g)
  in
  let rec kernels j g cokernel =
    if Sop.num_cubes g >= 2 && Sop.is_cube_free g then add cokernel g;
    for v = j to Cube.max_vars - 1 do
      if literal_count g v >= 2 then begin
        (* Quotient by each phase of the literal that appears twice. *)
        List.iter
          (fun phase ->
            let c = Cube.lit v phase in
            let q, _ = Sop.divide_by_cube g c in
            if Sop.num_cubes q >= 2 then begin
              let lcc = Sop.largest_common_cube q in
              (* Skip when the largest common cube reuses an already-tried
                 variable: that kernel was found earlier. *)
              let reuses_smaller =
                List.exists (fun (u, _) -> u < v) (Cube.literals lcc)
              in
              if not reuses_smaller then begin
                let qfree = Sop.make_cube_free q in
                let full_co =
                  match Cube.inter cokernel c with
                  | Some base ->
                    (match Cube.inter base lcc with
                    | Some full -> Some full
                    | None -> None)
                  | None -> None
                in
                match full_co with
                | Some co -> kernels (v + 1) qfree co
                | None -> ()
              end
            end)
          [ true; false ]
      end
    done
  in
  if Sop.num_cubes f >= 2 then kernels 0 (Sop.make_cube_free f) Cube.universe;
  List.rev !results

let level0 f =
  let ks = all f in
  List.filter
    (fun k ->
      List.for_all
        (fun other ->
          Sop.equal other.kernel k.kernel
          || not
               (let q, _ = Sop.divide k.kernel other.kernel in
                not (Sop.is_zero q)))
        ks)
    ks

let literal_savings uses k =
  let kernel_lits = Sop.num_literals k.kernel in
  let kernel_cubes = Sop.num_cubes k.kernel in
  let occurrences =
    List.fold_left
      (fun acc f ->
        let q, _ = Sop.divide f k.kernel in
        acc + Sop.num_cubes q)
      0 uses
  in
  if occurrences = 0 then 0
  else
    (* Each occurrence replaces [kernel_cubes] cubes worth of literals by a
       single literal on the new node; the node body costs [kernel_lits]. *)
    (occurrences * (kernel_lits - 1)) - kernel_lits - kernel_cubes
