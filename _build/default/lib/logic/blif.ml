exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* Join continuation lines, strip comments, split into directive groups. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc pending lineno = function
    | [] ->
      let acc = match pending with Some (l, s) -> (l, s) :: acc | None -> acc in
      List.rev acc
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      let lineno = lineno + 1 in
      if line = "" then
        let acc = match pending with Some (l, s) -> (l, s) :: acc | None -> acc in
        join acc None lineno rest
      else if String.length line > 0 && line.[String.length line - 1] = '\\' then begin
        let chunk = String.sub line 0 (String.length line - 1) in
        match pending with
        | Some (l, s) -> join acc (Some (l, s ^ " " ^ chunk)) lineno rest
        | None -> join acc (Some (lineno, chunk)) lineno rest
      end
      else begin
        match pending with
        | Some (l, s) -> join ((l, s ^ " " ^ line) :: acc) None lineno rest
        | None -> join ((lineno, line) :: acc) None lineno rest
      end
  in
  join [] None 0 raw

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

type names_def = {
  line : int;
  inputs : string list;
  output : string;
  mutable covers : (string * char) list;  (** input pattern, output value *)
}

let parse text =
  let lines = logical_lines text in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, names_def) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let current = ref None in
  let finish () = current := None in
  List.iter
    (fun (lineno, line) ->
      match tokens line with
      | [] -> ()
      | tok :: rest -> (
        if String.length tok > 0 && tok.[0] = '.' then begin
          finish ();
          match tok with
          | ".model" -> ()
          | ".inputs" -> inputs := !inputs @ rest
          | ".outputs" -> outputs := !outputs @ rest
          | ".names" -> (
            match List.rev rest with
            | [] -> fail lineno ".names needs at least an output"
            | out :: rev_ins ->
              if Hashtbl.mem defs out then fail lineno ("redefinition of " ^ out);
              let def =
                { line = lineno; inputs = List.rev rev_ins; output = out; covers = [] }
              in
              Hashtbl.add defs out def;
              order := out :: !order;
              current := Some def)
          | ".end" -> ()
          | ".latch" | ".subckt" | ".gate" | ".mlatch" ->
            fail lineno (tok ^ " is not supported (combinational BLIF only)")
          | ".exdc" -> fail lineno ".exdc is not supported"
          | _ -> fail lineno ("unknown directive " ^ tok)
        end
        else begin
          match !current with
          | None -> fail lineno "cover line outside .names"
          | Some def ->
            let pattern, value =
              match tok :: rest with
              | [ v ] when def.inputs = [] -> ("", v)
              | [ p; v ] -> (p, v)
              | _ -> fail lineno "malformed cover line"
            in
            if String.length value <> 1 || (value <> "0" && value <> "1") then
              fail lineno "cover output must be 0 or 1";
            if String.length pattern <> List.length def.inputs then
              fail lineno "cover width does not match .names inputs";
            def.covers <- (pattern, value.[0]) :: def.covers
        end))
    lines;
  let inputs = !inputs and outputs = !outputs in
  let net = Network.create ~pi_names:(Array.of_list inputs) in
  let pi_index = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.add pi_index n i) inputs;
  let built : (string, Network.signal) Hashtbl.t = Hashtbl.create 256 in
  let building : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec signal_of name =
    match Hashtbl.find_opt built name with
    | Some s -> s
    | None -> (
      match Hashtbl.find_opt pi_index name with
      | Some i ->
        let s = Network.Pi i in
        Hashtbl.add built name s;
        s
      | None -> (
        match Hashtbl.find_opt defs name with
        | None -> raise (Parse_error ("undefined signal " ^ name))
        | Some def ->
          if Hashtbl.mem building name then
            fail def.line ("combinational cycle through " ^ name);
          Hashtbl.add building name ();
          let s = build_def def in
          Hashtbl.remove building name;
          Hashtbl.add built name s;
          s))
  and build_def def =
    let fanins = Array.of_list (List.map signal_of def.inputs) in
    if Array.length fanins > Cube.max_vars then
      fail def.line "node has too many fanins (limit 60)";
    let covers = List.rev def.covers in
    let values = List.map snd covers in
    (match List.sort_uniq compare values with
    | [] | [ _ ] -> ()
    | _ -> fail def.line "mixed on-set and off-set cover");
    let cube_of_pattern p =
      let lits = ref [] in
      String.iteri
        (fun i c ->
          match c with
          | '1' -> lits := (i, true) :: !lits
          | '0' -> lits := (i, false) :: !lits
          | '-' -> ()
          | _ -> fail def.line (Printf.sprintf "bad cover character %c" c))
        p;
      Cube.of_literals !lits
    in
    let sop = Sop.of_cubes (List.map (fun (p, _) -> cube_of_pattern p) covers) in
    let sop =
      match values with
      | '0' :: _ -> (
        match Sop.complement ~max_cubes:4096 sop with
        | Some c -> c
        | None -> fail def.line "off-set cover too large to complement")
      | _ -> sop
    in
    let id = Network.add_node net fanins sop in
    Network.Node id
  in
  List.iter
    (fun out -> Network.set_output net out (signal_of out))
    outputs;
  net

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print ?(model = "network") net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (".model " ^ model ^ "\n");
  let pis = Network.pi_names net in
  Buffer.add_string buf ".inputs";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) pis;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ".outputs";
  Array.iter (fun (n, _) -> Buffer.add_string buf (" " ^ n)) (Network.outputs net);
  Buffer.add_char buf '\n';
  let sig_name = function
    | Network.Pi i -> pis.(i)
    | Network.Node i -> Printf.sprintf "n%d" i
  in
  let emit_names out_name fanins sop =
    Buffer.add_string buf ".names";
    Array.iter (fun s -> Buffer.add_string buf (" " ^ sig_name s)) fanins;
    Buffer.add_string buf (" " ^ out_name ^ "\n");
    let nf = Array.length fanins in
    List.iter
      (fun c ->
        let pat = Bytes.make nf '-' in
        List.iter
          (fun (v, ph) -> Bytes.set pat v (if ph then '1' else '0'))
          (Cube.literals c);
        Buffer.add_string buf (Bytes.to_string pat ^ " 1\n"))
      (Sop.cubes sop)
  in
  List.iter
    (fun i ->
      let n = Network.node net i in
      emit_names (Printf.sprintf "n%d" i) n.Network.fanins n.Network.sop)
    (Network.topo_order net);
  Array.iter
    (fun (name, s) ->
      if name <> sig_name s then begin
        (* Output buffer aliasing the internal signal. *)
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" (sig_name s) name)
      end)
    (Network.outputs net);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model path net =
  let oc = open_out path in
  output_string oc (print ?model net);
  close_out oc
