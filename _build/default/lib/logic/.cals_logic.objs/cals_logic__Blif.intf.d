lib/logic/blif.mli: Network
