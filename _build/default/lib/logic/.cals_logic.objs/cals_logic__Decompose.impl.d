lib/logic/decompose.ml: Array Cals_netlist Factor Hashtbl List Network
