lib/logic/pla.mli: Network
