lib/logic/cube.mli:
