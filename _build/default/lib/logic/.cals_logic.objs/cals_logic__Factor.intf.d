lib/logic/factor.mli: Sop
