lib/logic/factor.ml: Array Cube Hashtbl Int64 Kernel List Option Printf Sop String
