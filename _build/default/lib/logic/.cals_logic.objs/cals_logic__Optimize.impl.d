lib/logic/optimize.ml: Array Cube Hashtbl Kernel List Network Option Sop
