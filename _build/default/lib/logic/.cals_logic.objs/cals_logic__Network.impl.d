lib/logic/network.ml: Array Cals_util Cube Hashtbl List Option Printf Sop
