lib/logic/sop.mli: Cube
