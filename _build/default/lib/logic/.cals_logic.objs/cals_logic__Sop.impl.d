lib/logic/sop.ml: Array Cube Int64 List String
