lib/logic/pla.ml: Array Buffer Bytes Cube Hashtbl List Network Printf Sop String
