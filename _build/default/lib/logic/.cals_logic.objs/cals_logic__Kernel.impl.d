lib/logic/kernel.ml: Cube Hashtbl List Sop
