lib/logic/optimize.mli: Network
