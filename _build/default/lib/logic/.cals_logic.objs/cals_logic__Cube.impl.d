lib/logic/cube.ml: Array Int Int64 List Printf String
