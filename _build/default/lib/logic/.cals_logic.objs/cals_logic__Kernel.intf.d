lib/logic/kernel.mli: Cube Sop
