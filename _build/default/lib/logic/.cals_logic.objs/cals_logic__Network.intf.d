lib/logic/network.mli: Cals_util Hashtbl Sop
