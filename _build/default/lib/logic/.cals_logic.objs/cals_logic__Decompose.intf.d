lib/logic/decompose.mli: Cals_netlist Network
