(** Decomposition of a Boolean network into the NAND2/INV subject graph.

    Each node's SOP is first factored ({!Factor.factor}); the factored form
    is then expanded into balanced trees of base gates. The subject builder
    strash-shares identical subexpressions, so product terms shared between
    outputs become multi-fanout base gates — the structure whose
    partitioning and covering the paper's mapper controls. *)

val subject_of_network : Network.t -> Cals_netlist.Subject.t
(** Primary inputs and outputs keep their names and order. *)

val factored_literals : Network.t -> int
(** Total factored-form literal count over live nodes (the area-estimation
    metric from the paper's Section 1 citations). *)
