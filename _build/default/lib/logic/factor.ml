type t =
  | Lit of int * bool
  | And of t list
  | Or of t list
  | Const of bool

let flatten_and fs =
  List.concat_map (function And gs -> gs | (Lit _ | Or _ | Const _) as f -> [ f ]) fs

let flatten_or fs =
  List.concat_map (function Or gs -> gs | (Lit _ | And _ | Const _) as f -> [ f ]) fs

let mk_and fs =
  match flatten_and fs with [] -> Const true | [ f ] -> f | fs -> And fs

let mk_or fs =
  match flatten_or fs with [] -> Const false | [ f ] -> f | fs -> Or fs

let of_cube c =
  mk_and (List.map (fun (v, ph) -> Lit (v, ph)) (Cube.literals c))

(* Most frequent literal — the quick-factor fallback divisor. *)
let best_literal f =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun lit ->
          Hashtbl.replace counts lit
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts lit)))
        (Cube.literals c))
    (Sop.cubes f);
  Hashtbl.fold
    (fun lit n best ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | Some _ | None -> if n >= 2 then Some (lit, n) else best)
    counts None

let rec factor f =
  if Sop.is_zero f then Const false
  else if Sop.is_one f then Const true
  else
    match Sop.cubes f with
    | [ c ] -> of_cube c
    | _ -> (
      (* Prefer a kernel divisor; otherwise the most common literal. *)
      let divisor =
        let kernels = Kernel.all f in
        let score k =
          let q, _ = Sop.divide f k.Kernel.kernel in
          (Sop.num_cubes q - 1) * (Sop.num_literals k.Kernel.kernel - 1)
        in
        let best =
          List.fold_left
            (fun acc k ->
              let s = score k in
              match acc with
              | Some (_, bs) when bs >= s -> acc
              | Some _ | None -> if s > 0 then Some (k.Kernel.kernel, s) else acc)
            None kernels
        in
        match best with
        | Some (d, _) -> Some d
        | None -> (
          match best_literal f with
          | Some ((v, ph), _) -> Some (Sop.lit v ph)
          | None -> None)
      in
      match divisor with
      | None -> mk_or (List.map of_cube (Sop.cubes f))
      | Some d ->
        let q, r = Sop.divide f d in
        if Sop.is_zero q then mk_or (List.map of_cube (Sop.cubes f))
        else begin
          (* f = d*q + r; factor the three pieces recursively. *)
          let fd = factor d and fq = factor q in
          let dq = mk_and [ fd; fq ] in
          if Sop.is_zero r then dq else mk_or [ dq; factor r ]
        end)

let rec num_literals = function
  | Lit _ -> 1
  | Const _ -> 0
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + num_literals f) 0 fs

let rec eval t inputs =
  match t with
  | Lit (v, ph) -> inputs.(v) = ph
  | Const b -> b
  | And fs -> List.for_all (fun f -> eval f inputs) fs
  | Or fs -> List.exists (fun f -> eval f inputs) fs

let rec eval64 t inputs =
  match t with
  | Lit (v, ph) -> if ph then inputs.(v) else Int64.lognot inputs.(v)
  | Const b -> if b then Int64.minus_one else 0L
  | And fs ->
    List.fold_left (fun acc f -> Int64.logand acc (eval64 f inputs)) Int64.minus_one fs
  | Or fs -> List.fold_left (fun acc f -> Int64.logor acc (eval64 f inputs)) 0L fs

let rec to_string ?names t =
  let name v =
    match names with
    | Some arr when v < Array.length arr -> arr.(v)
    | Some _ | None -> Printf.sprintf "x%d" v
  in
  match t with
  | Lit (v, true) -> name v
  | Lit (v, false) -> name v ^ "'"
  | Const true -> "1"
  | Const false -> "0"
  | And fs -> String.concat "*" (List.map (paren ?names) fs)
  | Or fs -> String.concat " + " (List.map (to_string ?names) fs)

and paren ?names t =
  match t with
  | Or _ -> "(" ^ to_string ?names t ^ ")"
  | Lit _ | And _ | Const _ -> to_string ?names t

let support_list t =
  let rec go acc = function
    | Lit (v, _) -> v :: acc
    | Const _ -> acc
    | And fs | Or fs -> List.fold_left go acc fs
  in
  List.sort_uniq compare (go [] t)
