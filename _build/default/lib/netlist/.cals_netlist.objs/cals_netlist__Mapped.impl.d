lib/netlist/mapped.ml: Array Buffer Cals_cell Cals_util Hashtbl List Option Printf String
