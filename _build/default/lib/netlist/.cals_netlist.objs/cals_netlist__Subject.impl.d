lib/netlist/subject.ml: Array Cals_util Hashtbl Int64 List
