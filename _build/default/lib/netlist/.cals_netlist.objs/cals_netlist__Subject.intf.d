lib/netlist/subject.mli: Cals_util
