lib/netlist/mapped.mli: Cals_cell Cals_util
