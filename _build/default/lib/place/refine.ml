module Geom = Cals_util.Geom

type stats = {
  swaps : int;
  passes : int;
  hpwl_before : float;
  hpwl_after : float;
}

(* Incremental HPWL bookkeeping: per net, recompute its bbox from scratch
   (nets are small on average; this keeps the code simple and correct). *)
let net_hpwl (hg : Hypergraph.t) positions ni =
  let box =
    Array.fold_left
      (fun b v -> Geom.bbox_add b positions.(v))
      Geom.bbox_empty hg.Hypergraph.nets.(ni)
  in
  Geom.half_perimeter box

let run ?(max_passes = 3) ~(hypergraph : Hypergraph.t) ~positions ~widths () =
  let hg = hypergraph in
  let n = Hypergraph.num_nodes hg in
  if Array.length positions <> n || Array.length widths <> n then
    invalid_arg "Refine.run: length mismatch";
  let hpwl_before = Hypergraph.hpwl hg positions in
  (* Node -> incident nets. *)
  let degree = Array.make n 0 in
  Array.iter
    (fun net -> Array.iter (fun v -> degree.(v) <- degree.(v) + 1) net)
    hg.Hypergraph.nets;
  let incident = Array.map (fun d -> Array.make d 0) degree in
  let fill = Array.make n 0 in
  Array.iteri
    (fun ni net ->
      Array.iter
        (fun v ->
          incident.(v).(fill.(v)) <- ni;
          fill.(v) <- fill.(v) + 1)
        net)
    hg.Hypergraph.nets;
  let movable v = hg.Hypergraph.fixed.(v) = None in
  let cost_around a b =
    (* HPWL of the nets touching either endpoint. *)
    let seen = Hashtbl.create 8 in
    let add acc ni =
      if Hashtbl.mem seen ni then acc
      else begin
        Hashtbl.add seen ni ();
        acc +. net_hpwl hg positions ni
      end
    in
    let acc = Array.fold_left add 0.0 incident.(a) in
    Array.fold_left add acc incident.(b)
  in
  let swaps = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  (* Candidate partners: cells on the same net plus cells one net away
     (through another pin), restricted to small nets to stay local. *)
  let small ni = Array.length hg.Hypergraph.nets.(ni) <= 16 in
  let try_swap a b =
    if b <> a && movable b && widths.(a) = widths.(b) then begin
      let before = cost_around a b in
      let pa = positions.(a) and pb = positions.(b) in
      positions.(a) <- pb;
      positions.(b) <- pa;
      let after = cost_around a b in
      if after < before -. 1e-9 then begin
        incr swaps;
        improved := true
      end
      else begin
        positions.(a) <- pa;
        positions.(b) <- pb
      end
    end
  in
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    for a = 0 to n - 1 do
      if movable a then
        Array.iter
          (fun ni ->
            if small ni then
              Array.iter
                (fun b ->
                  try_swap a b;
                  if b <> a then
                    Array.iter
                      (fun nj ->
                        if nj <> ni && small nj then
                          Array.iter (fun c -> try_swap a c) hg.Hypergraph.nets.(nj))
                      incident.(b))
                hg.Hypergraph.nets.(ni))
          incident.(a)
    done
  done;
  {
    swaps = !swaps;
    passes = !passes;
    hpwl_before;
    hpwl_after = Hypergraph.hpwl hg positions;
  }
