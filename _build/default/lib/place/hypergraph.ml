module Geom = Cals_util.Geom
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped

type t = {
  weights : int array;
  fixed : Geom.point option array;
  nets : int array array;
}

let num_nodes t = Array.length t.weights

let num_movable t =
  Array.fold_left
    (fun acc f -> match f with None -> acc + 1 | Some _ -> acc)
    0 t.fixed

let of_subject subject ~floorplan =
  let n = Subject.num_nodes subject in
  let outs = subject.Subject.outputs in
  let n_po = Array.length outs in
  let total = n + n_po in
  let weights = Array.make total 1 in
  let fixed = Array.make total None in
  (* PI pads: evenly spread PIs and POs around the ring together so inputs
     and outputs interleave like a real pad ring. *)
  let pad_names =
    Array.append subject.Subject.pi_names (Array.map fst outs)
  in
  let pads = Floorplan.pad_positions floorplan ~names:pad_names in
  let n_pi = Array.length subject.Subject.pi_names in
  Array.iteri
    (fun v g ->
      match g with
      | Subject.Pi idx ->
        fixed.(v) <- Some pads.(idx);
        weights.(v) <- 0
      | Subject.Inv _ | Subject.Nand2 _ -> ())
    subject.Subject.gates;
  Array.iteri
    (fun oi _ ->
      fixed.(n + oi) <- Some pads.(n_pi + oi);
      weights.(n + oi) <- 0)
    outs;
  let fanouts = Subject.fanouts subject in
  let po_sinks = Array.make n [] in
  Array.iteri (fun oi (_, v) -> po_sinks.(v) <- (n + oi) :: po_sinks.(v)) outs;
  let nets = ref [] in
  for v = 0 to n - 1 do
    let pins = fanouts.(v) @ po_sinks.(v) in
    if pins <> [] then nets := Array.of_list (v :: pins) :: !nets
  done;
  let po_pad_ids = Array.init n_po (fun oi -> n + oi) in
  ({ weights; fixed; nets = Array.of_list (List.rev !nets) }, po_pad_ids)

let of_mapped mapped ~floorplan =
  let n_cells = Array.length mapped.Mapped.instances in
  let n_pi = Array.length mapped.Mapped.pi_names in
  let n_po = Array.length mapped.Mapped.outputs in
  let total = n_cells + n_pi + n_po in
  let weights = Array.make total 0 in
  let fixed = Array.make total None in
  Array.iteri
    (fun i inst ->
      weights.(i) <- inst.Mapped.cell.Cals_cell.Cell.width_sites)
    mapped.Mapped.instances;
  let pad_names =
    Array.append mapped.Mapped.pi_names (Array.map fst mapped.Mapped.outputs)
  in
  let pads = Floorplan.pad_positions floorplan ~names:pad_names in
  let pi_pad_ids = Array.init n_pi (fun i -> n_cells + i) in
  let po_pad_ids = Array.init n_po (fun i -> n_cells + n_pi + i) in
  Array.iteri (fun i id -> fixed.(id) <- Some pads.(i)) pi_pad_ids;
  Array.iteri (fun i id -> fixed.(id) <- Some pads.(n_pi + i)) po_pad_ids;
  let node_of_signal = function
    | Mapped.Of_pi i -> pi_pad_ids.(i)
    | Mapped.Of_inst i -> i
  in
  let nets =
    Mapped.nets mapped
    |> Array.to_list
    |> List.filter_map (fun net ->
           match net.Mapped.sinks with
           | [] -> None
           | sinks ->
             let driver = node_of_signal net.Mapped.driver in
             let pins =
               List.map
                 (function
                   | Mapped.Cell_pin (i, _) -> i
                   | Mapped.Po oi -> po_pad_ids.(oi))
                 sinks
             in
             (* Collapse duplicate pins on the same net. *)
             Some (Array.of_list (List.sort_uniq compare (driver :: pins))))
    |> List.filter (fun pins -> Array.length pins >= 2)
  in
  ({ weights; fixed; nets = Array.of_list nets }, pi_pad_ids, po_pad_ids)

let hpwl t pos =
  Array.fold_left
    (fun acc net ->
      let box =
        Array.fold_left (fun b v -> Geom.bbox_add b pos.(v)) Geom.bbox_empty net
      in
      acc +. Geom.half_perimeter box)
    0.0 t.nets

let net_degree_stats t =
  let maxd = Array.fold_left (fun m net -> max m (Array.length net)) 0 t.nets in
  let sum = Array.fold_left (fun s net -> s + Array.length net) 0 t.nets in
  (maxd, float_of_int sum /. float_of_int (max 1 (Array.length t.nets)))
