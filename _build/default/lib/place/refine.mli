(** Greedy detailed-placement refinement.

    After legalization, repeatedly swap pairs of same-width cells (and
    slide cells into row gaps) when the move reduces total half-perimeter
    wirelength. Cheap, local, and optional — the flow uses it to polish the
    seeded placement before routing when asked to. *)

type stats = {
  swaps : int;
  passes : int;
  hpwl_before : float;
  hpwl_after : float;
}

val run :
  ?max_passes:int ->
  hypergraph:Hypergraph.t ->
  positions:Cals_util.Geom.point array ->
  widths:int array ->
  unit ->
  stats
(** Mutates [positions] in place (movable nodes only — fixed nodes per the
    hypergraph stay put). Candidate swaps are cells adjacent in net
    neighbourhoods; only strictly improving swaps are taken, so HPWL is
    non-increasing. Default [max_passes] is 3. *)
