(** Tetris-style legalization of cells onto standard-cell rows.

    Cells are processed left to right; each picks the row minimizing its
    displacement and is packed after that row's current frontier, so the
    result is overlap-free and row-aligned by construction. *)

exception Overflow of string
(** Raised when some cell fits in no row (the floorplan is too small). *)

type result = {
  positions : Cals_util.Geom.point array;  (** Cell centers. *)
  total_displacement : float;  (** Manhattan movement from desired. *)
  row_fill : int array;  (** Occupied sites per row. *)
}

val run :
  floorplan:Floorplan.t ->
  widths:int array ->
  desired:Cals_util.Geom.point array ->
  movable:bool array ->
  result
(** [widths] is in sites per cell; zero-width entries are skipped.
    Non-movable entries keep their desired position (pads). *)
