(** Fiduccia-Mattheyses hypergraph bipartitioning with gain buckets.

    The engine behind recursive-bisection global placement. Nodes may be
    pre-locked to a side (terminal propagation anchors); the pass loop
    keeps the weight balance within a tolerance and reverts to the best
    prefix of each pass. *)

type problem = {
  weights : int array;
  nets : int array array;
  locked : int option array;  (** [Some side] pins the node to side 0/1. *)
}

val bipartition :
  ?max_passes:int ->
  ?balance_tolerance:float ->
  rng:Cals_util.Rng.t ->
  problem ->
  int array
(** Returns the side (0 or 1) of every node. [balance_tolerance] is the
    allowed deviation of either side from half the total weight (default
    0.1, i.e. 40/60 splits are acceptable). *)

val cut_size : problem -> int array -> int
(** Number of nets with pins on both sides. *)
