module Geom = Cals_util.Geom
module Mapped = Cals_netlist.Mapped

type mapped_placement = {
  cell_pos : Geom.point array;
  pi_pos : Geom.point array;
  po_pos : Geom.point array;
  hpwl : float;
  row_fill : int array;
}

let place_subject subject ~floorplan ~rng =
  let hg, _po_ids = Hypergraph.of_subject subject ~floorplan in
  let pos = Bisect.place hg ~floorplan ~rng in
  Array.sub pos 0 (Cals_netlist.Subject.num_nodes subject)

let finish mapped ~floorplan (hg : Hypergraph.t) desired =
  let n_cells = Array.length mapped.Mapped.instances in
  let movable = Array.map (fun f -> f = None) hg.Hypergraph.fixed in
  let legal =
    Legalize.run ~floorplan ~widths:hg.Hypergraph.weights ~desired ~movable
  in
  let hpwl = Hypergraph.hpwl hg legal.Legalize.positions in
  let n_pi = Array.length mapped.Mapped.pi_names in
  let n_po = Array.length mapped.Mapped.outputs in
  {
    cell_pos = Array.sub legal.Legalize.positions 0 n_cells;
    pi_pos = Array.sub legal.Legalize.positions n_cells n_pi;
    po_pos = Array.sub legal.Legalize.positions (n_cells + n_pi) n_po;
    hpwl;
    row_fill = legal.Legalize.row_fill;
  }

let place_mapped_seeded mapped ~floorplan =
  let hg, pi_ids, po_ids = Hypergraph.of_mapped mapped ~floorplan in
  ignore pi_ids;
  ignore po_ids;
  let desired =
    Array.init (Hypergraph.num_nodes hg) (fun i ->
        match hg.Hypergraph.fixed.(i) with
        | Some p -> p
        | None -> mapped.Mapped.instances.(i).Mapped.seed)
  in
  finish mapped ~floorplan hg desired

let place_mapped_global mapped ~floorplan ~rng =
  let hg, _, _ = Hypergraph.of_mapped mapped ~floorplan in
  let desired = Bisect.place hg ~floorplan ~rng in
  finish mapped ~floorplan hg desired

let mapped_hpwl mapped ~floorplan ~cell_pos =
  let hg, _, _ = Hypergraph.of_mapped mapped ~floorplan in
  let n_cells = Array.length mapped.Mapped.instances in
  let pos =
    Array.init (Hypergraph.num_nodes hg) (fun i ->
        match hg.Hypergraph.fixed.(i) with
        | Some p -> p
        | None -> cell_pos.(i))
  in
  ignore n_cells;
  Hypergraph.hpwl hg pos
