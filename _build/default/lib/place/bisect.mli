(** Recursive min-cut bisection global placement.

    Regions are split alternately along their longer dimension with an FM
    bipartition; nets crossing the region boundary pull nodes toward the
    appropriate half through fixed anchor terminals (terminal propagation).
    This is the "initial placement of the technology-independent netlist"
    of the paper's Section 3 — it only needs to capture connectivity, so
    positions are continuous (legalization is a separate step). *)

val place :
  Hypergraph.t ->
  floorplan:Floorplan.t ->
  rng:Cals_util.Rng.t ->
  Cals_util.Geom.point array
(** Positions for every hypergraph node; fixed nodes keep their pad
    position. *)

val leaf_size : int
(** Regions at or below this many movable nodes are spread on a local grid
    instead of being split further. *)
