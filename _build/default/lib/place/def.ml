module Geom = Cals_util.Geom
module Mapped = Cals_netlist.Mapped

let dbu = 1000.0
let to_dbu x = int_of_float (Float.round (x *. dbu))

let print ?(design = "mapped") mapped ~floorplan
    ~(placement : Placement.mapped_placement) =
  let fp = floorplan in
  let buf = Buffer.create 16384 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  addf "DESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n" design (int_of_float dbu);
  addf "DIEAREA ( 0 0 ) ( %d %d ) ;\n"
    (to_dbu fp.Floorplan.die_width)
    (to_dbu fp.Floorplan.die_height);
  for r = 0 to fp.Floorplan.num_rows - 1 do
    addf "ROW core_%d CoreSite 0 %d N DO %d BY 1 STEP %d 0 ;\n" r
      (to_dbu (float_of_int r *. fp.Floorplan.row_height))
      fp.Floorplan.sites_per_row
      (to_dbu fp.Floorplan.site_width)
  done;
  let n_cells = Array.length mapped.Mapped.instances in
  addf "COMPONENTS %d ;\n" n_cells;
  Array.iteri
    (fun i inst ->
      let p = placement.Placement.cell_pos.(i) in
      (* DEF placements are lower-left corners. *)
      let w =
        float_of_int inst.Mapped.cell.Cals_cell.Cell.width_sites
        *. fp.Floorplan.site_width
      in
      addf "- u%d %s + PLACED ( %d %d ) N ;\n" i
        inst.Mapped.cell.Cals_cell.Cell.name
        (to_dbu (p.Geom.x -. (w /. 2.0)))
        (to_dbu (p.Geom.y -. (fp.Floorplan.row_height /. 2.0))))
    mapped.Mapped.instances;
  addf "END COMPONENTS\n";
  let n_pins =
    Array.length mapped.Mapped.pi_names + Array.length mapped.Mapped.outputs
  in
  addf "PINS %d ;\n" n_pins;
  Array.iteri
    (fun i name ->
      let p = placement.Placement.pi_pos.(i) in
      addf "- %s + NET %s + DIRECTION INPUT + PLACED ( %d %d ) N ;\n" name name
        (to_dbu p.Geom.x) (to_dbu p.Geom.y))
    mapped.Mapped.pi_names;
  Array.iteri
    (fun i (name, _) ->
      let p = placement.Placement.po_pos.(i) in
      addf "- %s + NET %s + DIRECTION OUTPUT + PLACED ( %d %d ) N ;\n" name name
        (to_dbu p.Geom.x) (to_dbu p.Geom.y))
    mapped.Mapped.outputs;
  addf "END PINS\n";
  let nets = Mapped.nets mapped in
  let live_nets =
    Array.to_list nets |> List.filter (fun n -> n.Mapped.sinks <> [])
  in
  addf "NETS %d ;\n" (List.length live_nets);
  let pin_names = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  List.iter
    (fun net ->
      let name, driver_term =
        match net.Mapped.driver with
        | Mapped.Of_pi i ->
          (mapped.Mapped.pi_names.(i),
           Printf.sprintf "( PIN %s )" mapped.Mapped.pi_names.(i))
        | Mapped.Of_inst i -> (Printf.sprintf "n%d" i, Printf.sprintf "( u%d y )" i)
      in
      addf "- %s %s" name driver_term;
      List.iter
        (fun sink ->
          match sink with
          | Mapped.Cell_pin (i, pin) -> addf " ( u%d %s )" i pin_names.(pin)
          | Mapped.Po oi -> addf " ( PIN %s )" (fst mapped.Mapped.outputs.(oi)))
        net.Mapped.sinks;
      addf " ;\n")
    live_nets;
  addf "END NETS\nEND DESIGN\n";
  Buffer.contents buf

let write_file ?design path mapped ~floorplan ~placement =
  let oc = open_out path in
  output_string oc (print ?design mapped ~floorplan ~placement);
  close_out oc
