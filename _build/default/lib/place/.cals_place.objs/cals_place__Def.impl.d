lib/place/def.ml: Array Buffer Cals_cell Cals_netlist Cals_util Float Floorplan List Placement Printf
