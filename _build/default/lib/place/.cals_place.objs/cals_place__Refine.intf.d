lib/place/refine.mli: Cals_util Hypergraph
