lib/place/floorplan.mli: Cals_cell Cals_util
