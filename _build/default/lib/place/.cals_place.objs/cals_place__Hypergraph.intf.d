lib/place/hypergraph.mli: Cals_netlist Cals_util Floorplan
