lib/place/def.mli: Cals_netlist Floorplan Placement
