lib/place/floorplan.ml: Array Cals_cell Cals_util Printf
