lib/place/refine.ml: Array Cals_util Hashtbl Hypergraph
