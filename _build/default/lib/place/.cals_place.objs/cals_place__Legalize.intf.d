lib/place/legalize.mli: Cals_util Floorplan
