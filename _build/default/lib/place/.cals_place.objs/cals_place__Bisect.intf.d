lib/place/bisect.mli: Cals_util Floorplan Hypergraph
