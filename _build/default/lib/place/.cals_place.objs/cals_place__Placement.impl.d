lib/place/placement.ml: Array Bisect Cals_netlist Cals_util Hypergraph Legalize
