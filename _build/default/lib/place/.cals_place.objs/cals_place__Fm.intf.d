lib/place/fm.mli: Cals_util
