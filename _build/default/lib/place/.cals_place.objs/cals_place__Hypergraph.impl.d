lib/place/hypergraph.ml: Array Cals_cell Cals_netlist Cals_util Floorplan List
