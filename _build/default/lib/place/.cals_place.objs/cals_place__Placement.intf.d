lib/place/placement.mli: Cals_netlist Cals_util Floorplan
