lib/place/bisect.ml: Array Cals_util Floorplan Fm Hashtbl Hypergraph List
