lib/place/legalize.ml: Array Cals_util Floorplan List Printf
