lib/place/fm.ml: Array Cals_util
