(** Pattern trees: the logic function of a library cell expressed over the
    base gates of the subject graph (2-input NANDs and inverters).

    Technology mapping matches these trees structurally against subject
    trees. Leaves are input variables; a variable may occur more than once
    (e.g. XOR2), in which case a structural match must bind all of its
    occurrences to the same subject vertex. *)

type t =
  | Var of int  (** Input variable; indices are dense starting at 0. *)
  | Inv of t
  | Nand of t * t

val num_vars : t -> int
(** Number of distinct input variables ([max index + 1]). *)

val size : t -> int
(** Number of base gates (internal nodes) in the pattern. *)

val depth : t -> int
(** Longest gate path from root to any leaf. *)

val eval : t -> bool array -> bool
(** [eval p inputs] computes the pattern output; [inputs] must have at least
    [num_vars p] entries. *)

val eval64 : t -> int64 array -> int64
(** Bit-parallel evaluation over 64 input vectors at once. *)

val to_string : t -> string
(** Prefix rendering, e.g. ["NAND(INV(NAND(x0,x1)),x2)"]. *)

val validate : t -> (unit, string) result
(** Checks variable indices are dense [0 .. n-1]. *)
