(** A synthetic 0.18µm standard-cell library.

    Stand-in for CORELIB8DHS 2.0 (STMicroelectronics), which the paper uses
    but which is proprietary. Relative cell areas follow the same ordering
    as the paper's Figure 1 example: the multi-input min-area cover
    (NAND3 + AOI21 + 2 INV) is smaller than the congestion-friendly cover
    (2 OR2 + 2 NAND2 + INV). Timing parameters are typical 0.18µm values
    for the linear delay model. *)

val library : Library.t
(** The full library: INV, BUF, NAND2-4, NOR2-3, AND2-3, OR2-3, AOI21,
    AOI22, OAI21, OAI22, XOR2, XNOR2, MUX21. *)

val site_width : float
(** 0.66 µm. *)

val row_height : float
(** 5.04 µm. *)
