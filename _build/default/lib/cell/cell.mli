(** Standard-cell model.

    Geometry is row-based: a cell occupies [width_sites] placement sites of a
    fixed site width and row height (see {!Library.geometry}). The timing
    model is the classic linear one: pin-to-output delay is
    [intrinsic_ns + drive_kohm * load_pf]. *)

type t = {
  name : string;
  area : float;  (** µm², = width_sites * site_width * row_height. *)
  width_sites : int;
  patterns : Pattern.t list;
      (** Alternative base-gate shapes implementing the cell (e.g. the two
          associations of NAND4). All patterns of one cell must compute the
          same function and use the same number of variables. *)
  input_cap_pf : float;  (** Capacitance of each input pin. *)
  intrinsic_ns : float;  (** Load-independent delay component. *)
  drive_kohm : float;  (** Output resistance; delay slope vs load. *)
}

val num_inputs : t -> int
(** Input-pin count, derived from the patterns. *)

val make :
  name:string ->
  width_sites:int ->
  site_width:float ->
  row_height:float ->
  input_cap_pf:float ->
  intrinsic_ns:float ->
  drive_kohm:float ->
  Pattern.t list ->
  t
(** Builds a cell and checks pattern consistency: at least one pattern, all
    patterns valid, same arity, same truth table. Raises [Invalid_argument]
    otherwise. *)

val eval : t -> bool array -> bool
(** Evaluate the cell function (first pattern). *)

val eval64 : t -> int64 array -> int64
(** Bit-parallel evaluation. *)

val delay_ns : t -> load_pf:float -> float
(** [intrinsic + drive * load]. *)
