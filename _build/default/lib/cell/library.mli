(** Cell-library container.

    A library bundles the cells available to technology mapping plus the
    geometry and interconnect parameters shared by the whole flow. Every
    library must contain the two base cells ([inv], [nand2]) so that any
    NAND2/INV subject graph has a trivial feasible cover. *)

type geometry = {
  site_width : float;  (** µm. *)
  row_height : float;  (** µm. *)
}

type wire_model = {
  res_kohm_per_um : float;  (** Wire resistance per µm. *)
  cap_pf_per_um : float;  (** Wire capacitance per µm. *)
  pitch_um : float;  (** Routing-track pitch, sets gcell capacity. *)
}

type t

val make : name:string -> geometry -> wire_model -> Cell.t list -> t
(** Raises [Invalid_argument] on duplicate cell names or when the base
    cells "INV" and "NAND2" are missing. *)

val name : t -> string
val geometry : t -> geometry
val wire : t -> wire_model
val cells : t -> Cell.t list
val find : t -> string -> Cell.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Cell.t option
val inv : t -> Cell.t
val nand2 : t -> Cell.t
val size : t -> int
(** Number of cells. *)

val max_pattern_size : t -> int
(** Largest pattern (base-gate count) over all cells — a bound used by the
    matcher. *)
