type t =
  | Var of int
  | Inv of t
  | Nand of t * t

let rec max_var = function
  | Var i -> i
  | Inv p -> max_var p
  | Nand (a, b) -> max (max_var a) (max_var b)

let num_vars p = max_var p + 1

let rec size = function
  | Var _ -> 0
  | Inv p -> 1 + size p
  | Nand (a, b) -> 1 + size a + size b

let rec depth = function
  | Var _ -> 0
  | Inv p -> 1 + depth p
  | Nand (a, b) -> 1 + max (depth a) (depth b)

let rec eval p inputs =
  match p with
  | Var i -> inputs.(i)
  | Inv q -> not (eval q inputs)
  | Nand (a, b) -> not (eval a inputs && eval b inputs)

let rec eval64 p inputs =
  match p with
  | Var i -> inputs.(i)
  | Inv q -> Int64.lognot (eval64 q inputs)
  | Nand (a, b) -> Int64.lognot (Int64.logand (eval64 a inputs) (eval64 b inputs))

let rec to_string = function
  | Var i -> Printf.sprintf "x%d" i
  | Inv p -> Printf.sprintf "INV(%s)" (to_string p)
  | Nand (a, b) -> Printf.sprintf "NAND(%s,%s)" (to_string a) (to_string b)

let validate p =
  let n = num_vars p in
  let seen = Array.make n false in
  let rec mark = function
    | Var i -> seen.(i) <- true
    | Inv q -> mark q
    | Nand (a, b) ->
      mark a;
      mark b
  in
  mark p;
  let missing = ref [] in
  Array.iteri (fun i s -> if not s then missing := i :: !missing) seen;
  match !missing with
  | [] -> Ok ()
  | is ->
    Error
      (Printf.sprintf "pattern skips variable(s) %s"
         (String.concat "," (List.map string_of_int is)))
