(** Liberty (.lib) export of a cell library.

    Emits the subset of the Synopsys Liberty format that downstream tools
    (and humans) need to inspect the synthetic library: cell areas, pin
    directions and capacitances, a linear delay template, and the cell
    function as a Boolean expression derived from the pattern tree. *)

val print : Library.t -> string
(** Render the whole library as Liberty text. *)

val write_file : string -> Library.t -> unit

val function_of_cell : Cell.t -> string
(** Liberty boolean expression of a cell, e.g. ["!((a b) + c)"] for AOI21.
    Pin names are [a, b, c, d] in pattern-variable order. *)
