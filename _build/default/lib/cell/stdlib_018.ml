let site_width = 0.66
let row_height = 5.04

let v0 = Pattern.Var 0
let v1 = Pattern.Var 1
let v2 = Pattern.Var 2
let v3 = Pattern.Var 3
let inv p = Pattern.Inv p
let nand a b = Pattern.Nand (a, b)
let and2 a b = inv (nand a b)
let or2 a b = nand (inv a) (inv b)

let cell name sites cap intr drive patterns =
  Cell.make ~name ~width_sites:sites ~site_width ~row_height ~input_cap_pf:cap
    ~intrinsic_ns:intr ~drive_kohm:drive patterns

let cells =
  [
    cell "INV" 2 0.0035 0.022 3.2 [ inv v0 ];
    cell "BUF" 3 0.0030 0.055 2.2 [ inv (inv v0) ];
    cell "NAND2" 3 0.0045 0.045 4.1 [ nand v0 v1 ];
    cell "NAND3" 4 0.0050 0.062 5.0
      [ nand (and2 v0 v1) v2 ];
    cell "NAND4" 5 0.0055 0.080 5.9
      [ nand (and2 (and2 v0 v1) v2) v3; nand (and2 v0 v1) (and2 v2 v3) ];
    cell "NOR2" 3 0.0048 0.052 5.2 [ inv (or2 v0 v1) ];
    cell "NOR3" 4 0.0052 0.075 6.4 [ inv (nand (inv (or2 v0 v1)) (inv v2)) ];
    cell "AND2" 4 0.0042 0.070 3.6 [ and2 v0 v1 ];
    cell "AND3" 5 0.0046 0.088 4.0 [ and2 (and2 v0 v1) v2 ];
    cell "OR2" 4 0.0044 0.074 3.8 [ or2 v0 v1 ];
    cell "OR3" 5 0.0048 0.092 4.2 [ or2 (or2 v0 v1) v2 ];
    cell "AOI21" 4 0.0050 0.058 5.6 [ inv (nand (nand v0 v1) (inv v2)) ];
    cell "AOI22" 5 0.0054 0.072 6.2 [ inv (nand (nand v0 v1) (nand v2 v3)) ];
    cell "OAI21" 4 0.0050 0.056 5.4 [ nand (or2 v0 v1) v2 ];
    cell "OAI22" 5 0.0054 0.070 6.0 [ nand (or2 v0 v1) (or2 v2 v3) ];
    cell "XOR2" 6 0.0060 0.095 5.8 [ nand (nand v0 (inv v1)) (nand (inv v0) v1) ];
    cell "XNOR2" 6 0.0060 0.095 5.8 [ nand (nand v0 v1) (nand (inv v0) (inv v1)) ];
    cell "MUX21" 6 0.0058 0.090 5.2 [ nand (nand v2 v1) (nand (inv v2) v0) ];
  ]

let library =
  Library.make ~name:"VIRTLIB018"
    { Library.site_width; row_height }
    { Library.res_kohm_per_um = 0.0005; cap_pf_per_um = 0.00023; pitch_um = 0.56 }
    cells
