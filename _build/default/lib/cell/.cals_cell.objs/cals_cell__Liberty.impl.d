lib/cell/liberty.ml: Array Buffer Cell Library List Pattern Printf
