lib/cell/cell.mli: Pattern
