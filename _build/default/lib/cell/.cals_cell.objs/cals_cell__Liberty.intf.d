lib/cell/liberty.mli: Cell Library
