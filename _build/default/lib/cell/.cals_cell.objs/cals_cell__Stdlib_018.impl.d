lib/cell/stdlib_018.ml: Cell Library Pattern
