lib/cell/pattern.ml: Array Int64 List Printf String
