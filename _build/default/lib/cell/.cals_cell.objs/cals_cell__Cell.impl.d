lib/cell/cell.ml: Array List Pattern
