lib/cell/pattern.mli:
