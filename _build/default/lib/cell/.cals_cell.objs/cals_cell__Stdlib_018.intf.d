lib/cell/stdlib_018.mli: Library
