lib/cell/library.ml: Cell Hashtbl List Pattern
