type t = {
  name : string;
  area : float;
  width_sites : int;
  patterns : Pattern.t list;
  input_cap_pf : float;
  intrinsic_ns : float;
  drive_kohm : float;
}

let num_inputs t =
  match t.patterns with
  | [] -> 0
  | p :: _ -> Pattern.num_vars p

(* Exhaustive truth table as an int; arity is small (<= 5). *)
let truth_table p =
  let n = Pattern.num_vars p in
  assert (n <= 5);
  let bits = ref 0 in
  for row = 0 to (1 lsl n) - 1 do
    let inputs = Array.init n (fun i -> row land (1 lsl i) <> 0) in
    if Pattern.eval p inputs then bits := !bits lor (1 lsl row)
  done;
  !bits

let make ~name ~width_sites ~site_width ~row_height ~input_cap_pf ~intrinsic_ns
    ~drive_kohm patterns =
  (match patterns with
  | [] -> invalid_arg (name ^ ": cell needs at least one pattern")
  | first :: rest ->
    List.iter
      (fun p ->
        match Pattern.validate p with
        | Ok () -> ()
        | Error msg -> invalid_arg (name ^ ": " ^ msg))
      patterns;
    let arity = Pattern.num_vars first and tt = truth_table first in
    List.iter
      (fun p ->
        if Pattern.num_vars p <> arity then
          invalid_arg (name ^ ": patterns disagree on arity");
        if truth_table p <> tt then
          invalid_arg (name ^ ": patterns disagree on function"))
      rest);
  {
    name;
    area = float_of_int width_sites *. site_width *. row_height;
    width_sites;
    patterns;
    input_cap_pf;
    intrinsic_ns;
    drive_kohm;
  }

let eval t inputs =
  match t.patterns with
  | [] -> invalid_arg "Cell.eval: no pattern"
  | p :: _ -> Pattern.eval p inputs

let eval64 t inputs =
  match t.patterns with
  | [] -> invalid_arg "Cell.eval64: no pattern"
  | p :: _ -> Pattern.eval64 p inputs

let delay_ns t ~load_pf = t.intrinsic_ns +. (t.drive_kohm *. load_pf)
