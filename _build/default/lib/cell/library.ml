type geometry = {
  site_width : float;
  row_height : float;
}

type wire_model = {
  res_kohm_per_um : float;
  cap_pf_per_um : float;
  pitch_um : float;
}

type t = {
  name : string;
  geometry : geometry;
  wire : wire_model;
  cells : Cell.t list;
  by_name : (string, Cell.t) Hashtbl.t;
}

let make ~name geometry wire cells =
  let by_name = Hashtbl.create (List.length cells) in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.Cell.name then
        invalid_arg ("Library.make: duplicate cell " ^ c.Cell.name);
      Hashtbl.add by_name c.Cell.name c)
    cells;
  if not (Hashtbl.mem by_name "INV") then invalid_arg "Library.make: missing INV";
  if not (Hashtbl.mem by_name "NAND2") then invalid_arg "Library.make: missing NAND2";
  { name; geometry; wire; cells; by_name }

let name t = t.name
let geometry t = t.geometry
let wire t = t.wire
let cells t = t.cells
let find t n = Hashtbl.find t.by_name n
let find_opt t n = Hashtbl.find_opt t.by_name n
let inv t = find t "INV"
let nand2 t = find t "NAND2"
let size t = List.length t.cells

let max_pattern_size t =
  List.fold_left
    (fun acc (c : Cell.t) ->
      List.fold_left (fun acc p -> max acc (Pattern.size p)) acc c.Cell.patterns)
    0 t.cells
