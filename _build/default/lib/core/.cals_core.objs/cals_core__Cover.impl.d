lib/core/cover.ml: Array Cals_cell Cals_netlist Cals_util Hashtbl List Option Partition Printf
