lib/core/partition.mli: Cals_netlist Cals_util
