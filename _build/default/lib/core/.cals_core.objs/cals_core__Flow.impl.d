lib/core/flow.ml: Cals_cell Cals_netlist Cals_place Cals_route List Mapper Partition
