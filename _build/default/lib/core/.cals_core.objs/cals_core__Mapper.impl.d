lib/core/mapper.ml: Cals_netlist Cals_util Cover List Partition
