lib/core/flow.mli: Cals_cell Cals_netlist Cals_place Cals_route Cals_util Partition
