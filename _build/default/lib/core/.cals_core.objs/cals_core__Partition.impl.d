lib/core/partition.ml: Array Cals_netlist Hashtbl List Option
