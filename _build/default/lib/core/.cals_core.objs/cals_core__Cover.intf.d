lib/core/cover.mli: Cals_cell Cals_netlist Cals_util Partition
