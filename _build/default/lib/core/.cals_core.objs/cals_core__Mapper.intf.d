lib/core/mapper.mli: Cals_cell Cals_netlist Cals_util Cover Partition
