module Subject = Cals_netlist.Subject

type strategy =
  | Dagon
  | Cone
  | Pdp

type t = {
  father : int option array;
  live : bool array;
  roots : int list;
}

let is_gate subject v =
  match subject.Subject.gates.(v) with
  | Subject.Pi _ -> false
  | Subject.Inv _ | Subject.Nand2 _ -> true

let run strategy subject ~positions ~distance =
  let n = Subject.num_nodes subject in
  let father = Array.make n None in
  let live = Array.make n false in
  let fanouts = Subject.fanouts subject in
  (* Roots: distinct primary-output drivers that are gates, in output
     order. PIs wired straight to an output need no tree. *)
  let roots =
    Array.to_list subject.Subject.outputs
    |> List.map snd
    |> List.filter (is_gate subject)
    |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
    |> List.rev
  in
  (* Liveness first, so father choices only consider live fanouts. *)
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      List.iter mark (Subject.fanins subject.Subject.gates.(v))
    end
  in
  Array.iter (fun (_, v) -> mark v) subject.Subject.outputs;
  let is_root = Array.make n false in
  List.iter (fun r -> is_root.(r) <- true) roots;
  let out_refs = Subject.output_refs subject in
  let choose_father w dfs_parent =
    let parents = List.filter (fun u -> live.(u)) fanouts.(w) in
    match strategy with
    | Dagon -> (
      match parents with
      | [ u ] when out_refs.(w) = 0 -> Some u
      | [] | [ _ ] | _ :: _ -> None)
    | Cone -> Some dfs_parent
    | Pdp ->
      List.fold_left
        (fun best u ->
          let d = distance positions.(u) positions.(w) in
          match best with
          | Some (_, bd) when bd <= d -> best
          | Some _ | None -> Some (u, d))
        None parents
      |> Option.map fst
  in
  let visited = Array.make n false in
  let rec dfs v =
    List.iter
      (fun w ->
        if is_gate subject w && (not visited.(w)) && not is_root.(w) then begin
          visited.(w) <- true;
          father.(w) <- choose_father w v;
          dfs w
        end)
      (Subject.fanins subject.Subject.gates.(v))
  in
  List.iter
    (fun r ->
      if not visited.(r) then begin
        visited.(r) <- true;
        dfs r
      end)
    roots;
  (* Every fatherless live gate heads a tree — primary-output drivers plus
     the multi-fanout split points of the chosen strategy. *)
  let all_roots = ref [] in
  for v = n - 1 downto 0 do
    if live.(v) && is_gate subject v && father.(v) = None then
      all_roots := v :: !all_roots
  done;
  { father; live; roots = !all_roots }

let is_internal_edge t ~parent ~child = t.father.(child) = Some parent

let tree_sizes t subject =
  let n = Cals_netlist.Subject.num_nodes subject in
  (* Climb to the root of each node's father chain. *)
  let root_of = Array.make n (-1) in
  let rec find v =
    if root_of.(v) >= 0 then root_of.(v)
    else begin
      let r = match t.father.(v) with None -> v | Some u -> find u in
      root_of.(v) <- r;
      r
    end
  in
  let sizes = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    if t.live.(v) && is_gate subject v then begin
      let r = find v in
      Hashtbl.replace sizes r (1 + Option.value ~default:0 (Hashtbl.find_opt sizes r))
    end
  done;
  t.roots |> List.map (fun r -> Option.value ~default:0 (Hashtbl.find_opt sizes r))
  |> Array.of_list

let duplication_refs t subject =
  let fanouts = Cals_netlist.Subject.fanouts subject in
  let count = ref 0 in
  Array.iteri
    (fun w parents ->
      if t.live.(w) && is_gate subject w then
        List.iter
          (fun u ->
            if t.live.(u) && t.father.(w) <> Some u then incr count)
          parents)
    fanouts;
  !count
