(** DAG partitioning into trees (the paper's Section 3.1).

    The subject DAG is broken into a forest by assigning each gate at most
    one [father] among its fanouts; the edge to the father is the only edge
    a covering match may cross. Three strategies:

    - {b Dagon}: every multi-fanout gate is a tree root (Keutzer).
    - {b Cone}: the father is the first fanout that reaches the gate in a
      DFS from the primary outputs — MIS-style cones, whose result depends
      on the output order (the drawback the paper points out).
    - {b Pdp}: placement-driven partitioning — the father is the
      geometrically nearest fanout on the companion placement (Figure 2).

    Primary-output drivers are always roots. *)

type strategy =
  | Dagon
  | Cone
  | Pdp

type t = {
  father : int option array;
      (** Per subject node; [None] for roots, primary inputs and dead
          gates. *)
  live : bool array;  (** Reachable from some primary output. *)
  roots : int list;
      (** All tree roots (fatherless live gates): primary-output drivers
          plus the strategy's split points, in increasing node order. *)
}

val run :
  strategy ->
  Cals_netlist.Subject.t ->
  positions:Cals_util.Geom.point array ->
  distance:(Cals_util.Geom.point -> Cals_util.Geom.point -> float) ->
  t
(** [positions] and [distance] are only consulted by [Pdp]. *)

val is_internal_edge : t -> parent:int -> child:int -> bool
(** True when a match rooted above [parent] may extend through [child]. *)

val tree_sizes : t -> Cals_netlist.Subject.t -> int array
(** For each root, the number of gates in its tree (diagnostics). *)

val duplication_refs : t -> Cals_netlist.Subject.t -> int
(** Number of cross-tree leaf references — an upper bound on how many
    signals must be taps or get duplicated. *)
