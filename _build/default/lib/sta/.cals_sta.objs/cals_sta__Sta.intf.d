lib/sta/sta.mli: Cals_cell Cals_netlist Cals_place
