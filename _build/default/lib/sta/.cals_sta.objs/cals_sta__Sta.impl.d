lib/sta/sta.ml: Array Cals_cell Cals_netlist Cals_place Cals_util List Printf
