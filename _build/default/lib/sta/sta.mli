(** Static timing analysis of a placed (optionally routed) mapped netlist.

    The PrimeTime role in the paper's Tables 3 and 5. Delay model:
    linear cell delay [intrinsic + drive * load] plus an Elmore wire term
    per net sink computed from placed distance (or routed net length when
    provided). Combinational, single rising analysis — the paper's
    circuits are combinational IWLS93 benchmarks. *)

type config = {
  input_drive_kohm : float;  (** Pad driver resistance for PI nets. *)
  output_load_pf : float;  (** Load each primary output must drive. *)
}

val default_config : config

type endpoint = {
  po : string;
  through_pi : string;  (** Start of the latest path into this output. *)
  arrival_ns : float;
}

type report = {
  endpoints : endpoint array;  (** One per primary output. *)
  critical : endpoint;
  critical_path : (string * float) list;
      (** (instance label, arrival) from input to output. *)
  total_net_cap_pf : float;
}

val analyze :
  ?config:config ->
  ?net_length_um:float array ->
  Cals_netlist.Mapped.t ->
  wire:Cals_cell.Library.wire_model ->
  placement:Cals_place.Placement.mapped_placement ->
  report
(** [net_length_um], indexed like {!Cals_netlist.Mapped.nets}, supplies
    routed lengths (e.g. {!Cals_route.Router.result.net_length_um});
    otherwise the half-perimeter of each placed net is used. *)

val po_arrival_from_pi :
  ?config:config ->
  ?net_length_um:float array ->
  Cals_netlist.Mapped.t ->
  wire:Cals_cell.Library.wire_model ->
  placement:Cals_place.Placement.mapped_placement ->
  pi:string ->
  po:string ->
  float option
(** Arrival at [po] over paths starting at [pi] only — used to compare "the
    same path" across differently mapped netlists (Tables 3 and 5).
    [None] when no such path exists. *)

val endpoint_to_string : endpoint -> string
(** Paper-style rendering, e.g. ["i12 (in)  o30 (out)  21.48"]. *)
