(** Mutable binary-heap minimum priority queue with [float] priorities.

    Used by the maze router (Dijkstra wavefront) and the MST net-topology
    builder. Decrease-key is handled by lazy deletion: push the element again
    with the smaller priority and ignore stale pops at the caller. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority value] inserts [value]. Smaller priority pops first. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
val clear : 'a t -> unit
