type point = { x : float; y : float }

let point x y = { x; y }
let manhattan a b = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y)

let euclidean a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let center_of_mass = function
  | [] -> invalid_arg "Geom.center_of_mass: empty"
  | points ->
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun acc p -> acc +. p.x) 0.0 points in
    let sy = List.fold_left (fun acc p -> acc +. p.y) 0.0 points in
    { x = sx /. n; y = sy /. n }

let center_of_mass_weighted = function
  | [] -> invalid_arg "Geom.center_of_mass_weighted: empty"
  | points ->
    let w = List.fold_left (fun acc (_, wi) -> acc +. wi) 0.0 points in
    if w <= 0.0 then invalid_arg "Geom.center_of_mass_weighted: weight";
    let sx = List.fold_left (fun acc (p, wi) -> acc +. (p.x *. wi)) 0.0 points in
    let sy = List.fold_left (fun acc (p, wi) -> acc +. (p.y *. wi)) 0.0 points in
    { x = sx /. w; y = sy /. w }

type bbox = { lx : float; ly : float; hx : float; hy : float }

let bbox_empty = { lx = infinity; ly = infinity; hx = neg_infinity; hy = neg_infinity }

let bbox_add b p =
  { lx = min b.lx p.x; ly = min b.ly p.y; hx = max b.hx p.x; hy = max b.hy p.y }

let bbox_of_points = function
  | [] -> invalid_arg "Geom.bbox_of_points: empty"
  | points -> List.fold_left bbox_add bbox_empty points

let half_perimeter b = b.hx -. b.lx +. (b.hy -. b.ly)
let bbox_contains b p = p.x >= b.lx && p.x <= b.hx && p.y >= b.ly && p.y <= b.hy
let bbox_area b = (b.hx -. b.lx) *. (b.hy -. b.ly)
let clamp lo hi v = if v < lo then lo else if v > hi then hi else v
