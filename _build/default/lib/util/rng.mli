(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the library (workload generation, placement
    tie-breaking, simulation vectors) threads one of these states so that runs
    are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t k n] draws [k] distinct integers from [\[0, n)] ([k <= n]). *)
