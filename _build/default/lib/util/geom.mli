(** Planar geometry used by placement, routing and the congestion-aware
    covering cost (Eq. 2 of the paper computes distances between centers of
    mass on the chip image). *)

type point = { x : float; y : float }

val point : float -> float -> point

val manhattan : point -> point -> float
(** L1 distance — the routing-relevant metric and the library default. *)

val euclidean : point -> point -> float
(** L2 distance — available for the distance-metric ablation. *)

val midpoint : point -> point -> point

val center_of_mass : point list -> point
(** Arithmetic mean of a non-empty list of points. *)

val center_of_mass_weighted : (point * float) list -> point
(** Weighted mean; total weight must be positive. *)

type bbox = { lx : float; ly : float; hx : float; hy : float }
(** Axis-aligned bounding box with [lx <= hx] and [ly <= hy]. *)

val bbox_of_points : point list -> bbox
(** Bounding box of a non-empty list. *)

val bbox_empty : bbox
(** A reversed box suitable as fold seed; [bbox_add] fixes it up. *)

val bbox_add : bbox -> point -> bbox

val half_perimeter : bbox -> float
(** HPWL contribution of one net. *)

val bbox_contains : bbox -> point -> bool
val bbox_area : bbox -> float

val clamp : float -> float -> float -> float
(** [clamp lo hi v] restricts [v] to [\[lo, hi\]]. *)
