(** Plain-text table rendering for bench output and reports, plus small
    summary statistics. The bench harness prints the paper's tables through
    this module so every experiment has a uniform, diffable format. *)

type align = Left | Right

val render : ?title:string -> header:string list -> align list -> string list list -> string
(** [render ~title ~header aligns rows] lays out a boxed text table. The
    [aligns] list gives per-column alignment and must match [header]. *)

val fmt_float : int -> float -> string
(** [fmt_float digits v] fixed-point formatting. *)

val fmt_int : int -> string
(** Decimal with thousands separators, e.g. [126394 -> "126,394"]. *)

val mean : float list -> float
val stddev : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]]; nearest-rank on sorted data. *)
