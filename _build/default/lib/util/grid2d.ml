type t = {
  cols : int;
  rows : int;
  data : float array;
}

let create ~cols ~rows init =
  if cols <= 0 || rows <= 0 then invalid_arg "Grid2d.create";
  { cols; rows; data = Array.make (cols * rows) init }

let cols g = g.cols
let rows g = g.rows

let index g c r =
  if c < 0 || c >= g.cols || r < 0 || r >= g.rows then
    invalid_arg (Printf.sprintf "Grid2d: (%d,%d) outside %dx%d" c r g.cols g.rows);
  (r * g.cols) + c

let get g c r = g.data.(index g c r)
let set g c r v = g.data.(index g c r) <- v
let add g c r v = g.data.(index g c r) <- g.data.(index g c r) +. v

let fold f g acc =
  let acc = ref acc in
  for r = 0 to g.rows - 1 do
    for c = 0 to g.cols - 1 do
      acc := f c r g.data.((r * g.cols) + c) !acc
    done
  done;
  !acc

let iter f g = fold (fun c r v () -> f c r v) g ()
let map_inplace f g = Array.iteri (fun i v -> g.data.(i) <- f v) g.data
let max_value g = Array.fold_left max neg_infinity g.data
let total g = Array.fold_left ( +. ) 0.0 g.data
let copy g = { g with data = Array.copy g.data }

let render_ascii ?(levels = " .:-=+*#%@") g =
  let hi = max (max_value g) 1e-12 in
  let nlev = String.length levels in
  let buf = Buffer.create ((g.cols + 1) * g.rows) in
  for r = g.rows - 1 downto 0 do
    for c = 0 to g.cols - 1 do
      let v = get g c r /. hi in
      let k = int_of_float (v *. float_of_int (nlev - 1) +. 0.5) in
      let k = if k < 0 then 0 else if k >= nlev then nlev - 1 else k in
      Buffer.add_char buf levels.[k]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
