type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is non-negative as a native 63-bit int. *)
  let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let range t lo hi = lo + int t (hi - lo + 1)
let choose t arr = arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  assert (k <= n);
  (* Reservoir-free approach: shuffle a prefix of the index array. *)
  let arr = Array.init n (fun i -> i) in
  let rec pick i acc =
    if i >= k then List.rev acc
    else begin
      let j = range t i (n - 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      pick (i + 1) (arr.(i) :: acc)
    end
  in
  pick 0 []
