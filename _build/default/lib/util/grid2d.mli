(** Dense 2-D float grids: congestion maps, density maps, cost surfaces. *)

type t

val create : cols:int -> rows:int -> float -> t
(** [create ~cols ~rows init] fills every bin with [init]. *)

val cols : t -> int
val rows : t -> int

val get : t -> int -> int -> float
(** [get g c r] reads bin [(c, r)]; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> float -> unit
val add : t -> int -> int -> float -> unit
val fold : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> float -> unit) -> t -> unit
val map_inplace : (float -> float) -> t -> unit
val max_value : t -> float
val total : t -> float
val copy : t -> t

val render_ascii : ?levels:string -> t -> string
(** Heat-map rendering: one character per bin, low-to-high along [levels]
    (default [" .:-=+*#%@"]), rows printed top-down. *)
