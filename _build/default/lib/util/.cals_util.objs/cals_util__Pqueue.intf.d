lib/util/pqueue.mli:
