lib/util/geom.ml: List
