lib/util/tables.mli:
