lib/util/grid2d.ml: Array Buffer Printf String
