lib/util/geom.mli:
