lib/util/grid2d.mli:
