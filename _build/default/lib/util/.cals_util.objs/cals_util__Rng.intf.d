lib/util/rng.mli:
