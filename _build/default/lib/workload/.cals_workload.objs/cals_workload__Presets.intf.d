lib/workload/presets.mli: Cals_logic Cals_netlist Cals_util
