lib/workload/gen.mli: Cals_logic Cals_util
