lib/workload/presets.ml: Array Cals_netlist Cals_util Gen
