lib/workload/gen.ml: Array Cals_logic Cals_util List Printf
