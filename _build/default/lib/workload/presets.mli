(** Named benchmark presets mirroring the paper's circuits.

    Sizes follow the IWLS93 originals (SPLA: 16/46, 22,834 base gates;
    PDC: 16/40, 23,058; TOO_LARGE: 27,977) scaled by a factor so that the
    default bench run finishes in minutes. [scale = 1.0] approximates the
    paper's gate counts. *)

val spla_like : ?scale:float -> seed:int -> unit -> Cals_logic.Network.t
val pdc_like : ?scale:float -> seed:int -> unit -> Cals_logic.Network.t
val too_large_like : ?scale:float -> seed:int -> unit -> Cals_logic.Network.t

val default_scale : float
(** 0.25. *)

val figure1 :
  unit -> Cals_netlist.Subject.t * Cals_util.Geom.point array
(** The paper's Figure 1 micro-example: the subject graph of
    [f = NOT(a*b + c)] with hand positions placing [a, b] far from [c], so
    min-area covering picks one complex cell with long fanin wires while
    congestion-aware covering splits it into nearby simple cells. Returns
    the subject and a position per subject node. *)
