module Geom = Cals_util.Geom
module Pqueue = Cals_util.Pqueue
module Mapped = Cals_netlist.Mapped

type config = {
  layers : int;
  gcell_rows : int;
  m1_free : float;
  star_topology : bool;
  reroute_iterations : int;
  overflow_penalty : float;
  history_increment : float;
}

let default_config =
  {
    layers = 3;
    gcell_rows = 2;
    m1_free = 1.3;
    star_topology = false;
    reroute_iterations = 16;
    overflow_penalty = 4.0;
    history_increment = 1.0;
  }

type result = {
  grid : Rgrid.t;
  violations : int;
  total_overflow : float;
  wirelength_um : float;
  max_utilization : float;
  num_nets : int;
  num_segments : int;
  net_length_um : float array;
}

type seg_state = {
  net : int;
  ends : (int * int) * (int * int);
  mutable path : Rgrid.edge list;
}

(* Cost of pushing one more track through [e]. *)
let edge_cost cfg grid e =
  let u = Rgrid.usage grid e and cap = Rgrid.capacity grid e in
  let over = u +. 1.0 -. cap in
  let congestion = if over > 0.0 then cfg.overflow_penalty *. over else 0.0 in
  1.0 +. congestion +. Rgrid.history grid e

(* Edges of a monotone staircase path through the given corner points. *)
let edges_of_corners corners =
  let rec straight (c1, r1) (c2, r2) acc =
    if c1 = c2 && r1 = r2 then acc
    else if r1 = r2 then
      let step = if c2 > c1 then 1 else -1 in
      let edge_c = if step > 0 then c1 else c1 - 1 in
      straight (c1 + step, r1) (c2, r2) (Rgrid.H (edge_c, r1) :: acc)
    else begin
      let step = if r2 > r1 then 1 else -1 in
      let edge_r = if step > 0 then r1 else r1 - 1 in
      straight (c1, r1 + step) (c2, r2) (Rgrid.V (c1, edge_r) :: acc)
    end
  in
  let rec walk = function
    | [] | [ _ ] -> []
    | a :: b :: rest -> straight a b [] @ walk (b :: rest)
  in
  walk corners

let path_cost cfg grid path =
  List.fold_left (fun acc e -> acc +. edge_cost cfg grid e) 0.0 path

(* Candidate pattern paths between two gcells: both Ls plus single-bend Z
   shapes through the midpoint in each dimension. *)
let pattern_candidates (c1, r1) (c2, r2) =
  let l1 = [ (c1, r1); (c2, r1); (c2, r2) ] in
  let l2 = [ (c1, r1); (c1, r2); (c2, r2) ] in
  let mid_c = (c1 + c2) / 2 and mid_r = (r1 + r2) / 2 in
  let z1 = [ (c1, r1); (mid_c, r1); (mid_c, r2); (c2, r2) ] in
  let z2 = [ (c1, r1); (c1, mid_r); (c2, mid_r); (c2, r2) ] in
  List.map edges_of_corners [ l1; l2; z1; z2 ]

let commit grid path = List.iter (fun e -> Rgrid.add_usage grid e 1.0) path
let rip_up grid path = List.iter (fun e -> Rgrid.add_usage grid e (-1.0)) path

let pattern_route cfg grid seg =
  let a, b = seg.ends in
  if a = b then seg.path <- []
  else begin
    let candidates = pattern_candidates a b in
    let best =
      List.fold_left
        (fun best path ->
          let cost = path_cost cfg grid path in
          match best with
          | Some (bc, _) when bc <= cost -> best
          | Some _ | None -> Some (cost, path))
        None candidates
    in
    match best with
    | Some (_, path) ->
      seg.path <- path;
      commit grid path
    | None -> seg.path <- []
  end

(* Dijkstra over gcells. *)
let maze_route cfg grid (src, dst) =
  let cols = grid.Rgrid.cols and rows = grid.Rgrid.rows in
  let n = cols * rows in
  let idx (c, r) = (r * cols) + c in
  let dist = Array.make n infinity in
  let via = Array.make n None in
  (* via.(v) = Some (edge, previous cell) *)
  let q = Pqueue.create () in
  dist.(idx src) <- 0.0;
  Pqueue.push q 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Pqueue.is_empty q) do
    match Pqueue.pop q with
    | None -> finished := true
    | Some (d, cell) ->
      if cell = dst then finished := true
      else if d <= dist.(idx cell) then begin
        let c, r = cell in
        let try_move cell' edge =
          let cost = d +. edge_cost cfg grid edge in
          if cost < dist.(idx cell') then begin
            dist.(idx cell') <- cost;
            via.(idx cell') <- Some (edge, cell);
            Pqueue.push q cost cell'
          end
        in
        if c + 1 < cols then try_move (c + 1, r) (Rgrid.H (c, r));
        if c - 1 >= 0 then try_move (c - 1, r) (Rgrid.H (c - 1, r));
        if r + 1 < rows then try_move (c, r + 1) (Rgrid.V (c, r));
        if r - 1 >= 0 then try_move (c, r - 1) (Rgrid.V (c, r - 1))
      end
  done;
  if dist.(idx dst) = infinity then None
  else begin
    let rec backtrack cell acc =
      if cell = src then acc
      else
        match via.(idx cell) with
        | Some (edge, prev) -> backtrack prev (edge :: acc)
        | None -> acc
    in
    Some (backtrack dst [])
  end

let path_uses_overflow overflowed path =
  List.exists (fun e -> Hashtbl.mem overflowed e) path

let route_pins ?(config = default_config) ?density ~floorplan ~wire nets =
  let grid =
    Rgrid.create ~floorplan ~wire ~layers:config.layers
      ~gcell_rows:config.gcell_rows ~m1_free:config.m1_free ?density ()
  in
  let num_nets = Array.length nets in
  (* Build segments. *)
  let segments = ref [] in
  Array.iteri
    (fun net pins ->
      let cells = List.map (Rgrid.gcell_of_point grid) pins in
      let segs =
        if config.star_topology then
          match cells with
          | [] -> []
          | driver :: rest -> Topology.star_segments driver rest
        else Topology.mst_segments cells
      in
      List.iter
        (fun s ->
          segments :=
            { net; ends = (s.Topology.src, s.Topology.dst); path = [] }
            :: !segments)
        segs)
    nets;
  let segments = Array.of_list (List.rev !segments) in
  (* Initial pattern routing, long segments first (they are the hardest to
     place once the grid fills up). *)
  let order = Array.init (Array.length segments) (fun i -> i) in
  Array.sort
    (fun a b ->
      let len s =
        let (c1, r1), (c2, r2) = segments.(s).ends in
        abs (c1 - c2) + abs (r1 - r2)
      in
      compare (len b) (len a))
    order;
  Array.iter (fun i -> pattern_route config grid segments.(i)) order;
  (* Negotiated rip-up and reroute. *)
  let iteration = ref 0 in
  while !iteration < config.reroute_iterations && Rgrid.total_overflow grid > 0.0 do
    incr iteration;
    let overflowed = Hashtbl.create 64 in
    List.iter
      (fun e ->
        Hashtbl.replace overflowed e ();
        Rgrid.add_history grid e config.history_increment)
      (Rgrid.overflowed_edges grid);
    Array.iter
      (fun seg ->
        if seg.path <> [] && path_uses_overflow overflowed seg.path then begin
          rip_up grid seg.path;
          match maze_route config grid seg.ends with
          | Some path ->
            seg.path <- path;
            commit grid path
          | None ->
            (* Should not happen on a connected grid; restore. *)
            commit grid seg.path
        end)
      segments
  done;
  let net_length = Array.make num_nets 0.0 in
  Array.iter
    (fun seg ->
      net_length.(seg.net) <-
        net_length.(seg.net)
        +. (float_of_int (List.length seg.path) *. grid.Rgrid.gcell_um))
    segments;
  let wirelength = Array.fold_left ( +. ) 0.0 net_length in
  let overflow = Rgrid.total_overflow grid in
  {
    grid;
    violations = int_of_float (ceil overflow);
    total_overflow = overflow;
    wirelength_um = wirelength;
    max_utilization = Rgrid.max_utilization grid;
    num_nets;
    num_segments = Array.length segments;
    net_length_um = net_length;
  }

(* Cell-area fraction per gcell, for the M1 blockage model. *)
let density_map ?(config = default_config) mapped ~floorplan
    ~(placement : Cals_place.Placement.mapped_placement) =
  let gcell_um =
    float_of_int config.gcell_rows *. floorplan.Cals_place.Floorplan.row_height
  in
  let cols =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_width /. gcell_um)))
  in
  let rows =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_height /. gcell_um)))
  in
  let g = Cals_util.Grid2d.create ~cols ~rows 0.0 in
  Array.iteri
    (fun i inst ->
      let p = placement.Cals_place.Placement.cell_pos.(i) in
      let c = int_of_float (p.Geom.x /. gcell_um) in
      let r = int_of_float (p.Geom.y /. gcell_um) in
      let c = max 0 (min (cols - 1) c) and r = max 0 (min (rows - 1) r) in
      Cals_util.Grid2d.add g c r inst.Mapped.cell.Cals_cell.Cell.area)
    mapped.Mapped.instances;
  Cals_util.Grid2d.map_inplace (fun a -> a /. (gcell_um *. gcell_um)) g;
  g

let route_mapped ?config mapped ~floorplan ~wire ~placement =
  let density = density_map ?config mapped ~floorplan ~placement in
  let nets = Mapped.nets mapped in
  let pos_of_signal = function
    | Mapped.Of_pi i -> placement.Cals_place.Placement.pi_pos.(i)
    | Mapped.Of_inst i -> placement.Cals_place.Placement.cell_pos.(i)
  in
  let pin_clusters =
    Array.map
      (fun net ->
        match net.Mapped.sinks with
        | [] -> []
        | sinks ->
          let sink_pos = function
            | Mapped.Cell_pin (i, _) -> placement.Cals_place.Placement.cell_pos.(i)
            | Mapped.Po oi -> placement.Cals_place.Placement.po_pos.(oi)
          in
          pos_of_signal net.Mapped.driver :: List.map sink_pos sinks)
      nets
  in
  route_pins ?config ~density ~floorplan ~wire pin_clusters
