lib/route/rgrid.mli: Cals_cell Cals_place Cals_util
