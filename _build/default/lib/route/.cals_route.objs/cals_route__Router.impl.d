lib/route/router.ml: Array Cals_cell Cals_netlist Cals_place Cals_util Hashtbl List Rgrid Topology
