lib/route/congestion.mli: Router
