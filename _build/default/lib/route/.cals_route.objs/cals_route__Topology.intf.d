lib/route/topology.mli:
