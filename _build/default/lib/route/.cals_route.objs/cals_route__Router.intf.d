lib/route/router.mli: Cals_cell Cals_netlist Cals_place Cals_util Rgrid
