lib/route/rgrid.ml: Array Cals_cell Cals_place Cals_util
