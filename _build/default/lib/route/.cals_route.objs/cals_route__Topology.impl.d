lib/route/topology.ml: Array List
