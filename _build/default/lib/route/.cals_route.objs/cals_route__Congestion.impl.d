lib/route/congestion.ml: Cals_util Printf Rgrid Router
