module Gen = Cals_workload.Gen
module Presets = Cals_workload.Presets
module Network = Cals_logic.Network
module Subject = Cals_netlist.Subject
module Rng = Cals_util.Rng

let test_pla_shape () =
  let rng = Rng.create 1 in
  let net = Gen.pla ~rng ~inputs:10 ~outputs:8 ~products:40 () in
  Alcotest.(check int) "pis" 10 (Array.length (Network.pi_names net));
  Alcotest.(check int) "pos" 8 (Array.length (Network.outputs net));
  Alcotest.(check int) "one node per output" 8 (Network.num_live_nodes net);
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_pla_deterministic () =
  let build seed =
    let rng = Rng.create seed in
    Gen.pla ~rng ~inputs:8 ~outputs:4 ~products:20 ()
  in
  let a = build 5 and b = build 5 and c = build 6 in
  let probe = Array.init 8 (fun i -> Int64.of_int (0x123457 * (i + 1))) in
  Alcotest.(check bool) "same seed same function" true
    (Network.simulate a probe = Network.simulate b probe);
  Alcotest.(check bool) "different seed differs" true
    (Network.simulate a probe <> Network.simulate c probe)

let test_pla_sharing_signature () =
  (* Shared products across outputs must create multi-fanout base gates
     after decomposition — the structural signature the paper relies on. *)
  let rng = Rng.create 2 in
  let net = Gen.pla ~rng ~inputs:10 ~outputs:10 ~products:30 ~terms_lo:8 ~terms_hi:15 () in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let counts = Subject.fanout_counts subject in
  let multi = ref 0 in
  Array.iteri
    (fun v g ->
      match g with
      | Subject.Pi _ -> ()
      | Subject.Inv _ | Subject.Nand2 _ -> if counts.(v) > 1 then incr multi)
    subject.Subject.gates;
  Alcotest.(check bool)
    (Printf.sprintf "%d multi-fanout gates" !multi)
    true (!multi > 10)

let test_multilevel_shape () =
  let rng = Rng.create 3 in
  let net = Gen.multilevel ~rng ~inputs:12 ~outputs:6 ~internal_nodes:50 () in
  Alcotest.(check int) "pis" 12 (Array.length (Network.pi_names net));
  Alcotest.(check int) "pos" 6 (Array.length (Network.outputs net));
  Alcotest.(check bool) "has depth" true (Network.num_live_nodes net > 6);
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_multilevel_decomposes () =
  let rng = Rng.create 4 in
  let net = Gen.multilevel ~rng ~inputs:10 ~outputs:8 ~internal_nodes:60 () in
  Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let rng2 = Rng.create 5 in
  for _ = 1 to 8 do
    let stimulus = Network.random_vectors rng2 net in
    if Network.simulate net stimulus <> Subject.simulate subject stimulus then
      Alcotest.fail "multilevel decomposition broke function"
  done

let test_presets_sizes () =
  (* Tiny scale so the test stays fast; checks the io signature. *)
  let spla = Presets.spla_like ~scale:0.02 ~seed:1 () in
  Alcotest.(check int) "spla inputs" 16 (Array.length (Network.pi_names spla));
  Alcotest.(check int) "spla outputs" 46 (Array.length (Network.outputs spla));
  let pdc = Presets.pdc_like ~scale:0.02 ~seed:1 () in
  Alcotest.(check int) "pdc inputs" 16 (Array.length (Network.pi_names pdc));
  Alcotest.(check int) "pdc outputs" 40 (Array.length (Network.outputs pdc));
  let tl = Presets.too_large_like ~scale:0.02 ~seed:1 () in
  Alcotest.(check int) "too_large inputs" 38 (Array.length (Network.pi_names tl))

let test_presets_scale_grows () =
  let gates scale =
    let net = Presets.spla_like ~scale ~seed:3 () in
    Network.sweep net;
    Subject.num_gates (Cals_logic.Decompose.subject_of_network net)
  in
  let small = gates 0.02 and big = gates 0.08 in
  Alcotest.(check bool) (Printf.sprintf "%d < %d" small big) true (small < big)

let test_figure1 () =
  let subject, positions = Presets.figure1 () in
  Alcotest.(check int) "gates" 4 (Subject.num_gates subject);
  Alcotest.(check int) "positions cover nodes" (Subject.num_nodes subject)
    (Array.length positions);
  (* f = NOT(ab + c) *)
  let sim a b c =
    let out =
      Subject.simulate subject
        [|
          (if a then -1L else 0L); (if b then -1L else 0L); (if c then -1L else 0L);
        |]
    in
    out.(0) = -1L
  in
  Alcotest.(check bool) "f(1,1,0)" false (sim true true false);
  Alcotest.(check bool) "f(0,0,1)" false (sim false false true);
  Alcotest.(check bool) "f(0,1,0)" true (sim false true false)

let test_figure1_mapping_flips_with_k () =
  (* K = 0 chooses the single AOI21; a large K splits into simple cells
     near the operands — the paper's Figure 1 trade-off. *)
  let subject, positions = Presets.figure1 () in
  let lib = Cals_cell.Stdlib_018.library in
  let map k =
    let r =
      Cals_core.Mapper.map subject ~library:lib ~positions
        (Cals_core.Mapper.congestion_aware ~k)
    in
    Cals_netlist.Mapped.cell_histogram r.Cals_core.Mapper.mapped
  in
  let hist0 = map 0.0 in
  Alcotest.(check (list (pair string int))) "min-area = one AOI21"
    [ ("AOI21", 1) ] hist0;
  let hist_k = map 0.05 in
  Alcotest.(check bool) "congestion-aware splits" true
    (List.length hist_k > 1 || fst (List.hd hist_k) <> "AOI21")

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "pla shape" `Quick test_pla_shape;
          Alcotest.test_case "pla deterministic" `Quick test_pla_deterministic;
          Alcotest.test_case "pla sharing" `Quick test_pla_sharing_signature;
          Alcotest.test_case "multilevel shape" `Quick test_multilevel_shape;
          Alcotest.test_case "multilevel decomposes" `Quick test_multilevel_decomposes;
        ] );
      ( "presets",
        [
          Alcotest.test_case "io signatures" `Quick test_presets_sizes;
          Alcotest.test_case "scale grows" `Quick test_presets_scale_grows;
          Alcotest.test_case "figure1 function" `Quick test_figure1;
          Alcotest.test_case "figure1 mapping" `Quick test_figure1_mapping_flips_with_k;
        ] );
    ]
