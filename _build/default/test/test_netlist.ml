module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Cell = Cals_cell.Cell
module Library = Cals_cell.Library
module Rng = Cals_util.Rng
module Geom = Cals_util.Geom

let lib = Cals_cell.Stdlib_018.library

(* ------------------------- Subject builder ------------------------- *)

let small_subject () =
  (* f = NOT(a AND b) ; g = NOT(NOT(a AND b) AND c) *)
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let bb = Subject.add_pi b "b" in
  let c = Subject.add_pi b "c" in
  let n1 = Subject.add_nand b a bb in
  let n2 = Subject.add_nand b n1 c in
  Subject.set_output b "f" n1;
  Subject.set_output b "g" n2;
  Subject.freeze b

let test_builder_counts () =
  let s = small_subject () in
  Alcotest.(check int) "nodes" 5 (Subject.num_nodes s);
  Alcotest.(check int) "pis" 3 (Subject.num_pis s);
  Alcotest.(check int) "gates" 2 (Subject.num_gates s);
  Alcotest.(check int) "nand2" 2 (Subject.num_nand2 s);
  Alcotest.(check int) "inv" 0 (Subject.num_inv s)

let test_builder_strash () =
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let bb = Subject.add_pi b "b" in
  let n1 = Subject.add_nand b a bb in
  let n2 = Subject.add_nand b bb a in
  Alcotest.(check int) "commutative strash" n1 n2;
  let i1 = Subject.add_inv b n1 in
  let i2 = Subject.add_inv b n1 in
  Alcotest.(check int) "inv strash" i1 i2

let test_builder_duplicate_pi () =
  let b = Subject.builder () in
  let _ = Subject.add_pi b "a" in
  Alcotest.check_raises "duplicate pi"
    (Invalid_argument "Subject.add_pi: duplicate a") (fun () ->
      ignore (Subject.add_pi b "a"))

let test_builder_dangling () =
  let b = Subject.builder () in
  Alcotest.check_raises "dangling" (Invalid_argument "Subject: dangling node reference")
    (fun () -> ignore (Subject.add_inv b 7))

let test_builder_const () =
  let b = Subject.builder () in
  let zero = Subject.add_const b false in
  let one = Subject.add_const b true in
  let zero2 = Subject.add_const b false in
  Alcotest.(check int) "const0 shared" zero zero2;
  Subject.set_output b "z" zero;
  Subject.set_output b "o" one;
  let s = Subject.freeze b in
  let out = Subject.simulate s (Subject.random_vectors (Rng.create 1) s) in
  Alcotest.(check int64) "zero" 0L out.(0);
  Alcotest.(check int64) "one" (-1L) out.(1)

let test_simulate_semantics () =
  let s = small_subject () in
  let out = Subject.simulate s [| -1L; -1L; -1L |] in
  Alcotest.(check int64) "f = nand(1,1)" 0L out.(0);
  Alcotest.(check int64) "g = nand(0,1)" (-1L) out.(1);
  let out = Subject.simulate s [| 0L; -1L; -1L |] in
  Alcotest.(check int64) "f = nand(0,1)" (-1L) out.(0);
  Alcotest.(check int64) "g = nand(1,1)" 0L out.(1)

let test_fanouts () =
  let s = small_subject () in
  let fo = Subject.fanouts s in
  (* Node 3 is n1 = nand(a,b): read by n2 only. *)
  Alcotest.(check (list int)) "n1 fanouts" [ 4 ] fo.(3);
  let counts = Subject.fanout_counts s in
  (* n1 drives n2 and the output f. *)
  Alcotest.(check int) "n1 count includes PO" 2 counts.(3);
  let refs = Subject.output_refs s in
  Alcotest.(check int) "n1 po refs" 1 refs.(3)

(* ------------------------- Mapped ------------------------- *)

let inv_cell = Library.find lib "INV"
let nand2_cell = Library.find lib "NAND2"
let origin = Geom.point 0.0 0.0

let small_mapped () =
  (* u0 = NAND2(a, b); u1 = INV(u0); outputs f=u1, g=u0 *)
  let instances =
    [|
      { Mapped.cell = nand2_cell; fanins = [| Mapped.Of_pi 0; Mapped.Of_pi 1 |];
        seed = origin };
      { Mapped.cell = inv_cell; fanins = [| Mapped.Of_inst 0 |]; seed = origin };
    |]
  in
  Mapped.make ~pi_names:[| "a"; "b" |] ~instances
    ~outputs:[| ("f", Mapped.Of_inst 1); ("g", Mapped.Of_inst 0) |]

let test_mapped_validation () =
  (* Fanin referencing a later instance breaks topological order. *)
  let bad () =
    ignore
      (Mapped.make ~pi_names:[| "a" |]
         ~instances:
           [| { Mapped.cell = inv_cell; fanins = [| Mapped.Of_inst 0 |]; seed = origin } |]
         ~outputs:[||])
  in
  Alcotest.check_raises "topo violation"
    (Invalid_argument "Mapped: fanin breaks topological order") bad;
  let bad_arity () =
    ignore
      (Mapped.make ~pi_names:[| "a" |]
         ~instances:
           [| { Mapped.cell = nand2_cell; fanins = [| Mapped.Of_pi 0 |]; seed = origin } |]
         ~outputs:[||])
  in
  try
    bad_arity ();
    Alcotest.fail "arity accepted"
  with Invalid_argument _ -> ()

let test_mapped_metrics () =
  let m = small_mapped () in
  Alcotest.(check int) "cells" 2 (Mapped.num_cells m);
  Alcotest.(check (float 1e-6)) "area" (inv_cell.Cell.area +. nand2_cell.Cell.area)
    (Mapped.total_area m);
  Alcotest.(check int) "sites" 5 (Mapped.total_sites m);
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("INV", 1); ("NAND2", 1) ]
    (Mapped.cell_histogram m)

let test_mapped_simulate () =
  let m = small_mapped () in
  let out = Mapped.simulate m [| -1L; -1L |] in
  Alcotest.(check int64) "f = a.b" (-1L) out.(0);
  Alcotest.(check int64) "g = nand" 0L out.(1)

let test_mapped_nets () =
  let m = small_mapped () in
  let nets = Mapped.nets m in
  Alcotest.(check int) "net count" 4 (Array.length nets);
  (* PI a drives pin 0 of instance 0. *)
  (match nets.(0).Mapped.sinks with
  | [ Mapped.Cell_pin (0, 0) ] -> ()
  | _ -> Alcotest.fail "pi net sinks");
  (* Instance 0 drives instance 1 pin 0 and PO g. *)
  (match nets.(Mapped.signal_index m (Mapped.Of_inst 0)).Mapped.sinks with
  | [ Mapped.Cell_pin (1, 0); Mapped.Po 1 ] -> ()
  | _ -> Alcotest.fail "inst net sinks");
  (* Instance 1 drives PO f only. *)
  match nets.(Mapped.signal_index m (Mapped.Of_inst 1)).Mapped.sinks with
  | [ Mapped.Po 0 ] -> ()
  | _ -> Alcotest.fail "po sink"

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_mapped_verilog () =
  let m = small_mapped () in
  let v = Mapped.to_verilog ~module_name:"top" m in
  Alcotest.(check bool) "module header" true
    (String.length v > 11 && String.sub v 0 11 = "module top(");
  Alcotest.(check bool) "instantiates NAND2" true (contains_substring v "NAND2 u0");
  Alcotest.(check bool) "assigns output" true (contains_substring v "assign f = n1")

let () =
  Alcotest.run "netlist"
    [
      ( "subject",
        [
          Alcotest.test_case "builder counts" `Quick test_builder_counts;
          Alcotest.test_case "strash" `Quick test_builder_strash;
          Alcotest.test_case "duplicate pi" `Quick test_builder_duplicate_pi;
          Alcotest.test_case "dangling ref" `Quick test_builder_dangling;
          Alcotest.test_case "constants" `Quick test_builder_const;
          Alcotest.test_case "simulate" `Quick test_simulate_semantics;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
        ] );
      ( "mapped",
        [
          Alcotest.test_case "validation" `Quick test_mapped_validation;
          Alcotest.test_case "metrics" `Quick test_mapped_metrics;
          Alcotest.test_case "simulate" `Quick test_mapped_simulate;
          Alcotest.test_case "nets" `Quick test_mapped_nets;
          Alcotest.test_case "verilog" `Quick test_mapped_verilog;
        ] );
    ]
