test/test_netlist.ml: Alcotest Array Cals_cell Cals_netlist Cals_util String
