test/test_util.ml: Alcotest Array Cals_util List QCheck QCheck_alcotest String
