test/test_route.ml: Alcotest Array Cals_cell Cals_place Cals_route Cals_util List Option Printf String
