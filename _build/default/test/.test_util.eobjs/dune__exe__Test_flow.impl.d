test/test_flow.ml: Alcotest Cals_cell Cals_core Cals_logic Cals_netlist Cals_place Cals_route Cals_sta Cals_util Cals_workload List Printf
