test/test_logic.ml: Alcotest Array Cals_logic Cals_netlist Cals_util Cals_workload Gen Int64 List Printf QCheck QCheck_alcotest
