test/test_cell.ml: Alcotest Array Cals_cell Int64 List Printf String
