test/test_sta.ml: Alcotest Array Cals_cell Cals_core Cals_logic Cals_netlist Cals_place Cals_sta Cals_util Cals_workload List Printf String
