test/test_place.ml: Alcotest Array Cals_cell Cals_core Cals_logic Cals_netlist Cals_place Cals_util Cals_workload Hashtbl List Option Printf String
