test/test_workload.ml: Alcotest Array Cals_cell Cals_core Cals_logic Cals_netlist Cals_util Cals_workload Int64 List Printf
