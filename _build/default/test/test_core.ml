module Partition = Cals_core.Partition
module Cover = Cals_core.Cover
module Mapper = Cals_core.Mapper
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Geom = Cals_util.Geom
module Rng = Cals_util.Rng
module Cell = Cals_cell.Cell

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib

let pla_subject ?(inputs = 8) ?(outputs = 6) ?(products = 24) seed =
  let rng = Rng.create seed in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs ~outputs ~products ~terms_lo:4 ~terms_hi:10 ()
  in
  Cals_logic.Network.sweep net;
  Cals_logic.Decompose.subject_of_network net

let placed_subject seed =
  let subject = pla_subject seed in
  let fp =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.55 ~aspect:1.0 ~geometry
  in
  let positions = Placement.place_subject subject ~floorplan:fp ~rng:(Rng.create (seed + 100)) in
  (subject, fp, positions)

let is_gate subject v =
  match subject.Subject.gates.(v) with
  | Subject.Pi _ -> false
  | Subject.Inv _ | Subject.Nand2 _ -> true

(* ------------------------- Partition ------------------------- *)

let check_forest subject (p : Partition.t) =
  (* Every live gate's father chain terminates at a root without cycles,
     and the father is always a live fanout of the node. *)
  let fanouts = Subject.fanouts subject in
  Array.iteri
    (fun v father ->
      match father with
      | None -> ()
      | Some u ->
        if not (List.mem u fanouts.(v)) then Alcotest.failf "father of %d not a fanout" v;
        if not p.Partition.live.(u) then Alcotest.failf "father of %d dead" v)
    p.Partition.father;
  let n = Subject.num_nodes subject in
  let state = Array.make n 0 in
  let rec climb v =
    match state.(v) with
    | 2 -> ()
    | 1 -> Alcotest.failf "father cycle at %d" v
    | _ ->
      state.(v) <- 1;
      (match p.Partition.father.(v) with Some u -> climb u | None -> ());
      state.(v) <- 2
  in
  for v = 0 to n - 1 do
    if p.Partition.live.(v) then climb v
  done

let test_partition_forest_all_strategies () =
  let subject, _, positions = placed_subject 1 in
  List.iter
    (fun strategy ->
      let p = Partition.run strategy subject ~positions ~distance:Geom.manhattan in
      check_forest subject p;
      (* Roots have no father; live gates are covered. *)
      List.iter
        (fun r ->
          if p.Partition.father.(r) <> None then Alcotest.fail "root has father")
        p.Partition.roots)
    [ Partition.Dagon; Partition.Cone; Partition.Pdp ]

let test_partition_dagon_splits_multifanout () =
  let subject, _, positions = placed_subject 2 in
  let p = Partition.run Partition.Dagon subject ~positions ~distance:Geom.manhattan in
  let fanouts = Subject.fanouts subject in
  let refs = Subject.output_refs subject in
  Array.iteri
    (fun v father ->
      if p.Partition.live.(v) && is_gate subject v then begin
        let live_fanouts = List.filter (fun u -> p.Partition.live.(u)) fanouts.(v) in
        match father with
        | Some _ ->
          if List.length live_fanouts <> 1 || refs.(v) > 0 then
            Alcotest.failf "dagon kept multi-fanout %d internal" v
        | None -> ()
      end)
    p.Partition.father

let test_partition_pdp_nearest () =
  let subject, _, positions = placed_subject 3 in
  let p = Partition.run Partition.Pdp subject ~positions ~distance:Geom.manhattan in
  let fanouts = Subject.fanouts subject in
  Array.iteri
    (fun v father ->
      match father with
      | None -> ()
      | Some u ->
        let d_father = Geom.manhattan positions.(u) positions.(v) in
        List.iter
          (fun w ->
            if p.Partition.live.(w) then begin
              let d = Geom.manhattan positions.(w) positions.(v) in
              if d < d_father -. 1e-9 then
                Alcotest.failf "node %d: father %d at %.2f but %d at %.2f" v u
                  d_father w d
            end)
          fanouts.(v))
    p.Partition.father

let test_partition_pdp_bigger_trees_than_dagon () =
  let subject, _, positions = placed_subject 4 in
  let dagon = Partition.run Partition.Dagon subject ~positions ~distance:Geom.manhattan in
  let pdp = Partition.run Partition.Pdp subject ~positions ~distance:Geom.manhattan in
  (* PDP keeps multi-fanout nodes inside trees, so it has at most as many
     boundary references. *)
  Alcotest.(check bool) "pdp fewer or equal cross-tree refs" true
    (Partition.duplication_refs pdp subject
    <= Partition.duplication_refs dagon subject);
  let sizes_d = Partition.tree_sizes dagon subject in
  let sizes_p = Partition.tree_sizes pdp subject in
  let total a = Array.fold_left ( + ) 0 a in
  (* Both cover all live gates exactly once. *)
  Alcotest.(check int) "same gate total" (total sizes_d) (total sizes_p)

(* ------------------------- Cover ------------------------- *)

let test_cover_min_area_beats_naive () =
  let subject, _, positions = placed_subject 5 in
  let r = Mapper.map subject ~library:lib ~positions Mapper.min_area in
  (* Naive 1:1 mapping cost: every gate its own INV/NAND2 cell. *)
  let inv_area = (Cals_cell.Library.inv lib).Cell.area in
  let nand_area = (Cals_cell.Library.nand2 lib).Cell.area in
  let live =
    Partition.run Partition.Dagon subject ~positions ~distance:Geom.manhattan
  in
  let naive = ref 0.0 in
  Array.iteri
    (fun v g ->
      if live.Partition.live.(v) then
        match g with
        | Subject.Inv _ -> naive := !naive +. inv_area
        | Subject.Nand2 _ -> naive := !naive +. nand_area
        | Subject.Pi _ -> ())
    subject.Subject.gates;
  Alcotest.(check bool)
    (Printf.sprintf "mapped %.0f < naive %.0f" r.Mapper.stats.Mapper.cell_area !naive)
    true
    (r.Mapper.stats.Mapper.cell_area < !naive)

let test_cover_preserves_function_all_strategies () =
  let subject, _, positions = placed_subject 6 in
  List.iter
    (fun strategy ->
      List.iter
        (fun k ->
          let opts = { (Mapper.congestion_aware ~k) with strategy } in
          let r = Mapper.map subject ~library:lib ~positions opts in
          let rng = Rng.create 123 in
          for _ = 1 to 8 do
            let stimulus = Subject.random_vectors rng subject in
            if Subject.simulate subject stimulus
               <> Mapped.simulate r.Mapper.mapped stimulus
            then
              Alcotest.failf "mapping broke function (k=%g)" k
          done)
        [ 0.0; 0.001; 0.1 ])
    [ Partition.Dagon; Partition.Cone; Partition.Pdp ]

let test_cover_full_coverage () =
  let subject, _, positions = placed_subject 7 in
  List.iter
    (fun strategy ->
      let partition = Partition.run strategy subject ~positions ~distance:Geom.manhattan in
      let cover =
        Cover.run subject ~library:lib ~partition ~positions Cover.default_options
      in
      match Cover.check_coverage cover with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Partition.Dagon; Partition.Cone; Partition.Pdp ]

let test_cover_dp_optimal_vs_bruteforce () =
  (* On a tiny chain the DP min-area must equal exhaustive enumeration.
     Chain: f = INV(NAND(INV(NAND(a,b)), c)) — a NAND3-shaped cone with an
     extra INV at the root (i.e. AND3). *)
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let bb = Subject.add_pi b "b" in
  let c = Subject.add_pi b "c" in
  let n1 = Subject.add_nand b a bb in
  let i1 = Subject.add_inv b n1 in
  let n2 = Subject.add_nand b i1 c in
  let i2 = Subject.add_inv b n2 in
  Subject.set_output b "f" i2;
  let subject = Subject.freeze b in
  let positions = Array.make (Subject.num_nodes subject) (Geom.point 0.0 0.0) in
  let r = Mapper.map subject ~library:lib ~positions Mapper.min_area in
  (* Optimal cover is a single AND3 cell. *)
  let and3 = Cals_cell.Library.find lib "AND3" in
  Alcotest.(check int) "one cell" 1 r.Mapper.stats.Mapper.cells;
  Alcotest.(check (float 1e-6)) "and3 area" and3.Cell.area r.Mapper.stats.Mapper.cell_area

let test_cover_duplication_on_swallowed_fanout () =
  (* A multi-fanout node inside a PDP tree must be duplicated or tapped,
     never lost. Build: s = NAND(a,b); f = INV(s); g = NAND(s,c). *)
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let bb = Subject.add_pi b "b" in
  let c = Subject.add_pi b "c" in
  let s = Subject.add_nand b a bb in
  let f = Subject.add_inv b s in
  let g = Subject.add_nand b s c in
  Subject.set_output b "f" f;
  Subject.set_output b "g" g;
  let subject = Subject.freeze b in
  let positions = Array.init (Subject.num_nodes subject) (fun i ->
      Geom.point (float_of_int i) 0.0) in
  List.iter
    (fun strategy ->
      let opts = { Mapper.min_area with strategy } in
      let r = Mapper.map subject ~library:lib ~positions opts in
      let rng = Rng.create 9 in
      for _ = 1 to 8 do
        let stimulus = Subject.random_vectors rng subject in
        if Subject.simulate subject stimulus <> Mapped.simulate r.Mapper.mapped stimulus
        then Alcotest.fail "swallowed fanout broke function"
      done)
    [ Partition.Dagon; Partition.Cone; Partition.Pdp ]

let test_cover_k_monotone_area () =
  let subject, _, positions = placed_subject 8 in
  let area k =
    let r = Mapper.map subject ~library:lib ~positions (Mapper.congestion_aware ~k) in
    r.Mapper.stats.Mapper.cell_area
  in
  let a0 = area 0.0 and a1 = area 0.01 and a2 = area 1.0 in
  Alcotest.(check bool) (Printf.sprintf "%.0f <= %.0f" a0 a1) true (a0 <= a1 +. 1e-6);
  Alcotest.(check bool) (Printf.sprintf "%.0f <= %.0f" a0 a2) true (a0 <= a2 +. 1e-6)

let test_cover_k_reduces_seed_wirelength () =
  let subject, fp, positions = placed_subject 9 in
  let hpwl k =
    let r = Mapper.map subject ~library:lib ~positions (Mapper.congestion_aware ~k) in
    (Placement.place_mapped_seeded r.Mapper.mapped ~floorplan:fp).Placement.hpwl
  in
  let h0 = hpwl 0.0 and h1 = hpwl 0.005 in
  Alcotest.(check bool) (Printf.sprintf "hpwl %.0f -> %.0f" h0 h1) true (h1 < h0)

let test_cover_seeds_inside_die () =
  let subject, fp, positions = placed_subject 10 in
  let r = Mapper.map subject ~library:lib ~positions (Mapper.congestion_aware ~k:0.001) in
  Array.iter
    (fun inst ->
      if not (Floorplan.contains fp inst.Mapped.seed) then
        Alcotest.fail "seed outside die")
    r.Mapper.mapped.Mapped.instances

let test_cover_ablation_options_run () =
  let subject, _, positions = placed_subject 11 in
  List.iter
    (fun opts ->
      let r = Mapper.map subject ~library:lib ~positions opts in
      let rng = Rng.create 77 in
      let stimulus = Subject.random_vectors rng subject in
      if Subject.simulate subject stimulus <> Mapped.simulate r.Mapper.mapped stimulus
      then Alcotest.fail "ablation broke function")
    [
      { (Mapper.congestion_aware ~k:0.001) with incremental_update = false };
      { (Mapper.congestion_aware ~k:0.001) with include_wire2 = false };
      { (Mapper.congestion_aware ~k:0.001) with transitive_wire = true };
      { (Mapper.congestion_aware ~k:0.001) with distance = Geom.euclidean };
    ]

let test_min_delay_objective () =
  let subject, fp, positions = placed_subject 13 in
  let wire = Cals_cell.Library.wire lib in
  let arrival opts =
    let r = Mapper.map subject ~library:lib ~positions opts in
    let mapped = r.Mapper.mapped in
    let placement = Placement.place_mapped_seeded mapped ~floorplan:fp in
    let report = Cals_sta.Sta.analyze mapped ~wire ~placement in
    (report.Cals_sta.Sta.critical.Cals_sta.Sta.arrival_ns,
     r.Mapper.stats.Mapper.cell_area, mapped)
  in
  let t_area, a_area, m_area = arrival Mapper.min_area in
  let t_delay, a_delay, m_delay = arrival (Mapper.min_delay ()) in
  (* Delay covering must not be slower than area covering, and it pays
     area for the speedup (or finds the same cover). *)
  Alcotest.(check bool)
    (Printf.sprintf "delay %.3f <= area %.3f" t_delay t_area)
    true
    (t_delay <= t_area +. 1e-9);
  Alcotest.(check bool) "area ordering" true (a_delay >= a_area -. 1e-6);
  (* Both still compute the right function. *)
  let rng = Rng.create 14 in
  let stimulus = Subject.random_vectors rng subject in
  let reference = Subject.simulate subject stimulus in
  Alcotest.(check bool) "min-area equivalent" true
    (Mapped.simulate m_area stimulus = reference);
  Alcotest.(check bool) "min-delay equivalent" true
    (Mapped.simulate m_delay stimulus = reference)

let test_transitive_wire_grows_area_faster () =
  (* The Pedram-Bhat-style cost should inflate area at least as much as the
     paper's bounded cost at the same K (Section 3.3's argument). *)
  let subject, _, positions = placed_subject 12 in
  let area opts =
    (Mapper.map subject ~library:lib ~positions opts).Mapper.stats.Mapper.cell_area
  in
  let ours = area (Mapper.congestion_aware ~k:0.005) in
  let pedram =
    area { (Mapper.congestion_aware ~k:0.005) with transitive_wire = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "transitive %.0f >= bounded %.0f" pedram ours)
    true (pedram >= ours -. 1e-6)

let () =
  Alcotest.run "core"
    [
      ( "partition",
        [
          Alcotest.test_case "forest (all strategies)" `Quick
            test_partition_forest_all_strategies;
          Alcotest.test_case "dagon splits multifanout" `Quick
            test_partition_dagon_splits_multifanout;
          Alcotest.test_case "pdp nearest father" `Quick test_partition_pdp_nearest;
          Alcotest.test_case "pdp vs dagon refs" `Quick
            test_partition_pdp_bigger_trees_than_dagon;
        ] );
      ( "cover",
        [
          Alcotest.test_case "min-area beats naive" `Quick test_cover_min_area_beats_naive;
          Alcotest.test_case "function preserved" `Quick
            test_cover_preserves_function_all_strategies;
          Alcotest.test_case "full coverage" `Quick test_cover_full_coverage;
          Alcotest.test_case "dp optimal (tiny)" `Quick test_cover_dp_optimal_vs_bruteforce;
          Alcotest.test_case "swallowed fanout" `Quick
            test_cover_duplication_on_swallowed_fanout;
          Alcotest.test_case "K monotone area" `Quick test_cover_k_monotone_area;
          Alcotest.test_case "K reduces wirelength" `Quick
            test_cover_k_reduces_seed_wirelength;
          Alcotest.test_case "seeds inside die" `Quick test_cover_seeds_inside_die;
          Alcotest.test_case "ablations run" `Quick test_cover_ablation_options_run;
          Alcotest.test_case "min-delay objective" `Quick test_min_delay_objective;
          Alcotest.test_case "transitive wire variant" `Quick
            test_transitive_wire_grows_area_faster;
        ] );
    ]
