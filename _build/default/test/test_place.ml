module Floorplan = Cals_place.Floorplan
module Hypergraph = Cals_place.Hypergraph
module Fm = Cals_place.Fm
module Bisect = Cals_place.Bisect
module Legalize = Cals_place.Legalize
module Placement = Cals_place.Placement
module Subject = Cals_netlist.Subject
module Rng = Cals_util.Rng
module Geom = Cals_util.Geom

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib

(* ------------------------- Floorplan ------------------------- *)

let test_floorplan_of_rows () =
  let fp = Floorplan.of_rows ~num_rows:10 ~sites_per_row:100 ~geometry in
  Alcotest.(check int) "rows" 10 fp.Floorplan.num_rows;
  Alcotest.(check (float 1e-6)) "width" (100.0 *. geometry.Cals_cell.Library.site_width)
    fp.Floorplan.die_width;
  Alcotest.(check (float 1e-6)) "row 0 center"
    (geometry.Cals_cell.Library.row_height /. 2.0)
    (Floorplan.row_y fp 0)

let test_floorplan_for_area () =
  let fp = Floorplan.for_area ~core_area:10000.0 ~utilization:0.5 ~aspect:1.0 ~geometry in
  let u = Floorplan.utilization fp ~cell_area:10000.0 in
  Alcotest.(check bool) "utilization near target" true (u > 0.45 && u < 0.52)

let test_floorplan_pads () =
  let fp = Floorplan.of_rows ~num_rows:20 ~sites_per_row:200 ~geometry in
  let names = Array.init 12 (fun i -> Printf.sprintf "p%d" i) in
  let pads = Floorplan.pad_positions fp ~names in
  Alcotest.(check int) "one pad per name" 12 (Array.length pads);
  Array.iter
    (fun p ->
      if not (Floorplan.contains fp p) then Alcotest.fail "pad outside die";
      let on_edge =
        p.Geom.x = 0.0 || p.Geom.y = 0.0 || p.Geom.x = fp.Floorplan.die_width
        || p.Geom.y = fp.Floorplan.die_height
      in
      if not on_edge then Alcotest.fail "pad not on perimeter")
    pads;
  (* Pads are distinct. *)
  let uniq = Array.to_list pads |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 12 (List.length uniq)

let test_floorplan_invalid () =
  Alcotest.check_raises "tiny die" (Invalid_argument "Floorplan.make: die smaller than one row")
    (fun () -> ignore (Floorplan.make ~die_width:1.0 ~die_height:1.0 ~geometry))

(* ------------------------- FM ------------------------- *)

let random_problem rng n nets_count =
  let weights = Array.make n 1 in
  let nets =
    Array.init nets_count (fun _ ->
        let d = Rng.range rng 2 4 in
        Array.of_list (Rng.sample rng d n))
  in
  { Fm.weights; nets; locked = Array.make n None }

let test_fm_balance () =
  let rng = Rng.create 42 in
  let p = random_problem rng 100 200 in
  let side = Fm.bipartition ~rng p in
  let w0 = Array.to_list side |> List.filter (fun s -> s = 0) |> List.length in
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d/100)" w0)
    true
    (w0 >= 35 && w0 <= 65)

let test_fm_respects_locks () =
  let rng = Rng.create 43 in
  let p = random_problem rng 50 100 in
  p.Fm.locked.(0) <- Some 0;
  p.Fm.locked.(1) <- Some 1;
  let side = Fm.bipartition ~rng p in
  Alcotest.(check int) "lock 0" 0 side.(0);
  Alcotest.(check int) "lock 1" 1 side.(1)

let test_fm_beats_random () =
  (* FM should cut a clustered graph far better than a random split. *)
  let rng = Rng.create 44 in
  let n = 80 in
  let weights = Array.make n 1 in
  (* Two cliques of chains with only two cross edges. *)
  let nets = ref [] in
  for i = 0 to 38 do
    nets := [| i; i + 1 |] :: !nets
  done;
  for i = 40 to 78 do
    nets := [| i; i + 1 |] :: !nets
  done;
  nets := [| 5; 45 |] :: [| 20; 60 |] :: !nets;
  let p = { Fm.weights; nets = Array.of_list !nets; locked = Array.make n None } in
  let side = Fm.bipartition ~rng p in
  let cut = Fm.cut_size p side in
  Alcotest.(check bool) (Printf.sprintf "small cut (%d)" cut) true (cut <= 6)

let test_fm_pass_never_worsens () =
  let rng = Rng.create 45 in
  for trial = 1 to 10 do
    let p = random_problem rng 60 120 in
    let side = Fm.bipartition ~rng p in
    let cut = Fm.cut_size p side in
    (* Rerunning from the result must not be worse than a fresh random
       assignment's final cut by construction; sanity: cut is bounded. *)
    if cut > Array.length p.Fm.nets then Alcotest.failf "trial %d: impossible cut" trial
  done

(* ------------------------- Bisect ------------------------- *)

let pla_subject seed =
  let rng = Rng.create seed in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs:8 ~outputs:8 ~products:30 ~terms_lo:4
      ~terms_hi:10 ()
  in
  Cals_logic.Network.sweep net;
  Cals_logic.Decompose.subject_of_network net

let test_bisect_inside_die () =
  let subject = pla_subject 1 in
  let fp =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.6 ~aspect:1.0 ~geometry
  in
  let rng = Rng.create 7 in
  let pos = Placement.place_subject subject ~floorplan:fp ~rng in
  Alcotest.(check int) "one position per node" (Subject.num_nodes subject)
    (Array.length pos);
  Array.iter
    (fun p -> if not (Floorplan.contains fp p) then Alcotest.fail "outside die")
    pos

let test_bisect_better_than_random () =
  let subject = pla_subject 2 in
  let fp =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.6 ~aspect:1.0 ~geometry
  in
  let hg, _ = Hypergraph.of_subject subject ~floorplan:fp in
  let rng = Rng.create 8 in
  let pos = Bisect.place hg ~floorplan:fp ~rng in
  let hpwl = Hypergraph.hpwl hg pos in
  (* Random placement for comparison. *)
  let rng2 = Rng.create 9 in
  let random_pos =
    Array.mapi
      (fun i f ->
        match f with
        | Some p -> p
        | None ->
          ignore i;
          Geom.point
            (Rng.float rng2 fp.Floorplan.die_width)
            (Rng.float rng2 fp.Floorplan.die_height))
      hg.Hypergraph.fixed
  in
  let hpwl_random = Hypergraph.hpwl hg random_pos in
  Alcotest.(check bool)
    (Printf.sprintf "bisect %.0f < random %.0f" hpwl hpwl_random)
    true (hpwl < hpwl_random)

let test_bisect_deterministic () =
  let subject = pla_subject 3 in
  let fp =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.6 ~aspect:1.0 ~geometry
  in
  let p1 = Placement.place_subject subject ~floorplan:fp ~rng:(Rng.create 5) in
  let p2 = Placement.place_subject subject ~floorplan:fp ~rng:(Rng.create 5) in
  Alcotest.(check bool) "same seed, same placement" true (p1 = p2)

(* ------------------------- Legalize ------------------------- *)

let test_legalize_no_overlap () =
  let fp = Floorplan.of_rows ~num_rows:6 ~sites_per_row:50 ~geometry in
  let rng = Rng.create 10 in
  let n = 40 in
  let widths = Array.init n (fun _ -> Rng.range rng 2 5) in
  let desired =
    Array.init n (fun _ ->
        Geom.point
          (Rng.float rng fp.Floorplan.die_width)
          (Rng.float rng fp.Floorplan.die_height))
  in
  let movable = Array.make n true in
  let r = Legalize.run ~floorplan:fp ~widths ~desired ~movable in
  (* Check row alignment and non-overlap per row. *)
  let by_row = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      let site = geometry.Cals_cell.Library.site_width in
      let lx = p.Geom.x -. (float_of_int widths.(i) *. site /. 2.0) in
      let hx = p.Geom.x +. (float_of_int widths.(i) *. site /. 2.0) in
      if lx < -1e-6 || hx > fp.Floorplan.die_width +. 1e-6 then
        Alcotest.fail "outside row";
      let row = int_of_float (p.Geom.y /. geometry.Cals_cell.Library.row_height) in
      Alcotest.(check (float 1e-6)) "row aligned" (Floorplan.row_y fp row) p.Geom.y;
      Hashtbl.replace by_row row
        ((lx, hx) :: Option.value ~default:[] (Hashtbl.find_opt by_row row)))
    r.Legalize.positions;
  Hashtbl.iter
    (fun _ spans ->
      let sorted = List.sort compare spans in
      let rec check = function
        | (_, hx) :: ((lx2, _) :: _ as rest) ->
          if hx > lx2 +. 1e-6 then Alcotest.fail "overlap";
          check rest
        | [ _ ] | [] -> ()
      in
      check sorted)
    by_row

let test_legalize_overflow () =
  let fp = Floorplan.of_rows ~num_rows:1 ~sites_per_row:10 ~geometry in
  let widths = [| 6; 6 |] in
  let desired = [| Geom.point 0.0 0.0; Geom.point 0.0 0.0 |] in
  let movable = [| true; true |] in
  try
    ignore (Legalize.run ~floorplan:fp ~widths ~desired ~movable);
    Alcotest.fail "overflow not detected"
  with Legalize.Overflow _ -> ()

let test_legalize_keeps_fixed () =
  let fp = Floorplan.of_rows ~num_rows:4 ~sites_per_row:50 ~geometry in
  let widths = [| 0; 3 |] in
  let pad = Geom.point 0.0 7.77 in
  let desired = [| pad; Geom.point 10.0 10.0 |] in
  let movable = [| false; true |] in
  let r = Legalize.run ~floorplan:fp ~widths ~desired ~movable in
  Alcotest.(check bool) "pad untouched" true (r.Legalize.positions.(0) = pad)

let test_legalize_high_density () =
  (* 90% density must still legalize thanks to the packing fallback. *)
  let fp = Floorplan.of_rows ~num_rows:10 ~sites_per_row:100 ~geometry in
  let rng = Rng.create 12 in
  let n = 300 in
  let widths = Array.make n 3 in
  let desired =
    Array.init n (fun _ ->
        Geom.point
          (Rng.float rng fp.Floorplan.die_width)
          (Rng.float rng fp.Floorplan.die_height))
  in
  let movable = Array.make n true in
  let r = Legalize.run ~floorplan:fp ~widths ~desired ~movable in
  (* Row frontiers cover at least the placed widths (gaps allowed) and
     never exceed the row capacity. *)
  let total_fill = Array.fold_left ( + ) 0 r.Legalize.row_fill in
  Alcotest.(check bool) "frontier covers widths" true (total_fill >= n * 3);
  Array.iter
    (fun fill -> if fill > 100 then Alcotest.fail "row overfilled")
    r.Legalize.row_fill

(* ------------------------- Mapped placement ------------------------- *)

let mapped_for_tests () =
  let subject = pla_subject 4 in
  let fp =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.55 ~aspect:1.0 ~geometry
  in
  let rng = Rng.create 20 in
  let positions = Placement.place_subject subject ~floorplan:fp ~rng in
  let r = Cals_core.Mapper.map subject ~library:lib ~positions Cals_core.Mapper.min_area in
  (r.Cals_core.Mapper.mapped, fp)

let test_place_mapped_seeded () =
  let mapped, fp = mapped_for_tests () in
  let pl = Placement.place_mapped_seeded mapped ~floorplan:fp in
  Alcotest.(check int) "cell positions" (Array.length mapped.Cals_netlist.Mapped.instances)
    (Array.length pl.Placement.cell_pos);
  Alcotest.(check bool) "hpwl positive" true (pl.Placement.hpwl > 0.0);
  Array.iter
    (fun p -> if not (Floorplan.contains fp p) then Alcotest.fail "cell outside")
    pl.Placement.cell_pos

let test_place_mapped_global () =
  let mapped, fp = mapped_for_tests () in
  let rng = Rng.create 21 in
  let pl = Placement.place_mapped_global mapped ~floorplan:fp ~rng in
  Alcotest.(check bool) "hpwl positive" true (pl.Placement.hpwl > 0.0)

(* ------------------------- Refine ------------------------- *)

let test_refine_never_worsens () =
  let mapped, fp = mapped_for_tests () in
  let hg, _, _ = Hypergraph.of_mapped mapped ~floorplan:fp in
  let pl = Placement.place_mapped_seeded mapped ~floorplan:fp in
  let positions =
    Array.init (Hypergraph.num_nodes hg) (fun i ->
        match hg.Hypergraph.fixed.(i) with
        | Some p -> p
        | None -> pl.Placement.cell_pos.(i))
  in
  let stats =
    Cals_place.Refine.run ~hypergraph:hg ~positions ~widths:hg.Hypergraph.weights ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "hpwl %.0f -> %.0f" stats.Cals_place.Refine.hpwl_before
       stats.Cals_place.Refine.hpwl_after)
    true
    (stats.Cals_place.Refine.hpwl_after
    <= stats.Cals_place.Refine.hpwl_before +. 1e-6);
  (* Fixed nodes stayed put. *)
  Array.iteri
    (fun i f ->
      match f with
      | Some p ->
        if positions.(i) <> p then Alcotest.fail "refine moved a pad"
      | None -> ())
    hg.Hypergraph.fixed

let test_refine_improves_crossed_pair () =
  (* Two cells whose positions are swapped relative to their nets. *)
  let weights = [| 0; 0; 2; 2 |] in
  let fixed =
    [| Some (Geom.point 0.0 5.0); Some (Geom.point 100.0 5.0); None; None |]
  in
  let nets = [| [| 0; 2 |]; [| 1; 3 |]; [| 2; 3 |] |] in
  let hg = { Hypergraph.weights; fixed; nets } in
  let positions =
    [| Geom.point 0.0 5.0; Geom.point 100.0 5.0; Geom.point 90.0 5.0;
       Geom.point 10.0 5.0 |]
  in
  let stats =
    Cals_place.Refine.run ~hypergraph:hg ~positions
      ~widths:[| 0; 0; 2; 2 |] ()
  in
  Alcotest.(check bool) "swapped" true (stats.Cals_place.Refine.swaps >= 1);
  Alcotest.(check bool) "hpwl improved" true
    (stats.Cals_place.Refine.hpwl_after < stats.Cals_place.Refine.hpwl_before)

(* ------------------------- Def ------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_def_well_formed () =
  let mapped, fp = mapped_for_tests () in
  let placement = Placement.place_mapped_seeded mapped ~floorplan:fp in
  let def = Cals_place.Def.print ~design:"t" mapped ~floorplan:fp ~placement in
  Alcotest.(check bool) "header" true (contains def "DESIGN t ;");
  Alcotest.(check bool) "diearea" true (contains def "DIEAREA ( 0 0 )");
  Alcotest.(check bool) "components" true
    (contains def
       (Printf.sprintf "COMPONENTS %d ;"
          (Array.length mapped.Cals_netlist.Mapped.instances)));
  Alcotest.(check bool) "rows" true (contains def "ROW core_0");
  Alcotest.(check bool) "ends" true (contains def "END DESIGN");
  (* Every instance is placed. *)
  Array.iteri
    (fun i _ ->
      if not (contains def (Printf.sprintf "- u%d " i)) then
        Alcotest.failf "instance u%d missing" i)
    mapped.Cals_netlist.Mapped.instances

let () =
  Alcotest.run "place"
    [
      ( "floorplan",
        [
          Alcotest.test_case "of_rows" `Quick test_floorplan_of_rows;
          Alcotest.test_case "for_area" `Quick test_floorplan_for_area;
          Alcotest.test_case "pads" `Quick test_floorplan_pads;
          Alcotest.test_case "invalid" `Quick test_floorplan_invalid;
        ] );
      ( "fm",
        [
          Alcotest.test_case "balance" `Quick test_fm_balance;
          Alcotest.test_case "locks" `Quick test_fm_respects_locks;
          Alcotest.test_case "beats random" `Quick test_fm_beats_random;
          Alcotest.test_case "sane cuts" `Quick test_fm_pass_never_worsens;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "inside die" `Quick test_bisect_inside_die;
          Alcotest.test_case "beats random" `Quick test_bisect_better_than_random;
          Alcotest.test_case "deterministic" `Quick test_bisect_deterministic;
        ] );
      ( "legalize",
        [
          Alcotest.test_case "no overlap" `Quick test_legalize_no_overlap;
          Alcotest.test_case "overflow" `Quick test_legalize_overflow;
          Alcotest.test_case "keeps fixed" `Quick test_legalize_keeps_fixed;
          Alcotest.test_case "high density" `Quick test_legalize_high_density;
        ] );
      ( "mapped",
        [
          Alcotest.test_case "seeded" `Quick test_place_mapped_seeded;
          Alcotest.test_case "global" `Quick test_place_mapped_global;
        ] );
      ( "refine",
        [
          Alcotest.test_case "never worsens" `Quick test_refine_never_worsens;
          Alcotest.test_case "fixes crossed pair" `Quick
            test_refine_improves_crossed_pair;
        ] );
      ( "def",
        [
          Alcotest.test_case "well formed" `Quick test_def_well_formed;
        ] );
    ]
