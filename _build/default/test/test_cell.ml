module Pattern = Cals_cell.Pattern
module Cell = Cals_cell.Cell
module Library = Cals_cell.Library
module Stdlib_018 = Cals_cell.Stdlib_018

let lib = Stdlib_018.library

(* ------------------------- Pattern ------------------------- *)

let nand2 = Pattern.Nand (Pattern.Var 0, Pattern.Var 1)
let inv = Pattern.Inv (Pattern.Var 0)
let aoi21 = Pattern.Inv (Pattern.Nand (nand2, Pattern.Inv (Pattern.Var 2)))

let test_pattern_metrics () =
  Alcotest.(check int) "nand2 vars" 2 (Pattern.num_vars nand2);
  Alcotest.(check int) "nand2 size" 1 (Pattern.size nand2);
  Alcotest.(check int) "aoi21 vars" 3 (Pattern.num_vars aoi21);
  Alcotest.(check int) "aoi21 size" 4 (Pattern.size aoi21);
  Alcotest.(check int) "aoi21 depth" 3 (Pattern.depth aoi21);
  Alcotest.(check int) "inv depth" 1 (Pattern.depth inv)

let test_pattern_eval () =
  Alcotest.(check bool) "nand 11" false (Pattern.eval nand2 [| true; true |]);
  Alcotest.(check bool) "nand 01" true (Pattern.eval nand2 [| false; true |]);
  Alcotest.(check bool) "inv" false (Pattern.eval inv [| true |]);
  (* AOI21 = NOT(ab + c) *)
  Alcotest.(check bool) "aoi21 ab" false (Pattern.eval aoi21 [| true; true; false |]);
  Alcotest.(check bool) "aoi21 c" false (Pattern.eval aoi21 [| false; false; true |]);
  Alcotest.(check bool) "aoi21 none" true (Pattern.eval aoi21 [| false; true; false |])

let test_pattern_eval64_matches_eval () =
  let patterns = List.concat_map (fun c -> c.Cell.patterns) (Library.cells lib) in
  List.iter
    (fun p ->
      let n = Pattern.num_vars p in
      for row = 0 to (1 lsl n) - 1 do
        let bools = Array.init n (fun i -> row land (1 lsl i) <> 0) in
        let vecs = Array.map (fun b -> if b then 1L else 0L) bools in
        let expect = Pattern.eval p bools in
        let got = Int64.logand (Pattern.eval64 p vecs) 1L = 1L in
        if expect <> got then
          Alcotest.failf "eval64 mismatch on %s row %d" (Pattern.to_string p) row
      done)
    patterns

let test_pattern_validate () =
  (match Pattern.validate (Pattern.Nand (Pattern.Var 0, Pattern.Var 2)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "skipped variable accepted");
  match Pattern.validate aoi21 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pattern_to_string () =
  Alcotest.(check string) "render" "NAND(x0,x1)" (Pattern.to_string nand2)

(* ------------------------- Cell ------------------------- *)

let test_cell_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "BAD: patterns disagree on arity") (fun () ->
      ignore
        (Cell.make ~name:"BAD" ~width_sites:2 ~site_width:0.66 ~row_height:5.04
           ~input_cap_pf:0.004 ~intrinsic_ns:0.02 ~drive_kohm:3.0
           [ nand2; inv ]))

let test_cell_function_check () =
  Alcotest.check_raises "function mismatch"
    (Invalid_argument "BAD2: patterns disagree on function") (fun () ->
      ignore
        (Cell.make ~name:"BAD2" ~width_sites:2 ~site_width:0.66 ~row_height:5.04
           ~input_cap_pf:0.004 ~intrinsic_ns:0.02 ~drive_kohm:3.0
           [ nand2; Pattern.Inv nand2 ]))

let test_cell_area () =
  let c = Library.find lib "INV" in
  Alcotest.(check (float 1e-6)) "inv area" (2.0 *. 0.66 *. 5.04) c.Cell.area

let test_cell_delay_linear () =
  let c = Library.find lib "NAND2" in
  let d0 = Cell.delay_ns c ~load_pf:0.0 in
  let d1 = Cell.delay_ns c ~load_pf:0.1 in
  Alcotest.(check (float 1e-9)) "intrinsic" c.Cell.intrinsic_ns d0;
  Alcotest.(check bool) "monotone in load" true (d1 > d0)

(* ------------------------- Library ------------------------- *)

let test_library_lookup () =
  Alcotest.(check string) "inv" "INV" (Library.inv lib).Cell.name;
  Alcotest.(check string) "nand2" "NAND2" (Library.nand2 lib).Cell.name;
  Alcotest.(check bool) "missing" true (Library.find_opt lib "NONSUCH" = None);
  Alcotest.(check int) "cell count" 18 (Library.size lib)

let test_library_requires_base_cells () =
  let geometry = Library.geometry lib in
  let wire = Library.wire lib in
  Alcotest.check_raises "missing base" (Invalid_argument "Library.make: missing INV")
    (fun () -> ignore (Library.make ~name:"empty" geometry wire []))

let test_library_max_pattern_size () =
  Alcotest.(check bool) "pattern size sane" true (Library.max_pattern_size lib >= 5)

(* Truth tables of the synthetic library against reference functions. *)
let test_library_functions () =
  let check name arity f =
    let cell = Library.find lib name in
    Alcotest.(check int) (name ^ " arity") arity (Cell.num_inputs cell);
    for row = 0 to (1 lsl arity) - 1 do
      let ins = Array.init arity (fun i -> row land (1 lsl i) <> 0) in
      if Cell.eval cell ins <> f ins then Alcotest.failf "%s wrong at row %d" name row
    done
  in
  check "INV" 1 (fun v -> not v.(0));
  check "BUF" 1 (fun v -> v.(0));
  check "NAND2" 2 (fun v -> not (v.(0) && v.(1)));
  check "NAND3" 3 (fun v -> not (v.(0) && v.(1) && v.(2)));
  check "NAND4" 4 (fun v -> not (v.(0) && v.(1) && v.(2) && v.(3)));
  check "NOR2" 2 (fun v -> not (v.(0) || v.(1)));
  check "NOR3" 3 (fun v -> not (v.(0) || v.(1) || v.(2)));
  check "AND2" 2 (fun v -> v.(0) && v.(1));
  check "AND3" 3 (fun v -> v.(0) && v.(1) && v.(2));
  check "OR2" 2 (fun v -> v.(0) || v.(1));
  check "OR3" 3 (fun v -> v.(0) || v.(1) || v.(2));
  check "AOI21" 3 (fun v -> not ((v.(0) && v.(1)) || v.(2)));
  check "AOI22" 4 (fun v -> not ((v.(0) && v.(1)) || (v.(2) && v.(3))));
  check "OAI21" 3 (fun v -> not ((v.(0) || v.(1)) && v.(2)));
  check "OAI22" 4 (fun v -> not ((v.(0) || v.(1)) && (v.(2) || v.(3))));
  check "XOR2" 2 (fun v -> v.(0) <> v.(1));
  check "XNOR2" 2 (fun v -> v.(0) = v.(1));
  check "MUX21" 3 (fun v -> if v.(2) then v.(1) else v.(0))

(* The Figure-1 premise: multi-input cells are cheaper than composing base
   cells, and the congestion-friendly cover is larger than the min-area
   cover. *)
let test_library_area_ordering () =
  let area n = (Library.find lib n).Cell.area in
  Alcotest.(check bool) "NAND3 < NAND2+INV+NAND2" true
    (area "NAND3" < area "NAND2" +. area "INV" +. area "NAND2");
  Alcotest.(check bool) "AOI21 < 2xNAND2+2xINV" true
    (area "AOI21" < (2.0 *. area "NAND2") +. (2.0 *. area "INV"));
  let min_area_cover = area "NAND3" +. area "AOI21" +. (2.0 *. area "INV") in
  let congestion_cover =
    (2.0 *. area "OR2") +. (2.0 *. area "NAND2") +. area "INV"
  in
  Alcotest.(check bool) "figure-1 ordering" true (min_area_cover < congestion_cover)

(* ------------------------- Liberty ------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_liberty_functions () =
  let f name = Cals_cell.Liberty.function_of_cell (Library.find lib name) in
  Alcotest.(check string) "inv" "!a" (f "INV");
  Alcotest.(check string) "nand2" "!(a b)" (f "NAND2");
  Alcotest.(check string) "aoi21" "((!(a b)) !c)" (f "AOI21")

let test_liberty_print () =
  let text = Cals_cell.Liberty.print lib in
  Alcotest.(check bool) "library header" true (contains text "library (VIRTLIB018)");
  List.iter
    (fun (c : Cell.t) ->
      if not (contains text (Printf.sprintf "cell (%s)" c.Cell.name)) then
        Alcotest.failf "missing cell %s" c.Cell.name)
    (Library.cells lib);
  Alcotest.(check bool) "has output pin" true (contains text "pin (y)");
  Alcotest.(check bool) "has area" true (contains text "area :")

let () =
  Alcotest.run "cell"
    [
      ( "pattern",
        [
          Alcotest.test_case "metrics" `Quick test_pattern_metrics;
          Alcotest.test_case "eval" `Quick test_pattern_eval;
          Alcotest.test_case "eval64 = eval" `Quick test_pattern_eval64_matches_eval;
          Alcotest.test_case "validate" `Quick test_pattern_validate;
          Alcotest.test_case "to_string" `Quick test_pattern_to_string;
        ] );
      ( "cell",
        [
          Alcotest.test_case "arity check" `Quick test_cell_arity_check;
          Alcotest.test_case "function check" `Quick test_cell_function_check;
          Alcotest.test_case "area" `Quick test_cell_area;
          Alcotest.test_case "delay linear" `Quick test_cell_delay_linear;
        ] );
      ( "library",
        [
          Alcotest.test_case "lookup" `Quick test_library_lookup;
          Alcotest.test_case "requires base cells" `Quick
            test_library_requires_base_cells;
          Alcotest.test_case "max pattern size" `Quick test_library_max_pattern_size;
          Alcotest.test_case "cell functions" `Quick test_library_functions;
          Alcotest.test_case "figure-1 area ordering" `Quick
            test_library_area_ordering;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "functions" `Quick test_liberty_functions;
          Alcotest.test_case "print" `Quick test_liberty_print;
        ] );
    ]
