(* End-to-end flow with timing: generate, optimize lightly, decompose,
   place the unbound netlist, run the Figure-3 loop until the congestion
   map is clean, then report post-route static timing -- the full modified
   ASIC design flow of the paper. *)

module Flow = Cals_core.Flow
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan
module Congestion = Cals_route.Congestion
module Router = Cals_route.Router
module Sta = Cals_sta.Sta

let () =
  let library = Cals_cell.Stdlib_018.library in
  let geometry = Cals_cell.Library.geometry library in
  let wire = Cals_cell.Library.wire library in

  print_endline "1. Technology-independent synthesis";
  let network = Cals_workload.Presets.pdc_like ~scale:0.1 ~seed:11 () in
  Cals_logic.Optimize.script_light network;
  let subject = Cals_logic.Decompose.subject_of_network network in
  Printf.printf "   %d base gates, %d PIs, %d POs\n\n"
    (Subject.num_gates subject) (Subject.num_pis subject)
    (Array.length subject.Subject.outputs);

  print_endline "2. Floorplan and congestion-aware mapping loop (Figure 3)";
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.55 ~aspect:1.0 ~geometry
  in
  Printf.printf "   die: %s\n" (Floorplan.describe floorplan);
  let outcome =
    Flow.run ~subject ~library ~floorplan ~rng:(Cals_util.Rng.create 12) ()
  in
  List.iter
    (fun it ->
      Printf.printf "   K=%-8g %s\n" it.Flow.k (Congestion.summary it.Flow.report))
    outcome.Flow.iterations;
  print_newline ();

  match (outcome.Flow.mapped, outcome.Flow.placement, outcome.Flow.routing) with
  | Some mapped, Some placement, Some routing ->
    print_endline "3. Post-route static timing analysis";
    let report =
      Sta.analyze ~net_length_um:routing.Router.net_length_um mapped ~wire
        ~placement
    in
    Printf.printf "   critical path: %s\n"
      (Sta.endpoint_to_string report.Sta.critical);
    print_endline "   stages:";
    List.iter
      (fun (label, t) -> Printf.printf "     %-16s %8.3f ns\n" label t)
      report.Sta.critical_path;
    Printf.printf "   slowest five endpoints:\n";
    report.Sta.endpoints |> Array.to_list
    |> List.sort (fun a b -> compare b.Sta.arrival_ns a.Sta.arrival_ns)
    |> (fun l -> List.filteri (fun i _ -> i < 5) l)
    |> List.iter (fun e -> Printf.printf "     %s\n" (Sta.endpoint_to_string e))
  | _ ->
    print_endline
      "3. No K in the schedule produced an acceptable congestion map;\n\
      \   relax the floorplan constraints or resynthesize (paper, Section 5)."
