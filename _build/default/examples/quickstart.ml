(* Quickstart: generate a small PLA-style circuit, decompose it to base
   gates, place the unbound netlist once, then map it twice — min-area
   (K = 0) and congestion-aware (K > 0) — and compare area, wirelength and
   routing violations inside the same floorplan. *)

let () =
  let seed = 1 in
  let library = Cals_cell.Stdlib_018.library in
  let geometry = Cals_cell.Library.geometry library in
  let wire = Cals_cell.Library.wire library in

  (* 1. A small shared-product PLA (the paper's SPLA/PDC signature). *)
  let rng = Cals_util.Rng.create seed in
  let network =
    Cals_workload.Gen.pla ~rng ~inputs:12 ~outputs:12 ~products:80
      ~terms_lo:8 ~terms_hi:20 ()
  in
  Cals_logic.Network.sweep network;
  let subject = Cals_logic.Decompose.subject_of_network network in
  Printf.printf "circuit: %d base gates (%d NAND2 + %d INV), %d PIs, %d POs\n"
    (Cals_netlist.Subject.num_gates subject)
    (Cals_netlist.Subject.num_nand2 subject)
    (Cals_netlist.Subject.num_inv subject)
    (Cals_netlist.Subject.num_pis subject)
    (Array.length subject.Cals_netlist.Subject.outputs);

  (* 2. Floorplan sized for ~62% utilization of the min-area mapping. *)
  let floorplan =
    Cals_place.Floorplan.for_area
      ~core_area:(float_of_int (Cals_netlist.Subject.num_gates subject) *. 9.0)
      ~utilization:0.62 ~aspect:1.0 ~geometry
  in
  Printf.printf "floorplan: %s\n\n" (Cals_place.Floorplan.describe floorplan);

  (* 3. Companion placement of the technology-independent netlist. *)
  let prng = Cals_util.Rng.create (seed + 1) in
  let positions =
    Cals_place.Placement.place_subject subject ~floorplan ~rng:prng
  in

  (* 4. Map at two K values and compare. *)
  let run_k k =
    let iteration, (mapped, _placement, _routing) =
      Cals_core.Flow.evaluate_k ~subject ~library ~floorplan ~positions ~k ()
    in
    let ok =
      Cals_netlist.Subject.simulate subject
        (Array.map
           (fun name -> if name = "__const0" then 0L else 0x5DEECE66DL)
           subject.Cals_netlist.Subject.pi_names)
      = Cals_netlist.Mapped.simulate mapped
          (Array.map
             (fun name -> if name = "__const0" then 0L else 0x5DEECE66DL)
             mapped.Cals_netlist.Mapped.pi_names)
    in
    Printf.printf
      "K=%-7g cells=%-5d area=%-9.0f util=%4.1f%%  hpwl=%-9.0f violations=%-5d \
       (function preserved: %b)\n"
      k iteration.Cals_core.Flow.cells iteration.Cals_core.Flow.cell_area
      (100.0 *. iteration.Cals_core.Flow.utilization)
      iteration.Cals_core.Flow.hpwl_um
      iteration.Cals_core.Flow.report.Cals_route.Congestion.violations ok
  in
  List.iter run_k [ 0.0; 0.0005; 0.002; 0.01 ];
  ignore wire;
  print_newline ();
  print_endline
    "Raising K trades cell area for shorter fanin wires; the sweet spot\n\
     routes violation-free in the same die (paper, Tables 2 and 4)."
