(* The paper's Figure 1 in executable form: the same subject subgraph
   (f = NOT(a*b + c)) mapped for minimum area and for congestion, with the
   hand placement that puts a, b far from c. Prints both covers, their cell
   areas and their fanin wirelengths, and shows the cost crossover as K
   grows. *)

module Mapper = Cals_core.Mapper
module Mapped = Cals_netlist.Mapped
module Subject = Cals_netlist.Subject
module Geom = Cals_util.Geom

let () =
  let library = Cals_cell.Stdlib_018.library in
  let subject, positions = Cals_workload.Presets.figure1 () in
  print_endline "Subject graph of f = NOT(a*b + c):";
  Array.iteri
    (fun v g ->
      let kind =
        match g with
        | Subject.Pi i -> Printf.sprintf "PI %s" subject.Subject.pi_names.(i)
        | Subject.Inv a -> Printf.sprintf "INV(n%d)" a
        | Subject.Nand2 (a, b) -> Printf.sprintf "NAND(n%d,n%d)" a b
      in
      Printf.printf "  n%d = %-14s at (%.0f, %.0f)\n" v kind positions.(v).Geom.x
        positions.(v).Geom.y)
    subject.Subject.gates;
  print_newline ();
  let describe k =
    let r = Mapper.map subject ~library ~positions (Mapper.congestion_aware ~k) in
    let mapped = r.Mapper.mapped in
    let cover =
      Mapped.cell_histogram mapped
      |> List.map (fun (n, c) -> Printf.sprintf "%dx%s" c n)
      |> String.concat " + "
    in
    let wirelength = ref 0.0 in
    Array.iter
      (fun inst ->
        Array.iter
          (fun s ->
            let src =
              match s with
              | Mapped.Of_pi i -> positions.(i)
              | Mapped.Of_inst j -> mapped.Mapped.instances.(j).Mapped.seed
            in
            wirelength := !wirelength +. Geom.manhattan src inst.Mapped.seed)
          inst.Mapped.fanins)
      mapped.Mapped.instances;
    Printf.printf "K=%-5g cover: %-28s area %6.2f um2, fanin wirelength %6.1f um\n"
      k cover (Mapped.total_area mapped) !wirelength
  in
  List.iter describe [ 0.0; 0.001; 0.01; 0.05; 0.2 ];
  print_newline ();
  print_endline
    "At K = 0 the mapper picks the single complex cell (minimum area) whose\n\
     fanin wires stretch across the image; once K prices the wirelength in,\n\
     it splits the cover into simple cells placed next to their operands --\n\
     exactly the trade-off of the paper's Figure 1."
