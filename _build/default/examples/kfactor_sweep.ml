(* A miniature Table 2: sweep the congestion factor K on a PLA-style
   circuit and watch cell area rise while wirelength falls, with routing
   violations tracing the three-region behaviour of the paper.

   Usage: dune exec examples/kfactor_sweep.exe [-- SCALE]  (default 0.12) *)

module Flow = Cals_core.Flow
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Congestion = Cals_route.Congestion

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.12
  in
  let library = Cals_cell.Stdlib_018.library in
  let geometry = Cals_cell.Library.geometry library in
  let network = Cals_workload.Presets.spla_like ~scale ~seed:7 () in
  Cals_logic.Network.sweep network;
  let subject = Cals_logic.Decompose.subject_of_network network in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.58 ~aspect:1.0 ~geometry
  in
  Printf.printf "circuit: %d base gates, die %s\n\n"
    (Subject.num_gates subject)
    (Floorplan.describe floorplan);
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Cals_util.Rng.create 3)
  in
  Printf.printf "%-9s %-7s %-10s %-7s %-10s %s\n" "K" "cells" "area" "util%"
    "hpwl" "violations";
  List.iter
    (fun k ->
      let it, _ =
        Flow.evaluate_k ~subject ~library ~floorplan ~positions ~k ()
      in
      Printf.printf "%-9g %-7d %-10.0f %-7.2f %-10.0f %d\n" k it.Flow.cells
        it.Flow.cell_area
        (100.0 *. it.Flow.utilization)
        it.Flow.hpwl_um it.Flow.report.Congestion.violations)
    Flow.default_k_schedule
