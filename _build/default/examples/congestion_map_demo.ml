(* Visualize the congestion map: route the same circuit mapped at K = 0 and
   at the congestion-aware K, and print both gcell heat maps with the
   router's verdicts. *)

module Mapper = Cals_core.Mapper
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion

let () =
  let library = Cals_cell.Stdlib_018.library in
  let geometry = Cals_cell.Library.geometry library in
  let wire = Cals_cell.Library.wire library in
  let network = Cals_workload.Presets.spla_like ~scale:0.15 ~seed:9 () in
  Cals_logic.Network.sweep network;
  let subject = Cals_logic.Decompose.subject_of_network network in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.6 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Cals_util.Rng.create 4)
  in
  let route k =
    let r = Mapper.map subject ~library ~positions (Mapper.congestion_aware ~k) in
    let mapped = r.Cals_core.Mapper.mapped in
    let placement = Placement.place_mapped_seeded mapped ~floorplan in
    Router.route_mapped mapped ~floorplan ~wire ~placement
  in
  let show k =
    let result = route k in
    let report = Congestion.of_result result in
    Printf.printf "K = %g: %s\n" k (Congestion.summary report);
    print_string (Congestion.ascii_map result);
    print_newline ()
  in
  Printf.printf "circuit: %d base gates, die %s\n\n"
    (Subject.num_gates subject)
    (Floorplan.describe floorplan);
  show 0.0;
  show 0.001;
  print_endline
    "Darker cells are closer to the routing capacity; the congestion-aware\n\
     mapping flattens the hot center that the min-area netlist creates."
