examples/quickstart.mli:
