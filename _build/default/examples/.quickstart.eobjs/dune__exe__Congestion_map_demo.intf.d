examples/congestion_map_demo.mli:
