examples/timing_closure_flow.mli:
