examples/figure1_mapping.mli:
