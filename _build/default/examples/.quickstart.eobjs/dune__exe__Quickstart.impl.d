examples/quickstart.ml: Array Cals_cell Cals_core Cals_logic Cals_netlist Cals_place Cals_route Cals_util Cals_workload List Printf
