examples/kfactor_sweep.mli:
