examples/figure1_mapping.ml: Array Cals_cell Cals_core Cals_netlist Cals_util Cals_workload List Printf String
