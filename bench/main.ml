(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Tables 1-5, Figures 1 and 3) on synthetic IWLS-like
   workloads, plus ablation sweeps and Bechamel micro-benchmarks (one
   Test.make per table). See EXPERIMENTS.md for the paper-vs-measured
   comparison. *)

module Rng = Cals_util.Rng
module Geom = Cals_util.Geom
module Tables = Cals_util.Tables
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Network = Cals_logic.Network
module Optimize = Cals_logic.Optimize
module Decompose = Cals_logic.Decompose
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion
module Estimate = Cals_estimate.Estimate
module Sta = Cals_sta.Sta
module Mapper = Cals_core.Mapper
module Partition = Cals_core.Partition
module Incremental = Cals_core.Incremental
module Flow = Cals_core.Flow
module Check = Cals_verify.Check
module Presets = Cals_workload.Presets
module Probe = Cals_telemetry.Probe
module Ring = Cals_telemetry.Ring
module Metrics = Cals_telemetry.Metrics
module Export = Cals_telemetry.Export
module Fuzz = Cals_verify.Fuzz
module Proto = Cals_serve.Proto
module Scheduler = Cals_serve.Scheduler

let library = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry library
let wire = Cals_cell.Library.wire library
let router_config = { Router.default_config with reroute_iterations = 16 }

let k_schedule = Flow.default_k_schedule

(* ------------------------------------------------------------------ *)
(* Benchmark circuits                                                  *)
(* ------------------------------------------------------------------ *)

type circuit = {
  name : string;
  subject : Subject.t;
  floorplan : Floorplan.t;
  positions : Geom.point array;  (** Companion placement, computed once. *)
}

(* Die sized so that the min-area mapping lands at the utilization the
   calibration found to sit at the routability edge. *)
let target_utilization = 0.58

let build_circuit ~name ~seed ~scale ~make_network =
  let network = make_network ~seed ~scale in
  Network.sweep network;
  let subject = Decompose.subject_of_network network in
  (* ~5 um2 of mapped cell area per base gate under min-area covering. *)
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:target_utilization ~aspect:1.0 ~geometry
  in
  let rng = Rng.create (seed * 7919) in
  let positions = Placement.place_subject subject ~floorplan ~rng in
  { name; subject; floorplan; positions }

let spla ~scale =
  build_circuit ~name:"SPLA" ~seed:7 ~scale ~make_network:(fun ~seed ~scale ->
      Presets.spla_like ~scale ~seed ())

let pdc ~scale =
  build_circuit ~name:"PDC" ~seed:11 ~scale ~make_network:(fun ~seed ~scale ->
      Presets.pdc_like ~scale ~seed ())

(* ------------------------------------------------------------------ *)
(* One K point: map -> seeded placement -> route                       *)
(* ------------------------------------------------------------------ *)

type point_result = {
  k : float;
  mapped : Mapped.t;
  placement : Placement.mapped_placement option;
  routing : Router.result option;
}

let run_point ?(strategy = Partition.Pdp) circuit k =
  let options = { (Mapper.congestion_aware ~k) with strategy } in
  let result =
    Mapper.map circuit.subject ~library ~positions:circuit.positions options
  in
  let mapped = result.Mapper.mapped in
  match Placement.place_mapped_seeded mapped ~floorplan:circuit.floorplan with
  | exception Cals_place.Legalize.Overflow _ ->
    { k; mapped; placement = None; routing = None }
  | placement ->
    let routing =
      Router.route_mapped ~config:router_config mapped
        ~floorplan:circuit.floorplan ~wire ~placement
    in
    { k; mapped; placement = Some placement; routing = Some routing }

(* ------------------------------------------------------------------ *)
(* Tables 2 and 4: K sweep                                             *)
(* ------------------------------------------------------------------ *)

let k_sweep_table circuit =
  Printf.printf "%s: %d base gates (%d NAND2 + %d INV), floorplan %s\n"
    circuit.name
    (Subject.num_gates circuit.subject)
    (Subject.num_nand2 circuit.subject)
    (Subject.num_inv circuit.subject)
    (Floorplan.describe circuit.floorplan);
  let rows =
    List.map
      (fun k ->
        let p = run_point circuit k in
        let area = Mapped.total_area p.mapped in
        let util =
          100.0 *. Floorplan.utilization circuit.floorplan ~cell_area:area
        in
        let violations =
          match p.routing with
          | Some r -> string_of_int r.Router.violations
          | None -> "DNF"
        in
        let hpwl =
          match p.placement with
          | Some pl -> Tables.fmt_int (int_of_float pl.Placement.hpwl)
          | None -> "-"
        in
        [
          Printf.sprintf "%g" k;
          Tables.fmt_int (int_of_float area);
          Tables.fmt_int (Mapped.num_cells p.mapped);
          Tables.fmt_float 2 util;
          hpwl;
          violations;
        ])
      k_schedule
  in
  print_string
    (Tables.render
       ~title:
         (Printf.sprintf "%s congestion minimization vs place&route results"
            circuit.name)
       ~header:
         [ "K"; "Cell Area (um2)"; "No. of Cells"; "Area Utilization%";
           "HPWL (um)"; "Routing violations" ]
       [ Tables.Left; Tables.Right; Tables.Right; Tables.Right; Tables.Right;
         Tables.Right ]
       rows);
  print_newline ()

let table2 ~scale = k_sweep_table (spla ~scale)
let table4 ~scale = k_sweep_table (pdc ~scale)

(* ------------------------------------------------------------------ *)
(* Tables 3 and 5: static timing analysis                              *)
(* ------------------------------------------------------------------ *)

(* The "SIS" netlist: aggressive technology-independent optimization first,
   then min-area mapping of its own decomposition. *)
let sis_variant circuit make_network ~seed ~scale =
  let network = make_network ~seed ~scale in
  Network.sweep network;
  Optimize.script_area ~rounds:1 network;
  let subject = Decompose.subject_of_network network in
  let rng = Rng.create (seed * 104729) in
  let positions = Placement.place_subject subject ~floorplan:circuit.floorplan ~rng in
  { circuit with name = circuit.name ^ "-SIS"; subject; positions }

let sta_point circuit k =
  let p = run_point circuit k in
  match (p.placement, p.routing) with
  | Some placement, Some routing ->
    let report =
      Sta.analyze ~net_length_um:routing.Router.net_length_um p.mapped ~wire
        ~placement
    in
    Some (p, placement, routing, report)
  | _ -> None

let sta_table ~scale ~circuit_of ~make_network ~seed =
  let circuit = circuit_of ~scale in
  let sis = sis_variant circuit make_network ~seed ~scale in
  let k_star = 0.001 in
  let named =
    [
      ("0.0", circuit, 0.0);
      (Printf.sprintf "%g" k_star, circuit, k_star);
      ("SIS", sis, 0.0);
    ]
  in
  (* Reference path: endpoints of the K = 0 critical path. *)
  let reference = sta_point circuit 0.0 in
  let ref_pi, ref_po =
    match reference with
    | Some (_, _, _, r) -> (r.Sta.critical.Sta.through_pi, r.Sta.critical.Sta.po)
    | None -> ("-", "-")
  in
  let rows =
    List.filter_map
      (fun (label, c, k) ->
        match sta_point c k with
        | None -> Some [ label; "does not fit"; "-"; "-"; "-" ]
        | Some (p, placement, routing, report) ->
          let same_path =
            match
              Sta.po_arrival_from_pi ~net_length_um:routing.Router.net_length_um
                p.mapped ~wire ~placement ~pi:ref_pi ~po:ref_po
            with
            | Some t -> Printf.sprintf "%s (in)  %s (out)  %.2f" ref_pi ref_po t
            | None -> "path absent"
          in
          Some
            [
              label;
              Sta.endpoint_to_string report.Sta.critical;
              same_path;
              Printf.sprintf "%d" routing.Router.violations;
              Tables.fmt_int (int_of_float routing.Router.wirelength_um);
            ])
      named
  in
  print_string
    (Tables.render
       ~title:(Printf.sprintf "%s static timing analysis results" circuit.name)
       ~header:
         [ "K"; "Critical path arrival (ns)"; "Same path as K=0 critical";
           "Violations"; "Routed WL (um)" ]
       [ Tables.Left; Tables.Left; Tables.Left; Tables.Right; Tables.Right ]
       rows);
  print_newline ()

let table3 ~scale =
  sta_table ~scale ~circuit_of:spla ~seed:7 ~make_network:(fun ~seed ~scale ->
      Presets.spla_like ~scale ~seed ())

let table5 ~scale =
  sta_table ~scale ~circuit_of:pdc ~seed:11 ~make_network:(fun ~seed ~scale ->
      Presets.pdc_like ~scale ~seed ())

(* ------------------------------------------------------------------ *)
(* Table 1: TOO_LARGE, SIS flow vs DAGON flow in the same floorplan    *)
(* ------------------------------------------------------------------ *)

let table1 ~scale =
  let seed = 5 in
  let make ~seed ~scale = Presets.too_large_like ~scale ~seed () in
  let baseline =
    build_circuit ~name:"TOO_LARGE" ~seed ~scale ~make_network:make
  in
  let sis = sis_variant baseline make ~seed ~scale in
  (* Both flows place & route inside the baseline's floorplan, like the
     paper's identical-die comparison. *)
  let sis = { sis with floorplan = baseline.floorplan } in
  Printf.printf
    "TOO_LARGE: baseline %d base gates, SIS-optimized %d base gates, die %s\n"
    (Subject.num_gates baseline.subject)
    (Subject.num_gates sis.subject)
    (Floorplan.describe baseline.floorplan);
  let rows =
    List.map
      (fun (label, circuit) ->
        let p = run_point ~strategy:Partition.Dagon circuit 0.0 in
        let area = Mapped.total_area p.mapped in
        let util = 100.0 *. Floorplan.utilization circuit.floorplan ~cell_area:area in
        let violations =
          match p.routing with
          | Some r -> string_of_int r.Router.violations
          | None -> "DNF"
        in
        [
          label;
          Tables.fmt_int (int_of_float area);
          string_of_int circuit.floorplan.Floorplan.num_rows;
          Tables.fmt_float 2 util;
          violations;
        ])
      [ ("SIS", sis); ("DAGON", baseline) ]
  in
  print_string
    (Tables.render ~title:"TOO_LARGE routing results"
       ~header:
         [ ""; "Cell Area (um2)"; "No. of Rows"; "Area Utilization%";
           "Routing violations" ]
       [ Tables.Left; Tables.Right; Tables.Right; Tables.Right; Tables.Right ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 1: min-area vs congestion mapping on the micro example       *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  let subject, positions = Presets.figure1 () in
  print_endline "Figure 1: minimum-area vs congestion mapping of f = NOT(a*b + c)";
  let show label k =
    let r =
      Mapper.map subject ~library ~positions (Mapper.congestion_aware ~k)
    in
    let mapped = r.Mapper.mapped in
    let cells =
      Mapped.cell_histogram mapped
      |> List.map (fun (n, c) -> Printf.sprintf "%dx%s" c n)
      |> String.concat " + "
    in
    (* Total fanin wirelength from the mapped seeds. *)
    let wl = ref 0.0 in
    Array.iteri
      (fun _ inst ->
        Array.iter
          (fun s ->
            let src =
              match s with
              | Mapped.Of_pi i ->
                (* PI pads sit at the subject PI positions here. *)
                let rec find v =
                  match subject.Subject.gates.(v) with
                  | Subject.Pi idx when idx = i -> positions.(v)
                  | _ -> find (v + 1)
                in
                find 0
              | Mapped.Of_inst j -> mapped.Mapped.instances.(j).Mapped.seed
            in
            wl := !wl +. Geom.manhattan src inst.Mapped.seed)
          inst.Mapped.fanins)
      mapped.Mapped.instances;
    Printf.printf "  %-22s %-28s area %6.2f um2, fanin wirelength %7.1f um\n"
      label cells (Mapped.total_area mapped) !wl
  in
  show "1. minimum area (K=0)" 0.0;
  show "2. congestion (K=0.05)" 0.05;
  print_endline
    "  The congestion-aware cover pays cell area to place fanin gates near\n\
    \  their fanouts, cutting the wirelength (paper, Figure 1).";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 3: the methodology loop                                      *)
(* ------------------------------------------------------------------ *)

let figure3 ~scale =
  print_endline "Figure 3: congestion-aware synthesis flow (K escalation)";
  let network = Presets.spla_like ~scale:(scale *. 0.6) ~seed:21 () in
  Network.sweep network;
  let subject = Decompose.subject_of_network network in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.5 ~aspect:1.0 ~geometry
  in
  let outcome =
    Flow.run ~router_config ~subject ~library ~floorplan ~rng:(Rng.create 22) ()
  in
  List.iter
    (fun it ->
      Printf.printf
        "  K=%-8g cells=%-5d util=%5.2f%%  %s\n" it.Flow.k it.Flow.cells
        (100.0 *. it.Flow.utilization)
        (Congestion.summary it.Flow.report))
    outcome.Flow.iterations;
  (match outcome.Flow.accepted with
  | Some it -> Printf.printf "  -> congestion OK at K=%g; proceed to final P&R\n" it.Flow.k
  | None -> print_endline "  -> no K in the schedule satisfied the congestion map");
  (match outcome.Flow.routing with
  | Some r ->
    print_endline "  final congestion map:";
    print_string (Congestion.ascii_map r)
  | None -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations ~scale =
  let circuit = spla ~scale:(scale *. 0.6) in
  Printf.printf "Ablations on %s (%d gates)\n" circuit.name
    (Subject.num_gates circuit.subject);
  let evaluate label options =
    let r = Mapper.map circuit.subject ~library ~positions:circuit.positions options in
    let mapped = r.Mapper.mapped in
    match Placement.place_mapped_seeded mapped ~floorplan:circuit.floorplan with
    | exception Cals_place.Legalize.Overflow _ ->
      [ label; Tables.fmt_int (int_of_float (Mapped.total_area mapped));
        string_of_int (Mapped.num_cells mapped); "-"; "DNF" ]
    | placement ->
      let routing =
        Router.route_mapped ~config:router_config mapped
          ~floorplan:circuit.floorplan ~wire ~placement
      in
      [
        label;
        Tables.fmt_int (int_of_float (Mapped.total_area mapped));
        string_of_int (Mapped.num_cells mapped);
        Tables.fmt_int (int_of_float placement.Placement.hpwl);
        string_of_int routing.Router.violations;
      ]
  in
  let k = 0.001 in
  let base = Mapper.congestion_aware ~k in
  let rows =
    [
      evaluate "PDP + Eq.5 (paper)" base;
      evaluate "DAGON partitioning" { base with Mapper.strategy = Partition.Dagon };
      evaluate "MIS cones" { base with Mapper.strategy = Partition.Cone };
      evaluate "Euclidean distance" { base with Mapper.distance = Geom.euclidean };
      evaluate "no WIRE2 (Eq.3 off)" { base with Mapper.include_wire2 = false };
      evaluate "no incremental update" { base with Mapper.incremental_update = false };
      evaluate "transitive wire [9]" { base with Mapper.transitive_wire = true };
      evaluate "min-area (K=0)" Mapper.min_area;
    ]
  in
  print_string
    (Tables.render
       ~title:(Printf.sprintf "Design-choice ablations at K=%g" k)
       ~header:[ "Variant"; "Cell Area"; "Cells"; "HPWL (um)"; "Violations" ]
       [ Tables.Left; Tables.Right; Tables.Right; Tables.Right; Tables.Right ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Perf: per-stage wall-clock, sequential vs parallel flow, JSON dump  *)
(* ------------------------------------------------------------------ *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The parallel flow must reproduce the sequential outcome bit for bit:
   same K points evaluated, same accepted K, same metrics. *)
let iteration_sig (it : Flow.iteration) =
  (it.Flow.k, it.Flow.cells, it.Flow.cell_area, it.Flow.hpwl_um, it.Flow.report)

let same_outcome (a : Flow.outcome) (b : Flow.outcome) =
  List.map iteration_sig a.Flow.iterations
  = List.map iteration_sig b.Flow.iterations
  && Option.map iteration_sig a.Flow.accepted
     = Option.map iteration_sig b.Flow.accepted

let perf_report ~scale ~jobs ~json =
  Ring.clear ();
  Metrics.reset ();
  let circuit = spla ~scale in
  Printf.printf "Perf: %s, %d base gates, jobs=%d (host reports %d cores)\n"
    circuit.name
    (Subject.num_gates circuit.subject)
    jobs
    (Domain.recommended_domain_count ());
  (* Per-stage wall-clock at a representative K point. *)
  let k = 0.001 in
  let options =
    { (Mapper.congestion_aware ~k) with strategy = Partition.Pdp }
  in
  let map_result, map_s =
    wall (fun () ->
        Mapper.map circuit.subject ~library ~positions:circuit.positions options)
  in
  let mapped = map_result.Mapper.mapped in
  let matches = map_result.Mapper.stats.Mapper.matches_evaluated in
  let matches_per_sec = float_of_int matches /. max 1e-9 map_s in
  let placement, place_s =
    wall (fun () ->
        Placement.place_mapped_seeded mapped ~floorplan:circuit.floorplan)
  in
  let alloc0 = Gc.allocated_bytes () in
  let gc0 = Gc.quick_stat () in
  let routing, route_s =
    wall (fun () ->
        Router.route_mapped ~config:router_config mapped
          ~floorplan:circuit.floorplan ~wire ~placement)
  in
  let gc1 = Gc.quick_stat () in
  let route_alloc_mb = (Gc.allocated_bytes () -. alloc0) /. 1048576.0 in
  let route_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let route_major_words = gc1.Gc.major_words -. gc0.Gc.major_words in
  Printf.printf
    "  stages @ K=%g: map %.3fs (%s matches, %s matches/sec), place %.3fs,\n\
    \    route %.3fs (%d violations, %.1f MB allocated, %.2e minor + %.2e \
     major words)\n"
    k map_s (Tables.fmt_int matches)
    (Tables.fmt_int (int_of_float matches_per_sec))
    place_s route_s routing.Router.violations route_alloc_mb route_minor_words
    route_major_words;
  (* Spans from here on: the probe window covers only the sweeps, so the
     flow.k_eval / route.route_pins totals below measure the K-schedule
     loop, not the stage timing above. *)
  Probe.enable ();
  (* Full K-schedule sweep, sequential vs speculative-parallel. Fresh RNGs
     with the same seed give both flows the same companion placement. *)
  let subject = circuit.subject and floorplan = circuit.floorplan in
  (* The seq/par pair measures the full (unpruned) sweep — the estimator
     is pinned Off so flow.route_share and the parallel-speedup guard
     keep their schema-4 meaning; the pruned run below measures the
     production default against it. *)
  let seq, seq_s =
    wall (fun () ->
        Flow.run ~router_config ~estimate:Estimate.Off ~subject ~library
          ~floorplan ~rng:(Rng.create 22) ())
  in
  let par, par_s =
    wall (fun () ->
        Flow.run_parallel ~jobs ~router_config ~estimate:Estimate.Off ~subject
          ~library ~floorplan ~rng:(Rng.create 22) ())
  in
  let speedup = seq_s /. max 1e-9 par_s in
  let identical = same_outcome seq par in
  let accepted_k =
    match seq.Flow.accepted with
    | Some it -> Printf.sprintf "%g" it.Flow.k
    | None -> "null"
  in
  Printf.printf
    "  flow sweep: sequential %.3fs (%d iterations), parallel(%d) %.3fs, \
     speedup %.2fx, identical=%b\n"
    seq_s
    (List.length seq.Flow.iterations)
    jobs par_s speedup identical;
  if not identical then
    print_endline "  WARNING: parallel flow diverged from the sequential loop";
  (* Router share of the sweep, from the span totals accumulated by the
     two flow runs above (snapshot now, before the sweeps below add
     route.route_pins time outside any flow.k_eval). *)
  let route_share =
    let spans = Export.span_stats () in
    let total name =
      match List.find_opt (fun s -> s.Export.s_name = name) spans with
      | Some s -> s.Export.s_total_us
      | None -> 0.0
    in
    let k_eval = total "flow.k_eval" in
    if k_eval > 0.0 then total "route.route_pins" /. k_eval else 0.0
  in
  Printf.printf "  route share of the K sweep: %.1f%% of flow.k_eval\n"
    (100.0 *. route_share);
  (* Pruned sweep: the production default (estimate on). Confident
     Unroutable forecasts skip their negotiated route; the accepted K and
     its QoR must be bit-identical to the unpruned [seq] run, and every
     skipped point is scored against the unpruned run's real route at the
     same K (accuracy = fraction the estimator called correctly). *)
  let pruned, pruned_s =
    wall (fun () ->
        Flow.run ~router_config ~subject ~library ~floorplan
          ~rng:(Rng.create 22) ())
  in
  let skipped =
    List.filter (fun it -> it.Flow.estimated) pruned.Flow.iterations
  in
  let routes_skipped = List.length skipped in
  let estimate_accuracy =
    if routes_skipped = 0 then 1.0
    else
      let correct =
        List.length
          (List.filter
             (fun (it : Flow.iteration) ->
               match
                 List.find_opt
                   (fun (s : Flow.iteration) -> s.Flow.k = it.Flow.k)
                   seq.Flow.iterations
               with
               | Some s -> s.Flow.report.Congestion.violations > 0
               | None -> false)
             skipped)
      in
      float_of_int correct /. float_of_int routes_skipped
  in
  let pruned_speedup = seq_s /. max 1e-9 pruned_s in
  let accepted_k_identical =
    Option.map iteration_sig seq.Flow.accepted
    = Option.map iteration_sig pruned.Flow.accepted
  in
  Printf.printf
    "  pruned sweep: %.3fs (%d of %d routes skipped, accuracy %.2f), \
     speedup %.2fx vs unpruned, accepted K identical=%b\n"
    pruned_s routes_skipped
    (List.length pruned.Flow.iterations)
    estimate_accuracy pruned_speedup accepted_k_identical;
  if not accepted_k_identical then
    print_endline "  WARNING: pruned sweep changed the accepted K point";
  (* Adaptive K search: bisect the ladder on forecast verdicts, then
     confirm with real routes from the frontier up. Must accept the
     bit-identical K point with a handful of routes instead of one per
     schedule point. *)
  let (adaptive, astats), adaptive_s =
    wall (fun () ->
        Flow.run_adaptive ~router_config ~subject ~library ~floorplan
          ~rng:(Rng.create 22) ())
  in
  let adaptive_speedup = seq_s /. max 1e-9 adaptive_s in
  let adaptive_identical =
    Option.map iteration_sig seq.Flow.accepted
    = Option.map iteration_sig adaptive.Flow.accepted
  in
  Printf.printf
    "  adaptive search: %.3fs (%d real routes, %d forecast evals), speedup \
     %.2fx vs unpruned, accepted K identical=%b\n"
    adaptive_s astats.Flow.real_routes astats.Flow.forecast_evals
    adaptive_speedup adaptive_identical;
  if not adaptive_identical then
    print_endline "  WARNING: adaptive search changed the accepted K point";
  (* Timing-driven covering: post-route critical path of the accepted-K
     netlist (K=0 when the sweep accepted nothing) with the fitted weight
     against the T=0 baseline — the Table 3/5 trend as a guarded number. *)
  let timing_k =
    match seq.Flow.accepted with Some it -> it.Flow.k | None -> 0.0
  in
  let timing_weight = Mapper.default_timing_weight in
  let crit_at ~t =
    let r =
      Mapper.map subject ~library ~positions:circuit.positions
        { (Mapper.congestion_aware ~k:timing_k) with Mapper.t }
    in
    let mapped = r.Mapper.mapped in
    match Placement.place_mapped_seeded mapped ~floorplan with
    | exception Cals_place.Legalize.Overflow _ -> None
    | placement ->
      let routing =
        Router.route_mapped ~config:router_config mapped ~floorplan ~wire
          ~placement
      in
      let report =
        Sta.analyze ~net_length_um:routing.Router.net_length_um mapped ~wire
          ~placement
      in
      Some report.Sta.critical.Sta.arrival_ns
  in
  let baseline_ns = crit_at ~t:0.0 in
  let timing_ns = crit_at ~t:timing_weight in
  (match (baseline_ns, timing_ns) with
  | Some b, Some t ->
    Printf.printf
      "  timing-driven covering @ K=%g: T=0 %.3f ns -> T=%g %.3f ns (%s)\n"
      timing_k b timing_weight t
      (if t <= b then "no worse" else "WORSE")
  | _ -> print_endline "  timing-driven covering: netlist did not legalize");
  (* Cold vs incremental mapping sweep: the match cache's win — one match
     phase, then only the cost-combination DP per K point. Placement and
     routing are untouched by the engine, so the pair times the mapping
     phase alone (the flow:k-sweep-* Bechamel pair measures the same);
     identity is still checked instance for instance. *)
  let cold_sweep, cold_s =
    wall (fun () ->
        List.map
          (fun k ->
            Mapper.map subject ~library ~positions:circuit.positions
              (Mapper.congestion_aware ~k))
          k_schedule)
  in
  let session =
    Incremental.create ~subject ~library ~positions:circuit.positions ()
  in
  let inc_sweep, inc_s =
    wall (fun () -> List.map (fun k -> Incremental.map session ~k) k_schedule)
  in
  let sweep_speedup = cold_s /. max 1e-9 inc_s in
  let sweep_identical =
    List.for_all2
      (fun (a : Mapper.result) (b : Mapper.result) ->
        a.Mapper.stats = b.Mapper.stats
        && a.Mapper.mapped.Mapped.instances = b.Mapper.mapped.Mapped.instances)
      cold_sweep inc_sweep
  in
  let cache_hit_rate = Incremental.hit_rate (Incremental.stats session) in
  Printf.printf
    "  mapping sweep (%d K points): cold %.3fs, incremental %.3fs, speedup \
     %.2fx, cache hit rate %.3f, identical=%b\n"
    (List.length k_schedule)
    cold_s inc_s sweep_speedup cache_hit_rate sweep_identical;
  if not sweep_identical then
    print_endline "  WARNING: incremental sweep diverged from the cold sweep";
  (* Cold vs session-warm routing sweep: the router session's win. Each
     K point's mapped netlist is placed once; both sides then route every
     placement twice, so with a session the second pass is pure replay. *)
  let fixtures =
    List.filter_map
      (fun (r : Mapper.result) ->
        let mapped = r.Mapper.mapped in
        match
          Placement.place_mapped_seeded mapped ~floorplan:circuit.floorplan
        with
        | exception Cals_place.Legalize.Overflow _ -> None
        | placement -> Some (mapped, placement))
      cold_sweep
  in
  let route_all session =
    List.map
      (fun (mapped, placement) ->
        Router.route_mapped ~config:router_config ?session mapped
          ~floorplan:circuit.floorplan ~wire ~placement)
      fixtures
  in
  let route_cold, route_cold_s =
    wall (fun () ->
        let _ = route_all None in
        route_all None)
  in
  let rsession = Router.Session.create () in
  let route_warm, route_warm_s =
    wall (fun () ->
        let _ = route_all (Some rsession) in
        route_all (Some rsession))
  in
  let route_speedup = route_cold_s /. max 1e-9 route_warm_s in
  let route_identical =
    List.for_all2
      (fun (a : Router.result) (b : Router.result) ->
        a.Router.violations = b.Router.violations
        && a.Router.total_overflow = b.Router.total_overflow
        && a.Router.wirelength_um = b.Router.wirelength_um
        && a.Router.net_length_um = b.Router.net_length_um)
      route_cold route_warm
  in
  let rstats = Router.Session.stats rsession in
  let warm_hit_rate = Router.Session.warm_hit_rate rstats in
  Printf.printf
    "  routing sweep (%d placements x 2 passes): cold %.3fs, session %.3fs, \
     speedup %.2fx,\n\
    \    warm hit rate %.3f, nets reused %d / rerouted %d, arena %d bytes, \
     identical=%b\n"
    (List.length fixtures)
    route_cold_s route_warm_s route_speedup warm_hit_rate
    rstats.Router.Session.nets_reused rstats.Router.Session.nets_rerouted
    rstats.Router.Session.arena_bytes route_identical;
  if not route_identical then
    print_endline "  WARNING: session-warm routing diverged from cold routing";
  (* Fleet persistence: a batch of repeated-design jobs drained through
     the scheduler with a persistent match-cache store, then "restarted"
     — a fresh scheduler over the same --cache-dir — to measure how warm
     the service comes back up. *)
  let fleet_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cals-bench-fleet-%d" (Unix.getpid ()))
  in
  let fleet_cache = Filename.concat fleet_root "mcs" in
  let fleet_jobs = 8 and fleet_designs = 2 in
  let fleet_drain out =
    let config =
      {
        Scheduler.default_config with
        Scheduler.jobs = 2;
        out_dir = out;
        cache_dir = Some fleet_cache;
      }
    in
    let scheduler = Scheduler.create config in
    for i = 0 to fleet_jobs - 1 do
      Scheduler.submit scheduler
        {
          Proto.id = Printf.sprintf "fleet-%d" i;
          input =
            Proto.Workload
              {
                Fuzz.seed = 3 + (i mod fleet_designs);
                family = Fuzz.Pla;
                inputs = 6;
                outputs = 3;
                size = 12;
              };
          k_schedule = Some [ 0.0; 0.001 ];
          checks = Check.Off;
          utilization = 0.55;
          optimize = false;
          timing = None;
          orchestrate = None;
          deadline_s = None;
        }
    done;
    Scheduler.drain scheduler ()
  in
  let store_counter name =
    let s = Metrics.snapshot () in
    match
      List.find_opt (fun c -> c.Metrics.c_name = name) s.Metrics.counters
    with
    | Some c -> c.Metrics.c_value
    | None -> 0
  in
  let fleet_cold_out = Filename.concat fleet_root "cold" in
  let fleet_warm_out = Filename.concat fleet_root "warm" in
  let fleet_cold, fleet_cold_s = wall (fun () -> fleet_drain fleet_cold_out) in
  let store_hit0 = store_counter "serve_cache_store_hit" in
  let fleet_warm, fleet_warm_s = wall (fun () -> fleet_drain fleet_warm_out) in
  let restart_store_hits = store_counter "serve_cache_store_hit" - store_hit0 in
  let restart_warm_hit_rate =
    float_of_int restart_store_hits /. float_of_int fleet_designs
  in
  let fleet_throughput = float_of_int fleet_jobs /. max 1e-9 fleet_warm_s in
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fleet_identical =
    fleet_cold.Scheduler.completed = fleet_jobs
    && fleet_warm.Scheduler.completed = fleet_jobs
    && List.for_all
         (fun i ->
           let v = Printf.sprintf "fleet-%d/mapped.v" i in
           slurp (Filename.concat fleet_cold_out v)
           = slurp (Filename.concat fleet_warm_out v))
         (List.init fleet_jobs (fun i -> i))
  in
  Printf.printf
    "  serve fleet (%d jobs, %d designs): cold drain %.3fs, restarted \
     %.3fs (%.1f jobs/s),\n\
    \    restart warm hit rate %.2f, identical=%b\n"
    fleet_jobs fleet_designs fleet_cold_s fleet_warm_s fleet_throughput
    restart_warm_hit_rate fleet_identical;
  if not fleet_identical then
    print_endline "  WARNING: restarted fleet drain diverged from cold drain";
  (* Synthesis orchestration over the golden corpus: AIG strash node
     reduction (the tech-independent claim) and best-vs-baseline accepted
     K / subject gates / cell area / post-route critical path through
     [Flow.orchestrate]. Falls back to the bench circuit's own network
     when the corpus is not on disk (e.g. an installed binary). *)
  let module Aig = Cals_logic.Aig in
  let golden_dir = Filename.concat "test" "golden" in
  let synth_designs =
    if Sys.file_exists golden_dir && Sys.is_directory golden_dir then
      Sys.readdir golden_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".blif")
      |> List.sort compare
      |> List.map (fun f ->
             (Filename.chop_suffix f ".blif",
              lazy (Cals_logic.Blif.read_file (Filename.concat golden_dir f))))
    else
      [ (circuit.name, lazy (Presets.spla_like ~scale ~seed:1 ())) ]
  in
  let synth_floorplan_of subject =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.55 ~aspect:1.0 ~geometry
  in
  let crit_of (outcome : Flow.outcome) =
    match (outcome.Flow.mapped, outcome.Flow.placement, outcome.Flow.routing)
    with
    | Some mapped, Some placement, Some routing ->
      let report =
        Sta.analyze ~net_length_um:routing.Router.net_length_um mapped ~wire
          ~placement
      in
      Some report.Sta.critical.Sta.arrival_ns
    | _ -> None
  in
  let synth_rows, synth_s =
    wall (fun () ->
        List.map
          (fun (name, net) ->
            let net = Lazy.force net in
            let raw = Aig.of_network ~strash:false net in
            let nodes_raw = Aig.num_nodes raw in
            let nodes_strash = Aig.num_ands (Aig.apply Aig.Strash raw) in
            let result =
              Flow.orchestrate ~optimize:false ~network:net ~library
                ~floorplan_of:synth_floorplan_of ~seed:1 ()
            in
            let accepted ev =
              match ev.Flow.result with
              | Some ({ Flow.accepted = Some it; _ }, _) ->
                (Some it.Flow.k, Some it.Flow.cell_area)
              | _ -> (None, None)
            in
            let base_k, base_area = accepted result.Flow.baseline in
            let best_k, best_area = accepted result.Flow.best in
            let base_crit, best_crit =
              match (result.Flow.baseline.Flow.result, result.Flow.best.Flow.result)
              with
              | Some (bo, _), Some (so, _) -> (crit_of bo, crit_of so)
              | _ -> (None, None)
            in
            (name, nodes_raw, nodes_strash,
             result.Flow.baseline.Flow.gates, result.Flow.best.Flow.gates,
             List.length result.Flow.evaluations, result.Flow.best_index,
             base_k, best_k, base_area, best_area, base_crit, best_crit))
          synth_designs)
  in
  let sumi f = List.fold_left (fun a r -> a + f r) 0 synth_rows in
  let sumf f =
    List.fold_left
      (fun a r -> a +. Option.value ~default:0.0 (f r))
      0.0 synth_rows
  in
  let synth_nodes_raw = sumi (fun (_, r, _, _, _, _, _, _, _, _, _, _, _) -> r) in
  let synth_nodes_strash =
    sumi (fun (_, _, s, _, _, _, _, _, _, _, _, _, _) -> s)
  in
  let synth_base_gates =
    sumi (fun (_, _, _, g, _, _, _, _, _, _, _, _, _) -> g)
  in
  let synth_best_gates =
    sumi (fun (_, _, _, _, g, _, _, _, _, _, _, _, _) -> g)
  in
  let synth_candidates =
    sumi (fun (_, _, _, _, _, c, _, _, _, _, _, _, _) -> c)
  in
  let synth_k_never_worse =
    List.for_all
      (fun (_, _, _, _, _, _, _, base_k, best_k, _, _, _, _) ->
        match (base_k, best_k) with
        | Some b, Some s -> s <= b
        | None, _ -> true
        | Some _, None -> false)
      synth_rows
  in
  let synth_base_area =
    sumf (fun (_, _, _, _, _, _, _, _, _, a, _, _, _) -> a)
  in
  let synth_best_area =
    sumf (fun (_, _, _, _, _, _, _, _, _, _, a, _, _) -> a)
  in
  let synth_base_crit =
    sumf (fun (_, _, _, _, _, _, _, _, _, _, _, c, _) -> c)
  in
  let synth_best_crit =
    sumf (fun (_, _, _, _, _, _, _, _, _, _, _, _, c) -> c)
  in
  Printf.printf
    "  synth orchestration (%d designs, %.3fs): strash %d -> %d AIG nodes \
     (-%.1f%%),\n\
    \    subject %d -> %d gates, %d candidates, accepted-K never worse=%b\n"
    (List.length synth_rows) synth_s synth_nodes_raw synth_nodes_strash
    (100.0
    *. float_of_int (synth_nodes_raw - synth_nodes_strash)
    /. float_of_int (max 1 synth_nodes_raw))
    synth_base_gates synth_best_gates synth_candidates synth_k_never_worse;
  List.iter
    (fun (name, _, _, bg, sg, _, best_idx, _, _, _, _, _, _) ->
      Printf.printf "    %-18s %4d -> %4d gates (candidate %d)\n" name bg sg
        best_idx)
    synth_rows;
  if not synth_k_never_worse then
    print_endline "  WARNING: orchestration made the accepted K worse";
  let spans = Export.span_stats () in
  (match json with
  | None -> ()
  | Some path ->
    let spans_json =
      spans
      |> List.map (fun s ->
             Printf.sprintf
               "    { \"name\": \"%s\", \"cat\": \"%s\", \"count\": %d, \
                \"total_s\": %.6f, \"mean_s\": %.6f, \"max_s\": %.6f }"
               s.Export.s_name s.Export.s_cat s.Export.s_count
               (s.Export.s_total_us /. 1e6)
               (s.Export.s_mean_us /. 1e6)
               (s.Export.s_max_us /. 1e6))
      |> String.concat ",\n"
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"schema\": 8,\n\
      \  \"circuit\": \"%s\",\n\
      \  \"scale\": %g,\n\
      \  \"gates\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"stages\": {\n\
      \    \"map_s\": %.6f,\n\
      \    \"place_s\": %.6f,\n\
      \    \"route_s\": %.6f,\n\
      \    \"matches_evaluated\": %d,\n\
      \    \"matches_per_sec\": %.0f,\n\
      \    \"route_alloc_mb\": %.3f,\n\
      \    \"route_minor_words\": %.0f,\n\
      \    \"route_major_words\": %.0f,\n\
      \    \"route_violations\": %d\n\
      \  },\n\
      \  \"flow\": {\n\
      \    \"iterations\": %d,\n\
      \    \"accepted_k\": %s,\n\
      \    \"sequential_s\": %.6f,\n\
      \    \"parallel_s\": %.6f,\n\
      \    \"speedup\": %.3f,\n\
      \    \"parallel_identical\": %b,\n\
      \    \"route_share\": %.4f\n\
      \  },\n\
      \  \"sweep\": {\n\
      \    \"k_points\": %d,\n\
      \    \"cold_s\": %.6f,\n\
      \    \"incremental_s\": %.6f,\n\
      \    \"speedup\": %.3f,\n\
      \    \"cache_hit_rate\": %.4f,\n\
      \    \"identical\": %b,\n\
      \    \"pruned\": {\n\
      \      \"routes_skipped\": %d,\n\
      \      \"iterations\": %d,\n\
      \      \"estimate_accuracy\": %.4f,\n\
      \      \"pruned_s\": %.6f,\n\
      \      \"speedup\": %.3f,\n\
      \      \"accepted_k_identical\": %b\n\
      \    },\n\
      \    \"adaptive\": {\n\
      \      \"real_routes\": %d,\n\
      \      \"forecast_evals\": %d,\n\
      \      \"frontier_k\": %s,\n\
      \      \"adaptive_s\": %.6f,\n\
      \      \"speedup\": %.3f,\n\
      \      \"accepted_k_identical\": %b\n\
      \    }\n\
      \  },\n\
      \  \"timing\": {\n\
      \    \"t\": %g,\n\
      \    \"k\": %g,\n\
      \    \"baseline_ns\": %s,\n\
      \    \"timing_ns\": %s,\n\
      \    \"critical_path_ps\": %s,\n\
      \    \"improved\": %b\n\
      \  },\n\
      \  \"route\": {\n\
      \    \"placements\": %d,\n\
      \    \"passes\": 2,\n\
      \    \"cold_s\": %.6f,\n\
      \    \"incremental_s\": %.6f,\n\
      \    \"speedup\": %.3f,\n\
      \    \"warm_hit_rate\": %.4f,\n\
      \    \"nets_reused\": %d,\n\
      \    \"nets_rerouted\": %d,\n\
      \    \"arena_bytes\": %d,\n\
      \    \"identical\": %b\n\
      \  },\n\
      \  \"serve\": {\n\
      \    \"fleet\": {\n\
      \      \"jobs\": %d,\n\
      \      \"designs\": %d,\n\
      \      \"cold_drain_s\": %.6f,\n\
      \      \"restart_drain_s\": %.6f,\n\
      \      \"throughput_jobs_per_s\": %.3f,\n\
      \      \"restart_warm_hit_rate\": %.4f,\n\
      \      \"identical\": %b\n\
      \    }\n\
      \  },\n\
      \  \"synth\": {\n\
      \    \"designs\": %d,\n\
      \    \"candidates_explored\": %d,\n\
      \    \"aig_nodes_raw\": %d,\n\
      \    \"aig_nodes_strash\": %d,\n\
      \    \"strash_reduction_pct\": %.2f,\n\
      \    \"baseline_gates\": %d,\n\
      \    \"best_gates\": %d,\n\
      \    \"node_reduction\": %d,\n\
      \    \"accepted_k_never_worse\": %b,\n\
      \    \"baseline_area\": %.4f,\n\
      \    \"best_area\": %.4f,\n\
      \    \"baseline_crit_ns\": %.6f,\n\
      \    \"best_crit_ns\": %.6f,\n\
      \    \"orchestrate_s\": %.6f\n\
      \  },\n\
      \  \"spans\": [\n%s\n\
      \  ]\n\
       }\n"
      circuit.name scale
      (Subject.num_gates circuit.subject)
      jobs
      (Domain.recommended_domain_count ())
      map_s place_s route_s matches matches_per_sec route_alloc_mb
      route_minor_words route_major_words routing.Router.violations
      (List.length seq.Flow.iterations)
      accepted_k seq_s par_s speedup identical route_share
      (List.length k_schedule)
      cold_s inc_s sweep_speedup cache_hit_rate sweep_identical routes_skipped
      (List.length pruned.Flow.iterations)
      estimate_accuracy pruned_s pruned_speedup accepted_k_identical
      astats.Flow.real_routes astats.Flow.forecast_evals
      (match astats.Flow.frontier_k with
      | Some k -> Printf.sprintf "%g" k
      | None -> "null")
      adaptive_s adaptive_speedup adaptive_identical timing_weight timing_k
      (match baseline_ns with
      | Some ns -> Printf.sprintf "%.6f" ns
      | None -> "null")
      (match timing_ns with
      | Some ns -> Printf.sprintf "%.6f" ns
      | None -> "null")
      (match timing_ns with
      | Some ns -> Printf.sprintf "%.3f" (1000.0 *. ns)
      | None -> "null")
      (match (baseline_ns, timing_ns) with
      | Some b, Some t -> t <= b
      | _ -> false)
      (List.length fixtures)
      route_cold_s route_warm_s route_speedup warm_hit_rate
      rstats.Router.Session.nets_reused rstats.Router.Session.nets_rerouted
      rstats.Router.Session.arena_bytes route_identical fleet_jobs
      fleet_designs fleet_cold_s fleet_warm_s fleet_throughput
      restart_warm_hit_rate fleet_identical
      (List.length synth_rows)
      synth_candidates synth_nodes_raw synth_nodes_strash
      (100.0
      *. float_of_int (synth_nodes_raw - synth_nodes_strash)
      /. float_of_int (max 1 synth_nodes_raw))
      synth_base_gates synth_best_gates
      (synth_base_gates - synth_best_gates)
      synth_k_never_worse synth_base_area synth_best_area synth_base_crit
      synth_best_crit synth_s spans_json;
    close_out oc;
    Printf.printf "  wrote %s\n" path);
  print_string (Export.summary ());
  Probe.disable ();
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let tiny_scale = 0.02 in
  let circuit = lazy (spla ~scale:tiny_scale) in
  let sis_net = lazy (Presets.too_large_like ~scale:tiny_scale ~seed:5 ()) in
  let table1_work () =
    (* SIS-style optimization, the distinctive cost of Table 1. *)
    let net = Cals_logic.Blif.parse (Cals_logic.Blif.print (Lazy.force sis_net)) in
    Network.sweep net;
    ignore (Optimize.extract_common_cubes ~max_rounds:4 net)
  in
  let table2_work () =
    let c = Lazy.force circuit in
    ignore (run_point c 0.001)
  in
  let table3_work () =
    let c = Lazy.force circuit in
    match sta_point c 0.0 with Some _ | None -> ()
  in
  let table4_work () =
    let c = Lazy.force circuit in
    ignore (Mapper.map c.subject ~library ~positions:c.positions Mapper.min_area)
  in
  let table5_work () =
    let c = Lazy.force circuit in
    let p = run_point c 0.0 in
    match p.placement with
    | Some placement -> ignore (Sta.analyze p.mapped ~wire ~placement)
    | None -> ()
  in
  (* Telemetry overhead check: the same maze-route workload with probes
     disabled (the shipped default) and enabled. The disabled variant must
     stay within noise of the pre-telemetry router. *)
  let route_fixture =
    lazy
      (let c = Lazy.force circuit in
       let r =
         Mapper.map c.subject ~library ~positions:c.positions
           (Mapper.congestion_aware ~k:0.001)
       in
       let mapped = r.Mapper.mapped in
       let placement = Placement.place_mapped_seeded mapped ~floorplan:c.floorplan in
       (c, mapped, placement))
  in
  let maze_work enabled () =
    let c, mapped, placement = Lazy.force route_fixture in
    if enabled then Probe.enable () else Probe.disable ();
    ignore
      (Router.route_mapped ~config:router_config mapped
         ~floorplan:c.floorplan ~wire ~placement);
    Probe.disable ()
  in
  (* Router session pairs. negotiate-cold / session-warm: full cold
     negotiation vs pure replay from a pre-warmed session. maze-arena /
     maze-alloc: the same full negotiation with pooled session arenas
     (invalidated before every call, so nothing replays) vs fresh
     per-call allocation — the pair isolates the allocation diet. *)
  let route_once ?session () =
    let c, mapped, placement = Lazy.force route_fixture in
    ignore
      (Router.route_mapped ~config:router_config ?session mapped
         ~floorplan:c.floorplan ~wire ~placement)
  in
  let warm_session =
    lazy
      (let s = Router.Session.create () in
       route_once ~session:s ();
       s)
  in
  let session_warm () = route_once ~session:(Lazy.force warm_session) () in
  let arena_session = lazy (Router.Session.create ()) in
  let maze_arena () =
    let s = Lazy.force arena_session in
    Router.Session.invalidate s;
    route_once ~session:s ()
  in
  let negotiate_cold () = route_once () in
  (* The incremental engine's headline number: mapping the whole K ladder
     cold (fresh partition + matching at every K) vs through one session
     (match once, re-run only the cost-combination DP per K). *)
  let sweep_cold () =
    let c = Lazy.force circuit in
    List.iter
      (fun k ->
        ignore
          (Mapper.map c.subject ~library ~positions:c.positions
             (Mapper.congestion_aware ~k)))
      k_schedule
  in
  let sweep_incremental () =
    let c = Lazy.force circuit in
    let session =
      Incremental.create ~subject:c.subject ~library ~positions:c.positions ()
    in
    List.iter (fun k -> ignore (Incremental.map session ~k)) k_schedule
  in
  (* Verification overhead: one full K point with the checkers off (the
     shipped default) vs Full (invariants + equivalence + usage audit). *)
  let checks_work level () =
    let c = Lazy.force circuit in
    ignore
      (Flow.evaluate_k ~router_config ~checks:level ~subject:c.subject
         ~library ~floorplan:c.floorplan ~positions:c.positions ~k:0.001 ())
  in
  (* Service throughput: drain a batch of small repeated-design jobs
     through the scheduler — queue + design cache + artifact overhead on
     top of the raw K evaluations. *)
  let serve_out =
    Filename.concat (Filename.get_temp_dir_name ()) "cals-bench-serve"
  in
  let serve_work () =
    let config =
      {
        Scheduler.default_config with
        Scheduler.jobs = 2;
        out_dir = serve_out;
        backoff_s = 0.001;
      }
    in
    let scheduler = Scheduler.create config in
    for i = 0 to 7 do
      Scheduler.submit scheduler
        {
          Proto.id = Printf.sprintf "bench-%d" i;
          input =
            Proto.Workload
              {
                Fuzz.seed = 3 + (i mod 2);
                family = Fuzz.Pla;
                inputs = 6;
                outputs = 3;
                size = 12;
              };
          k_schedule = Some [ 0.0; 0.001 ];
          checks = Check.Off;
          utilization = 0.55;
          optimize = false;
          timing = None;
          orchestrate = None;
          deadline_s = None;
        }
    done;
    ignore (Scheduler.drain scheduler ())
  in
  let tests =
    [
      Test.make ~name:"table1:sis-optimize" (Staged.stage table1_work);
      Test.make ~name:"table2:spla-k-point" (Staged.stage table2_work);
      Test.make ~name:"table3:spla-sta" (Staged.stage table3_work);
      Test.make ~name:"table4:pdc-min-area-map" (Staged.stage table4_work);
      Test.make ~name:"table5:pdc-sta" (Staged.stage table5_work);
      Test.make ~name:"route:maze-telemetry-off" (Staged.stage (maze_work false));
      Test.make ~name:"route:maze-telemetry-on" (Staged.stage (maze_work true));
      Test.make ~name:"route:negotiate-cold" (Staged.stage negotiate_cold);
      Test.make ~name:"route:session-warm" (Staged.stage session_warm);
      Test.make ~name:"route:maze-arena" (Staged.stage maze_arena);
      Test.make ~name:"route:maze-alloc" (Staged.stage negotiate_cold);
      Test.make ~name:"flow:k-point-checks-off" (Staged.stage (checks_work Check.Off));
      Test.make ~name:"flow:k-point-checks-full" (Staged.stage (checks_work Check.Full));
      Test.make ~name:"flow:k-sweep-cold" (Staged.stage sweep_cold);
      Test.make ~name:"flow:k-sweep-incremental" (Staged.stage sweep_incremental);
      Test.make ~name:"serve:drain-throughput" (Staged.stage serve_work);
    ]
  in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.5) ~limit:200 () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  print_endline "Bechamel micro-benchmarks (wall time per iteration):";
  let results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"tables" tests)
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  let estimates =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) res []
    |> List.sort compare
    |> List.map (fun (name, result) ->
           match Analyze.OLS.estimates result with
           | Some (est :: _) -> (name, Some est)
           | Some [] | None -> (name, None))
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-32s %10.3f ms/run\n" name (est /. 1e6)
      | None -> Printf.printf "  %-32s (no estimate)\n" name)
    estimates;
  (* Overhead of the disabled probes relative to enabled ones is not the
     interesting number; what matters is that "off" stays at the router's
     raw speed. Report the on/off ratio so regressions are visible. *)
  let find suffix =
    List.find_map
      (fun (name, est) ->
        if String.ends_with ~suffix name then est else None)
      estimates
  in
  (match (find "route:maze-telemetry-off", find "route:maze-telemetry-on") with
  | Some off, Some on when off > 0.0 ->
    Printf.printf "  telemetry-enabled maze route: %+.2f%% vs disabled\n"
      (100.0 *. ((on /. off) -. 1.0))
  | _ -> ());
  (match (find "flow:k-sweep-cold", find "flow:k-sweep-incremental") with
  | Some cold, Some inc when inc > 0.0 ->
    Printf.printf "  incremental K sweep: %.2fx faster than cold re-mapping\n"
      (cold /. inc)
  | _ -> ());
  (match (find "route:negotiate-cold", find "route:session-warm") with
  | Some cold, Some warm when warm > 0.0 ->
    Printf.printf "  session replay: %.2fx faster than cold negotiation\n"
      (cold /. warm)
  | _ -> ());
  (match (find "route:maze-alloc", find "route:maze-arena") with
  | Some alloc, Some arena when alloc > 0.0 ->
    Printf.printf "  arena-pooled negotiation: %+.2f%% vs fresh allocation\n"
      (100.0 *. ((arena /. alloc) -. 1.0))
  | _ -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let run_all ~scale ~tables ~figures ~with_ablations ~with_micro ~with_perf
    ~jobs ~json =
  let selective = tables <> [] || figures <> [] || with_perf in
  let want_table i =
    ((not selective) && figures = []) || List.mem i tables
  in
  let want_figure i = (not selective) || List.mem i figures in
  if want_table 1 then table1 ~scale;
  if want_table 2 then table2 ~scale;
  if want_table 3 then table3 ~scale;
  if want_table 4 then table4 ~scale;
  if want_table 5 then table5 ~scale;
  if want_figure 1 then figure1 ();
  if want_figure 3 then figure3 ~scale;
  if with_ablations then ablations ~scale;
  if with_perf then perf_report ~scale ~jobs ~json;
  if with_micro then micro_benchmarks ()

open Cmdliner

let scale_arg =
  let doc = "Workload scale relative to the paper's gate counts." in
  Arg.(value & opt float Presets.default_scale & info [ "scale" ] ~doc)

let full_arg =
  let doc = "Use the paper's full circuit sizes (scale = 1.0)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let table_arg =
  let doc = "Run only the given table (repeatable: 1-5)." in
  Arg.(value & opt_all int [] & info [ "table" ] ~doc)

let figure_arg =
  let doc = "Run only the given figure (repeatable: 1, 3)." in
  Arg.(value & opt_all int [] & info [ "figure" ] ~doc)

let ablation_arg =
  let doc = "Also run the design-choice ablation sweep." in
  Arg.(value & flag & info [ "ablation" ] ~doc)

let micro_arg =
  let doc = "Also run the Bechamel micro-benchmarks." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let no_micro_arg =
  let doc = "Skip the Bechamel micro-benchmarks (on by default)." in
  Arg.(value & flag & info [ "no-micro" ] ~doc)

let perf_arg =
  let doc =
    "Run the perf section: per-stage wall-clock (map, place, route), \
     matches/sec, and the sequential-vs-parallel K-schedule sweep."
  in
  Arg.(value & flag & info [ "perf" ] ~doc)

let jobs_arg =
  let doc = "Domains for the parallel flow in the perf section." in
  Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let json_arg =
  let doc =
    "Write the perf section's measurements to $(docv) as JSON (implies \
     $(b,--perf)); use BENCH_cals.json to track the perf trajectory."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let main scale full tables figures ablation micro no_micro perf jobs json =
  let scale = if full then 1.0 else scale in
  let with_perf = perf || json <> None in
  let selective = tables <> [] || figures <> [] || with_perf in
  let with_micro = micro || ((not selective) && not no_micro) in
  let with_ablations = ablation in
  run_all ~scale ~tables ~figures ~with_ablations ~with_micro ~with_perf ~jobs
    ~json

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "cals-bench" ~doc)
    Term.(
      const main $ scale_arg $ full_arg $ table_arg $ figure_arg $ ablation_arg
      $ micro_arg $ no_micro_arg $ perf_arg $ jobs_arg $ json_arg)

let () = exit (Cmd.eval cmd)
