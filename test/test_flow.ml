(* Integration tests: the full Figure-3 methodology loop and cross-module
   pipelines on small circuits. *)

module Flow = Cals_core.Flow
module Mapper = Cals_core.Mapper
module Partition = Cals_core.Partition
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Congestion = Cals_route.Congestion
module Router = Cals_route.Router
module Sta = Cals_sta.Sta
module Network = Cals_logic.Network
module Rng = Cals_util.Rng

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib
let wire = Cals_cell.Library.wire lib

let small_circuit seed =
  let rng = Rng.create seed in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs:10 ~outputs:10 ~products:60 ~terms_lo:6
      ~terms_hi:16 ()
  in
  Cals_logic.Network.sweep net;
  net

let test_flow_loose_floorplan_accepts_first () =
  let net = small_circuit 1 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  (* Generous die: K = 0 must already be acceptable. *)
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.3 ~aspect:1.0 ~geometry
  in
  let outcome =
    Flow.run ~subject ~library:lib ~floorplan ~rng:(Rng.create 2) ()
  in
  match outcome.Flow.accepted with
  | None -> Alcotest.fail "loose floorplan should route"
  | Some it ->
    Alcotest.(check (float 1e-9)) "accepted at K=0" 0.0 it.Flow.k;
    Alcotest.(check int) "single iteration" 1 (List.length outcome.Flow.iterations);
    Alcotest.(check bool) "netlist returned" true (outcome.Flow.mapped <> None);
    Alcotest.(check bool) "routing returned" true (outcome.Flow.routing <> None)

let test_flow_iterates_on_tight_floorplan () =
  let net = small_circuit 2 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  (* Impossibly tight: fewer sites than the min-area mapping needs, so
     every K fails to legalize and the loop walks the whole schedule. *)
  let floorplan = Floorplan.of_rows ~num_rows:4 ~sites_per_row:40 ~geometry in
  let schedule = [ 0.0; 0.001; 0.01 ] in
  let outcome =
    Flow.run ~k_schedule:schedule ~subject ~library:lib ~floorplan
      ~rng:(Rng.create 3) ()
  in
  Alcotest.(check int) "all iterations executed" (List.length schedule)
    (List.length outcome.Flow.iterations);
  (* K values recorded in schedule order. *)
  Alcotest.(check (list (float 1e-12))) "k order" schedule
    (List.map (fun it -> it.Flow.k) outcome.Flow.iterations)

let test_flow_function_preserved_through_accepted () =
  let net = small_circuit 3 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.4 ~aspect:1.0 ~geometry
  in
  let outcome = Flow.run ~subject ~library:lib ~floorplan ~rng:(Rng.create 4) () in
  match outcome.Flow.mapped with
  | None -> Alcotest.fail "expected acceptance"
  | Some mapped ->
    let rng = Rng.create 5 in
    for _ = 1 to 8 do
      let stimulus = Subject.random_vectors rng subject in
      if Subject.simulate subject stimulus <> Mapped.simulate mapped stimulus then
        Alcotest.fail "flow result is not equivalent"
    done

let test_flow_metrics_consistent () =
  let net = small_circuit 4 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.45 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create 6)
  in
  let it, (mapped, placement, routing) =
    Flow.evaluate_k ~subject ~library:lib ~floorplan ~positions ~k:0.0005 ()
  in
  Alcotest.(check int) "cells" (Mapped.num_cells mapped) it.Flow.cells;
  Alcotest.(check (float 1e-6)) "area" (Mapped.total_area mapped) it.Flow.cell_area;
  (match placement with
  | Some pl -> Alcotest.(check (float 1e-6)) "hpwl" pl.Placement.hpwl it.Flow.hpwl_um
  | None -> Alcotest.fail "placement expected");
  match routing with
  | Some rt ->
    Alcotest.(check int) "violations" rt.Router.violations
      it.Flow.report.Congestion.violations
  | None -> Alcotest.fail "routing expected"

(* run_parallel must reproduce the sequential outcome exactly: same K
   points evaluated (speculative extras discarded), same accepted K, and
   bit-identical metrics, on both PLA-style preset families. *)
let parallel_matches_sequential make_network seed utilization () =
  let net = make_network () in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization ~aspect:1.0 ~geometry
  in
  let seq =
    Flow.run ~subject ~library:lib ~floorplan ~rng:(Rng.create seed) ()
  in
  let par =
    Flow.run_parallel ~jobs:4 ~subject ~library:lib ~floorplan
      ~rng:(Rng.create seed) ()
  in
  Alcotest.(check (option (float 0.0)))
    "same accepted K"
    (Option.map (fun it -> it.Flow.k) seq.Flow.accepted)
    (Option.map (fun it -> it.Flow.k) par.Flow.accepted);
  Alcotest.(check (list (float 0.0)))
    "same iteration schedule"
    (List.map (fun it -> it.Flow.k) seq.Flow.iterations)
    (List.map (fun it -> it.Flow.k) par.Flow.iterations);
  List.iter2
    (fun (a : Flow.iteration) (b : Flow.iteration) ->
      Alcotest.(check int) "cells" a.Flow.cells b.Flow.cells;
      Alcotest.(check (float 0.0)) "cell area" a.Flow.cell_area b.Flow.cell_area;
      Alcotest.(check (float 0.0)) "hpwl" a.Flow.hpwl_um b.Flow.hpwl_um;
      Alcotest.(check int) "violations" a.Flow.report.Congestion.violations
        b.Flow.report.Congestion.violations;
      Alcotest.(check (float 0.0)) "wirelength"
        a.Flow.report.Congestion.wirelength_um
        b.Flow.report.Congestion.wirelength_um)
    seq.Flow.iterations par.Flow.iterations;
  (match (seq.Flow.routing, par.Flow.routing) with
  | Some a, Some b ->
    Alcotest.(check (float 0.0)) "routed wirelength" a.Router.wirelength_um
      b.Router.wirelength_um;
    Alcotest.(check int) "routed violations" a.Router.violations
      b.Router.violations
  | None, None -> ()
  | _ -> Alcotest.fail "routing presence differs");
  match (seq.Flow.mapped, par.Flow.mapped) with
  | Some a, Some b ->
    Alcotest.(check int) "mapped cells" (Mapped.num_cells a) (Mapped.num_cells b)
  | None, None -> ()
  | _ -> Alcotest.fail "mapped presence differs"

let test_parallel_spla_like =
  parallel_matches_sequential
    (fun () -> Cals_workload.Presets.spla_like ~scale:0.04 ~seed:7 ())
    12 0.55

let test_parallel_pdc_like =
  parallel_matches_sequential
    (fun () -> Cals_workload.Presets.pdc_like ~scale:0.04 ~seed:11 ())
    13 0.6

let test_parallel_tight_floorplan_walks_schedule () =
  (* Nothing legalizes: both flows must walk the whole schedule and agree
     that no K is acceptable, with the parallel chunks stitched back in
     schedule order. *)
  let net = small_circuit 2 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan = Floorplan.of_rows ~num_rows:4 ~sites_per_row:40 ~geometry in
  let schedule = [ 0.0; 0.0005; 0.001; 0.005; 0.01 ] in
  let seq =
    Flow.run ~k_schedule:schedule ~subject ~library:lib ~floorplan
      ~rng:(Rng.create 3) ()
  in
  let par =
    Flow.run_parallel ~k_schedule:schedule ~jobs:2 ~subject ~library:lib
      ~floorplan ~rng:(Rng.create 3) ()
  in
  Alcotest.(check bool) "no accepted" true (par.Flow.accepted = None);
  Alcotest.(check (list (float 1e-12)))
    "all ks in order" schedule
    (List.map (fun it -> it.Flow.k) par.Flow.iterations);
  Alcotest.(check int) "same count"
    (List.length seq.Flow.iterations)
    (List.length par.Flow.iterations)

let test_full_pipeline_sis_vs_baseline () =
  (* Table-1-shaped experiment in miniature: the aggressively optimized
     netlist has smaller decomposed cell area after min-area mapping. *)
  let net_baseline = small_circuit 5 in
  let net_sis = Cals_logic.Blif.parse (Cals_logic.Blif.print net_baseline) in
  Cals_logic.Optimize.script_area net_sis;
  let subj_b = Cals_logic.Decompose.subject_of_network net_baseline in
  let subj_s = Cals_logic.Decompose.subject_of_network net_sis in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subj_b) *. 5.0)
      ~utilization:0.5 ~aspect:1.0 ~geometry
  in
  let map subj =
    let positions = Placement.place_subject subj ~floorplan ~rng:(Rng.create 7) in
    let r = Mapper.map subj ~library:lib ~positions Mapper.min_area in
    r.Mapper.stats.Mapper.cell_area
  in
  let area_b = map subj_b and area_s = map subj_s in
  Alcotest.(check bool)
    (Printf.sprintf "sis %.0f <= baseline %.0f" area_s area_b)
    true (area_s <= area_b);
  (* And both remain functionally equivalent to the original. *)
  let rng = Rng.create 8 in
  for _ = 1 to 8 do
    let stimulus = Network.random_vectors rng net_baseline in
    if Network.simulate net_baseline stimulus <> Network.simulate net_sis stimulus
    then Alcotest.fail "script_area broke the circuit"
  done

let test_pipeline_with_sta () =
  (* Map at two K values and run STA on routed lengths; both must produce
     finite, positive critical paths. *)
  let net = small_circuit 6 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.5 ~aspect:1.0 ~geometry
  in
  let positions = Placement.place_subject subject ~floorplan ~rng:(Rng.create 9) in
  List.iter
    (fun k ->
      let r = Mapper.map subject ~library:lib ~positions (Mapper.congestion_aware ~k) in
      let mapped = r.Mapper.mapped in
      let placement = Placement.place_mapped_seeded mapped ~floorplan in
      let routing = Router.route_mapped mapped ~floorplan ~wire ~placement in
      let report =
        Sta.analyze ~net_length_um:routing.Router.net_length_um mapped ~wire
          ~placement
      in
      let t = report.Sta.critical.Sta.arrival_ns in
      if not (t > 0.0 && t < 1000.0) then Alcotest.failf "bad critical %.3f at K=%g" t k)
    [ 0.0; 0.001 ]

(* ------------------------- adaptive K search ------------------------- *)

(* The adaptive search's contract, as a differential against the linear
   schedule on random workloads: same accepted K and metrics, same
   mapped netlist (verilog digest), same routed paths, and exactly as
   many real routes as the pruned linear sweep pays — never one more.
   Crowd 2 drives over-capacity floorplans where no K is routable. *)
let prop_adaptive_matches_linear =
  QCheck.Test.make ~count:6
    ~name:"adaptive search == linear schedule on the full default ladder"
    QCheck.(triple (int_range 0 10_000) (int_range 0 2) (int_range 0 1))
    (fun (seed, crowd, fam) ->
      let family = if fam = 0 then `Pla else `Multilevel in
      let net =
        Cals_workload.Gen.of_fuzz ~family ~seed ~inputs:6 ~outputs:3 ~size:14
      in
      Cals_logic.Network.sweep net;
      let subject = Cals_logic.Decompose.subject_of_network net in
      let utilization = [| 0.45; 0.65; 0.85 |].(crowd) in
      let layers = if crowd = 2 then 2 else 3 in
      let router_config = { Router.default_config with Router.layers } in
      let floorplan =
        Floorplan.for_area
          ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
          ~utilization ~aspect:1.0 ~geometry
      in
      let linear =
        Flow.run ~router_config ~subject ~library:lib ~floorplan
          ~rng:(Rng.create (seed + 1)) ()
      in
      let adaptive, stats =
        Flow.run_adaptive ~router_config ~subject ~library:lib ~floorplan
          ~rng:(Rng.create (seed + 1)) ()
      in
      (match (linear.Flow.accepted, adaptive.Flow.accepted) with
      | None, None -> ()
      | Some l, Some a ->
        if
          not
            (l.Flow.k = a.Flow.k
            && l.Flow.cells = a.Flow.cells
            && l.Flow.cell_area = a.Flow.cell_area
            && l.Flow.hpwl_um = a.Flow.hpwl_um
            && l.Flow.report = a.Flow.report)
        then
          QCheck.Test.fail_reportf
            "seed %d: accepted iteration differs (linear K=%g, adaptive K=%g)"
            seed l.Flow.k a.Flow.k;
        if a.Flow.estimated then
          QCheck.Test.fail_reportf
            "seed %d: adaptive accepted an estimated point" seed
      | l, a ->
        QCheck.Test.fail_reportf "seed %d: acceptance differs (%s vs %s)" seed
          (match l with Some _ -> "accepted" | None -> "rejected")
          (match a with Some _ -> "accepted" | None -> "rejected"));
      (match (linear.Flow.mapped, adaptive.Flow.mapped) with
      | None, None -> ()
      | Some l, Some a ->
        if not (String.equal (Mapped.to_verilog l) (Mapped.to_verilog a)) then
          QCheck.Test.fail_reportf "seed %d: mapped netlists differ" seed
      | _ -> QCheck.Test.fail_reportf "seed %d: mapped presence differs" seed);
      (match (linear.Flow.routing, adaptive.Flow.routing) with
      | None, None -> ()
      | Some l, Some a ->
        if l.Router.routes <> a.Router.routes then
          QCheck.Test.fail_reportf "seed %d: routed paths differ" seed
      | _ -> QCheck.Test.fail_reportf "seed %d: routing presence differs" seed);
      let linear_routed =
        List.length
          (List.filter
             (fun (it : Flow.iteration) ->
               (not it.Flow.estimated) && it.Flow.hpwl_um < infinity)
             linear.Flow.iterations)
      in
      if stats.Flow.real_routes <> linear_routed then
        QCheck.Test.fail_reportf
          "seed %d: adaptive paid %d real routes, pruned linear pays %d" seed
          stats.Flow.real_routes linear_routed;
      true)

let test_adaptive_over_capacity () =
  (* Nothing legalizes: the search must rule out every ladder point
     without a single negotiated route and agree with the linear loop
     that no K is acceptable. *)
  let net = small_circuit 2 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan = Floorplan.of_rows ~num_rows:4 ~sites_per_row:40 ~geometry in
  let linear =
    Flow.run ~subject ~library:lib ~floorplan ~rng:(Rng.create 3) ()
  in
  let adaptive, stats =
    Flow.run_adaptive ~subject ~library:lib ~floorplan ~rng:(Rng.create 3) ()
  in
  Alcotest.(check bool) "linear rejects" true (linear.Flow.accepted = None);
  Alcotest.(check bool) "adaptive rejects" true (adaptive.Flow.accepted = None);
  Alcotest.(check int) "no real routes spent" 0 stats.Flow.real_routes;
  Alcotest.(check bool) "no frontier" true (stats.Flow.frontier_k = None)

let test_adaptive_route_budget () =
  (* On a comfortably-routable circuit the ladder's acceptance sits at
     its very first point: one confirming route, never the 14 the linear
     schedule walks. *)
  let net = small_circuit 1 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.3 ~aspect:1.0 ~geometry
  in
  let outcome, stats =
    Flow.run_adaptive ~subject ~library:lib ~floorplan ~rng:(Rng.create 2) ()
  in
  (match outcome.Flow.accepted with
  | Some it -> Alcotest.(check (float 1e-9)) "accepted at K=0" 0.0 it.Flow.k
  | None -> Alcotest.fail "loose floorplan should route");
  Alcotest.(check bool)
    (Printf.sprintf "route budget respected (%d <= 6)" stats.Flow.real_routes)
    true
    (stats.Flow.real_routes <= 6);
  Alcotest.(check bool) "routing returned" true (outcome.Flow.routing <> None)

(* ---------------------- synthesis orchestration ---------------------- *)

let orchestrate_floorplan_of subject =
  Floorplan.for_area
    ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
    ~utilization:0.5 ~aspect:1.0 ~geometry

let test_orchestrate_beats_baseline () =
  let net = small_circuit 1 in
  let r =
    Flow.orchestrate ~budget:4 ~optimize:false ~network:net ~library:lib
      ~floorplan_of:orchestrate_floorplan_of ~seed:1 ()
  in
  Alcotest.(check int) "baseline leads the schedule" 0
    (match r.Flow.evaluations with
    | b :: _ when b.Flow.cand_label = "baseline" -> 0
    | _ -> 1);
  Alcotest.(check int) "candidate count" 5 (List.length r.Flow.evaluations);
  Alcotest.(check bool)
    (Printf.sprintf "best %d gates <= baseline %d" r.Flow.best.Flow.gates
       r.Flow.baseline.Flow.gates)
    true
    (r.Flow.best.Flow.gates <= r.Flow.baseline.Flow.gates);
  (* The selected candidate carries an accepted, equivalent mapped netlist
     (orchestrate miter-checks internally; re-check functionally here). *)
  let outcome =
    match r.Flow.best.Flow.result with
    | Some (o, _) -> o
    | None -> Alcotest.fail "selected candidate was guarded"
  in
  match outcome.Flow.mapped with
  | None -> Alcotest.fail "selected candidate did not accept"
  | Some mapped ->
    let rng = Rng.create 11 in
    for _ = 1 to 8 do
      let stimulus = Network.random_vectors rng net in
      if Network.simulate net stimulus <> Mapped.simulate mapped stimulus then
        Alcotest.fail "selected mapped netlist is not equivalent";
      if Network.simulate net stimulus
         <> Subject.simulate r.Flow.best_subject stimulus
      then Alcotest.fail "selected subject is not equivalent"
    done

let test_orchestrate_deterministic () =
  let run () =
    let net = small_circuit 3 in
    let r =
      Flow.orchestrate ~budget:6 ~optimize:false ~network:net ~library:lib
        ~floorplan_of:orchestrate_floorplan_of ~seed:7 ()
    in
    let digest =
      List.map
        (fun (e : Flow.candidate_eval) ->
          ( e.Flow.cand_label,
            e.Flow.gates,
            e.Flow.guarded,
            match e.Flow.result with
            | None -> None
            | Some (o, _) ->
              Some
                ( Option.map (fun it -> it.Flow.k) o.Flow.accepted,
                  Option.map Mapped.to_verilog o.Flow.mapped ) ))
        r.Flow.evaluations
    in
    (r.Flow.best_index, digest)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same selection" (fst a) (fst b);
  Alcotest.(check bool) "bit-identical evaluations" true (snd a = snd b)

let test_orchestrate_jobs_parity () =
  (* The pooled evaluation must reproduce the sequential one exactly. *)
  let net = small_circuit 4 in
  let go jobs =
    let r =
      Flow.orchestrate ~budget:4 ~optimize:false ~jobs ~network:net
        ~library:lib ~floorplan_of:orchestrate_floorplan_of ~seed:5 ()
    in
    ( r.Flow.best_index,
      List.map (fun (e : Flow.candidate_eval) -> (e.Flow.cand_label, e.Flow.gates))
        r.Flow.evaluations )
  in
  Alcotest.(check bool) "jobs=1 == jobs=4" true (go 1 = go 4)

let () =
  Alcotest.run "flow"
    [
      ( "flow",
        [
          Alcotest.test_case "loose floorplan" `Quick test_flow_loose_floorplan_accepts_first;
          Alcotest.test_case "tight floorplan iterates" `Quick
            test_flow_iterates_on_tight_floorplan;
          Alcotest.test_case "function preserved" `Quick
            test_flow_function_preserved_through_accepted;
          Alcotest.test_case "metrics consistent" `Quick test_flow_metrics_consistent;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "spla-like determinism" `Quick
            test_parallel_spla_like;
          Alcotest.test_case "pdc-like determinism" `Quick
            test_parallel_pdc_like;
          Alcotest.test_case "tight floorplan" `Quick
            test_parallel_tight_floorplan_walks_schedule;
        ] );
      ( "adaptive",
        [
          QCheck_alcotest.to_alcotest prop_adaptive_matches_linear;
          Alcotest.test_case "over-capacity" `Quick test_adaptive_over_capacity;
          Alcotest.test_case "route budget" `Quick test_adaptive_route_budget;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sis vs baseline" `Quick test_full_pipeline_sis_vs_baseline;
          Alcotest.test_case "with sta" `Quick test_pipeline_with_sta;
        ] );
      ( "orchestrate",
        [
          Alcotest.test_case "beats baseline" `Quick
            test_orchestrate_beats_baseline;
          Alcotest.test_case "deterministic" `Quick
            test_orchestrate_deterministic;
          Alcotest.test_case "jobs parity" `Quick test_orchestrate_jobs_parity;
        ] );
    ]
