(* The serve fleet front-end: a 2-worker sharded drain must be
   bit-identical to an in-process drain of the same spool, a worker
   killed mid-job must have its job retried on a surviving worker with a
   summary that matches the no-crash run, restarts must respawn within
   budget, backpressure must shed the oldest waiter, and the socket
   ingress must accept jobs end-to-end through a real [cals serve
   --listen] process. *)

module Proto = Cals_serve.Proto
module Shard = Cals_serve.Shard
module Scheduler = Cals_serve.Scheduler
module Netaddr = Cals_util.Netaddr
module Check = Cals_verify.Check
module Fuzz = Cals_verify.Fuzz

let cals = Filename.concat ".." "bin/cals.exe"

let fresh_out =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "shard-test-out-%d" !n

let workload_spec ?(id = "") ?(checks = Check.Off) ?deadline_s ?k_schedule
    ~seed () =
  {
    Proto.id;
    input =
      Proto.Workload
        { Fuzz.seed; family = Fuzz.Pla; inputs = 6; outputs = 3; size = 12 };
    k_schedule;
    checks;
    utilization = 0.55;
    optimize = false;
    timing = None;
    orchestrate = None;
    deadline_s;
  }

let fleet_config ?(workers = 2) ?(restart_limit = 2) ?(queue_watermark = 64)
    ~out () =
  {
    Shard.default_config with
    Shard.workers;
    worker_argv = [| cals; "serve"; "--worker"; "--out"; out |];
    out_dir = out;
    restart_limit;
    queue_watermark;
    backoff_s = 0.005;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Proto.parse_json (read_file path) with
  | Ok json -> json
  | Error e -> Alcotest.failf "%s: malformed JSON: %s" path e

(* The deterministic slice of a job's metrics.json — everything that
   must match between a fleet drain and an in-process drain (wall_s,
   attempts and store fields are run-dependent and excluded). *)
let det_metrics path =
  let json = parse_file path in
  let num name =
    match Proto.member name json with
    | Some (Proto.Num n) -> Printf.sprintf "%s=%g" name n
    | _ -> name ^ "=?"
  in
  let cache name =
    match Proto.member "cache" json with
    | Some c -> (
      match Proto.member name c with
      | Some (Proto.Num n) -> Printf.sprintf "cache.%s=%g" name n
      | _ -> "cache." ^ name ^ "=?")
    | None -> "cache?"
  in
  String.concat " "
    [
      num "accepted_k";
      num "iterations";
      num "real_routes";
      num "cells";
      num "cell_area";
      num "violations";
      cache "hits";
      cache "misses";
    ]

let check_identical_job ~single ~fleet id =
  Alcotest.(check string)
    (id ^ ": mapped.v bit-identical")
    (read_file (Filename.concat (Filename.concat single id) "mapped.v"))
    (read_file (Filename.concat (Filename.concat fleet id) "mapped.v"));
  Alcotest.(check string)
    (id ^ ": deterministic metrics identical")
    (det_metrics (Filename.concat (Filename.concat single id) "metrics.json"))
    (det_metrics (Filename.concat (Filename.concat fleet id) "metrics.json"))

(* Six jobs over two repeated designs, drained by the 2-worker fleet and
   by the in-process scheduler: per-job artifacts must be bit-identical,
   including the cache-hit numbers (sharding by design keeps each
   design's jobs on one worker's warmed session). *)
let test_fleet_matches_single () =
  let specs =
    List.init 6 (fun i ->
        workload_spec
          ~id:(Printf.sprintf "wl-%d" i)
          ~seed:(3 + (i mod 2))
          ~k_schedule:[ 0.0; 0.001 ]
          ())
  in
  let single = fresh_out () in
  let scheduler =
    Scheduler.create
      { Scheduler.default_config with Scheduler.jobs = 1; out_dir = single }
  in
  List.iter (fun s -> ignore (Scheduler.submit scheduler s)) specs;
  let ss = Scheduler.drain scheduler () in
  Alcotest.(check int) "single: all complete" 6 ss.Scheduler.completed;
  let fleet = fresh_out () in
  let shard = Shard.create (fleet_config ~out:fleet ()) in
  List.iter (fun s -> ignore (Shard.submit shard s)) specs;
  let fs = Shard.drain shard () in
  Alcotest.(check int) "fleet: submitted" 6 fs.Shard.submitted;
  Alcotest.(check int) "fleet: all complete" 6 fs.Shard.completed;
  Alcotest.(check int) "fleet: nothing shed" 0 fs.Shard.shed;
  Alcotest.(check int) "fleet: no restarts" 0 fs.Shard.restarts;
  List.iter
    (fun (s : Proto.spec) ->
      check_identical_job ~single ~fleet s.Proto.id)
    specs;
  (* summary.json carries the shard extension. *)
  let summary = parse_file (Filename.concat fleet "summary.json") in
  match Proto.member "shard" summary with
  | Some _ -> ()
  | None -> Alcotest.fail "fleet summary.json has no shard object"

let with_chaos f =
  Unix.putenv "CALS_SHARD_CHAOS" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "CALS_SHARD_CHAOS" "0") f

(* Fault injection: the chaos hook kills a worker mid-job on its first
   attempt. With no restart budget the dead worker is abandoned and the
   job must be retried on a *surviving* worker — and the drain summary
   (and artifacts) must match a run where nothing crashed. *)
let test_kill_retries_on_survivor () =
  let specs chaos =
    [
      workload_spec
        ~id:(if chaos then "chaos-kill-1" else "calm-1")
        ~seed:3 ~k_schedule:[ 0.0; 0.001 ] ();
      workload_spec ~id:"steady-1" ~seed:4 ~k_schedule:[ 0.0; 0.001 ] ();
      workload_spec ~id:"steady-2" ~seed:4 ~k_schedule:[ 0.0; 0.001 ] ();
    ]
  in
  let crash = fresh_out () in
  let cs =
    with_chaos (fun () ->
        let shard = Shard.create (fleet_config ~restart_limit:0 ~out:crash ()) in
        List.iter (fun s -> ignore (Shard.submit shard s)) (specs true);
        Shard.drain shard ())
  in
  Alcotest.(check int) "crash run: all jobs still complete" 3
    cs.Shard.completed;
  Alcotest.(check int) "crash run: nothing quarantined" 0 cs.Shard.quarantined;
  Alcotest.(check bool) "crash run: the kill was retried" true
    (cs.Shard.retries >= 1);
  Alcotest.(check int) "crash run: no respawn without budget" 0
    cs.Shard.restarts;
  (* The same batch without chaos: summaries must agree on everything
     the crash can't legitimately change. *)
  let calm = fresh_out () in
  let shard = Shard.create (fleet_config ~restart_limit:0 ~out:calm ()) in
  List.iter (fun s -> ignore (Shard.submit shard s)) (specs false);
  let ns = Shard.drain shard () in
  Alcotest.(check int) "no-crash run: same submitted" cs.Shard.submitted
    ns.Shard.submitted;
  Alcotest.(check int) "no-crash run: same completed" cs.Shard.completed
    ns.Shard.completed;
  Alcotest.(check int) "no-crash run: same quarantined" cs.Shard.quarantined
    ns.Shard.quarantined;
  (* The killed job's artifact is bit-identical to its calm twin. *)
  Alcotest.(check string) "killed job's mapped.v matches the calm run"
    (read_file (Filename.concat calm "calm-1/mapped.v"))
    (read_file (Filename.concat crash "chaos-kill-1/mapped.v"));
  List.iter (check_identical_job ~single:calm ~fleet:crash)
    [ "steady-1"; "steady-2" ]

(* With restart budget the killed worker respawns and the fleet keeps
   its full width: the retry lands back on the (reborn) owner of the
   design's hash slot. *)
let test_kill_respawns_within_budget () =
  let out = fresh_out () in
  let s =
    with_chaos (fun () ->
        let shard = Shard.create (fleet_config ~restart_limit:2 ~out ()) in
        ignore
          (Shard.submit shard
             (workload_spec ~id:"chaos-kill-a" ~seed:3
                ~k_schedule:[ 0.0; 0.001 ] ()));
        ignore
          (Shard.submit shard
             (workload_spec ~id:"steady" ~seed:4 ~k_schedule:[ 0.0; 0.001 ] ()));
        Shard.drain shard ())
  in
  Alcotest.(check int) "all complete" 2 s.Shard.completed;
  Alcotest.(check int) "one respawn" 1 s.Shard.restarts;
  Alcotest.(check bool) "kill counted as a retry" true (s.Shard.retries >= 1);
  Alcotest.(check bool) "artifact written after the retry" true
    (Sys.file_exists (Filename.concat out "chaos-kill-a/mapped.v"))

(* Backpressure: a watermark of 1 on a single worker sheds the oldest
   waiter on every admission past the first — deterministically, since
   all submissions happen before the drain starts. Shed jobs quarantine
   with an artifact and are counted separately from retry-exhaustion. *)
let test_backpressure_sheds_oldest () =
  let out = fresh_out () in
  let shard =
    Shard.create (fleet_config ~workers:1 ~queue_watermark:1 ~out ())
  in
  let ids =
    List.init 4 (fun i ->
        let id = Printf.sprintf "bp-%d" i in
        ignore
          (Shard.submit shard
             (workload_spec ~id ~seed:3 ~k_schedule:[ 0.0; 0.001 ] ()));
        id)
  in
  let s = Shard.drain shard () in
  Alcotest.(check int) "submitted" 4 s.Shard.submitted;
  Alcotest.(check int) "only the newest survives" 1 s.Shard.completed;
  Alcotest.(check int) "three shed" 3 s.Shard.shed;
  Alcotest.(check int) "shedding is not quarantine-by-retry" 0
    s.Shard.quarantined;
  (* Oldest-first: bp-0..2 shed, bp-3 ran. *)
  Alcotest.(check bool) "newest completed" true
    (Sys.file_exists (Filename.concat out "bp-3/mapped.v"));
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " left a shed artifact") true
        (Sys.file_exists
           (Filename.concat out (Printf.sprintf "quarantine/%s/failure.txt" id))))
    (List.filteri (fun i _ -> i < 3) ids)

(* ---------------- socket ingress, end to end ---------------- *)

let rec connect_retry addr tries =
  match Netaddr.connect addr with
  | fd -> fd
  | exception _ when tries > 0 ->
    Unix.sleepf 0.1;
    connect_retry addr (tries - 1)

(* A real [cals serve --listen unix:... --workers 2] process: submit two
   jobs over the socket, ask for the drain, and check the acks, the
   summary line, the artifacts and the exit code. *)
let test_socket_drain () =
  let out = fresh_out () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cals-shard-test-%d.sock" (Unix.getpid ()))
  in
  let pid =
    Unix.create_process cals
      [|
        cals; "serve"; "--listen"; "unix:" ^ sock; "--workers"; "2"; "--out";
        out;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let fd = connect_retry (Netaddr.Unix_sock sock) 50 in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send line =
    output_string oc (line ^ "\n");
    flush oc;
    input_line ic
  in
  let ack =
    send
      {|{"id":"sock-1","workload":{"family":"pla","seed":3,"inputs":6,"outputs":3,"size":12},"k_schedule":[0,0.001]}|}
  in
  Alcotest.(check bool) "submission acked with its id" true
    (ack = {|{"ok":true,"id":"sock-1"}|});
  let nack = send {|this is not a job|} in
  Alcotest.(check bool) "malformed line nacked" true
    (String.length nack >= 12 && String.sub nack 0 12 = {|{"ok":false,|});
  let summary = send {|{"op":"drain"}|} in
  (match Proto.parse_json summary with
  | Ok json ->
    Alcotest.(check bool) "summary line reports the completion" true
      (Proto.member "completed" json = Some (Proto.Num 1.0))
  | Error e -> Alcotest.failf "summary line is not JSON (%s): %s" e summary);
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (* One parse error was injected, so the service exits 1 — but the job
     itself completed with artifacts on disk. *)
  Alcotest.(check bool) "service exited by itself" true
    (match status with Unix.WEXITED (0 | 1) -> true | _ -> false);
  Alcotest.(check bool) "socket artifact written" true
    (Sys.file_exists (Filename.concat out "sock-1/mapped.v"));
  Alcotest.(check bool) "stale socket removed" false (Sys.file_exists sock)

let () =
  Alcotest.run "shard"
    [
      ( "fleet",
        [
          Alcotest.test_case "matches-single-process" `Quick
            test_fleet_matches_single;
          Alcotest.test_case "kill-retries-on-survivor" `Quick
            test_kill_retries_on_survivor;
          Alcotest.test_case "kill-respawns-within-budget" `Quick
            test_kill_respawns_within_budget;
          Alcotest.test_case "backpressure-sheds-oldest" `Quick
            test_backpressure_sheds_oldest;
          Alcotest.test_case "socket-drain" `Quick test_socket_drain;
        ] );
    ]
