(* Golden-corpus differential suite: small BLIF designs checked into
   test/golden/ with expected per-K metrics snapshots. Any mapper,
   placer or router change that shifts QoR fails loudly with a readable
   per-line diff; the incremental engine is additionally diffed against
   cold-start evaluation at every K point of every design.

   Regenerate the snapshots (after an intentional QoR change) with:

     CALS_GOLDEN_DIR=$PWD/test/golden CALS_GOLDEN_UPDATE=1 \
       dune exec test/test_golden.exe *)

module Flow = Cals_core.Flow
module Incremental = Cals_core.Incremental
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Congestion = Cals_route.Congestion
module Router = Cals_route.Router
module Rgrid = Cals_route.Rgrid
module Fnv = Cals_util.Tables.Fnv64
module Gen = Cals_workload.Gen
module Rng = Cals_util.Rng
module Sta = Cals_sta.Sta

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib
let wire = Cals_cell.Library.wire lib

let golden_dir =
  Option.value (Sys.getenv_opt "CALS_GOLDEN_DIR") ~default:"golden"

let update_mode = Sys.getenv_opt "CALS_GOLDEN_UPDATE" <> None

(* The corpus: deterministic generators stand in for the IWLS93 originals
   (not redistributable); the BLIF files on disk are the authority once
   generated. *)
let designs =
  [
    ( "pla_shared_08",
      fun () ->
        Gen.pla ~rng:(Rng.create 301) ~inputs:8 ~outputs:6 ~products:40 () );
    ( "pla_wide_10",
      fun () ->
        Gen.pla ~rng:(Rng.create 302) ~inputs:10 ~outputs:8 ~products:60
          ~terms_lo:5 ~terms_hi:14 () );
    ( "ml_control_10",
      fun () ->
        Gen.multilevel ~rng:(Rng.create 303) ~inputs:10 ~outputs:6
          ~internal_nodes:40 () );
    ( "ml_deep_08",
      fun () ->
        Gen.multilevel ~rng:(Rng.create 304) ~inputs:8 ~outputs:8
          ~internal_nodes:30 () );
    ( "pla_small_06",
      fun () ->
        Gen.pla ~rng:(Rng.create 305) ~inputs:6 ~outputs:4 ~products:24 () );
  ]

let k_points = [ 0.0; 0.0005; 0.001; 0.005; 0.01; 0.1 ]

let blif_path name = Filename.concat golden_dir (name ^ ".blif")
let expected_path name = Filename.concat golden_dir (name ^ ".expected")

let load_network name make =
  let path = blif_path name in
  if update_mode && not (Sys.file_exists path) then
    Cals_logic.Blif.write_file ~model:name path (make ());
  Cals_logic.Blif.read_file path

let fmt_iteration (it : Flow.iteration) =
  if it.Flow.hpwl_um = infinity then
    Printf.sprintf "K=%g DNF (does not legalize)" it.Flow.k
  else
    Printf.sprintf
      "K=%g cells=%d area=%.4f util=%.6f hpwl=%.4f viol=%d ovfl=%.4f wl=%.4f"
      it.Flow.k it.Flow.cells it.Flow.cell_area it.Flow.utilization
      it.Flow.hpwl_um it.Flow.report.Congestion.violations
      it.Flow.report.Congestion.total_overflow
      it.Flow.report.Congestion.wirelength_um

(* FNV-64 digest of a routed snapshot: every segment's net, endpoint
   gcells and committed edge walk, in commit order. Two results with the
   same digest routed the same paths, so the golden lines pin the routes
   themselves, not just their aggregate metrics. *)
let route_digest = function
  | None -> "-"
  | Some (r : Router.result) ->
    let h = ref (Fnv.int Fnv.empty (Array.length r.Router.routes)) in
    Array.iter
      (fun (rt : Router.route) ->
        let (c1, r1), (c2, r2) = rt.Router.gends in
        h := Fnv.int !h rt.Router.net;
        h := Fnv.int !h c1;
        h := Fnv.int !h r1;
        h := Fnv.int !h c2;
        h := Fnv.int !h r2;
        List.iter
          (fun e ->
            match e with
            | Rgrid.H (c, r) -> h := Fnv.int (Fnv.int (Fnv.int !h 0) c) r
            | Rgrid.V (c, r) -> h := Fnv.int (Fnv.int (Fnv.int !h 1) c) r)
          rt.Router.edges)
      r.Router.routes;
    Printf.sprintf "%016Lx" !h

(* Per-K metrics of one design, computed twice — through an incremental
   session (mapping and routing both warm) and cold — and required to
   agree line for line, routed paths included, before the snapshot
   comparison even starts. *)
let actual_lines name net =
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.45 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create 42)
  in
  let session =
    Incremental.create ~subject ~library:lib ~positions ()
  in
  let header =
    Printf.sprintf "design=%s gates=%d pis=%d pos=%d" name
      (Subject.num_gates subject) (Subject.num_pis subject)
      (Array.length subject.Subject.outputs)
  in
  let route_session = Incremental.route_session session in
  let lines =
    List.map
      (fun k ->
        let eval ?session ?route_session () =
          let it, (mapped, placement, routing) =
            Flow.evaluate_k ?session ?route_session ~subject ~library:lib
              ~floorplan ~positions ~k ()
          in
          (* Post-route critical path of this K point — the timing
             digest the T>0-vs-T=0 differential in test_sta leans on.
             "-" when the point never routed (DNF). *)
          let crit =
            match (placement, routing) with
            | Some placement, Some routing ->
              let report =
                Sta.analyze ~net_length_um:routing.Router.net_length_um
                  mapped ~wire ~placement
              in
              Printf.sprintf "%.4f" report.Sta.critical.Sta.arrival_ns
            | _ -> "-"
          in
          Printf.sprintf "%s route=%s crit=%s" (fmt_iteration it)
            (route_digest routing) crit
        in
        let warm = eval ~session ~route_session () and cold = eval () in
        if warm <> cold then
          Alcotest.failf
            "%s: incremental and cold evaluation disagree at K=%g:\n\
            \  warm: %s\n\
            \  cold: %s"
            name k warm cold;
        warm)
      k_points
  in
  header :: lines

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

(* Readable diff: every divergent line with its number, expected marked
   [-], actual marked [+]. *)
let diff_message name expected actual =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "%s: per-K metrics diverged from the golden snapshot (%s).\n\
        If the QoR change is intentional, regenerate with \
        CALS_GOLDEN_UPDATE=1.\n"
       name (expected_path name));
  let n = max (List.length expected) (List.length actual) in
  for i = 0 to n - 1 do
    let e = List.nth_opt expected i and a = List.nth_opt actual i in
    if e <> a then begin
      (match e with
      | Some e -> Buffer.add_string buf (Printf.sprintf "  line %d - %s\n" (i + 1) e)
      | None -> Buffer.add_string buf (Printf.sprintf "  line %d - <missing>\n" (i + 1)));
      match a with
      | Some a -> Buffer.add_string buf (Printf.sprintf "  line %d + %s\n" (i + 1) a)
      | None -> Buffer.add_string buf (Printf.sprintf "  line %d + <missing>\n" (i + 1))
    end
  done;
  Buffer.contents buf

let check_design (name, make) () =
  let net = load_network name make in
  let actual = actual_lines name net in
  let path = expected_path name in
  if update_mode then begin
    write_lines path actual;
    Printf.printf "updated %s\n" path
  end
  else begin
    if not (Sys.file_exists path) then
      Alcotest.failf "%s: missing golden snapshot %s (run with \
                      CALS_GOLDEN_UPDATE=1 to create it)" name path;
    let expected = read_lines path in
    if expected <> actual then Alcotest.fail (diff_message name expected actual)
  end

let () =
  Alcotest.run "golden"
    [
      ( "corpus",
        List.map
          (fun d -> Alcotest.test_case (fst d) `Quick (check_design d))
          designs );
    ]
