module Cube = Cals_logic.Cube
module Sop = Cals_logic.Sop
module Kernel = Cals_logic.Kernel
module Factor = Cals_logic.Factor
module Network = Cals_logic.Network
module Optimize = Cals_logic.Optimize
module Decompose = Cals_logic.Decompose
module Blif = Cals_logic.Blif
module Pla = Cals_logic.Pla
module Subject = Cals_netlist.Subject
module Rng = Cals_util.Rng

(* ------------------------- Cube ------------------------- *)

let c_ab = Cube.of_literals [ (0, true); (1, true) ]
let c_ab' = Cube.of_literals [ (0, true); (1, false) ]
let c_a = Cube.lit 0 true

let test_cube_literals_roundtrip () =
  Alcotest.(check (list (pair int bool)))
    "roundtrip"
    [ (0, true); (1, false); (3, true) ]
    (Cube.literals (Cube.of_literals [ (3, true); (0, true); (1, false) ]))

let test_cube_contradiction () =
  Alcotest.check_raises "x and x'"
    (Invalid_argument "Cube.of_literals: duplicate or contradictory literal")
    (fun () -> ignore (Cube.of_literals [ (0, true); (0, false) ]))

let test_cube_inter () =
  (match Cube.inter c_ab c_a with
  | Some c -> Alcotest.(check bool) "ab & a = ab" true (Cube.equal c c_ab)
  | None -> Alcotest.fail "intersection exists");
  Alcotest.(check bool) "ab & ab' empty" true (Cube.inter c_ab c_ab' = None)

let test_cube_covers () =
  Alcotest.(check bool) "a covers ab" true (Cube.covers c_a c_ab);
  Alcotest.(check bool) "ab not covers a" false (Cube.covers c_ab c_a);
  Alcotest.(check bool) "universe covers all" true (Cube.covers Cube.universe c_ab)

let test_cube_divide () =
  (match Cube.divide c_ab c_a with
  | Some q ->
    Alcotest.(check (list (pair int bool))) "ab/a = b" [ (1, true) ] (Cube.literals q)
  | None -> Alcotest.fail "divisible");
  Alcotest.(check bool) "a/(ab) fails" true (Cube.divide c_a c_ab = None)

let test_cube_common () =
  let g = Cube.common c_ab c_ab' in
  Alcotest.(check (list (pair int bool))) "common = a" [ (0, true) ] (Cube.literals g)

let test_cube_eval () =
  Alcotest.(check bool) "ab at 11" true (Cube.eval c_ab [| true; true |]);
  Alcotest.(check bool) "ab at 10" false (Cube.eval c_ab [| true; false |]);
  Alcotest.(check bool) "universe" true (Cube.eval Cube.universe [||])

let test_cube_to_string () =
  Alcotest.(check string) "render" "x0 x1'" (Cube.to_string c_ab');
  Alcotest.(check string) "universe" "<1>" (Cube.to_string Cube.universe)

(* ------------------------- Sop ------------------------- *)

let sop s = Sop.of_cubes s

let test_sop_containment_minimal () =
  let f = sop [ c_ab; c_a ] in
  Alcotest.(check int) "covered cube dropped" 1 (Sop.num_cubes f);
  Alcotest.(check bool) "kept a" true (Sop.equal f (sop [ c_a ]))

let test_sop_sum_product () =
  let f = Sop.sum (Sop.var 0) (Sop.var 1) in
  let g = Sop.product f (Sop.lit 2 false) in
  Alcotest.(check int) "cubes" 2 (Sop.num_cubes g);
  Alcotest.(check int) "literals" 4 (Sop.num_literals g);
  Alcotest.(check bool) "eval" true (Sop.eval g [| true; false; false |]);
  Alcotest.(check bool) "eval c" false (Sop.eval g [| true; false; true |])

let test_sop_product_annihilation () =
  let z = Sop.product (Sop.var 0) (Sop.lit 0 false) in
  Alcotest.(check bool) "zero" true (Sop.is_zero z)

let test_sop_cofactor () =
  let f = sop [ c_ab; Cube.of_literals [ (0, false); (2, true) ] ] in
  Alcotest.(check bool) "f_a = b" true (Sop.equal (Sop.cofactor f 0 true) (Sop.var 1));
  Alcotest.(check bool) "f_a' = c" true (Sop.equal (Sop.cofactor f 0 false) (Sop.var 2))

let test_sop_divide_by_cube () =
  let f =
    sop
      [
        Cube.of_literals [ (0, true); (1, true); (2, true) ];
        Cube.of_literals [ (0, true); (1, true); (3, true) ];
        Cube.lit 4 true;
      ]
  in
  let q, r = Sop.divide_by_cube f c_ab in
  Alcotest.(check bool) "quotient" true (Sop.equal q (Sop.sum (Sop.var 2) (Sop.var 3)));
  Alcotest.(check bool) "remainder" true (Sop.equal r (Sop.var 4))

let test_sop_weak_division () =
  let cube a b = Cube.of_literals [ (a, true); (b, true) ] in
  let f = sop [ cube 0 2; cube 0 3; cube 1 2; cube 1 3; Cube.lit 4 true ] in
  let d = Sop.sum (Sop.var 0) (Sop.var 1) in
  let q, r = Sop.divide f d in
  Alcotest.(check bool) "q = c+d" true (Sop.equal q (Sop.sum (Sop.var 2) (Sop.var 3)));
  Alcotest.(check bool) "r = e" true (Sop.equal r (Sop.var 4))

let random_sop rng nvars ncubes_max =
  Sop.of_cubes
    (List.init (Rng.range rng 1 ncubes_max) (fun _ ->
         let lits = Rng.range rng 1 (min 4 nvars) in
         let vars = Rng.sample rng lits nvars in
         Cube.of_literals (List.map (fun v -> (v, Rng.bool rng)) vars)))

let test_sop_division_identity () =
  let rng = Rng.create 77 in
  for _ = 1 to 100 do
    let f = random_sop rng 6 5 and d = random_sop rng 6 2 in
    if not (Sop.is_zero d) then begin
      let q, r = Sop.divide f d in
      let rebuilt = Sop.sum (Sop.product q d) r in
      let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
      if Sop.eval64 rebuilt inputs <> Sop.eval64 f inputs then
        Alcotest.failf "division identity broken: f=%s d=%s" (Sop.to_string f)
          (Sop.to_string d)
    end
  done

let test_sop_cube_free () =
  let f =
    sop
      [
        Cube.of_literals [ (0, true); (1, true) ];
        Cube.of_literals [ (0, true); (2, true) ];
      ]
  in
  Alcotest.(check bool) "not cube free" false (Sop.is_cube_free f);
  Alcotest.(check bool) "made cube free" true (Sop.is_cube_free (Sop.make_cube_free f))

let test_sop_complement () =
  let f = Sop.sum (Sop.var 0) (Sop.var 1) in
  match Sop.complement f with
  | None -> Alcotest.fail "complement exists"
  | Some g ->
    for row = 0 to 3 do
      let inputs = [| row land 1 <> 0; row land 2 <> 0 |] in
      Alcotest.(check bool)
        (Printf.sprintf "complement row %d" row)
        (not (Sop.eval f inputs))
        (Sop.eval g inputs)
    done

let test_sop_complement_random () =
  let rng = Rng.create 99 in
  for _ = 1 to 50 do
    let f = random_sop rng 8 6 in
    match Sop.complement f with
    | None -> Alcotest.fail "small sop should complement"
    | Some g ->
      let inputs = Array.init 8 (fun _ -> Rng.bits64 rng) in
      if Int64.lognot (Sop.eval64 f inputs) <> Sop.eval64 g inputs then
        Alcotest.failf "complement wrong for %s" (Sop.to_string f)
  done

let test_sop_substitute () =
  let f = sop [ Cube.of_literals [ (0, true); (2, true) ]; Cube.lit 1 true ] in
  let g = Sop.sum (Sop.var 3) (Sop.var 4) in
  Alcotest.(check bool) "can substitute" true (Sop.can_substitute f 2 g);
  let h = Sop.substitute f 2 g in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let inputs = Array.init 5 (fun _ -> Rng.bits64 rng) in
    let v = Sop.eval64 g inputs in
    let f_in = [| inputs.(0); inputs.(1); v |] in
    if Sop.eval64 f f_in <> Sop.eval64 h inputs then Alcotest.fail "substitution wrong"
  done

let test_sop_substitute_negative_phase () =
  let f = sop [ Cube.of_literals [ (2, false); (0, true) ] ] in
  let g = Sop.sum (Sop.var 3) (Sop.var 4) in
  let h = Sop.substitute f 2 g in
  let rng = Rng.create 6 in
  for _ = 1 to 20 do
    let inputs = Array.init 5 (fun _ -> Rng.bits64 rng) in
    let v = Sop.eval64 g inputs in
    let f_in = [| inputs.(0); inputs.(1); v |] in
    if Sop.eval64 f f_in <> Sop.eval64 h inputs then
      Alcotest.fail "negative-phase substitution wrong"
  done

let test_sop_map_vars () =
  let f = sop [ c_ab ] in
  let g = Sop.map_vars (fun v -> v + 10) f in
  Alcotest.(check (list int)) "support" [ 10; 11 ] (Sop.support_list g)

(* ------------------------- Kernel ------------------------- *)

let test_kernels_textbook () =
  let cube a b = Cube.of_literals [ (a, true); (b, true) ] in
  let f = sop [ cube 0 2; cube 0 3; cube 1 2; cube 1 3 ] in
  let kernels = Kernel.all f in
  let has k = List.exists (fun x -> Sop.equal x.Kernel.kernel k) kernels in
  Alcotest.(check bool) "a+b" true (has (Sop.sum (Sop.var 0) (Sop.var 1)));
  Alcotest.(check bool) "c+d" true (has (Sop.sum (Sop.var 2) (Sop.var 3)))

let test_kernels_cube_free () =
  let rng = Rng.create 17 in
  for _ = 1 to 30 do
    let f = random_sop rng 7 8 in
    List.iter
      (fun k ->
        if not (Sop.is_cube_free k.Kernel.kernel) then
          Alcotest.failf "kernel not cube-free: %s" (Sop.to_string k.Kernel.kernel))
      (Kernel.all f)
  done

let test_kernels_single_cube_none () =
  let f = sop [ c_ab ] in
  Alcotest.(check int) "no kernels" 0 (List.length (Kernel.all f))

let test_level0_subset () =
  let cube a b = Cube.of_literals [ (a, true); (b, true) ] in
  let f = sop [ cube 0 2; cube 0 3; cube 1 2; cube 1 3; Cube.lit 5 true ] in
  let all = Kernel.all f and l0 = Kernel.level0 f in
  Alcotest.(check bool) "level0 subset" true
    (List.for_all
       (fun k -> List.exists (fun x -> Sop.equal x.Kernel.kernel k.Kernel.kernel) all)
       l0)

(* ------------------------- Factor ------------------------- *)

let test_factor_preserves_function () =
  let rng = Rng.create 23 in
  for _ = 1 to 100 do
    let f = random_sop rng 9 10 in
    let form = Factor.factor f in
    let inputs = Array.init 9 (fun _ -> Rng.bits64 rng) in
    if Factor.eval64 form inputs <> Sop.eval64 f inputs then
      Alcotest.failf "factoring changed function: %s" (Sop.to_string f)
  done

let test_factor_saves_literals () =
  let cube a b = Cube.of_literals [ (a, true); (b, true) ] in
  let f = sop [ cube 0 2; cube 0 3; cube 1 2; cube 1 3 ] in
  let form = Factor.factor f in
  Alcotest.(check int) "factored literals" 4 (Factor.num_literals form)

let test_factor_constants () =
  Alcotest.(check bool) "zero" true (Factor.factor Sop.zero = Factor.Const false);
  Alcotest.(check bool) "one" true (Factor.factor Sop.one = Factor.Const true)

(* ------------------------- Network ------------------------- *)

let two_level_net () =
  let net = Network.create ~pi_names:[| "a"; "b"; "c" |] in
  let fanins = [| Network.Pi 0; Network.Pi 1; Network.Pi 2 |] in
  let n0 = Network.add_node net fanins (sop [ c_ab; Cube.lit 2 true ]) in
  let n1 = Network.add_node net [| Network.Pi 0; Network.Pi 1 |] (sop [ c_ab ]) in
  Network.set_output net "o0" (Network.Node n0);
  Network.set_output net "o1" (Network.Node n1);
  net

let test_network_simulate () =
  let net = two_level_net () in
  let out = Network.simulate net [| -1L; -1L; 0L |] in
  Alcotest.(check int64) "o0 = ab" (-1L) out.(0);
  Alcotest.(check int64) "o1 = ab" (-1L) out.(1);
  let out = Network.simulate net [| 0L; -1L; 0L |] in
  Alcotest.(check int64) "o0 low" 0L out.(0)

let test_network_topo_and_live () =
  let net = two_level_net () in
  let _dead = Network.add_node net [| Network.Pi 0 |] (Sop.var 0) in
  Alcotest.(check int) "live" 2 (Network.num_live_nodes net);
  Alcotest.(check int) "topo live only" 2 (List.length (Network.topo_order net))

let test_network_sweep_removes_dead () =
  let net = two_level_net () in
  let _dead = Network.add_node net [| Network.Pi 0 |] (Sop.var 0) in
  Network.sweep net;
  Alcotest.(check int) "nodes compacted" 2 (Network.num_nodes net);
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_network_sweep_buffers () =
  let net = Network.create ~pi_names:[| "a" |] in
  let buf = Network.add_node net [| Network.Pi 0 |] (Sop.var 0) in
  let inv = Network.add_node net [| Network.Node buf |] (Sop.lit 0 false) in
  Network.set_output net "o" (Network.Node inv);
  Network.sweep net;
  Alcotest.(check int) "one node left" 1 (Network.num_nodes net);
  let out = Network.simulate net [| 0L |] in
  Alcotest.(check int64) "still inverts" (-1L) out.(0)

let test_network_sweep_constant_fanin_terminates () =
  (* Regression: constant propagation cofactored the consumer's SOP but
     left the stale fanin reference, so the constant node stayed live and
     the sweep fixpoint never converged (hit by Optimize.eliminate on
     rare workloads — fuzz seed 159). *)
  let net = Network.create ~pi_names:[| "a"; "b" |] in
  let k1 = Network.add_node net [||] Sop.one in
  let n =
    Network.add_node net
      [| Network.Pi 0; Network.Node k1; Network.Pi 1 |]
      (Sop.sum (Sop.product (Sop.var 0) (Sop.var 1)) (Sop.var 2))
  in
  Network.set_output net "o" (Network.Node n);
  Network.sweep net;
  (* o = a*1 + b = a + b; the constant node is gone. *)
  Alcotest.(check int) "constant swept" 1 (Network.num_nodes net);
  let out = Network.simulate net [| 0L; -1L |] in
  Alcotest.(check int64) "o = a + b" (-1L) out.(0);
  let out = Network.simulate net [| 0L; 0L |] in
  Alcotest.(check int64) "o low" 0L out.(0);
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_network_cycle_detect () =
  let net = Network.create ~pi_names:[| "a" |] in
  let n0 = Network.add_node net [| Network.Pi 0 |] (Sop.var 0) in
  (Network.node net n0).Network.fanins <- [| Network.Node n0 |];
  Network.set_output net "o" (Network.Node n0);
  match Network.validate net with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cycle not detected"

(* ------------------------- Optimize ------------------------- *)

let random_pla seed =
  let rng = Rng.create seed in
  Cals_workload.Gen.pla ~rng ~inputs:8 ~outputs:6 ~products:24 ~terms_lo:4
    ~terms_hi:10 ()

let spot_check_equiv netA netB seed label =
  let rng = Rng.create seed in
  for _ = 1 to 16 do
    let stimulus = Network.random_vectors rng netA in
    let a = Network.simulate netA stimulus and b = Network.simulate netB stimulus in
    if a <> b then Alcotest.failf "%s changed the function" label
  done

(* Round-trip through BLIF is a faithful deep copy. *)
let copy_network net = Blif.parse (Blif.print net)

let test_optimize_cube_extraction_preserves () =
  let net = random_pla 3 in
  let reference = copy_network net in
  let created = Optimize.extract_common_cubes net in
  Alcotest.(check bool) "extracted something" true (created > 0);
  spot_check_equiv reference net 101 "cube extraction";
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_optimize_kernel_extraction_preserves () =
  let net = random_pla 4 in
  let reference = copy_network net in
  ignore (Optimize.extract_kernels net);
  spot_check_equiv reference net 102 "kernel extraction";
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_optimize_eliminate_preserves () =
  let net = random_pla 5 in
  ignore (Optimize.extract_common_cubes net);
  let reference = copy_network net in
  ignore (Optimize.eliminate ~value_threshold:2 net);
  spot_check_equiv reference net 103 "eliminate";
  match Network.validate net with Ok () -> () | Error e -> Alcotest.fail e

let test_optimize_script_reduces_literals () =
  let net = random_pla 6 in
  let before = Network.num_literals net in
  let reference = copy_network net in
  Optimize.script_area net;
  let after = Network.num_literals net in
  Alcotest.(check bool)
    (Printf.sprintf "literals %d -> %d" before after)
    true (after < before);
  spot_check_equiv reference net 104 "script_area"

(* ------------------------- Decompose ------------------------- *)

let test_decompose_preserves_function () =
  List.iter
    (fun seed ->
      let net = random_pla seed in
      let subject = Decompose.subject_of_network net in
      let rng = Rng.create (seed * 31) in
      for _ = 1 to 16 do
        let stimulus = Network.random_vectors rng net in
        let a = Network.simulate net stimulus in
        let b = Subject.simulate subject stimulus in
        if a <> b then Alcotest.failf "decomposition changed function (seed %d)" seed
      done)
    [ 1; 2; 3; 4; 5 ]

let test_decompose_shares_products () =
  let net = Network.create ~pi_names:[| "a"; "b"; "c" |] in
  let fanins = [| Network.Pi 0; Network.Pi 1; Network.Pi 2 |] in
  let abc = Cube.of_literals [ (0, true); (1, true); (2, true) ] in
  let n0 = Network.add_node net fanins (sop [ abc ]) in
  let n1 = Network.add_node net fanins (sop [ abc; Cube.lit 0 false ]) in
  Network.set_output net "o0" (Network.Node n0);
  Network.set_output net "o1" (Network.Node n1);
  let subject = Decompose.subject_of_network net in
  Alcotest.(check bool) "structural sharing" true (Subject.num_gates subject <= 8)

let test_decompose_constants () =
  let net = Network.create ~pi_names:[| "a" |] in
  let n0 = Network.add_node net [||] Sop.one in
  let n1 = Network.add_node net [||] Sop.zero in
  Network.set_output net "one" (Network.Node n0);
  Network.set_output net "zero" (Network.Node n1);
  let subject = Decompose.subject_of_network net in
  let npis = Subject.num_pis subject in
  let stimulus = Array.make npis 0L in
  let out = Subject.simulate subject stimulus in
  Alcotest.(check int64) "const one" (-1L) out.(0);
  Alcotest.(check int64) "const zero" 0L out.(1)

let test_factored_literals_bound () =
  let net = random_pla 9 in
  Alcotest.(check bool) "factored <= flat" true
    (Decompose.factored_literals net <= Network.num_literals net)

(* ------------------------- Blif ------------------------- *)

let sample_blif =
  ".model test\n.inputs a b c\n.outputs f g\n.names a b t1\n11 1\n\
   .names t1 c f\n1- 1\n-1 1\n.names a g\n0 1\n.end\n"

let test_blif_parse () =
  let net = Blif.parse sample_blif in
  Alcotest.(check int) "pis" 3 (Array.length (Network.pi_names net));
  Alcotest.(check int) "outputs" 2 (Array.length (Network.outputs net));
  let out = Network.simulate net [| -1L; -1L; 0L |] in
  Alcotest.(check int64) "f = ab" (-1L) out.(0);
  Alcotest.(check int64) "g = a'" 0L out.(1)

let test_blif_offset_cover () =
  let net =
    Blif.parse ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
  in
  let out = Network.simulate net [| -1L; -1L |] in
  Alcotest.(check int64) "f = (ab)'" 0L out.(0);
  let out = Network.simulate net [| 0L; -1L |] in
  Alcotest.(check int64) "f = 1 elsewhere" (-1L) out.(0)

let test_blif_roundtrip () =
  let net = random_pla 10 in
  ignore (Optimize.extract_common_cubes net);
  let net2 = Blif.parse (Blif.print net) in
  spot_check_equiv net net2 105 "blif roundtrip"

let test_blif_rejects_bad_input () =
  (try
     ignore (Blif.parse ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n");
     Alcotest.fail "latch accepted"
   with Blif.Parse_error _ -> ());
  try
    ignore (Blif.parse ".model m\n.inputs a\n.outputs f\n.names b f\n1 1\n.end\n");
    Alcotest.fail "undefined signal accepted"
  with Blif.Parse_error _ -> ()

let test_blif_cycle_rejected () =
  let src =
    ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n"
  in
  try
    ignore (Blif.parse src);
    Alcotest.fail "cycle accepted"
  with Blif.Parse_error _ -> ()

let test_blif_continuation_and_comments () =
  let src =
    ".model m  # a comment\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
  in
  let net = Blif.parse src in
  Alcotest.(check int) "two pis" 2 (Array.length (Network.pi_names net))

(* ------------------------- Pla ------------------------- *)

let sample_pla = ".i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 3\n11- 10\n--1 10\n0-- 01\n.e\n"

let test_pla_parse () =
  let net = Pla.parse sample_pla in
  let out = Network.simulate net [| -1L; -1L; 0L |] in
  Alcotest.(check int64) "f" (-1L) out.(0);
  Alcotest.(check int64) "g" 0L out.(1);
  let out = Network.simulate net [| 0L; 0L; 0L |] in
  Alcotest.(check int64) "f low" 0L out.(0);
  Alcotest.(check int64) "g high" (-1L) out.(1)

let test_pla_roundtrip () =
  let net = Pla.parse sample_pla in
  let net2 = Pla.parse (Pla.print net) in
  spot_check_equiv net net2 106 "pla roundtrip"

let test_pla_errors () =
  (try
     ignore (Pla.parse ".i 2\n.o 1\n111 1\n.e\n");
     Alcotest.fail "width mismatch accepted"
   with Pla.Parse_error _ -> ());
  try
    ignore (Pla.parse "11 1\n.e\n");
    Alcotest.fail "missing .i accepted"
  with Pla.Parse_error _ -> ()

(* ------------------------- Properties ------------------------- *)

let arb_sop =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 6)
        (list_size (int_range 1 3) (pair (int_range 0 5) bool)))
    |> Gen.map (fun cubes ->
           Sop.of_cubes
             (List.filter_map
                (fun lits ->
                  let dedup =
                    List.sort_uniq (fun (a, _) (b, _) -> compare a b) lits
                  in
                  match Cube.of_literals dedup with
                  | c -> Some c
                  | exception Invalid_argument _ -> None)
                cubes))
  in
  QCheck.make ~print:Sop.to_string gen

let prop_sum_is_or =
  QCheck.Test.make ~name:"sop sum is boolean or" ~count:300
    (QCheck.pair arb_sop arb_sop) (fun (f, g) ->
      let rng = Rng.create 1 in
      let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
      Sop.eval64 (Sop.sum f g) inputs
      = Int64.logor (Sop.eval64 f inputs) (Sop.eval64 g inputs))

let prop_product_is_and =
  QCheck.Test.make ~name:"sop product is boolean and" ~count:300
    (QCheck.pair arb_sop arb_sop) (fun (f, g) ->
      let rng = Rng.create 2 in
      let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
      Sop.eval64 (Sop.product f g) inputs
      = Int64.logand (Sop.eval64 f inputs) (Sop.eval64 g inputs))

let prop_division_identity =
  QCheck.Test.make ~name:"f = q*d + r" ~count:300 (QCheck.pair arb_sop arb_sop)
    (fun (f, d) ->
      QCheck.assume (not (Sop.is_zero d));
      let q, r = Sop.divide f d in
      let rng = Rng.create 3 in
      let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
      Sop.eval64 (Sop.sum (Sop.product q d) r) inputs = Sop.eval64 f inputs)

let prop_factor_equiv =
  QCheck.Test.make ~name:"factoring preserves function" ~count:200 arb_sop (fun f ->
      let rng = Rng.create 4 in
      let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
      Factor.eval64 (Factor.factor f) inputs = Sop.eval64 f inputs)

let prop_complement =
  QCheck.Test.make ~name:"complement is negation" ~count:200 arb_sop (fun f ->
      match Sop.complement f with
      | None -> QCheck.assume_fail ()
      | Some g ->
        let rng = Rng.create 5 in
        let inputs = Array.init 6 (fun _ -> Rng.bits64 rng) in
        Sop.eval64 g inputs = Int64.lognot (Sop.eval64 f inputs))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "logic"
    [
      ( "cube",
        [
          Alcotest.test_case "literals roundtrip" `Quick test_cube_literals_roundtrip;
          Alcotest.test_case "contradiction" `Quick test_cube_contradiction;
          Alcotest.test_case "inter" `Quick test_cube_inter;
          Alcotest.test_case "covers" `Quick test_cube_covers;
          Alcotest.test_case "divide" `Quick test_cube_divide;
          Alcotest.test_case "common" `Quick test_cube_common;
          Alcotest.test_case "eval" `Quick test_cube_eval;
          Alcotest.test_case "to_string" `Quick test_cube_to_string;
        ] );
      ( "sop",
        [
          Alcotest.test_case "containment minimal" `Quick test_sop_containment_minimal;
          Alcotest.test_case "sum/product" `Quick test_sop_sum_product;
          Alcotest.test_case "product annihilation" `Quick
            test_sop_product_annihilation;
          Alcotest.test_case "cofactor" `Quick test_sop_cofactor;
          Alcotest.test_case "divide by cube" `Quick test_sop_divide_by_cube;
          Alcotest.test_case "weak division" `Quick test_sop_weak_division;
          Alcotest.test_case "division identity" `Quick test_sop_division_identity;
          Alcotest.test_case "cube free" `Quick test_sop_cube_free;
          Alcotest.test_case "complement" `Quick test_sop_complement;
          Alcotest.test_case "complement random" `Quick test_sop_complement_random;
          Alcotest.test_case "substitute" `Quick test_sop_substitute;
          Alcotest.test_case "substitute negative" `Quick
            test_sop_substitute_negative_phase;
          Alcotest.test_case "map vars" `Quick test_sop_map_vars;
          qc prop_sum_is_or;
          qc prop_product_is_and;
          qc prop_division_identity;
          qc prop_complement;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "textbook kernels" `Quick test_kernels_textbook;
          Alcotest.test_case "kernels cube-free" `Quick test_kernels_cube_free;
          Alcotest.test_case "single cube none" `Quick test_kernels_single_cube_none;
          Alcotest.test_case "level0 subset" `Quick test_level0_subset;
        ] );
      ( "factor",
        [
          Alcotest.test_case "preserves function" `Quick test_factor_preserves_function;
          Alcotest.test_case "saves literals" `Quick test_factor_saves_literals;
          Alcotest.test_case "constants" `Quick test_factor_constants;
          qc prop_factor_equiv;
        ] );
      ( "network",
        [
          Alcotest.test_case "simulate" `Quick test_network_simulate;
          Alcotest.test_case "topo/live" `Quick test_network_topo_and_live;
          Alcotest.test_case "sweep dead" `Quick test_network_sweep_removes_dead;
          Alcotest.test_case "sweep buffers" `Quick test_network_sweep_buffers;
          Alcotest.test_case "sweep constant fanin terminates" `Quick
            test_network_sweep_constant_fanin_terminates;
          Alcotest.test_case "cycle detect" `Quick test_network_cycle_detect;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "cube extraction" `Quick
            test_optimize_cube_extraction_preserves;
          Alcotest.test_case "kernel extraction" `Quick
            test_optimize_kernel_extraction_preserves;
          Alcotest.test_case "eliminate" `Quick test_optimize_eliminate_preserves;
          Alcotest.test_case "script reduces literals" `Quick
            test_optimize_script_reduces_literals;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "preserves function" `Quick
            test_decompose_preserves_function;
          Alcotest.test_case "shares products" `Quick test_decompose_shares_products;
          Alcotest.test_case "constants" `Quick test_decompose_constants;
          Alcotest.test_case "factored literal bound" `Quick
            test_factored_literals_bound;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse" `Quick test_blif_parse;
          Alcotest.test_case "offset cover" `Quick test_blif_offset_cover;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "rejects latch/undefined" `Quick
            test_blif_rejects_bad_input;
          Alcotest.test_case "rejects cycle" `Quick test_blif_cycle_rejected;
          Alcotest.test_case "continuations/comments" `Quick
            test_blif_continuation_and_comments;
        ] );
      ( "pla",
        [
          Alcotest.test_case "parse" `Quick test_pla_parse;
          Alcotest.test_case "roundtrip" `Quick test_pla_roundtrip;
          Alcotest.test_case "errors" `Quick test_pla_errors;
        ] );
    ]
