(* The batch service: protocol parsing, queue policy, and the acceptance
   drain — 8+ mixed jobs over 4 domains with one injected timeout and one
   injected failure, quarantine with reproducers, repeated-design cache
   hits visible in the metrics artifacts, and a clean shutdown. *)

module Proto = Cals_serve.Proto
module Job = Cals_serve.Job
module Queue = Cals_serve.Queue
module Scheduler = Cals_serve.Scheduler
module Check = Cals_verify.Check
module Fuzz = Cals_verify.Fuzz

(* ------------------------- helpers ------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Proto.parse_json (read_file path) with
  | Ok json -> json
  | Error e -> Alcotest.failf "%s: malformed JSON: %s" path e

let num_member name json =
  match Proto.member name json with
  | Some (Proto.Num n) -> n
  | _ -> Alcotest.failf "missing numeric field %s" name

let fresh_out =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "serve-test-out-%d" !n

let workload_spec ?(id = "") ?(checks = Check.Off) ?deadline_s ?k_schedule
    ?timing ~seed () =
  {
    Proto.id;
    input =
      Proto.Workload
        { Fuzz.seed; family = Fuzz.Pla; inputs = 6; outputs = 3; size = 12 };
    k_schedule;
    checks;
    utilization = 0.55;
    optimize = false;
    timing;
    orchestrate = None;
    deadline_s;
  }

(* ------------------------- proto ------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"id":"a","blif":"x.blif","checks":"cheap","deadline_s":2.5}|};
      {|{"preset":"spla","scale":0.05,"seed":7,"optimize":true}|};
      {|{"workload":{"family":"pla","seed":3,"inputs":6,"outputs":3,"size":12},"k_schedule":[0,0.001]}|};
    ]
  in
  List.iter
    (fun line ->
      match Proto.spec_of_string ~default_id:"d" line with
      | Error e -> Alcotest.failf "parse %s: %s" line e
      | Ok spec -> (
        let printed = Proto.print_json (Proto.spec_to_json spec) in
        match Proto.spec_of_string ~default_id:"d" printed with
        | Error e -> Alcotest.failf "re-parse %s: %s" printed e
        | Ok spec' ->
          Alcotest.(check string)
            "design key survives a round-trip" (Proto.design_key spec)
            (Proto.design_key spec');
          Alcotest.(check string) "id survives" spec.Proto.id spec'.Proto.id))
    cases

let test_json_errors () =
  let bad =
    [
      "not json";
      "{}";
      {|{"blif":"a","preset":"spla"}|};
      {|{"preset":"nope"}|};
      {|{"blif":"a","deadline_s":-1}|};
      {|{"workload":{"family":"pla"}}|};
      {|{"blif":"a"} trailing|};
    ]
  in
  List.iter
    (fun line ->
      match Proto.spec_of_string ~default_id:"d" line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed job %s" line)
    bad

let test_design_key () =
  let base = workload_spec ~seed:3 () in
  let same =
    { base with Proto.id = "other"; checks = Check.Full; deadline_s = Some 9.0 }
  in
  Alcotest.(check string)
    "id/checks/deadline do not change the circuit" (Proto.design_key base)
    (Proto.design_key same);
  let different = workload_spec ~seed:4 () in
  Alcotest.(check bool)
    "seed changes the circuit" false
    (String.equal (Proto.design_key base) (Proto.design_key different))

(* A timing-enabled job spec round-trips through the JSON proto, and the
   timing weight never leaks into the design key (timing and non-timing
   jobs share one warmed session). *)
let test_timing_proto () =
  let parse line =
    match Proto.spec_of_string ~default_id:"d" line with
    | Ok spec -> spec
    | Error e -> Alcotest.failf "parse %s: %s" line e
  in
  let wl =
    {|"workload":{"family":"pla","seed":3,"inputs":6,"outputs":3,"size":12}|}
  in
  let explicit = parse (Printf.sprintf {|{%s,"timing":12.5}|} wl) in
  Alcotest.(check (option (float 1e-9)))
    "explicit weight parsed" (Some 12.5) explicit.Proto.timing;
  let on = parse (Printf.sprintf {|{%s,"timing":true}|} wl) in
  Alcotest.(check (option (float 1e-9)))
    "timing:true means the fitted default"
    (Some Cals_core.Mapper.default_timing_weight)
    on.Proto.timing;
  let off = parse (Printf.sprintf {|{%s,"timing":false}|} wl) in
  Alcotest.(check (option (float 1e-9))) "timing:false is off" None
    off.Proto.timing;
  (* Round-trip: print then re-parse preserves the weight. *)
  let printed = Proto.print_json (Proto.spec_to_json explicit) in
  let again = parse printed in
  Alcotest.(check (option (float 1e-9)))
    "weight survives a round-trip" explicit.Proto.timing again.Proto.timing;
  Alcotest.(check string) "design key ignores the weight"
    (Proto.design_key off) (Proto.design_key explicit);
  List.iter
    (fun line ->
      match Proto.spec_of_string ~default_id:"d" line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed timing %s" line)
    [
      Printf.sprintf {|{%s,"timing":0}|} wl;
      Printf.sprintf {|{%s,"timing":-2}|} wl;
      Printf.sprintf {|{%s,"timing":"fast"}|} wl;
    ]

(* An orchestrate-enabled job spec round-trips, [true] means the default
   budget, and — unlike the timing weight — the budget IS part of the
   design key: orchestrated and plain jobs must not share a session. *)
let test_orchestrate_proto () =
  let parse line =
    match Proto.spec_of_string ~default_id:"d" line with
    | Ok spec -> spec
    | Error e -> Alcotest.failf "parse %s: %s" line e
  in
  let wl =
    {|"workload":{"family":"pla","seed":3,"inputs":6,"outputs":3,"size":12}|}
  in
  let explicit = parse (Printf.sprintf {|{%s,"orchestrate":5}|} wl) in
  Alcotest.(check (option int))
    "explicit budget parsed" (Some 5) explicit.Proto.orchestrate;
  let on = parse (Printf.sprintf {|{%s,"orchestrate":true}|} wl) in
  Alcotest.(check (option int))
    "orchestrate:true means the default budget"
    (Some Cals_logic.Orchestrate.default_budget)
    on.Proto.orchestrate;
  let off = parse (Printf.sprintf {|{%s,"orchestrate":false}|} wl) in
  Alcotest.(check (option int)) "orchestrate:false is off" None
    off.Proto.orchestrate;
  let printed = Proto.print_json (Proto.spec_to_json explicit) in
  let again = parse printed in
  Alcotest.(check (option int))
    "budget survives a round-trip" explicit.Proto.orchestrate
    again.Proto.orchestrate;
  Alcotest.(check bool)
    "design key separates orchestrated from plain jobs" false
    (String.equal (Proto.design_key off) (Proto.design_key explicit));
  List.iter
    (fun line ->
      match Proto.spec_of_string ~default_id:"d" line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed orchestrate %s" line)
    [
      Printf.sprintf {|{%s,"orchestrate":0}|} wl;
      Printf.sprintf {|{%s,"orchestrate":-3}|} wl;
      Printf.sprintf {|{%s,"orchestrate":"yes"}|} wl;
    ]

(* ------------------------- queue ------------------------- *)

let test_queue_policy () =
  let q = Queue.create ~max_attempts:2 ~backoff_s:10.0 () in
  let job = Job.create ~now:0.0 (workload_spec ~id:"q1" ~seed:3 ()) in
  Queue.push q job;
  Alcotest.(check int) "depth" 1 (Queue.depth q);
  (match Queue.take_ready q ~now:1.0 ~max:5 with
  | [ j ] -> Alcotest.(check bool) "running" true (j.Job.status = Job.Running)
  | other -> Alcotest.failf "took %d jobs" (List.length other));
  job.Job.attempts <- 1;
  (match Queue.record_fault q ~now:1.0 job (Job.Crashed "boom") with
  | `Retry -> ()
  | `Quarantine -> Alcotest.fail "first fault must retry");
  Alcotest.(check bool) "behind its gate" true
    (Queue.take_ready q ~now:1.0 ~max:5 = []);
  (match Queue.next_gate q ~now:1.0 with
  | Some wait -> Alcotest.(check bool) "gate ~10s out" true (wait > 5.0)
  | None -> Alcotest.fail "expected a backoff gate");
  (match Queue.take_ready q ~now:12.0 ~max:5 with
  | [ j ] ->
    j.Job.attempts <- 2;
    (match Queue.record_fault q ~now:12.0 j (Job.Crashed "boom") with
    | `Quarantine ->
      Alcotest.(check bool) "quarantined status" true
        (match j.Job.status with Job.Quarantined _ -> true | _ -> false)
    | `Retry -> Alcotest.fail "budget spent, must quarantine")
  | other -> Alcotest.failf "took %d jobs after the gate" (List.length other));
  Alcotest.(check int) "quarantined jobs leave the queue" 0 (Queue.depth q)

(* ------------------------- the acceptance drain ------------------------- *)

(* 9 mixed jobs over 4 domains: six repeated-design workload jobs (two
   distinct circuits), one good preset job, one injected timeout (a
   workload job with a hopeless deadline — its quarantine must carry a
   replayable reproducer) and one injected failure (a BLIF path that does
   not exist). *)
let test_drain_mixed () =
  let out = fresh_out () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.jobs = 4;
      out_dir = out;
      backoff_s = 0.005;
      max_attempts = 2;
    }
  in
  let scheduler = Scheduler.create config in
  for i = 0 to 5 do
    Scheduler.submit scheduler
      (workload_spec
         ~id:(Printf.sprintf "wl-%d" i)
         ~seed:(3 + (i mod 2))
         ~checks:Check.Cheap
         ~k_schedule:[ 0.0; 0.001 ]
         ())
  done;
  Scheduler.submit scheduler
    {
      Proto.id = "preset-ok";
      input = Proto.Preset { name = "spla"; scale = 0.02; seed = 5 };
      k_schedule = Some [ 0.0; 0.001 ];
      checks = Check.Off;
      utilization = 0.55;
      optimize = false;
      timing = None;
      orchestrate = None;
      deadline_s = None;
    };
  Scheduler.submit scheduler
    (workload_spec ~id:"too-slow" ~seed:9 ~deadline_s:1e-4 ());
  Scheduler.submit scheduler
    {
      Proto.id = "no-such-file";
      input = Proto.Blif "does-not-exist.blif";
      k_schedule = None;
      checks = Check.Off;
      utilization = 0.55;
      optimize = false;
      timing = None;
      orchestrate = None;
      deadline_s = None;
    };
  let s = Scheduler.drain scheduler () in
  Alcotest.(check int) "submitted" 9 s.Scheduler.submitted;
  Alcotest.(check int) "completed" 7 s.Scheduler.completed;
  Alcotest.(check int) "quarantined" 2 s.Scheduler.quarantined;
  Alcotest.(check int) "one retry per attempt past the first" 2
    s.Scheduler.retries;
  Alcotest.(check bool) "timeouts counted" true (s.Scheduler.timeouts >= 1);
  (* Completed jobs wrote their artifacts. *)
  List.iter
    (fun id ->
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s exists" id f)
            true
            (Sys.file_exists (Filename.concat (Filename.concat out id) f)))
        [ "job.json"; "metrics.json"; "mapped.v" ])
    [ "wl-0"; "wl-5"; "preset-ok" ];
  (* A repeated-design job served its matches from the shared session. *)
  let metrics = parse_file (Filename.concat out "wl-5/metrics.json") in
  (match Proto.member "cache" metrics with
  | Some cache ->
    Alcotest.(check bool)
      "repeated design has a positive cache hit rate" true
      (num_member "hit_rate" cache > 0.0)
  | None -> Alcotest.fail "metrics.json has no cache object");
  (* The timed-out workload job quarantined with a replayable reproducer. *)
  let qdir = Filename.concat out "quarantine" in
  Alcotest.(check bool) "timeout quarantined" true
    (Sys.file_exists (Filename.concat qdir "too-slow/failure.txt"));
  let repro = Filename.concat qdir "too-slow/reproducer.txt" in
  Alcotest.(check bool) "reproducer written" true (Sys.file_exists repro);
  let params = Fuzz.read_reproducer repro in
  Alcotest.(check int) "reproducer replays the job's circuit" 9
    params.Fuzz.seed;
  (* The bad BLIF quarantined with a respoolable job spec. *)
  let bad_spec = parse_file (Filename.concat qdir "no-such-file/job.json") in
  (match Proto.spec_of_json ~default_id:"" bad_spec with
  | Ok spec -> Alcotest.(check string) "respoolable" "no-such-file" spec.Proto.id
  | Error e -> Alcotest.failf "quarantined job.json does not re-parse: %s" e);
  (* summary.json agrees with the returned summary. *)
  let summary = parse_file (Filename.concat out "summary.json") in
  Alcotest.(check int) "summary.json completed" 7
    (int_of_float (num_member "completed" summary))

(* An undegraded timing job ships the post-route critical path in its
   artifact metrics; a twin without timing carries no timing fields at
   all (and both ride the same warmed design session). *)
let test_timing_metrics () =
  let out = fresh_out () in
  let config =
    { Scheduler.default_config with Scheduler.jobs = 1; out_dir = out }
  in
  let scheduler = Scheduler.create config in
  Scheduler.submit scheduler
    (workload_spec ~id:"plain" ~seed:3 ~k_schedule:[ 0.0; 0.001 ] ());
  Scheduler.submit scheduler
    (workload_spec ~id:"timed" ~seed:3 ~timing:50.0
       ~k_schedule:[ 0.0; 0.001 ] ());
  let s = Scheduler.drain scheduler () in
  Alcotest.(check int) "both complete" 2 s.Scheduler.completed;
  let plain = parse_file (Filename.concat out "plain/metrics.json") in
  Alcotest.(check bool) "no timing fields without the request" true
    (Proto.member "timing" plain = None);
  let timed = parse_file (Filename.concat out "timed/metrics.json") in
  (match Proto.member "timing" timed with
  | Some timing ->
    Alcotest.(check (float 1e-9)) "weight recorded" 50.0
      (num_member "t" timing);
    let ns = num_member "critical_path_ns" timing in
    Alcotest.(check bool) "critical path is a real positive delay" true
      (ns > 0.0 && Float.is_finite ns);
    Alcotest.(check (float 1e-6)) "ps is ns scaled" (1000.0 *. ns)
      (num_member "critical_path_ps" timing)
  | None -> Alcotest.fail "timing job's metrics.json has no timing object");
  (* The spec in the artifact round-trips with the weight intact. *)
  let job = parse_file (Filename.concat out "timed/job.json") in
  match Proto.spec_of_json ~default_id:"" job with
  | Ok spec ->
    Alcotest.(check (option (float 1e-9)))
      "job.json keeps the weight" (Some 50.0) spec.Proto.timing
  | Error e -> Alcotest.failf "job.json does not re-parse: %s" e

(* Overload: with watermarks at 1/2 every round of this 4-job batch runs
   at level 2 — checks shed to off, K schedule capped. *)
let test_degradation () =
  let out = fresh_out () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.jobs = 2;
      out_dir = out;
      high_watermark = 1;
      overload_watermark = 2;
      degraded_k_points = 2;
    }
  in
  let scheduler = Scheduler.create config in
  for i = 0 to 3 do
    Scheduler.submit scheduler
      (workload_spec
         ~id:(Printf.sprintf "hot-%d" i)
         ~seed:3 ~checks:Check.Full ~timing:50.0
         ~k_schedule:[ 0.0; 0.001; 0.01; 0.1 ]
         ())
  done;
  let s = Scheduler.drain scheduler () in
  Alcotest.(check int) "all complete despite overload" 4
    s.Scheduler.completed;
  let metrics = parse_file (Filename.concat out "hot-0/metrics.json") in
  let degradation =
    match Proto.member "degradation" metrics with
    | Some d -> d
    | None -> Alcotest.fail "metrics.json has no degradation object"
  in
  Alcotest.(check int) "overload level recorded" 2
    (int_of_float (num_member "level" degradation));
  Alcotest.(check bool) "checks shed" true
    (Proto.member "checks_shed" degradation = Some (Proto.Bool true));
  Alcotest.(check bool) "schedule capped" true
    (Proto.member "k_capped" degradation = Some (Proto.Bool true));
  (* The overloaded rung sheds the STA: a timing request leaves the
     timing fields absent rather than stale. *)
  Alcotest.(check bool) "degraded run carries no timing fields" true
    (Proto.member "timing" metrics = None)

(* Past the triage watermark the ladder's deepest rung answers from the
   congestion forecast alone: jobs still complete, and their artifacts
   say the result is estimated, not routed. *)
let test_triage () =
  let out = fresh_out () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.jobs = 2;
      out_dir = out;
      high_watermark = 1;
      overload_watermark = 1;
      triage_watermark = 1;
    }
  in
  let scheduler = Scheduler.create config in
  for i = 0 to 3 do
    Scheduler.submit scheduler
      (workload_spec
         ~id:(Printf.sprintf "triage-%d" i)
         ~seed:3 ~timing:50.0
         ~k_schedule:[ 0.0; 0.001 ]
         ())
  done;
  let s = Scheduler.drain scheduler () in
  Alcotest.(check int) "all complete under triage" 4 s.Scheduler.completed;
  let metrics = parse_file (Filename.concat out "triage-0/metrics.json") in
  let degradation =
    match Proto.member "degradation" metrics with
    | Some d -> d
    | None -> Alcotest.fail "metrics.json has no degradation object"
  in
  Alcotest.(check int) "deepest rung recorded" 3
    (int_of_float (num_member "level" degradation));
  Alcotest.(check bool) "triage flagged" true
    (Proto.member "triage" degradation = Some (Proto.Bool true));
  Alcotest.(check bool) "result marked estimated" true
    (Proto.member "estimated" metrics = Some (Proto.Bool true));
  (* Triage still accepts this comfortably-routable workload — on the
     forecast, with zero predicted violations. *)
  Alcotest.(check bool) "accepted on the forecast" true
    (match Proto.member "accepted_k" metrics with
    | Some (Proto.Num _) -> true
    | _ -> false);
  Alcotest.(check bool) "forecast predicts a clean map" true
    (Proto.member "violations" metrics = Some (Proto.Num 0.0));
  (* No route ran, so there is no critical path to report: the timing
     request must leave the fields absent, never fabricate them. *)
  Alcotest.(check bool) "triaged run carries no timing fields" true
    (Proto.member "timing" metrics = None)

(* Restart warmth: drain a batch with a --cache-dir, then drain the same
   batch on a brand-new scheduler pointed at the same directory. The
   second run must warm every tree from disk (store_preloaded in the
   artifact metrics, mapper_cache_hit advancing globally with zero
   misses) and produce bit-identical artifacts. *)
let test_restart_warmth () =
  Cals_telemetry.Probe.enable ();
  let cache_dir = fresh_out () ^ "-cache" in
  let spec id = workload_spec ~id ~seed:3 ~k_schedule:[ 0.0; 0.001 ] () in
  let run out =
    let config =
      {
        Scheduler.default_config with
        Scheduler.jobs = 1;
        out_dir = out;
        cache_dir = Some cache_dir;
      }
    in
    let scheduler = Scheduler.create config in
    Scheduler.submit scheduler (spec "warm-1");
    Scheduler.submit scheduler (spec "warm-2");
    Scheduler.drain scheduler ()
  in
  let counter name =
    let s = Cals_telemetry.Metrics.snapshot () in
    match
      List.find_opt
        (fun c -> c.Cals_telemetry.Metrics.c_name = name)
        s.Cals_telemetry.Metrics.counters
    with
    | Some c -> c.Cals_telemetry.Metrics.c_value
    | None -> 0
  in
  let out1 = fresh_out () in
  let s1 = run out1 in
  Alcotest.(check int) "first run completes" 2 s1.Scheduler.completed;
  Alcotest.(check bool) "first run wrote the store" true
    (Array.length (Sys.readdir cache_dir) > 0);
  let cold = parse_file (Filename.concat out1 "warm-1/metrics.json") in
  (match Proto.member "cache" cold with
  | Some c ->
    Alcotest.(check (float 0.0)) "cold start preloads nothing" 0.0
      (num_member "store_preloaded" c)
  | None -> Alcotest.fail "metrics.json has no cache object");
  (* "Restart": a brand-new scheduler process-equivalent, same cache. *)
  let hits0 = counter "mapper_cache_hit" in
  let misses0 = counter "mapper_cache_miss" in
  let out2 = fresh_out () in
  let s2 = run out2 in
  Alcotest.(check int) "second run completes" 2 s2.Scheduler.completed;
  Alcotest.(check bool) "mapper_cache_hit advanced on the warm run" true
    (counter "mapper_cache_hit" > hits0);
  Alcotest.(check int) "the warm run never misses" misses0
    (counter "mapper_cache_miss");
  let warm = parse_file (Filename.concat out2 "warm-1/metrics.json") in
  (match Proto.member "cache" warm with
  | Some c ->
    Alcotest.(check bool) "every tree preloaded from disk" true
      (num_member "store_preloaded" c > 0.0);
    Alcotest.(check (float 0.0)) "no in-run misses" 0.0 (num_member "misses" c);
    Alcotest.(check bool) "positive hit rate" true
      (num_member "hit_rate" c > 0.0)
  | None -> Alcotest.fail "warm metrics.json has no cache object");
  List.iter
    (fun id ->
      Alcotest.(check string)
        (id ^ ": restart artifacts bit-identical")
        (read_file (Filename.concat out1 (id ^ "/mapped.v")))
        (read_file (Filename.concat out2 (id ^ "/mapped.v"))))
    [ "warm-1"; "warm-2" ]

(* ROADMAP item 5 residual: the undegraded scheduler rung rides
   Flow.run_adaptive. Against a linear-drain twin (adaptive off) the
   accepted K and the netlist must be identical, and the adaptive run
   must pay at most as many real routes. *)
let test_adaptive_ladder () =
  let spec id =
    workload_spec ~id ~seed:3
      ~k_schedule:[ 0.0; 0.0002; 0.0005; 0.001; 0.005; 0.01; 0.05 ]
      ()
  in
  let run ~adaptive id =
    let out = fresh_out () in
    let config =
      {
        Scheduler.default_config with
        Scheduler.jobs = 1;
        out_dir = out;
        adaptive;
      }
    in
    let scheduler = Scheduler.create config in
    Scheduler.submit scheduler (spec id);
    let s = Scheduler.drain scheduler () in
    Alcotest.(check int) "job completes" 1 s.Scheduler.completed;
    (parse_file (Filename.concat out (id ^ "/metrics.json")),
     read_file (Filename.concat out (id ^ "/mapped.v")))
  in
  let adaptive, adaptive_v = run ~adaptive:true "adap" in
  let linear, linear_v = run ~adaptive:false "lin" in
  Alcotest.(check string) "identical netlist" linear_v adaptive_v;
  Alcotest.(check (float 1e-12)) "identical accepted K"
    (num_member "accepted_k" linear)
    (num_member "accepted_k" adaptive);
  let routes_lin = num_member "real_routes" linear in
  let routes_adap = num_member "real_routes" adaptive in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive pays at most the linear routes (%g <= %g)"
       routes_adap routes_lin)
    true
    (routes_adap <= routes_lin);
  (* The adaptive run says how it searched. *)
  match Proto.member "adaptive" adaptive with
  | Some a ->
    Alcotest.(check bool) "forecast evaluations recorded" true
      (num_member "forecast_evals" a >= 0.0)
  | None -> Alcotest.fail "adaptive metrics.json has no adaptive object"

(* A malformed spool line is rejected, recorded, and does not poison the
   rest of the batch. *)
let test_spool_and_parse_errors () =
  let out = fresh_out () in
  let spool = out ^ "-spool" in
  (try Unix.mkdir spool 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat spool "batch.json") in
  output_string oc
    ("# a comment line\n"
   ^ {|{"workload":{"family":"pla","seed":3,"inputs":6,"outputs":3,"size":12},"k_schedule":[0]}|}
   ^ "\nthis is not json\n");
  close_out oc;
  let config =
    { Scheduler.default_config with Scheduler.out_dir = out }
  in
  let scheduler = Scheduler.create config in
  let s = Scheduler.drain scheduler ~spool () in
  Alcotest.(check int) "one job admitted" 1 s.Scheduler.submitted;
  Alcotest.(check int) "it completed" 1 s.Scheduler.completed;
  Alcotest.(check int) "one parse error" 1 s.Scheduler.parse_errors;
  Alcotest.(check bool) "spool file consumed" false
    (Sys.file_exists (Filename.concat spool "batch.json"));
  Alcotest.(check bool) "parse error recorded" true
    (Sys.file_exists
       (Filename.concat out "quarantine/batch.json/parse-001.txt"))

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "design-key" `Quick test_design_key;
          Alcotest.test_case "timing" `Quick test_timing_proto;
          Alcotest.test_case "orchestrate" `Quick test_orchestrate_proto;
        ] );
      ("queue", [ Alcotest.test_case "policy" `Quick test_queue_policy ]);
      ( "scheduler",
        [
          Alcotest.test_case "drain-mixed" `Quick test_drain_mixed;
          Alcotest.test_case "timing-metrics" `Quick test_timing_metrics;
          Alcotest.test_case "degradation" `Quick test_degradation;
          Alcotest.test_case "triage" `Quick test_triage;
          Alcotest.test_case "restart-warmth" `Quick test_restart_warmth;
          Alcotest.test_case "adaptive-ladder" `Quick test_adaptive_ladder;
          Alcotest.test_case "spool" `Quick test_spool_and_parse_errors;
        ] );
    ]
