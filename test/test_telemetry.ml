(* Tests for the cals_telemetry subsystem: span nesting, per-domain ring
   merging under the worker pool, and the three exporters. The trace JSON
   round-trip uses a small recursive-descent parser (no JSON dependency in
   the tree). *)

module Probe = Cals_telemetry.Probe
module Ring = Cals_telemetry.Ring
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics
module Export = Cals_telemetry.Export
module Pool = Cals_util.Pool

(* Every test owns the global switch and buffers. *)
let fresh () =
  Probe.disable ();
  Ring.clear ();
  Probe.enable ()

let done_ () =
  Probe.disable ();
  Ring.clear ()

(* ------------------------- mini JSON ------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Json_error of string

let json_parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          (* Keep the escape verbatim; the exporter only emits \u for
             control characters, which the tests do not round-trip. *)
          Buffer.add_string buf "\\u"
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Json_error ("missing key " ^ key)))
  | _ -> raise (Json_error "not an object")

let to_list = function
  | Arr l -> l
  | _ -> raise (Json_error "not an array")

let to_string = function
  | Str s -> s
  | _ -> raise (Json_error "not a string")

let to_float = function
  | Num f -> f
  | _ -> raise (Json_error "not a number")

(* ------------------------- span basics ------------------------- *)

let test_span_records_nesting () =
  fresh ();
  Span.with_ ~cat:"t" "outer" (fun () ->
      Span.with_ ~cat:"t" ~meta:"detail" "inner" (fun () -> ());
      Span.with_ ~cat:"t" "inner2" (fun () -> ()));
  let events = Ring.collect () in
  Alcotest.(check int) "three spans" 3 (List.length events);
  let by_name name = List.find (fun e -> e.Ring.name = name) events in
  let outer = by_name "outer" and inner = by_name "inner" in
  Alcotest.(check string) "meta kept" "detail" inner.Ring.meta;
  Alcotest.(check bool) "inner starts inside outer" true
    (inner.Ring.ts_us >= outer.Ring.ts_us);
  Alcotest.(check bool) "inner ends inside outer" true
    (inner.Ring.ts_us +. inner.Ring.dur_us
    <= outer.Ring.ts_us +. outer.Ring.dur_us);
  done_ ()

let test_span_disabled_is_noop () =
  Probe.disable ();
  Ring.clear ();
  Span.with_ "ghost" (fun () -> ());
  let t = Span.enter "ghost2" in
  Span.exit t;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Ring.collect ()));
  done_ ()

let test_span_exception_safe () =
  fresh ();
  (try
     Span.with_ "outer" (fun () ->
         Span.with_ "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let names = List.map (fun e -> e.Ring.name) (Ring.collect ()) in
  Alcotest.(check (list string)) "both closed" [ "inner"; "outer" ]
    (List.sort compare names);
  done_ ()

let test_span_abandoned_frames_dropped () =
  fresh ();
  (* Exit an outer token while an inner span is still open: the inner
     frame must be discarded, not misattributed. *)
  let outer = Span.enter "outer" in
  let _inner = Span.enter "inner" in
  Span.exit outer;
  let names = List.map (fun e -> e.Ring.name) (Ring.collect ()) in
  Alcotest.(check (list string)) "only outer" [ "outer" ] names;
  done_ ()

(* qcheck: arbitrary push/pop sequences produce exactly one event per
   entered span, and same-domain events never strictly partially overlap
   (they are either disjoint or properly nested). *)
let span_nesting_property =
  QCheck.Test.make ~count:100 ~name:"span intervals nest"
    QCheck.(list bool)
    (fun ops ->
      fresh ();
      let stack = ref [] in
      let entered = ref 0 in
      List.iter
        (fun push ->
          if push then begin
            stack := Span.enter (Printf.sprintf "s%d" !entered) :: !stack;
            incr entered
          end
          else
            match !stack with
            | [] -> ()
            | t :: rest ->
              Span.exit t;
              stack := rest)
        ops;
      List.iter Span.exit !stack;
      let events = Array.of_list (Ring.collect ()) in
      let ok = ref (Array.length events = !entered) in
      Array.iter
        (fun (a : Ring.event) ->
          Array.iter
            (fun (b : Ring.event) ->
              (* Strict partial overlap: b starts strictly inside a yet
                 ends after it. Equal start times always nest (one span
                 contains the other whichever is longer), so skip ties. *)
              if a.Ring.tid = b.Ring.tid && a.Ring.ts_us < b.Ring.ts_us then begin
                let a_end = a.Ring.ts_us +. a.Ring.dur_us in
                let b_end = b.Ring.ts_us +. b.Ring.dur_us in
                if b.Ring.ts_us < a_end && b_end > a_end +. 1.0 then ok := false
              end)
            events)
        events;
      done_ ();
      !ok)

(* ------------------------- pool merging ------------------------- *)

let test_pool_spans_merge () =
  fresh ();
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let items = Array.init 40 (fun i -> i) in
  let _ =
    Pool.map_array pool
      ~f:(fun _ i ->
        Span.with_ ~cat:"pool" ~meta:(string_of_int i) "pool.item" (fun () ->
            i * i))
      items
  in
  let events =
    List.filter (fun e -> e.Ring.name = "pool.item") (Ring.collect ())
  in
  Alcotest.(check int) "one span per item" 40 (List.length events);
  let metas = List.map (fun e -> e.Ring.meta) events in
  let expected = Array.to_list (Array.init 40 string_of_int) in
  Alcotest.(check (list string)) "every item covered" (List.sort compare expected)
    (List.sort compare metas);
  (* collect is a deterministic merge: same result on a second call. *)
  let again =
    List.filter (fun e -> e.Ring.name = "pool.item") (Ring.collect ())
  in
  Alcotest.(check bool) "deterministic merge" true (events = again);
  (* Merged order is sorted by (ts, tid, seq). *)
  let all = Ring.collect () in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.Ring.ts_us, a.Ring.tid, a.Ring.seq)
          (b.Ring.ts_us, b.Ring.tid, b.Ring.seq))
      all
  in
  Alcotest.(check bool) "collect pre-sorted" true (all = sorted);
  done_ ()

(* ------------------------- exporters ------------------------- *)

let test_chrome_trace_round_trip () =
  fresh ();
  Span.with_ ~cat:"flow" ~meta:"K=0.001 \"quoted\" back\\slash" "a" (fun () ->
      Span.with_ ~cat:"map" "b" (fun () ->
          Span.with_ ~cat:"map" "c" (fun () -> ()));
      Span.with_ ~cat:"route" "d" (fun () -> ()));
  let events = Ring.collect () in
  let doc = json_parse (Export.chrome_trace ()) in
  let trace = to_list (member "traceEvents" doc) in
  Alcotest.(check int) "all events exported" (List.length events)
    (List.length trace);
  Alcotest.(check (float 0.0)) "none dropped" 0.0
    (to_float (member "droppedEvents" doc));
  let find name =
    List.find (fun e -> to_string (member "name" e) = name) trace
  in
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X" (to_string (member "ph" e));
      ignore (to_float (member "ts" e));
      ignore (to_float (member "dur" e));
      ignore (to_float (member "tid" e)))
    trace;
  let meta =
    to_string (member "detail" (member "args" (find "a")))
  in
  Alcotest.(check string) "meta escaping round-trips"
    "K=0.001 \"quoted\" back\\slash" meta;
  (* Nesting survives export: [b] lies within [a], [c] within [b]. *)
  let interval name =
    let e = find name in
    let ts = to_float (member "ts" e) in
    (ts, ts +. to_float (member "dur" e))
  in
  let inside (lo1, hi1) (lo2, hi2) = lo1 >= lo2 && hi1 <= hi2 in
  Alcotest.(check bool) "b in a" true (inside (interval "b") (interval "a"));
  Alcotest.(check bool) "c in b" true (inside (interval "c") (interval "b"));
  Alcotest.(check bool) "d in a" true (inside (interval "d") (interval "a"));
  done_ ()

let test_prometheus_format () =
  fresh ();
  let c = Metrics.counter ~help:"test counter" "telemetry_test_hits" in
  let g = Metrics.gauge ~help:"test gauge" "telemetry_test_level" in
  let h =
    Metrics.histogram ~help:"test histogram" ~buckets:[| 1.0; 10.0 |]
      "telemetry_test_sizes"
  in
  Metrics.add c 3;
  Metrics.set g 2.5;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Metrics.observe h 50.0;
  let text = Export.prometheus () in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true
    (contains "cals_telemetry_test_hits_total 3");
  Alcotest.(check bool) "gauge line" true (contains "cals_telemetry_test_level 2.5");
  Alcotest.(check bool) "bucket le=1" true
    (contains "cals_telemetry_test_sizes_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "bucket le=+Inf" true
    (contains "cals_telemetry_test_sizes_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true
    (contains "cals_telemetry_test_sizes_count 3");
  done_ ()

let test_metrics_disabled_and_reset () =
  Probe.disable ();
  let c = Metrics.counter "telemetry_test_idle" in
  Metrics.incr c;
  let value () =
    let snap = Metrics.snapshot () in
    (List.find
       (fun v -> v.Metrics.c_name = "telemetry_test_idle")
       snap.Metrics.counters)
      .Metrics.c_value
  in
  Alcotest.(check int) "disabled increment ignored" 0 (value ());
  Probe.enable ();
  Metrics.incr c;
  Metrics.incr c;
  Alcotest.(check int) "enabled increments count" 2 (value ());
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (value ());
  done_ ()

let test_summary_lists_stages () =
  fresh ();
  Span.with_ ~cat:"map" "stage.alpha" (fun () -> ());
  Span.with_ ~cat:"map" "stage.alpha" (fun () -> ());
  Span.with_ ~cat:"route" "stage.beta" (fun () -> ());
  let stats = Export.span_stats () in
  Alcotest.(check int) "two stages" 2 (List.length stats);
  let alpha = List.find (fun s -> s.Export.s_name = "stage.alpha") stats in
  Alcotest.(check int) "alpha count" 2 alpha.Export.s_count;
  let text = Export.summary () in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary names alpha" true (contains "stage.alpha");
  Alcotest.(check bool) "summary names beta" true (contains "stage.beta");
  done_ ()

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "telemetry"
    [
      ( "span",
        [
          Alcotest.test_case "records nesting" `Quick test_span_records_nesting;
          Alcotest.test_case "disabled is no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "abandoned frames dropped" `Quick
            test_span_abandoned_frames_dropped;
          qc span_nesting_property;
        ] );
      ( "ring",
        [ Alcotest.test_case "pool merge" `Quick test_pool_spans_merge ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace round-trip" `Quick
            test_chrome_trace_round_trip;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "disabled/reset metrics" `Quick
            test_metrics_disabled_and_reset;
          Alcotest.test_case "summary lists stages" `Quick
            test_summary_lists_stages;
        ] );
    ]
