(* lib/estimate: the millisecond congestion forecast. The golden-corpus
   differential pins a minimum rank correlation between the estimated
   and the routed per-gcell utilization maps at every K; qcheck
   properties pin monotonicity under added demand and the pruning
   soundness contract (a pruned sweep's accepted K is bit-identical to
   an unpruned one over the full default schedule); degenerate inputs
   must answer Uncertain instead of raising. *)

module Estimate = Cals_estimate.Estimate
module Flow = Cals_core.Flow
module Congestion = Cals_route.Congestion
module Router = Cals_route.Router
module Rgrid = Cals_route.Rgrid
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Library = Cals_cell.Library
module Grid2d = Cals_util.Grid2d
module Geom = Cals_util.Geom
module Gen = Cals_workload.Gen
module Rng = Cals_util.Rng

let lib = Cals_cell.Stdlib_018.library
let geometry = Library.geometry lib
let wire = Library.wire lib

let golden_dir =
  Option.value (Sys.getenv_opt "CALS_GOLDEN_DIR") ~default:"golden"

let subject_of net =
  Cals_logic.Network.sweep net;
  Cals_logic.Decompose.subject_of_network net

(* The golden suite's floorplan recipe, so the differential here scores
   exactly the placements test_golden.ml snapshots. *)
let workload_of ?(utilization = 0.45) subject =
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create 42)
  in
  (floorplan, positions)

(* ------------------------- rank correlation ------------------------- *)

let flatten g =
  let cols = Grid2d.cols g and rows = Grid2d.rows g in
  Array.init (cols * rows) (fun i -> Grid2d.get g (i mod cols) (i / cols))

(* Spearman rank correlation with average ranks for ties. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman a b =
  let ra = ranks a and rb = ranks b in
  let n = float_of_int (Array.length a) in
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. n in
  let ma = mean ra and mb = mean rb in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun i _ ->
      let x = ra.(i) -. ma and y = rb.(i) -. mb in
      num := !num +. (x *. y);
      da := !da +. (x *. x);
      db := !db +. (y *. y))
    ra;
  if !da = 0.0 || !db = 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let golden_designs =
  [
    "pla_shared_08"; "pla_wide_10"; "ml_control_10"; "ml_deep_08";
    "pla_small_06";
  ]

let golden_k_points = [ 0.0; 0.0005; 0.001; 0.005; 0.01; 0.1 ]

(* Measured floor: the worst design-K pair of the corpus sits at 0.49
   (ml_control_10, K=0); most pairs score 0.75-0.96. Any estimator
   change that drags a pair under 0.4 has stopped ranking hotspots the
   way the router experiences them. *)
let min_rho = 0.4

let test_golden_rank_correlation () =
  List.iter
    (fun name ->
      let subject =
        subject_of
          (Cals_logic.Blif.read_file
             (Filename.concat golden_dir (name ^ ".blif")))
      in
      let floorplan, positions = workload_of subject in
      List.iter
        (fun k ->
          let _it, (mapped, placement, routing) =
            Flow.evaluate_k ~estimate:Estimate.Off ~subject ~library:lib
              ~floorplan ~positions ~k ()
          in
          match (placement, routing) with
          | Some placement, Some routing ->
            let f =
              Estimate.forecast_mapped mapped ~floorplan ~wire ~placement
            in
            let rho =
              spearman
                (flatten f.Estimate.maps.Estimate.utilization)
                (flatten (Congestion.gcell_map routing))
            in
            if rho < min_rho then
              Alcotest.failf
                "%s K=%g: estimated/routed utilization rank correlation \
                 %.3f below the %.2f floor"
                name k rho min_rho;
            (* The whole corpus routes with zero violations, and the
               calibration must say so confidently. *)
            if f.Estimate.verdict <> Estimate.Routable then
              Alcotest.failf "%s K=%g: golden corpus verdict %s, not routable"
                name k
                (Estimate.verdict_to_string f.Estimate.verdict)
          | _ -> Alcotest.failf "%s K=%g did not route" name k)
        golden_k_points)
    golden_designs

(* ------------------------- pruning ------------------------- *)

(* Two metal layers halve the supply, so this PLA at 0.85 utilization is
   confidently over capacity at K >= 0.01 — the pruner must actually
   skip there, and the sweep's QoR must not move. *)
let congested_config =
  { Router.default_config with Router.layers = 2 }

let congested_subject () =
  subject_of (Gen.pla ~rng:(Rng.create 301) ~inputs:8 ~outputs:6 ~products:40 ())

let same_iteration (a : Flow.iteration) (b : Flow.iteration) =
  a.Flow.k = b.Flow.k && a.Flow.cells = b.Flow.cells
  && a.Flow.cell_area = b.Flow.cell_area
  && a.Flow.hpwl_um = b.Flow.hpwl_um

let test_prune_skips_and_preserves_qor () =
  let subject = congested_subject () in
  let floorplan, _ = workload_of ~utilization:0.85 subject in
  let k_schedule = [ 0.0; 0.01; 0.1 ] in
  let run estimate =
    Flow.run ~k_schedule ~router_config:congested_config ~estimate ~subject
      ~library:lib ~floorplan ~rng:(Rng.create 7) ()
  in
  let off = run Estimate.Off and pruned = run Estimate.Prune in
  let skipped =
    List.filter (fun it -> it.Flow.estimated) pruned.Flow.iterations
  in
  Alcotest.(check bool)
    "the pruner skipped at least one negotiated route" true
    (skipped <> []);
  Alcotest.(check bool)
    "an unpruned sweep routes everything" true
    (List.for_all
       (fun it -> not it.Flow.estimated)
       off.Flow.iterations);
  (* Skipped points always carry violations, so none of them can be the
     accepted one. *)
  List.iter
    (fun it ->
      Alcotest.(check bool)
        "a skipped point carries violations" true
        (it.Flow.report.Congestion.violations > 0))
    skipped;
  Alcotest.(check int) "same schedule walked"
    (List.length off.Flow.iterations)
    (List.length pruned.Flow.iterations);
  List.iter2
    (fun o p ->
      Alcotest.(check bool)
        (Printf.sprintf "K=%g netlist metrics identical" o.Flow.k)
        true (same_iteration o p))
    off.Flow.iterations pruned.Flow.iterations;
  match (off.Flow.accepted, pruned.Flow.accepted) with
  | None, None -> ()
  | Some o, Some p ->
    Alcotest.(check bool) "accepted iteration identical" true
      (same_iteration o p && o.Flow.report = p.Flow.report);
    Alcotest.(check bool) "accepted point was really routed" true
      (not p.Flow.estimated)
  | _ -> Alcotest.fail "pruning moved the accepted K"

(* The soundness contract over the paper's full 14-point ladder, on
   random workloads spanning comfortably-routable and over-capacity
   floorplans: the pruned sweep's accepted iteration — and the schedule
   prefix it walked — must be bit-identical to the unpruned sweep's. *)
let prop_pruned_accepted_identical =
  QCheck.Test.make ~count:6
    ~name:"pruned sweep == unpruned sweep on the full default schedule"
    QCheck.(
      triple (int_range 0 10_000) (int_range 0 2) (int_range 0 1))
    (fun (seed, crowd, fam) ->
      let family = if fam = 0 then `Pla else `Multilevel in
      let subject =
        subject_of (Gen.of_fuzz ~family ~seed ~inputs:6 ~outputs:3 ~size:14)
      in
      let utilization = [| 0.45; 0.65; 0.85 |].(crowd) in
      let layers = if crowd = 2 then 2 else 3 in
      let router_config = { Router.default_config with Router.layers } in
      let floorplan, _ = workload_of ~utilization subject in
      let run estimate =
        Flow.run ~router_config ~estimate ~subject ~library:lib ~floorplan
          ~rng:(Rng.create (seed + 1)) ()
      in
      let off = run Estimate.Off and pruned = run Estimate.Prune in
      if List.length off.Flow.iterations <> List.length pruned.Flow.iterations
      then
        QCheck.Test.fail_reportf
          "seed %d: pruned sweep walked %d points, unpruned %d" seed
          (List.length pruned.Flow.iterations)
          (List.length off.Flow.iterations);
      (match (off.Flow.accepted, pruned.Flow.accepted) with
      | None, None -> ()
      | Some o, Some p ->
        if not (same_iteration o p && o.Flow.report = p.Flow.report) then
          QCheck.Test.fail_reportf
            "seed %d: accepted K moved (unpruned %g, pruned %g)" seed o.Flow.k
            p.Flow.k;
        if p.Flow.estimated then
          QCheck.Test.fail_reportf
            "seed %d: accepted iteration was not really routed" seed
      | o, p ->
        QCheck.Test.fail_reportf "seed %d: acceptance differs (%s vs %s)" seed
          (match o with Some _ -> "accepted" | None -> "rejected")
          (match p with Some _ -> "accepted" | None -> "rejected"));
      true)

(* A Routable forecast only ever seeds the adaptive bisection — it must
   never stand in for the confirming route. On the congested fixture
   swept across utilizations that straddle the calibration threshold,
   whatever K the adaptive search accepts must come from a real route
   with zero violations, re-confirmed by an independent estimator-off
   run restricted to that K alone. *)
let test_routable_seed_never_accepts_violations () =
  let subject = congested_subject () in
  List.iter
    (fun utilization ->
      let floorplan, _ = workload_of ~utilization subject in
      let outcome, stats =
        Flow.run_adaptive ~router_config:congested_config ~subject
          ~library:lib ~floorplan ~rng:(Rng.create 9) ()
      in
      match outcome.Flow.accepted with
      | None -> ()
      | Some it ->
        Alcotest.(check bool)
          (Printf.sprintf "util %.2f: accepted K=%g came from a real route"
             utilization it.Flow.k)
          true (not it.Flow.estimated);
        Alcotest.(check int)
          (Printf.sprintf "util %.2f: accepted K=%g routes clean" utilization
             it.Flow.k)
          0 it.Flow.report.Congestion.violations;
        Alcotest.(check bool) "at least one confirming route was paid" true
          (stats.Flow.real_routes >= 1);
        let confirm =
          Flow.run ~k_schedule:[ it.Flow.k ] ~router_config:congested_config
            ~estimate:Estimate.Off ~subject ~library:lib ~floorplan
            ~rng:(Rng.create 9) ()
        in
        (match confirm.Flow.accepted with
        | Some c ->
          Alcotest.(check bool)
            (Printf.sprintf "util %.2f: independent route at K=%g agrees"
               utilization it.Flow.k)
            true
            (same_iteration it c
            && it.Flow.report = c.Flow.report
            && not c.Flow.estimated)
        | None ->
          Alcotest.failf
            "util %.2f: accepted K=%g fails an independent real route"
            utilization it.Flow.k))
    [ 0.45; 0.65; 0.75; 0.85 ]

(* ------------------------- monotonicity ------------------------- *)

let arb_nets floorplan =
  let die_w = floorplan.Floorplan.die_width
  and die_h = floorplan.Floorplan.die_height in
  let open QCheck in
  let point =
    map
      (fun (fx, fy) -> { Geom.x = fx *. die_w; y = fy *. die_h })
      (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
  in
  let net = list_of_size Gen.(2 -- 5) point in
  list_of_size Gen.(0 -- 20) net

(* More nets can only add demand: both the overflow score and the total
   wire density are monotone under net insertion. *)
let prop_estimate_monotone =
  let floorplan = Floorplan.of_rows ~num_rows:12 ~sites_per_row:60 ~geometry in
  QCheck.Test.make ~count:100
    ~name:"forecast demand is monotone under added nets"
    QCheck.(pair (arb_nets floorplan) (arb_nets floorplan))
    (fun (base, extra) ->
      let forecast nets =
        Estimate.forecast_pins ~floorplan ~wire (Array.of_list nets)
      in
      let f0 = forecast base and f1 = forecast (base @ extra) in
      if f1.Estimate.overflow_score < f0.Estimate.overflow_score then
        QCheck.Test.fail_reportf "overflow score shrank: %g -> %g"
          f0.Estimate.overflow_score f1.Estimate.overflow_score;
      let demand f = Grid2d.total f.Estimate.maps.Estimate.wire_density in
      if demand f1 < demand f0 then
        QCheck.Test.fail_reportf "wire demand shrank: %g -> %g" (demand f0)
          (demand f1);
      if f1.Estimate.peak_utilization < f0.Estimate.peak_utilization then
        QCheck.Test.fail_reportf "peak utilization shrank: %g -> %g"
          f0.Estimate.peak_utilization f1.Estimate.peak_utilization;
      true)

(* ------------------------- degenerate inputs ------------------------- *)

let test_degenerate_inputs () =
  let check_uncertain what f =
    let forecast = try f () with exn ->
      Alcotest.failf "%s raised %s" what (Printexc.to_string exn)
    in
    Alcotest.(check string) (what ^ " answers Uncertain") "uncertain"
      (Estimate.verdict_to_string forecast.Estimate.verdict)
  in
  (* A single-site floorplan folds to (almost) a single gcell: the grid
     is too small for the thresholds to mean anything. *)
  let tiny = Floorplan.of_rows ~num_rows:1 ~sites_per_row:1 ~geometry in
  check_uncertain "a single-site floorplan" (fun () ->
      Estimate.forecast_pins ~floorplan:tiny ~wire
        [| [ { Geom.x = 0.1; y = 0.1 }; { Geom.x = 0.4; y = 0.2 } ] |]);
  let plan = Floorplan.of_rows ~num_rows:10 ~sites_per_row:50 ~geometry in
  (* No nets at all, and nets whose pins never leave their gcell: there
     is no routing demand to score. *)
  check_uncertain "an empty netlist" (fun () ->
      Estimate.forecast_pins ~floorplan:plan ~wire [||]);
  check_uncertain "one-pin nets" (fun () ->
      Estimate.forecast_pins ~floorplan:plan ~wire
        [| [ { Geom.x = 5.0; y = 5.0 } ]; []; [ { Geom.x = 40.0; y = 3.0 } ] |]);
  check_uncertain "zero-area nets inside one gcell" (fun () ->
      Estimate.forecast_pins ~floorplan:plan ~wire
        [| [ { Geom.x = 1.0; y = 1.0 }; { Geom.x = 1.0; y = 1.0 } ] |]);
  (* Pins off the die clamp into the boundary gcells instead of raising. *)
  let f =
    Estimate.forecast_pins ~floorplan:plan ~wire
      [|
        [ { Geom.x = -50.0; y = -50.0 }; { Geom.x = 1e6; y = 1e6 } ];
        [ { Geom.x = 0.0; y = 0.0 }; { Geom.x = 30.0; y = 30.0 } ];
      |]
  in
  Alcotest.(check bool) "off-die pins clamp into the grid" true
    (f.Estimate.overflow_score >= 0.0);
  Alcotest.(check bool) "off-die demand lands in the maps" true
    (Grid2d.total f.Estimate.maps.Estimate.pin_density > 0.0)

let test_verdict_thresholds () =
  let v = Estimate.verdict_of_scores in
  Alcotest.(check string) "degenerate forces uncertain" "uncertain"
    (Estimate.verdict_to_string
       (v ~degenerate:true ~normalized_overflow:0.0 ~peak_utilization:0.0));
  Alcotest.(check string) "clean map is routable" "routable"
    (Estimate.verdict_to_string
       (v ~degenerate:false ~normalized_overflow:0.0 ~peak_utilization:0.5));
  Alcotest.(check string) "overflow past the floor is unroutable" "unroutable"
    (Estimate.verdict_to_string
       (v ~degenerate:false
          ~normalized_overflow:Estimate.unroutable_min_norm
          ~peak_utilization:0.5));
  Alcotest.(check string) "boundary overflow is uncertain" "uncertain"
    (Estimate.verdict_to_string
       (v ~degenerate:false
          ~normalized_overflow:(Estimate.unroutable_min_norm /. 2.0)
          ~peak_utilization:0.5));
  Alcotest.(check string) "hot peak blocks a routable verdict" "uncertain"
    (Estimate.verdict_to_string
       (v ~degenerate:false ~normalized_overflow:0.0
          ~peak_utilization:(Estimate.routable_max_peak +. 0.01)));
  (* The calibration's soundness margin: the confident bands must not
     touch (see DESIGN.md, Section 4k). *)
  Alcotest.(check bool) "a dead band separates the confident verdicts" true
    (Estimate.unroutable_min_norm > 10.0 *. Estimate.routable_max_norm)

(* ------------------------- the gcell accessor ------------------------- *)

let test_gcell_accessor () =
  let subject = subject_of (Gen.of_fuzz ~family:`Pla ~seed:11 ~inputs:6 ~outputs:3 ~size:12) in
  let floorplan, positions = workload_of ~utilization:0.55 subject in
  let _it, (_, _, routing) =
    Flow.evaluate_k ~estimate:Estimate.Off ~subject ~library:lib ~floorplan
      ~positions ~k:0.0 ()
  in
  let routing =
    match routing with Some r -> r | None -> Alcotest.fail "did not route"
  in
  let map = Congestion.gcell_map routing in
  let cols, rows, _ = Rgrid.dims ~floorplan ~gcell_rows:Router.default_config.Router.gcell_rows in
  Alcotest.(check int) "map cols match the router grid" cols (Grid2d.cols map);
  Alcotest.(check int) "map rows match the router grid" rows (Grid2d.rows map);
  Grid2d.iter
    (fun c r v ->
      if Congestion.gcell routing c r <> v then
        Alcotest.failf "gcell (%d,%d) disagrees with gcell_map" c r)
    map;
  List.iter
    (fun (c, r) ->
      match Congestion.gcell routing c r with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "gcell (%d,%d) out of bounds did not raise" c r)
    [ (-1, 0); (0, -1); (cols, 0); (0, rows) ]

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "estimate"
    [
      ( "golden",
        [
          Alcotest.test_case "rank-correlation" `Quick
            test_golden_rank_correlation;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "skips-and-preserves-qor" `Quick
            test_prune_skips_and_preserves_qor;
          qc prop_pruned_accepted_identical;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "routable-seed-soundness" `Quick
            test_routable_seed_never_accepts_violations;
        ] );
      ("properties", [ qc prop_estimate_monotone ]);
      ( "degenerate",
        [
          Alcotest.test_case "inputs" `Quick test_degenerate_inputs;
          Alcotest.test_case "thresholds" `Quick test_verdict_thresholds;
        ] );
      ("congestion", [ Alcotest.test_case "gcell-accessor" `Quick test_gcell_accessor ]);
    ]
