(* The verification subsystem: equivalence oracle, invariant checkers,
   fuzz harness, and the flow's checks knob. *)

module Check = Cals_verify.Check
module Equiv = Cals_verify.Equiv
module Invariant = Cals_verify.Invariant
module Fuzz = Cals_verify.Fuzz
module Flow = Cals_core.Flow
module Mapper = Cals_core.Mapper
module Cover = Cals_core.Cover
module Partition = Cals_core.Partition
module Harness = Cals_core.Harness
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Network = Cals_logic.Network
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Router = Cals_route.Router
module Rgrid = Cals_route.Rgrid
module Geom = Cals_util.Geom
module Rng = Cals_util.Rng

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib
let wire = Cals_cell.Library.wire lib

(* ---------------- Equivalence oracle ---------------- *)

let side ~label ~pis ~outs simulate =
  { Equiv.label; pi_names = pis; output_names = outs; simulate }

let test_equiv_identical_sides () =
  let pis = [| "a"; "b" |] and outs = [| "y" |] in
  let sim (v : int64 array) = [| Int64.logand v.(0) v.(1) |] in
  let a = side ~label:"left" ~pis ~outs sim in
  let b = side ~label:"right" ~pis ~outs sim in
  match Equiv.check ~rng:(Rng.create 1) a b with
  | Ok () -> ()
  | Error cex ->
    Alcotest.failf "identical sides differ: %s" (Equiv.counterexample_to_string cex)

let test_equiv_shrinks_to_relevant_pis () =
  (* y = a AND b vs y = a OR b, with two PIs the functions ignore. The
     shrunk counterexample must pin the irrelevant PIs to false and mark
     only (a, b) relevant. *)
  let pis = [| "a"; "b"; "junk0"; "junk1" |] and outs = [| "y" |] in
  let a = side ~label:"and" ~pis ~outs (fun v -> [| Int64.logand v.(0) v.(1) |]) in
  let b = side ~label:"or" ~pis ~outs (fun v -> [| Int64.logor v.(0) v.(1) |]) in
  match Equiv.check ~rng:(Rng.create 2) a b with
  | Ok () -> Alcotest.fail "AND vs OR must differ"
  | Error cex ->
    Alcotest.(check string) "differing output" "y" cex.Equiv.output;
    Alcotest.(check int) "two relevant PIs" 2 (Equiv.num_relevant cex);
    Alcotest.(check bool) "a relevant" true cex.Equiv.relevant.(0);
    Alcotest.(check bool) "b relevant" true cex.Equiv.relevant.(1);
    Alcotest.(check bool) "junk irrelevant" false
      (cex.Equiv.relevant.(2) || cex.Equiv.relevant.(3));
    Alcotest.(check bool) "junk canonicalized to false" false
      (cex.Equiv.assignment.(2) || cex.Equiv.assignment.(3));
    (* AND differs from OR exactly when a <> b. *)
    Alcotest.(check bool) "assignment is a real counterexample" true
      (cex.Equiv.assignment.(0) <> cex.Equiv.assignment.(1))

let test_equiv_structural_mismatch_raises () =
  let a = side ~label:"a" ~pis:[| "x" |] ~outs:[| "y" |] (fun v -> [| v.(0) |]) in
  let b = side ~label:"b" ~pis:[| "z" |] ~outs:[| "y" |] (fun v -> [| v.(0) |]) in
  match Equiv.check ~rng:(Rng.create 3) a b with
  | exception Invalid_argument _ -> ()
  | Ok () | Error _ -> Alcotest.fail "PI name mismatch must raise Invalid_argument"

let test_equiv_hides_const0 () =
  (* A subject using a constant gains a __const0 PI; the oracle must still
     compare it against a side that never had one. *)
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let one = Subject.add_const b true in
  let y = Subject.add_nand b a one in
  Subject.set_output b "y" y;
  let subject = Subject.freeze b in
  Alcotest.(check int) "subject has the const PI" 2 (Subject.num_pis subject);
  let spec =
    side ~label:"spec" ~pis:[| "a" |] ~outs:[| "y" |] (fun v ->
        [| Int64.lognot v.(0) |])
  in
  match Equiv.check ~rng:(Rng.create 4) (Equiv.of_subject subject) spec with
  | Ok () -> ()
  | Error cex -> Alcotest.failf "const0 leak: %s" (Equiv.counterexample_to_string cex)

(* ---------------- Pipeline equivalence properties ---------------- *)

let k_points = [ 0.0; 0.01; 1.0 ]

(* optimize -> decompose -> map at every K point; everything must stay
   equivalent to the untouched original network. *)
let pipeline_equivalent seed =
  let family = if seed land 1 = 0 then `Pla else `Multilevel in
  let network =
    Cals_workload.Gen.of_fuzz ~family ~seed ~inputs:(4 + (seed mod 4))
      ~outputs:(2 + (seed mod 3))
      ~size:(10 + (seed mod 12))
  in
  let original = Network.copy network in
  Cals_logic.Optimize.script_area network;
  let subject = Cals_logic.Decompose.subject_of_network network in
  let ok l r =
    match Equiv.check ~rng:(Rng.create (seed + 100)) l r with
    | Ok () -> true
    | Error cex ->
      QCheck.Test.fail_reportf "seed %d: %s vs %s: %s" seed l.Equiv.label
        r.Equiv.label
        (Equiv.counterexample_to_string cex)
  in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.3 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create (seed + 1))
  in
  ok (Equiv.of_network ~label:"original" original)
    (Equiv.of_network ~label:"optimized" network)
  && ok (Equiv.of_network ~label:"optimized" network)
       (Equiv.of_subject subject)
  && List.for_all
       (fun k ->
         let r =
           Mapper.map subject ~library:lib ~positions (Mapper.congestion_aware ~k)
         in
         ok (Equiv.of_subject subject)
           (Equiv.of_mapped ~label:(Printf.sprintf "mapped@K=%g" k)
              r.Mapper.mapped))
       k_points

let prop_pipeline_equivalence =
  QCheck.Test.make ~name:"optimize/decompose/map preserve the function"
    ~count:8
    QCheck.(int_range 0 10_000)
    pipeline_equivalent

(* Seeds that covered past regressions (kept explicit so they always run). *)
let regression_seeds = [ 1; 7; 42; 1002; 31337 ]

let test_pipeline_regression_seeds () =
  List.iter
    (fun seed ->
      if not (pipeline_equivalent seed) then
        Alcotest.failf "regression seed %d" seed)
    regression_seeds

(* ---------------- Injected-bug demo ---------------- *)

(* Flip one instance's fanin order and the oracle must notice. Symmetric
   cells (NAND2, NOR2, ...) shrug a flip off, so search the netlist for an
   instance where the flip changes the function — the library's AOI21,
   OAI21 and MUX21 are asymmetric — and validate the counterexample the
   oracle hands back. *)
let test_injected_fanin_flip_caught () =
  let rng = Rng.create 9 in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs:8 ~outputs:6 ~products:40 ~terms_lo:4
      ~terms_hi:12 ()
  in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.3 ~aspect:1.0 ~geometry
  in
  let positions = Placement.place_subject subject ~floorplan ~rng:(Rng.create 10) in
  let r = Mapper.map subject ~library:lib ~positions Mapper.min_area in
  let mapped = r.Mapper.mapped in
  let flip i =
    let instances =
      Array.mapi
        (fun j (inst : Mapped.instance) ->
          if j = i then
            {
              inst with
              Mapped.fanins =
                Array.of_list (List.rev (Array.to_list inst.Mapped.fanins));
            }
          else inst)
        mapped.Mapped.instances
    in
    Mapped.make ~pi_names:mapped.Mapped.pi_names ~instances
      ~outputs:mapped.Mapped.outputs
  in
  let sound = Equiv.of_subject subject in
  let rec hunt i =
    if i >= Mapped.num_cells mapped then
      Alcotest.fail "no fanin flip changed the function (no asymmetric cells?)"
    else begin
      let inst = mapped.Mapped.instances.(i) in
      if Array.length inst.Mapped.fanins < 2 then hunt (i + 1)
      else begin
        let tampered = Equiv.of_mapped ~label:"tampered" (flip i) in
        match Equiv.check ~rng:(Rng.create (1000 + i)) sound tampered with
        | Ok () -> hunt (i + 1)
        | Error cex -> (cex, tampered, inst.Mapped.cell.Cals_cell.Cell.name)
      end
    end
  in
  let cex, tampered, cell_name = hunt 0 in
  (* The shrunk assignment must replay: both sides disagree on the named
     output under exactly this stimulus. *)
  let stim = Array.map (fun b -> if b then -1L else 0L) cex.Equiv.assignment in
  let out_index =
    let rec find i =
      if sound.Equiv.output_names.(i) = cex.Equiv.output then i else find (i + 1)
    in
    find 0
  in
  let bit0 v = Int64.logand v 1L <> 0L in
  Alcotest.(check bool)
    (Printf.sprintf "replay on flipped %s disagrees" cell_name)
    true
    (bit0 (sound.Equiv.simulate stim).(out_index)
    <> bit0 (tampered.Equiv.simulate stim).(out_index));
  Alcotest.(check bool) "expected/got recorded faithfully" true
    (cex.Equiv.expected = bit0 (sound.Equiv.simulate stim).(out_index)
    && cex.Equiv.got = bit0 (tampered.Equiv.simulate stim).(out_index));
  (* Shrinking is honest: flipping any relevant PI repairs the miter. *)
  Array.iteri
    (fun i relevant ->
      if relevant then begin
        let flipped = Array.copy cex.Equiv.assignment in
        flipped.(i) <- not flipped.(i);
        let stim = Array.map (fun b -> if b then -1L else 0L) flipped in
        let oa = sound.Equiv.simulate stim and ob = tampered.Equiv.simulate stim in
        let all_agree =
          Array.for_all2 (fun va vb -> bit0 va = bit0 vb) oa ob
        in
        Alcotest.(check bool)
          (Printf.sprintf "flipping relevant %s repairs the miter"
             cex.Equiv.pis.(i))
          true all_agree
      end)
    cex.Equiv.relevant;
  Alcotest.(check bool) "at least one relevant PI" true
    (Equiv.num_relevant cex >= 1)

(* ---------------- Cover legality ---------------- *)

let dead_gate_subject () =
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let c = Subject.add_pi b "b" in
  let live = Subject.add_nand b a c in
  let dead = Subject.add_inv b c in
  Subject.set_output b "y" live;
  (Subject.freeze b, dead)

let test_cover_check_passes_on_real_map () =
  let rng = Rng.create 11 in
  let net = Cals_workload.Gen.pla ~rng ~inputs:6 ~outputs:4 ~products:20 () in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let positions =
    Array.make (Subject.num_nodes subject) { Geom.x = 0.0; y = 0.0 }
  in
  (* ~verify:true raises on an illegal cover; a legal one maps as before. *)
  let r = Mapper.map ~verify:true subject ~library:lib ~positions Mapper.min_area in
  Alcotest.(check bool) "cells produced" true (Mapped.num_cells r.Mapper.mapped > 0)

let test_cover_rejects_uncovered_live_gate () =
  let subject, dead = dead_gate_subject () in
  let positions =
    Array.make (Subject.num_nodes subject) { Geom.x = 0.0; y = 0.0 }
  in
  let partition =
    Partition.run Partition.Dagon subject ~positions ~distance:Geom.manhattan
  in
  let cover =
    Cover.run subject ~library:lib ~partition ~positions Cover.default_options
  in
  Alcotest.(check bool) "legal cover accepted" true
    (Result.is_ok (Cover.check_coverage cover));
  (* Declare the dead inverter live after covering: now a "live" gate has
     no cover, which the checker must report. *)
  Alcotest.(check bool) "gate was dead" false partition.Partition.live.(dead);
  partition.Partition.live.(dead) <- true;
  match Cover.check_coverage cover with
  | Ok () -> Alcotest.fail "uncovered live gate accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "diagnosis names a gate: %s" msg)
      true
      (String.length msg > 0)

(* ---------------- Placement invariants ---------------- *)

let placed_example () =
  let rng = Rng.create 12 in
  let net = Cals_workload.Gen.pla ~rng ~inputs:8 ~outputs:6 ~products:30 () in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.4 ~aspect:1.0 ~geometry
  in
  let positions = Placement.place_subject subject ~floorplan ~rng:(Rng.create 13) in
  let r = Mapper.map subject ~library:lib ~positions Mapper.min_area in
  let mapped = r.Mapper.mapped in
  let pl = Placement.place_mapped_seeded mapped ~floorplan in
  (floorplan, mapped, pl)

let clone_placement (pl : Placement.mapped_placement) =
  {
    pl with
    Placement.cell_pos = Array.copy pl.Placement.cell_pos;
    row_fill = Array.copy pl.Placement.row_fill;
  }

let test_placement_checker_accepts_legalized () =
  let floorplan, mapped, pl = placed_example () in
  match Invariant.check_placement ~floorplan mapped pl with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "legal placement rejected: %s" msg

let test_placement_checker_rejects_tampering () =
  let floorplan, mapped, pl = placed_example () in
  let expect_error what tampered =
    match Invariant.check_placement ~floorplan mapped tampered with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  (* Off its row. *)
  let t1 = clone_placement pl in
  let p = t1.Placement.cell_pos.(0) in
  t1.Placement.cell_pos.(0) <- { p with Geom.y = p.Geom.y +. 0.3 };
  expect_error "off-row cell" t1;
  (* Off the site grid. *)
  let t2 = clone_placement pl in
  let p = t2.Placement.cell_pos.(0) in
  t2.Placement.cell_pos.(0) <-
    { p with Geom.x = p.Geom.x +. (floorplan.Floorplan.site_width /. 3.0) };
  expect_error "off-grid cell" t2;
  (* Overlap: move cell 1 onto cell 0's site interval (same row first). *)
  let t3 = clone_placement pl in
  t3.Placement.cell_pos.(1) <- t3.Placement.cell_pos.(0);
  expect_error "overlapping cells" t3;
  (* Corrupted fill frontier. *)
  let t4 = clone_placement pl in
  t4.Placement.row_fill.(0) <- t4.Placement.row_fill.(0) + 1;
  expect_error "corrupted row_fill" t4

(* ---------------- Routing invariants ---------------- *)

let routed_example () =
  let fp = Floorplan.of_rows ~num_rows:12 ~sites_per_row:120 ~geometry in
  let w = fp.Floorplan.die_width and h = fp.Floorplan.die_height in
  let pins =
    [|
      [
        { Geom.x = 0.05 *. w; y = 0.1 *. h };
        { Geom.x = 0.9 *. w; y = 0.85 *. h };
        { Geom.x = 0.1 *. w; y = 0.9 *. h };
      ];
      [ { Geom.x = 0.2 *. w; y = 0.2 *. h }; { Geom.x = 0.7 *. w; y = 0.25 *. h } ];
      [ { Geom.x = 0.5 *. w; y = 0.5 *. h } ];
    |]
  in
  (fp, Router.route_pins ~floorplan:fp ~wire pins)

let test_routing_checker_accepts_real_result () =
  let _, res = routed_example () in
  Alcotest.(check bool) "segments routed" true (res.Router.num_segments > 0);
  match Invariant.check_routing ~usage:true res with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "legal routing rejected: %s" msg

let test_routing_checker_rejects_handbuilt_broken_route () =
  (* A route whose path stops one gcell short of its endpoint. *)
  let fp = Floorplan.of_rows ~num_rows:12 ~sites_per_row:120 ~geometry in
  let grid = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  Alcotest.(check bool) "grid is wide enough" true (grid.Rgrid.cols >= 3);
  let res =
    {
      Router.grid;
      violations = 0;
      total_overflow = 0.0;
      wirelength_um = grid.Rgrid.gcell_um;
      max_utilization = 0.0;
      num_nets = 1;
      num_segments = 1;
      net_length_um = [| grid.Rgrid.gcell_um |];
      routes =
        [|
          {
            Router.net = 0;
            gends = ((0, 0), (2, 0));
            edges = [ Rgrid.H (0, 0) ];
          };
        |];
      net_gcells = [| [ (0, 0); (2, 0) ] |];
    }
  in
  (match Invariant.check_routing ~usage:false res with
  | Ok () -> Alcotest.fail "disconnected segment accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "diagnosis mentions the endpoints: %s" msg)
      true
      (String.length msg > 0));
  (* An empty path between distinct endpoints is just as illegal. *)
  let res_empty =
    {
      res with
      Router.routes = [| { Router.net = 0; gends = ((0, 0), (2, 0)); edges = [] } |];
      wirelength_um = 0.0;
      net_length_um = [| 0.0 |];
    }
  in
  match Invariant.check_routing ~usage:false res_empty with
  | Ok () -> Alcotest.fail "empty path accepted"
  | Error _ -> ()

let test_routing_checker_rejects_truncated_route () =
  let _, res = routed_example () in
  (* Drop the first edge of the longest route: connectivity must break. *)
  let longest = ref (-1) and best = ref 0 in
  Array.iteri
    (fun i (rt : Router.route) ->
      let n = List.length rt.Router.edges in
      if n > !best then begin
        best := n;
        longest := i
      end)
    res.Router.routes;
  Alcotest.(check bool) "found a multi-edge route" true (!best >= 2);
  let routes =
    Array.mapi
      (fun i (rt : Router.route) ->
        if i = !longest then { rt with Router.edges = List.tl rt.Router.edges }
        else rt)
      res.Router.routes
  in
  match Invariant.check_routing ~usage:false { res with Router.routes } with
  | Ok () -> Alcotest.fail "truncated route accepted"
  | Error _ -> ()

let test_routing_checker_rejects_usage_tampering () =
  let _, res = routed_example () in
  (* Usage the routes cannot explain. *)
  Rgrid.add_usage res.Router.grid (Rgrid.H (0, 0)) 1.0;
  (match Invariant.check_routing ~usage:true res with
  | Ok () -> Alcotest.fail "phantom usage accepted"
  | Error _ -> ());
  (* Fresh result, corrupted per-net length. *)
  let _, res = routed_example () in
  res.Router.net_length_um.(0) <- res.Router.net_length_um.(0) +. 7.0;
  match Invariant.check_routing ~usage:true res with
  | Ok () -> Alcotest.fail "corrupted net length accepted"
  | Error _ -> ()

(* ---------------- Fuzz harness ---------------- *)

let test_fuzz_all_pass () =
  let checked = ref 0 in
  let outcome =
    Fuzz.run ~iterations:6 ~seed:5
      ~check:(fun _ ->
        incr checked;
        Ok ())
      ()
  in
  Alcotest.(check int) "all iterations ran" 6 outcome.Fuzz.iterations;
  Alcotest.(check int) "callback per iteration" 6 !checked;
  Alcotest.(check bool) "no failure" true (outcome.Fuzz.failure = None)

let test_fuzz_shrinks_to_minimum () =
  (* Synthetic bug: fails iff inputs >= 6 and size >= 20. Greedy shrinking
     must land exactly on the boundary (6, 20) with everything else at its
     floor. *)
  let check (p : Fuzz.params) =
    if p.Fuzz.inputs >= 6 && p.Fuzz.size >= 20 then
      Error ("synthetic", "inputs >= 6 && size >= 20")
    else Ok ()
  in
  let outcome = Fuzz.run ~iterations:50 ~seed:3 ~check () in
  match outcome.Fuzz.failure with
  | None -> Alcotest.fail "the synthetic bug was never sampled"
  | Some f ->
    Alcotest.(check int) "inputs shrunk to the boundary" 6 f.Fuzz.params.Fuzz.inputs;
    Alcotest.(check int) "size shrunk to the boundary" 20 f.Fuzz.params.Fuzz.size;
    Alcotest.(check int) "outputs shrunk to the floor" 2
      f.Fuzz.params.Fuzz.outputs;
    Alcotest.(check string) "stage preserved" "synthetic" f.Fuzz.stage;
    Alcotest.(check bool) "shrinking did some work" true (f.Fuzz.shrink_steps > 0)

let test_fuzz_reproducer_roundtrip () =
  let failure =
    {
      Fuzz.params =
        { Fuzz.seed = 777; family = Fuzz.Multilevel; inputs = 6; outputs = 3; size = 21 };
      stage = "route";
      detail = "multi\nline detail";
      shrink_steps = 4;
    }
  in
  let path = Filename.temp_file "cals_fuzz" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Fuzz.write_reproducer ~path failure;
  let p = Fuzz.read_reproducer path in
  Alcotest.(check bool) "params survive the round trip" true
    (p = failure.Fuzz.params)

let test_fuzz_harness_end_to_end () =
  (* Three tiny workloads through the real flow with Full checks. *)
  let outcome =
    Fuzz.run ~iterations:3 ~seed:1
      ~check:(fun p -> Harness.check_params ~level:Check.Full p)
      ()
  in
  match outcome.Fuzz.failure with
  | None -> Alcotest.(check int) "three workloads" 3 outcome.Fuzz.iterations
  | Some f ->
    Alcotest.failf "flow failed verification on %s [%s]: %s"
      (Fuzz.params_to_string f.Fuzz.params)
      f.Fuzz.stage f.Fuzz.detail

(* ---------------- Flow with checks on ---------------- *)

let small_circuit seed =
  let rng = Rng.create seed in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs:10 ~outputs:10 ~products:60 ~terms_lo:6
      ~terms_hi:16 ()
  in
  Cals_logic.Network.sweep net;
  net

let test_flow_full_checks_clean () =
  let net = small_circuit 21 in
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.3 ~aspect:1.0 ~geometry
  in
  let checked =
    Flow.run ~checks:Check.Full ~subject ~library:lib ~floorplan
      ~rng:(Rng.create 22) ()
  in
  let plain =
    Flow.run ~checks:Check.Off ~subject ~library:lib ~floorplan
      ~rng:(Rng.create 22) ()
  in
  Alcotest.(check bool) "accepted under Full checks" true
    (checked.Flow.accepted <> None);
  (* Checks observe; they must not perturb the outcome. *)
  Alcotest.(check (option (float 0.0)))
    "same accepted K as an unchecked run"
    (Option.map (fun it -> it.Flow.k) plain.Flow.accepted)
    (Option.map (fun it -> it.Flow.k) checked.Flow.accepted);
  List.iter2
    (fun (a : Flow.iteration) (b : Flow.iteration) ->
      Alcotest.(check int) "cells" a.Flow.cells b.Flow.cells;
      Alcotest.(check (float 0.0)) "hpwl" a.Flow.hpwl_um b.Flow.hpwl_um)
    plain.Flow.iterations checked.Flow.iterations

(* Differential: sequential vs 4-domain speculative evaluation, both with
   checks enabled, must agree on every recorded figure. *)
let checked_parallel_matches_sequential make_network seed utilization () =
  let net = make_network () in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization ~aspect:1.0 ~geometry
  in
  let seq =
    Flow.run ~checks:Check.Cheap ~subject ~library:lib ~floorplan
      ~rng:(Rng.create seed) ()
  in
  let par =
    Flow.run_parallel ~jobs:4 ~checks:Check.Cheap ~subject ~library:lib
      ~floorplan ~rng:(Rng.create seed) ()
  in
  Alcotest.(check (option (float 0.0)))
    "same accepted K"
    (Option.map (fun it -> it.Flow.k) seq.Flow.accepted)
    (Option.map (fun it -> it.Flow.k) par.Flow.accepted);
  Alcotest.(check (list (float 0.0)))
    "same iteration schedule"
    (List.map (fun it -> it.Flow.k) seq.Flow.iterations)
    (List.map (fun it -> it.Flow.k) par.Flow.iterations);
  List.iter2
    (fun (a : Flow.iteration) (b : Flow.iteration) ->
      Alcotest.(check int) "cells" a.Flow.cells b.Flow.cells;
      Alcotest.(check (float 0.0)) "cell area" a.Flow.cell_area b.Flow.cell_area;
      Alcotest.(check (float 0.0)) "hpwl" a.Flow.hpwl_um b.Flow.hpwl_um)
    seq.Flow.iterations par.Flow.iterations;
  match (seq.Flow.mapped, par.Flow.mapped) with
  | Some a, Some b ->
    Alcotest.(check int) "mapped cells" (Mapped.num_cells a) (Mapped.num_cells b)
  | None, None -> ()
  | _ -> Alcotest.fail "mapped presence differs"

let test_checked_parallel_spla =
  checked_parallel_matches_sequential
    (fun () -> Cals_workload.Presets.spla_like ~scale:0.04 ~seed:7 ())
    12 0.55

let test_checked_parallel_pdc =
  checked_parallel_matches_sequential
    (fun () -> Cals_workload.Presets.pdc_like ~scale:0.04 ~seed:11 ())
    13 0.6

(* Three-way differential under Full checks: cold sequential re-mapping,
   the incremental session, and 4-domain speculative evaluation (which
   warms and seals the shared match cache) must agree on every recorded
   figure and on the shipped netlist instance for instance. *)
let test_checked_three_way_differential () =
  let net = Cals_workload.Presets.spla_like ~scale:0.04 ~seed:19 () in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:0.6 ~aspect:1.0 ~geometry
  in
  let cold =
    Flow.run ~checks:Check.Full ~incremental:false ~subject ~library:lib
      ~floorplan ~rng:(Rng.create 20) ()
  in
  let warm =
    Flow.run ~checks:Check.Full ~subject ~library:lib ~floorplan
      ~rng:(Rng.create 20) ()
  in
  let par =
    Flow.run_parallel ~jobs:4 ~checks:Check.Full ~subject ~library:lib
      ~floorplan ~rng:(Rng.create 20) ()
  in
  let signature (o : Flow.outcome) =
    List.map
      (fun (it : Flow.iteration) ->
        (it.Flow.k, it.Flow.cells, it.Flow.cell_area, it.Flow.hpwl_um,
         it.Flow.report))
      o.Flow.iterations
  in
  let check_pair label a b =
    Alcotest.(check bool) (label ^ ": same iteration records") true
      (signature a = signature b);
    Alcotest.(check (option (float 0.0)))
      (label ^ ": same accepted K")
      (Option.map (fun it -> it.Flow.k) a.Flow.accepted)
      (Option.map (fun it -> it.Flow.k) b.Flow.accepted);
    match (a.Flow.mapped, b.Flow.mapped) with
    | Some x, Some y ->
      Alcotest.(check bool) (label ^ ": same shipped netlist") true
        (x.Mapped.pi_names = y.Mapped.pi_names
        && x.Mapped.outputs = y.Mapped.outputs
        && Array.length x.Mapped.instances = Array.length y.Mapped.instances
        && Array.for_all2
             (fun (i : Mapped.instance) (j : Mapped.instance) ->
               i.Mapped.cell.Cals_cell.Cell.name
               = j.Mapped.cell.Cals_cell.Cell.name
               && i.Mapped.fanins = j.Mapped.fanins
               && i.Mapped.seed = j.Mapped.seed)
             x.Mapped.instances y.Mapped.instances)
    | None, None -> ()
    | _ -> Alcotest.failf "%s: mapped presence differs" label
  in
  check_pair "cold vs incremental" cold warm;
  check_pair "cold vs parallel" cold par

(* ---------------- Check levels ---------------- *)

let test_check_level_parsing () =
  List.iter
    (fun (s, expect) ->
      match Check.level_of_string s with
      | Ok l -> Alcotest.(check string) s expect (Check.level_to_string l)
      | Error e -> Alcotest.failf "%s rejected: %s" s e)
    [ ("off", "off"); ("Cheap", "cheap"); ("FULL", "full") ];
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Check.level_of_string "sometimes"));
  Alcotest.(check int) "off runs no rounds" 0 (Check.rounds Check.Off);
  Alcotest.(check bool) "full outworks cheap" true
    (Check.rounds Check.Full > Check.rounds Check.Cheap)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "verify"
    [
      ( "equiv",
        [
          Alcotest.test_case "identical sides" `Quick test_equiv_identical_sides;
          Alcotest.test_case "shrinks to relevant PIs" `Quick
            test_equiv_shrinks_to_relevant_pis;
          Alcotest.test_case "structural mismatch raises" `Quick
            test_equiv_structural_mismatch_raises;
          Alcotest.test_case "const0 hidden" `Quick test_equiv_hides_const0;
          Alcotest.test_case "injected fanin flip caught" `Quick
            test_injected_fanin_flip_caught;
        ] );
      ( "pipeline",
        [
          qc prop_pipeline_equivalence;
          Alcotest.test_case "regression seeds" `Quick
            test_pipeline_regression_seeds;
        ] );
      ( "cover",
        [
          Alcotest.test_case "passes on a real map" `Quick
            test_cover_check_passes_on_real_map;
          Alcotest.test_case "rejects uncovered live gate" `Quick
            test_cover_rejects_uncovered_live_gate;
        ] );
      ( "placement",
        [
          Alcotest.test_case "accepts legalized" `Quick
            test_placement_checker_accepts_legalized;
          Alcotest.test_case "rejects tampering" `Quick
            test_placement_checker_rejects_tampering;
        ] );
      ( "routing",
        [
          Alcotest.test_case "accepts real result" `Quick
            test_routing_checker_accepts_real_result;
          Alcotest.test_case "rejects hand-built broken route" `Quick
            test_routing_checker_rejects_handbuilt_broken_route;
          Alcotest.test_case "rejects truncated route" `Quick
            test_routing_checker_rejects_truncated_route;
          Alcotest.test_case "rejects usage tampering" `Quick
            test_routing_checker_rejects_usage_tampering;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "all pass" `Quick test_fuzz_all_pass;
          Alcotest.test_case "shrinks to minimum" `Quick
            test_fuzz_shrinks_to_minimum;
          Alcotest.test_case "reproducer round trip" `Quick
            test_fuzz_reproducer_roundtrip;
          Alcotest.test_case "harness end to end" `Slow
            test_fuzz_harness_end_to_end;
        ] );
      ( "flow",
        [
          Alcotest.test_case "full checks clean" `Quick
            test_flow_full_checks_clean;
          Alcotest.test_case "checked parallel spla" `Quick
            test_checked_parallel_spla;
          Alcotest.test_case "checked three-way differential" `Quick
            test_checked_three_way_differential;
          Alcotest.test_case "checked parallel pdc" `Quick
            test_checked_parallel_pdc;
          Alcotest.test_case "level parsing" `Quick test_check_level_parsing;
        ] );
    ]
