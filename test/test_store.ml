(* The persistent match-cache store: a sealed session's matches must
   round-trip through the on-disk format bit-identically (qcheck over
   random workloads), and every damaged file — truncated, bit-flipped,
   version-bumped, mis-keyed — must degrade to a counted cold miss that
   leaves the session perfectly usable, never an exception. *)

module Incremental = Cals_core.Incremental
module Mapper = Cals_core.Mapper
module Store = Cals_serve.Store
module Metrics = Cals_telemetry.Metrics
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Fuzz = Cals_verify.Fuzz
module Gen = Cals_workload.Gen
module Rng = Cals_util.Rng

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib

(* Counters are no-ops while the probe is disabled; the whole point here
   is asserting them. *)
let () = Cals_telemetry.Probe.enable ()

(* ---------------- workload substrate ---------------- *)

let session_of ~family ~seed ~inputs ~outputs ~size =
  let net = Gen.of_fuzz ~family ~seed ~inputs ~outputs ~size in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (max 1 (Subject.num_gates subject)) *. 5.0)
      ~utilization:0.45 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create (seed + 1))
  in
  fun () -> Incremental.create ~subject ~library:lib ~positions ()

let mapped_identical (a : Mapped.t) (b : Mapped.t) =
  a.Mapped.pi_names = b.Mapped.pi_names
  && a.Mapped.outputs = b.Mapped.outputs
  && Array.length a.Mapped.instances = Array.length b.Mapped.instances
  && Array.for_all2
       (fun (x : Mapped.instance) (y : Mapped.instance) ->
         x.Mapped.cell.Cals_cell.Cell.name = y.Mapped.cell.Cals_cell.Cell.name
         && x.Mapped.fanins = y.Mapped.fanins
         && x.Mapped.seed = y.Mapped.seed)
       a.Mapped.instances b.Mapped.instances

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "cals-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let counter name =
  let s = Metrics.snapshot () in
  match
    List.find_opt (fun c -> c.Metrics.c_name = name) s.Metrics.counters
  with
  | Some c -> c.Metrics.c_value
  | None -> 0

(* ---------------- qcheck round-trip ---------------- *)

let workload_arb =
  QCheck.make
    ~print:(fun (f, s, i, o, z) ->
      Printf.sprintf "family=%s seed=%d inputs=%d outputs=%d size=%d"
        (match f with `Pla -> "pla" | `Multilevel -> "multilevel")
        s i o z)
    QCheck.Gen.(
      let* family = oneofl [ `Pla; `Multilevel ] in
      let* seed = 0 -- 1000 in
      let* inputs = 4 -- 8 in
      let* outputs = 2 -- 4 in
      let* size = 8 -- 24 in
      return (family, seed, inputs, outputs, size))

(* Warm+seal a session, save it, load it into a fresh session of the
   same design: every tree preloads, the store reports a hit, and
   mapping from the preloaded cache is bit-identical to mapping from
   the warmed one — with zero cache misses. *)
let store_roundtrip =
  QCheck.Test.make ~count:25 ~name:"store round-trip is warm and identical"
    workload_arb (fun (family, seed, inputs, outputs, size) ->
      let make = session_of ~family ~seed ~inputs ~outputs ~size in
      let dir = fresh_dir () in
      let key = Printf.sprintf "rt-%d-%d" seed size in
      let warmed = make () in
      Incremental.warm warmed;
      Incremental.seal warmed;
      (match Store.save ~dir ~key warmed with
      | Ok bytes ->
        if bytes <= 28 then
          QCheck.Test.fail_reportf "saved only %d bytes" bytes
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e);
      let trees = (Incremental.stats warmed).Incremental.trees in
      let hits0 = counter "serve_cache_store_hit" in
      let loaded = make () in
      (match Store.load ~dir ~key loaded with
      | Store.Loaded n when n = trees -> ()
      | Store.Loaded n ->
        QCheck.Test.fail_reportf "preloaded %d of %d trees" n trees
      | Store.Cold _ -> QCheck.Test.fail_reportf "unexpected cold load");
      if counter "serve_cache_store_hit" <> hits0 + 1 then
        QCheck.Test.fail_reportf "hit counter did not advance";
      Incremental.seal loaded;
      let a = Incremental.map warmed ~k:4.0 in
      let b = Incremental.map loaded ~k:4.0 in
      if not (mapped_identical a.Mapper.mapped b.Mapper.mapped) then
        QCheck.Test.fail_reportf "preloaded map differs from warmed map";
      if a.Mapper.stats <> b.Mapper.stats then
        QCheck.Test.fail_reportf "mapper stats differ";
      let s = Incremental.stats loaded in
      if s.Incremental.misses <> 0 then
        QCheck.Test.fail_reportf "preloaded session missed %d times"
          s.Incremental.misses;
      if s.Incremental.hits = 0 then
        QCheck.Test.fail_reportf "preloaded session never hit";
      true)

(* ---------------- deterministic damage battery ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let flip data pos =
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  Bytes.to_string b

(* Every damaged file must load as a *counted* cold miss — no exception
   — and leave the session fully usable: warming it afterwards must
   reproduce the undamaged mapping bit-for-bit. *)
let test_damage_degrades_to_cold_miss () =
  let make = session_of ~family:`Pla ~seed:11 ~inputs:6 ~outputs:3 ~size:14 in
  let dir = fresh_dir () in
  let key = "damage" in
  let warmed = make () in
  Incremental.warm warmed;
  Incremental.seal warmed;
  (match Store.save ~dir ~key warmed with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  let reference = (Incremental.map warmed ~k:4.0).Mapper.mapped in
  let file = Store.path ~dir ~key in
  let good = read_file file in
  let header_len = 8 + 4 + 8 + 8 in
  let cases =
    [
      ("empty file", "", `Corrupt);
      ("truncated header", String.sub good 0 10, `Corrupt);
      ( "truncated payload",
        String.sub good 0 (header_len + ((String.length good - header_len) / 2)),
        `Corrupt );
      ("flipped magic", flip good 0, `Corrupt);
      ("version bump", flip good 8, `Version_skew);
      ("flipped payload byte", flip good (header_len + 5), `Corrupt);
      ("payload tail flip", flip good (String.length good - 1), `Corrupt);
    ]
  in
  List.iter
    (fun (name, data, expect) ->
      write_file file data;
      let corrupt0 = counter "serve_cache_store_corrupt" in
      let session = make () in
      (match (Store.load ~dir ~key session, expect) with
      | Store.Cold (Store.Corrupt _), `Corrupt -> ()
      | Store.Cold (Store.Version_skew v), `Version_skew ->
        Alcotest.(check bool)
          (name ^ ": skewed version is not ours")
          true (v <> Store.version)
      | Store.Cold other, _ ->
        Alcotest.failf "%s: wrong cold reason %s" name
          (match other with
          | Store.Absent -> "absent"
          | Store.Corrupt w -> "corrupt " ^ w
          | Store.Version_skew v -> Printf.sprintf "version %d" v
          | Store.Key_mismatch -> "key mismatch")
      | Store.Loaded n, _ -> Alcotest.failf "%s: loaded %d entries" name n);
      Alcotest.(check int)
        (name ^ ": corrupt counter advanced")
        (corrupt0 + 1)
        (counter "serve_cache_store_corrupt");
      (* The cold miss is survivable: warming still works, identically. *)
      Incremental.warm session;
      Incremental.seal session;
      Alcotest.(check bool)
        (name ^ ": session still maps identically")
        true
        (mapped_identical reference (Incremental.map session ~k:4.0).Mapper.mapped))
    cases;
  (* A structurally valid file under the wrong key is a key mismatch
     (fingerprint collision paranoia), not a warm load. *)
  write_file file good;
  let other = Store.path ~dir ~key:"other" in
  write_file other good;
  let session = make () in
  (match Store.load ~dir ~key:"other" session with
  | Store.Cold Store.Key_mismatch -> ()
  | _ -> Alcotest.fail "mis-keyed file must report Key_mismatch");
  (* And a missing file is a plain miss on the miss counter. *)
  let miss0 = counter "serve_cache_store_miss" in
  (match Store.load ~dir:(fresh_dir ()) ~key session with
  | Store.Cold Store.Absent -> ()
  | _ -> Alcotest.fail "empty dir must load Cold Absent");
  Alcotest.(check int) "miss counter advanced" (miss0 + 1)
    (counter "serve_cache_store_miss")

(* Saving is atomic enough for concurrent writers: the tmp file never
   survives, and a load right after a save always sees a whole file. *)
let test_save_then_load_immediately () =
  let make = session_of ~family:`Pla ~seed:5 ~inputs:5 ~outputs:2 ~size:10 in
  let dir = fresh_dir () in
  let warmed = make () in
  Incremental.warm warmed;
  Incremental.seal warmed;
  (match Store.save ~dir ~key:"atomic" warmed with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check bool) "no tmp litter" true
    (Sys.readdir dir |> Array.for_all (fun f -> Filename.extension f = ".mcs"));
  let loaded = make () in
  match Store.load ~dir ~key:"atomic" loaded with
  | Store.Loaded n -> Alcotest.(check bool) "entries preloaded" true (n > 0)
  | Store.Cold _ -> Alcotest.fail "fresh save must load warm"

let test_unwritable_dir_is_an_error () =
  let warmed =
    session_of ~family:`Pla ~seed:7 ~inputs:5 ~outputs:2 ~size:10 ()
  in
  Incremental.warm warmed;
  Incremental.seal warmed;
  let file = Filename.temp_file "cals-store-test" ".notadir" in
  match Store.save ~dir:(Filename.concat file "sub") ~key:"x" warmed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "saving under a file must fail gracefully"

let () =
  Alcotest.run "store"
    [
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest ~long:false store_roundtrip ] );
      ( "damage",
        [
          Alcotest.test_case "degrades-to-cold-miss" `Quick
            test_damage_degrades_to_cold_miss;
          Alcotest.test_case "atomic-save" `Quick
            test_save_then_load_immediately;
          Alcotest.test_case "unwritable-dir" `Quick
            test_unwritable_dir_is_an_error;
        ] );
    ]
