(* End-to-end smoke of every cals subcommand on a tiny golden BLIF:
   asserts exit codes and the artifacts each command promises. Runs the
   real binary (built as a test dependency), so this is the one suite
   that exercises argument parsing, file IO and exit-code wiring. *)

let cals = Filename.concat ".." "bin/cals.exe"
let blif = Filename.concat "golden" "pla_small_06.blif"
let log_file = "cli-smoke.log"

(* Run through the shell so redirections work; on an unexpected exit code
   surface the command's own output in the failure message. *)
let run cmd =
  Sys.command (Printf.sprintf "%s > %s 2>&1" cmd log_file)

let logged () =
  if not (Sys.file_exists log_file) then ""
  else begin
    let ic = open_in log_file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let check_exit name expected cmd =
  let code = run cmd in
  if code <> expected then
    Alcotest.failf "%s: exit %d (wanted %d)\n--- output ---\n%s" name code
      expected (logged ())

let check_file name path =
  Alcotest.(check bool) (name ^ ": " ^ path ^ " exists") true
    (Sys.file_exists path)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------- subcommands ------------------------- *)

let test_stats () =
  check_exit "stats" 0 (Printf.sprintf "%s stats %s" cals blif);
  Alcotest.(check bool) "prints the subject size" true
    (contains ~needle:"subject:" (logged ()))

let test_map () =
  check_exit "map" 0
    (Printf.sprintf "%s map %s -k 0.001 -o cli-mapped.v" cals blif);
  check_file "map" "cli-mapped.v";
  let ic = open_in "cli-mapped.v" in
  let verilog =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check bool) "structural Verilog" true
    (contains ~needle:"module" verilog)

let test_flow () =
  check_exit "flow accepted" 0
    (Printf.sprintf "%s flow %s --check cheap" cals blif);
  Alcotest.(check bool) "reports the accepted K" true
    (contains ~needle:"accepted at K=" (logged ()));
  (* A preset works as input too, and the trace artifact lands. *)
  check_exit "flow preset" 0
    (Printf.sprintf
       "%s flow --preset spla --scale 0.02 --seed 5 --trace cli-trace.json"
       cals);
  check_file "flow" "cli-trace.json"

(* Orchestrated flow: candidate table, miter-verified selection, and
   bit-identical output across two runs (the determinism contract the
   orchestrator documents). *)
let test_flow_orchestrate () =
  check_exit "flow --orchestrate" 0
    (Printf.sprintf "%s flow %s --orchestrate" cals blif);
  let first = logged () in
  Alcotest.(check bool) "prints the candidate table" true
    (contains ~needle:"baseline" first
    && contains ~needle:"aig:strash" first
    && contains ~needle:"selected" first
    && contains ~needle:"miter-verified" first);
  check_exit "flow --orchestrate again" 0
    (Printf.sprintf "%s flow %s --orchestrate" cals blif);
  Alcotest.(check bool) "two runs bit-identical" true
    (String.equal first (logged ()));
  (* An explicit budget works, and a nonsensical one is a usage error. *)
  check_exit "flow --orchestrate=3" 0
    (Printf.sprintf "%s flow %s --orchestrate=3" cals blif)

let test_sta () =
  check_exit "sta" 0 (Printf.sprintf "%s sta %s" cals blif);
  Alcotest.(check bool) "prints a critical path" true
    (contains ~needle:"critical path:" (logged ()))

let test_lib () =
  check_exit "lib" 0 (Printf.sprintf "%s lib -o cli-lib.lib" cals);
  check_file "lib" "cli-lib.lib"

let test_fuzz () =
  check_exit "fuzz" 0 (Printf.sprintf "%s fuzz --iterations 1 --seed 1" cals);
  (* Replay path: write a known-good reproducer and replay it. *)
  Cals_verify.Fuzz.write_reproducer ~path:"cli-repro.txt"
    {
      Cals_verify.Fuzz.params =
        {
          Cals_verify.Fuzz.seed = 3;
          family = Cals_verify.Fuzz.Pla;
          inputs = 6;
          outputs = 3;
          size = 12;
        };
      stage = "none";
      detail = "smoke";
      shrink_steps = 0;
    };
  check_exit "fuzz --replay" 0
    (Printf.sprintf "%s fuzz --replay cli-repro.txt" cals)

let test_serve () =
  (* One-shot spool drain: two jobs, one of them respooling the golden
     BLIF through the service. *)
  let spool = "cli-spool" in
  (try Unix.mkdir spool 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat spool "jobs.json") in
  output_string oc
    (Printf.sprintf
       "{\"id\":\"cli-blif\",\"blif\":\"%s\",\"k_schedule\":[0,0.001]}\n\
        {\"id\":\"cli-wl\",\"workload\":{\"family\":\"pla\",\"seed\":3,\"inputs\":6,\"outputs\":3,\"size\":12},\"checks\":\"cheap\"}\n"
       blif);
  close_out oc;
  check_exit "serve drain" 0
    (Printf.sprintf "%s serve --spool %s --out cli-serve-out -j 2" cals spool);
  Alcotest.(check bool) "prints the drain summary" true
    (contains ~needle:"2 submitted, 2 completed" (logged ()));
  List.iter (check_file "serve")
    [
      "cli-serve-out/cli-blif/metrics.json";
      "cli-serve-out/cli-blif/mapped.v";
      "cli-serve-out/cli-wl/metrics.json";
      "cli-serve-out/summary.json";
    ];
  (* No job source is a usage error. *)
  check_exit "serve without a source" 2 (Printf.sprintf "%s serve" cals)

(* The fleet flags: a 2-worker sharded drain with a persistent cache
   dir works end to end twice (the second run restart-warm), and every
   bad-flag path is a clean usage error, exit 2. *)
let test_serve_fleet () =
  let spool () =
    let dir = "cli-fleet-spool" in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let oc = open_out (Filename.concat dir "jobs.json") in
    output_string oc
      ("{\"id\":\"fleet-1\",\"workload\":{\"family\":\"pla\",\"seed\":3,\"inputs\":6,\"outputs\":3,\"size\":12},\"k_schedule\":[0,0.001]}\n\
        {\"id\":\"fleet-2\",\"workload\":{\"family\":\"pla\",\"seed\":4,\"inputs\":6,\"outputs\":3,\"size\":12},\"k_schedule\":[0,0.001]}\n");
    close_out oc;
    dir
  in
  check_exit "fleet drain" 0
    (Printf.sprintf "%s serve --spool %s --out cli-fleet-out --workers 2 --cache-dir cli-fleet-cache"
       cals (spool ()));
  Alcotest.(check bool) "prints the fleet summary" true
    (contains ~needle:"2 submitted, 2 completed" (logged ())
    && contains ~needle:"worker restarts" (logged ()));
  List.iter (check_file "fleet")
    [
      "cli-fleet-out/fleet-1/mapped.v";
      "cli-fleet-out/fleet-2/mapped.v";
      "cli-fleet-out/summary.json";
    ];
  Alcotest.(check bool) "cache dir populated" true
    (Array.length (Sys.readdir "cli-fleet-cache") > 0);
  (* Restart: the same drain again warms from the cache dir. *)
  check_exit "fleet drain, warm" 0
    (Printf.sprintf "%s serve --spool %s --out cli-fleet-warm --workers 2 --cache-dir cli-fleet-cache"
       cals (spool ()));
  check_file "fleet warm" "cli-fleet-warm/fleet-1/metrics.json";
  (* Error paths are usage errors, before any worker is spawned. *)
  check_exit "bad --listen address" 2
    (Printf.sprintf "%s serve --spool cli-fleet-spool --workers 2 --listen bad:addr:99x"
       cals);
  Alcotest.(check bool) "says which address is bad" true
    (contains ~needle:"bad --listen" (logged ()));
  let oc = open_out "cli-fleet-notadir" in
  close_out oc;
  check_exit "unwritable --cache-dir" 2
    (Printf.sprintf "%s serve --spool cli-fleet-spool --cache-dir cli-fleet-notadir/sub"
       cals);
  Alcotest.(check bool) "says which dir is unusable" true
    (contains ~needle:"unusable --cache-dir" (logged ()));
  check_exit "--listen without --workers" 2
    (Printf.sprintf "%s serve --listen unix:cli-fleet.sock" cals)

let test_bad_usage () =
  let code = run (Printf.sprintf "%s no-such-subcommand" cals) in
  Alcotest.(check bool) "unknown subcommand fails" true (code <> 0);
  let code = run (Printf.sprintf "%s flow" cals) in
  Alcotest.(check bool) "flow without input fails" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "smoke",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "flow" `Quick test_flow;
          Alcotest.test_case "flow-orchestrate" `Quick test_flow_orchestrate;
          Alcotest.test_case "sta" `Quick test_sta;
          Alcotest.test_case "lib" `Quick test_lib;
          Alcotest.test_case "fuzz" `Quick test_fuzz;
          Alcotest.test_case "serve" `Quick test_serve;
          Alcotest.test_case "serve-fleet" `Quick test_serve_fleet;
          Alcotest.test_case "bad-usage" `Quick test_bad_usage;
        ] );
    ]
