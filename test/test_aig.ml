(* AIG substrate: mk_and canonicalization, conversion round trips
   (miter-checked), pass equivalence/determinism, and the golden-corpus
   strash reduction pins. *)

open Cals_logic
module Rng = Cals_util.Rng
module Equiv = Cals_verify.Equiv

let rng () = Rng.create 0xA16

(* ------------------------------------------------------------------ *)
(* mk_and canonicalization                                             *)
(* ------------------------------------------------------------------ *)

let test_literal_packing () =
  Alcotest.(check int) "const false" 0 Aig.const_false;
  Alcotest.(check int) "const true" 1 Aig.const_true;
  Alcotest.(check int) "pack" 7 (Aig.lit 3 true);
  Alcotest.(check int) "node" 3 (Aig.lit_node 7);
  Alcotest.(check bool) "compl" true (Aig.lit_compl 7);
  Alcotest.(check int) "neg" 6 (Aig.neg 7);
  Alcotest.(check int) "neg involutive" 7 (Aig.neg (Aig.neg 7))

let test_mk_and_rules () =
  let t = Aig.create ~pi_names:[| "a"; "b" |] () in
  let a = Aig.pi t 0 and b = Aig.pi t 1 in
  Alcotest.(check int) "x & 0" Aig.const_false (Aig.mk_and t a Aig.const_false);
  Alcotest.(check int) "x & 1" a (Aig.mk_and t a Aig.const_true);
  Alcotest.(check int) "x & x" a (Aig.mk_and t a a);
  Alcotest.(check int) "x & ~x" Aig.const_false (Aig.mk_and t a (Aig.neg a));
  Alcotest.(check int) "no node allocated yet" 0 (Aig.num_nodes t);
  let ab = Aig.mk_and t a b in
  Alcotest.(check int) "strash: a&b == b&a" ab (Aig.mk_and t b a);
  Alcotest.(check int) "one node" 1 (Aig.num_nodes t);
  let nanb = Aig.mk_and t (Aig.neg a) (Aig.neg b) in
  Alcotest.(check bool) "distinct phased pair" true (ab <> nanb);
  Alcotest.(check int) "two nodes" 2 (Aig.num_nodes t)

let test_strash_off () =
  let t = Aig.create ~strash:false ~pi_names:[| "a"; "b" |] () in
  let a = Aig.pi t 0 and b = Aig.pi t 1 in
  let x = Aig.mk_and t a b and y = Aig.mk_and t a b in
  Alcotest.(check bool) "duplicates kept" true (x <> y);
  Alcotest.(check int) "two nodes" 2 (Aig.num_nodes t);
  Aig.set_output t "f" x;
  Aig.set_output t "g" y;
  let s = Aig.apply Aig.Strash t in
  Alcotest.(check int) "strash merges" 1 (Aig.num_ands s)

let test_simulate () =
  let t = Aig.create ~pi_names:[| "a"; "b" |] () in
  let a = Aig.pi t 0 and b = Aig.pi t 1 in
  Aig.set_output t "and" (Aig.mk_and t a b);
  Aig.set_output t "or" (Aig.mk_or t a b);
  Aig.set_output t "true" Aig.const_true;
  let out = Aig.simulate t [| 0b1100L; 0b1010L |] in
  Alcotest.(check int64) "and" 0b1000L (Int64.logand out.(0) 0xFL);
  Alcotest.(check int64) "or" 0b1110L (Int64.logand out.(1) 0xFL);
  Alcotest.(check int64) "const" (-1L) out.(2)

(* ------------------------------------------------------------------ *)
(* Conversion + pass equivalence over the fuzz substrate               *)
(* ------------------------------------------------------------------ *)

let fuzz_network seed =
  let family = if seed land 1 = 0 then `Pla else `Multilevel in
  let inputs = 4 + (seed mod 7) in
  let outputs = 2 + (seed mod 4) in
  let size = 6 + (seed mod 18) in
  Cals_workload.Gen.of_fuzz ~family ~seed ~inputs ~outputs ~size

let check_equiv ~what a b =
  match Equiv.check ~rng:(rng ()) a b with
  | Ok () -> true
  | Error cex ->
    Printf.printf "%s: %s\n" what (Equiv.counterexample_to_string cex);
    false

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

let qcheck_round_trip =
  QCheck.Test.make ~name:"aig round trip is miter-equivalent" ~count:60
    arb_seed (fun seed ->
      let net = fuzz_network seed in
      let back = Aig.to_network (Aig.of_network net) in
      check_equiv ~what:"round trip"
        (Equiv.of_network ~label:"network" net)
        (Equiv.of_network ~label:"aig round trip" back))

let qcheck_passes_preserve =
  QCheck.Test.make ~name:"every pass sequence is miter-equivalent" ~count:40
    arb_seed (fun seed ->
      let net = fuzz_network seed in
      let sequences =
        [ Aig.all_passes;
          [ Aig.Rewrite; Aig.Balance; Aig.Rewrite ];
          [ Aig.Cse; Aig.Strash; Aig.Balance ];
          [ Aig.Dce; Aig.Constprop ] ]
      in
      List.for_all
        (fun passes ->
          let opt = Aig.run passes net in
          check_equiv ~what:"passes"
            (Equiv.of_network ~label:"network" net)
            (Equiv.of_network ~label:"optimized" opt))
        sequences)

let qcheck_subject_projection =
  QCheck.Test.make ~name:"aig subject projection is miter-equivalent"
    ~count:40 arb_seed (fun seed ->
      let net = fuzz_network seed in
      let t = Aig.of_network net in
      check_equiv ~what:"subject"
        (Equiv.of_network ~label:"network" net)
        (Equiv.of_subject ~label:"aig subject" (Aig.to_subject t)))

let qcheck_simulate_agrees =
  QCheck.Test.make ~name:"aig simulate agrees with network simulate"
    ~count:60 arb_seed (fun seed ->
      let net = fuzz_network seed in
      let t = Aig.of_network net in
      check_equiv ~what:"simulate"
        (Equiv.of_network ~label:"network" net)
        { label = "aig";
          pi_names = Aig.pi_names t;
          output_names = Array.map fst (Aig.outputs t);
          simulate = Aig.simulate t })

let qcheck_balance_depth =
  QCheck.Test.make ~name:"balance never deepens the graph" ~count:40
    arb_seed (fun seed ->
      let t = Aig.of_network (fuzz_network seed) in
      Aig.depth (Aig.apply Aig.Balance t) <= Aig.depth t)

let qcheck_pass_determinism =
  QCheck.Test.make ~name:"pass pipelines are deterministic" ~count:30
    arb_seed (fun seed ->
      let net = fuzz_network seed in
      let dump n =
        let buf = Buffer.create 256 in
        List.iter
          (fun i ->
            let node = Network.node n i in
            Buffer.add_string buf (Sop.to_string node.Network.sop);
            Array.iter
              (fun s ->
                Buffer.add_string buf
                  (match s with
                  | Network.Pi p -> Printf.sprintf " p%d" p
                  | Network.Node m -> Printf.sprintf " n%d" m))
              node.Network.fanins)
          (Network.topo_order n);
        Array.iter
          (fun (name, s) ->
            Buffer.add_string buf
              (match s with
              | Network.Pi p -> Printf.sprintf " %s=p%d" name p
              | Network.Node m -> Printf.sprintf " %s=n%d" name m))
          (Network.outputs n);
        Buffer.contents buf
      in
      let a = dump (Aig.run Aig.all_passes net) in
      let b = dump (Aig.run Aig.all_passes net) in
      a = b)

(* ------------------------------------------------------------------ *)
(* Golden-corpus strash pins                                           *)
(* ------------------------------------------------------------------ *)

(* Node counts of the raw (strash:false) construction vs after the
   Strash pass, pinned per golden design: the regression guard on the
   structural-hashing reduction claim. Update deliberately if the
   factored-form expansion changes. *)
let golden_dir =
  Option.value (Sys.getenv_opt "CALS_GOLDEN_DIR") ~default:"golden"

let strash_pins =
  [ ("ml_control_10.blif", 44, 35);
    ("ml_deep_08.blif", 60, 47);
    ("pla_shared_08.blif", 334, 245);
    ("pla_small_06.blif", 182, 110);
    ("pla_wide_10.blif", 338, 289) ]

let test_golden_strash_reduction () =
  List.iter
    (fun (name, pin_raw, pin_strash) ->
      let path = Filename.concat golden_dir name in
      let net = Blif.read_file path in
      let raw = Aig.of_network ~strash:false net in
      let hashed = Aig.apply Aig.Strash raw in
      let before = Aig.num_nodes raw and after = Aig.num_ands hashed in
      Alcotest.(check int) (path ^ ": raw nodes") pin_raw before;
      Alcotest.(check int) (path ^ ": strashed nodes") pin_strash after;
      Alcotest.(check bool)
        (Printf.sprintf "%s: strash reduces (%d -> %d)" path before after)
        true
        (after < before);
      (* The strashed graph must match hash-consed construction. *)
      let direct = Aig.of_network net in
      Alcotest.(check int)
        (Printf.sprintf "%s: strash == construction hashing" path)
        (Aig.num_ands direct) after;
      let equiv =
        check_equiv ~what:path
          (Equiv.of_network ~label:"network" net)
          (Equiv.of_network ~label:"strashed" (Aig.to_network hashed))
      in
      Alcotest.(check bool) (path ^ ": equivalent") true equiv)
    strash_pins

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "aig"
    [ ( "literals",
        [ Alcotest.test_case "packing" `Quick test_literal_packing;
          Alcotest.test_case "mk_and rules" `Quick test_mk_and_rules;
          Alcotest.test_case "strash off" `Quick test_strash_off;
          Alcotest.test_case "simulate" `Quick test_simulate ] );
      ( "equivalence",
        [ qc qcheck_round_trip;
          qc qcheck_passes_preserve;
          qc qcheck_subject_projection;
          qc qcheck_simulate_agrees;
          qc qcheck_balance_depth;
          qc qcheck_pass_determinism ] );
      ( "golden",
        [ Alcotest.test_case "strash reduction pins" `Quick
            test_golden_strash_reduction ] ) ]
