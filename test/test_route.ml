module Rgrid = Cals_route.Rgrid
module Topology = Cals_route.Topology
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion
module Floorplan = Cals_place.Floorplan
module Geom = Cals_util.Geom
module Rng = Cals_util.Rng
module Grid2d = Cals_util.Grid2d

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib
let wire = Cals_cell.Library.wire lib
let fp = Floorplan.of_rows ~num_rows:20 ~sites_per_row:200 ~geometry

(* ------------------------- Rgrid ------------------------- *)

let test_rgrid_dimensions () =
  let g = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  Alcotest.(check bool) "cols" true (g.Rgrid.cols >= 2);
  Alcotest.(check bool) "rows" true (g.Rgrid.rows >= 2);
  Alcotest.(check (float 1e-6)) "gcell edge"
    (2.0 *. geometry.Cals_cell.Library.row_height)
    g.Rgrid.gcell_um

let test_rgrid_usage_overflow () =
  let g = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  let e = Rgrid.H (0, 0) in
  let cap = Rgrid.capacity g e in
  Alcotest.(check bool) "capacity positive" true (cap > 0.0);
  Alcotest.(check (float 1e-9)) "no overflow" 0.0 (Rgrid.overflow g e);
  Rgrid.add_usage g e (cap +. 2.0);
  Alcotest.(check (float 1e-9)) "overflow 2" 2.0 (Rgrid.overflow g e);
  Alcotest.(check (float 1e-9)) "total overflow" 2.0 (Rgrid.total_overflow g);
  Alcotest.(check int) "one overflowed edge" 1 (List.length (Rgrid.overflowed_edges g));
  Rgrid.reset_usage g;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Rgrid.total_overflow g)

let test_rgrid_density_reduces_capacity () =
  let g0 = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  let dense = Grid2d.create ~cols:g0.Rgrid.cols ~rows:g0.Rgrid.rows 0.9 in
  let g1 = Rgrid.create ~floorplan:fp ~wire ~layers:3 ~density:dense () in
  let e = Rgrid.H (1, 1) in
  Alcotest.(check bool) "dense capacity smaller" true
    (Rgrid.capacity g1 e < Rgrid.capacity g0 e)

let test_rgrid_more_layers_more_capacity () =
  let g3 = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  let g5 = Rgrid.create ~floorplan:fp ~wire ~layers:5 () in
  let e = Rgrid.H (0, 0) and v = Rgrid.V (0, 0) in
  Alcotest.(check bool) "h capacity grows" true
    (Rgrid.capacity g5 e > Rgrid.capacity g3 e);
  Alcotest.(check bool) "v capacity grows" true
    (Rgrid.capacity g5 v > Rgrid.capacity g3 v)

let test_rgrid_point_mapping () =
  let g = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  Alcotest.(check (pair int int)) "origin" (0, 0)
    (Rgrid.gcell_of_point g (Geom.point 0.1 0.1));
  let c, r = Rgrid.gcell_of_point g (Geom.point 1e9 1e9) in
  Alcotest.(check (pair int int)) "clamped" (g.Rgrid.cols - 1, g.Rgrid.rows - 1) (c, r);
  let center = Rgrid.center_of_gcell g (1, 2) in
  Alcotest.(check (pair int int)) "roundtrip" (1, 2) (Rgrid.gcell_of_point g center)

let test_rgrid_history () =
  let g = Rgrid.create ~floorplan:fp ~wire ~layers:3 () in
  let e = Rgrid.V (2, 3) in
  Rgrid.add_history g e 1.5;
  Alcotest.(check (float 1e-9)) "history" 1.5 (Rgrid.history g e)

(* ------------------------- Topology ------------------------- *)

let test_mst_tree_properties () =
  let pins = [ (0, 0); (5, 0); (0, 5); (9, 9); (5, 0) ] in
  let segs = Topology.mst_segments pins in
  (* 4 distinct pins -> 3 edges. *)
  Alcotest.(check int) "spanning edges" 3 (List.length segs);
  (* Connectivity via union-find over pin indices. *)
  let distinct = List.sort_uniq compare pins in
  let idx p = Option.get (List.find_index (( = ) p) distinct) in
  let uf = Cals_util.Union_find.create (List.length distinct) in
  List.iter
    (fun s -> ignore (Cals_util.Union_find.union uf (idx s.Topology.src) (idx s.Topology.dst)))
    segs;
  Alcotest.(check int) "connected" 1 (Cals_util.Union_find.count uf)

let test_mst_short () =
  Alcotest.(check int) "empty" 0 (List.length (Topology.mst_segments []));
  Alcotest.(check int) "single" 0 (List.length (Topology.mst_segments [ (1, 1) ]))

let test_mst_shorter_than_star () =
  let rng = Rng.create 31 in
  for _ = 1 to 20 do
    let pins = List.init 8 (fun _ -> (Rng.int rng 30, Rng.int rng 30)) in
    match List.sort_uniq compare pins with
    | [] | [ _ ] -> ()
    | (driver :: _) as distinct ->
      let len segs =
        List.fold_left (fun acc s -> acc + Topology.segment_length s) 0 segs
      in
      let mst = len (Topology.mst_segments distinct) in
      let star = len (Topology.star_segments driver distinct) in
      if mst > star then Alcotest.failf "mst %d > star %d" mst star
  done

(* ------------------------- Router ------------------------- *)

let test_route_empty_and_trivial () =
  let r = Router.route_pins ~floorplan:fp ~wire [| []; [ Geom.point 5.0 5.0 ] |] in
  Alcotest.(check int) "no segments" 0 r.Router.num_segments;
  Alcotest.(check (float 1e-9)) "no wire" 0.0 r.Router.wirelength_um;
  Alcotest.(check int) "no violations" 0 r.Router.violations

let test_route_two_pins () =
  let a = Geom.point 5.0 5.0 in
  let b = Geom.point 100.0 80.0 in
  let r = Router.route_pins ~floorplan:fp ~wire [| [ a; b ] |] in
  Alcotest.(check int) "one segment" 1 r.Router.num_segments;
  Alcotest.(check bool) "wirelength covers manhattan" true
    (r.Router.wirelength_um >= Geom.manhattan a b -. (2.0 *. r.Router.grid.Rgrid.gcell_um));
  Alcotest.(check int) "routes cleanly" 0 r.Router.violations

let test_route_usage_conservation () =
  (* Total usage = total routed gcell crossings. *)
  let rng = Rng.create 33 in
  let nets =
    Array.init 30 (fun _ ->
        List.init (Rng.range rng 2 5) (fun _ ->
            Geom.point
              (Rng.float rng fp.Floorplan.die_width)
              (Rng.float rng fp.Floorplan.die_height)))
  in
  let r = Router.route_pins ~floorplan:fp ~wire nets in
  let total_usage = ref 0.0 in
  Rgrid.iter_edges r.Router.grid (fun e ->
      total_usage := !total_usage +. Rgrid.usage r.Router.grid e);
  let crossings = r.Router.wirelength_um /. r.Router.grid.Rgrid.gcell_um in
  Alcotest.(check (float 0.5)) "usage = crossings" crossings !total_usage

let test_route_net_lengths_sum () =
  let rng = Rng.create 34 in
  let nets =
    Array.init 10 (fun _ ->
        List.init 3 (fun _ ->
            Geom.point
              (Rng.float rng fp.Floorplan.die_width)
              (Rng.float rng fp.Floorplan.die_height)))
  in
  let r = Router.route_pins ~floorplan:fp ~wire nets in
  let sum = Array.fold_left ( +. ) 0.0 r.Router.net_length_um in
  Alcotest.(check (float 1e-6)) "lengths sum to total" r.Router.wirelength_um sum

let test_route_overload_detected () =
  (* Force many long nets through a 2-gcell-tall corridor. *)
  let tiny = Floorplan.of_rows ~num_rows:4 ~sites_per_row:400 ~geometry in
  let nets =
    Array.init 400 (fun i ->
        let y = float_of_int (i mod 4) +. 2.0 in
        [ Geom.point 1.0 y; Geom.point (tiny.Floorplan.die_width -. 1.0) y ])
  in
  let r = Router.route_pins ~floorplan:tiny ~wire nets in
  Alcotest.(check bool) "overflow detected" true (r.Router.violations > 0)

let test_route_negotiation_helps () =
  let rng = Rng.create 35 in
  let nets =
    Array.init 150 (fun _ ->
        List.init 2 (fun _ ->
            Geom.point
              (Rng.float rng fp.Floorplan.die_width)
              (Rng.float rng fp.Floorplan.die_height)))
  in
  let no_nego = { Router.default_config with reroute_iterations = 0 } in
  let nego = { Router.default_config with reroute_iterations = 16 } in
  let r0 = Router.route_pins ~config:no_nego ~floorplan:fp ~wire nets in
  let r1 = Router.route_pins ~config:nego ~floorplan:fp ~wire nets in
  Alcotest.(check bool)
    (Printf.sprintf "negotiation %d <= initial %d" r1.Router.violations
       r0.Router.violations)
    true
    (r1.Router.violations <= r0.Router.violations)

let test_route_star_config () =
  let rng = Rng.create 36 in
  let nets =
    Array.init 20 (fun _ ->
        List.init 4 (fun _ ->
            Geom.point
              (Rng.float rng fp.Floorplan.die_width)
              (Rng.float rng fp.Floorplan.die_height)))
  in
  let star = { Router.default_config with star_topology = true } in
  let r_star = Router.route_pins ~config:star ~floorplan:fp ~wire nets in
  let r_mst = Router.route_pins ~floorplan:fp ~wire nets in
  Alcotest.(check bool) "star at least as long" true
    (r_star.Router.wirelength_um >= r_mst.Router.wirelength_um -. 1e-6)

(* ------------------------- Session & parallelism ------------------------- *)

(* Bit-exact result comparison: the contract of both the session replay
   cache and the wave-parallel negotiation is "identical result", so this
   compares every field, including the grid's usage arrays. *)
let check_same_result label (a : Router.result) (b : Router.result) =
  Alcotest.(check int) (label ^ ": violations") a.Router.violations
    b.Router.violations;
  Alcotest.(check (float 0.0)) (label ^ ": total overflow")
    a.Router.total_overflow b.Router.total_overflow;
  Alcotest.(check (float 0.0)) (label ^ ": wirelength") a.Router.wirelength_um
    b.Router.wirelength_um;
  Alcotest.(check (float 0.0)) (label ^ ": max utilization")
    a.Router.max_utilization b.Router.max_utilization;
  Alcotest.(check int) (label ^ ": segments") a.Router.num_segments
    b.Router.num_segments;
  Alcotest.(check (array (float 0.0))) (label ^ ": net lengths")
    a.Router.net_length_um b.Router.net_length_um;
  Alcotest.(check bool) (label ^ ": net gcells") true
    (a.Router.net_gcells = b.Router.net_gcells);
  Alcotest.(check int) (label ^ ": route count")
    (Array.length a.Router.routes)
    (Array.length b.Router.routes);
  Array.iteri
    (fun i (ra : Router.route) ->
      let rb = b.Router.routes.(i) in
      if ra.Router.net <> rb.Router.net || ra.Router.gends <> rb.Router.gends
      then Alcotest.failf "%s: route %d metadata differs" label i;
      if ra.Router.edges <> rb.Router.edges then
        Alcotest.failf "%s: route %d path differs" label i)
    a.Router.routes;
  Alcotest.(check (array (float 0.0))) (label ^ ": husage")
    a.Router.grid.Rgrid.husage b.Router.grid.Rgrid.husage;
  Alcotest.(check (array (float 0.0))) (label ^ ": vusage")
    a.Router.grid.Rgrid.vusage b.Router.grid.Rgrid.vusage

(* A congested workload (narrow corridor, long parallel nets) so the
   negotiation loop actually runs waves of rip-up and reroute. *)
let congested_floorplan = Floorplan.of_rows ~num_rows:8 ~sites_per_row:400 ~geometry

let congested_nets seed n =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      if i mod 3 = 0 then begin
        let y = float_of_int (i mod 8) +. 2.0 in
        [
          Geom.point 1.0 y;
          Geom.point (congested_floorplan.Floorplan.die_width -. 1.0) y;
        ]
      end
      else
        List.init 2 (fun _ ->
            Geom.point
              (Rng.float rng congested_floorplan.Floorplan.die_width)
              (Rng.float rng congested_floorplan.Floorplan.die_height)))

let test_route_pool_matches_sequential () =
  let nets = congested_nets 40 240 in
  let r_seq = Router.route_pins ~floorplan:congested_floorplan ~wire nets in
  Alcotest.(check bool) "workload is congested" true (r_seq.Router.violations > 0);
  let pool = Cals_util.Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Cals_util.Pool.shutdown pool) @@ fun () ->
  let r_par =
    Router.route_pins ~pool ~floorplan:congested_floorplan ~wire nets
  in
  check_same_result "pool==seq" r_seq r_par

let test_route_session_replay () =
  let nets = congested_nets 41 150 in
  let session = Router.Session.create () in
  let route () =
    Router.route_pins ~session ~floorplan:congested_floorplan ~wire nets
  in
  let r1 = route () in
  let r2 = route () in
  check_same_result "replay==cold" r1 r2;
  let cold = Router.route_pins ~floorplan:congested_floorplan ~wire nets in
  check_same_result "session==no-session" cold r1;
  let s = Router.Session.stats session in
  Alcotest.(check int) "two calls" 2 s.Router.Session.route_calls;
  Alcotest.(check int) "one replay" 1 s.Router.Session.replays;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Router.Session.warm_hit_rate s);
  Alcotest.(check bool) "arena peak recorded" true
    (s.Router.Session.arena_bytes > 0);
  Router.Session.invalidate session;
  let r3 = route () in
  check_same_result "post-invalidate==cold" cold r3;
  let s' = Router.Session.stats session in
  Alcotest.(check int) "invalidate forces a cold route" 1
    (s'.Router.Session.replays)

(* A cancellation fired mid-negotiation must unwind without corrupting
   the session: the next call on the same session (which reuses the
   pooled arena the cancelled call abandoned) must equal a fresh cold
   route, with and without a pool. *)
let test_route_cancel_mid_negotiation () =
  let nets = congested_nets 42 240 in
  let session = Router.Session.create () in
  let checks = ref 0 in
  let cancel =
    Cals_util.Cancel.create
      ~expires:(fun () ->
        incr checks;
        !checks > 25)
      ()
  in
  (match
     Router.route_pins ~session ~cancel ~floorplan:congested_floorplan ~wire
       nets
   with
  | _ -> Alcotest.fail "expected the countdown token to cancel the route"
  | exception Cals_util.Cancel.Cancelled _ -> ());
  Alcotest.(check bool) "cancelled mid-run" true (!checks > 25);
  let cold = Router.route_pins ~floorplan:congested_floorplan ~wire nets in
  let warm =
    Router.route_pins ~session ~floorplan:congested_floorplan ~wire nets
  in
  check_same_result "post-cancel session==cold" cold warm;
  let pool = Cals_util.Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Cals_util.Pool.shutdown pool) @@ fun () ->
  let checks2 = ref 0 in
  let cancel2 =
    Cals_util.Cancel.create
      ~expires:(fun () ->
        incr checks2;
        !checks2 > 25)
      ()
  in
  (match
     Router.route_pins ~session ~pool ~cancel:cancel2
       ~floorplan:congested_floorplan ~wire (congested_nets 43 240)
   with
  | _ -> Alcotest.fail "expected cancellation under the pool"
  | exception Cals_util.Cancel.Cancelled _ -> ());
  let warm2 =
    Router.route_pins ~session ~floorplan:congested_floorplan ~wire nets
  in
  check_same_result "post-pool-cancel session==cold" cold warm2

(* ------------------------- Congestion ------------------------- *)

let test_congestion_report () =
  let rng = Rng.create 37 in
  let nets =
    Array.init 50 (fun _ ->
        List.init 3 (fun _ ->
            Geom.point
              (Rng.float rng fp.Floorplan.die_width)
              (Rng.float rng fp.Floorplan.die_height)))
  in
  let r = Router.route_pins ~floorplan:fp ~wire nets in
  let report = Congestion.of_result r in
  Alcotest.(check int) "violations match" r.Router.violations report.Congestion.violations;
  Alcotest.(check bool) "fraction in [0,1]" true
    (report.Congestion.congested_gcell_fraction >= 0.0
    && report.Congestion.congested_gcell_fraction <= 1.0);
  Alcotest.(check bool) "acceptable when clean" true
    (report.Congestion.violations > 0 || Congestion.acceptable report);
  let map = Congestion.ascii_map r in
  Alcotest.(check bool) "map non-empty" true (String.length map > 0);
  Alcotest.(check bool) "summary mentions violations" true
    (String.length (Congestion.summary report) > 0)

let () =
  Alcotest.run "route"
    [
      ( "rgrid",
        [
          Alcotest.test_case "dimensions" `Quick test_rgrid_dimensions;
          Alcotest.test_case "usage/overflow" `Quick test_rgrid_usage_overflow;
          Alcotest.test_case "density blocks M1" `Quick
            test_rgrid_density_reduces_capacity;
          Alcotest.test_case "layer budget" `Quick test_rgrid_more_layers_more_capacity;
          Alcotest.test_case "point mapping" `Quick test_rgrid_point_mapping;
          Alcotest.test_case "history" `Quick test_rgrid_history;
        ] );
      ( "topology",
        [
          Alcotest.test_case "mst tree" `Quick test_mst_tree_properties;
          Alcotest.test_case "degenerate" `Quick test_mst_short;
          Alcotest.test_case "mst <= star" `Quick test_mst_shorter_than_star;
        ] );
      ( "router",
        [
          Alcotest.test_case "empty/trivial" `Quick test_route_empty_and_trivial;
          Alcotest.test_case "two pins" `Quick test_route_two_pins;
          Alcotest.test_case "usage conservation" `Quick test_route_usage_conservation;
          Alcotest.test_case "net length sum" `Quick test_route_net_lengths_sum;
          Alcotest.test_case "overload detected" `Quick test_route_overload_detected;
          Alcotest.test_case "negotiation helps" `Quick test_route_negotiation_helps;
          Alcotest.test_case "star topology" `Quick test_route_star_config;
        ] );
      ( "session",
        [
          Alcotest.test_case "pool == sequential" `Quick
            test_route_pool_matches_sequential;
          Alcotest.test_case "session replay" `Quick test_route_session_replay;
          Alcotest.test_case "cancel mid-negotiation" `Quick
            test_route_cancel_mid_negotiation;
        ] );
      ("congestion", [ Alcotest.test_case "report" `Quick test_congestion_report ]);
    ]
