(* The incremental K-loop engine: warm-start re-mapping must be
   bit-identical to cold-start mapping at every K, with a nonzero cache
   hit rate, and the hoisted equivalence-seed derivation must keep
   checked runs deterministic regardless of cache reuse. *)

module Incremental = Cals_core.Incremental
module Mapper = Cals_core.Mapper
module Cover = Cals_core.Cover
module Partition = Cals_core.Partition
module Flow = Cals_core.Flow
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Congestion = Cals_route.Congestion
module Router = Cals_route.Router
module Check = Cals_verify.Check
module Invariant = Cals_verify.Invariant
module Gen = Cals_workload.Gen
module Rng = Cals_util.Rng

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib

(* ---------------- Workload substrate ---------------- *)

type workload = {
  subject : Subject.t;
  floorplan : Floorplan.t;
  positions : Cals_util.Geom.point array;
}

let workload_of ~family ~seed ~inputs ~outputs ~size =
  let net = Gen.of_fuzz ~family ~seed ~inputs ~outputs ~size in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let floorplan =
    Floorplan.for_area
      ~core_area:(float_of_int (max 1 (Subject.num_gates subject)) *. 5.0)
      ~utilization:0.45 ~aspect:1.0 ~geometry
  in
  let positions =
    Placement.place_subject subject ~floorplan ~rng:(Rng.create (seed + 1))
  in
  { subject; floorplan; positions }

(* ---------------- Bit-identity oracle ---------------- *)

let mapped_identical (a : Mapped.t) (b : Mapped.t) =
  a.Mapped.pi_names = b.Mapped.pi_names
  && a.Mapped.outputs = b.Mapped.outputs
  && Array.length a.Mapped.instances = Array.length b.Mapped.instances
  && Array.for_all2
       (fun (x : Mapped.instance) (y : Mapped.instance) ->
         x.Mapped.cell.Cals_cell.Cell.name = y.Mapped.cell.Cals_cell.Cell.name
         && x.Mapped.fanins = y.Mapped.fanins
         && x.Mapped.seed = y.Mapped.seed)
       a.Mapped.instances b.Mapped.instances

(* One workload, every K of the paper's ladder: the session result must be
   bit-identical to a cold [Mapper.map] — same netlist, same area, same
   stats — and, spot-checked, the same seeded-placement wirelength. *)
let check_sweep_identical ?(hpwl_ks = [ 0.0; 0.001; 0.1 ]) w =
  let session =
    Incremental.create ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  List.iter
    (fun k ->
      let warm = Incremental.map session ~k in
      let cold =
        Mapper.map w.subject ~library:lib ~positions:w.positions
          (Mapper.congestion_aware ~k)
      in
      if not (mapped_identical warm.Mapper.mapped cold.Mapper.mapped) then
        QCheck.Test.fail_reportf "K=%g: warm netlist differs from cold" k;
      if warm.Mapper.stats <> cold.Mapper.stats then
        QCheck.Test.fail_reportf
          "K=%g: stats differ (warm %d cells %.3f um2 %d matches, cold %d \
           cells %.3f um2 %d matches)"
          k warm.Mapper.stats.Mapper.cells warm.Mapper.stats.Mapper.cell_area
          warm.Mapper.stats.Mapper.matches_evaluated
          cold.Mapper.stats.Mapper.cells cold.Mapper.stats.Mapper.cell_area
          cold.Mapper.stats.Mapper.matches_evaluated;
      if List.mem k hpwl_ks then begin
        let hpwl (r : Mapper.result) =
          match
            Placement.place_mapped_seeded r.Mapper.mapped
              ~floorplan:w.floorplan
          with
          | exception Cals_place.Legalize.Overflow _ -> infinity
          | p -> p.Placement.hpwl
        in
        let hw = hpwl warm and hc = hpwl cold in
        if hw <> hc && not (hw <> hw && hc <> hc) then
          QCheck.Test.fail_reportf "K=%g: hpwl differs (warm %f, cold %f)" k hw
            hc
      end)
    Flow.default_k_schedule;
  let stats = Incremental.stats session in
  if stats.Incremental.hits = 0 then
    QCheck.Test.fail_reportf "no cache hits across %d K points"
      (List.length Flow.default_k_schedule);
  true

let prop_incremental_bit_identical =
  QCheck.Test.make ~count:12
    ~name:"incremental session == cold map at every K of the schedule"
    QCheck.(
      quad (int_range 0 10_000) (int_range 4 9) (int_range 2 6)
        (int_range 12 40))
    (fun (seed, inputs, outputs, size) ->
      let family = if seed land 1 = 0 then `Pla else `Multilevel in
      check_sweep_identical
        (workload_of ~family ~seed ~inputs ~outputs ~size))

(* Pinned regression seeds: tuples that once covered interesting shapes
   (single-tree subjects, heavy multi-fanout duplication, BUF chains).
   Deterministic, so they double as a fast smoke of the property above. *)
let test_regression_seeds () =
  List.iter
    (fun (family, seed, inputs, outputs, size) ->
      ignore
        (check_sweep_identical
           (workload_of ~family ~seed ~inputs ~outputs ~size)))
    [
      (`Pla, 3, 6, 3, 18);
      (`Pla, 42, 8, 6, 36);
      (`Multilevel, 7, 5, 4, 24);
      (`Multilevel, 101, 9, 2, 40);
      (`Pla, 2024, 4, 2, 12);
    ]

(* ---------------- Cache behavior ---------------- *)

let test_cache_hit_rate () =
  let w = workload_of ~family:`Pla ~seed:11 ~inputs:8 ~outputs:6 ~size:30 in
  let session =
    Incremental.create ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  let ks = Flow.default_k_schedule in
  List.iter (fun k -> ignore (Incremental.map session ~k)) ks;
  let s = Incremental.stats session in
  Alcotest.(check int) "one map per K" (List.length ks) s.Incremental.maps;
  Alcotest.(check int) "first sweep misses every tree" s.Incremental.trees
    s.Incremental.misses;
  Alcotest.(check int) "every later sweep hits every tree"
    ((List.length ks - 1) * s.Incremental.trees)
    s.Incremental.hits;
  let rate = Incremental.hit_rate s in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate %.3f above 0.9" rate)
    true (rate > 0.9)

let test_warm_then_seal_only_hits () =
  let w = workload_of ~family:`Multilevel ~seed:5 ~inputs:7 ~outputs:4 ~size:28 in
  let session =
    Incremental.create ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  Incremental.warm session;
  Incremental.seal session;
  let s0 = Incremental.stats session in
  Alcotest.(check int) "warm missed every tree" s0.Incremental.trees
    s0.Incremental.misses;
  List.iter
    (fun k -> ignore (Incremental.map session ~k))
    [ 0.0; 0.001; 0.01; 1.0 ];
  let s = Incremental.stats session in
  Alcotest.(check int) "no post-seal misses" s0.Incremental.misses
    s.Incremental.misses;
  Alcotest.(check int) "sealed lookups all hit" (4 * s.Incremental.trees)
    s.Incremental.hits

let test_fingerprints_track_partition () =
  (* Different partition strategies carve different trees; their
     fingerprints must differ so a cache could never serve a Dagon tree
     to a PDP session (invalidation-by-keying). *)
  let w = workload_of ~family:`Pla ~seed:11 ~inputs:8 ~outputs:6 ~size:30 in
  let make strategy =
    Incremental.create
      ~options:{ (Mapper.congestion_aware ~k:0.0) with Mapper.strategy }
      ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  let pdp = Incremental.fingerprints (make Partition.Pdp) in
  let dagon = Incremental.fingerprints (make Partition.Dagon) in
  Alcotest.(check bool) "strategies partition differently" true (pdp <> dagon);
  (* And per session the fingerprints are stable (pure in the inputs). *)
  let pdp' = Incremental.fingerprints (make Partition.Pdp) in
  Alcotest.(check bool) "fingerprints deterministic" true (pdp = pdp')

(* ---------------- Route-session differential ---------------- *)

let route_result_identical (a : Router.result) (b : Router.result) =
  a.Router.violations = b.Router.violations
  && a.Router.total_overflow = b.Router.total_overflow
  && a.Router.wirelength_um = b.Router.wirelength_um
  && a.Router.net_length_um = b.Router.net_length_um
  && Array.length a.Router.routes = Array.length b.Router.routes
  && Array.for_all2
       (fun (x : Router.route) (y : Router.route) ->
         x.Router.net = y.Router.net
         && x.Router.gends = y.Router.gends
         && x.Router.edges = y.Router.edges)
       a.Router.routes b.Router.routes

(* Warm-vs-cold routing over the paper's full K ladder: every K point is
   evaluated twice, once through a shared router session (the warm path
   the flow takes) and once without one; the routed results must be
   bit-identical and every warm result must satisfy the routing
   invariants from first principles. *)
let check_route_sweep_identical w =
  let session =
    Incremental.create ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  let rsession = Incremental.route_session session in
  List.iter
    (fun k ->
      let eval ?session ?route_session () =
        Flow.evaluate_k ?session ?route_session ~subject:w.subject
          ~library:lib ~floorplan:w.floorplan ~positions:w.positions ~k ()
      in
      let _, (_, _, warm) = eval ~session ~route_session:rsession () in
      let _, (_, _, cold) = eval () in
      match (warm, cold) with
      | None, None -> ()
      | Some rw, Some rc ->
        if not (route_result_identical rw rc) then
          QCheck.Test.fail_reportf "K=%g: warm routing differs from cold" k;
        (match Invariant.check_routing ~usage:true rw with
        | Ok () -> ()
        | Error detail ->
          QCheck.Test.fail_reportf "K=%g: warm routing invariant: %s" k detail)
      | _ ->
        QCheck.Test.fail_reportf "K=%g: routing presence differs warm/cold" k)
    Flow.default_k_schedule;
  let s = Router.Session.stats rsession in
  if s.Router.Session.route_calls = 0 then
    QCheck.Test.fail_reportf "route session saw no calls";
  true

let prop_route_session_bit_identical =
  QCheck.Test.make ~count:6
    ~name:"router session == cold route at every K of the schedule"
    QCheck.(
      quad (int_range 0 10_000) (int_range 4 8) (int_range 2 5)
        (int_range 12 30))
    (fun (seed, inputs, outputs, size) ->
      let family = if seed land 1 = 0 then `Pla else `Multilevel in
      check_route_sweep_identical
        (workload_of ~family ~seed ~inputs ~outputs ~size))

let test_route_session_regression_seeds () =
  List.iter
    (fun (family, seed, inputs, outputs, size) ->
      ignore
        (check_route_sweep_identical
           (workload_of ~family ~seed ~inputs ~outputs ~size)))
    [ (`Pla, 9, 6, 3, 18); (`Multilevel, 17, 7, 4, 26) ]

(* The warm K sweep re-routes the same mapped netlist whenever consecutive
   K points map identically, so a full-schedule sweep through one session
   must replay at least once — this is the speedup mechanism. *)
let test_route_session_hit_rate () =
  let w = workload_of ~family:`Pla ~seed:11 ~inputs:8 ~outputs:6 ~size:30 in
  let session =
    Incremental.create ~subject:w.subject ~library:lib ~positions:w.positions ()
  in
  let rsession = Incremental.route_session session in
  List.iter
    (fun k ->
      ignore
        (Flow.evaluate_k ~session ~route_session:rsession ~subject:w.subject
           ~library:lib ~floorplan:w.floorplan ~positions:w.positions ~k ()))
    Flow.default_k_schedule;
  let s = Router.Session.stats rsession in
  Alcotest.(check bool)
    (Printf.sprintf "replays %d of %d calls" s.Router.Session.replays
       s.Router.Session.route_calls)
    true
    (s.Router.Session.replays > 0);
  Alcotest.(check bool) "hit rate in (0,1]" true
    (Router.Session.warm_hit_rate s > 0.0
    && Router.Session.warm_hit_rate s <= 1.0)

(* ---------------- Flow integration ---------------- *)

let outcome_signature (o : Flow.outcome) =
  ( List.map
      (fun (it : Flow.iteration) ->
        (it.Flow.k, it.Flow.cells, it.Flow.cell_area, it.Flow.hpwl_um,
         it.Flow.report))
      o.Flow.iterations,
    Option.map (fun (it : Flow.iteration) -> it.Flow.k) o.Flow.accepted )

let test_flow_incremental_identical_to_cold () =
  let w = workload_of ~family:`Pla ~seed:21 ~inputs:10 ~outputs:8 ~size:48 in
  let run incremental =
    Flow.run ~incremental ~subject:w.subject ~library:lib
      ~floorplan:w.floorplan ~rng:(Rng.create 22) ()
  in
  let inc = run true and cold = run false in
  Alcotest.(check bool) "same outcome signature" true
    (outcome_signature inc = outcome_signature cold);
  match (inc.Flow.mapped, cold.Flow.mapped) with
  | Some a, Some b ->
    Alcotest.(check bool) "same shipped netlist" true (mapped_identical a b)
  | None, None -> ()
  | _ -> Alcotest.fail "mapped presence differs"

(* Regression for the hoisted equivalence-seed derivation: the stimulus
   seed is a pure function of K, so Full-checked runs are identical with
   the cache on or off, and repeated evaluation of one K point never
   drifts. Before the hoist, a reordered or cached mapping phase could
   have moved the RNG derivation relative to other stateful work. *)
let test_equiv_seed_pure_in_k () =
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "seed stable at K=%g" k)
        (Flow.equiv_seed ~k) (Flow.equiv_seed ~k))
    Flow.default_k_schedule;
  Alcotest.(check bool) "distinct K, distinct stimulus" true
    (Flow.equiv_seed ~k:0.001 <> Flow.equiv_seed ~k:0.01)

let test_checked_runs_deterministic_across_cache_reuse () =
  let w = workload_of ~family:`Pla ~seed:33 ~inputs:9 ~outputs:7 ~size:40 in
  let run incremental =
    Flow.run ~checks:Check.Full ~incremental ~subject:w.subject ~library:lib
      ~floorplan:w.floorplan ~rng:(Rng.create 34) ()
  in
  let a = run true and b = run false and c = run true in
  Alcotest.(check bool) "full-checked warm == cold" true
    (outcome_signature a = outcome_signature b);
  Alcotest.(check bool) "full-checked warm repeatable" true
    (outcome_signature a = outcome_signature c)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "incremental"
    [
      ( "bit-identity",
        [
          qc prop_incremental_bit_identical;
          Alcotest.test_case "pinned regression seeds" `Quick
            test_regression_seeds;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit rate over a sweep" `Quick test_cache_hit_rate;
          Alcotest.test_case "warm+seal only hits" `Quick
            test_warm_then_seal_only_hits;
          Alcotest.test_case "fingerprints track the partition" `Quick
            test_fingerprints_track_partition;
        ] );
      ( "route-session",
        [
          qc prop_route_session_bit_identical;
          Alcotest.test_case "pinned route regression seeds" `Quick
            test_route_session_regression_seeds;
          Alcotest.test_case "replay rate over a sweep" `Quick
            test_route_session_hit_rate;
        ] );
      ( "flow",
        [
          Alcotest.test_case "incremental flow == cold flow" `Quick
            test_flow_incremental_identical_to_cold;
          Alcotest.test_case "equiv seed pure in K" `Quick
            test_equiv_seed_pure_in_k;
          Alcotest.test_case "checked runs immune to cache reuse" `Quick
            test_checked_runs_deterministic_across_cache_reuse;
        ] );
    ]
