module Rng = Cals_util.Rng
module Geom = Cals_util.Geom
module Pqueue = Cals_util.Pqueue
module Union_find = Cals_util.Union_find
module Pool = Cals_util.Pool
module Grid2d = Cals_util.Grid2d
module Tables = Cals_util.Tables

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------- Rng ------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_range_inclusive () =
  let rng = Rng.create 9 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let v = Rng.range rng 3 5 in
    if v < 3 || v > 5 then Alcotest.failf "out of range: %d" v;
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "hits lo" true !seen_lo;
  Alcotest.(check bool) "hits hi" true !seen_hi

let test_rng_sample_distinct () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let s = Rng.sample rng 10 30 in
    Alcotest.(check int) "length" 10 (List.length s);
    Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> if v < 0 || v >= 30 then Alcotest.fail "range") s
  done

let test_rng_sample_full () =
  let rng = Rng.create 12 in
  let s = Rng.sample rng 5 5 in
  Alcotest.(check (list int)) "permutation of all" [ 0; 1; 2; 3; 4 ]
    (List.sort compare s)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_float_bounds () =
  let rng = Rng.create 21 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.failf "float out of bounds: %f" v
  done

(* ------------------------- Geom ------------------------- *)

let test_manhattan () =
  check_float "manhattan" 7.0 (Geom.manhattan (Geom.point 1.0 2.0) (Geom.point 4.0 6.0))

let test_euclidean () =
  check_float "euclidean" 5.0 (Geom.euclidean (Geom.point 0.0 0.0) (Geom.point 3.0 4.0))

let test_center_of_mass () =
  let c = Geom.center_of_mass [ Geom.point 0.0 0.0; Geom.point 2.0 4.0 ] in
  check_float "x" 1.0 c.Geom.x;
  check_float "y" 2.0 c.Geom.y

let test_center_of_mass_weighted () =
  let c =
    Geom.center_of_mass_weighted
      [ (Geom.point 0.0 0.0, 1.0); (Geom.point 4.0 0.0, 3.0) ]
  in
  check_float "weighted x" 3.0 c.Geom.x

let test_bbox () =
  let b = Geom.bbox_of_points [ Geom.point 1.0 5.0; Geom.point 3.0 2.0 ] in
  check_float "half perimeter" 5.0 (Geom.half_perimeter b);
  Alcotest.(check bool) "contains" true (Geom.bbox_contains b (Geom.point 2.0 3.0));
  Alcotest.(check bool) "excludes" false (Geom.bbox_contains b (Geom.point 0.0 3.0));
  check_float "area" 6.0 (Geom.bbox_area b)

let test_clamp () =
  check_float "low" 1.0 (Geom.clamp 1.0 2.0 0.5);
  check_float "high" 2.0 (Geom.clamp 1.0 2.0 9.0);
  check_float "mid" 1.5 (Geom.clamp 1.0 2.0 1.5)

(* ------------------------- Pqueue ------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p (int_of_float p)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] (List.rev !popped)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Pqueue.push q 1.0 1;
  Alcotest.(check int) "length" 1 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_pqueue_duplicates () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "a";
  Pqueue.push q 1.0 "b";
  Pqueue.push q 0.5 "c";
  (match Pqueue.peek q with
  | Some (p, v) ->
    Alcotest.(check string) "peek min" "c" v;
    check_float "peek prio" 0.5 p
  | None -> Alcotest.fail "peek");
  Alcotest.(check int) "length 3" 3 (Pqueue.length q)

let pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let q = Pqueue.create () in
      List.iter (fun f -> Pqueue.push q f ()) floats;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let test_pqueue_push_pop_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 3;
  Pqueue.push q 1.0 1;
  Alcotest.(check (option (pair (float 1e-9) int))) "first min" (Some (1.0, 1))
    (Pqueue.pop q);
  Pqueue.push q 0.5 0;
  Pqueue.push q 2.0 2;
  Alcotest.(check (option (pair (float 1e-9) int))) "new min" (Some (0.5, 0))
    (Pqueue.pop q);
  Alcotest.(check (option (pair (float 1e-9) int))) "then 2" (Some (2.0, 2))
    (Pqueue.pop q);
  Alcotest.(check (option (pair (float 1e-9) int))) "then 3" (Some (3.0, 3))
    (Pqueue.pop q);
  Alcotest.(check bool) "drained" true (Pqueue.pop q = None)

let test_pqueue_clear_reuse () =
  let q = Pqueue.create () in
  for i = 0 to 99 do
    Pqueue.push q (float_of_int (100 - i)) i
  done;
  Pqueue.clear q;
  Alcotest.(check int) "cleared length" 0 (Pqueue.length q);
  Alcotest.(check bool) "cleared pop" true (Pqueue.pop q = None);
  Pqueue.push q 2.0 7;
  Pqueue.push q 1.0 9;
  Alcotest.(check (option (pair (float 1e-9) int))) "usable after clear"
    (Some (1.0, 9)) (Pqueue.pop q)

(* The backing array must not pin popped or cleared values live: weak
   pointers to the payloads must empty after a major GC. *)
let test_pqueue_no_space_leak () =
  let q = Pqueue.create () in
  let w = Weak.create 3 in
  List.iteri
    (fun i p ->
      let v = ref (Array.make 64 p) in
      Weak.set w i (Some v);
      Pqueue.push q p v)
    [ 3.0; 1.0; 2.0 ];
  ignore (Pqueue.pop q);
  (* One popped, two cleared: none may stay reachable through the queue. *)
  Pqueue.clear q;
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d released" i)
      false (Weak.check w i)
  done

(* ------------------------- Pqueue.Int ------------------------- *)

let test_ipqueue_order () =
  let q = Pqueue.Int.create () in
  List.iter
    (fun p -> Pqueue.Int.push q p (int_of_float p))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "length" 5 (Pqueue.Int.length q);
  let popped = ref [] in
  while not (Pqueue.Int.is_empty q) do
    let p = Pqueue.Int.min_prio q in
    let v = Pqueue.Int.pop q in
    check_float "prio matches value" (float_of_int v) p;
    popped := v :: !popped
  done;
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] (List.rev !popped);
  (* Clear then reuse. *)
  Pqueue.Int.push q 9.0 9;
  Pqueue.Int.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.Int.is_empty q);
  Pqueue.Int.push q 1.0 1;
  Alcotest.(check int) "usable after clear" 1 (Pqueue.Int.pop q)

let test_ipqueue_empty_raises () =
  let q = Pqueue.Int.create () in
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Pqueue.Int.pop: empty") (fun () ->
      ignore (Pqueue.Int.pop q));
  Alcotest.check_raises "min_prio empty"
    (Invalid_argument "Pqueue.Int.min_prio: empty") (fun () ->
      ignore (Pqueue.Int.min_prio q))

let ipqueue_heap_property =
  QCheck.Test.make ~name:"Pqueue.Int pops in priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let q = Pqueue.Int.create () in
      List.iteri (fun i f -> Pqueue.Int.push q f i) floats;
      let rec drain last =
        if Pqueue.Int.is_empty q then true
        else begin
          let p = Pqueue.Int.min_prio q in
          let v = Pqueue.Int.pop q in
          p >= last && v >= 0
          && v < List.length floats
          && List.nth floats v = p && drain p
        end
      in
      drain neg_infinity)

(* ------------------------- Pool ------------------------- *)

let test_pool_map_array_matches_sequential () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "jobs clamped" 4 (Pool.jobs pool);
  let arr = Array.init 101 (fun i -> i * 3) in
  let expected = Array.mapi (fun i x -> i + (x * x)) arr in
  for _ = 1 to 5 do
    let got = Pool.map_array pool ~f:(fun i x -> i + (x * x)) arr in
    Alcotest.(check (array int)) "matches Array.mapi" expected got
  done;
  Alcotest.(check (array int)) "empty input" [||]
    (Pool.map_array pool ~f:(fun _ x -> x) [||]);
  Alcotest.(check (array int)) "single element" [| 49 |]
    (Pool.map_array pool ~f:(fun _ x -> x * x) [| 7 |])

let test_pool_sequential_fallback () =
  let pool = Pool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let got = Pool.map_array pool ~f:(fun i x -> i * x) (Array.make 10 3) in
  Alcotest.(check (array int)) "jobs=1 works"
    (Array.init 10 (fun i -> i * 3))
    got

let test_pool_exception_propagates () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  match
    Pool.map_array pool
      ~f:(fun i _ -> if i = 17 then failwith "boom" else i)
      (Array.make 64 0)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 in
  ignore (Pool.map_array pool ~f:(fun i _ -> i) (Array.make 4 ()));
  Pool.shutdown pool;
  Pool.shutdown pool

let test_pool_map_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  match Pool.map_array pool ~f:(fun i _ -> i) (Array.make 4 ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------- Union_find ------------------------- *)

let test_union_find_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "re-union" false (Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "sets after" 4 (Union_find.count uf)

let test_union_find_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "separate" false (Union_find.same uf 2 3);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "merged" true (Union_find.same uf 0 4)

(* ------------------------- Grid2d ------------------------- *)

let test_grid_get_set () =
  let g = Grid2d.create ~cols:3 ~rows:2 0.0 in
  Grid2d.set g 2 1 5.0;
  Grid2d.add g 2 1 1.5;
  check_float "get" 6.5 (Grid2d.get g 2 1);
  check_float "other" 0.0 (Grid2d.get g 0 0);
  check_float "max" 6.5 (Grid2d.max_value g);
  check_float "total" 6.5 (Grid2d.total g)

let test_grid_bounds () =
  let g = Grid2d.create ~cols:3 ~rows:2 0.0 in
  Alcotest.check_raises "col out of range"
    (Invalid_argument "Grid2d: (3,0) outside 3x2") (fun () ->
      ignore (Grid2d.get g 3 0))

let test_grid_copy_independent () =
  let g = Grid2d.create ~cols:2 ~rows:2 1.0 in
  let h = Grid2d.copy g in
  Grid2d.set g 0 0 9.0;
  check_float "copy unchanged" 1.0 (Grid2d.get h 0 0)

let test_grid_render () =
  let g = Grid2d.create ~cols:2 ~rows:2 0.0 in
  Grid2d.set g 0 0 1.0;
  let s = Grid2d.render_ascii ~levels:" #" g in
  Alcotest.(check string) "render" "  \n# \n" s

(* ------------------------- Tables ------------------------- *)

let test_tables_fmt_int () =
  Alcotest.(check string) "thousands" "126,394" (Tables.fmt_int 126394);
  Alcotest.(check string) "small" "42" (Tables.fmt_int 42);
  Alcotest.(check string) "negative" "-1,234" (Tables.fmt_int (-1234))

let test_tables_render () =
  let s =
    Tables.render ~header:[ "a"; "b" ] [ Tables.Left; Tables.Right ]
      [ [ "xx"; "1" ]; [ "y"; "22" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.contains s '|')

let test_tables_stats () =
  check_float "mean" 2.0 (Tables.mean [ 1.0; 2.0; 3.0 ]);
  check_float "stddev" 1.0 (Tables.stddev [ 1.0; 2.0; 3.0 ]);
  check_float "median" 2.0 (Tables.percentile 0.5 [ 3.0; 1.0; 2.0 ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "range inclusive" `Quick test_rng_range_inclusive;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample full" `Quick test_rng_sample_full;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        ] );
      ( "geom",
        [
          Alcotest.test_case "manhattan" `Quick test_manhattan;
          Alcotest.test_case "euclidean" `Quick test_euclidean;
          Alcotest.test_case "center of mass" `Quick test_center_of_mass;
          Alcotest.test_case "weighted com" `Quick test_center_of_mass_weighted;
          Alcotest.test_case "bbox" `Quick test_bbox;
          Alcotest.test_case "clamp" `Quick test_clamp;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "duplicates" `Quick test_pqueue_duplicates;
          Alcotest.test_case "interleaved push/pop" `Quick
            test_pqueue_push_pop_interleaved;
          Alcotest.test_case "clear reuse" `Quick test_pqueue_clear_reuse;
          Alcotest.test_case "no space leak" `Quick test_pqueue_no_space_leak;
          qc pqueue_heap_property;
        ] );
      ( "pqueue_int",
        [
          Alcotest.test_case "order" `Quick test_ipqueue_order;
          Alcotest.test_case "empty raises" `Quick test_ipqueue_empty_raises;
          qc ipqueue_heap_property;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map_array" `Quick
            test_pool_map_array_matches_sequential;
          Alcotest.test_case "jobs=1 fallback" `Quick
            test_pool_sequential_fallback;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "map after shutdown raises" `Quick
            test_pool_map_after_shutdown_raises;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "transitive" `Quick test_union_find_transitive;
        ] );
      ( "grid2d",
        [
          Alcotest.test_case "get/set" `Quick test_grid_get_set;
          Alcotest.test_case "bounds" `Quick test_grid_bounds;
          Alcotest.test_case "copy" `Quick test_grid_copy_independent;
          Alcotest.test_case "render" `Quick test_grid_render;
        ] );
      ( "tables",
        [
          Alcotest.test_case "fmt_int" `Quick test_tables_fmt_int;
          Alcotest.test_case "render" `Quick test_tables_render;
          Alcotest.test_case "stats" `Quick test_tables_stats;
        ] );
    ]
