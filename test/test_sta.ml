module Sta = Cals_sta.Sta
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Geom = Cals_util.Geom
module Rng = Cals_util.Rng
module Cell = Cals_cell.Cell

let lib = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry lib
let wire = Cals_cell.Library.wire lib
let inv_cell = Cals_cell.Library.find lib "INV"
let nand2_cell = Cals_cell.Library.find lib "NAND2"
let fp = Floorplan.of_rows ~num_rows:10 ~sites_per_row:100 ~geometry

(* A chain of n inverters after a NAND2. *)
let chain_mapped n =
  let instances =
    Array.init (n + 1) (fun i ->
        if i = 0 then
          { Mapped.cell = nand2_cell; fanins = [| Mapped.Of_pi 0; Mapped.Of_pi 1 |];
            seed = Geom.point 5.0 5.0 }
        else
          { Mapped.cell = inv_cell; fanins = [| Mapped.Of_inst (i - 1) |];
            seed = Geom.point (5.0 +. float_of_int i) 5.0 })
  in
  Mapped.make ~pi_names:[| "a"; "b" |] ~instances
    ~outputs:[| ("f", Mapped.Of_inst n) |]

let place m = Placement.place_mapped_seeded m ~floorplan:fp

let test_longer_chain_slower () =
  let m3 = chain_mapped 3 and m9 = chain_mapped 9 in
  let r3 = Sta.analyze m3 ~wire ~placement:(place m3) in
  let r9 = Sta.analyze m9 ~wire ~placement:(place m9) in
  Alcotest.(check bool)
    (Printf.sprintf "9-chain %.3f > 3-chain %.3f"
       r9.Sta.critical.Sta.arrival_ns r3.Sta.critical.Sta.arrival_ns)
    true
    (r9.Sta.critical.Sta.arrival_ns > r3.Sta.critical.Sta.arrival_ns)

let test_arrival_positive_and_bounded () =
  let m = chain_mapped 5 in
  let r = Sta.analyze m ~wire ~placement:(place m) in
  Alcotest.(check bool) "positive" true (r.Sta.critical.Sta.arrival_ns > 0.0);
  (* All endpoints at most the critical. *)
  Array.iter
    (fun e ->
      if e.Sta.arrival_ns > r.Sta.critical.Sta.arrival_ns +. 1e-9 then
        Alcotest.fail "endpoint exceeds critical")
    r.Sta.endpoints

let test_critical_path_monotone () =
  let m = chain_mapped 6 in
  let r = Sta.analyze m ~wire ~placement:(place m) in
  let arrivals = List.map snd r.Sta.critical_path in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && ok rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone along path" true (ok arrivals);
  Alcotest.(check int) "path has cells + endpoints" (6 + 1 + 2)
    (List.length r.Sta.critical_path)

let test_critical_endpoints_named () =
  let m = chain_mapped 2 in
  let r = Sta.analyze m ~wire ~placement:(place m) in
  Alcotest.(check string) "po" "f" r.Sta.critical.Sta.po;
  Alcotest.(check bool) "pi is a or b" true
    (r.Sta.critical.Sta.through_pi = "a" || r.Sta.critical.Sta.through_pi = "b");
  let s = Sta.endpoint_to_string r.Sta.critical in
  Alcotest.(check bool) "render" true (String.length s > 0)

let test_wire_length_increases_delay () =
  (* Same netlist, but one placement stretches the wires. *)
  let m = chain_mapped 4 in
  let near = place m in
  let far =
    {
      near with
      Placement.cell_pos =
        Array.mapi
          (fun i p ->
            if i mod 2 = 0 then p
            else Geom.point (p.Geom.x +. 40.0) (p.Geom.y +. 30.0))
          near.Placement.cell_pos;
    }
  in
  let r_near = Sta.analyze m ~wire ~placement:near in
  let r_far = Sta.analyze m ~wire ~placement:far in
  Alcotest.(check bool)
    (Printf.sprintf "far %.3f > near %.3f" r_far.Sta.critical.Sta.arrival_ns
       r_near.Sta.critical.Sta.arrival_ns)
    true
    (r_far.Sta.critical.Sta.arrival_ns > r_near.Sta.critical.Sta.arrival_ns)

let test_routed_lengths_override () =
  let m = chain_mapped 4 in
  let pl = place m in
  let nets = Mapped.nets m in
  (* Pretend every net meanders 500 um. *)
  let lengths = Array.map (fun _ -> 500.0) nets in
  let r0 = Sta.analyze m ~wire ~placement:pl in
  let r1 = Sta.analyze ~net_length_um:lengths m ~wire ~placement:pl in
  Alcotest.(check bool) "meandering slows the path" true
    (r1.Sta.critical.Sta.arrival_ns > r0.Sta.critical.Sta.arrival_ns)

let test_po_arrival_from_pi () =
  (* f = NAND(a, INV(b)): path from b goes through one more stage. *)
  let instances =
    [|
      { Mapped.cell = inv_cell; fanins = [| Mapped.Of_pi 1 |]; seed = Geom.point 3.0 3.0 };
      { Mapped.cell = nand2_cell; fanins = [| Mapped.Of_pi 0; Mapped.Of_inst 0 |];
        seed = Geom.point 6.0 3.0 };
    |]
  in
  let m =
    Mapped.make ~pi_names:[| "a"; "b" |] ~instances
      ~outputs:[| ("f", Mapped.Of_inst 1) |]
  in
  let pl = place m in
  let from_a = Sta.po_arrival_from_pi m ~wire ~placement:pl ~pi:"a" ~po:"f" in
  let from_b = Sta.po_arrival_from_pi m ~wire ~placement:pl ~pi:"b" ~po:"f" in
  (match (from_a, from_b) with
  | Some ta, Some tb ->
    Alcotest.(check bool) (Printf.sprintf "b path %.3f > a path %.3f" tb ta) true (tb > ta)
  | _ -> Alcotest.fail "paths exist");
  Alcotest.(check bool) "missing pi" true
    (Sta.po_arrival_from_pi m ~wire ~placement:pl ~pi:"zz" ~po:"f" = None)

let test_full_analysis_on_mapped_circuit () =
  (* End-to-end sanity on a generated circuit. *)
  let rng = Rng.create 55 in
  let net =
    Cals_workload.Gen.pla ~rng ~inputs:8 ~outputs:6 ~products:24 ~terms_lo:4
      ~terms_hi:8 ()
  in
  Cals_logic.Network.sweep net;
  let subject = Cals_logic.Decompose.subject_of_network net in
  let fp2 =
    Floorplan.for_area
      ~core_area:(float_of_int (Cals_netlist.Subject.num_gates subject) *. 5.0)
      ~utilization:0.5 ~aspect:1.0 ~geometry
  in
  let positions = Placement.place_subject subject ~floorplan:fp2 ~rng:(Rng.create 56) in
  let r = Cals_core.Mapper.map subject ~library:lib ~positions Cals_core.Mapper.min_area in
  let mapped = r.Cals_core.Mapper.mapped in
  let pl = Placement.place_mapped_seeded mapped ~floorplan:fp2 in
  let report = Sta.analyze mapped ~wire ~placement:pl in
  Alcotest.(check int) "endpoint per output" 6 (Array.length report.Sta.endpoints);
  Alcotest.(check bool) "critical positive" true
    (report.Sta.critical.Sta.arrival_ns > 0.0);
  Alcotest.(check bool) "net cap positive" true (report.Sta.total_net_cap_pf > 0.0)

let test_delay_model_drive_matters () =
  (* Stronger driver (lower kohm) is faster at equal load. *)
  let d_weak = Cell.delay_ns inv_cell ~load_pf:0.1 in
  let buf = Cals_cell.Library.find lib "BUF" in
  let d_strong = Cell.delay_ns buf ~load_pf:0.1 in
  (* BUF has lower drive resistance in the library. *)
  Alcotest.(check bool) "resistance ordering encoded" true
    (buf.Cell.drive_kohm < inv_cell.Cell.drive_kohm);
  Alcotest.(check bool) "slope comparison" true
    (d_strong -. buf.Cell.intrinsic_ns < d_weak -. inv_cell.Cell.intrinsic_ns)

(* Timing-driven covering differential, over the whole golden corpus:
   with the fitted default weight, the post-route critical path of the
   accepted K must be no worse than the T=0 baseline on every design —
   the Table 3/5 claim as an executable inequality. The fixture recipe
   (utilization, placement seed) matches test_golden, so the T=0 side of
   this differential is the corpus the golden snapshots pin. *)
let golden_dir =
  Option.value (Sys.getenv_opt "CALS_GOLDEN_DIR") ~default:"golden"

let golden_designs =
  [ "pla_shared_08"; "pla_wide_10"; "ml_control_10"; "ml_deep_08";
    "pla_small_06" ]

let test_timing_no_worse_on_golden_corpus () =
  List.iter
    (fun name ->
      let net =
        Cals_logic.Blif.read_file (Filename.concat golden_dir (name ^ ".blif"))
      in
      Cals_logic.Network.sweep net;
      let subject = Cals_logic.Decompose.subject_of_network net in
      let floorplan =
        Floorplan.for_area
          ~core_area:
            (float_of_int (Cals_netlist.Subject.num_gates subject) *. 5.0)
          ~utilization:0.45 ~aspect:1.0 ~geometry
      in
      let crit ~t =
        let outcome =
          Cals_core.Flow.run ~t ~subject ~library:lib ~floorplan
            ~rng:(Rng.create 42) ()
        in
        match
          ( outcome.Cals_core.Flow.accepted,
            outcome.Cals_core.Flow.mapped,
            outcome.Cals_core.Flow.placement,
            outcome.Cals_core.Flow.routing )
        with
        | Some it, Some mapped, Some placement, Some routing ->
          let report =
            Sta.analyze
              ~net_length_um:routing.Cals_route.Router.net_length_um mapped
              ~wire ~placement
          in
          (it.Cals_core.Flow.k, report.Sta.critical.Sta.arrival_ns)
        | _ -> Alcotest.failf "%s: flow did not accept a routed K (t=%g)" name t
      in
      let k0, baseline = crit ~t:0.0 in
      let k1, timed = crit ~t:Cals_core.Mapper.default_timing_weight in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s: T>0 critical path %.4f ns (K=%g) <= T=0 baseline %.4f ns \
            (K=%g)"
           name timed k1 baseline k0)
        true
        (timed <= baseline +. 1e-9))
    golden_designs

let () =
  Alcotest.run "sta"
    [
      ( "sta",
        [
          Alcotest.test_case "longer chain slower" `Quick test_longer_chain_slower;
          Alcotest.test_case "arrivals bounded" `Quick test_arrival_positive_and_bounded;
          Alcotest.test_case "path monotone" `Quick test_critical_path_monotone;
          Alcotest.test_case "endpoints named" `Quick test_critical_endpoints_named;
          Alcotest.test_case "wirelength slows" `Quick test_wire_length_increases_delay;
          Alcotest.test_case "routed lengths" `Quick test_routed_lengths_override;
          Alcotest.test_case "per-pi arrival" `Quick test_po_arrival_from_pi;
          Alcotest.test_case "full circuit" `Quick test_full_analysis_on_mapped_circuit;
          Alcotest.test_case "drive model" `Quick test_delay_model_drive_matters;
          Alcotest.test_case "timing no worse on golden corpus" `Quick
            test_timing_no_worse_on_golden_corpus;
        ] );
    ]
