(** Placement-driven tree covering (the paper's Section 3.2).

    Dynamic programming over the partitioned subject graph. The cost of a
    match [m] at vertex [v] is

    {v COST(m,v) = AREA(m,v) + K * WIRE(m,v) + T * DELAY(m,v) v}

    where [AREA] is the cell area plus the area cost of the fanin covers
    (Eq. 1), [WIRE1] sums the distances between the match's center of mass
    and its fanins' centers of mass (Eq. 2), [WIRE2] adds the fanins'
    memoized wire costs (Eq. 3), and the total wire cost is their sum
    [WIRE(m,v) = WIRE1(m,v) + WIRE2(m,v)] (Eq. 4). With [T = 0] this is
    exactly the paper's Eq. 5; [DELAY] is the match's constant-load
    arrival estimate (see {!solution.arrival_ns}), so a positive [T]
    trades area and wire against logic depth — the multi-objective cost
    behind the paper's Table 3/5 post-route timing claims. Once a match
    is selected, the covered base gates' positions collapse to the center
    of mass (the incremental companion-placement update). With [K = 0]
    and [T = 0] this is classic DAGON min-area covering.

    Instantiation walks the chosen matches from every needed signal
    (primary-output drivers and cross-tree leaf references); a multi-fanout
    vertex swallowed inside a match is re-instantiated from its own DP
    solution, reproducing MIS-style logic duplication. *)

type objective =
  | Min_area  (** Eq. 1: cell area (the paper's experiments). *)
  | Min_delay of { load_pf : float }
      (** Rudell-style constant-load delay covering: the primary figure of
          merit is the match's worst arrival time, assuming every cell
          output drives [load_pf]. The paper's prototype supports delay
          objectives alongside area (Section 4, first paragraph). *)

type options = {
  k : float;  (** The congestion minimization factor. *)
  t : float;
      (** The timing minimization factor: weight of the constant-load
          arrival estimate in the match cost. [0] (the default) prices
          pure Eq. 5 and is bit-identical to the pre-timing DP — the
          arrival term is [t *. arrival_ns], which is exactly [0.] then,
          and adding [0.] never changes a finite positive cost. *)
  objective : objective;
  distance : Cals_util.Geom.point -> Cals_util.Geom.point -> float;
  incremental_update : bool;  (** Center-of-mass position collapsing. *)
  include_wire2 : bool;  (** Eq. 3 term (off = WIRE1-only ablation). *)
  transitive_wire : bool;
      (** Pedram-Bhat-style variant: charge the distance from the match to
          every base gate of its transitive fanin instead of Eq. 2/3 —
          implements the comparison of the paper's Section 3.3. *)
}

val default_options : options
(** [k = 0], [t = 0], Manhattan distance, incremental updates, WIRE2 on. *)

type solution = {
  cell : Cals_cell.Cell.t;
  leaves : int array;  (** Subject node per pattern variable. *)
  covered : int list;  (** Base gates consumed by the match. *)
  area_cost : float;
  wire_cost : float;
  arrival_ns : float;  (** Constant-load arrival estimate at this output. *)
  cost : float;
  com : Cals_util.Geom.point;
}

type t
(** Covering state: one chosen solution per live gate. *)

(** {2 K-independent match sets}

    Pattern matching is purely structural: a candidate binding depends on
    the subject graph, the partition and the library, but not on K, the
    companion placement or the DP state. A K-schedule sweep can therefore
    enumerate matches once and re-run only the cost-combination DP per K
    point — the incremental engine ({!Incremental}) caches these per
    partition tree. *)

type candidate = {
  cand_cell : Cals_cell.Cell.t;
  cand_leaves : int array;  (** Subject node per pattern variable. *)
  cand_covered : int list;  (** Base gates the match consumes. *)
}

type node_matches = {
  candidates : candidate array;
      (** In exact (cell, pattern, binding) enumeration order; the DP's
          tie-breaking depends on this order. *)
  enumerated : int;
      (** Raw bindings enumerated (including rejected ones), so that
          {!matches_evaluated} is identical whether or not a cache was
          used. *)
}

type matchset = node_matches option array
(** Indexed by subject node; [None] for primary inputs and dead gates. *)

val match_node :
  Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  partition:Partition.t ->
  int ->
  node_matches
(** All structural candidates at one live gate. *)

val matchsets :
  Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  partition:Partition.t ->
  matchset
(** [match_node] over every live gate. *)

val run :
  ?matchsets:matchset ->
  Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  partition:Partition.t ->
  positions:Cals_util.Geom.point array ->
  options ->
  t
(** With [matchsets] the enumeration phase is skipped wherever the array
    has an entry (holes fall back to {!match_node}); the result — chosen
    solutions, costs, tie-breaks and [matches_evaluated] — is bit-identical
    to a cold run, because the DP consumes candidates in the same order
    either way. The caller must pass a matchset computed against the same
    subject, library and partition. *)

val solution : t -> int -> solution option
(** The chosen match at a live gate ([None] for PIs / dead gates). *)

val matches_evaluated : t -> int
(** Raw pattern bindings enumerated during the run (the paper's Table 2
    "matches" column) — identical with and without a warm match cache,
    see {!node_matches.enumerated}. *)

type extraction = {
  mapped : Cals_netlist.Mapped.t;
  duplicated_gates : int;
      (** Base gates materialized more than once (logic duplication). *)
  taps : int;  (** Cross-tree references served without duplication. *)
}

val extract : t -> extraction
(** Instantiate cells for every needed signal. *)

val check_coverage : t -> (unit, string) result
(** Every live gate must be covered by some instantiated match. *)
