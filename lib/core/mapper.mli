(** Technology-mapping driver: partition, cover, instantiate.

    Bundles the paper's Section 3 pipeline behind one call and reports the
    statistics the evaluation tables need. *)

type options = {
  k : float;  (** Congestion minimization factor (Eq. 5). *)
  t : float;
      (** Timing minimization factor (the [T] in
          [AREA + K*WIRE + T*DELAY]): weight of the covered match's
          constant-load arrival estimate, in cost units per ns. Passed to
          {!Cover.options.t} unscaled — cell areas (µm²) and arrival
          times (ns) already sit within an order of magnitude on this
          library, unlike the µm wire term that needs [wire_scale]. [0]
          (the default) reproduces the pre-timing mapper bit for bit. *)
  wire_scale : float;
      (** Unit conversion applied to WIRE before multiplying by [k]. The
          companion placement is in µm; the paper's K ladder (1e-4 .. 1)
          implies distances in finer database units, so WIRE is scaled by
          {!default_wire_scale} to make the paper's K values land in the
          same sensitivity range here. *)
  objective : Cover.objective;
  strategy : Partition.strategy;
  distance : Cals_util.Geom.point -> Cals_util.Geom.point -> float;
  incremental_update : bool;
  include_wire2 : bool;
  transitive_wire : bool;
}

val default_wire_scale : float
(** 200. *)

val default_timing_weight : float
(** The [t] used when timing-driven covering is requested without an
    explicit weight ([cals flow --timing], timing-enabled serve jobs).
    Fitted on the golden corpus: small weights only flip exact-cost
    ties (area quanta dwarf [t * delta-arrival]), so the useful regime
    starts where the DP genuinely trades area for arrival — 50 sits
    inside the band (roughly 30..500) where the accepted-K post-route
    critical path improves on {e every} golden design for a cell-area
    overhead under ten percent (the Table 3/5 trend guarded by
    [test_sta]). *)

val min_area : options
(** [k = 0] with DAGON partitioning — the classic baseline mapper. *)

val congestion_aware : k:float -> options
(** The paper's configuration: PDP partitioning + Eq. 5 covering. *)

val min_delay : ?load_pf:float -> unit -> options
(** Rudell-style constant-load min-delay covering (default load 0.02 pF);
    combine with [k] for delay-plus-congestion objectives. *)

type stats = {
  cells : int;
  cell_area : float;
  matches_evaluated : int;
  duplicated_gates : int;
  taps : int;
  trees : int;
}

type result = {
  mapped : Cals_netlist.Mapped.t;
  stats : stats;
  cover : Cover.t;
  partition : Partition.t;
}

val map :
  ?verify:bool ->
  ?partition:Partition.t ->
  ?matchsets:Cover.matchset ->
  Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  positions:Cals_util.Geom.point array ->
  options ->
  result
(** [positions] is the companion placement of the subject graph (one point
    per subject node, produced once per circuit). With [verify] (default
    [false]) the cover is checked for legality — every live gate covered by
    exactly the chosen matches — before extraction, and a violation raises
    {!Cals_verify.Check.Violation} with stage ["cover"].

    [partition] and [matchsets] are the warm-start inputs threaded by
    {!Incremental} sessions: a precomputed partition skips
    {!Partition.run}, and a precomputed matchset skips pattern
    enumeration inside {!Cover.run}. Both must have been derived from the
    same [subject], [positions], library and [options] (modulo [k] and
    [t], which neither depends on); the result is then bit-identical to a
    cold call. *)
