module Subject = Cals_netlist.Subject
module Library = Cals_cell.Library
module Geom = Cals_util.Geom
module Fnv = Cals_util.Tables.Fnv64
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_hits =
  Metrics.counter ~help:"Tree match sets served from the incremental cache"
    "mapper_cache_hit"

let m_misses =
  Metrics.counter
    ~help:"Tree match sets enumerated from scratch by the incremental engine"
    "mapper_cache_miss"

type stats = {
  trees : int;
  hits : int;
  misses : int;
  maps : int;
}

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

type tree = {
  root : int;
  nodes : int list;  (** Live gates of the tree, increasing node order. *)
  fp : int64;
}

type session = {
  subject : Subject.t;
  library : Library.t;
  positions : Geom.point array;
  options : Mapper.options;
  partition : Partition.t;
  trees : tree array;
  cache : (int64, (int * Cover.node_matches) list) Hashtbl.t;
  lock : Mutex.t;
  sealed : bool Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  maps : int Atomic.t;
  route_session : Cals_route.Router.Session.t;
}

let is_gate subject v =
  match subject.Subject.gates.(v) with
  | Subject.Pi _ -> false
  | Subject.Inv _ | Subject.Nand2 _ -> true

(* Fingerprint of one tree: node ids, gate kinds, fanins and father edges.
   Any structural change to the tree — or to how the partition carved it
   out — lands in the hash, so a stale cache entry can never be served for
   a different tree shape. *)
let tree_fingerprint subject (partition : Partition.t) ~root ~nodes =
  let h = ref (Fnv.int Fnv.empty root) in
  List.iter
    (fun v ->
      h := Fnv.int !h v;
      (match subject.Subject.gates.(v) with
      | Subject.Pi i -> h := Fnv.int (Fnv.int !h 0) i
      | Subject.Inv a -> h := Fnv.int (Fnv.int !h 1) a
      | Subject.Nand2 (a, b) -> h := Fnv.int (Fnv.int (Fnv.int !h 2) a) b);
      h :=
        Fnv.int !h
          (match partition.Partition.father.(v) with
          | None -> -1
          | Some u -> u))
    nodes;
  !h

let trees_of subject (partition : Partition.t) =
  let n = Subject.num_nodes subject in
  let root_of = Array.make n (-1) in
  let rec find v =
    if root_of.(v) >= 0 then root_of.(v)
    else begin
      let r =
        match partition.Partition.father.(v) with
        | None -> v
        | Some u -> find u
      in
      root_of.(v) <- r;
      r
    end
  in
  let members = Hashtbl.create 64 in
  (* Walk downward so each per-root list comes out in increasing order. *)
  for v = n - 1 downto 0 do
    if partition.Partition.live.(v) && is_gate subject v then begin
      let r = find v in
      Hashtbl.replace members r
        (v :: Option.value ~default:[] (Hashtbl.find_opt members r))
    end
  done;
  partition.Partition.roots
  |> List.map (fun root ->
         let nodes = Option.value ~default:[] (Hashtbl.find_opt members root) in
         { root; nodes; fp = tree_fingerprint subject partition ~root ~nodes })
  |> Array.of_list

let create ?options ~subject ~library ~positions () =
  let options =
    match options with
    | Some o -> o
    | None -> Mapper.congestion_aware ~k:0.0
  in
  Span.with_ ~cat:"map" "incremental.create" @@ fun () ->
  let partition =
    Span.with_ ~cat:"map" "mapper.partition" @@ fun () ->
    Partition.run options.Mapper.strategy subject ~positions
      ~distance:options.Mapper.distance
  in
  {
    subject;
    library;
    positions;
    options;
    partition;
    trees = trees_of subject partition;
    cache = Hashtbl.create 256;
    lock = Mutex.create ();
    sealed = Atomic.make false;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    maps = Atomic.make 0;
    route_session = Cals_route.Router.Session.create ();
  }

let enumerate_tree session t =
  List.map
    (fun v ->
      ( v,
        Cover.match_node session.subject ~library:session.library
          ~partition:session.partition v ))
    t.nodes

(* Look one tree up, enumerating (and, unless sealed, inserting) on miss. *)
let tree_matches session t =
  match Hashtbl.find_opt session.cache t.fp with
  | Some entries ->
    Atomic.incr session.hits;
    Metrics.incr m_hits;
    entries
  | None ->
    Atomic.incr session.misses;
    Metrics.incr m_misses;
    let entries = enumerate_tree session t in
    if not (Atomic.get session.sealed) then begin
      Mutex.lock session.lock;
      if not (Hashtbl.mem session.cache t.fp) then
        Hashtbl.add session.cache t.fp entries;
      Mutex.unlock session.lock
    end;
    entries

let assemble session =
  let ms : Cover.matchset =
    Array.make (Subject.num_nodes session.subject) None
  in
  Array.iter
    (fun t ->
      List.iter
        (fun (v, nm) -> ms.(v) <- Some nm)
        (tree_matches session t))
    session.trees;
  ms

let map ?(verify = false) ?(t = 0.0) session ~k =
  Span.with_ ~cat:"map" ~meta:(Printf.sprintf "K=%g" k) "incremental.map"
  @@ fun () ->
  Atomic.incr session.maps;
  let options = { session.options with Mapper.k; t } in
  let matchsets =
    Span.with_ ~cat:"map" "incremental.assemble" @@ fun () -> assemble session
  in
  Mapper.map ~verify ~partition:session.partition ~matchsets session.subject
    ~library:session.library ~positions:session.positions options

let warm session =
  Span.with_ ~cat:"map" "incremental.warm" @@ fun () ->
  Array.iter
    (fun t ->
      if not (Hashtbl.mem session.cache t.fp) then begin
        Atomic.incr session.misses;
        Metrics.incr m_misses;
        Hashtbl.replace session.cache t.fp (enumerate_tree session t)
      end)
    session.trees

let seal session = Atomic.set session.sealed true

let stats session =
  {
    trees = Array.length session.trees;
    hits = Atomic.get session.hits;
    misses = Atomic.get session.misses;
    maps = Atomic.get session.maps;
  }

let partition session = session.partition
let options session = session.options
let library session = session.library
let route_session session = session.route_session

let fingerprints session =
  Array.to_list (Array.map (fun t -> (t.root, t.fp)) session.trees)

let export session =
  Array.to_list session.trees
  |> List.filter_map (fun t ->
         Option.map
           (fun entries -> (t.fp, entries))
           (Hashtbl.find_opt session.cache t.fp))

let preload session entries =
  if Atomic.get session.sealed then
    invalid_arg "Incremental.preload: session is sealed";
  let wanted = Hashtbl.create (Array.length session.trees) in
  Array.iter (fun t -> Hashtbl.replace wanted t.fp ()) session.trees;
  let installed = ref 0 in
  Mutex.lock session.lock;
  List.iter
    (fun (fp, matches) ->
      if Hashtbl.mem wanted fp && not (Hashtbl.mem session.cache fp) then begin
        Hashtbl.add session.cache fp matches;
        incr installed
      end)
    entries;
  Mutex.unlock session.lock;
  !installed
