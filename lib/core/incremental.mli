(** Incremental K-loop mapping sessions (warm-start re-mapping).

    The Figure-3 methodology loop re-runs tree covering at every K
    increment while the subject DAG, its PDP trees and the companion
    placement are produced exactly once. Structural pattern matches are
    K-independent — only the AREA/WIRE cost combination changes with K —
    so a session computes the matches once per partition tree, caches them
    keyed by a subject-tree fingerprint, and re-runs only the
    cost-combination DP per K point.

    {2 Cache keying and invalidation}

    A session fixes the subject graph, the library, the companion
    placement and the mapper options (everything but K and the timing
    weight T, which are per-{!map}-call). The partition is
    computed once at {!create}; each of its trees gets a 64-bit FNV-1a
    fingerprint over the tree's node ids, gate kinds, fanins and father
    edges. The match cache maps fingerprint → per-node candidate sets, so

    - a second {!map} call at a different K hits on every tree;
    - a tree whose structure or father edges changed (e.g. a different
      partition in some future re-partitioning session) fingerprints
      differently and is re-enumerated, invalidating exactly the stale
      entry and nothing else.

    Results are bit-identical to a cold {!Mapper.map}: cached candidates
    are stored in exact enumeration order, so the DP sees the same
    sequence of matches and breaks ties identically (see
    {!Cover.run}).

    {2 Domain safety}

    Cache insertion is mutex-protected, but concurrent lookups during
    insertion are not safe on a shared [Hashtbl]. The intended parallel
    protocol — what {!Flow.run_parallel} does — is: {!warm} the session
    sequentially (one match phase), {!seal} it, then share it read-only
    across domains. A sealed session never mutates the cache (a miss is
    recomputed on the fly and dropped), so sealed lookups are race-free.
    Hit/miss statistics are atomics and always safe. *)

type stats = {
  trees : int;  (** Partition trees in the session's subject. *)
  hits : int;  (** Tree match sets served from the cache. *)
  misses : int;  (** Tree match sets enumerated from scratch. *)
  maps : int;  (** {!map} calls executed so far. *)
}

val hit_rate : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

type session

val create :
  ?options:Mapper.options ->
  subject:Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  positions:Cals_util.Geom.point array ->
  unit ->
  session
(** Partition once ([options.strategy], default
    {!Mapper.congestion_aware}[ ~k:0.0], i.e. PDP) and fingerprint every
    tree. [options.k] is irrelevant here — each {!map} call substitutes
    its own K. *)

val map : ?verify:bool -> ?t:float -> session -> k:float -> Mapper.result
(** One K point: assemble the cached match sets (enumerating any missing
    tree) and run the cost-combination DP + extraction via {!Mapper.map}.
    Bit-identical to the equivalent cold call
    [Mapper.map ?verify subject ~library ~positions { options with k; t }].
    [t] (default [0.]) is the timing weight of
    {!Mapper.options.t}; like K it only affects the cost-combination DP,
    never the cached structural matches, so one session serves timing
    and non-timing calls from the same cache. *)

val warm : session -> unit
(** Sequential match phase: enumerate and cache every tree that is not
    cached yet (counted as misses). After [warm], every {!map} lookup
    hits. *)

val seal : session -> unit
(** Freeze the cache so the session can be shared read-only across
    domains. Subsequent misses (impossible after {!warm} within one
    session) are recomputed without being inserted. *)

val stats : session -> stats
(** Snapshot of the session-local counters. The global telemetry
    counterparts are the [mapper_cache_hit] / [mapper_cache_miss]
    counters in {!Cals_telemetry.Metrics}. *)

val partition : session -> Partition.t
(** The session's one-time partition (shared by every K point). *)

val options : session -> Mapper.options
(** The base options the session was created with. *)

val library : session -> Cals_cell.Library.t
(** The library the session matches against. *)

val route_session : session -> Cals_route.Router.Session.t
(** The session's router companion: a {!Cals_route.Router.Session}
    created alongside the match cache, so the K loop that reuses match
    sets also replays unchanged route requests. {!Flow.evaluate_k}
    threads it into the router automatically when it is given the
    session; it shares the session's lifetime and invalidation story
    (the flow never re-uses a session across subjects, so the route
    cache can only ever see requests from one design). *)

val fingerprints : session -> (int * int64) list
(** [(root, fingerprint)] per tree, in root order — exposed for tests and
    diagnostics. *)

val export : session -> (int64 * (int * Cover.node_matches) list) list
(** The cached match sets, one [(fingerprint, per-node candidates)] pair
    per cached tree in tree order. Candidate lists keep their exact
    enumeration order, so a session rebuilt from an export maps
    bit-identically (see {!Cover.run}). Intended for the persistent
    match-cache store ({!Cals_serve.Store}); call after {!warm} to export
    the complete cache. *)

val preload : session -> (int64 * (int * Cover.node_matches) list) list -> int
(** Install previously {!export}ed match sets into a fresh session's
    cache, before {!warm}/{!seal}. Only entries whose fingerprint matches
    one of the session's own trees are installed — anything else (a
    different subject, partition or library vintage) is silently ignored,
    so a stale store can only produce cold misses, never wrong matches.
    Returns the number of entries installed. Installed trees are skipped
    by {!warm} (no miss is counted), so subsequent {!map} lookups count as
    cache hits. Raises [Invalid_argument] if the session is already
    sealed. *)
