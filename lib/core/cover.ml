module Geom = Cals_util.Geom
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Cell = Cals_cell.Cell
module Pattern = Cals_cell.Pattern
module Library = Cals_cell.Library
module Metrics = Cals_telemetry.Metrics

let m_matches_per_vertex =
  Metrics.histogram ~help:"Pattern matches tried per covered vertex"
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
    "cover_matches_per_vertex"

type objective =
  | Min_area
  | Min_delay of { load_pf : float }

type options = {
  k : float;
  t : float;
  objective : objective;
  distance : Geom.point -> Geom.point -> float;
  incremental_update : bool;
  include_wire2 : bool;
  transitive_wire : bool;
}

let default_options =
  {
    k = 0.0;
    t = 0.0;
    objective = Min_area;
    distance = Geom.manhattan;
    incremental_update = true;
    include_wire2 = true;
    transitive_wire = false;
  }

type solution = {
  cell : Cell.t;
  leaves : int array;
  covered : int list;
  area_cost : float;
  wire_cost : float;
  arrival_ns : float;
  cost : float;
  com : Geom.point;
}

type t = {
  subject : Subject.t;
  partition : Partition.t;
  sols : solution option array;
  evaluated : int;
}

(* ---------------- Match enumeration ---------------- *)

(* A candidate is a consistent binding of pattern variables to subject
   nodes plus the list of base gates the pattern consumes. Internal
   pattern nodes may only descend along tree-internal edges; leaves bind
   anywhere (the fanin becomes an input of the cell). *)
let enumerate_matches subject (partition : Partition.t) pattern v =
  let gates = subject.Subject.gates in
  let rec go pattern v bind =
    match pattern with
    | Pattern.Var i -> (
      match List.assoc_opt i bind with
      | Some u -> if u = v then [ (bind, []) ] else []
      | None -> [ ((i, v) :: bind, []) ])
    | Pattern.Inv q -> (
      match gates.(v) with
      | Subject.Inv a ->
        descend q a v bind |> List.map (fun (b, cov) -> (b, v :: cov))
      | Subject.Pi _ | Subject.Nand2 _ -> [])
    | Pattern.Nand (q1, q2) -> (
      match gates.(v) with
      | Subject.Nand2 (a, b) ->
        let orient x y =
          List.concat_map
            (fun (b1, cov1) ->
              descend q2 y v b1
              |> List.map (fun (b2, cov2) -> (b2, (v :: cov1) @ cov2)))
            (descend q1 x v bind)
        in
        if a = b then orient a a else orient a b @ orient b a
      | Subject.Pi _ | Subject.Inv _ -> [])
  and descend q child parent bind =
    match q with
    | Pattern.Var _ -> go q child bind
    | Pattern.Inv _ | Pattern.Nand _ ->
      if partition.Partition.father.(child) = Some parent then go q child bind
      else []
  in
  go pattern v []

(* ---------------- K-independent match sets ---------------- *)

(* A structural candidate: a cell whose pattern binds at a vertex. The
   binding depends only on the subject graph, the partition and the
   library — never on K, the companion placement or the DP state — so it
   can be computed once per tree and reused across a whole K schedule. *)
type candidate = {
  cand_cell : Cell.t;
  cand_leaves : int array;  (** Subject node per pattern variable. *)
  cand_covered : int list;  (** Base gates the match consumes. *)
}

type node_matches = {
  candidates : candidate array;
      (** In exact (cell, pattern, binding) enumeration order — the DP's
          tie-breaking depends on this order, so cached and freshly
          enumerated candidates must agree element for element. *)
  enumerated : int;
      (** Raw bindings enumerated, including ones rejected for unbound
          variables; keeps [matches_evaluated] identical to a cold run. *)
}

type matchset = node_matches option array

let match_node subject ~library ~(partition : Partition.t) v =
  let enumerated = ref 0 in
  let acc = ref [] in
  List.iter
    (fun (cell : Cell.t) ->
      List.iter
        (fun pattern ->
          List.iter
            (fun (binding, covered) ->
              incr enumerated;
              let nvars = Pattern.num_vars pattern in
              let leaves = Array.make nvars (-1) in
              List.iter (fun (var, node) -> leaves.(var) <- node) binding;
              if not (Array.exists (fun l -> l < 0) leaves) then
                acc :=
                  { cand_cell = cell; cand_leaves = leaves;
                    cand_covered = covered }
                  :: !acc)
            (enumerate_matches subject partition pattern v))
        cell.Cell.patterns)
    (Library.cells library);
  { candidates = Array.of_list (List.rev !acc); enumerated = !enumerated }

let is_gate subject v =
  match subject.Subject.gates.(v) with
  | Subject.Pi _ -> false
  | Subject.Inv _ | Subject.Nand2 _ -> true

let matchsets subject ~library ~(partition : Partition.t) =
  let n = Subject.num_nodes subject in
  Array.init n (fun v ->
      if partition.Partition.live.(v) && is_gate subject v then
        Some (match_node subject ~library ~partition v)
      else None)

(* Wire cost of the Pedram-Bhat-style transitive variant: total original
   edge length of the full fanin cone below a node. *)
let tfi_wire subject ~positions ~distance =
  let n = Subject.num_nodes subject in
  let memo = Array.make n nan in
  let rec go v =
    if memo.(v) = memo.(v) (* not NaN *) then memo.(v)
    else begin
      let total =
        List.fold_left
          (fun acc c -> acc +. distance positions.(v) positions.(c) +. go c)
          0.0
          (Subject.fanins subject.Subject.gates.(v))
      in
      memo.(v) <- total;
      total
    end
  in
  for v = 0 to n - 1 do
    ignore (go v)
  done;
  memo

let run ?matchsets:cached subject ~library ~partition ~positions options =
  let n = Subject.num_nodes subject in
  let wire = Library.wire library in
  let pos_cur = Array.copy positions in
  let sols : solution option array = Array.make n None in
  (* Per-node memoized figures for fanin lookups (Eqs. 1 and 3). PIs keep
     zero cost and their pad position. *)
  let node_com = Array.copy positions in
  let node_wire = Array.make n 0.0 in
  let node_area = Array.make n 0.0 in
  let node_arrival = Array.make n 0.0 in
  let tfi =
    if options.transitive_wire then
      Some (tfi_wire subject ~positions ~distance:options.distance)
    else None
  in
  let evaluated = ref 0 in
  (* Cost of one structural candidate against the current DP state (Eqs.
     1-3 and 5). This is the only per-K work: the candidate itself is
     K-independent and may come from a cache. *)
  let fanout_counts = Subject.fanout_counts subject in
  let eval_candidate v { cand_cell = cell; cand_leaves = leaves;
                         cand_covered = covered } =
    let area_cost =
      Array.fold_left
        (fun acc l -> acc +. node_area.(l))
        cell.Cell.area leaves
    in
    let com = Geom.center_of_mass (List.map (fun u -> pos_cur.(u)) covered) in
    let wire_cost =
      match tfi with
      | Some cone ->
        (* Charge every leaf at its original position plus its whole
           cone: the uncontrolled variant of Section 3.3. *)
        Array.fold_left
          (fun acc l -> acc +. options.distance com positions.(l) +. cone.(l))
          0.0 leaves
      | None ->
        let wire1 =
          Array.fold_left
            (fun acc l -> acc +. options.distance com node_com.(l))
            0.0 leaves
        in
        if options.include_wire2 then
          Array.fold_left (fun acc l -> acc +. node_wire.(l)) wire1 leaves
        else wire1
    in
    let arrival_ns =
      (* Elmore wire delay on each leaf-to-match edge (the model
         {!Cals_sta.Sta} uses post-route), so the DP ranks covers by the
         arrival the routed netlist will actually see — a constant-load
         estimate ties covers that the wire then unties the wrong way. *)
      let latest =
        Array.fold_left
          (fun acc l ->
            let d = options.distance com node_com.(l) in
            let r = d *. wire.Library.res_kohm_per_um in
            let c = d *. wire.Library.cap_pf_per_um in
            let t_wire = r *. ((c /. 2.0) +. cell.Cell.input_cap_pf) in
            let t = node_arrival.(l) +. t_wire in
            if t > acc then t else acc)
          0.0 leaves
      in
      let load =
        match options.objective with
        | Min_delay { load_pf } -> load_pf
        | Min_area ->
          (* Each reader of the match root is roughly one standard sink;
             a sink-less root still drives a primary-output load. *)
          0.01 *. float_of_int (max 1 fanout_counts.(v))
      in
      latest +. Cell.delay_ns cell ~load_pf:load
    in
    let primary =
      match options.objective with
      | Min_area -> area_cost
      | Min_delay _ -> arrival_ns
    in
    let cost =
      primary +. (options.k *. wire_cost) +. (options.t *. arrival_ns)
    in
    { cell; leaves; covered; area_cost; wire_cost; arrival_ns; cost; com }
  in
  for v = 0 to n - 1 do
    if partition.Partition.live.(v) && is_gate subject v then begin
      let nm =
        match cached with
        | Some ms -> (
          match ms.(v) with
          | Some nm -> nm
          | None -> match_node subject ~library ~partition v)
        | None -> match_node subject ~library ~partition v
      in
      evaluated := !evaluated + nm.enumerated;
      let best = ref None in
      Array.iter
        (fun cand ->
          let sol = eval_candidate v cand in
          match !best with
          | Some b
            when b.cost < sol.cost
                 || (b.cost = sol.cost && b.area_cost <= sol.area_cost) ->
            ()
          | Some _ | None -> best := Some sol)
        nm.candidates;
      match !best with
      | None ->
        (* Cannot happen: INV and NAND2 always match. *)
        failwith "Cover.run: no match at a live gate"
      | Some sol ->
        Metrics.observe m_matches_per_vertex (float_of_int nm.enumerated);
        sols.(v) <- Some sol;
        node_com.(v) <- sol.com;
        node_wire.(v) <- sol.wire_cost;
        node_area.(v) <- sol.area_cost;
        node_arrival.(v) <- sol.arrival_ns;
        if options.incremental_update then
          List.iter (fun u -> pos_cur.(u) <- sol.com) sol.covered
    end
  done;
  { subject; partition; sols; evaluated = !evaluated }

let solution t v = t.sols.(v)
let matches_evaluated t = t.evaluated

type extraction = {
  mapped : Mapped.t;
  duplicated_gates : int;
  taps : int;
}

(* Instantiate cells for all needed signals, memoized per subject node. *)
let extract_internal t =
  let memo : (int, Mapped.signal) Hashtbl.t = Hashtbl.create 1024 in
  let instances = ref [] in
  let count = ref 0 in
  let taps = ref 0 in
  let cover_count = Hashtbl.create 1024 in
  let rec inst v =
    match t.subject.Subject.gates.(v) with
    | Subject.Pi idx -> Mapped.Of_pi idx
    | Subject.Inv _ | Subject.Nand2 _ -> (
      match Hashtbl.find_opt memo v with
      | Some s ->
        incr taps;
        s
      | None ->
        let sol =
          match t.sols.(v) with
          | Some s -> s
          | None -> failwith "Cover.extract: no solution at needed gate"
        in
        let fanins = Array.map inst sol.leaves in
        let idx = !count in
        incr count;
        instances :=
          { Mapped.cell = sol.cell; fanins; seed = sol.com } :: !instances;
        List.iter
          (fun u ->
            Hashtbl.replace cover_count u
              (1 + Option.value ~default:0 (Hashtbl.find_opt cover_count u)))
          sol.covered;
        let s = Mapped.Of_inst idx in
        Hashtbl.add memo v s;
        s)
  in
  let outputs =
    Array.map (fun (name, v) -> (name, inst v)) t.subject.Subject.outputs
  in
  let mapped =
    Mapped.make ~pi_names:t.subject.Subject.pi_names
      ~instances:(Array.of_list (List.rev !instances))
      ~outputs
  in
  let duplicated =
    Hashtbl.fold (fun _ c acc -> acc + max 0 (c - 1)) cover_count 0
  in
  (mapped, duplicated, !taps, cover_count)

let extract t =
  let mapped, duplicated_gates, taps, _ = extract_internal t in
  { mapped; duplicated_gates; taps }

let check_coverage t =
  let _, _, _, cover_count = extract_internal t in
  let missing = ref [] in
  Array.iteri
    (fun v g ->
      match g with
      | Subject.Pi _ -> ()
      | Subject.Inv _ | Subject.Nand2 _ ->
        if t.partition.Partition.live.(v) && not (Hashtbl.mem cover_count v) then
          missing := v :: !missing)
    t.subject.Subject.gates;
  match !missing with
  | [] -> Ok ()
  | vs ->
    Error
      (Printf.sprintf "%d live gates uncovered (first: %d)" (List.length vs)
         (List.hd (List.rev vs)))
