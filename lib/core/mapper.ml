module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_matches =
  Metrics.counter ~help:"Pattern matches evaluated by the tree coverer"
    "mapper_matches_evaluated"

let m_runs = Metrics.counter ~help:"Technology-mapping runs" "mapper_runs"

type options = {
  k : float;
  t : float;
  wire_scale : float;
  objective : Cover.objective;
  strategy : Partition.strategy;
  distance : Cals_util.Geom.point -> Cals_util.Geom.point -> float;
  incremental_update : bool;
  include_wire2 : bool;
  transitive_wire : bool;
}

let default_wire_scale = 200.0
let default_timing_weight = 50.0

let min_area =
  {
    k = 0.0;
    t = 0.0;
    wire_scale = default_wire_scale;
    objective = Cover.Min_area;
    strategy = Partition.Dagon;
    distance = Cals_util.Geom.manhattan;
    incremental_update = true;
    include_wire2 = true;
    transitive_wire = false;
  }

let congestion_aware ~k = { min_area with k; strategy = Partition.Pdp }

let min_delay ?(load_pf = 0.02) () =
  { min_area with objective = Cover.Min_delay { load_pf } }

type stats = {
  cells : int;
  cell_area : float;
  matches_evaluated : int;
  duplicated_gates : int;
  taps : int;
  trees : int;
}

type result = {
  mapped : Cals_netlist.Mapped.t;
  stats : stats;
  cover : Cover.t;
  partition : Partition.t;
}

let map ?(verify = false) ?partition ?matchsets subject ~library ~positions
    options =
  Span.with_ ~cat:"map" ~meta:(Printf.sprintf "K=%g" options.k) "mapper.map"
  @@ fun () ->
  Metrics.incr m_runs;
  let partition =
    match partition with
    | Some p -> p
    | None ->
      Span.with_ ~cat:"map" "mapper.partition" @@ fun () ->
      Partition.run options.strategy subject ~positions
        ~distance:options.distance
  in
  let cover_options =
    {
      Cover.k = options.k *. options.wire_scale;
      t = options.t;
      objective = options.objective;
      distance = options.distance;
      incremental_update = options.incremental_update;
      include_wire2 = options.include_wire2;
      transitive_wire = options.transitive_wire;
    }
  in
  let cover =
    Span.with_ ~cat:"map" "mapper.cover" @@ fun () ->
    Cover.run ?matchsets subject ~library ~partition ~positions cover_options
  in
  if verify then
    Cals_verify.Check.record ~stage:"cover" (Cover.check_coverage cover);
  let extraction =
    Span.with_ ~cat:"map" "mapper.extract" @@ fun () -> Cover.extract cover
  in
  let mapped = extraction.Cover.mapped in
  Metrics.add m_matches (Cover.matches_evaluated cover);
  let stats =
    {
      cells = Cals_netlist.Mapped.num_cells mapped;
      cell_area = Cals_netlist.Mapped.total_area mapped;
      matches_evaluated = Cover.matches_evaluated cover;
      duplicated_gates = extraction.Cover.duplicated_gates;
      taps = extraction.Cover.taps;
      trees = List.length partition.Partition.roots;
    }
  in
  { mapped; stats; cover; partition }
