(** The fuzzer's subject under test: the whole flow with checks on.

    {!Cals_verify.Fuzz} is deliberately ignorant of the flow (the
    dependency points the other way); this module supplies the canonical
    [check] callback. For one parameter tuple it generates the workload,
    runs optimization, decomposition and the Figure-3 loop with the
    verification layer enabled, and checks equivalence across the
    logic-synthesis stage boundaries the flow itself cannot see
    (original vs optimized network, network vs subject graph). *)

val check_params :
  ?utilization:float ->
  ?jobs:int ->
  ?level:Cals_verify.Check.level ->
  Cals_verify.Fuzz.params ->
  (unit, string * string) result
(** [check_params p] runs the full pipeline on the workload described by
    [p] and reports the first violation as [Error (stage, detail)]. A
    {!Cals_verify.Check.Violation} maps to its own stage; any other
    exception (including [Invalid_argument] from structural mismatches)
    maps to stage ["exception"]. Defaults: [utilization = 0.45],
    [jobs = 1] (sequential flow), [level = Full]. A flow that finds no
    acceptable K is not a failure — the fuzzer tests invariants, not
    routability. *)
