(** The paper's modified ASIC design flow (Figure 3).

    The technology-independent netlist and its companion placement are
    produced once; the loop then maps with increasing K, legalizes the
    mapped netlist from the mapper's seeds, global-routes, and stops at the
    first K whose congestion map is acceptable. *)

type iteration = {
  k : float;
  cells : int;
  cell_area : float;
  utilization : float;  (** Of the floorplan core. *)
  hpwl_um : float;
  report : Cals_route.Congestion.report;
  estimated : bool;
      (** The report came from {!Cals_estimate.Estimate} instead of a
          negotiated route (the route was pruned or triaged away). *)
  verdict : Cals_estimate.Estimate.verdict option;
      (** The forecast's verdict at this point, when the estimator ran
          ([None] under [estimate:Off] and for netlists that do not
          legalize). Routed points keep their pre-route verdict, so the
          adaptive search and its tests can audit which skips were
          estimator-justified. *)
}

type outcome = {
  iterations : iteration list;  (** In schedule order, as executed. *)
  accepted : iteration option;  (** First acceptable iteration. *)
  mapped : Cals_netlist.Mapped.t option;  (** Netlist of the accepted K. *)
  placement : Cals_place.Placement.mapped_placement option;
  routing : Cals_route.Router.result option;
}

type adaptive_stats = {
  real_routes : int;
      (** Negotiated routes actually performed by the adaptive search —
          the number the linear 14-point sweep pays 14 of. Legalize
          overflows and estimator-skipped points do not count. *)
  forecast_evals : int;
      (** Forecast-only evaluations (map + legalize + millisecond
          estimate, no route) spent on bisection probes and the
          soundness sweep. *)
  frontier_k : float option;
      (** First schedule point the estimator could not rule out — where
          the confirming routes started. [None] when every point was
          established-rejected. *)
}

val default_k_schedule : float list
(** The paper's Table 2 ladder: 0, 1e-4 ... 1.0. *)

val run :
  ?k_schedule:float list ->
  ?router_config:Cals_route.Router.config ->
  ?strategy:Partition.strategy ->
  ?checks:Cals_verify.Check.level ->
  ?estimate:Cals_estimate.Estimate.policy ->
  ?incremental:bool ->
  ?route_incremental:bool ->
  ?route_jobs:int ->
  ?t:float ->
  ?cancel:Cals_util.Cancel.t ->
  subject:Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  floorplan:Cals_place.Floorplan.t ->
  rng:Cals_util.Rng.t ->
  unit ->
  outcome
(** Stops at the first acceptable congestion map. Iterations whose mapped
    netlist does not even fit the floorplan rows are recorded with an
    all-violations report and the loop moves on.

    [t] (default [0.]) is the timing weight of the multi-objective match
    cost [AREA + K*WIRE + T*DELAY] — see {!Mapper.options.t}. It changes
    only the cost-combination DP, so it composes with every other knob
    (incremental sessions, pruning, parallel evaluation) unchanged, and
    [t = 0.] reproduces the pure Eq. 5 flow bit for bit.

    [estimate] (default [Prune]) runs the millisecond congestion forecast
    ({!Cals_estimate.Estimate}) on every placed K point before routing.
    Under [Prune] a confident [Unroutable] verdict skips the negotiated
    route and records the estimator's report with [estimated = true];
    estimated reports always carry violations, so a pruned point is never
    accepted and the accepted K (and its QoR metrics) is bit-identical to
    an [estimate:Off] sweep as long as the calibration holds — when a
    forecast is wrong the sweep routes a point it could have skipped, it
    never skips a point it should have routed and accepted. [Triage]
    routes {e nothing} and accepts on the forecast alone (results marked
    estimated) — the batch service's deepest degradation rung, not meant
    for interactive use.

    [checks] (default [Off]) selects how much of the verification layer
    runs alongside the loop — see {!Cals_verify.Check.level}. Checks never
    change the outcome; a violated invariant raises
    {!Cals_verify.Check.Violation}. The equivalence stimulus is derived
    from K alone (see {!equiv_seed}), so checked runs stay deterministic
    and {!run_parallel}-identical.

    [incremental] (default [true]) drives the whole K schedule through one
    {!Incremental} session: the partition and the per-tree pattern matches
    are computed once and only the cost-combination DP re-runs per K
    point. The outcome is bit-identical to a cold sweep — set
    [incremental:false] to force cold re-mapping at every K (the escape
    hatch behind [cals flow --incremental=off]).

    [route_incremental] (default [true]) runs the whole schedule through
    one {!Cals_route.Router.Session}: route requests whose fingerprint
    (netlist gcells, density, config) already routed are replayed instead
    of re-routed, which turns the re-evaluation of an unchanged mapping
    into a cache hit. Warm results are bit-identical to cold ones —
    [route_incremental:false] ([cals flow --route-incremental=off]) forces
    cold routing at every K. The session rides on the incremental mapping
    session when both are enabled.

    [route_jobs] (default 1) sizes a worker pool for the router's rip-up
    waves: segments with disjoint search boxes maze-route concurrently
    within one negotiation iteration. The outcome is identical for every
    [route_jobs] value (commits are deferred and ordered).

    [cancel] (default {!Cals_util.Cancel.never}) makes the loop
    cooperatively cancellable: the token is checked before every K point
    and forwarded into {!evaluate_k} (which also hands it to the
    router's negotiation loop). A fired token unwinds with
    {!Cals_util.Cancel.Cancelled} — this is how the batch service
    ([cals serve]) enforces per-job deadlines. *)

val run_parallel :
  ?k_schedule:float list ->
  ?router_config:Cals_route.Router.config ->
  ?strategy:Partition.strategy ->
  ?checks:Cals_verify.Check.level ->
  ?estimate:Cals_estimate.Estimate.policy ->
  ?incremental:bool ->
  ?route_incremental:bool ->
  ?route_jobs:int ->
  ?t:float ->
  ?cancel:Cals_util.Cancel.t ->
  jobs:int ->
  subject:Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  floorplan:Cals_place.Floorplan.t ->
  rng:Cals_util.Rng.t ->
  unit ->
  outcome
(** Same contract and same result as {!run}, but the K schedule is
    evaluated speculatively on [jobs] OCaml domains, one chunk of [jobs]
    consecutive K points at a time. Every K point is independent given
    the shared subject graph and companion placement, so chunks evaluate
    concurrently; the chunk is then scanned in schedule order and the
    first acceptable iteration wins, with speculative work past it
    discarded. [jobs <= 1] falls back to {!run} directly.

    With [incremental] (the default) the match cache is populated by a
    {e sequential} match phase (span ["flow.match_phase"]) and sealed
    before the domains start, so the workers share it read-only — see
    {!Incremental.seal}.

    With [route_incremental] (the default) the worker domains share one
    route session directly — its caches are mutex-guarded and concurrent
    identical requests dedupe in flight, so sealing is not needed.
    [route_jobs] is ignored here: the workers already occupy the K-point
    pool and the router's wave pool must not nest inside it, so
    intra-route parallelism applies only to the sequential {!run}.

    A fired [cancel] token is observed by every worker domain at its
    next check point; the first {!Cals_util.Cancel.Cancelled} to
    complete is re-raised in the caller after all domains stop claiming
    work (see {!Cals_util.Pool.map_array}), so cancellation still shuts
    the chunk down cleanly. *)

val run_adaptive :
  ?k_schedule:float list ->
  ?router_config:Cals_route.Router.config ->
  ?strategy:Partition.strategy ->
  ?checks:Cals_verify.Check.level ->
  ?incremental:bool ->
  ?route_incremental:bool ->
  ?route_jobs:int ->
  ?t:float ->
  ?cancel:Cals_util.Cancel.t ->
  ?session:Incremental.session ->
  ?positions:Cals_util.Geom.point array ->
  subject:Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  floorplan:Cals_place.Floorplan.t ->
  rng:Cals_util.Rng.t ->
  unit ->
  outcome * adaptive_stats
(** Adaptive K search: find the accepted point of [k_schedule] with a
    handful of real routes instead of one per schedule point, seeded by
    {!Cals_estimate.Estimate} verdicts.

    Three phases. (1) {e Verdict bisection}: binary-search the ladder for
    the frontier — the lowest K the estimator does not confidently rule
    out — using forecast-only probes (map + legalize + estimate, never a
    route). (2) {e Soundness sweep}: forecast every point the bisection
    skipped below the frontier; any point the estimator cannot rule out
    lowers the frontier, so the prefix-of-rejections assumption behind
    the bisection is only ever an optimization. (3) {e Confirming
    routes}: from the frontier up, run the pruned linear loop — route
    every point the estimator does not confidently reject, ascending,
    until the first acceptable {e real} route.

    The invariant, by construction: a real route is skipped only where
    the point is established-rejected — its netlist does not legalize,
    or the forecast is confident-[Unroutable] (whose recorded report
    always carries violations, the PR 7 pruning contract). Every other
    point below the accepted one is routed, in schedule order, exactly
    as the linear {!run} would. Hence the accepted K, its mapped
    netlist and its routed result are bit-identical to the linear
    schedule's whenever the calibration holds, and the no-acceptable-K
    outcome (over-capacity floorplans) is preserved — at the cost of
    [real_routes] negotiated routes, ≤ 6 on the bench corpus against
    the 14-point default ladder.

    [iterations] in the returned outcome holds every point the search
    evaluated, in ascending-K order; bisection probes above the accepted
    K may appear (forecast-only, [estimated = true]), and points the
    search never needed to look at are absent — unlike {!run}, whose
    iteration list is always a schedule prefix. There is no [estimate]
    parameter: the search owns the estimator (triage probes, [Prune]
    confirming routes); [estimate:Off] would defeat its purpose, and the
    linear {!run} remains the way to sweep without forecasts.

    [session] and [positions] let a caller that already owns a warmed
    {!Incremental} session and its companion placement (the serve
    scheduler's per-design cache) thread them through instead of placing
    and warming from scratch — exactly like {!evaluate_k}'s [session]
    parameter. When [positions] is given, [rng] is unused; when [session]
    is given, [incremental] and [strategy] are ignored (the session fixes
    both). *)

val evaluate_k :
  ?router_config:Cals_route.Router.config ->
  ?strategy:Partition.strategy ->
  ?checks:Cals_verify.Check.level ->
  ?estimate:Cals_estimate.Estimate.policy ->
  ?session:Incremental.session ->
  ?route_session:Cals_route.Router.Session.t ->
  ?route_pool:Cals_util.Pool.t ->
  ?t:float ->
  ?cancel:Cals_util.Cancel.t ->
  subject:Cals_netlist.Subject.t ->
  library:Cals_cell.Library.t ->
  floorplan:Cals_place.Floorplan.t ->
  positions:Cals_util.Geom.point array ->
  k:float ->
  unit ->
  iteration
  * (Cals_netlist.Mapped.t
    * Cals_place.Placement.mapped_placement option
    * Cals_route.Router.result option)
(** One K point against a precomputed companion placement — the primitive
    the bench tables are built from. With [session] the mapping phase is
    served by {!Incremental.map} (whose strategy overrides [strategy]);
    the session must have been created from the same [subject],
    [positions] and library. [t] (default [0.]) is the timing weight of
    {!Mapper.options.t}, forwarded to the mapper on both the session and
    the cold path; the equivalence stimulus stays derived from K alone
    (see {!equiv_seed}), which remains sound because the stimulus never
    depends on the netlist under check.

    [route_session] and [route_pool] are handed to
    {!Cals_route.Router.route_mapped} verbatim: the session replays
    repeated route requests, the pool parallelizes rip-up waves (never
    pass a pool this call itself runs on). Neither changes the result.
    They are deliberately not derived from [session]; callers that want
    the bundled route session pass
    [~route_session:(Incremental.route_session s)] explicitly.

    [cancel] is checked on entry, between the map / place / route stages
    and inside the router; a fired token raises
    {!Cals_util.Cancel.Cancelled}. Cancellation is cooperative — an
    individual stage (one covering DP, one maze search) always runs to
    completion before the token is seen. *)

(** {1 Synthesis orchestration} *)

type candidate_eval = {
  cand_label : string;
      (** ["baseline"] or the AIG pass-sequence label
          (see {!Cals_logic.Orchestrate.candidate}). *)
  gates : int;  (** Subject-graph gate count. *)
  aig_ands : int option;  (** Live AIG nodes; [None] for the baseline. *)
  aig_depth : int option;  (** AIG depth; [None] for the baseline. *)
  guarded : bool;
      (** The subject-size guard skipped this candidate: its subject had
          more gates than the baseline's, so it could never be selected
          and no K-loop evaluation was spent on it. *)
  result : (outcome * adaptive_stats) option;
      (** The candidate's adaptive K search; [None] iff [guarded]. *)
}

type orchestrated = {
  evaluations : candidate_eval list;
      (** Schedule order: the baseline first, then
          {!Cals_logic.Orchestrate.schedule}. *)
  baseline : candidate_eval;  (** [= List.hd evaluations], never guarded. *)
  best : candidate_eval;  (** The selected candidate. *)
  best_index : int;  (** Index of [best] in [evaluations]. *)
  best_subject : Cals_netlist.Subject.t;
      (** The selected front-end result — what a caller that caches
          per-design state (the serve scheduler) should build on. *)
  best_network : Cals_logic.Network.t;
      (** The selected candidate's optimized Boolean network. *)
}

val orchestrate :
  ?budget:int ->
  ?optimize:bool ->
  ?k_schedule:float list ->
  ?router_config:Cals_route.Router.config ->
  ?checks:Cals_verify.Check.level ->
  ?jobs:int ->
  ?route_jobs:int ->
  ?t:float ->
  ?cancel:Cals_util.Cancel.t ->
  network:Cals_logic.Network.t ->
  library:Cals_cell.Library.t ->
  floorplan_of:(Cals_netlist.Subject.t -> Cals_place.Floorplan.t) ->
  seed:int ->
  unit ->
  orchestrated
(** Explore tech-independent pass orderings and keep the best mapped
    result. {!Cals_logic.Orchestrate.prepare} generates the candidate
    front-end results (legacy pipeline baseline + [budget] AIG pass
    sequences, default {!Cals_logic.Orchestrate.default_budget});
    each candidate whose subject does not exceed the baseline's gate
    count is miter-checked against the baseline network
    ({!Cals_verify.Equiv}, always on — a mismatch raises
    {!Cals_verify.Check.Violation}) and then scored with
    {!run_adaptive} on its own floorplan ([floorplan_of] its subject,
    so every candidate gets the same utilization policy the plain flow
    would) with the stimulus RNG derived from [seed] exactly as
    [cals flow] derives it — the baseline evaluation is bit-identical
    to a plain [--adaptive] run.

    Selection minimizes [(accepted K, subject gates, cell area,
    candidate index)] lexicographically — no accepted K sorts last, and
    the index tie-break makes the baseline win exact ties — so the
    selected accepted K is never worse than the fixed pipeline's and
    repeated runs are bit-identical. The selected accepted netlist is
    re-mitered against its subject before returning.

    [jobs > 1] evaluates candidates concurrently on a
    {!Cals_util.Pool} ([route_jobs] is then forced to 1 — pools must
    not nest); the result does not depend on [jobs]. Telemetry:
    [orchestrate_candidates_evaluated / _guarded / _improvements], plus
    the generation-side counters of {!Cals_logic.Orchestrate}.

    [checks] selects the {e flow}'s own per-K verification level, as in
    {!run}; the orchestrator's candidate and accepted-netlist miters
    run regardless. *)

val equiv_seed : k:float -> int
(** Seed of the per-K equivalence stimulus, derived from K alone and from
    nothing else — not evaluation order, not cache state — so cold,
    incremental and speculative-parallel runs all draw identical stimulus
    streams at the same K. Hoisted to the top of {!evaluate_k} and shared
    with the accepted-netlist spot-check. *)
