module Placement = Cals_place.Placement
module Floorplan = Cals_place.Floorplan
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion
module Estimate = Cals_estimate.Estimate
module Mapped = Cals_netlist.Mapped
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics
module Check = Cals_verify.Check
module Equiv = Cals_verify.Equiv
module Invariant = Cals_verify.Invariant

let log_src = Logs.Src.create "cals.flow" ~doc:"Figure-3 methodology loop"

module Log = (val Logs.src_log log_src)

let m_k_evaluated =
  Metrics.counter ~help:"K points evaluated (map+place+route)" "flow_k_evaluated"

let m_speculative_discarded =
  Metrics.counter
    ~help:"Speculative K evaluations discarded past the accepted point"
    "flow_speculative_discarded"

let m_legalize_overflows =
  Metrics.counter ~help:"K points whose netlist did not fit the floorplan"
    "flow_legalize_overflows"

let m_routes_skipped =
  Metrics.counter
    ~help:"K points whose negotiated route the estimator skipped"
    "flow_routes_skipped"

type iteration = {
  k : float;
  cells : int;
  cell_area : float;
  utilization : float;
  hpwl_um : float;
  report : Congestion.report;
  estimated : bool;
  verdict : Estimate.verdict option;
}

type outcome = {
  iterations : iteration list;
  accepted : iteration option;
  mapped : Mapped.t option;
  placement : Placement.mapped_placement option;
  routing : Router.result option;
}

type adaptive_stats = {
  real_routes : int;
  forecast_evals : int;
  frontier_k : float option;
}

let default_k_schedule =
  [ 0.0; 0.0001; 0.00025; 0.0005; 0.00075; 0.001; 0.0025; 0.005; 0.0075; 0.01;
    0.05; 0.1; 0.5; 1.0 ]

let overflow_report =
  (* Sentinel for netlists that do not even legalize into the floorplan. *)
  {
    Congestion.violations = max_int;
    total_overflow = infinity;
    max_utilization = infinity;
    congested_gcell_fraction = 1.0;
    wirelength_um = infinity;
  }

(* Per-K equivalence stimulus must depend only on K so that the
   speculative [run_parallel] and the incremental engine see exactly the
   streams the sequential cold [run] would. The seed derivation lives in
   one place and is hoisted to the top of [evaluate_k], before any
   mapper/cache work, so that no amount of warm-start reuse can reorder
   or perturb it. *)
let equiv_seed ~k = Int64.to_int (Int64.bits_of_float k)

let check_equiv ~checks ~subject ~seed ~k mapped =
  Equiv.check_exn
    ~rounds:(Check.rounds checks)
    ~rng:(Cals_util.Rng.create seed)
    ~stage:"equiv" (Equiv.of_subject subject)
    (Equiv.of_mapped ~label:(Printf.sprintf "mapped@K=%g" k) mapped)

let evaluate_k ?router_config ?(strategy = Partition.Pdp) ?(checks = Check.Off)
    ?(estimate = Estimate.Prune) ?session ?route_session ?route_pool
    ?(t = 0.0) ?(cancel = Cals_util.Cancel.never) ~subject ~library ~floorplan
    ~positions ~k () =
  Span.with_ ~cat:"flow" ~meta:(Printf.sprintf "K=%g" k) "flow.k_eval"
  @@ fun () ->
  Cals_util.Cancel.check cancel;
  Metrics.incr m_k_evaluated;
  let seed = equiv_seed ~k in
  let verify = checks <> Check.Off in
  let result =
    match session with
    | Some session ->
      (* Warm-start re-mapping: the session carries the partition and the
         cached per-tree match sets (its strategy overrides [strategy]). *)
      Incremental.map ~verify ~t session ~k
    | None ->
      let options = { (Mapper.congestion_aware ~k) with strategy; t } in
      Mapper.map ~verify subject ~library ~positions options
  in
  let mapped = result.Mapper.mapped in
  Cals_util.Cancel.check cancel;
  if checks = Check.Full then check_equiv ~checks ~subject ~seed ~k mapped;
  let cell_area = Mapped.total_area mapped in
  let utilization = Floorplan.utilization floorplan ~cell_area in
  match Placement.place_mapped_seeded mapped ~floorplan with
  | exception Cals_place.Legalize.Overflow _ ->
    Metrics.incr m_legalize_overflows;
    ( {
        k;
        cells = Mapped.num_cells mapped;
        cell_area;
        utilization;
        hpwl_um = infinity;
        report = overflow_report;
        estimated = false;
        verdict = None;
      },
      (mapped, None, None) )
  | placement ->
    if verify then
      Check.record ~stage:"place"
        (Invariant.check_placement ~floorplan mapped placement);
    Cals_util.Cancel.check cancel;
    let wire = Cals_cell.Library.wire library in
    let forecast =
      match estimate with
      | Estimate.Off -> None
      | Estimate.Prune | Estimate.Triage ->
        Some
          (Estimate.forecast_mapped ?config:router_config mapped ~floorplan
             ~wire ~placement)
    in
    let skip_route =
      match (estimate, forecast) with
      | Estimate.Triage, Some _ -> true
      | Estimate.Prune, Some f -> f.Estimate.verdict = Estimate.Unroutable
      | _ -> false
    in
    match (skip_route, forecast) with
    | true, Some f ->
      (* The estimator stands in for the router at this point. Under
         [Prune] only confident-Unroutable points land here and their
         reports carry violations by construction, so a pruned point can
         never be the accepted one — acceptance always rides on a real
         route. Under [Triage] nothing routes; a non-[Routable] verdict
         must still read as a rejection even when the damped violation
         estimate rounds to zero. *)
      Metrics.incr m_routes_skipped;
      let report = Estimate.report f in
      let report =
        if f.Estimate.verdict <> Estimate.Routable && report.violations = 0
        then { report with Congestion.violations = 1 }
        else report
      in
      Log.debug (fun m ->
          m "K=%g route skipped on %s forecast (norm overflow %.4f)" k
            (Estimate.verdict_to_string f.Estimate.verdict)
            f.Estimate.normalized_overflow);
      ( {
          k;
          cells = Mapped.num_cells mapped;
          cell_area;
          utilization;
          hpwl_um = placement.Placement.hpwl;
          report;
          estimated = true;
          verdict = Some f.Estimate.verdict;
        },
        (mapped, Some placement, None) )
    | _ ->
      let routing =
        Router.route_mapped ?config:router_config ~cancel
          ?session:route_session ?pool:route_pool mapped ~floorplan ~wire
          ~placement
      in
      if verify then
        Check.record ~stage:"route"
          (Invariant.check_routing ~usage:(checks = Check.Full) routing);
      let report = Congestion.of_result routing in
      ( {
          k;
          cells = Mapped.num_cells mapped;
          cell_area;
          utilization;
          hpwl_um = placement.Placement.hpwl;
          report;
          estimated = false;
          verdict = Option.map (fun f -> f.Estimate.verdict) forecast;
        },
        (mapped, Some placement, Some routing) )

(* Cheap defers equivalence to the single netlist the flow ships; Full
   already checked every K point inside [evaluate_k]. *)
let check_accepted ~checks ~subject ~k mapped =
  if checks = Check.Cheap then
    check_equiv ~checks ~subject ~seed:(equiv_seed ~k) ~k mapped

let log_rejected (it : iteration) =
  Log.debug (fun m ->
      m "K=%g rejected: overflow %.1f, %d violations, util %.2f%%" it.k
        it.report.Congestion.total_overflow it.report.Congestion.violations
        (100.0 *. it.utilization))

let log_accepted (it : iteration) =
  Log.info (fun m ->
      m "K=%g accepted: overflow %.1f, %d cells, util %.2f%%" it.k
        it.report.Congestion.total_overflow it.cells
        (100.0 *. it.utilization))

(* Base mapper options of the flow's session: [evaluate_k]'s own default
   is PDP via [Mapper.congestion_aware], so the session must agree. *)
let session_options strategy =
  let base = Mapper.congestion_aware ~k:0.0 in
  match strategy with
  | Some strategy -> { base with Mapper.strategy }
  | None -> base

let make_session ~incremental ?strategy ~subject ~library ~positions () =
  if not incremental then None
  else
    Some
      (Incremental.create
         ~options:(session_options strategy)
         ~subject ~library ~positions ())

(* The route session rides on the incremental mapping session when there
   is one (so the two caches share a lifetime); with cold mapping it is
   created standalone — route requests still repeat across K points that
   map to the same netlist, which is exactly what the replay cache
   catches. *)
let make_route_session ~route_incremental session =
  if not route_incremental then None
  else
    Some
      (match session with
      | Some s -> Incremental.route_session s
      | None -> Router.Session.create ())

let run ?(k_schedule = default_k_schedule) ?router_config ?strategy
    ?(checks = Check.Off) ?(estimate = Estimate.Prune) ?(incremental = true)
    ?(route_incremental = true) ?(route_jobs = 1) ?(t = 0.0)
    ?(cancel = Cals_util.Cancel.never) ~subject ~library ~floorplan ~rng () =
  Span.with_ ~cat:"flow" "flow.run" @@ fun () ->
  let positions =
    Span.with_ ~cat:"flow" "flow.place_subject" @@ fun () ->
    Placement.place_subject subject ~floorplan ~rng
  in
  let session =
    make_session ~incremental ?strategy ~subject ~library ~positions ()
  in
  let route_session = make_route_session ~route_incremental session in
  let route_pool =
    if route_jobs > 1 then Some (Cals_util.Pool.create ~jobs:route_jobs)
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Cals_util.Pool.shutdown route_pool)
  @@ fun () ->
  let rec loop schedule acc =
    match schedule with
    | [] ->
      Log.info (fun m -> m "no K in the schedule was acceptable");
      { iterations = List.rev acc; accepted = None; mapped = None;
        placement = None; routing = None }
    | k :: rest ->
      let iteration, (mapped, placement, routing) =
        evaluate_k ?router_config ?strategy ~checks ~estimate ?session
          ?route_session ?route_pool ~t ~cancel ~subject ~library ~floorplan
          ~positions ~k ()
      in
      if Congestion.acceptable iteration.report then begin
        log_accepted iteration;
        check_accepted ~checks ~subject ~k mapped;
        {
          iterations = List.rev (iteration :: acc);
          accepted = Some iteration;
          mapped = Some mapped;
          placement;
          routing;
        }
      end
      else begin
        log_rejected iteration;
        loop rest (iteration :: acc)
      end
  in
  loop k_schedule []

(* ---------------- Speculative parallel evaluation ---------------- *)

let rec take_chunk n = function
  | x :: rest when n > 0 ->
    let chunk, tail = take_chunk (n - 1) rest in
    (x :: chunk, tail)
  | rest -> ([], rest)

let run_parallel ?(k_schedule = default_k_schedule) ?router_config ?strategy
    ?(checks = Check.Off) ?(estimate = Estimate.Prune) ?(incremental = true)
    ?(route_incremental = true) ?(route_jobs = 1) ?(t = 0.0)
    ?(cancel = Cals_util.Cancel.never) ~jobs ~subject ~library ~floorplan ~rng
    () =
  if jobs <= 1 then
    run ~k_schedule ?router_config ?strategy ~checks ~estimate ~incremental
      ~route_incremental ~route_jobs ~t ~cancel ~subject ~library ~floorplan
      ~rng ()
  else begin
    Span.with_ ~cat:"flow" ~meta:(Printf.sprintf "jobs=%d" jobs)
      "flow.run_parallel"
    @@ fun () ->
    let positions =
      Span.with_ ~cat:"flow" "flow.place_subject" @@ fun () ->
      Placement.place_subject subject ~floorplan ~rng
    in
    let session =
      make_session ~incremental ?strategy ~subject ~library ~positions ()
    in
    (* The route session is domain-safe (mutex-guarded caches with
       in-flight dedup), so the workers share it directly. A route pool
       is NOT used here: the workers already run on this pool, and
       nesting map_array would deadlock — [route_jobs] only applies to
       the sequential K loop. *)
    let route_session = make_route_session ~route_incremental session in
    (* Sequential match phase: enumerate every tree once, then freeze the
       cache so the worker domains share it read-only. *)
    Option.iter
      (fun s ->
        Span.with_ ~cat:"flow" "flow.match_phase" (fun () ->
            Incremental.warm s);
        Incremental.seal s)
      session;
    let pool = Cals_util.Pool.create ~jobs in
    Fun.protect ~finally:(fun () -> Cals_util.Pool.shutdown pool) @@ fun () ->
    (* Evaluate the schedule speculatively, [jobs] K points at a time.
       Each chunk is scanned in schedule order and the loop stops at the
       first acceptable iteration; speculative work past that point is
       discarded, so the outcome is identical to the sequential [run]
       ([evaluate_k] is deterministic and shares no mutable state). *)
    let rec loop schedule acc =
      match schedule with
      | [] ->
        Log.info (fun m -> m "no K in the schedule was acceptable");
        { iterations = List.rev acc; accepted = None; mapped = None;
          placement = None; routing = None }
      | _ ->
        let chunk, rest = take_chunk jobs schedule in
        let chunk_meta =
          String.concat " "
            (List.map (fun k -> Printf.sprintf "K=%g" k) chunk)
        in
        let results =
          Span.with_ ~cat:"flow" ~meta:chunk_meta "flow.chunk" @@ fun () ->
          Cals_util.Pool.map_array pool
            ~f:(fun _ k ->
              evaluate_k ?router_config ?strategy ~checks ~estimate ?session
                ?route_session ~t ~cancel ~subject ~library ~floorplan
                ~positions ~k ())
            (Array.of_list chunk)
        in
        let n = Array.length results in
        let rec scan i acc =
          if i >= n then loop rest acc
          else begin
            let iteration, (mapped, placement, routing) = results.(i) in
            if Congestion.acceptable iteration.report then begin
              log_accepted iteration;
              check_accepted ~checks ~subject ~k:iteration.k mapped;
              (* Everything past [i] in this chunk was speculative work
                 the sequential loop would never have run. *)
              let discarded = n - i - 1 in
              if discarded > 0 then begin
                Metrics.add m_speculative_discarded discarded;
                Log.debug (fun m ->
                    m "discarding %d speculative evaluation(s) past K=%g"
                      discarded iteration.k)
              end;
              {
                iterations = List.rev (iteration :: acc);
                accepted = Some iteration;
                mapped = Some mapped;
                placement;
                routing;
              }
            end
            else begin
              log_rejected iteration;
              scan (i + 1) (iteration :: acc)
            end
          end
        in
        scan 0 acc
    in
    loop k_schedule []
  end

(* ---------------- Adaptive K search ---------------- *)

(* A point the pruned linear sweep would reject without ever routing it:
   the netlist does not legalize, or the estimator confidently calls it
   unroutable (the PR 7 soundness construction — such points always carry
   violations, so they can never be the accepted one). These are the only
   points the adaptive search may skip a real route for, which is what
   makes its accepted K bit-identical to the linear schedule's. *)
let established_rejected (it : iteration) =
  it.hpwl_um = infinity || it.verdict = Some Estimate.Unroutable

let run_adaptive ?(k_schedule = default_k_schedule) ?router_config ?strategy
    ?(checks = Check.Off) ?(incremental = true) ?(route_incremental = true)
    ?(route_jobs = 1) ?(t = 0.0) ?(cancel = Cals_util.Cancel.never) ?session
    ?positions ~subject ~library ~floorplan ~rng () =
  Span.with_ ~cat:"flow" "flow.run_adaptive" @@ fun () ->
  let positions =
    match positions with
    | Some positions -> positions
    | None ->
      Span.with_ ~cat:"flow" "flow.place_subject" @@ fun () ->
      Placement.place_subject subject ~floorplan ~rng
  in
  let session =
    match session with
    | Some _ as s -> s
    | None -> make_session ~incremental ?strategy ~subject ~library ~positions ()
  in
  let route_session = make_route_session ~route_incremental session in
  let route_pool =
    if route_jobs > 1 then Some (Cals_util.Pool.create ~jobs:route_jobs)
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Cals_util.Pool.shutdown route_pool)
  @@ fun () ->
  let ks = Array.of_list k_schedule in
  let n = Array.length ks in
  let results : iteration option array = Array.make n None in
  let forecast_evals = ref 0 in
  let real_routes = ref 0 in
  (* Forecast-only evaluation: map, legalize and run the estimator, never
     the router ([Triage] skips every negotiated route). *)
  let triage idx =
    incr forecast_evals;
    let iteration, _ =
      evaluate_k ?router_config ?strategy ~checks ~estimate:Estimate.Triage
        ?session ?route_session ~t ~cancel ~subject ~library ~floorplan
        ~positions ~k:ks.(idx) ()
    in
    results.(idx) <- Some iteration;
    iteration
  in
  (* Phase 1 — verdict bisection. Find the frontier: the lowest schedule
     index the estimator does not confidently rule out. Congestion falls
     as K rises, so ruled-out points form (in practice) a prefix of the
     ladder; the bisection exploits that to seed the frontier in
     O(log n) forecast probes instead of n. *)
  let rec bisect lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if established_rejected (triage mid) then bisect (mid + 1) hi
      else bisect lo mid
    end
  in
  let seed_frontier = bisect 0 n in
  (* Phase 2 — soundness sweep. The bisection's prefix assumption is an
     optimization, never a premise: forecast every point it skipped below
     the seed, and lower the frontier to the first point the estimator
     cannot rule out. After this pass every point below the frontier is
     established-rejected by exactly the rules the pruned linear sweep
     applies, so skipping their routes cannot move the accepted K. *)
  for idx = seed_frontier - 1 downto 0 do
    if results.(idx) = None then ignore (triage idx)
  done;
  let frontier =
    let rec first idx =
      if idx >= seed_frontier then seed_frontier
      else
        match results.(idx) with
        | Some it when not (established_rejected it) -> idx
        | _ -> first (idx + 1)
    in
    first 0
  in
  Log.debug (fun m ->
      m "adaptive frontier at %s after %d forecast evaluations"
        (if frontier < n then Printf.sprintf "K=%g" ks.(frontier) else "end")
        !forecast_evals);
  (* Phase 3 — confirming routes. From the frontier up this is the pruned
     linear loop: each point re-forecasts under [Prune] (skipping any the
     estimator confidently rejects) and otherwise routes for real, until
     the first acceptable real route. Acceptance still rides a real
     route; the refinement only reorders where the forecast work
     happens. *)
  let rec confirm idx =
    if idx >= n then None
    else begin
      let iteration, (mapped, placement, routing) =
        evaluate_k ?router_config ?strategy ~checks ~estimate:Estimate.Prune
          ?session ?route_session ?route_pool ~t ~cancel ~subject ~library
          ~floorplan ~positions ~k:ks.(idx) ()
      in
      results.(idx) <- Some iteration;
      if (not iteration.estimated) && iteration.hpwl_um < infinity then
        incr real_routes;
      if Congestion.acceptable iteration.report then begin
        log_accepted iteration;
        check_accepted ~checks ~subject ~k:iteration.k mapped;
        Some (iteration, mapped, placement, routing)
      end
      else begin
        log_rejected iteration;
        confirm (idx + 1)
      end
    end
  in
  let accepted = confirm frontier in
  let iterations = List.filter_map Fun.id (Array.to_list results) in
  let stats =
    {
      real_routes = !real_routes;
      forecast_evals = !forecast_evals;
      frontier_k = (if frontier < n then Some ks.(frontier) else None);
    }
  in
  match accepted with
  | Some (iteration, mapped, placement, routing) ->
    ( { iterations; accepted = Some iteration; mapped = Some mapped;
        placement; routing },
      stats )
  | None ->
    Log.info (fun m -> m "no K in the schedule was acceptable");
    ( { iterations; accepted = None; mapped = None; placement = None;
        routing = None },
      stats )

(* ---------------- Synthesis orchestration ---------------- *)

module Orchestrate = Cals_logic.Orchestrate
module Subject = Cals_netlist.Subject

let m_orch_evaluated =
  Metrics.counter
    ~help:"Orchestrator candidates scored through the K-loop"
    "orchestrate_candidates_evaluated"

let m_orch_guarded =
  Metrics.counter
    ~help:"Orchestrator candidates skipped by the subject-size guard"
    "orchestrate_candidates_guarded"

let m_orch_improvements =
  Metrics.counter
    ~help:"Orchestrated runs where a non-baseline candidate was selected"
    "orchestrate_improvements"

type candidate_eval = {
  cand_label : string;
  gates : int;
  aig_ands : int option;
  aig_depth : int option;
  guarded : bool;
  result : (outcome * adaptive_stats) option;
}

type orchestrated = {
  evaluations : candidate_eval list;
  baseline : candidate_eval;
  best : candidate_eval;
  best_index : int;
  best_subject : Subject.t;
  best_network : Cals_logic.Network.t;
}

(* Candidate ranking key, lexicographic and total: accepted K first (the
   paper's objective — None sorts last), then subject gates, then mapped
   cell area, then candidate index so the baseline wins exact ties.
   Pure data comparison => repeated runs select identically. *)
let score_of_eval idx ev =
  match ev.result with
  | None -> (infinity, max_int, infinity, idx)
  | Some (outcome, _) -> (
    match outcome.accepted with
    | None -> (infinity, ev.gates, infinity, idx)
    | Some it -> (it.k, ev.gates, it.cell_area, idx))

let orchestrate ?(budget = Cals_logic.Orchestrate.default_budget)
    ?(optimize = true) ?k_schedule ?router_config ?(checks = Check.Off)
    ?(jobs = 1) ?(route_jobs = 1) ?(t = 0.0)
    ?(cancel = Cals_util.Cancel.never) ~network ~library ~floorplan_of ~seed
    () =
  Span.with_ ~cat:"flow"
    ~meta:(Printf.sprintf "budget=%d" budget)
    "flow.orchestrate"
  @@ fun () ->
  let prepared =
    Array.of_list (Orchestrate.prepare ~optimize ~budget network)
  in
  let baseline_prep = prepared.(0) in
  let baseline_gates = Orchestrate.subject_gates baseline_prep.subject in
  (* The orchestrator's correctness gate is unconditional: every candidate
     that can be selected is miter-checked against the baseline network
     before any K-loop money is spent on it. *)
  let check_candidate idx (p : Orchestrate.prepared) =
    Equiv.check_exn
      ~rng:(Cals_util.Rng.create (seed + 7919 + idx))
      ~stage:("orchestrate:" ^ p.label)
      (Equiv.of_network ~label:"baseline network" baseline_prep.network)
      (Equiv.of_subject ~label:(p.label ^ " subject") p.subject)
  in
  (* route_jobs nests a second pool inside each candidate task; keep the
     router sequential when the candidates themselves run on a pool. *)
  let route_jobs = if jobs > 1 then 1 else route_jobs in
  let evaluate idx (p : Orchestrate.prepared) =
    let gates = Orchestrate.subject_gates p.subject in
    let guarded = idx > 0 && gates > baseline_gates in
    if guarded then begin
      Metrics.incr m_orch_guarded;
      {
        cand_label = p.label;
        gates;
        aig_ands = p.aig_ands;
        aig_depth = p.aig_depth;
        guarded;
        result = None;
      }
    end
    else begin
      check_candidate idx p;
      Metrics.incr m_orch_evaluated;
      let result =
        run_adaptive ?k_schedule ?router_config ~checks ~route_jobs ~t
          ~cancel ~subject:p.subject ~library
          ~floorplan:(floorplan_of p.subject)
          ~rng:(Cals_util.Rng.create (seed + 1))
          ()
      in
      {
        cand_label = p.label;
        gates;
        aig_ands = p.aig_ands;
        aig_depth = p.aig_depth;
        guarded;
        result = Some result;
      }
    end
  in
  let evaluations =
    if jobs > 1 then begin
      let pool = Cals_util.Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Cals_util.Pool.shutdown pool)
      @@ fun () -> Cals_util.Pool.map_array pool ~f:evaluate prepared
    end
    else Array.mapi evaluate prepared
  in
  let best_index = ref 0 in
  Array.iteri
    (fun idx ev ->
      if compare (score_of_eval idx ev) (score_of_eval !best_index evaluations.(!best_index)) < 0
      then best_index := idx)
    evaluations;
  let best_index = !best_index in
  let best = evaluations.(best_index) in
  if best_index > 0 then Metrics.incr m_orch_improvements;
  (* Final gate: the selected mapped netlist (when one was accepted) is
     re-mitered against its own subject graph. *)
  (match best.result with
  | Some ({ accepted = Some it; mapped = Some mapped; _ }, _) ->
    Equiv.check_exn
      ~rng:(Cals_util.Rng.create (equiv_seed ~k:it.k))
      ~stage:"orchestrate:accepted"
      (Equiv.of_subject ~label:"selected subject"
         prepared.(best_index).subject)
      (Equiv.of_mapped
         ~label:(Printf.sprintf "selected mapped@K=%g" it.k)
         mapped)
  | _ -> ());
  Log.info (fun m ->
      m "orchestrate: selected %s (%d gates vs baseline %d) from %d candidates"
        best.cand_label best.gates baseline_gates (Array.length evaluations));
  {
    evaluations = Array.to_list evaluations;
    baseline = evaluations.(0);
    best;
    best_index;
    best_subject = prepared.(best_index).subject;
    best_network = prepared.(best_index).network;
  }
