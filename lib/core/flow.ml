module Placement = Cals_place.Placement
module Floorplan = Cals_place.Floorplan
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion
module Mapped = Cals_netlist.Mapped

type iteration = {
  k : float;
  cells : int;
  cell_area : float;
  utilization : float;
  hpwl_um : float;
  report : Congestion.report;
}

type outcome = {
  iterations : iteration list;
  accepted : iteration option;
  mapped : Mapped.t option;
  placement : Placement.mapped_placement option;
  routing : Router.result option;
}

let default_k_schedule =
  [ 0.0; 0.0001; 0.00025; 0.0005; 0.00075; 0.001; 0.0025; 0.005; 0.0075; 0.01;
    0.05; 0.1; 0.5; 1.0 ]

let overflow_report =
  (* Sentinel for netlists that do not even legalize into the floorplan. *)
  {
    Congestion.violations = max_int;
    total_overflow = infinity;
    max_utilization = infinity;
    congested_gcell_fraction = 1.0;
    wirelength_um = infinity;
  }

let evaluate_k ?router_config ?(strategy = Partition.Pdp) ~subject ~library
    ~floorplan ~positions ~k () =
  let options = { (Mapper.congestion_aware ~k) with strategy } in
  let result = Mapper.map subject ~library ~positions options in
  let mapped = result.Mapper.mapped in
  let cell_area = Mapped.total_area mapped in
  let utilization = Floorplan.utilization floorplan ~cell_area in
  match Placement.place_mapped_seeded mapped ~floorplan with
  | exception Cals_place.Legalize.Overflow _ ->
    ( {
        k;
        cells = Mapped.num_cells mapped;
        cell_area;
        utilization;
        hpwl_um = infinity;
        report = overflow_report;
      },
      (mapped, None, None) )
  | placement ->
    let wire = Cals_cell.Library.wire library in
    let routing =
      Router.route_mapped ?config:router_config mapped ~floorplan ~wire ~placement
    in
    let report = Congestion.of_result routing in
    ( {
        k;
        cells = Mapped.num_cells mapped;
        cell_area;
        utilization;
        hpwl_um = placement.Placement.hpwl;
        report;
      },
      (mapped, Some placement, Some routing) )

let run ?(k_schedule = default_k_schedule) ?router_config ?strategy ~subject
    ~library ~floorplan ~rng () =
  let positions = Placement.place_subject subject ~floorplan ~rng in
  let rec loop schedule acc =
    match schedule with
    | [] -> { iterations = List.rev acc; accepted = None; mapped = None;
              placement = None; routing = None }
    | k :: rest ->
      let iteration, (mapped, placement, routing) =
        evaluate_k ?router_config ?strategy ~subject ~library ~floorplan
          ~positions ~k ()
      in
      if Congestion.acceptable iteration.report then
        {
          iterations = List.rev (iteration :: acc);
          accepted = Some iteration;
          mapped = Some mapped;
          placement;
          routing;
        }
      else loop rest (iteration :: acc)
  in
  loop k_schedule []

(* ---------------- Speculative parallel evaluation ---------------- *)

let rec take_chunk n = function
  | x :: rest when n > 0 ->
    let chunk, tail = take_chunk (n - 1) rest in
    (x :: chunk, tail)
  | rest -> ([], rest)

let run_parallel ?(k_schedule = default_k_schedule) ?router_config ?strategy
    ~jobs ~subject ~library ~floorplan ~rng () =
  if jobs <= 1 then
    run ~k_schedule ?router_config ?strategy ~subject ~library ~floorplan ~rng
      ()
  else begin
    let positions = Placement.place_subject subject ~floorplan ~rng in
    let pool = Cals_util.Pool.create ~jobs in
    Fun.protect ~finally:(fun () -> Cals_util.Pool.shutdown pool) @@ fun () ->
    (* Evaluate the schedule speculatively, [jobs] K points at a time.
       Each chunk is scanned in schedule order and the loop stops at the
       first acceptable iteration; speculative work past that point is
       discarded, so the outcome is identical to the sequential [run]
       ([evaluate_k] is deterministic and shares no mutable state). *)
    let rec loop schedule acc =
      match schedule with
      | [] ->
        { iterations = List.rev acc; accepted = None; mapped = None;
          placement = None; routing = None }
      | _ ->
        let chunk, rest = take_chunk jobs schedule in
        let results =
          Cals_util.Pool.map_array pool
            ~f:(fun _ k ->
              evaluate_k ?router_config ?strategy ~subject ~library ~floorplan
                ~positions ~k ())
            (Array.of_list chunk)
        in
        let n = Array.length results in
        let rec scan i acc =
          if i >= n then loop rest acc
          else begin
            let iteration, (mapped, placement, routing) = results.(i) in
            if Congestion.acceptable iteration.report then
              {
                iterations = List.rev (iteration :: acc);
                accepted = Some iteration;
                mapped = Some mapped;
                placement;
                routing;
              }
            else scan (i + 1) (iteration :: acc)
          end
        in
        scan 0 acc
    in
    loop k_schedule []
  end
