module Check = Cals_verify.Check
module Equiv = Cals_verify.Equiv
module Fuzz = Cals_verify.Fuzz
module Network = Cals_logic.Network
module Subject = Cals_netlist.Subject
module Floorplan = Cals_place.Floorplan

let family_of = function
  | Fuzz.Pla -> `Pla
  | Fuzz.Multilevel -> `Multilevel

let check_params ?(utilization = 0.45) ?(jobs = 1) ?(level = Check.Full)
    (p : Fuzz.params) =
  let library = Cals_cell.Stdlib_018.library in
  let geometry = Cals_cell.Library.geometry library in
  let rounds = max 2 (Check.rounds level) in
  try
    let network =
      Cals_workload.Gen.of_fuzz ~family:(family_of p.Fuzz.family)
        ~seed:p.Fuzz.seed ~inputs:p.Fuzz.inputs ~outputs:p.Fuzz.outputs
        ~size:p.Fuzz.size
    in
    let original = Network.copy network in
    Cals_logic.Optimize.script_area network;
    Equiv.check_exn ~rounds
      ~rng:(Cals_util.Rng.create (p.Fuzz.seed + 17))
      ~stage:"equiv"
      (Equiv.of_network ~label:"original" original)
      (Equiv.of_network ~label:"optimized" network);
    let subject = Cals_logic.Decompose.subject_of_network network in
    Equiv.check_exn ~rounds
      ~rng:(Cals_util.Rng.create (p.Fuzz.seed + 23))
      ~stage:"equiv"
      (Equiv.of_network ~label:"optimized" network)
      (Equiv.of_subject ~label:"subject" subject);
    let floorplan =
      Floorplan.for_area
        ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
        ~utilization ~aspect:1.0 ~geometry
    in
    let rng = Cals_util.Rng.create (p.Fuzz.seed + 1) in
    let (_ : Flow.outcome) =
      if jobs > 1 then
        Flow.run_parallel ~jobs ~checks:level ~subject ~library ~floorplan ~rng
          ()
      else Flow.run ~checks:level ~subject ~library ~floorplan ~rng ()
    in
    Ok ()
  with
  | Check.Violation { stage; detail } -> Error (stage, detail)
  | exn -> Error ("exception", Printexc.to_string exn)
