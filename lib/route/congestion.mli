(** Congestion evaluation and reporting — the "congestion map" the paper's
    methodology loop (Figure 3) inspects before deciding whether to raise
    the congestion factor K. *)

type report = {
  violations : int;
  total_overflow : float;
  max_utilization : float;
  congested_gcell_fraction : float;  (** Gcells above the hot threshold. *)
  wirelength_um : float;
}

val hot_threshold : float
(** Utilization above which a gcell counts as congested (0.95). *)

val of_result : Router.result -> report
(** Summarize a routing run: violation count and total overflow from the
    grid's capacitated edges, the worst edge utilization, the hot-gcell
    fraction, and the total routed wirelength. *)

val acceptable : report -> bool
(** The Figure-3 predicate: fully routable (zero violations). *)

val gcell_map : Router.result -> Cals_util.Grid2d.t
(** Per-gcell utilization (max over the gcell's incident edges) as a
    fresh grid the caller owns — the read-only view of the routed
    congestion map, so consumers (estimator calibration, [--dump-congestion],
    tests) no longer reach into the router's grid. *)

val gcell : Router.result -> int -> int -> float
(** [gcell r c row] is one cell of {!gcell_map}. Raises [Invalid_argument]
    out of bounds. *)

val ascii_map : Router.result -> string
(** Heat map of gcell utilization, rows printed top-down. *)

val summary : report -> string
(** One line for logs and the CLI, e.g.
    [violations=0 overflow=0.0 max_util=0.47 hot_gcells=0.0% wirelength=2722um]. *)
