type segment = {
  src : int * int;
  dst : int * int;
}

let manhattan (c1, r1) (c2, r2) = abs (c1 - c2) + abs (r1 - r2)

(* Prim over pins that are already distinct and sorted — the router holds
   them in that form (its per-net gcell lists), so re-sorting here would
   be pure waste on the hot path. *)
let mst_segments_sorted pins =
  match pins with
  | [] | [ _ ] -> []
  | first :: _ ->
    let arr = Array.of_list pins in
    let n = Array.length arr in
    let in_tree = Array.make n false in
    let dist = Array.make n max_int in
    let parent = Array.make n (-1) in
    let first_idx = ref 0 in
    Array.iteri (fun i p -> if p = first then first_idx := i) arr;
    dist.(!first_idx) <- 0;
    let segments = ref [] in
    for _ = 1 to n do
      (* Pick the closest node not yet in the tree. *)
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if (not in_tree.(i)) && (!best < 0 || dist.(i) < dist.(!best)) then best := i
      done;
      let u = !best in
      in_tree.(u) <- true;
      if parent.(u) >= 0 then
        segments := { src = arr.(parent.(u)); dst = arr.(u) } :: !segments;
      for v = 0 to n - 1 do
        if not in_tree.(v) then begin
          let d = manhattan arr.(u) arr.(v) in
          if d < dist.(v) then begin
            dist.(v) <- d;
            parent.(v) <- u
          end
        end
      done
    done;
    List.rev !segments

let mst_segments pins = mst_segments_sorted (List.sort_uniq compare pins)

let segment_length s = manhattan s.src s.dst

let star_segments driver pins =
  pins
  |> List.sort_uniq compare
  |> List.filter (fun p -> p <> driver)
  |> List.map (fun p -> { src = driver; dst = p })
