(** Global-routing grid (gcells and capacitated boundary edges).

    Capacity per edge derives from the gcell span, the routing pitch of the
    library wire model and the metal-layer budget — the "fixed amount of
    routing resources" of the paper. Layers above M1 contribute full track
    counts in alternating directions; M1 contributes only what the standard
    cells leave uncovered, so local placement density eats routing capacity
    (the mechanism behind the paper's observation that a cell-area penalty
    "limits the amount of available wiring resources"). Usage and
    negotiation history are mutable; the router owns them. *)

type t = private {
  cols : int;
  rows : int;
  gcell_um : float;  (** Edge length of one gcell. *)
  hcap : float array;  (** Per horizontal edge, (cols-1) * rows row-major. *)
  vcap : float array;  (** Per vertical edge, cols * (rows-1). *)
  husage : float array;
  vusage : float array;
  hhistory : float array;
  vhistory : float array;
  hmark : Bytes.t;  (** Overflow-mark bitfield, one bit per horizontal edge. *)
  vmark : Bytes.t;  (** Same for vertical edges. *)
}

type edge =
  | H of int * int  (** [H (c, r)]: between gcells (c,r) and (c+1,r). *)
  | V of int * int  (** [V (c, r)]: between (c,r) and (c,r+1). *)

val dims :
  floorplan:Cals_place.Floorplan.t -> gcell_rows:int -> int * int * float
(** [(cols, rows, gcell_um)] of the grid {!create} would build for this
    floorplan — the geometry without the capacity arrays. The router's
    session uses it to compute pin gcells (and fingerprint a route
    request) before deciding whether a grid needs to exist at all. *)

val create :
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  layers:int ->
  ?gcell_rows:int ->
  ?m1_free:float ->
  ?density:Cals_util.Grid2d.t ->
  unit ->
  t
(** [gcell_rows] (default 2) sets the gcell edge to that many row heights.
    [m1_free] (default 1.3) is the M1 track share per direction on an empty
    gcell; it shrinks linearly to 0 as the local [density] (cell-area
    fraction per gcell, clamped to [0,1]) approaches 1. Without a density
    map M1 is fully available. *)

val gcell_of_point : t -> Cals_util.Geom.point -> int * int
(** Clamped to the grid. *)

val center_of_gcell : t -> int * int -> Cals_util.Geom.point
(** Center of the gcell, in µm die coordinates. *)

val capacity : t -> edge -> float
(** Routing tracks the edge offers (fixed at {!create}). *)

val usage : t -> edge -> float
(** Tracks currently claimed by routed segments. *)

val history : t -> edge -> float
(** Accumulated negotiation-history penalty (PathFinder-style). *)

val add_usage : t -> edge -> float -> unit
(** Claim (or with a negative delta, release) tracks on the edge. *)

val add_history : t -> edge -> float -> unit
(** Bump the edge's history penalty after an overflowed iteration. *)

val overflow : t -> edge -> float
(** [max 0 (usage - capacity)]. *)

val total_overflow : t -> float
(** Sum of {!overflow} over every edge. *)

val overflowed_edges : t -> edge list
(** Edges with positive {!overflow}, horizontal first, row-major. *)

val max_utilization : t -> float
(** Largest [usage / capacity] over every edge with capacity. *)

val reset_usage : t -> unit
(** Zero every edge's usage (history is kept — the negotiation loop's
    rip-up-all-and-reroute step). *)

val mark_overflowed : t -> edge -> unit
(** Set the edge's bit in the overflow-mark bitfield. The marks are a
    scratch set owned by the router's negotiation loop — they carry no
    meaning between iterations and are unrelated to {!overflow}. *)

val is_overflowed : t -> edge -> bool
(** Whether {!mark_overflowed} was called since the last
    {!clear_overflow_marks}. *)

val clear_overflow_marks : t -> unit
(** Zero the scratch bitfields for the next negotiation iteration. *)

(** {2 Flat-index accessors}

    The router's hot loops address edges by flat array index — horizontal
    edge [(c, r)] at [r * (cols - 1) + c] of [hcap]/[husage]/[hhistory],
    vertical [(c, r)] at [r * cols + c] — instead of allocating {!edge}
    constructors. These variants operate on those indices directly; no
    bounds checks beyond the underlying array's. *)

val num_hedges : t -> int
(** [(cols - 1) * rows], the length of the horizontal edge arrays. *)

val num_vedges : t -> int
(** [cols * (rows - 1)], the length of the vertical edge arrays. *)

val mark_h : t -> int -> unit
(** {!mark_overflowed} by flat horizontal index. *)

val mark_v : t -> int -> unit
(** {!mark_overflowed} by flat vertical index. *)

val marked_h : t -> int -> bool
(** {!is_overflowed} by flat horizontal index. *)

val marked_v : t -> int -> bool
(** {!is_overflowed} by flat vertical index. *)

val iter_overflowed : t -> h:(int -> unit) -> v:(int -> unit) -> unit
(** Call [h]/[v] with the flat index of every overflowed edge (usage
    strictly above capacity), horizontal edges first, row-major — the
    allocation-free counterpart of {!overflowed_edges}. *)

val congestion_map : t -> Cals_util.Grid2d.t
(** Per-gcell maximum of the utilizations of its incident edges. *)

val iter_edges : t -> (edge -> unit) -> unit
(** Every edge, horizontal first, row-major. *)
