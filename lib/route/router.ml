module Geom = Cals_util.Geom
module Pqueue = Cals_util.Pqueue
module Mapped = Cals_netlist.Mapped
module Probe = Cals_telemetry.Probe
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_maze_calls = Metrics.counter ~help:"Maze-route invocations" "route_maze_calls"
let m_maze_pops = Metrics.counter ~help:"Frontier pops across maze routes" "route_maze_pops"

let m_ripup_iterations =
  Metrics.counter ~help:"Negotiated rip-up and reroute iterations"
    "route_ripup_iterations"

let m_rerouted =
  Metrics.counter ~help:"Segments ripped up and rerouted" "route_segments_rerouted"

let m_overflow_per_iteration =
  Metrics.histogram ~help:"Total gcell overflow at each rip-up iteration"
    ~buckets:[| 0.0; 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0 |]
    "route_overflow_per_iteration"

let g_overflow = Metrics.gauge ~help:"Total overflow after routing" "route_overflow"

let g_max_utilization =
  Metrics.gauge ~help:"Peak gcell-edge utilization after routing"
    "route_max_utilization"

type config = {
  layers : int;
  gcell_rows : int;
  m1_free : float;
  star_topology : bool;
  reroute_iterations : int;
  overflow_penalty : float;
  history_increment : float;
}

let default_config =
  {
    layers = 3;
    gcell_rows = 2;
    m1_free = 1.3;
    star_topology = false;
    reroute_iterations = 16;
    overflow_penalty = 4.0;
    history_increment = 1.0;
  }

type route = {
  net : int;
  gends : (int * int) * (int * int);
  edges : Rgrid.edge list;
}

type result = {
  grid : Rgrid.t;
  violations : int;
  total_overflow : float;
  wirelength_um : float;
  max_utilization : float;
  num_nets : int;
  num_segments : int;
  net_length_um : float array;
  routes : route array;
  net_gcells : (int * int) list array;
}

type seg_state = {
  net : int;
  ends : (int * int) * (int * int);
  mutable path : Rgrid.edge list;
}

(* Cost of pushing one more track through [e]. *)
let edge_cost cfg grid e =
  let u = Rgrid.usage grid e and cap = Rgrid.capacity grid e in
  let over = u +. 1.0 -. cap in
  let congestion = if over > 0.0 then cfg.overflow_penalty *. over else 0.0 in
  1.0 +. congestion +. Rgrid.history grid e

(* Edges of a monotone staircase path through the given corner points.
   One shared accumulator; no list appends. *)
let edges_of_corners corners =
  let rec straight (c1, r1) ((c2, r2) as dst) acc =
    if c1 = c2 && r1 = r2 then acc
    else if r1 = r2 then
      let step = if c2 > c1 then 1 else -1 in
      let edge_c = if step > 0 then c1 else c1 - 1 in
      straight (c1 + step, r1) dst (Rgrid.H (edge_c, r1) :: acc)
    else begin
      let step = if r2 > r1 then 1 else -1 in
      let edge_r = if step > 0 then r1 else r1 - 1 in
      straight (c1, r1 + step) dst (Rgrid.V (c1, edge_r) :: acc)
    end
  in
  let rec walk acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) -> walk (straight a b acc) rest
  in
  walk [] corners

(* Candidate pattern paths between two gcells: both Ls plus single-bend Z
   shapes through the midpoint in each dimension. A Z whose midpoint
   coincides with an endpoint duplicates an L and is skipped. *)
let pattern_candidates (c1, r1) (c2, r2) =
  let l1 = [ (c1, r1); (c2, r1); (c2, r2) ] in
  let l2 = [ (c1, r1); (c1, r2); (c2, r2) ] in
  let mid_c = (c1 + c2) / 2 and mid_r = (r1 + r2) / 2 in
  let zs =
    if mid_r <> r1 && mid_r <> r2 then
      [ [ (c1, r1); (c1, mid_r); (c2, mid_r); (c2, r2) ] ]
    else []
  in
  let zs =
    if mid_c <> c1 && mid_c <> c2 then
      [ (c1, r1); (mid_c, r1); (mid_c, r2); (c2, r2) ] :: zs
    else zs
  in
  List.map edges_of_corners (l1 :: l2 :: zs)

let commit grid path = List.iter (fun e -> Rgrid.add_usage grid e 1.0) path
let rip_up grid path = List.iter (fun e -> Rgrid.add_usage grid e (-1.0)) path

(* Cost of [path], giving up as soon as the running sum reaches [cutoff]
   (the best complete candidate so far), so losing candidates are only
   costed up to the point where they lose. *)
let path_cost_within cfg grid ~cutoff path =
  let rec go acc = function
    | [] -> acc
    | e :: rest ->
      let acc = acc +. edge_cost cfg grid e in
      if acc >= cutoff then infinity else go acc rest
  in
  go 0.0 path

let pattern_route cfg grid seg =
  let a, b = seg.ends in
  if a = b then seg.path <- []
  else begin
    let best_cost = ref infinity and best = ref [] in
    List.iter
      (fun path ->
        let cost = path_cost_within cfg grid ~cutoff:!best_cost path in
        if cost < !best_cost || !best = [] then begin
          best_cost := cost;
          best := path
        end)
      (pattern_candidates a b);
    seg.path <- !best;
    commit grid !best
  end

(* Reusable maze-route scratch state. [dist]/[prev] entries are valid only
   when the cell's [stamp] equals the current generation, so consecutive
   calls share the arrays without clearing them. *)
type scratch = {
  mutable dist : float array;
  mutable prev : int array;
  mutable stamp : int array;
  mutable gen : int;
  frontier : Pqueue.Int.t;
}

let create_scratch n =
  let n = max 1 n in
  {
    dist = Array.make n infinity;
    prev = Array.make n (-1);
    stamp = Array.make n 0;
    gen = 0;
    frontier = Pqueue.Int.create ();
  }

let ensure_scratch s n =
  if Array.length s.dist < n then begin
    s.dist <- Array.make n infinity;
    s.prev <- Array.make n (-1);
    s.stamp <- Array.make n 0;
    s.gen <- 0
  end

(* A* over gcells. The heuristic is Manhattan distance times the minimum
   edge cost (edge_cost >= 1.0), which is admissible and consistent, so
   the first pop of the target is optimal — exactly Dijkstra's answer.
   Stale queue entries (lazy decrease-key) satisfy f > dist + h and are
   skipped. The inner loop indexes the grid's flat capacity/usage/history
   arrays directly and pushes int cell indices into the unboxed queue, so
   it allocates nothing; only the final backtrack builds a path. *)
let maze_route cfg grid scratch (src, dst) =
  let cols = grid.Rgrid.cols and rows = grid.Rgrid.rows in
  let n = cols * rows in
  ensure_scratch scratch n;
  scratch.gen <- scratch.gen + 1;
  let gen = scratch.gen in
  let dist = scratch.dist and prev = scratch.prev and stamp = scratch.stamp in
  let q = scratch.frontier in
  Pqueue.Int.clear q;
  let hcap = grid.Rgrid.hcap
  and husage = grid.Rgrid.husage
  and hhist = grid.Rgrid.hhistory in
  let vcap = grid.Rgrid.vcap
  and vusage = grid.Rgrid.vusage
  and vhist = grid.Rgrid.vhistory in
  let penalty = cfg.overflow_penalty in
  let hedge_cost i =
    let over = husage.(i) +. 1.0 -. hcap.(i) in
    1.0 +. (if over > 0.0 then penalty *. over else 0.0) +. hhist.(i)
  in
  let vedge_cost i =
    let over = vusage.(i) +. 1.0 -. vcap.(i) in
    1.0 +. (if over > 0.0 then penalty *. over else 0.0) +. vhist.(i)
  in
  let sc, sr = src and dc, dr = dst in
  let sidx = (sr * cols) + sc and didx = (dr * cols) + dc in
  let h c r = float_of_int (abs (c - dc) + abs (r - dr)) in
  let relax v g nidx nc nr edge_cost =
    let cost = g +. edge_cost in
    if stamp.(nidx) <> gen || cost < dist.(nidx) then begin
      dist.(nidx) <- cost;
      stamp.(nidx) <- gen;
      prev.(nidx) <- v;
      Pqueue.Int.push q (cost +. h nc nr) nidx
    end
  in
  dist.(sidx) <- 0.0;
  stamp.(sidx) <- gen;
  prev.(sidx) <- -1;
  Pqueue.Int.push q (h sc sr) sidx;
  (* Pops are counted in a local ref and published once per call, so the
     enabled path adds one predictable branch per pop and the disabled
     path costs a single flag read for the whole search. *)
  let counting = Probe.enabled () in
  let pops = ref 0 in
  let found = ref false in
  (try
     while not (Pqueue.Int.is_empty q) do
       let f = Pqueue.Int.min_prio q in
       let v = Pqueue.Int.pop q in
       if counting then incr pops;
       let c = v mod cols and r = v / cols in
       let g = dist.(v) in
       if f <= g +. h c r then begin
         if v = didx then begin
           found := true;
           raise Exit
         end;
         if c + 1 < cols then
           relax v g (v + 1) (c + 1) r (hedge_cost ((r * (cols - 1)) + c));
         if c > 0 then
           relax v g (v - 1) (c - 1) r (hedge_cost ((r * (cols - 1)) + c - 1));
         if r + 1 < rows then
           relax v g (v + cols) c (r + 1) (vedge_cost ((r * cols) + c));
         if r > 0 then
           relax v g (v - cols) c (r - 1) (vedge_cost (((r - 1) * cols) + c))
       end
     done
   with Exit -> ());
  if counting then begin
    Metrics.incr m_maze_calls;
    Metrics.add m_maze_pops !pops
  end;
  if not !found then None
  else begin
    let rec backtrack v acc =
      if v = sidx then acc
      else begin
        let p = prev.(v) in
        let pc = p mod cols and pr = p / cols in
        let c = v mod cols and r = v / cols in
        let edge =
          if pr = r then Rgrid.H (min pc c, r) else Rgrid.V (c, min pr r)
        in
        backtrack p (edge :: acc)
      end
    in
    Some (backtrack didx [])
  end

let path_uses_overflow grid path = List.exists (Rgrid.is_overflowed grid) path

let route_pins ?(config = default_config) ?density
    ?(cancel = Cals_util.Cancel.never) ~floorplan ~wire nets =
  Span.with_ ~cat:"route"
    ~meta:(Printf.sprintf "%d nets" (Array.length nets))
    "route.route_pins"
  @@ fun () ->
  let grid =
    Rgrid.create ~floorplan ~wire ~layers:config.layers
      ~gcell_rows:config.gcell_rows ~m1_free:config.m1_free ?density ()
  in
  let num_nets = Array.length nets in
  (* Build segments. *)
  let segments = ref [] in
  let net_gcells = Array.make num_nets [] in
  Array.iteri
    (fun net pins ->
      let cells = List.map (Rgrid.gcell_of_point grid) pins in
      net_gcells.(net) <- List.sort_uniq compare cells;
      let segs =
        if config.star_topology then
          match cells with
          | [] -> []
          | driver :: rest -> Topology.star_segments driver rest
        else Topology.mst_segments cells
      in
      List.iter
        (fun s ->
          segments :=
            { net; ends = (s.Topology.src, s.Topology.dst); path = [] }
            :: !segments)
        segs)
    nets;
  let segments = Array.of_list (List.rev !segments) in
  (* Initial pattern routing, long segments first (they are the hardest to
     place once the grid fills up). *)
  let order = Array.init (Array.length segments) (fun i -> i) in
  Array.sort
    (fun a b ->
      let len s =
        let (c1, r1), (c2, r2) = segments.(s).ends in
        abs (c1 - c2) + abs (r1 - r2)
      in
      compare (len b) (len a))
    order;
  Cals_util.Cancel.check cancel;
  Span.with_ ~cat:"route" "route.pattern" (fun () ->
      Array.iter (fun i -> pattern_route config grid segments.(i)) order);
  (* Negotiated rip-up and reroute. One scratch serves every maze call on
     this grid; generation stamps make reuse free. *)
  let scratch = create_scratch (grid.Rgrid.cols * grid.Rgrid.rows) in
  let negotiate_token = Span.enter ~cat:"route" "route.negotiate" in
  Fun.protect ~finally:(fun () -> Span.exit negotiate_token) @@ fun () ->
  let iteration = ref 0 in
  while !iteration < config.reroute_iterations && Rgrid.total_overflow grid > 0.0 do
    Cals_util.Cancel.check cancel;
    incr iteration;
    Metrics.incr m_ripup_iterations;
    Metrics.observe m_overflow_per_iteration (Rgrid.total_overflow grid);
    Rgrid.clear_overflow_marks grid;
    List.iter
      (fun e ->
        Rgrid.mark_overflowed grid e;
        Rgrid.add_history grid e config.history_increment)
      (Rgrid.overflowed_edges grid);
    Array.iter
      (fun seg ->
        if seg.path <> [] && path_uses_overflow grid seg.path then begin
          Cals_util.Cancel.check cancel;
          rip_up grid seg.path;
          Metrics.incr m_rerouted;
          match maze_route config grid scratch seg.ends with
          | Some path ->
            seg.path <- path;
            commit grid path
          | None ->
            (* Should not happen on a connected grid; restore. *)
            commit grid seg.path
        end)
      segments
  done;
  let net_length = Array.make num_nets 0.0 in
  Array.iter
    (fun seg ->
      net_length.(seg.net) <-
        net_length.(seg.net)
        +. (float_of_int (List.length seg.path) *. grid.Rgrid.gcell_um))
    segments;
  let wirelength = Array.fold_left ( +. ) 0.0 net_length in
  let overflow = Rgrid.total_overflow grid in
  let max_util = Rgrid.max_utilization grid in
  Metrics.set g_overflow overflow;
  Metrics.set g_max_utilization max_util;
  {
    grid;
    violations = int_of_float (ceil overflow);
    total_overflow = overflow;
    wirelength_um = wirelength;
    max_utilization = max_util;
    num_nets;
    num_segments = Array.length segments;
    net_length_um = net_length;
    routes =
      Array.map
        (fun seg -> { net = seg.net; gends = seg.ends; edges = seg.path })
        segments;
    net_gcells;
  }

(* Cell-area fraction per gcell, for the M1 blockage model. *)
let density_map ?(config = default_config) mapped ~floorplan
    ~(placement : Cals_place.Placement.mapped_placement) =
  let gcell_um =
    float_of_int config.gcell_rows *. floorplan.Cals_place.Floorplan.row_height
  in
  let cols =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_width /. gcell_um)))
  in
  let rows =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_height /. gcell_um)))
  in
  let g = Cals_util.Grid2d.create ~cols ~rows 0.0 in
  Array.iteri
    (fun i inst ->
      let p = placement.Cals_place.Placement.cell_pos.(i) in
      let c = int_of_float (p.Geom.x /. gcell_um) in
      let r = int_of_float (p.Geom.y /. gcell_um) in
      let c = max 0 (min (cols - 1) c) and r = max 0 (min (rows - 1) r) in
      Cals_util.Grid2d.add g c r inst.Mapped.cell.Cals_cell.Cell.area)
    mapped.Mapped.instances;
  Cals_util.Grid2d.map_inplace (fun a -> a /. (gcell_um *. gcell_um)) g;
  g

let route_mapped ?config ?cancel mapped ~floorplan ~wire ~placement =
  let density = density_map ?config mapped ~floorplan ~placement in
  let nets = Mapped.nets mapped in
  let pos_of_signal = function
    | Mapped.Of_pi i -> placement.Cals_place.Placement.pi_pos.(i)
    | Mapped.Of_inst i -> placement.Cals_place.Placement.cell_pos.(i)
  in
  let pin_clusters =
    Array.map
      (fun net ->
        match net.Mapped.sinks with
        | [] -> []
        | sinks ->
          let sink_pos = function
            | Mapped.Cell_pin (i, _) -> placement.Cals_place.Placement.cell_pos.(i)
            | Mapped.Po oi -> placement.Cals_place.Placement.po_pos.(oi)
          in
          pos_of_signal net.Mapped.driver :: List.map sink_pos sinks)
      nets
  in
  route_pins ?config ~density ?cancel ~floorplan ~wire pin_clusters
