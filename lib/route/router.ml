module Geom = Cals_util.Geom
module Arena = Cals_util.Arena
module Pool = Cals_util.Pool
module Cancel = Cals_util.Cancel
module Fnv = Cals_util.Tables.Fnv64
module Mapped = Cals_netlist.Mapped
module Probe = Cals_telemetry.Probe
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_maze_calls = Metrics.counter ~help:"Maze-route invocations" "route_maze_calls"
let m_maze_pops = Metrics.counter ~help:"Frontier pops across maze routes" "route_maze_pops"

let m_ripup_iterations =
  Metrics.counter ~help:"Negotiated rip-up and reroute iterations"
    "route_ripup_iterations"

let m_rerouted =
  Metrics.counter ~help:"Segments ripped up and rerouted" "route_segments_rerouted"

let m_overflow_per_iteration =
  Metrics.histogram ~help:"Total gcell overflow at each rip-up iteration"
    ~buckets:[| 0.0; 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0 |]
    "route_overflow_per_iteration"

let g_overflow = Metrics.gauge ~help:"Total overflow after routing" "route_overflow"

let g_max_utilization =
  Metrics.gauge ~help:"Peak gcell-edge utilization after routing"
    "route_max_utilization"

let m_session_replays =
  Metrics.counter ~help:"Route requests replayed whole from a session cache"
    "router_session_replays"

let m_session_nets_reused =
  Metrics.counter ~help:"Nets served from a session cache (topology or full route)"
    "router_session_nets_reused"

let m_session_nets_rerouted =
  Metrics.counter ~help:"Nets re-derived on a session cache miss"
    "router_session_nets_rerouted"

let g_session_arena =
  Metrics.gauge ~help:"Arena bytes of the last released routing state"
    "router_session_arena_bytes"

type config = {
  layers : int;
  gcell_rows : int;
  m1_free : float;
  star_topology : bool;
  reroute_iterations : int;
  overflow_penalty : float;
  history_increment : float;
}

let default_config =
  {
    layers = 3;
    gcell_rows = 2;
    m1_free = 1.3;
    star_topology = false;
    reroute_iterations = 16;
    overflow_penalty = 4.0;
    history_increment = 1.0;
  }

type route = {
  net : int;
  gends : (int * int) * (int * int);
  edges : Rgrid.edge list;
}

type result = {
  grid : Rgrid.t;
  violations : int;
  total_overflow : float;
  wirelength_um : float;
  max_utilization : float;
  num_nets : int;
  num_segments : int;
  net_length_um : float array;
  routes : route array;
  net_gcells : (int * int) list array;
}

(* A segment's committed path lives as a slice [off, off+len) of flat edge
   ids in the routing call's arena — no per-edge list cells on the OCaml
   heap until the final result is built. Edge id encoding: with
   [nh = (cols-1) * rows], id < nh is horizontal edge [r*(cols-1)+c],
   otherwise [id - nh] is vertical edge [r*cols+c]. Slices are stored in
   src-to-dst walk order. *)
type seg_state = {
  net : int;
  ends : (int * int) * (int * int);
  mutable off : int;
  mutable len : int;
}

(* Growable int vector over a plain array (indices, never floats). *)
type vec = {
  mutable a : int array;
  mutable n : int;
}

let vec_make () = { a = Array.make 64 0; n = 0 }
let vec_clear v = v.n <- 0

let vec_push v x =
  if v.n = Array.length v.a then begin
    let na = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 na 0 v.n;
    v.a <- na
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

(* Everything one routing call mutates besides the grid: the path arena
   plus the negotiation work lists. Sessions pool these so repeated calls
   reuse the same storage. *)
type state = {
  arena : Arena.t;
  mutable pend : vec;  (** Segment indices crossing an overflowed edge. *)
  mutable defer : vec;  (** Pending segments pushed to the next wave. *)
  wave : vec;  (** Segment indices of the wave being processed. *)
  rects : vec;  (** Four ints (c0 r0 c1 r1) per wave member. *)
  mutable boxes : int array;
      (** Four ints (c0 r0 c1 r1) per segment: the default search box,
          precomputed once per negotiation — a pending segment is
          re-tested against the open wave on every wave build, so the
          box must be a read, not a computation. *)
}

let create_state () =
  {
    arena = Arena.create ~capacity:(1 lsl 16) ();
    pend = vec_make ();
    defer = vec_make ();
    wave = vec_make ();
    rects = vec_make ();
    boxes = [||];
  }

let reset_state st =
  Arena.clear st.arena;
  vec_clear st.pend;
  vec_clear st.defer;
  vec_clear st.wave;
  vec_clear st.rects

(* Per-domain maze scratch: distance/backtrack stamps, the frontier heap
   as parallel float/int arrays (floats only ever flow through these
   arrays, so nothing boxes on the hot path) and the edge-id path buffer.
   Domain-local storage gives each pool worker its own copy for free. *)
type scratch = {
  mutable dist : float array;
  mutable prev : int array;
  mutable stamp : int array;
  mutable gen : int;
  mutable qprio : float array;
  mutable qdata : int array;
  mutable qsize : int;
  mutable pathbuf : int array;
  mutable pathlen : int;
}

let create_scratch () =
  {
    dist = Array.make 1 infinity;
    prev = Array.make 1 (-1);
    stamp = Array.make 1 0;
    gen = 0;
    qprio = Array.make 256 0.0;
    qdata = Array.make 256 0;
    qsize = 0;
    pathbuf = Array.make 256 0;
    pathlen = 0;
  }

let scratch_key = Domain.DLS.new_key create_scratch

let ensure_scratch s n =
  if Array.length s.dist < n then begin
    s.dist <- Array.make n infinity;
    s.prev <- Array.make n (-1);
    s.stamp <- Array.make n 0;
    s.gen <- 0
  end;
  if Array.length s.pathbuf < n then s.pathbuf <- Array.make n 0

let heap_grow s =
  let cap = Array.length s.qprio in
  let np = Array.make (2 * cap) 0.0 and nd = Array.make (2 * cap) 0 in
  Array.blit s.qprio 0 np 0 s.qsize;
  Array.blit s.qdata 0 nd 0 s.qsize;
  s.qprio <- np;
  s.qdata <- nd

(* Binary-heap maintenance over the parallel arrays. Only ints cross the
   call boundary; float swaps stay in locals. The array types are spelled
   out because without them inference leaves these functions polymorphic —
   generic array gets that box every priority read. *)
let rec heap_sift_up (qp : float array) (qd : int array) i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if qp.(i) < qp.(parent) then begin
      let tp = qp.(i) and td = qd.(i) in
      qp.(i) <- qp.(parent);
      qd.(i) <- qd.(parent);
      qp.(parent) <- tp;
      qd.(parent) <- td;
      heap_sift_up qp qd parent
    end
  end

let rec heap_sift_down (qp : float array) (qd : int array) size i =
  let l = (2 * i) + 1 in
  if l < size then begin
    let smallest = if l + 1 < size && qp.(l + 1) < qp.(l) then l + 1 else l in
    if qp.(smallest) < qp.(i) then begin
      let tp = qp.(i) and td = qd.(i) in
      qp.(i) <- qp.(smallest);
      qd.(i) <- qd.(smallest);
      qp.(smallest) <- tp;
      qd.(smallest) <- td;
      heap_sift_down qp qd size smallest
    end
  end

(* A* over gcells, restricted to the box [bc0,bc1] x [br0,br1] (which
   always contains both endpoints). The heuristic is Manhattan distance
   times the minimum edge cost (>= 1.0): admissible and consistent, so
   the first pop of the target is Dijkstra's answer. Stale queue entries
   (lazy decrease-key) satisfy f > dist + h and are skipped. Relaxation
   and the heap push are fully inlined so no float ever crosses a
   function boundary — the whole search allocates nothing. On success
   the path's edge ids are left in [scratch.pathbuf] (dst-to-src order,
   length [scratch.pathlen]). *)
let maze_route cfg grid scratch ~bc0 ~br0 ~bc1 ~br1 (src, dst) =
  let cols = grid.Rgrid.cols and rows = grid.Rgrid.rows in
  let n = cols * rows in
  ensure_scratch scratch n;
  scratch.gen <- scratch.gen + 1;
  let gen = scratch.gen in
  let dist = scratch.dist and prev = scratch.prev and stamp = scratch.stamp in
  scratch.qsize <- 0;
  let hcap = grid.Rgrid.hcap
  and husage = grid.Rgrid.husage
  and hhist = grid.Rgrid.hhistory in
  let vcap = grid.Rgrid.vcap
  and vusage = grid.Rgrid.vusage
  and vhist = grid.Rgrid.vhistory in
  let penalty = cfg.overflow_penalty in
  let sc, sr = src and dc, dr = dst in
  let sidx = (sr * cols) + sc and didx = (dr * cols) + dc in
  dist.(sidx) <- 0.0;
  stamp.(sidx) <- gen;
  prev.(sidx) <- -1;
  scratch.qprio.(0) <- float_of_int (abs (sc - dc) + abs (sr - dr));
  scratch.qdata.(0) <- sidx;
  scratch.qsize <- 1;
  (* Pops are counted in a local ref and published once per call, so the
     enabled path adds one predictable branch per pop and the disabled
     path costs a single flag read for the whole search. *)
  let counting = Probe.enabled () in
  let pops = ref 0 in
  let found = ref false in
  (try
     while scratch.qsize > 0 do
       let qp = scratch.qprio and qd = scratch.qdata in
       let f = qp.(0) in
       let v = qd.(0) in
       let last = scratch.qsize - 1 in
       qp.(0) <- qp.(last);
       qd.(0) <- qd.(last);
       scratch.qsize <- last;
       if last > 0 then heap_sift_down qp qd last 0;
       if counting then incr pops;
       let c = v mod cols and r = v / cols in
       let g = dist.(v) in
       if f <= g +. float_of_int (abs (c - dc) + abs (r - dr)) then begin
         if v = didx then begin
           found := true;
           raise Exit
         end;
         (* East. *)
         if c < bc1 then begin
           let i = (r * (cols - 1)) + c in
           let over = husage.(i) +. 1.0 -. hcap.(i) in
           let cost =
             g +. 1.0
             +. (if over > 0.0 then penalty *. over else 0.0)
             +. hhist.(i)
           in
           let nidx = v + 1 in
           if stamp.(nidx) <> gen || cost < dist.(nidx) then begin
             dist.(nidx) <- cost;
             stamp.(nidx) <- gen;
             prev.(nidx) <- v;
             if scratch.qsize = Array.length scratch.qprio then
               heap_grow scratch;
             let qp = scratch.qprio and qd = scratch.qdata in
             let j = scratch.qsize in
             qp.(j) <- cost +. float_of_int (abs (c + 1 - dc) + abs (r - dr));
             qd.(j) <- nidx;
             scratch.qsize <- j + 1;
             heap_sift_up qp qd j
           end
         end;
         (* West. *)
         if c > bc0 then begin
           let i = (r * (cols - 1)) + c - 1 in
           let over = husage.(i) +. 1.0 -. hcap.(i) in
           let cost =
             g +. 1.0
             +. (if over > 0.0 then penalty *. over else 0.0)
             +. hhist.(i)
           in
           let nidx = v - 1 in
           if stamp.(nidx) <> gen || cost < dist.(nidx) then begin
             dist.(nidx) <- cost;
             stamp.(nidx) <- gen;
             prev.(nidx) <- v;
             if scratch.qsize = Array.length scratch.qprio then
               heap_grow scratch;
             let qp = scratch.qprio and qd = scratch.qdata in
             let j = scratch.qsize in
             qp.(j) <- cost +. float_of_int (abs (c - 1 - dc) + abs (r - dr));
             qd.(j) <- nidx;
             scratch.qsize <- j + 1;
             heap_sift_up qp qd j
           end
         end;
         (* North. *)
         if r < br1 then begin
           let i = (r * cols) + c in
           let over = vusage.(i) +. 1.0 -. vcap.(i) in
           let cost =
             g +. 1.0
             +. (if over > 0.0 then penalty *. over else 0.0)
             +. vhist.(i)
           in
           let nidx = v + cols in
           if stamp.(nidx) <> gen || cost < dist.(nidx) then begin
             dist.(nidx) <- cost;
             stamp.(nidx) <- gen;
             prev.(nidx) <- v;
             if scratch.qsize = Array.length scratch.qprio then
               heap_grow scratch;
             let qp = scratch.qprio and qd = scratch.qdata in
             let j = scratch.qsize in
             qp.(j) <- cost +. float_of_int (abs (c - dc) + abs (r + 1 - dr));
             qd.(j) <- nidx;
             scratch.qsize <- j + 1;
             heap_sift_up qp qd j
           end
         end;
         (* South. *)
         if r > br0 then begin
           let i = ((r - 1) * cols) + c in
           let over = vusage.(i) +. 1.0 -. vcap.(i) in
           let cost =
             g +. 1.0
             +. (if over > 0.0 then penalty *. over else 0.0)
             +. vhist.(i)
           in
           let nidx = v - cols in
           if stamp.(nidx) <> gen || cost < dist.(nidx) then begin
             dist.(nidx) <- cost;
             stamp.(nidx) <- gen;
             prev.(nidx) <- v;
             if scratch.qsize = Array.length scratch.qprio then
               heap_grow scratch;
             let qp = scratch.qprio and qd = scratch.qdata in
             let j = scratch.qsize in
             qp.(j) <- cost +. float_of_int (abs (c - dc) + abs (r - 1 - dr));
             qd.(j) <- nidx;
             scratch.qsize <- j + 1;
             heap_sift_up qp qd j
           end
         end
       end
     done
   with Exit -> ());
  if counting then begin
    Metrics.incr m_maze_calls;
    Metrics.add m_maze_pops !pops
  end;
  if not !found then false
  else begin
    let nh = (cols - 1) * rows in
    let pb = scratch.pathbuf in
    let k = ref 0 in
    let v = ref didx in
    while !v <> sidx do
      let p = prev.(!v) in
      let pc = p mod cols and pr = p / cols in
      let c = !v mod cols and r = !v / cols in
      let eid =
        if pr = r then (r * (cols - 1)) + min pc c
        else nh + ((min pr r * cols) + c)
      in
      pb.(!k) <- eid;
      incr k;
      v := p
    done;
    scratch.pathlen <- !k;
    true
  end

(* Cost of a straight horizontal run of edges at row [r] between columns
   [ca] and [cb], on top of [acc0], giving up (returning infinity) as
   soon as the sum reaches [cutoff]: edge costs are >= 1.0, so prefix
   sums are monotone and the early exit fires iff the total would lose
   anyway. *)
let hleg cfg grid ~cutoff acc0 r ca cb =
  let lo = min ca cb and hi = max ca cb in
  if lo = hi then acc0
  else begin
    let cols = grid.Rgrid.cols in
    let husage = grid.Rgrid.husage
    and hcap = grid.Rgrid.hcap
    and hhist = grid.Rgrid.hhistory in
    let penalty = cfg.overflow_penalty in
    let base = r * (cols - 1) in
    let acc = ref acc0 in
    try
      for c = lo to hi - 1 do
        let i = base + c in
        let over = husage.(i) +. 1.0 -. hcap.(i) in
        acc :=
          !acc +. 1.0
          +. (if over > 0.0 then penalty *. over else 0.0)
          +. hhist.(i);
        if !acc >= cutoff then raise Exit
      done;
      !acc
    with Exit -> infinity
  end

let vleg cfg grid ~cutoff acc0 c ra rb =
  let lo = min ra rb and hi = max ra rb in
  if lo = hi then acc0
  else begin
    let cols = grid.Rgrid.cols in
    let vusage = grid.Rgrid.vusage
    and vcap = grid.Rgrid.vcap
    and vhist = grid.Rgrid.vhistory in
    let penalty = cfg.overflow_penalty in
    let acc = ref acc0 in
    try
      for r = lo to hi - 1 do
        let i = (r * cols) + c in
        let over = vusage.(i) +. 1.0 -. vcap.(i) in
        acc :=
          !acc +. 1.0
          +. (if over > 0.0 then penalty *. over else 0.0)
          +. vhist.(i);
        if !acc >= cutoff then raise Exit
      done;
      !acc
    with Exit -> infinity
  end

(* Candidate pattern paths by code, preserving the historical order:
   0 = L through (c2,r1), 1 = L through (c1,r2), 2 = Z bending at the
   column midpoint, 3 = Z bending at the row midpoint. *)
let pattern_cost cfg grid ~cutoff code (c1, r1) (c2, r2) =
  match code with
  | 0 ->
    let a = hleg cfg grid ~cutoff 0.0 r1 c1 c2 in
    if a = infinity then infinity else vleg cfg grid ~cutoff a c2 r1 r2
  | 1 ->
    let a = vleg cfg grid ~cutoff 0.0 c1 r1 r2 in
    if a = infinity then infinity else hleg cfg grid ~cutoff a r2 c1 c2
  | 2 ->
    let mid_c = (c1 + c2) / 2 in
    let a = hleg cfg grid ~cutoff 0.0 r1 c1 mid_c in
    let a = if a = infinity then a else vleg cfg grid ~cutoff a mid_c r1 r2 in
    if a = infinity then infinity else hleg cfg grid ~cutoff a r2 mid_c c2
  | _ ->
    let mid_r = (r1 + r2) / 2 in
    let a = vleg cfg grid ~cutoff 0.0 c1 r1 mid_r in
    let a = if a = infinity then a else hleg cfg grid ~cutoff a mid_r c1 c2 in
    if a = infinity then infinity else vleg cfg grid ~cutoff a c2 mid_r r2

(* Claim (or release) every edge of a committed slice directly on the
   flat usage arrays. *)
let add_usage_slice grid data nh off len delta =
  let husage = grid.Rgrid.husage and vusage = grid.Rgrid.vusage in
  for i = off to off + len - 1 do
    let eid = Bigarray.Array1.get data i in
    if eid < nh then husage.(eid) <- husage.(eid) +. delta
    else begin
      let j = eid - nh in
      vusage.(j) <- vusage.(j) +. delta
    end
  done

let slice_marked grid data nh off len =
  let m = ref false in
  let i = ref off in
  let stop = off + len in
  while (not !m) && !i < stop do
    let eid = Bigarray.Array1.get data !i in
    if eid < nh then begin
      if Rgrid.marked_h grid eid then m := true
    end
    else if Rgrid.marked_v grid (eid - nh) then m := true;
    incr i
  done;
  !m

(* Emit the winning pattern path into the arena, src-to-dst, and commit
   its usage. The length is the Manhattan span, known up front. *)
let emit_pattern grid state seg code =
  let (c1, r1), (c2, r2) = seg.ends in
  let cols = grid.Rgrid.cols in
  let nh = (cols - 1) * grid.Rgrid.rows in
  let len = abs (c1 - c2) + abs (r1 - r2) in
  let off = Arena.alloc state.arena len in
  let data = Arena.data state.arena in
  let o = ref off in
  let hrun r cfrom cto =
    let base = r * (cols - 1) in
    if cto >= cfrom then
      for c = cfrom to cto - 1 do
        Bigarray.Array1.set data !o (base + c);
        incr o
      done
    else
      for c = cfrom - 1 downto cto do
        Bigarray.Array1.set data !o (base + c);
        incr o
      done
  in
  let vrun c rfrom rto =
    if rto >= rfrom then
      for r = rfrom to rto - 1 do
        Bigarray.Array1.set data !o (nh + (r * cols) + c);
        incr o
      done
    else
      for r = rfrom - 1 downto rto do
        Bigarray.Array1.set data !o (nh + (r * cols) + c);
        incr o
      done
  in
  (match code with
  | 0 ->
    hrun r1 c1 c2;
    vrun c2 r1 r2
  | 1 ->
    vrun c1 r1 r2;
    hrun r2 c1 c2
  | 2 ->
    let mid_c = (c1 + c2) / 2 in
    hrun r1 c1 mid_c;
    vrun mid_c r1 r2;
    hrun r2 mid_c c2
  | _ ->
    let mid_r = (r1 + r2) / 2 in
    vrun c1 r1 mid_r;
    hrun mid_r c1 c2;
    vrun c2 mid_r r2);
  seg.off <- off;
  seg.len <- len;
  add_usage_slice grid data nh off len 1.0

let pattern_route cfg grid state seg =
  let ((c1, r1) as a), ((c2, r2) as b) = seg.ends in
  if a = b then begin
    seg.off <- 0;
    seg.len <- 0
  end
  else begin
    let mid_c = (c1 + c2) / 2 and mid_r = (r1 + r2) / 2 in
    let best_code = ref 0 in
    let best_cost = ref (pattern_cost cfg grid ~cutoff:infinity 0 a b) in
    let consider code =
      let c = pattern_cost cfg grid ~cutoff:!best_cost code a b in
      if c < !best_cost then begin
        best_cost := c;
        best_code := code
      end
    in
    consider 1;
    if mid_c <> c1 && mid_c <> c2 then consider 2;
    if mid_r <> r1 && mid_r <> r2 then consider 3;
    emit_pattern grid state seg !best_code
  end

(* Search box of a segment: the endpoints' bounding rectangle inflated by
   a margin that grows with the span, clamped to the grid. The box always
   contains a monotone staircase between the endpoints, so a bounded maze
   search inside it cannot fail. *)
let seg_margin seg =
  let (c1, r1), (c2, r2) = seg.ends in
  2 + ((abs (c1 - c2) + abs (r1 - r2)) / 4)

let seg_box grid seg m =
  let (c1, r1), (c2, r2) = seg.ends in
  let bc0 = max 0 (min c1 c2 - m)
  and br0 = max 0 (min r1 r2 - m)
  and bc1 = min (grid.Rgrid.cols - 1) (max c1 c2 + m)
  and br1 = min (grid.Rgrid.rows - 1) (max r1 r2 + m) in
  (bc0, br0, bc1, br1)

(* Copy the scratch path buffer (dst-to-src) into the segment's slice,
   reversed to src-to-dst — in place when the new path fits the old
   slice, else appended to the arena. *)
let commit_scratch_path state seg scratch =
  let len = scratch.pathlen in
  if len <= seg.len then begin
    let data = Arena.data state.arena in
    for i = 0 to len - 1 do
      Bigarray.Array1.set data (seg.off + i) scratch.pathbuf.(len - 1 - i)
    done;
    seg.len <- len
  end
  else begin
    let off = Arena.alloc state.arena len in
    let data = Arena.data state.arena in
    for i = 0 to len - 1 do
      Bigarray.Array1.set data (off + i) scratch.pathbuf.(len - 1 - i)
    done;
    seg.off <- off;
    seg.len <- len
  end

(* Greedy wave construction: walk the pending list in order, accept a
   segment when its search box is disjoint from every box already in the
   wave (the first is always accepted), defer the rest. Disjoint boxes
   plus the deferred-commit protocol below make the wave's outcome
   independent of search order, hence of the pool. *)
let build_wave state =
  vec_clear state.wave;
  vec_clear state.rects;
  vec_clear state.defer;
  let boxes = state.boxes in
  for k = 0 to state.pend.n - 1 do
    let si = state.pend.a.(k) in
    let bx = 4 * si in
    let bc0 = boxes.(bx)
    and br0 = boxes.(bx + 1)
    and bc1 = boxes.(bx + 2)
    and br1 = boxes.(bx + 3) in
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < state.wave.n do
      let b = 4 * !j in
      let oc0 = state.rects.a.(b)
      and or0 = state.rects.a.(b + 1)
      and oc1 = state.rects.a.(b + 2)
      and or1 = state.rects.a.(b + 3) in
      if not (bc1 < oc0 || oc1 < bc0 || br1 < or0 || or1 < br0) then ok := false;
      incr j
    done;
    if !ok then begin
      vec_push state.wave si;
      vec_push state.rects bc0;
      vec_push state.rects br0;
      vec_push state.rects bc1;
      vec_push state.rects br1
    end
    else vec_push state.defer si
  done;
  let t = state.pend in
  state.pend <- state.defer;
  state.defer <- t

(* A wave member whose in-box search failed (defensive — see seg_box) is
   retried sequentially with the margin doubling until the box covers the
   whole grid; a full-grid failure restores the old path. Runs after the
   wave's commits, so it sees the same grid in both execution modes. *)
let reroute_fallback cfg grid cancel state seg =
  let cols = grid.Rgrid.cols and rows = grid.Rgrid.rows in
  let nh = (cols - 1) * rows in
  let scratch = Domain.DLS.get scratch_key in
  let rec attempt m =
    Cancel.check cancel;
    let bc0, br0, bc1, br1 = seg_box grid seg m in
    if maze_route cfg grid scratch ~bc0 ~br0 ~bc1 ~br1 seg.ends then true
    else if bc0 = 0 && br0 = 0 && bc1 = cols - 1 && br1 = rows - 1 then false
    else attempt (2 * m)
  in
  if attempt (2 * seg_margin seg) then commit_scratch_path state seg scratch;
  let data = Arena.data state.arena in
  add_usage_slice grid data nh seg.off seg.len 1.0

(* One wave: rip up every member, search them all against the resulting
   frozen grid (in parallel when a pool is given — commits are deferred
   past the barrier, so the search results cannot depend on ordering),
   then commit sequentially in wave order. *)
let process_wave cfg grid cancel pool state segs =
  let nw = state.wave.n in
  Metrics.add m_rerouted nw;
  let nh = Rgrid.num_hedges grid in
  let data = Arena.data state.arena in
  for k = 0 to nw - 1 do
    let seg = segs.(state.wave.a.(k)) in
    add_usage_slice grid data nh seg.off seg.len (-1.0)
  done;
  let search k =
    Cancel.check cancel;
    let seg = segs.(state.wave.a.(k)) in
    let b = 4 * k in
    let bc0 = state.rects.a.(b)
    and br0 = state.rects.a.(b + 1)
    and bc1 = state.rects.a.(b + 2)
    and br1 = state.rects.a.(b + 3) in
    let scratch = Domain.DLS.get scratch_key in
    if maze_route cfg grid scratch ~bc0 ~br0 ~bc1 ~br1 seg.ends then begin
      let len = scratch.pathlen in
      let path = Array.make len 0 in
      for i = 0 to len - 1 do
        path.(i) <- scratch.pathbuf.(len - 1 - i)
      done;
      Some path
    end
    else None
  in
  let results =
    match pool with
    | Some p when nw > 1 ->
      Pool.map_array p ~f:(fun k () -> search k) (Array.make nw ())
    | _ -> Array.init nw search
  in
  for k = 0 to nw - 1 do
    let seg = segs.(state.wave.a.(k)) in
    match results.(k) with
    | Some path ->
      let n = Array.length path in
      if n <= seg.len then begin
        let data = Arena.data state.arena in
        for i = 0 to n - 1 do
          Bigarray.Array1.set data (seg.off + i) path.(i)
        done;
        seg.len <- n
      end
      else begin
        let off = Arena.alloc state.arena n in
        let data = Arena.data state.arena in
        for i = 0 to n - 1 do
          Bigarray.Array1.set data (off + i) path.(i)
        done;
        seg.off <- off;
        seg.len <- n
      end;
      let data = Arena.data state.arena in
      add_usage_slice grid data nh seg.off seg.len 1.0
    | None -> reroute_fallback cfg grid cancel state seg
  done

let negotiate cfg grid cancel pool state segs =
  let nh = Rgrid.num_hedges grid in
  let hinc = cfg.history_increment in
  (* Default search boxes, once per negotiation: endpoints and margins
     never change (the fallback's widened boxes stay local to it). *)
  let nsegs = Array.length segs in
  if Array.length state.boxes < 4 * nsegs then
    state.boxes <- Array.make (4 * nsegs) 0;
  let boxes = state.boxes in
  for si = 0 to nsegs - 1 do
    let bc0, br0, bc1, br1 = seg_box grid segs.(si) (seg_margin segs.(si)) in
    let bx = 4 * si in
    boxes.(bx) <- bc0;
    boxes.(bx + 1) <- br0;
    boxes.(bx + 2) <- bc1;
    boxes.(bx + 3) <- br1
  done;
  let iteration = ref 0 in
  while
    !iteration < cfg.reroute_iterations && Rgrid.total_overflow grid > 0.0
  do
    Cancel.check cancel;
    incr iteration;
    Metrics.incr m_ripup_iterations;
    Metrics.observe m_overflow_per_iteration (Rgrid.total_overflow grid);
    Rgrid.clear_overflow_marks grid;
    let hh = grid.Rgrid.hhistory and vh = grid.Rgrid.vhistory in
    Rgrid.iter_overflowed grid
      ~h:(fun i ->
        Rgrid.mark_h grid i;
        hh.(i) <- hh.(i) +. hinc)
      ~v:(fun i ->
        Rgrid.mark_v grid i;
        vh.(i) <- vh.(i) +. hinc);
    vec_clear state.pend;
    let data = Arena.data state.arena in
    Array.iteri
      (fun si seg ->
        if seg.len > 0 && slice_marked grid data nh seg.off seg.len then
          vec_push state.pend si)
      segs;
    while state.pend.n > 0 do
      Cancel.check cancel;
      build_wave state;
      process_wave cfg grid cancel pool state segs
    done
  done

let build_result grid state segments net_gcells num_nets =
  let cols = grid.Rgrid.cols in
  let nh = Rgrid.num_hedges grid in
  let data = Arena.data state.arena in
  let edge_of_id eid =
    if eid < nh then Rgrid.H (eid mod (cols - 1), eid / (cols - 1))
    else begin
      let j = eid - nh in
      Rgrid.V (j mod cols, j / cols)
    end
  in
  let net_length = Array.make num_nets 0.0 in
  let routes =
    Array.map
      (fun seg ->
        net_length.(seg.net) <-
          net_length.(seg.net)
          +. (float_of_int seg.len *. grid.Rgrid.gcell_um);
        let edges = ref [] in
        for i = seg.off + seg.len - 1 downto seg.off do
          edges := edge_of_id (Bigarray.Array1.get data i) :: !edges
        done;
        { net = seg.net; gends = seg.ends; edges = !edges })
      segments
  in
  let wirelength = Array.fold_left ( +. ) 0.0 net_length in
  let overflow = Rgrid.total_overflow grid in
  let max_util = Rgrid.max_utilization grid in
  Metrics.set g_overflow overflow;
  Metrics.set g_max_utilization max_util;
  {
    grid;
    violations = int_of_float (ceil overflow);
    total_overflow = overflow;
    wirelength_um = wirelength;
    max_utilization = max_util;
    num_nets;
    num_segments = Array.length segments;
    net_length_um = net_length;
    routes;
    net_gcells;
  }

let derive_topology ~star ~driver cells =
  if star then Topology.star_segments driver cells
  else Topology.mst_segments_sorted cells

let float_bits f = Int64.to_int (Int64.bits_of_float f)

(* Fingerprint of everything a route_pins call's result depends on: grid
   geometry, config, wire pitch, density contents and the per-net gcell
   sets (plus star drivers). Two calls with equal fingerprints route to
   bit-identical results, because routing is deterministic in exactly
   these inputs. *)
let fingerprint ~config ~cols ~rows ~gcell_um ~wire ~density net_gcells
    drivers =
  let h = ref (Fnv.int Fnv.empty 0x726f757465) in
  h := Fnv.int !h cols;
  h := Fnv.int !h rows;
  h := Fnv.int !h (float_bits gcell_um);
  h := Fnv.int !h config.layers;
  h := Fnv.int !h config.gcell_rows;
  h := Fnv.int !h (float_bits config.m1_free);
  h := Fnv.int !h (if config.star_topology then 1 else 0);
  h := Fnv.int !h config.reroute_iterations;
  h := Fnv.int !h (float_bits config.overflow_penalty);
  h := Fnv.int !h (float_bits config.history_increment);
  h := Fnv.int !h (float_bits wire.Cals_cell.Library.pitch_um);
  (match density with
  | None -> h := Fnv.int !h 0
  | Some g ->
    h := Fnv.int !h 1;
    h := Fnv.int !h (Cals_util.Grid2d.cols g);
    h := Fnv.int !h (Cals_util.Grid2d.rows g);
    h :=
      Cals_util.Grid2d.fold
        (fun _ _ v acc -> Fnv.int acc (float_bits v))
        g !h);
  h := Fnv.int !h (Array.length net_gcells);
  Array.iteri
    (fun i cells ->
      h := Fnv.int !h (List.length cells);
      List.iter (fun (c, r) -> h := Fnv.int (Fnv.int !h c) r) cells;
      if config.star_topology then
        match drivers.(i) with
        | Some (c, r) -> h := Fnv.int (Fnv.int (Fnv.int !h 1) c) r
        | None -> h := Fnv.int !h 0)
    net_gcells;
  !h

module Session = struct
  type entry =
    | Done of result
    | Inflight

  type stats = {
    route_calls : int;
    replays : int;
    nets_reused : int;
    nets_rerouted : int;
    arena_bytes : int;
  }

  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    full : (int64, entry) Hashtbl.t;
    topo : (int64, Topology.segment list) Hashtbl.t;
    states : state Queue.t;
    route_calls : int Atomic.t;
    replays : int Atomic.t;
    nets_reused : int Atomic.t;
    nets_rerouted : int Atomic.t;
    arena_peak : int Atomic.t;
  }

  let create () =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      full = Hashtbl.create 16;
      topo = Hashtbl.create 64;
      states = Queue.create ();
      route_calls = Atomic.make 0;
      replays = Atomic.make 0;
      nets_reused = Atomic.make 0;
      nets_rerouted = Atomic.make 0;
      arena_peak = Atomic.make 0;
    }

  let note_call s = Atomic.incr s.route_calls

  let note_replay s ~nets =
    Atomic.incr s.replays;
    ignore (Atomic.fetch_and_add s.nets_reused nets);
    Metrics.incr m_session_replays;
    Metrics.add m_session_nets_reused nets

  (* Look the fingerprint up; [Some r] replays, [None] means this caller
     inserted the Inflight marker and owns the cold route (it must
     publish or retract). A concurrent caller with the same fingerprint
     waits instead of routing the same request twice. *)
  let claim s fp =
    Mutex.lock s.lock;
    let rec loop () =
      match Hashtbl.find_opt s.full fp with
      | Some (Done r) ->
        Mutex.unlock s.lock;
        Some r
      | Some Inflight ->
        Condition.wait s.cond s.lock;
        loop ()
      | None ->
        Hashtbl.replace s.full fp Inflight;
        Mutex.unlock s.lock;
        None
    in
    loop ()

  let publish s fp r =
    Mutex.lock s.lock;
    Hashtbl.replace s.full fp (Done r);
    Condition.broadcast s.cond;
    Mutex.unlock s.lock

  let retract s fp =
    Mutex.lock s.lock;
    (match Hashtbl.find_opt s.full fp with
    | Some Inflight -> Hashtbl.remove s.full fp
    | _ -> ());
    Condition.broadcast s.cond;
    Mutex.unlock s.lock

  let acquire_state s =
    Mutex.lock s.lock;
    let st =
      if Queue.is_empty s.states then create_state () else Queue.pop s.states
    in
    Mutex.unlock s.lock;
    reset_state st;
    st

  let release_state s st =
    let bytes = Arena.capacity_bytes st.arena in
    let rec bump () =
      let cur = Atomic.get s.arena_peak in
      if bytes > cur && not (Atomic.compare_and_set s.arena_peak cur bytes)
      then bump ()
    in
    bump ();
    Metrics.set g_session_arena (float_of_int bytes);
    reset_state st;
    Mutex.lock s.lock;
    Queue.push st s.states;
    Mutex.unlock s.lock

  let topo_key ~star ~driver cells =
    let h = ref (Fnv.int Fnv.empty (if star then 1 else 0)) in
    (if star then begin
       let dc, dr = driver in
       h := Fnv.int (Fnv.int !h dc) dr
     end);
    List.iter (fun (c, r) -> h := Fnv.int (Fnv.int !h c) r) cells;
    !h

  (* The per-net decomposition cache: keyed by the gcell set (every key
     element is a pair, so the flattened stream is self-delimiting) plus
     the star flag and driver. Collisions would need two nets with
     FNV-colliding gcell streams inside one session — accepted, as for
     the K-loop's fingerprint cache. *)
  let topo_segments s ~star ~driver cells =
    let key = topo_key ~star ~driver cells in
    Mutex.lock s.lock;
    let cached = Hashtbl.find_opt s.topo key in
    Mutex.unlock s.lock;
    match cached with
    | Some segs ->
      Atomic.incr s.nets_reused;
      Metrics.incr m_session_nets_reused;
      segs
    | None ->
      let segs = derive_topology ~star ~driver cells in
      Mutex.lock s.lock;
      if not (Hashtbl.mem s.topo key) then Hashtbl.add s.topo key segs;
      Mutex.unlock s.lock;
      Atomic.incr s.nets_rerouted;
      Metrics.incr m_session_nets_rerouted;
      segs

  let invalidate s =
    Mutex.lock s.lock;
    Hashtbl.filter_map_inplace
      (fun _ e ->
        match e with
        | Done _ -> None
        | Inflight -> Some e)
      s.full;
    Hashtbl.reset s.topo;
    Mutex.unlock s.lock

  let stats s =
    {
      route_calls = Atomic.get s.route_calls;
      replays = Atomic.get s.replays;
      nets_reused = Atomic.get s.nets_reused;
      nets_rerouted = Atomic.get s.nets_rerouted;
      arena_bytes = Atomic.get s.arena_peak;
    }

  let warm_hit_rate (st : stats) =
    if st.route_calls = 0 then 0.0
    else float_of_int st.replays /. float_of_int st.route_calls
end

let route_cold ~config ~density ~cancel ~pool ~session ~floorplan ~wire ~state
    net_gcells drivers =
  let grid =
    Rgrid.create ~floorplan ~wire ~layers:config.layers
      ~gcell_rows:config.gcell_rows ~m1_free:config.m1_free ?density ()
  in
  let num_nets = Array.length net_gcells in
  let segments = ref [] in
  Array.iteri
    (fun net cells ->
      let topo =
        if cells = [] then []
        else begin
          let driver =
            match drivers.(net) with
            | Some d -> d
            | None -> assert false
          in
          match session with
          | Some s ->
            Session.topo_segments s ~star:config.star_topology ~driver cells
          | None -> derive_topology ~star:config.star_topology ~driver cells
        end
      in
      List.iter
        (fun sgm ->
          segments :=
            { net; ends = (sgm.Topology.src, sgm.Topology.dst); off = 0; len = 0 }
            :: !segments)
        topo)
    net_gcells;
  let segments = Array.of_list (List.rev !segments) in
  (* Initial pattern routing, long segments first (they are the hardest to
     place once the grid fills up). *)
  let order = Array.init (Array.length segments) (fun i -> i) in
  Array.sort
    (fun a b ->
      let len s =
        let (c1, r1), (c2, r2) = segments.(s).ends in
        abs (c1 - c2) + abs (r1 - r2)
      in
      compare (len b) (len a))
    order;
  Cancel.check cancel;
  Span.with_ ~cat:"route" "route.pattern" (fun () ->
      Array.iter (fun i -> pattern_route config grid state segments.(i)) order);
  let negotiate_token = Span.enter ~cat:"route" "route.negotiate" in
  Fun.protect ~finally:(fun () -> Span.exit negotiate_token) @@ fun () ->
  negotiate config grid cancel pool state segments;
  build_result grid state segments net_gcells num_nets

let route_pins ?(config = default_config) ?density ?(cancel = Cancel.never)
    ?session ?pool ~floorplan ~wire nets =
  Span.with_ ~cat:"route"
    ~meta:(Printf.sprintf "%d nets" (Array.length nets))
    "route.route_pins"
  @@ fun () ->
  let num_nets = Array.length nets in
  let cols, rows, gcell_um =
    Rgrid.dims ~floorplan ~gcell_rows:config.gcell_rows
  in
  (* Pin gcells before any grid exists — same clamp as
     Rgrid.gcell_of_point, so a later grid agrees exactly. *)
  let gcell_of p =
    let c = int_of_float (p.Geom.x /. gcell_um) in
    let r = int_of_float (p.Geom.y /. gcell_um) in
    let c = if c < 0 then 0 else if c >= cols then cols - 1 else c in
    let r = if r < 0 then 0 else if r >= rows then rows - 1 else r in
    (c, r)
  in
  let net_gcells = Array.make num_nets [] in
  let drivers = Array.make num_nets None in
  Array.iteri
    (fun net pins ->
      let cells = List.map gcell_of pins in
      (match cells with
      | d :: _ -> drivers.(net) <- Some d
      | [] -> ());
      net_gcells.(net) <- List.sort_uniq compare cells)
    nets;
  match session with
  | None ->
    route_cold ~config ~density ~cancel ~pool ~session:None ~floorplan ~wire
      ~state:(create_state ()) net_gcells drivers
  | Some s ->
    Cancel.check cancel;
    Session.note_call s;
    let fp =
      fingerprint ~config ~cols ~rows ~gcell_um ~wire ~density net_gcells
        drivers
    in
    (match Session.claim s fp with
    | Some r ->
      Session.note_replay s ~nets:num_nets;
      r
    | None -> (
      let state = Session.acquire_state s in
      match
        route_cold ~config ~density ~cancel ~pool ~session:(Some s)
          ~floorplan ~wire ~state net_gcells drivers
      with
      | r ->
        Session.release_state s state;
        Session.publish s fp r;
        r
      | exception e ->
        Session.release_state s state;
        Session.retract s fp;
        raise e))

(* Cell-area fraction per gcell, for the M1 blockage model. *)
let density_map ?(config = default_config) mapped ~floorplan
    ~(placement : Cals_place.Placement.mapped_placement) =
  let gcell_um =
    float_of_int config.gcell_rows *. floorplan.Cals_place.Floorplan.row_height
  in
  let cols =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_width /. gcell_um)))
  in
  let rows =
    max 2
      (int_of_float
         (ceil (floorplan.Cals_place.Floorplan.die_height /. gcell_um)))
  in
  let g = Cals_util.Grid2d.create ~cols ~rows 0.0 in
  Array.iteri
    (fun i inst ->
      let p = placement.Cals_place.Placement.cell_pos.(i) in
      let c = int_of_float (p.Geom.x /. gcell_um) in
      let r = int_of_float (p.Geom.y /. gcell_um) in
      let c = max 0 (min (cols - 1) c) and r = max 0 (min (rows - 1) r) in
      Cals_util.Grid2d.add g c r inst.Mapped.cell.Cals_cell.Cell.area)
    mapped.Mapped.instances;
  Cals_util.Grid2d.map_inplace (fun a -> a /. (gcell_um *. gcell_um)) g;
  g

let route_mapped ?config ?cancel ?session ?pool mapped ~floorplan ~wire
    ~placement =
  let density = density_map ?config mapped ~floorplan ~placement in
  let nets = Mapped.nets mapped in
  let pos_of_signal = function
    | Mapped.Of_pi i -> placement.Cals_place.Placement.pi_pos.(i)
    | Mapped.Of_inst i -> placement.Cals_place.Placement.cell_pos.(i)
  in
  let pin_clusters =
    Array.map
      (fun net ->
        match net.Mapped.sinks with
        | [] -> []
        | sinks ->
          let sink_pos = function
            | Mapped.Cell_pin (i, _) -> placement.Cals_place.Placement.cell_pos.(i)
            | Mapped.Po oi -> placement.Cals_place.Placement.po_pos.(oi)
          in
          pos_of_signal net.Mapped.driver :: List.map sink_pos sinks)
      nets
  in
  route_pins ?config ~density ?cancel ?session ?pool ~floorplan ~wire
    pin_clusters
