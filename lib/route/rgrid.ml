module Geom = Cals_util.Geom
module Floorplan = Cals_place.Floorplan
module Metrics = Cals_telemetry.Metrics

let m_grids = Metrics.counter ~help:"Routing grids built" "rgrid_created"

let g_gcells =
  Metrics.gauge ~help:"Gcells in the last routing grid built" "rgrid_gcells"

type t = {
  cols : int;
  rows : int;
  gcell_um : float;
  hcap : float array;
  vcap : float array;
  husage : float array;
  vusage : float array;
  hhistory : float array;
  vhistory : float array;
  hmark : Bytes.t;
  vmark : Bytes.t;
}

type edge =
  | H of int * int
  | V of int * int

(* Grid geometry alone — shared with callers (the router's session) that
   need gcell coordinates before any capacity array exists. *)
let dims ~floorplan ~gcell_rows =
  let gcell_um = float_of_int gcell_rows *. floorplan.Floorplan.row_height in
  let cols =
    max 2 (int_of_float (ceil (floorplan.Floorplan.die_width /. gcell_um)))
  in
  let rows =
    max 2 (int_of_float (ceil (floorplan.Floorplan.die_height /. gcell_um)))
  in
  (cols, rows, gcell_um)

let create ~floorplan ~wire ~layers ?(gcell_rows = 2) ?(m1_free = 1.3) ?density
    () =
  if layers < 2 then invalid_arg "Rgrid.create: need at least 2 metal layers";
  let cols, rows, gcell_um = dims ~floorplan ~gcell_rows in
  let tracks = gcell_um /. wire.Cals_cell.Library.pitch_um in
  (* Layers above M1 alternate directions and contribute their full track
     count; M1 contributes what the standard cells leave over, so local
     placement density directly eats routing capacity — the mechanism by
     which a cell-area penalty "limits the amount of available wiring
     resources" (paper, Section 4). *)
  let n_routing = layers - 1 in
  let nh = float_of_int ((n_routing + 1) / 2) in
  let nv = float_of_int (n_routing / 2) in
  let density_at c r =
    match density with
    | None -> 0.0
    | Some g ->
      let c = min c (Cals_util.Grid2d.cols g - 1)
      and r = min r (Cals_util.Grid2d.rows g - 1) in
      Cals_util.Geom.clamp 0.0 1.0 (Cals_util.Grid2d.get g c r)
  in
  let hcap = Array.make ((cols - 1) * rows) 0.0 in
  let vcap = Array.make (cols * (rows - 1)) 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 2 do
      let d = (density_at c r +. density_at (c + 1) r) /. 2.0 in
      hcap.((r * (cols - 1)) + c) <- tracks *. (nh +. (m1_free *. (1.0 -. d)))
    done
  done;
  for r = 0 to rows - 2 do
    for c = 0 to cols - 1 do
      let d = (density_at c r +. density_at c (r + 1)) /. 2.0 in
      vcap.((r * cols) + c) <- tracks *. (nv +. (m1_free *. (1.0 -. d)))
    done
  done;
  Metrics.incr m_grids;
  Metrics.set g_gcells (float_of_int (cols * rows));
  {
    cols;
    rows;
    gcell_um;
    hcap;
    vcap;
    husage = Array.make ((cols - 1) * rows) 0.0;
    vusage = Array.make (cols * (rows - 1)) 0.0;
    hhistory = Array.make ((cols - 1) * rows) 0.0;
    vhistory = Array.make (cols * (rows - 1)) 0.0;
    hmark = Bytes.make ((((cols - 1) * rows) + 7) / 8) '\000';
    vmark = Bytes.make (((cols * (rows - 1)) + 7) / 8) '\000';
  }

let gcell_of_point t p =
  let c = int_of_float (p.Geom.x /. t.gcell_um) in
  let r = int_of_float (p.Geom.y /. t.gcell_um) in
  let c = if c < 0 then 0 else if c >= t.cols then t.cols - 1 else c in
  let r = if r < 0 then 0 else if r >= t.rows then t.rows - 1 else r in
  (c, r)

let center_of_gcell t (c, r) =
  Geom.point
    ((float_of_int c +. 0.5) *. t.gcell_um)
    ((float_of_int r +. 0.5) *. t.gcell_um)

let hindex t c r =
  if c < 0 || c >= t.cols - 1 || r < 0 || r >= t.rows then
    invalid_arg "Rgrid: horizontal edge out of range";
  (r * (t.cols - 1)) + c

let vindex t c r =
  if c < 0 || c >= t.cols || r < 0 || r >= t.rows - 1 then
    invalid_arg "Rgrid: vertical edge out of range";
  (r * t.cols) + c

let capacity t = function
  | H (c, r) -> t.hcap.(hindex t c r)
  | V (c, r) -> t.vcap.(vindex t c r)

let usage t = function
  | H (c, r) -> t.husage.(hindex t c r)
  | V (c, r) -> t.vusage.(vindex t c r)

let history t = function
  | H (c, r) -> t.hhistory.(hindex t c r)
  | V (c, r) -> t.vhistory.(vindex t c r)

let add_usage t e delta =
  match e with
  | H (c, r) ->
    let i = hindex t c r in
    t.husage.(i) <- t.husage.(i) +. delta
  | V (c, r) ->
    let i = vindex t c r in
    t.vusage.(i) <- t.vusage.(i) +. delta

let add_history t e delta =
  match e with
  | H (c, r) ->
    let i = hindex t c r in
    t.hhistory.(i) <- t.hhistory.(i) +. delta
  | V (c, r) ->
    let i = vindex t c r in
    t.vhistory.(i) <- t.vhistory.(i) +. delta

let overflow t e = max 0.0 (usage t e -. capacity t e)

(* Flat per-edge bitfield for the router's overflow marking: one bit per
   edge, cleared wholesale at each negotiation iteration. *)
let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let mark_overflowed t = function
  | H (c, r) -> bit_set t.hmark (hindex t c r)
  | V (c, r) -> bit_set t.vmark (vindex t c r)

let is_overflowed t = function
  | H (c, r) -> bit_get t.hmark (hindex t c r)
  | V (c, r) -> bit_get t.vmark (vindex t c r)

(* Flat-index variants of the mark operations, for the router's hot loops
   (no edge constructor, no bounds re-derivation). *)
let num_hedges t = (t.cols - 1) * t.rows
let num_vedges t = t.cols * (t.rows - 1)
let mark_h t i = bit_set t.hmark i
let mark_v t i = bit_set t.vmark i
let marked_h t i = bit_get t.hmark i
let marked_v t i = bit_get t.vmark i

let iter_overflowed t ~h ~v =
  for i = 0 to num_hedges t - 1 do
    if t.husage.(i) > t.hcap.(i) then h i
  done;
  for i = 0 to num_vedges t - 1 do
    if t.vusage.(i) > t.vcap.(i) then v i
  done

let clear_overflow_marks t =
  Bytes.fill t.hmark 0 (Bytes.length t.hmark) '\000';
  Bytes.fill t.vmark 0 (Bytes.length t.vmark) '\000'

let iter_edges t f =
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 2 do
      f (H (c, r))
    done
  done;
  for r = 0 to t.rows - 2 do
    for c = 0 to t.cols - 1 do
      f (V (c, r))
    done
  done

let total_overflow t =
  let acc = ref 0.0 in
  iter_edges t (fun e -> acc := !acc +. overflow t e);
  !acc

let overflowed_edges t =
  let acc = ref [] in
  iter_edges t (fun e -> if overflow t e > 0.0 then acc := e :: !acc);
  !acc

let max_utilization t =
  let m = ref 0.0 in
  iter_edges t (fun e -> m := max !m (usage t e /. max 1e-9 (capacity t e)));
  !m

let reset_usage t =
  Array.fill t.husage 0 (Array.length t.husage) 0.0;
  Array.fill t.vusage 0 (Array.length t.vusage) 0.0

let congestion_map t =
  let g = Cals_util.Grid2d.create ~cols:t.cols ~rows:t.rows 0.0 in
  iter_edges t (fun e ->
      let util = usage t e /. max 1e-9 (capacity t e) in
      let touch c r =
        if util > Cals_util.Grid2d.get g c r then Cals_util.Grid2d.set g c r util
      in
      match e with
      | H (c, r) ->
        touch c r;
        touch (c + 1) r
      | V (c, r) ->
        touch c r;
        touch c (r + 1));
  g
