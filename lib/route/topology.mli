(** Net topology: multi-pin nets decomposed into two-pin segments.

    Uses a rectilinear minimum spanning tree (Prim) over the pin gcells —
    the standard pre-step of pattern/maze global routing. *)

type segment = {
  src : int * int;  (** Gcell coordinates. *)
  dst : int * int;
}

val mst_segments : (int * int) list -> segment list
(** Spanning-tree edges over the distinct pin gcells (empty for 0/1 pin).
    Deterministic for a given pin order. *)

val mst_segments_sorted : (int * int) list -> segment list
(** Same tree, but the input must already be distinct and sorted
    ([List.sort_uniq compare]) — the form the router keeps its per-net
    gcell lists in, skipping the redundant re-sort of {!mst_segments}. *)

val segment_length : segment -> int
(** Manhattan length in gcells. *)

val star_segments : (int * int) -> (int * int) list -> segment list
(** Driver-rooted star topology (ablation alternative to the MST). *)
