(** Congestion-aware global router.

    Pipeline: pins → gcells → MST two-pin segments → congestion-aware
    pattern routing (L and Z shapes) → negotiated maze rip-up & reroute of
    segments crossing overflowed edges. The residual total overflow is the
    repo's stand-in for the "number of routing violations" that Silicon
    Ensemble reports in the paper's tables.

    Committed paths live in a flat integer arena rather than per-edge
    list cells, the maze search runs over preallocated flat arrays, and
    rip-up proceeds in waves of segments with disjoint search boxes so
    the searches of one wave can run on a {!Cals_util.Pool} without
    changing the result (see DESIGN.md, Section 4j). *)

type config = {
  layers : int;  (** Metal layers (the paper uses 3). *)
  gcell_rows : int;  (** Gcell edge in row heights. *)
  m1_free : float;  (** M1 track share per direction on an empty gcell. *)
  star_topology : bool;  (** Use a driver star instead of the MST. *)
  reroute_iterations : int;
  overflow_penalty : float;  (** Cost slope per unit of overflow. *)
  history_increment : float;
}

val default_config : config
(** 3 layers, 2-row gcells, MST topology, 16 negotiation iterations,
    overflow penalty 4.0, history increment 1.0. *)

type route = {
  net : int;  (** Index into the input net array. *)
  gends : (int * int) * (int * int);  (** Segment endpoint gcells. *)
  edges : Rgrid.edge list;  (** Final committed path (empty iff ends equal). *)
}
(** One two-pin segment's final route, kept so that verification can
    re-derive edge usage and net connectivity from first principles. *)

type result = {
  grid : Rgrid.t;
  violations : int;  (** Rounded total overflow after negotiation. *)
  total_overflow : float;
  wirelength_um : float;  (** Total routed length. *)
  max_utilization : float;
  num_nets : int;
  num_segments : int;
  net_length_um : float array;  (** Routed length per input net. *)
  routes : route array;  (** One entry per segment, in commit order. *)
  net_gcells : (int * int) list array;
      (** Distinct pin gcells per input net (the vertices the net's
          segments must connect). *)
}

(** Cross-call routing state: a replay cache over whole route requests, a
    per-net topology cache and a pool of reusable arenas.

    A session fingerprints each {!route_pins} request (grid geometry,
    config, wire pitch, density contents, per-net gcell sets) and replays
    the stored {!result} on an exact match — the common case when the
    K-loop re-evaluates an unchanged mapping. Replayed results are shared
    structure: treat them as immutable. Misses run the normal cold path
    (so a warm session is result-identical to no session by
    construction) and additionally reuse cached per-net MST/star
    decompositions for nets whose gcell sets reappear.

    All operations are domain-safe; concurrent calls with the same
    fingerprint dedupe in flight (the second caller waits for the first
    result instead of routing twice). *)
module Session : sig
  type t

  type stats = {
    route_calls : int;  (** {!route_pins} calls made with this session. *)
    replays : int;  (** Calls answered whole from the replay cache. *)
    nets_reused : int;
        (** Nets served from a cache: replayed wholesale or with a
            reused topology decomposition. *)
    nets_rerouted : int;  (** Nets whose decomposition was re-derived. *)
    arena_bytes : int;  (** Peak arena capacity over released states. *)
  }

  val create : unit -> t

  val invalidate : t -> unit
  (** Drop every cached result and topology (arenas are kept). Callers
      use this when something outside the fingerprint changes; in-flight
      computations are unaffected and republish on completion. *)

  val stats : t -> stats

  val warm_hit_rate : stats -> float
  (** [replays / route_calls] (0 when no calls were made). *)
end

val route_pins :
  ?config:config ->
  ?density:Cals_util.Grid2d.t ->
  ?cancel:Cals_util.Cancel.t ->
  ?session:Session.t ->
  ?pool:Cals_util.Pool.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  Cals_util.Geom.point list array ->
  result
(** Route one net per array slot (list of pin locations; nets with fewer
    than two distinct gcells cost no routing). [density] feeds the M1
    blockage model (see {!Rgrid.create}).

    [session] carries committed routes and scratch arenas between calls
    (see {!Session}); without one, every call routes cold into a private
    arena. [pool] parallelizes the maze searches of each rip-up wave;
    the result is identical with or without it, because waves commit
    deferred and in a fixed order. Do not pass a pool whose workers are
    the callers of this function (the pool is not reentrant).

    [cancel] (default {!Cals_util.Cancel.never}) is checked before the
    pattern phase, at the top of every negotiation iteration and before
    every ripped-up segment's maze search; a fired token unwinds with
    {!Cals_util.Cancel.Cancelled}, leaving only the result unbuilt and
    any session state released (arenas are reset on their way back to
    the session's pool, so a cancelled call leaks nothing). This is the
    router half of the deadline propagation the batch service relies
    on. *)

val route_mapped :
  ?config:config ->
  ?cancel:Cals_util.Cancel.t ->
  ?session:Session.t ->
  ?pool:Cals_util.Pool.t ->
  Cals_netlist.Mapped.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  placement:Cals_place.Placement.mapped_placement ->
  result
(** Nets in {!Cals_netlist.Mapped.nets} order, so [net_length_um] can be
    indexed by {!Cals_netlist.Mapped.signal_index}. The placement's cell
    density is folded into the M1 blockage model automatically.
    [cancel], [session] and [pool] are forwarded to {!route_pins}. *)

val density_map :
  ?config:config ->
  Cals_netlist.Mapped.t ->
  floorplan:Cals_place.Floorplan.t ->
  placement:Cals_place.Placement.mapped_placement ->
  Cals_util.Grid2d.t
(** Cell-area fraction per gcell under the given placement. *)
