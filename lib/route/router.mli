(** Congestion-aware global router.

    Pipeline: pins → gcells → MST two-pin segments → congestion-aware
    pattern routing (L and Z shapes) → negotiated maze rip-up & reroute of
    segments crossing overflowed edges. The residual total overflow is the
    repo's stand-in for the "number of routing violations" that Silicon
    Ensemble reports in the paper's tables. *)

type config = {
  layers : int;  (** Metal layers (the paper uses 3). *)
  gcell_rows : int;  (** Gcell edge in row heights. *)
  m1_free : float;  (** M1 track share per direction on an empty gcell. *)
  star_topology : bool;  (** Use a driver star instead of the MST. *)
  reroute_iterations : int;
  overflow_penalty : float;  (** Cost slope per unit of overflow. *)
  history_increment : float;
}

val default_config : config
(** 3 layers, 2-row gcells, MST topology, 16 negotiation iterations,
    overflow penalty 4.0, history increment 1.0. *)

type route = {
  net : int;  (** Index into the input net array. *)
  gends : (int * int) * (int * int);  (** Segment endpoint gcells. *)
  edges : Rgrid.edge list;  (** Final committed path (empty iff ends equal). *)
}
(** One two-pin segment's final route, kept so that verification can
    re-derive edge usage and net connectivity from first principles. *)

type result = {
  grid : Rgrid.t;
  violations : int;  (** Rounded total overflow after negotiation. *)
  total_overflow : float;
  wirelength_um : float;  (** Total routed length. *)
  max_utilization : float;
  num_nets : int;
  num_segments : int;
  net_length_um : float array;  (** Routed length per input net. *)
  routes : route array;  (** One entry per segment, in commit order. *)
  net_gcells : (int * int) list array;
      (** Distinct pin gcells per input net (the vertices the net's
          segments must connect). *)
}

val route_pins :
  ?config:config ->
  ?density:Cals_util.Grid2d.t ->
  ?cancel:Cals_util.Cancel.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  Cals_util.Geom.point list array ->
  result
(** Route one net per array slot (list of pin locations; nets with fewer
    than two distinct gcells cost no routing). [density] feeds the M1
    blockage model (see {!Rgrid.create}).

    [cancel] (default {!Cals_util.Cancel.never}) is checked before the
    pattern phase, at the top of every negotiation iteration and before
    every ripped-up segment's maze search; a fired token unwinds with
    {!Cals_util.Cancel.Cancelled}, leaving only the result unbuilt (the
    grid is scratch state owned by this call). This is the router half
    of the deadline propagation the batch service relies on. *)

val route_mapped :
  ?config:config ->
  ?cancel:Cals_util.Cancel.t ->
  Cals_netlist.Mapped.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  placement:Cals_place.Placement.mapped_placement ->
  result
(** Nets in {!Cals_netlist.Mapped.nets} order, so [net_length_um] can be
    indexed by {!Cals_netlist.Mapped.signal_index}. The placement's cell
    density is folded into the M1 blockage model automatically.
    [cancel] is forwarded to {!route_pins}. *)

val density_map :
  ?config:config ->
  Cals_netlist.Mapped.t ->
  floorplan:Cals_place.Floorplan.t ->
  placement:Cals_place.Placement.mapped_placement ->
  Cals_util.Grid2d.t
(** Cell-area fraction per gcell under the given placement. *)
