type report = {
  violations : int;
  total_overflow : float;
  max_utilization : float;
  congested_gcell_fraction : float;
  wirelength_um : float;
}

let hot_threshold = 0.95

let gcell_map (r : Router.result) = Rgrid.congestion_map r.Router.grid

let gcell (r : Router.result) c rr =
  let map = Rgrid.congestion_map r.Router.grid in
  if c < 0 || rr < 0 || c >= Cals_util.Grid2d.cols map
     || rr >= Cals_util.Grid2d.rows map
  then invalid_arg "Congestion.gcell: out of bounds"
  else Cals_util.Grid2d.get map c rr

let of_result (r : Router.result) =
  let map = gcell_map r in
  let hot, total =
    Cals_util.Grid2d.fold
      (fun _ _ v (hot, total) ->
        ((if v > hot_threshold then hot + 1 else hot), total + 1))
      map (0, 0)
  in
  {
    violations = r.Router.violations;
    total_overflow = r.Router.total_overflow;
    max_utilization = r.Router.max_utilization;
    congested_gcell_fraction = float_of_int hot /. float_of_int (max 1 total);
    wirelength_um = r.Router.wirelength_um;
  }

(* The paper's criterion is routability: Silicon Ensemble reports zero
   violations. The hot-gcell fraction stays informational — with the
   density-coupled capacity model many gcells legitimately sit just under
   capacity. *)
let acceptable r = r.violations = 0

let ascii_map (r : Router.result) = Cals_util.Grid2d.render_ascii (gcell_map r)

let summary r =
  Printf.sprintf
    "violations=%d overflow=%.1f max_util=%.2f hot_gcells=%.1f%% wirelength=%.0fum"
    r.violations r.total_overflow r.max_utilization
    (100.0 *. r.congested_gcell_fraction)
    r.wirelength_um
