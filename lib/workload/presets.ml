module Rng = Cals_util.Rng
module Geom = Cals_util.Geom
module Subject = Cals_netlist.Subject
module Span = Cals_telemetry.Span

let default_scale = 0.25

let scaled scale base = max 1 (int_of_float (float_of_int base *. scale))

let generate ~name ~scale f =
  Span.with_ ~cat:"workload"
    ~meta:(Printf.sprintf "%s scale=%g" name scale)
    "workload.generate" f

let spla_like ?(scale = default_scale) ~seed () =
  generate ~name:"spla" ~scale @@ fun () ->
  let rng = Rng.create (0x5914 lxor seed) in
  Gen.pla ~rng ~inputs:16 ~outputs:46
    ~products:(scaled scale 2307)
    ~literals_lo:3 ~literals_hi:8
    ~terms_lo:(scaled scale 100)
    ~terms_hi:(scaled scale 200)
    ()

let pdc_like ?(scale = default_scale) ~seed () =
  generate ~name:"pdc" ~scale @@ fun () ->
  let rng = Rng.create (0x9dc0 lxor seed) in
  Gen.pla ~rng ~inputs:16 ~outputs:40
    ~products:(scaled scale 2406)
    ~literals_lo:2 ~literals_hi:9
    ~terms_lo:(scaled scale 110)
    ~terms_hi:(scaled scale 230)
    ()

let too_large_like ?(scale = default_scale) ~seed () =
  generate ~name:"too_large" ~scale @@ fun () ->
  let rng = Rng.create (0x71a6 lxor seed) in
  Gen.multilevel ~rng ~inputs:38 ~outputs:40
    ~internal_nodes:(scaled scale 4200)
    ~fanins_lo:2 ~fanins_hi:5 ~cubes_lo:2 ~cubes_hi:4 ()

let figure1 () =
  let b = Subject.builder () in
  let a = Subject.add_pi b "a" in
  let bb = Subject.add_pi b "b" in
  let c = Subject.add_pi b "c" in
  let n1 = Subject.add_nand b a bb in
  let n2 = Subject.add_inv b c in
  let n3 = Subject.add_nand b n1 n2 in
  let n4 = Subject.add_inv b n3 in
  Subject.set_output b "f" n4;
  let subject = Subject.freeze b in
  (* Hand placement: a and b cluster bottom-left, c sits far right — the
     geometry of the paper's Figure 1 where the min-area cell must stretch
     its fanin wires across the image. *)
  let pos = Array.make (Subject.num_nodes subject) (Geom.point 0.0 0.0) in
  let set v p = pos.(v) <- p in
  set a (Geom.point 0.0 0.0);
  set bb (Geom.point 0.0 10.0);
  set c (Geom.point 400.0 0.0);
  set n1 (Geom.point 5.0 5.0);
  set n2 (Geom.point 395.0 5.0);
  set n3 (Geom.point 50.0 5.0);
  set n4 (Geom.point 55.0 5.0);
  (subject, pos)
