module Rng = Cals_util.Rng
module Network = Cals_logic.Network
module Sop = Cals_logic.Sop
module Cube = Cals_logic.Cube

let random_cube rng ~inputs ~lits =
  let vars = Rng.sample rng (min lits inputs) inputs in
  Cube.of_literals (List.map (fun v -> (v, Rng.bool rng)) vars)

let pla ~rng ~inputs ~outputs ~products ?(literals_lo = 3) ?(literals_hi = 8)
    ?(terms_lo = 8) ?(terms_hi = 40) () =
  if inputs < 2 || inputs > Cube.max_vars then invalid_arg "Gen.pla: inputs";
  if outputs < 1 || products < 1 then invalid_arg "Gen.pla: sizes";
  let pool =
    Array.init products (fun _ ->
        let lits = Rng.range rng literals_lo (min literals_hi inputs) in
        random_cube rng ~inputs ~lits)
  in
  let pi_names = Array.init inputs (fun i -> Printf.sprintf "i%d" i) in
  let net = Network.create ~pi_names in
  let fanins = Array.init inputs (fun i -> Network.Pi i) in
  for o = 0 to outputs - 1 do
    let n_terms = Rng.range rng terms_lo (max terms_lo terms_hi) in
    let n_terms = min n_terms products in
    let picks = Rng.sample rng n_terms products in
    let sop = Sop.of_cubes (List.map (fun i -> pool.(i)) picks) in
    let id = Network.add_node net fanins sop in
    Network.set_output net (Printf.sprintf "o%d" o) (Network.Node id)
  done;
  net

let multilevel ~rng ~inputs ~outputs ~internal_nodes ?(fanins_lo = 2)
    ?(fanins_hi = 4) ?(cubes_lo = 2) ?(cubes_hi = 4) () =
  if inputs < 2 then invalid_arg "Gen.multilevel: inputs";
  let pi_names = Array.init inputs (fun i -> Printf.sprintf "i%d" i) in
  let net = Network.create ~pi_names in
  let signals = ref (Array.to_list (Array.init inputs (fun i -> Network.Pi i))) in
  let n_signals = ref inputs in
  (* Bias fanin choice toward recent signals so the circuit has depth and
     locality rather than being a flat fan-in cone. *)
  let pick_signal () =
    let arr = Array.of_list !signals in
    let n = Array.length arr in
    let r = Rng.float rng 1.0 in
    let idx =
      if r < 0.6 then n - 1 - Rng.int rng (max 1 (n / 4))
      else Rng.int rng n
    in
    arr.(max 0 (min (n - 1) idx))
  in
  for _ = 1 to internal_nodes do
    let nf = Rng.range rng fanins_lo fanins_hi in
    (* Distinct fanins. *)
    let rec gather acc k =
      if k = 0 then acc
      else begin
        let s = pick_signal () in
        if List.mem s acc then gather acc k else gather (s :: acc) (k - 1)
      end
    in
    let fanins = Array.of_list (gather [] nf) in
    let nf = Array.length fanins in
    let n_cubes = Rng.range rng cubes_lo cubes_hi in
    let cubes =
      List.init n_cubes (fun _ ->
          let lits = Rng.range rng 1 nf in
          let vars = Rng.sample rng lits nf in
          Cube.of_literals (List.map (fun v -> (v, Rng.bool rng)) vars))
    in
    let sop = Sop.of_cubes cubes in
    (* Avoid degenerate constants. *)
    let sop = if Sop.is_one sop || Sop.is_zero sop then Sop.var 0 else sop in
    let id = Network.add_node net fanins sop in
    signals := !signals @ [ Network.Node id ];
    incr n_signals
  done;
  let arr = Array.of_list !signals in
  let n = Array.length arr in
  for o = 0 to outputs - 1 do
    (* Outputs tap the deepest signals, round-robin from the end. *)
    let s = arr.(n - 1 - (o mod max 1 (min n internal_nodes))) in
    Network.set_output net (Printf.sprintf "o%d" o) s
  done;
  net

let of_fuzz ~family ~seed ~inputs ~outputs ~size =
  let rng = Rng.create seed in
  match family with
  | `Pla -> pla ~rng ~inputs ~outputs ~products:size ()
  | `Multilevel -> multilevel ~rng ~inputs ~outputs ~internal_nodes:size ()
