(** Synthetic circuit generators.

    Stand-ins for the IWLS93 benchmarks, which are not redistributable in
    this repository. [pla] mimics the structural signature of SPLA/PDC:
    two-level logic whose outputs draw from a {e shared} pool of product
    terms, so decomposition yields a wide AND-plane with multi-fanout
    products. [multilevel] mimics TOO_LARGE-style random multi-level
    control logic. Both are deterministic in the seed. *)

val pla :
  rng:Cals_util.Rng.t ->
  inputs:int ->
  outputs:int ->
  products:int ->
  ?literals_lo:int ->
  ?literals_hi:int ->
  ?terms_lo:int ->
  ?terms_hi:int ->
  unit ->
  Cals_logic.Network.t
(** A product pool of [products] cubes with [literals_lo..literals_hi]
    literals each; every output ORs a random [terms_lo..terms_hi]-sized
    subset of the pool. *)

val multilevel :
  rng:Cals_util.Rng.t ->
  inputs:int ->
  outputs:int ->
  internal_nodes:int ->
  ?fanins_lo:int ->
  ?fanins_hi:int ->
  ?cubes_lo:int ->
  ?cubes_hi:int ->
  unit ->
  Cals_logic.Network.t
(** Layered random logic: each node computes a small random SOP over
    already-defined signals (biased toward recent ones for locality);
    outputs tap the last nodes. *)

val of_fuzz :
  family:[ `Pla | `Multilevel ] ->
  seed:int ->
  inputs:int ->
  outputs:int ->
  size:int ->
  Cals_logic.Network.t
(** Workload construction from a fuzzer parameter tuple: [size] is the
    product-pool size for [`Pla] and the internal node count for
    [`Multilevel]. Deterministic in [seed]. *)
