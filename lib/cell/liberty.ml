let pin_names = [| "a"; "b"; "c"; "d"; "e"; "f" |]

(* Liberty boolean expression from the first pattern tree: NAND at the root
   prints as a negated product, inverters as '!'. *)
let function_of_cell (cell : Cell.t) =
  let rec expr = function
    | Pattern.Var i -> pin_names.(i)
    | Pattern.Inv (Pattern.Nand (p, q)) ->
      (* AND: double negation folds away. *)
      Printf.sprintf "(%s %s)" (atom p) (atom q)
    | Pattern.Inv p -> "!" ^ atom p
    | Pattern.Nand (p, q) -> Printf.sprintf "!(%s %s)" (atom p) (atom q)
  and atom = function
    | Pattern.Var i -> pin_names.(i)
    | Pattern.Inv _ as p -> expr p
    | Pattern.Nand _ as p -> "(" ^ expr p ^ ")"
  in
  match cell.Cell.patterns with
  | [] -> "0"
  | p :: _ -> expr p

let print library =
  Cals_telemetry.Span.with_ ~cat:"cell" ~meta:(Library.name library)
    "cell.liberty"
  @@ fun () ->
  let buf = Buffer.create 8192 in
  let geometry = Library.geometry library in
  let wire = Library.wire library in
  Buffer.add_string buf
    (Printf.sprintf "library (%s) {\n" (Library.name library));
  Buffer.add_string buf "  delay_model : generic_cmos;\n";
  Buffer.add_string buf "  time_unit : \"1ns\";\n";
  Buffer.add_string buf "  capacitive_load_unit (1, pf);\n";
  Buffer.add_string buf
    (Printf.sprintf "  /* site %.2fum x row %.2fum; wire %.4f kohm/um, %.5f pf/um */\n"
       geometry.Library.site_width geometry.Library.row_height
       wire.Library.res_kohm_per_um wire.Library.cap_pf_per_um);
  List.iter
    (fun (cell : Cell.t) ->
      Buffer.add_string buf (Printf.sprintf "  cell (%s) {\n" cell.Cell.name);
      Buffer.add_string buf (Printf.sprintf "    area : %.4f;\n" cell.Cell.area);
      let arity = Cell.num_inputs cell in
      for i = 0 to arity - 1 do
        Buffer.add_string buf (Printf.sprintf "    pin (%s) {\n" pin_names.(i));
        Buffer.add_string buf "      direction : input;\n";
        Buffer.add_string buf
          (Printf.sprintf "      capacitance : %.4f;\n" cell.Cell.input_cap_pf);
        Buffer.add_string buf "    }\n"
      done;
      Buffer.add_string buf "    pin (y) {\n";
      Buffer.add_string buf "      direction : output;\n";
      Buffer.add_string buf
        (Printf.sprintf "      function : \"%s\";\n" (function_of_cell cell));
      Buffer.add_string buf
        (Printf.sprintf
           "      timing () { intrinsic_rise : %.4f; intrinsic_fall : %.4f; \
            rise_resistance : %.4f; fall_resistance : %.4f; }\n"
           cell.Cell.intrinsic_ns cell.Cell.intrinsic_ns cell.Cell.drive_kohm
           cell.Cell.drive_kohm);
      Buffer.add_string buf "    }\n";
      Buffer.add_string buf "  }\n")
    (Library.cells library);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path library =
  let oc = open_out path in
  output_string oc (print library);
  close_out oc
