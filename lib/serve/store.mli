(** Persistent match-cache store: sealed {!Cals_core.Incremental} sessions
    on disk, so warm mapper hits survive scheduler restarts and can be
    shared across fleet workers.

    {2 File format (version 1)}

    One file per design, [<cache-dir>/<fnv64(design_key)>.mcs], written
    atomically (temp file + rename):

    {v
    magic   8 bytes  "CALS-MCS"
    version 4 bytes  little-endian int
    chksum  8 bytes  FNV-1a 64 over the payload bytes
    length  8 bytes  payload byte count
    payload          design_key, library name, then per cached tree:
                     fingerprint + per-node candidate sets (cells by name)
    v}

    Candidate arrays keep their exact enumeration order, so a session
    preloaded from a store file maps bit-identically to a freshly warmed
    one (the cover DP's tie-breaking depends on that order).

    {2 Failure semantics}

    Loading never raises and never produces wrong matches: a missing,
    truncated, bit-flipped, version-skewed or otherwise unparsable file —
    or one whose design key or library vintage disagrees — degrades to a
    cold miss ({!Cold}), counted on the [serve_cache_store_*] telemetry
    counters. Per-tree fingerprints are additionally re-checked against
    the live session by {!Cals_core.Incremental.preload}, so even a stale
    file that passes every file-level check can only ever fail to warm a
    tree, never poison it. *)

val version : int
(** Current format version; bump on any layout change. *)

type cold_reason =
  | Absent  (** No store file for this design key. *)
  | Corrupt of string
      (** Truncated, checksum-mismatched or unparsable file (the string
          says which check failed). *)
  | Version_skew of int  (** File written by format version [v]. *)
  | Key_mismatch  (** Hash collision: the file belongs to another key. *)

type load_result =
  | Loaded of int  (** Entries installed into the session's cache. *)
  | Cold of cold_reason

val path : dir:string -> key:string -> string
(** The store file for [key] under [dir]. *)

val load :
  dir:string -> key:string -> Cals_core.Incremental.session -> load_result
(** Preload a fresh (unsealed, unwarmed) session from the store. Cells
    are resolved by name against the session's library; an unresolvable
    cell marks the whole file corrupt. Never raises. *)

val save :
  dir:string ->
  key:string ->
  Cals_core.Incremental.session ->
  (int, string) result
(** Serialize the session's cached match sets (call after
    {!Cals_core.Incremental.warm}). Creates [dir] if needed, writes
    atomically, returns the file's byte size. *)
