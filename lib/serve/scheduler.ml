module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Congestion = Cals_route.Congestion
module Estimate = Cals_estimate.Estimate
module Flow = Cals_core.Flow
module Incremental = Cals_core.Incremental
module Sta = Cals_sta.Sta
module Check = Cals_verify.Check
module Equiv = Cals_verify.Equiv
module Fuzz = Cals_verify.Fuzz
module Metrics = Cals_telemetry.Metrics
module Span = Cals_telemetry.Span
module Cancel = Cals_util.Cancel
module Pool = Cals_util.Pool

let log_src = Logs.Src.create "cals.serve" ~doc:"Batch mapping service"

module Log = (val Logs.src_log log_src : Logs.LOG)

let library = Cals_cell.Stdlib_018.library
let geometry = Cals_cell.Library.geometry library
let wire = Cals_cell.Library.wire library

let m_submitted =
  Metrics.counter ~help:"Jobs admitted to the service queue"
    "serve_jobs_submitted"

let m_completed =
  Metrics.counter ~help:"Jobs that completed and wrote artifacts"
    "serve_jobs_completed"

let m_retried =
  Metrics.counter ~help:"Faulted runs sent back for retry" "serve_jobs_retried"

let m_quarantined =
  Metrics.counter ~help:"Jobs quarantined after the retry budget"
    "serve_jobs_quarantined"

let m_timeouts =
  Metrics.counter ~help:"Runs cancelled by their deadline" "serve_job_timeouts"

let m_degraded =
  Metrics.counter ~help:"Runs dispatched under a degradation level > 0"
    "serve_jobs_degraded"

let m_queue_depth = Metrics.gauge ~help:"Queued jobs" "serve_queue_depth"

let m_degradation =
  Metrics.gauge ~help:"Degradation ladder step (0/1/2/3)"
    "serve_degradation_level"

let m_triaged =
  Metrics.counter
    ~help:"Runs dispatched estimator-only (degradation level 3)"
    "serve_jobs_triaged"

let m_job_seconds =
  Metrics.histogram ~help:"Wall seconds per completed job"
    ~buckets:[| 0.01; 0.05; 0.25; 1.0; 5.0; 30.0 |]
    "serve_job_seconds"

type config = {
  jobs : int;
  out_dir : string;
  default_deadline_s : float option;
  max_attempts : int;
  backoff_s : float;
  high_watermark : int;
  overload_watermark : int;
  triage_watermark : int;
  degraded_k_points : int;
  watch : bool;
  tick_s : float;
  cache_dir : string option;
  adaptive : bool;
}

let default_config =
  {
    jobs = 1;
    out_dir = "cals-serve-out";
    default_deadline_s = None;
    max_attempts = 3;
    backoff_s = 0.05;
    high_watermark = 8;
    overload_watermark = 16;
    triage_watermark = 32;
    degraded_k_points = 6;
    watch = false;
    tick_s = 0.1;
    cache_dir = None;
    adaptive = true;
  }

type summary = {
  submitted : int;
  completed : int;
  quarantined : int;
  retries : int;
  timeouts : int;
  parse_errors : int;
  wall_s : float;
}

(* Everything about one distinct circuit that K, checks and deadlines do
   not change — shared by every job with the same design key. The session
   is warmed and sealed at construction so worker domains may use it
   concurrently (see Incremental's domain-safety protocol). *)
type design = {
  subject : Subject.t;
  floorplan : Floorplan.t;
  positions : Cals_util.Geom.point array;
  session : Incremental.session;
  preloaded : int option;
      (* Match sets installed from the persistent store before warming;
         [None] when the scheduler runs without a cache dir. *)
}

type t = {
  config : config;
  queue : Queue.t;
  designs : (string, design) Hashtbl.t;
  designs_mutex : Mutex.t;
  mutable auto_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable quarantined : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable parse_errors : int;
  mutable drained : bool;
}

let create config =
  {
    config;
    queue =
      Queue.create ~max_attempts:config.max_attempts
        ~backoff_s:config.backoff_s ();
    designs = Hashtbl.create 16;
    designs_mutex = Mutex.create ();
    auto_id = 0;
    submitted = 0;
    completed = 0;
    quarantined = 0;
    retries = 0;
    timeouts = 0;
    parse_errors = 0;
    drained = false;
  }

(* ------------------------- filesystem helpers ------------------------- *)

let mkdir_p = Cals_util.Fsutil.mkdir_p
let sanitize = Cals_util.Fsutil.sanitize
let write_file = Cals_util.Fsutil.write_file
let read_lines = Cals_util.Fsutil.read_lines

let job_dir t (job : Job.t) =
  Filename.concat t.config.out_dir (sanitize job.Job.spec.Proto.id)

let quarantine_dir out_dir name =
  Filename.concat (Filename.concat out_dir "quarantine") (sanitize name)

(* ------------------------- admission ------------------------- *)

let fresh_id t =
  t.auto_id <- t.auto_id + 1;
  Printf.sprintf "job-%04d" t.auto_id

let submit t (spec : Proto.spec) =
  let spec =
    if spec.Proto.id = "" then { spec with Proto.id = fresh_id t } else spec
  in
  t.submitted <- t.submitted + 1;
  Metrics.incr m_submitted;
  Log.debug (fun m ->
      m "admitted %s (%s)" spec.Proto.id (Proto.design_key spec));
  Queue.push t.queue (Job.create ~now:(Unix.gettimeofday ()) spec)

let submit_line t ~source line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Ok ()
  else
    match Proto.spec_of_string ~default_id:"" trimmed with
    | Ok spec ->
      submit t spec;
      Ok ()
    | Error err ->
      t.parse_errors <- t.parse_errors + 1;
      let dir = quarantine_dir t.config.out_dir source in
      let path =
        Filename.concat dir (Printf.sprintf "parse-%03d.txt" t.parse_errors)
      in
      write_file path
        (Printf.sprintf "source: %s\nerror: %s\nline: %s\n" source err trimmed);
      Log.warn (fun m -> m "rejected job line from %s: %s" source err);
      Error err

let load_spool t ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    in
    let before = t.submitted in
    List.iter
      (fun file ->
        let path = Filename.concat dir file in
        match read_lines path with
        | lines ->
          (* Consume the file first so watch mode never re-ingests it. *)
          (try Sys.remove path with Sys_error _ -> ());
          List.iter (fun l -> ignore (submit_line t ~source:file l)) lines
        | exception Sys_error err ->
          Log.warn (fun m -> m "skipping spool file %s: %s" path err))
      files;
    t.submitted - before
  end

(* ------------------------- design cache ------------------------- *)

let network_of_input = function
  | Proto.Blif path ->
    if not (Sys.file_exists path) then
      failwith (Printf.sprintf "input file %s does not exist" path)
    else if Filename.check_suffix path ".pla" then Cals_logic.Pla.read_file path
    else Cals_logic.Blif.read_file path
  | Proto.Preset { name; scale; seed } -> (
    match name with
    | "spla" -> Cals_workload.Presets.spla_like ~scale ~seed ()
    | "pdc" -> Cals_workload.Presets.pdc_like ~scale ~seed ()
    | "too_large" -> Cals_workload.Presets.too_large_like ~scale ~seed ()
    | other -> failwith (Printf.sprintf "unknown preset %s" other))
  | Proto.Workload p ->
    let family =
      match p.Fuzz.family with
      | Fuzz.Pla -> `Pla
      | Fuzz.Multilevel -> `Multilevel
    in
    Cals_workload.Gen.of_fuzz ~family ~seed:p.Fuzz.seed ~inputs:p.Fuzz.inputs
      ~outputs:p.Fuzz.outputs ~size:p.Fuzz.size

let placement_seed = function
  | Proto.Blif _ -> 1
  | Proto.Preset { seed; _ } -> seed
  | Proto.Workload p -> p.Fuzz.seed

let build_design ~cache_dir (spec : Proto.spec) =
  let key = Proto.design_key spec in
  Span.with_ ~cat:"serve" ~meta:key "serve.build_design" @@ fun () ->
  let network = network_of_input spec.Proto.input in
  let floorplan_of subject =
    Floorplan.for_area
      ~core_area:(float_of_int (Subject.num_gates subject) *. 5.0)
      ~utilization:spec.Proto.utilization ~aspect:1.0 ~geometry
  in
  let subject =
    match spec.Proto.orchestrate with
    | Some budget ->
      (* Orchestration is paid once per design key (jobs sharing the key
         share this build through the design cache) and selects the
         subject every job of the design then maps. Deterministic in the
         spec, so racing builders converge on one subject. *)
      let result =
        Flow.orchestrate ~budget ~optimize:spec.Proto.optimize
          ~t:(Option.value spec.Proto.timing ~default:0.0)
          ?k_schedule:spec.Proto.k_schedule ~network ~library ~floorplan_of
          ~seed:(placement_seed spec.Proto.input) ()
      in
      Log.info (fun m ->
          m "%s: orchestration selected %s (%d gates vs %d baseline)" key
            result.Flow.best.Flow.cand_label result.Flow.best.Flow.gates
            result.Flow.baseline.Flow.gates);
      result.Flow.best_subject
    | None ->
      if spec.Proto.optimize then Cals_logic.Optimize.script_area network
      else Cals_logic.Optimize.script_light network;
      Cals_logic.Decompose.subject_of_network network
  in
  let floorplan = floorplan_of subject in
  let rng = Cals_util.Rng.create (placement_seed spec.Proto.input + 1) in
  let positions = Placement.place_subject subject ~floorplan ~rng in
  let session = Incremental.create ~subject ~library ~positions () in
  (* Preload the match cache from the persistent store before warming:
     preloaded trees are skipped by [warm], so a populated store makes a
     restarted scheduler's match phase (the expensive part of a design
     build) a no-op. A cold, corrupt or version-skewed store file just
     leaves [preloaded] at 0 and the warm below does the work. *)
  let preloaded =
    Option.map
      (fun dir ->
        match Store.load ~dir ~key session with
        | Store.Loaded n ->
          Log.info (fun m -> m "%s: warmed %d match sets from the store" key n);
          n
        | Store.Cold reason ->
          (match reason with
          | Store.Absent -> ()
          | Store.Corrupt what ->
            Log.warn (fun m ->
                m "%s: store file unusable (%s), rebuilding cold" key what)
          | Store.Version_skew v ->
            Log.warn (fun m ->
                m "%s: store file has format version %d, rebuilding cold" key v)
          | Store.Key_mismatch ->
            Log.warn (fun m ->
                m "%s: store file belongs to another design, rebuilding cold"
                  key));
          0)
      cache_dir
  in
  Incremental.warm session;
  Incremental.seal session;
  (match (cache_dir, preloaded) with
  | Some dir, Some n
    when n < (Incremental.stats session).Incremental.trees -> (
    match Store.save ~dir ~key session with
    | Ok bytes ->
      Log.debug (fun m -> m "%s: stored match cache (%d bytes)" key bytes)
    | Error msg ->
      Log.warn (fun m -> m "%s: could not store match cache: %s" key msg))
  | _ -> ());
  { subject; floorplan; positions; session; preloaded }

(* Racing builders waste work but stay correct: the design is built
   outside the lock and the first insert wins, so every job with the same
   key ends up reading one session (warmed and sealed above, hence safe
   to share read-only across domains). *)
let get_design t spec =
  let key = Proto.design_key spec in
  let lookup () =
    Mutex.lock t.designs_mutex;
    let found = Hashtbl.find_opt t.designs key in
    Mutex.unlock t.designs_mutex;
    found
  in
  match lookup () with
  | Some design -> design
  | None ->
    let built = build_design ~cache_dir:t.config.cache_dir spec in
    Mutex.lock t.designs_mutex;
    let winner =
      match Hashtbl.find_opt t.designs key with
      | Some earlier -> earlier
      | None ->
        Hashtbl.add t.designs key built;
        built
    in
    Mutex.unlock t.designs_mutex;
    winner

(* ------------------------- degradation ladder ------------------------- *)

let degradation_level t ~depth =
  if depth >= t.config.triage_watermark then 3
  else if depth >= t.config.overload_watermark then 2
  else if depth >= t.config.high_watermark then 1
  else 0

(* Level 3 is the deepest rung: no job routes at all — acceptance is
   decided on the congestion forecast and the results are marked
   estimated. Cheaper than capping K points, because the capped schedule
   still pays one negotiated route per point. *)
let estimate_policy level =
  if level >= 3 then Estimate.Triage else Estimate.Prune

let degraded_checks level checks =
  match (level, checks) with
  | 0, c -> c
  | 1, Check.Full -> Check.Cheap
  | 1, c -> c
  | _, _ -> Check.Off

let cap_schedule t level schedule =
  if level < 2 then (schedule, false)
  else begin
    let cap = max 1 t.config.degraded_k_points in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | k :: rest -> k :: take (n - 1) rest
    in
    let capped = take cap schedule in
    (capped, List.length capped < List.length schedule)
  end

(* ------------------------- one run of one job ------------------------- *)

type run_metrics = {
  wall_s : float;
  iterations : int;
  accepted_k : float option;
  cells : int;
  cell_area : float;
  violations : int option;
  cache_hits : int;
  cache_misses : int;
  checks_run : Check.level;
  degrade_level : int;
  k_capped : bool;
  estimated : bool;
  critical_path_ns : float option;
      (* Post-route STA at the accepted K. [None] unless the job asked
         for timing AND the acceptance rode a real route at degradation
         level < 2 — degraded and triaged runs leave the timing fields
         absent rather than stale. *)
  real_routes : int;
      (* Iterations that paid a negotiated route (not estimator-skipped,
         not legalize-rejected) — the currency the adaptive ladder
         saves. *)
  forecast_evals : int option;
      (* [Some] when the adaptive K search ran this job's ladder. *)
  store_preloaded : int option;
      (* Match sets this job's design preloaded from the persistent
         store; [None] without a cache dir. *)
}

type run_result = Success of run_metrics | Fault of Job.fault

(* The flow's accept loop against the cached session: stop at the first
   acceptable congestion map; Cheap defers equivalence to the netlist the
   job ships, exactly like [Flow.run] (Full already checked every K
   inside [evaluate_k]). *)
let run_schedule ~cancel ~checks ~estimate ~t ~design schedule =
  let { subject; floorplan; positions; session; _ } = design in
  let rec loop acc = function
    | [] -> (List.rev acc, None, None)
    | k :: rest ->
      Cancel.check cancel;
      let iteration, (mapped, placement, routing) =
        Flow.evaluate_k ~checks ~estimate ~session
          ~route_session:(Incremental.route_session session)
          ~t ~cancel ~subject ~library ~floorplan ~positions ~k ()
      in
      if Congestion.acceptable iteration.Flow.report then begin
        if checks = Check.Cheap then
          Equiv.check_exn ~rounds:(Check.rounds checks)
            ~rng:(Cals_util.Rng.create (Flow.equiv_seed ~k))
            ~stage:"equiv" (Equiv.of_subject subject)
            (Equiv.of_mapped ~label:(Printf.sprintf "mapped@K=%g" k) mapped);
        (List.rev (iteration :: acc), Some iteration,
         Some (mapped, placement, routing))
      end
      else loop (iteration :: acc) rest
  in
  loop [] schedule

let json_of_option f = function Some v -> f v | None -> Proto.Null

let metrics_json (job : Job.t) (m : run_metrics) =
  let spec = job.Job.spec in
  let hit_rate =
    let total = m.cache_hits + m.cache_misses in
    if total = 0 then 0.0 else float_of_int m.cache_hits /. float_of_int total
  in
  Proto.Obj
    ([
       ("id", Proto.Str spec.Proto.id);
       ("design_key", Proto.Str (Proto.design_key spec));
      ("attempts", Proto.Num (float_of_int job.Job.attempts));
      ("wall_s", Proto.Num m.wall_s);
      ("iterations", Proto.Num (float_of_int m.iterations));
      ("accepted_k", json_of_option (fun k -> Proto.Num k) m.accepted_k);
      ("cells", Proto.Num (float_of_int m.cells));
      ("cell_area", Proto.Num m.cell_area);
      ( "violations",
        json_of_option (fun v -> Proto.Num (float_of_int v)) m.violations );
      ( "cache",
        Proto.Obj
          [
            ("hits", Proto.Num (float_of_int m.cache_hits));
            ("misses", Proto.Num (float_of_int m.cache_misses));
            ("hit_rate", Proto.Num hit_rate);
            ( "store_preloaded",
              json_of_option
                (fun n -> Proto.Num (float_of_int n))
                m.store_preloaded );
          ] );
      ("real_routes", Proto.Num (float_of_int m.real_routes));
      ( "adaptive",
        json_of_option
          (fun evals ->
            Proto.Obj [ ("forecast_evals", Proto.Num (float_of_int evals)) ])
          m.forecast_evals );
      ("checks", Proto.Str (Check.level_to_string m.checks_run));
      ( "degradation",
        Proto.Obj
          [
            ("level", Proto.Num (float_of_int m.degrade_level));
            ("checks_shed", Proto.Bool (m.checks_run <> spec.Proto.checks));
            ("k_capped", Proto.Bool m.k_capped);
            ("triage", Proto.Bool (m.degrade_level >= 3));
          ] );
      ("estimated", Proto.Bool m.estimated);
    ]
    @
    match (spec.Proto.timing, m.critical_path_ns) with
    | Some t, Some ns ->
      [
        ( "timing",
          Proto.Obj
            [
              ("t", Proto.Num t);
              ("critical_path_ns", Proto.Num ns);
              ("critical_path_ps", Proto.Num (1000.0 *. ns));
            ] );
      ]
    | _ -> [])

let write_success_artifacts t (job : Job.t) m mapped =
  let dir = job_dir t job in
  mkdir_p dir;
  write_file
    (Filename.concat dir "job.json")
    (Proto.print_json (Proto.spec_to_json job.Job.spec) ^ "\n");
  write_file
    (Filename.concat dir "metrics.json")
    (Proto.print_json (metrics_json job m) ^ "\n");
  match mapped with
  | Some mapped ->
    write_file (Filename.concat dir "mapped.v") (Mapped.to_verilog mapped)
  | None -> ()

let run_job t ~level (job : Job.t) =
  let spec = job.Job.spec in
  job.Job.attempts <- job.Job.attempts + 1;
  let t0 = Unix.gettimeofday () in
  let deadline =
    match spec.Proto.deadline_s with
    | Some _ as d -> d
    | None -> t.config.default_deadline_s
  in
  let cancel =
    match deadline with
    | None -> Cancel.create ()
    | Some d -> Cancel.create ~expires:(fun () -> Unix.gettimeofday () -. t0 > d) ()
  in
  try
    Span.with_ ~cat:"serve" ~meta:spec.Proto.id "serve.job" @@ fun () ->
    let design = get_design t spec in
    let stats0 = Incremental.stats design.session in
    let checks = degraded_checks level spec.Proto.checks in
    let schedule =
      Option.value spec.Proto.k_schedule ~default:Flow.default_k_schedule
    in
    let schedule, k_capped = cap_schedule t level schedule in
    let estimate = estimate_policy level in
    if estimate = Estimate.Triage then Metrics.incr m_triaged;
    let timing_t = Option.value spec.Proto.timing ~default:0.0 in
    (* The adaptive K search owns the estimator (triage probes + pruned
       confirming routes), so it replaces the linear accept loop on every
       rung except estimator-only triage, where no point routes at all
       and the linear loop under [Triage] is already minimal. Accepted K
       and artifacts are bit-identical either way (see
       [Flow.run_adaptive]). *)
    let use_adaptive = t.config.adaptive && estimate <> Estimate.Triage in
    let iterations, accepted, artifacts, forecast_evals =
      if use_adaptive then begin
        let outcome, astats =
          Flow.run_adaptive ~k_schedule:schedule ~checks ~t:timing_t ~cancel
            ~session:design.session ~positions:design.positions
            ~subject:design.subject ~library ~floorplan:design.floorplan
            ~rng:(Cals_util.Rng.create 0) ()
        in
        let artifacts =
          Option.map
            (fun m -> (m, outcome.Flow.placement, outcome.Flow.routing))
            outcome.Flow.mapped
        in
        ( outcome.Flow.iterations,
          outcome.Flow.accepted,
          artifacts,
          Some astats.Flow.forecast_evals )
      end
      else
        let iterations, accepted, artifacts =
          run_schedule ~cancel ~checks ~estimate ~t:timing_t ~design schedule
        in
        (iterations, accepted, artifacts, None)
    in
    let real_routes =
      List.length
        (List.filter
           (fun (it : Flow.iteration) ->
             (not it.Flow.estimated) && it.Flow.hpwl_um < infinity)
           iterations)
    in
    let mapped = Option.map (fun (m, _, _) -> m) artifacts in
    let critical_path_ns =
      match (spec.Proto.timing, accepted, artifacts) with
      | Some _, Some it, Some (mapped, Some placement, Some routing)
        when level < 2 && not it.Flow.estimated ->
        let report =
          Sta.analyze ~net_length_um:routing.Cals_route.Router.net_length_um
            mapped ~wire ~placement
        in
        Some report.Sta.critical.Sta.arrival_ns
      | _ -> None
    in
    let stats1 = Incremental.stats design.session in
    let m =
      {
        wall_s = Unix.gettimeofday () -. t0;
        iterations = List.length iterations;
        accepted_k = Option.map (fun it -> it.Flow.k) accepted;
        cells =
          (match accepted with Some it -> it.Flow.cells | None -> 0);
        cell_area =
          (match accepted with Some it -> it.Flow.cell_area | None -> 0.0);
        violations =
          Option.map
            (fun it -> it.Flow.report.Congestion.violations)
            accepted;
        cache_hits = stats1.Incremental.hits - stats0.Incremental.hits;
        cache_misses = stats1.Incremental.misses - stats0.Incremental.misses;
        checks_run = checks;
        degrade_level = level;
        k_capped;
        estimated =
          (match accepted with
          | Some it -> it.Flow.estimated
          | None -> false);
        critical_path_ns;
        real_routes;
        forecast_evals;
        store_preloaded = design.preloaded;
      }
    in
    write_success_artifacts t job m mapped;
    Success m
  with
  | Cancel.Cancelled _ ->
    Fault (Job.Timed_out (Option.value deadline ~default:0.0))
  | Check.Violation { stage; detail } -> Fault (Job.Violation { stage; detail })
  | exn -> Fault (Job.Crashed (Printexc.to_string exn))

(* ------------------------- quarantine ------------------------- *)

let fault_stage_detail = function
  | Job.Timed_out d -> ("deadline", Printf.sprintf "exceeded %.3fs budget" d)
  | Job.Violation { stage; detail } -> (stage, detail)
  | Job.Crashed detail -> ("crash", detail)

let write_quarantine ~out_dir (job : Job.t) fault =
  let spec = job.Job.spec in
  let dir = quarantine_dir out_dir spec.Proto.id in
  mkdir_p dir;
  (* The spec itself is respoolable: drop job.json back in the spool to
     retry after a fix. *)
  write_file
    (Filename.concat dir "job.json")
    (Proto.print_json (Proto.spec_to_json spec) ^ "\n");
  write_file
    (Filename.concat dir "failure.txt")
    (Printf.sprintf "job: %s\nattempts: %d\nfault: %s\n" spec.Proto.id
       job.Job.attempts
       (Job.fault_to_string fault));
  match spec.Proto.input with
  | Proto.Workload params ->
    let stage, detail = fault_stage_detail fault in
    Fuzz.write_reproducer
      ~path:(Filename.concat dir "reproducer.txt")
      { Fuzz.params; stage; detail; shrink_steps = 0 }
  | Proto.Blif _ | Proto.Preset _ -> ()

(* ------------------------- the drain loop ------------------------- *)

let summary_json t ~wall_s =
  Proto.Obj
    [
      ("submitted", Proto.Num (float_of_int t.submitted));
      ("completed", Proto.Num (float_of_int t.completed));
      ("quarantined", Proto.Num (float_of_int t.quarantined));
      ("retries", Proto.Num (float_of_int t.retries));
      ("timeouts", Proto.Num (float_of_int t.timeouts));
      ("parse_errors", Proto.Num (float_of_int t.parse_errors));
      ("wall_s", Proto.Num wall_s);
    ]

let apply_result t ((job : Job.t), result) =
  match result with
  | Success m ->
    job.Job.status <- Job.Done;
    t.completed <- t.completed + 1;
    Metrics.incr m_completed;
    Metrics.observe m_job_seconds m.wall_s;
    Log.info (fun f ->
        f "%s done in %.2fs (accepted K=%s, cache hit rate %.0f%%)"
          job.Job.spec.Proto.id m.wall_s
          (match m.accepted_k with
          | Some k -> Printf.sprintf "%g" k
          | None -> "none")
          (100.0
          *.
          let total = m.cache_hits + m.cache_misses in
          if total = 0 then 0.0
          else float_of_int m.cache_hits /. float_of_int total))
  | Fault fault -> (
    (match fault with
    | Job.Timed_out _ ->
      t.timeouts <- t.timeouts + 1;
      Metrics.incr m_timeouts
    | _ -> ());
    let now = Unix.gettimeofday () in
    match Queue.record_fault t.queue ~now job fault with
    | `Retry ->
      t.retries <- t.retries + 1;
      Metrics.incr m_retried;
      Log.info (fun f ->
          f "%s faulted (%s), retry %d queued" job.Job.spec.Proto.id
            (Job.fault_to_string fault) job.Job.attempts)
    | `Quarantine ->
      t.quarantined <- t.quarantined + 1;
      Metrics.incr m_quarantined;
      write_quarantine ~out_dir:t.config.out_dir job fault;
      Log.warn (fun f ->
          f "%s quarantined after %d attempts: %s" job.Job.spec.Proto.id
            job.Job.attempts
            (Job.fault_to_string fault)))

let drain t ?spool () =
  if t.drained then invalid_arg "Scheduler.drain: scheduler already drained";
  t.drained <- true;
  let t0 = Unix.gettimeofday () in
  mkdir_p t.config.out_dir;
  (match spool with
  | Some dir -> ignore (load_spool t ~dir)
  | None -> ());
  let pool = Pool.create ~jobs:(max 1 t.config.jobs) in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let rec loop () =
    if t.config.watch then
      Option.iter (fun dir -> ignore (load_spool t ~dir)) spool;
    let now = Unix.gettimeofday () in
    let depth = Queue.depth t.queue in
    Metrics.set m_queue_depth (float_of_int depth);
    let level = degradation_level t ~depth in
    Metrics.set m_degradation (float_of_int level);
    match Queue.take_ready t.queue ~now ~max:max_int with
    | [] -> (
      match Queue.next_gate t.queue ~now with
      | Some wait ->
        (* Jobs exist but all are backing off: sleep up to their gate. *)
        Unix.sleepf (Float.max 0.001 (Float.min wait t.config.tick_s));
        loop ()
      | None ->
        if t.config.watch then begin
          Unix.sleepf t.config.tick_s;
          loop ()
        end)
    | batch ->
      if level > 0 then begin
        Metrics.add m_degraded (List.length batch);
        Log.warn (fun f ->
            f "queue depth %d: degradation level %d for this round" depth
              level)
      end;
      Log.info (fun f ->
          f "round: %d jobs over %d domains" (List.length batch)
            (Pool.jobs pool));
      let results =
        Pool.map_array pool
          ~f:(fun _ job -> (job, run_job t ~level job))
          (Array.of_list batch)
      in
      Array.iter (apply_result t) results;
      loop ()
  in
  loop ();
  let wall_s = Unix.gettimeofday () -. t0 in
  write_file
    (Filename.concat t.config.out_dir "summary.json")
    (Proto.print_json (summary_json t ~wall_s) ^ "\n");
  Log.info (fun f ->
      f "drained: %d completed, %d quarantined, %d retries in %.2fs"
        t.completed t.quarantined t.retries wall_s);
  {
    submitted = t.submitted;
    completed = t.completed;
    quarantined = t.quarantined;
    retries = t.retries;
    timeouts = t.timeouts;
    parse_errors = t.parse_errors;
    wall_s;
  }
