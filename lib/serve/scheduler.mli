(** The batch service engine behind [cals serve].

    A scheduler owns one {!Queue}, one shared {!Cals_util.Pool} of
    worker domains, and a {e design cache}: per distinct circuit
    ({!Proto.design_key}) the subject graph, floorplan, companion
    placement and a warmed-and-sealed {!Cals_core.Incremental} session,
    kept alive across jobs so repeated designs skip decomposition,
    placement and pattern matching entirely. Telemetry rings and metric
    counters likewise persist for the life of the process — one trace
    covers the whole drain.

    {2 Execution model}

    Jobs are drained in fork/join rounds: every queued job whose backoff
    gate has passed is dispatched through {!Cals_util.Pool.map_array},
    each worker runs its job's whole K schedule (via
    {!Cals_core.Flow.evaluate_k} against the design's shared session)
    and writes the job's artifact directory, and the main domain then
    applies the failure policy to the round's faults. A job's deadline
    becomes a {!Cals_util.Cancel} token with a wall-clock expiry,
    checked cooperatively at every flow and router check point.

    {2 Failure policy}

    A run that times out, crashes, or violates a verification invariant
    is retried under the queue's exponential backoff until its attempt
    budget is spent, then quarantined under [out_dir/quarantine/<id>/]
    with the respoolable job spec, the fault, and — for synthetic
    [workload] jobs — a reproducer in {!Cals_verify.Fuzz} format that
    [cals fuzz --replay] accepts.

    {2 Graceful degradation}

    Queue depth drives a three-step ladder, re-read at every round:
    at [high_watermark] jobs shed [Full] checks to [Cheap]; at
    [overload_watermark] checks turn [Off] and K schedules are capped at
    [degraded_k_points] points; at [triage_watermark] jobs run
    estimator-only ({!Cals_estimate.Estimate.Triage}) — no point routes
    at all, acceptance is decided on the congestion forecast and the
    job's metrics carry [estimated: true]. Degraded jobs complete (their
    metrics record what was shed) instead of the queue collapsing behind
    expensive stragglers. *)

type config = {
  jobs : int;  (** Worker domains (>= 1). *)
  out_dir : string;  (** Artifact root; created on demand. *)
  default_deadline_s : float option;
      (** Deadline for jobs that specify none; [None] = unlimited. *)
  max_attempts : int;  (** Runs per job before quarantine. *)
  backoff_s : float;  (** First retry delay; doubles per failure. *)
  high_watermark : int;  (** Queue depth that sheds [Full] -> [Cheap]. *)
  overload_watermark : int;
      (** Queue depth that turns checks [Off] and caps the K schedule. *)
  triage_watermark : int;
      (** Queue depth past which jobs run estimator-only: the K schedule
          is still capped, but no point pays a negotiated route —
          congestion forecasts decide acceptance and results are marked
          estimated. *)
  degraded_k_points : int;  (** Schedule cap under overload. *)
  watch : bool;
      (** Keep polling the spool when the queue drains (daemon mode)
          instead of exiting (one-shot drain, the default). *)
  tick_s : float;  (** Idle sleep / spool poll interval. *)
  cache_dir : string option;
      (** Persistent match-cache store directory ({!Store}). When set,
          design builds preload their match sets from the store (so a
          restarted scheduler — or a fleet worker — skips the match
          phase of any design the store has seen) and write back any
          design they had to warm cold. [None] (the default) keeps the
          pre-fleet behavior: the cache dies with the process. *)
  adaptive : bool;
      (** Use {!Cals_core.Flow.run_adaptive} for each job's K ladder
          (the default): estimator-seeded bisection + confirming routes,
          bit-identical accepted K and artifacts to the linear accept
          loop at a fraction of the negotiated routes. Estimator-only
          triage (degradation level 3) is unaffected — no point routes
          there either way. [false] restores the linear loop. *)
}

val default_config : config
(** [jobs = 1], [out_dir = "cals-serve-out"], no default deadline,
    3 attempts, 50 ms backoff, watermarks 8 / 16 / 32, 6 degraded K
    points, one-shot drain, 100 ms tick, no cache dir, adaptive K
    search on. *)

type summary = {
  submitted : int;
  completed : int;
  quarantined : int;
  retries : int;  (** Faulted runs that went back in the queue. *)
  timeouts : int;  (** Runs (not jobs) that hit their deadline. *)
  parse_errors : int;  (** Rejected spool/stdin lines. *)
  wall_s : float;
}

type t

val create : config -> t

val submit : t -> Proto.spec -> unit
(** Admit one job. An empty [id] is replaced with a fresh
    ["job-NNNN"]. *)

val submit_line : t -> source:string -> string -> (unit, string) result
(** Parse one JSON-lines job and admit it. On a malformed line the
    error is returned {e and} recorded under
    [out_dir/quarantine/<source>/] so a bad producer is visible after
    the fact; blank lines and [#] comments are accepted and ignored. *)

val load_spool : t -> dir:string -> int
(** Ingest every [*.json] file in [dir] (sorted, one job per line),
    deleting each file once read. Returns the number of jobs
    admitted. *)

val drain : t -> ?spool:string -> unit -> summary
(** Run rounds until the queue is empty (or forever under
    [config.watch], re-polling [spool] between rounds). Every round's
    results are applied before the next is dispatched; on return the
    pool is shut down, every submitted job is [Done] or [Quarantined],
    and [out_dir/summary.json] records the totals. Safe to call once
    per scheduler. *)

(** {2 Single-run API}

    The pieces of one job run, exposed so a {!Shard} worker process can
    execute jobs with exactly the in-process scheduler's semantics (same
    design cache, degradation behavior and artifact layout) while the
    queue- and retry-level bookkeeping lives in the front-end. *)

type run_metrics = {
  wall_s : float;
  iterations : int;  (** K points evaluated (routed or forecast). *)
  accepted_k : float option;
  cells : int;
  cell_area : float;
  violations : int option;
  cache_hits : int;  (** Match-cache hits during this run. *)
  cache_misses : int;
  checks_run : Cals_verify.Check.level;
  degrade_level : int;
  k_capped : bool;
  estimated : bool;
  critical_path_ns : float option;
      (** Post-route STA at the accepted K; see [metrics.json]. *)
  real_routes : int;
      (** Iterations that paid a negotiated route — what the adaptive
          ladder minimizes. *)
  forecast_evals : int option;
      (** Forecast-only probe count when the adaptive search ran. *)
  store_preloaded : int option;
      (** Match sets the design preloaded from the persistent store
          ([None] without [cache_dir]). *)
}

type run_result = Success of run_metrics | Fault of Job.fault

val run_job : t -> level:int -> Job.t -> run_result
(** Execute one run of one job at the given degradation level:
    increment its attempt counter, resolve (or build) its design, run
    its K ladder and write its artifact directory on success. Faults
    are returned, not applied — the caller owns the retry/quarantine
    policy. *)

val write_quarantine : out_dir:string -> Job.t -> Job.fault -> unit
(** Write [<out_dir>/quarantine/<id>/]: the respoolable job spec, the
    fault, and a fuzz reproducer for synthetic workload inputs. *)
