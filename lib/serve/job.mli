(** One job's lifecycle inside the service.

    A job is a {!Proto.spec} plus the mutable state the scheduler needs:
    how many times it ran, when it may run again (retry backoff), and
    how it ended. Jobs are owned by exactly one party at a time — the
    {!Queue} while waiting, one worker domain while running — so the
    mutable fields need no locking of their own. *)

(** Why a run of the job did not complete. *)
type fault =
  | Timed_out of float  (** Deadline that expired, in seconds. *)
  | Violation of { stage : string; detail : string }
      (** The verification layer rejected the result
          ({!Cals_verify.Check.Violation}). *)
  | Crashed of string  (** Any other exception, printed. *)

type status =
  | Pending  (** Waiting in the queue (fresh or awaiting retry). *)
  | Running
  | Done  (** Completed; artifacts written. *)
  | Quarantined of fault  (** Gave up after the retry budget. *)

type t = {
  spec : Proto.spec;
  submitted_at : float;  (** [Unix.gettimeofday] at submission. *)
  mutable status : status;
  mutable attempts : int;  (** Runs started so far. *)
  mutable not_before : float;  (** Backoff gate; 0. = run anytime. *)
  mutable last_fault : fault option;  (** Most recent failed run. *)
}

val create : now:float -> Proto.spec -> t

val fault_to_string : fault -> string
(** One line, e.g. ["timeout after 2.50s"] or
    ["violation at route: ..."]. *)

val ready : t -> now:float -> bool
(** Pending and past its backoff gate. *)
