(** The batch service's wire format: JSON job specs and result records.

    One job is one JSON object on one line (JSON-lines), whether it
    arrives via the spool directory or stdin — see {!Scheduler} for the
    transport. The module also carries the service's tiny self-contained
    JSON reader/printer so the library adds no external dependency.

    {2 Job objects}

    {v
{"id": "night-042", "blif": "designs/alu.blif", "checks": "cheap",
 "deadline_s": 30.0, "k_schedule": [0.0, 0.001, 0.01]}
{"preset": "spla", "scale": 0.05, "seed": 7}
{"workload": {"family": "pla", "seed": 77, "inputs": 8, "outputs": 4,
              "size": 24}}
    v}

    Exactly one of [blif] / [preset] / [workload] selects the input.
    Everything else is optional: [id] (auto-assigned when missing),
    [k_schedule] (default {!Cals_core.Flow.default_k_schedule}),
    [checks] ([off] / [cheap] / [full], default [off]), [utilization]
    (default 0.55), [optimize] (default [false], the aggressive
    SIS-style script), [timing] ([true] for the fitted default weight
    {!Cals_core.Mapper.default_timing_weight}, or a positive number for
    an explicit one — timing-driven covering, with the post-route
    critical path reported in the artifact's metrics),
    [orchestrate] ([true] for the default candidate budget, or a
    positive count — explore AIG pass orderings and build the design on
    the best one), [deadline_s] (default: the scheduler's),
    [scale] / [seed] (presets only). A [workload] job names a synthetic
    {!Cals_verify.Fuzz.params} circuit, so its quarantine reproducer is
    replayable with [cals fuzz --replay]. *)

(** Minimal JSON tree (numbers are floats, like JavaScript's). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Strict enough for the protocol: objects, arrays, strings (with the
    standard backslash escapes, including [\uXXXX]), numbers, booleans,
    null. Trailing garbage after the first value is an error. *)

val print_json : json -> string
(** Compact, one line, valid JSON; strings are escaped. *)

val member : string -> json -> json option
(** Field lookup on [Obj]; [None] on anything else. *)

(** Where a job's circuit comes from. *)
type input =
  | Blif of string  (** Path to a BLIF (or [.pla]) file. *)
  | Preset of { name : string; scale : float; seed : int }
      (** A {!Cals_workload.Presets} circuit: ["spla"], ["pdc"] or
          ["too_large"]. *)
  | Workload of Cals_verify.Fuzz.params
      (** A {!Cals_workload.Gen.of_fuzz} circuit — the fuzzer's
          parameter space, reused so quarantined jobs get first-class
          reproducers. *)

type spec = {
  id : string;
  input : input;
  k_schedule : float list option;  (** [None] = the flow's default. *)
  checks : Cals_verify.Check.level;
  utilization : float;
  optimize : bool;
  timing : float option;
      (** Timing weight [T] of the multi-objective match cost; [None] =
          pure Eq. 5 covering. Not part of {!design_key}: the weight is
          per-map-call (see {!Cals_core.Incremental.map}), so timing and
          non-timing jobs share one warmed session. *)
  orchestrate : int option;
      (** Candidate budget for synthesis orchestration
          ({!Cals_core.Flow.orchestrate}) when building the design:
          [Some budget] selects the best of the legacy pipeline plus
          [budget] AIG pass orderings as the cached subject. [true] on
          the wire means {!Cals_logic.Orchestrate.default_budget}.
          Part of {!design_key} — orchestrated and plain jobs must not
          share a session. *)
  deadline_s : float option;  (** [None] = the scheduler's default. *)
}

val design_key : spec -> string
(** Canonical identity of the circuit the job maps — everything that
    determines the subject graph and companion placement (input, scale,
    seed, optimization, utilization) and nothing that does not (id,
    K schedule, checks, deadline). Jobs with equal keys share one
    warmed {!Cals_core.Incremental} session in the scheduler's design
    cache. *)

val spec_of_json : ?default_id:string -> json -> (spec, string) result
val spec_of_string : ?default_id:string -> string -> (spec, string) result
(** Parse one job line. [default_id] names the job when the object has
    no ["id"] field. Unknown fields are ignored (forward
    compatibility); a missing or ambiguous input selector, or a
    malformed field, is an [Error] with a one-line diagnosis. *)

val spec_to_json : spec -> json
(** Round-trips through {!spec_of_json}: explicit fields only. *)
