(** The serve fleet: a front-end that shards jobs over supervised worker
    processes, with admission control and a socket ingress.

    {2 Topology}

    The front-end owns the job-level bookkeeping — admission, consistent
    hashing, retry backoff, quarantine, the drain summary — and never
    maps anything itself. Each worker is a [cals serve --worker] child
    process speaking newline-delimited JSON over its stdin/stdout pipe
    pair (stderr passes through for logs): one request
    [{"op":"run","attempts":A,"level":L,"job":<spec>}] at a time,
    answered by [{"id":I,"ok":true,...}] or
    [{"id":I,"ok":false,"fault":{...}}]. Workers run jobs through
    {!Scheduler.run_job}, so artifacts, degradation semantics and the
    per-worker design cache are exactly the in-process scheduler's, and a
    shared [--cache-dir] ({!Store}) lets every worker warm designs the
    fleet has seen before.

    {2 Sharding}

    Jobs hash by {!Proto.design_key} onto workers with
    highest-random-weight (rendezvous) hashing over the {e live} worker
    set: a design's jobs always land on the same worker (so its warmed
    session is reused and per-job cache metrics match a single-process
    drain), one hot design can only ever occupy one worker, and when a
    worker is abandoned its keys re-distribute over the survivors without
    moving anyone else's.

    {2 Supervision}

    A worker that exits (crash, kill, chaos) is detected by EOF on its
    pipe; its in-flight job is re-queued through the ordinary
    {!Queue.record_fault} retry/quarantine machinery as a [Crashed]
    fault, and the worker is respawned up to [restart_limit] times, after
    which it is abandoned and its queue re-routes to the survivors. If no
    worker is left alive, remaining jobs quarantine rather than hang.

    {2 Backpressure}

    Per-worker queues are bounded by [queue_watermark]: past it, the
    {e oldest} queued job is shed (quarantined with a backpressure fault,
    counted in [summary.shed]) to admit the newest. Fleet-wide queue
    depth drives the same 0–3 degradation ladder as the in-process
    scheduler, passed to workers per request. Everything is surfaced as
    [serve_shard_*] counters and gauges on the existing exporters.

    {2 Chaos hook (tests)}

    With [CALS_SHARD_CHAOS=1] in the environment, a worker that receives
    a first-attempt job whose id starts with ["chaos-kill"] exits
    abruptly mid-job without replying — deterministic crash injection for
    the fault battery; retries (attempts > 1) run normally. *)

type config = {
  workers : int;  (** Worker processes (>= 1). *)
  worker_argv : string array;
      (** Full argv to spawn one worker, e.g.
          [[| "cals"; "serve"; "--worker"; "--out"; dir |]]. *)
  out_dir : string;  (** Artifact root (shared with the workers). *)
  listen : Cals_util.Netaddr.t option;
      (** Socket ingress. Clients submit JSON-lines job specs (answered
          [{"ok":true,"id":...}] / [{"ok":false,"error":...}]);
          [{"op":"drain"}] finishes all queued work, answers with the
          summary line and ends the drain. [None] = spool/stdin only:
          the drain ends when the queues empty. *)
  max_attempts : int;  (** Runs per job before quarantine. *)
  backoff_s : float;  (** First retry delay; doubles per failure. *)
  queue_watermark : int;
      (** Per-worker queue bound; 0 disables shedding. *)
  restart_limit : int;
      (** Respawns per worker before it is abandoned. *)
  high_watermark : int;  (** Fleet queue depth for degradation 1. *)
  overload_watermark : int;  (** ... level 2. *)
  triage_watermark : int;  (** ... level 3. *)
  tick_s : float;  (** Select timeout / idle poll interval. *)
}

val default_config : config
(** 2 workers, empty [worker_argv] (the caller must fill it),
    ["cals-serve-out"], no listener, 3 attempts, 50 ms backoff,
    watermark 64, 2 restarts, degradation watermarks 8 / 16 / 32,
    100 ms tick. *)

type summary = {
  submitted : int;
  completed : int;
  quarantined : int;  (** Retry budget spent (excludes shed jobs). *)
  retries : int;  (** Faulted runs re-queued, crashes included. *)
  timeouts : int;
  shed : int;  (** Jobs dropped by per-worker backpressure. *)
  restarts : int;  (** Worker respawns performed. *)
  parse_errors : int;
  wall_s : float;
}

type t

val create : config -> t
(** Validates [workers >= 1] and a non-empty [worker_argv]. Workers are
    spawned by {!drain}, not here. *)

val submit : t -> Proto.spec -> string
(** Route one job to its worker's queue (shedding past the watermark)
    and return its id (fresh ["job-NNNN"] ids are assigned exactly like
    the in-process scheduler's, so a fleet drain of a spool yields the
    same artifact directories). *)

val submit_line : t -> source:string -> string -> (string, string) result
(** Parse and {!submit} one JSON-lines job; malformed lines are counted
    and recorded under [out_dir/quarantine/<source>/] like
    {!Scheduler.submit_line}. *)

val load_spool : t -> dir:string -> int
(** Ingest every [*.json] spool file (sorted; deleted once read). *)

val drain : t -> ?spool:string -> unit -> summary
(** Spawn the workers, ingest [spool] if given, then run the select
    loop — dispatching, supervising, accepting socket clients — until
    every queue is empty and no job is in flight (socket mode waits for
    a client's [{"op":"drain"}] first). Workers are shut down (stdin
    EOF + waitpid) on the way out and the summary is written to
    [out_dir/summary.json] with a ["shard"] extension object. Safe to
    call once per [t]. *)

val worker_main : Scheduler.config -> unit
(** The worker side: serve [{"op":"run",...}] requests from stdin until
    EOF, writing one response line per request on stdout. Runs jobs via
    {!Scheduler.run_job} on a private scheduler (the design cache and
    [cache_dir] store behavior ride in [config]); never touches the
    queue or summary. [config.jobs] is ignored — a worker runs one job
    at a time, parallelism comes from the process fleet. *)
