module Incremental = Cals_core.Incremental
module Cover = Cals_core.Cover
module Library = Cals_cell.Library
module Fnv = Cals_util.Tables.Fnv64
module Metrics = Cals_telemetry.Metrics

let version = 1
let magic = "CALS-MCS"

type cold_reason =
  | Absent
  | Corrupt of string
  | Version_skew of int
  | Key_mismatch

type load_result = Loaded of int | Cold of cold_reason

let m_hit =
  Metrics.counter ~help:"Match-cache store loads that warmed a session"
    "serve_cache_store_hit"

let m_miss =
  Metrics.counter ~help:"Match-cache store loads that found nothing usable"
    "serve_cache_store_miss"

let m_corrupt =
  Metrics.counter
    ~help:"Match-cache store files rejected as corrupt or version-skewed"
    "serve_cache_store_corrupt"

let m_saved =
  Metrics.counter ~help:"Match-cache store files written"
    "serve_cache_store_saved"

let m_bytes =
  Metrics.gauge ~help:"Byte size of the last match-cache store file written"
    "serve_cache_store_bytes"

let path ~dir ~key =
  Filename.concat dir (Printf.sprintf "%016Lx.mcs" (Fnv.string Fnv.empty key))

(* -- serialization ------------------------------------------------------ *)

let add_str b s =
  Buffer.add_int32_le b (Int32.of_int (String.length s));
  Buffer.add_string b s

let add_int b i = Buffer.add_int32_le b (Int32.of_int i)

let payload_of ~key session =
  let b = Buffer.create 65536 in
  add_str b key;
  add_str b (Library.name (Incremental.library session));
  let entries = Incremental.export session in
  add_int b (List.length entries);
  List.iter
    (fun (fp, nodes) ->
      Buffer.add_int64_le b fp;
      add_int b (List.length nodes);
      List.iter
        (fun (v, (nm : Cover.node_matches)) ->
          add_int b v;
          add_int b nm.Cover.enumerated;
          add_int b (Array.length nm.Cover.candidates);
          Array.iter
            (fun (c : Cover.candidate) ->
              add_str b c.Cover.cand_cell.Cals_cell.Cell.name;
              add_int b (Array.length c.Cover.cand_leaves);
              Array.iter (add_int b) c.Cover.cand_leaves;
              add_int b (List.length c.Cover.cand_covered);
              List.iter (add_int b) c.Cover.cand_covered)
            nm.Cover.candidates)
        nodes)
    entries;
  Buffer.contents b

(* -- parsing ------------------------------------------------------------ *)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need cur n what =
  if cur.pos + n > String.length cur.data then
    raise (Bad (Printf.sprintf "truncated %s" what))

let get_int cur what =
  need cur 4 what;
  let v = Int32.to_int (String.get_int32_le cur.data cur.pos) in
  cur.pos <- cur.pos + 4;
  if v < 0 then raise (Bad (Printf.sprintf "negative %s" what));
  v

let get_int64 cur what =
  need cur 8 what;
  let v = String.get_int64_le cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  v

let get_str cur what =
  let n = get_int cur what in
  need cur n what;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let parse_payload ~key ~library data =
  let cur = { data; pos = 0 } in
  let file_key = get_str cur "design key" in
  if file_key <> key then raise (Bad "key");
  let lib_name = get_str cur "library name" in
  if lib_name <> Library.name library then
    raise (Bad (Printf.sprintf "library %S" lib_name));
  let cell name =
    match Library.find_opt library name with
    | Some c -> c
    | None -> raise (Bad (Printf.sprintf "unknown cell %S" name))
  in
  let n_entries = get_int cur "entry count" in
  let entries =
    List.init n_entries (fun _ ->
        let fp = get_int64 cur "fingerprint" in
        let n_nodes = get_int cur "node count" in
        let nodes =
          List.init n_nodes (fun _ ->
              let v = get_int cur "node id" in
              let enumerated = get_int cur "enumerated" in
              let n_cands = get_int cur "candidate count" in
              (* Candidates are read back in exactly the order they were
                 enumerated in; the DP's tie-breaking depends on it. *)
              let candidates =
                Array.init n_cands (fun _ ->
                    let cand_cell = cell (get_str cur "cell name") in
                    let n_leaves = get_int cur "leaf count" in
                    let cand_leaves =
                      Array.init n_leaves (fun _ -> get_int cur "leaf")
                    in
                    let n_cov = get_int cur "covered count" in
                    let cand_covered =
                      List.init n_cov (fun _ -> get_int cur "covered")
                    in
                    { Cover.cand_cell; cand_leaves; cand_covered })
              in
              (v, { Cover.candidates; enumerated }))
        in
        (fp, nodes))
  in
  if cur.pos <> String.length data then raise (Bad "trailing bytes");
  entries

(* -- load/save ---------------------------------------------------------- *)

let header_len = 8 + 4 + 8 + 8

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir ~key session =
  let file = path ~dir ~key in
  let cold reason =
    (match reason with
    | Absent -> Metrics.incr m_miss
    | Corrupt _ | Version_skew _ | Key_mismatch -> Metrics.incr m_corrupt);
    Cold reason
  in
  if not (Sys.file_exists file) then cold Absent
  else
    match
      let data = read_file file in
      if String.length data < header_len then Cold (Corrupt "header")
      else if String.sub data 0 8 <> magic then Cold (Corrupt "magic")
      else
        let v = Int32.to_int (String.get_int32_le data 8) in
        if v <> version then Cold (Version_skew v)
        else
          let chksum = String.get_int64_le data 12 in
          let plen = Int64.to_int (String.get_int64_le data 20) in
          if plen < 0 || header_len + plen <> String.length data then
            Cold (Corrupt "length")
          else
            let payload = String.sub data header_len plen in
            if Fnv.string Fnv.empty payload <> chksum then
              Cold (Corrupt "checksum")
            else begin
              match
                parse_payload ~key
                  ~library:(Incremental.library session)
                  payload
              with
              | exception Bad "key" -> Cold Key_mismatch
              | exception Bad what -> Cold (Corrupt what)
              | entries -> Loaded (Incremental.preload session entries)
            end
    with
    | Loaded 0 -> cold Absent
    | Loaded n ->
      Metrics.incr m_hit;
      Loaded n
    | Cold reason -> cold reason
    | exception _ -> cold (Corrupt "unreadable")

let save ~dir ~key session =
  try
    if not (Sys.file_exists dir) then Cals_util.Fsutil.mkdir_p dir;
    let payload = payload_of ~key session in
    let b = Buffer.create (header_len + String.length payload) in
    Buffer.add_string b magic;
    Buffer.add_int32_le b (Int32.of_int version);
    Buffer.add_int64_le b (Fnv.string Fnv.empty payload);
    Buffer.add_int64_le b (Int64.of_int (String.length payload));
    Buffer.add_string b payload;
    let file = path ~dir ~key in
    let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Buffer.output_buffer oc b;
    close_out oc;
    Sys.rename tmp file;
    Metrics.incr m_saved;
    Metrics.set m_bytes (float_of_int (Buffer.length b));
    Ok (Buffer.length b)
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
