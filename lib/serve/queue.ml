type t = {
  mutex : Mutex.t;
  mutable jobs : Job.t list;  (* FIFO: oldest first. *)
  max_attempts : int;
  backoff_s : float;
}

let create ?(max_attempts = 3) ?(backoff_s = 0.05) () =
  {
    mutex = Mutex.create ();
    jobs = [];
    max_attempts = max 1 max_attempts;
    backoff_s;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t job = locked t (fun () -> t.jobs <- t.jobs @ [ job ])

let take_ready t ~now ~max =
  locked t @@ fun () ->
  let rec split taken kept n = function
    | [] -> (List.rev taken, List.rev kept)
    | job :: rest ->
      if n < max && Job.ready job ~now then
        split (job :: taken) kept (n + 1) rest
      else split taken (job :: kept) n rest
  in
  let taken, kept = split [] [] 0 t.jobs in
  t.jobs <- kept;
  List.iter (fun (j : Job.t) -> j.Job.status <- Job.Running) taken;
  taken

let record_fault t ~now (job : Job.t) fault =
  job.Job.last_fault <- Some fault;
  if job.Job.attempts >= t.max_attempts then begin
    job.Job.status <- Job.Quarantined fault;
    `Quarantine
  end
  else begin
    (* Exponential, bounded by the attempt budget itself. *)
    let delay =
      t.backoff_s *. (2.0 ** float_of_int (job.Job.attempts - 1))
    in
    job.Job.status <- Job.Pending;
    job.Job.not_before <- now +. delay;
    locked t (fun () -> t.jobs <- t.jobs @ [ job ]);
    `Retry
  end

let depth t = locked t (fun () -> List.length t.jobs)

let shed_oldest t =
  locked t (fun () ->
      match t.jobs with
      | [] -> None
      | oldest :: rest ->
        t.jobs <- rest;
        Some oldest)

let next_gate t ~now =
  locked t @@ fun () ->
  match t.jobs with
  | [] -> None
  | jobs ->
    if List.exists (fun j -> Job.ready j ~now) jobs then None
    else
      let earliest =
        List.fold_left
          (fun acc (j : Job.t) -> Float.min acc j.Job.not_before)
          infinity jobs
      in
      Some (Float.max 0.0 (earliest -. now))
