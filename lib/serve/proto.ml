module Check = Cals_verify.Check
module Fuzz = Cals_verify.Fuzz

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------- parsing ------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at offset %d, found %C" ch c.pos x
  | None -> fail "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "malformed literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        (* Decode the code unit; non-ASCII lands as '?' — the protocol
           only carries paths and identifiers. *)
        if c.pos + 4 >= String.length c.text then fail "truncated \\u escape";
        let hex = String.sub c.text (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?'
        | None -> fail "bad \\u escape %S" hex);
        c.pos <- c.pos + 4
      | Some ch -> fail "bad escape \\%C" ch
      | None -> fail "unterminated escape");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numeric ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse_json text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length text then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------- printing ------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec print_json = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> print_num f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Arr items -> "[" ^ String.concat "," (List.map print_json items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":%s" (escape k) (print_json v))
           fields)
    ^ "}"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------- job specs ------------------------- *)

type input =
  | Blif of string
  | Preset of { name : string; scale : float; seed : int }
  | Workload of Fuzz.params

type spec = {
  id : string;
  input : input;
  k_schedule : float list option;
  checks : Check.level;
  utilization : float;
  optimize : bool;
  timing : float option;
  orchestrate : int option;
  deadline_s : float option;
}

let design_key spec =
  let base =
    match spec.input with
    | Blif path -> Printf.sprintf "blif:%s" path
    | Preset { name; scale; seed } ->
      Printf.sprintf "preset:%s:%g:%d" name scale seed
    | Workload p -> Printf.sprintf "workload:%s" (Fuzz.params_to_string p)
  in
  (* The orchestrate budget changes the subject the design cache is built
     on, so it must key the cache like optimize/utilization do. *)
  let orch =
    match spec.orchestrate with
    | None -> ""
    | Some budget -> Printf.sprintf ":orch=%d" budget
  in
  Printf.sprintf "%s:opt=%b:util=%g%s" base spec.optimize spec.utilization
    orch

(* Field accessors that collapse to Result for one-line diagnoses. *)
let get_float name default json =
  match member name json with
  | None | Some Null -> Ok default
  | Some (Num f) -> Ok f
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let get_int name default json =
  match get_float name (float_of_int default) json with
  | Ok f -> Ok (int_of_float f)
  | Error _ as e -> e

let get_bool name default json =
  match member name json with
  | None | Some Null -> Ok default
  | Some (Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let get_string name json =
  match member name json with
  | Some (Str s) -> Ok (Some s)
  | None | Some Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let ( let* ) = Result.bind

let workload_of_json json =
  let* family =
    match member "family" json with
    | Some (Str "pla") -> Ok Fuzz.Pla
    | Some (Str "multilevel") -> Ok Fuzz.Multilevel
    | _ -> Error "workload.family must be \"pla\" or \"multilevel\""
  in
  let field name =
    match member name json with
    | Some (Num f) -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "workload.%s must be a number" name)
  in
  let* seed = field "seed" in
  let* inputs = field "inputs" in
  let* outputs = field "outputs" in
  let* size = field "size" in
  Ok (Workload { Fuzz.seed; family; inputs; outputs; size })

let input_of_json json =
  let* blif = get_string "blif" json in
  let* preset = get_string "preset" json in
  let workload = member "workload" json in
  match (blif, preset, workload) with
  | Some path, None, None -> Ok (Blif path)
  | None, Some name, None ->
    if not (List.mem name [ "spla"; "pdc"; "too_large" ]) then
      Error (Printf.sprintf "unknown preset %S" name)
    else
      let* scale =
        get_float "scale" Cals_workload.Presets.default_scale json
      in
      let* seed = get_int "seed" 1 json in
      Ok (Preset { name; scale; seed })
  | None, None, Some w -> workload_of_json w
  | None, None, None ->
    Error "job needs exactly one of \"blif\", \"preset\", \"workload\""
  | _ -> Error "job has more than one of \"blif\", \"preset\", \"workload\""

let spec_of_json ?(default_id = "") json =
  let* input = input_of_json json in
  let* id = get_string "id" json in
  let id = Option.value id ~default:default_id in
  let* k_schedule =
    match member "k_schedule" json with
    | None | Some Null -> Ok None
    | Some (Arr items) ->
      let rec nums acc = function
        | [] -> Ok (Some (List.rev acc))
        | Num f :: rest -> nums (f :: acc) rest
        | _ -> Error "k_schedule must be an array of numbers"
      in
      nums [] items
    | Some _ -> Error "k_schedule must be an array of numbers"
  in
  let* checks =
    let* s = get_string "checks" json in
    match s with
    | None -> Ok Check.Off
    | Some s ->
      (match Check.level_of_string s with
      | Ok l -> Ok l
      | Error e -> Error e)
  in
  let* utilization = get_float "utilization" 0.55 json in
  let* optimize = get_bool "optimize" false json in
  let* timing =
    match member "timing" json with
    | None | Some Null | Some (Bool false) -> Ok None
    | Some (Bool true) -> Ok (Some Cals_core.Mapper.default_timing_weight)
    | Some (Num f) ->
      if f <= 0.0 then Error "timing must be a positive number"
      else Ok (Some f)
    | Some _ -> Error "timing must be a number or boolean"
  in
  let* orchestrate =
    match member "orchestrate" json with
    | None | Some Null | Some (Bool false) -> Ok None
    | Some (Bool true) -> Ok (Some Cals_logic.Orchestrate.default_budget)
    | Some (Num f) ->
      if f < 1.0 then Error "orchestrate must be a positive candidate budget"
      else Ok (Some (int_of_float f))
    | Some _ -> Error "orchestrate must be a number or boolean"
  in
  let* deadline_s =
    let* f = get_float "deadline_s" nan json in
    if Float.is_nan f then Ok None
    else if f <= 0.0 then Error "deadline_s must be positive"
    else Ok (Some f)
  in
  Ok
    { id; input; k_schedule; checks; utilization; optimize; timing;
      orchestrate; deadline_s }

let spec_of_string ?default_id line =
  let* json = parse_json line in
  spec_of_json ?default_id json

let spec_to_json spec =
  let input_fields =
    match spec.input with
    | Blif path -> [ ("blif", Str path) ]
    | Preset { name; scale; seed } ->
      [
        ("preset", Str name);
        ("scale", Num scale);
        ("seed", Num (float_of_int seed));
      ]
    | Workload p ->
      [
        ( "workload",
          Obj
            [
              ( "family",
                Str
                  (match p.Fuzz.family with
                  | Fuzz.Pla -> "pla"
                  | Fuzz.Multilevel -> "multilevel") );
              ("seed", Num (float_of_int p.Fuzz.seed));
              ("inputs", Num (float_of_int p.Fuzz.inputs));
              ("outputs", Num (float_of_int p.Fuzz.outputs));
              ("size", Num (float_of_int p.Fuzz.size));
            ] );
      ]
  in
  Obj
    ([ ("id", Str spec.id) ]
    @ input_fields
    @ (match spec.k_schedule with
      | None -> []
      | Some ks -> [ ("k_schedule", Arr (List.map (fun k -> Num k) ks)) ])
    @ [
        ("checks", Str (Check.level_to_string spec.checks));
        ("utilization", Num spec.utilization);
        ("optimize", Bool spec.optimize);
      ]
    @ (match spec.timing with
      | None -> []
      | Some t -> [ ("timing", Num t) ])
    @ (match spec.orchestrate with
      | None -> []
      | Some budget -> [ ("orchestrate", Num (float_of_int budget)) ])
    @
    match spec.deadline_s with
    | None -> []
    | Some d -> [ ("deadline_s", Num d) ])
