type fault =
  | Timed_out of float
  | Violation of { stage : string; detail : string }
  | Crashed of string

type status =
  | Pending
  | Running
  | Done
  | Quarantined of fault

type t = {
  spec : Proto.spec;
  submitted_at : float;
  mutable status : status;
  mutable attempts : int;
  mutable not_before : float;
  mutable last_fault : fault option;
}

let create ~now spec =
  {
    spec;
    submitted_at = now;
    status = Pending;
    attempts = 0;
    not_before = 0.0;
    last_fault = None;
  }

let fault_to_string = function
  | Timed_out deadline -> Printf.sprintf "timeout after %.2fs" deadline
  | Violation { stage; detail } ->
    Printf.sprintf "violation at %s: %s" stage detail
  | Crashed detail -> Printf.sprintf "crash: %s" detail

let ready t ~now = t.status = Pending && t.not_before <= now
