module Fnv = Cals_util.Tables.Fnv64
module Fsutil = Cals_util.Fsutil
module Lines = Cals_util.Lines
module Netaddr = Cals_util.Netaddr
module Metrics = Cals_telemetry.Metrics

let log_src = Logs.Src.create "cals.shard" ~doc:"Serve fleet front-end"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_dispatched =
  Metrics.counter ~help:"Jobs dispatched to fleet workers"
    "serve_shard_dispatched"

let m_requeued =
  Metrics.counter ~help:"In-flight or faulted jobs re-queued by the front-end"
    "serve_shard_requeued"

let m_shed =
  Metrics.counter ~help:"Jobs shed by per-worker queue backpressure"
    "serve_shard_shed"

let m_restarts =
  Metrics.counter ~help:"Worker processes respawned after a crash"
    "serve_shard_worker_restarts"

let m_depth =
  Metrics.gauge ~help:"Fleet-wide queued jobs" "serve_shard_queue_depth"

let m_alive =
  Metrics.gauge ~help:"Live worker processes" "serve_shard_workers_alive"

type config = {
  workers : int;
  worker_argv : string array;
  out_dir : string;
  listen : Netaddr.t option;
  max_attempts : int;
  backoff_s : float;
  queue_watermark : int;
  restart_limit : int;
  high_watermark : int;
  overload_watermark : int;
  triage_watermark : int;
  tick_s : float;
}

let default_config =
  {
    workers = 2;
    worker_argv = [||];
    out_dir = "cals-serve-out";
    listen = None;
    max_attempts = 3;
    backoff_s = 0.05;
    queue_watermark = 64;
    restart_limit = 2;
    high_watermark = 8;
    overload_watermark = 16;
    triage_watermark = 32;
    tick_s = 0.1;
  }

type summary = {
  submitted : int;
  completed : int;
  quarantined : int;
  retries : int;
  timeouts : int;
  shed : int;
  restarts : int;
  parse_errors : int;
  wall_s : float;
}

type worker = {
  index : int;
  queue : Queue.t;
  mutable pid : int;
  mutable send : Unix.file_descr;
  mutable recv : Unix.file_descr;
  mutable lines : Lines.t;
  mutable inflight : Job.t option;
  mutable restarts : int;
  mutable alive : bool;  (* Process running right now (false pre-spawn). *)
  mutable abandoned : bool;  (* Restart budget spent; never routed to. *)
}

type client = {
  cfd : Unix.file_descr;
  clines : Lines.t;
  mutable want_summary : bool;
}

type t = {
  config : config;
  workers : worker array;
  mutable clients : client list;
  mutable auto_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable quarantined : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable restarts_total : int;
  mutable parse_errors : int;
  mutable draining : bool;
  mutable shutting_down : bool;
  mutable drained : bool;
}

let create (config : config) =
  if config.workers < 1 then invalid_arg "Shard.create: workers must be >= 1";
  if Array.length config.worker_argv = 0 then
    invalid_arg "Shard.create: worker_argv must name the worker command";
  {
    config;
    workers =
      Array.init config.workers (fun index ->
          {
            index;
            queue =
              Queue.create ~max_attempts:config.max_attempts
                ~backoff_s:config.backoff_s ();
            pid = -1;
            send = Unix.stdin;
            recv = Unix.stdin;
            lines = Lines.create ();
            inflight = None;
            restarts = 0;
            alive = false;
            abandoned = false;
          });
    clients = [];
    auto_id = 0;
    submitted = 0;
    completed = 0;
    quarantined = 0;
    retries = 0;
    timeouts = 0;
    shed = 0;
    restarts_total = 0;
    parse_errors = 0;
    draining = false;
    shutting_down = false;
    drained = false;
  }

(* ------------------------- protocol ------------------------- *)

let fault_to_json = function
  | Job.Timed_out d ->
    Proto.Obj [ ("kind", Proto.Str "timeout"); ("deadline_s", Proto.Num d) ]
  | Job.Violation { stage; detail } ->
    Proto.Obj
      [
        ("kind", Proto.Str "violation");
        ("stage", Proto.Str stage);
        ("detail", Proto.Str detail);
      ]
  | Job.Crashed detail ->
    Proto.Obj [ ("kind", Proto.Str "crash"); ("detail", Proto.Str detail) ]

let fault_of_json json =
  let str name =
    match Proto.member name json with Some (Proto.Str s) -> s | _ -> ""
  in
  match str "kind" with
  | "timeout" ->
    let d =
      match Proto.member "deadline_s" json with
      | Some (Proto.Num d) -> d
      | _ -> 0.0
    in
    Job.Timed_out d
  | "violation" -> Job.Violation { stage = str "stage"; detail = str "detail" }
  | _ -> Job.Crashed (str "detail")

let request_line ~attempts ~level (spec : Proto.spec) =
  Proto.print_json
    (Proto.Obj
       [
         ("op", Proto.Str "run");
         ("attempts", Proto.Num (float_of_int attempts));
         ("level", Proto.Num (float_of_int level));
         ("job", Proto.spec_to_json spec);
       ])
  ^ "\n"

(* ------------------------- worker side ------------------------- *)

let chaos_armed () = Sys.getenv_opt "CALS_SHARD_CHAOS" = Some "1"
let chaos_prefix = "chaos-kill"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let worker_main (config : Scheduler.config) =
  let scheduler = Scheduler.create { config with Scheduler.jobs = 1 } in
  let respond json =
    print_string (Proto.print_json json);
    print_newline ();
    flush Stdlib.stdout
  in
  let run_request json =
    let num name default =
      match Proto.member name json with
      | Some (Proto.Num n) -> int_of_float n
      | _ -> default
    in
    let attempts = max 1 (num "attempts" 1) in
    let level = num "level" 0 in
    match
      match Proto.member "job" json with
      | Some job -> Proto.spec_of_json ~default_id:"" job
      | None -> Error "missing job"
    with
    | Error err ->
      respond
        (Proto.Obj
           [
             ("id", Proto.Str "");
             ("ok", Proto.Bool false);
             ("fault", fault_to_json (Job.Crashed ("bad request: " ^ err)));
           ])
    | Ok spec ->
      (* Deterministic crash injection for the fault battery: die
         mid-job, after the request is consumed but before any reply,
         exactly like a segfaulting worker would. Only first attempts
         die, so the front-end's retry lands and completes. *)
      if
        chaos_armed () && attempts = 1
        && starts_with ~prefix:chaos_prefix spec.Proto.id
      then begin
        Log.warn (fun m -> m "chaos: killing worker on %s" spec.Proto.id);
        exit 66
      end;
      let job = Job.create ~now:(Unix.gettimeofday ()) spec in
      job.Job.attempts <- attempts - 1;
      let reply =
        match Scheduler.run_job scheduler ~level job with
        | Scheduler.Success m ->
          Proto.Obj
            [
              ("id", Proto.Str spec.Proto.id);
              ("ok", Proto.Bool true);
              ("wall_s", Proto.Num m.Scheduler.wall_s);
            ]
        | Scheduler.Fault fault ->
          Proto.Obj
            [
              ("id", Proto.Str spec.Proto.id);
              ("ok", Proto.Bool false);
              ("fault", fault_to_json fault);
            ]
      in
      respond reply
  in
  let rec loop () =
    match input_line Stdlib.stdin with
    | exception End_of_file -> ()
    | line ->
      (match Proto.parse_json line with
      | Ok json -> run_request json
      | Error err ->
        respond
          (Proto.Obj
             [
               ("id", Proto.Str "");
               ("ok", Proto.Bool false);
               ("fault", fault_to_json (Job.Crashed ("bad request: " ^ err)));
             ]));
      loop ()
  in
  loop ()

(* ------------------------- supervision ------------------------- *)

let spawn t w =
  (* Both pipes are cloexec: the child's ends are dup2-ed onto fds 0/1
     by [create_process] (which clears the flag on the copies), and the
     parent's ends never leak into sibling workers — otherwise a dead
     worker's pipe would stay open in its siblings and EOF would never
     arrive. *)
  let child_in, send = Unix.pipe ~cloexec:true () in
  let recv, child_out = Unix.pipe ~cloexec:true () in
  let argv = t.config.worker_argv in
  let pid = Unix.create_process argv.(0) argv child_in child_out Unix.stderr in
  Unix.close child_in;
  Unix.close child_out;
  w.pid <- pid;
  w.send <- send;
  w.recv <- recv;
  w.lines <- Lines.create ();
  w.inflight <- None;
  w.alive <- true;
  Log.info (fun m -> m "worker %d spawned (pid %d)" w.index pid)

let alive_count t =
  Array.fold_left (fun n w -> if w.alive then n + 1 else n) 0 t.workers

let total_depth t =
  Array.fold_left (fun n w -> n + Queue.depth w.queue) 0 t.workers

let degradation_level t ~depth =
  if depth >= t.config.triage_watermark then 3
  else if depth >= t.config.overload_watermark then 2
  else if depth >= t.config.high_watermark then 1
  else 0

(* Rendezvous (highest-random-weight) hashing over the non-abandoned
   workers: stable per key, minimal movement when a worker is abandoned.
   Routing deliberately ignores [alive] — jobs may be submitted before
   {!drain} spawns anyone, and a worker that just died but still has
   restart budget keeps its keys. *)
let route t key =
  let best = ref None in
  Array.iter
    (fun w ->
      if not w.abandoned then begin
        let h = Fnv.string (Fnv.int Fnv.empty w.index) key in
        match !best with
        | Some (bh, _) when Int64.unsigned_compare bh h >= 0 -> ()
        | _ -> best := Some (h, w)
      end)
    t.workers;
  Option.map snd !best

let quarantine_now t (job : Job.t) fault =
  job.Job.status <- Job.Quarantined fault;
  t.quarantined <- t.quarantined + 1;
  Scheduler.write_quarantine ~out_dir:t.config.out_dir job fault

let apply_fault t w (job : Job.t) fault =
  (match fault with
  | Job.Timed_out _ -> t.timeouts <- t.timeouts + 1
  | _ -> ());
  match Queue.record_fault w.queue ~now:(Unix.gettimeofday ()) job fault with
  | `Retry ->
    t.retries <- t.retries + 1;
    Metrics.incr m_requeued;
    Log.info (fun m ->
        m "%s faulted on worker %d (%s), retry %d queued" job.Job.spec.Proto.id
          w.index
          (Job.fault_to_string fault)
          job.Job.attempts)
  | `Quarantine ->
    t.quarantined <- t.quarantined + 1;
    Scheduler.write_quarantine ~out_dir:t.config.out_dir job fault;
    Log.warn (fun m ->
        m "%s quarantined after %d attempts: %s" job.Job.spec.Proto.id
          job.Job.attempts
          (Job.fault_to_string fault))

(* A worker abandoned past its restart budget leaves its queue behind:
   re-route every queued job over the survivors (rendezvous again, so
   only the dead worker's keys move), or quarantine when the fleet is
   gone entirely. *)
let reroute_queue t w =
  let rec go () =
    match Queue.shed_oldest w.queue with
    | None -> ()
    | Some job ->
      Metrics.incr m_requeued;
      (match route t (Proto.design_key job.Job.spec) with
      | Some survivor -> Queue.push survivor.queue job
      | None -> quarantine_now t job (Job.Crashed "no live workers"));
      go ()
  in
  go ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let worker_died t w =
  close_quiet w.send;
  close_quiet w.recv;
  let status =
    match Unix.waitpid [] w.pid with
    | _, Unix.WEXITED c -> Printf.sprintf "exit %d" c
    | _, Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | _, Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
    | exception Unix.Unix_error _ -> "unknown"
  in
  w.alive <- false;
  Metrics.set m_alive (float_of_int (alive_count t));
  (match w.inflight with
  | Some job ->
    w.inflight <- None;
    Metrics.incr m_requeued;
    apply_fault t w job
      (Job.Crashed (Printf.sprintf "worker %d died (%s) mid-job" w.index status))
  | None -> ());
  if not t.shutting_down then begin
    Log.warn (fun m -> m "worker %d died (%s)" w.index status);
    if w.restarts < t.config.restart_limit then begin
      w.restarts <- w.restarts + 1;
      t.restarts_total <- t.restarts_total + 1;
      Metrics.incr m_restarts;
      spawn t w;
      Metrics.set m_alive (float_of_int (alive_count t))
    end
    else begin
      Log.err (fun m ->
          m "worker %d abandoned after %d restarts; re-routing its queue"
            w.index w.restarts);
      w.abandoned <- true;
      reroute_queue t w
    end
  end

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* ------------------------- admission ------------------------- *)

let fresh_id t =
  t.auto_id <- t.auto_id + 1;
  Printf.sprintf "job-%04d" t.auto_id

let submit t (spec : Proto.spec) =
  let spec =
    if spec.Proto.id = "" then { spec with Proto.id = fresh_id t } else spec
  in
  t.submitted <- t.submitted + 1;
  let job = Job.create ~now:(Unix.gettimeofday ()) spec in
  (match route t (Proto.design_key spec) with
  | None -> quarantine_now t job (Job.Crashed "no live workers")
  | Some w ->
    if
      t.config.queue_watermark > 0
      && Queue.depth w.queue >= t.config.queue_watermark
    then begin
      match Queue.shed_oldest w.queue with
      | Some victim ->
        t.shed <- t.shed + 1;
        Metrics.incr m_shed;
        victim.Job.status <-
          Job.Quarantined (Job.Crashed "shed under backpressure");
        Scheduler.write_quarantine ~out_dir:t.config.out_dir victim
          (Job.Crashed
             (Printf.sprintf "shed: worker %d queue over watermark %d" w.index
                t.config.queue_watermark));
        Log.warn (fun m ->
            m "shed %s: worker %d queue over watermark"
              victim.Job.spec.Proto.id w.index)
      | None -> ()
    end;
    Queue.push w.queue job);
  spec.Proto.id

let submit_line t ~source line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Ok ""
  else
    match Proto.spec_of_string ~default_id:"" trimmed with
    | Ok spec -> Ok (submit t spec)
    | Error err ->
      t.parse_errors <- t.parse_errors + 1;
      let dir =
        Filename.concat
          (Filename.concat t.config.out_dir "quarantine")
          (Fsutil.sanitize source)
      in
      Fsutil.write_file
        (Filename.concat dir (Printf.sprintf "parse-%03d.txt" t.parse_errors))
        (Printf.sprintf "source: %s\nerror: %s\nline: %s\n" source err trimmed);
      Log.warn (fun m -> m "rejected job line from %s: %s" source err);
      Error err

let load_spool t ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    in
    let before = t.submitted in
    List.iter
      (fun file ->
        let path = Filename.concat dir file in
        match Fsutil.read_lines path with
        | lines ->
          (try Sys.remove path with Sys_error _ -> ());
          List.iter (fun l -> ignore (submit_line t ~source:file l)) lines
        | exception Sys_error err ->
          Log.warn (fun m -> m "skipping spool file %s: %s" path err))
      files;
    t.submitted - before
  end

(* ------------------------- the select loop ------------------------- *)

let dispatch t =
  let now = Unix.gettimeofday () in
  let depth = total_depth t in
  Metrics.set m_depth (float_of_int depth);
  let level = degradation_level t ~depth in
  Array.iter
    (fun w ->
      if w.alive && w.inflight = None then
        match Queue.take_ready w.queue ~now ~max:1 with
        | [ job ] -> (
          job.Job.attempts <- job.Job.attempts + 1;
          w.inflight <- Some job;
          Metrics.incr m_dispatched;
          let line =
            request_line ~attempts:job.Job.attempts ~level job.Job.spec
          in
          try write_all w.send line
          with Unix.Unix_error _ -> worker_died t w)
        | _ -> ())
    t.workers

let handle_response t w line =
  match Proto.parse_json line with
  | Error err ->
    Log.err (fun m -> m "worker %d spoke garbage (%s): %s" w.index err line)
  | Ok json -> (
    let id =
      match Proto.member "id" json with Some (Proto.Str s) -> s | _ -> ""
    in
    let ok =
      match Proto.member "ok" json with Some (Proto.Bool b) -> b | _ -> false
    in
    match w.inflight with
    | Some job when job.Job.spec.Proto.id = id ->
      w.inflight <- None;
      if ok then begin
        job.Job.status <- Job.Done;
        t.completed <- t.completed + 1;
        Log.info (fun m -> m "%s done on worker %d" id w.index)
      end
      else
        let fault =
          match Proto.member "fault" json with
          | Some fj -> fault_of_json fj
          | None -> Job.Crashed "worker reported failure without a fault"
        in
        apply_fault t w job fault
    | _ ->
      Log.err (fun m ->
          m "worker %d answered for %S with no such job in flight" w.index id))

let scratch = Bytes.create 65536

let handle_worker t w =
  match Unix.read w.recv scratch 0 (Bytes.length scratch) with
  | 0 -> worker_died t w
  | n -> List.iter (handle_response t w) (Lines.feed w.lines scratch n)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    worker_died t w

let drop_client t c =
  close_quiet c.cfd;
  t.clients <- List.filter (fun c' -> c' != c) t.clients

let client_reply c json =
  try write_all c.cfd (Proto.print_json json ^ "\n")
  with Unix.Unix_error _ -> ()

let handle_client_line t c line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then ()
  else
    let is_drain =
      match Proto.parse_json trimmed with
      | Ok json -> Proto.member "op" json = Some (Proto.Str "drain")
      | Error _ -> false
    in
    if is_drain then begin
      Log.info (fun m -> m "drain requested by a client");
      t.draining <- true;
      c.want_summary <- true
    end
    else
      match submit_line t ~source:"socket" line with
      | Ok id ->
        client_reply c
          (Proto.Obj [ ("ok", Proto.Bool true); ("id", Proto.Str id) ])
      | Error err ->
        client_reply c
          (Proto.Obj [ ("ok", Proto.Bool false); ("error", Proto.Str err) ])

let handle_client t c =
  match Unix.read c.cfd scratch 0 (Bytes.length scratch) with
  | 0 -> drop_client t c
  | n -> List.iter (handle_client_line t c) (Lines.feed c.clines scratch n)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop_client t c

let summary_json (s : summary) =
  Proto.Obj
    [
      ("submitted", Proto.Num (float_of_int s.submitted));
      ("completed", Proto.Num (float_of_int s.completed));
      ("quarantined", Proto.Num (float_of_int s.quarantined));
      ("retries", Proto.Num (float_of_int s.retries));
      ("timeouts", Proto.Num (float_of_int s.timeouts));
      ("parse_errors", Proto.Num (float_of_int s.parse_errors));
      ("wall_s", Proto.Num s.wall_s);
      ( "shard",
        Proto.Obj
          [
            ("shed", Proto.Num (float_of_int s.shed));
            ("restarts", Proto.Num (float_of_int s.restarts));
          ] );
    ]

let finished t =
  t.draining
  && total_depth t = 0
  && Array.for_all (fun w -> w.inflight = None) t.workers

(* Jobs can be stuck behind backoff gates with every worker dead and the
   restart budget spent — quarantine them instead of spinning forever. *)
let quarantine_stranded t =
  if alive_count t = 0 then
    Array.iter
      (fun w ->
        (match w.inflight with
        | Some job ->
          w.inflight <- None;
          quarantine_now t job (Job.Crashed "no live workers")
        | None -> ());
        let rec go () =
          match Queue.shed_oldest w.queue with
          | Some job ->
            quarantine_now t job (Job.Crashed "no live workers");
            go ()
          | None -> ()
        in
        go ())
      t.workers

let next_gate t =
  Array.fold_left
    (fun acc w ->
      match Queue.next_gate w.queue ~now:(Unix.gettimeofday ()) with
      | Some g -> Float.min acc g
      | None -> acc)
    infinity t.workers

let drain t ?spool () =
  if t.drained then invalid_arg "Shard.drain: already drained";
  t.drained <- true;
  let t0 = Unix.gettimeofday () in
  Fsutil.mkdir_p t.config.out_dir;
  (* A worker dying between rounds must surface as EPIPE on the next
     dispatch write, not kill the front-end. *)
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Array.iter (fun w -> spawn t w) t.workers;
  Metrics.set m_alive (float_of_int (alive_count t));
  (match spool with
  | Some dir -> ignore (load_spool t ~dir)
  | None -> ());
  let listen_fd = Option.map (fun addr -> Netaddr.listen addr) t.config.listen in
  if listen_fd = None then t.draining <- true;
  let rec loop () =
    quarantine_stranded t;
    dispatch t;
    if finished t then ()
    else begin
      let worker_fds =
        Array.to_list t.workers
        |> List.filter_map (fun w -> if w.alive then Some w.recv else None)
      in
      let client_fds = List.map (fun c -> c.cfd) t.clients in
      let fds = worker_fds @ client_fds @ Option.to_list listen_fd in
      if fds = [] then begin
        (* Only gated retries remain; sleep to their gate. *)
        Unix.sleepf
          (Float.max 0.001 (Float.min (next_gate t) t.config.tick_s));
        loop ()
      end
      else begin
        let timeout =
          Float.max 0.001 (Float.min (next_gate t) t.config.tick_s)
        in
        (match Unix.select fds [] [] timeout with
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if Some fd = listen_fd then begin
                let cfd, _ = Unix.accept ~cloexec:true fd in
                t.clients <-
                  { cfd; clines = Lines.create (); want_summary = false }
                  :: t.clients
              end
              else
                match
                  Array.find_opt (fun w -> w.alive && w.recv = fd) t.workers
                with
                | Some w -> handle_worker t w
                | None -> (
                  match List.find_opt (fun c -> c.cfd = fd) t.clients with
                  | Some c -> handle_client t c
                  | None -> ()))
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
    end
  in
  loop ();
  (* Shut the fleet down: stdin EOF ends each worker's request loop. *)
  t.shutting_down <- true;
  Array.iter
    (fun w ->
      if w.alive then begin
        close_quiet w.send;
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        close_quiet w.recv;
        w.alive <- false
      end)
    t.workers;
  Metrics.set m_alive 0.0;
  (match (listen_fd, t.config.listen) with
  | Some fd, addr ->
    close_quiet fd;
    (match addr with
    | Some (Netaddr.Unix_sock path) -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ())
  | None, _ -> ());
  (match previous_sigpipe with
  | Some behavior -> ignore (Sys.signal Sys.sigpipe behavior)
  | None -> ());
  let s =
    {
      submitted = t.submitted;
      completed = t.completed;
      quarantined = t.quarantined;
      retries = t.retries;
      timeouts = t.timeouts;
      shed = t.shed;
      restarts = t.restarts_total;
      parse_errors = t.parse_errors;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  let line = Proto.print_json (summary_json s) ^ "\n" in
  Fsutil.write_file (Filename.concat t.config.out_dir "summary.json") line;
  List.iter
    (fun c ->
      if c.want_summary then (try write_all c.cfd line with _ -> ());
      close_quiet c.cfd)
    t.clients;
  t.clients <- [];
  Log.info (fun m ->
      m "fleet drained: %d completed, %d quarantined, %d retries, %d shed, %d \
         restarts in %.2fs"
        s.completed s.quarantined s.retries s.shed s.restarts s.wall_s);
  s
