(** The service's job queue: admission, retry backoff, quarantine.

    A mutex-protected FIFO of {!Job.t} with the failure policy folded
    in: a failed or timed-out run goes back in the queue behind an
    exponential backoff gate until its attempt budget is spent, after
    which {!record_fault} hands it to quarantine. The queue never drops
    a job silently — every submission ends as [Done] or [Quarantined].

    The scheduler drains in rounds (fork/join over the pool), so pops
    happen from one domain at a time; the mutex exists so that watch
    mode can keep admitting jobs while a round is being assembled, and
    so depth gauges read consistently from anywhere. *)

type t

val create : ?max_attempts:int -> ?backoff_s:float -> unit -> t
(** [max_attempts] (default 3) runs per job before quarantine;
    [backoff_s] (default 0.05) is the first retry delay, doubled per
    subsequent failure — attempt [n]'s gate is
    [backoff_s * 2^(n-1)] seconds after the fault. *)

val push : t -> Job.t -> unit
(** Admit a job (status must be [Pending]). FIFO within readiness. *)

val take_ready : t -> now:float -> max:int -> Job.t list
(** Pop up to [max] jobs whose backoff gate has passed, oldest first,
    marking each [Running]. Jobs still behind their gate stay queued. *)

val record_fault : t -> now:float -> Job.t -> Job.fault -> [ `Retry | `Quarantine ]
(** The policy decision for a failed run: within budget the job returns
    to the queue ([`Retry], status [Pending], gate set); out of budget
    it is marked [Quarantined] and {e not} requeued — the caller owns
    writing the quarantine artifacts. *)

val depth : t -> int
(** Jobs currently queued (ready or backing off), excluding running
    ones — the scheduler's overload signal. *)

val shed_oldest : t -> Job.t option
(** Pop the oldest queued job unconditionally (ignoring backoff gates),
    or [None] on an empty queue. The shard front-end's backpressure
    valve: when a worker's queue crosses its watermark, the oldest
    waiter is shed to make room for the newest — and the same primitive
    empties a dead worker's queue for re-routing. The caller owns the
    popped job's fate (shed artifact, re-route, ...). *)

val next_gate : t -> now:float -> float option
(** Seconds until the earliest backoff gate among queued jobs opens;
    [None] when some job is ready now or the queue is empty. Lets the
    drain loop sleep exactly as long as needed. *)
