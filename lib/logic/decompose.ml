module Subject = Cals_netlist.Subject
module Span = Cals_telemetry.Span

(* Balanced pairwise reduction keeps tree depth logarithmic. *)
let rec reduce combine = function
  | [] -> invalid_arg "Decompose.reduce: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: b :: rest -> combine a b :: pair rest
      | ([ _ ] | []) as tail -> tail
    in
    reduce combine (pair xs)

let subject_of_network net =
  Span.with_ ~cat:"logic"
    ~meta:(Printf.sprintf "%d nodes" (Network.num_live_nodes net))
    "logic.decompose"
  @@ fun () ->
  let b = Subject.builder () in
  let pi_ids =
    Array.map (fun name -> Subject.add_pi b name) (Network.pi_names net)
  in
  let node_ids = Hashtbl.create (Network.num_nodes net) in
  let signal_id = function
    | Network.Pi i -> pi_ids.(i)
    | Network.Node i -> Hashtbl.find node_ids i
  in
  let and2 x y = Subject.add_inv b (Subject.add_nand b x y) in
  let or2 x y = Subject.add_nand b (Subject.add_inv b x) (Subject.add_inv b y) in
  let build_node i =
    let n = Network.node net i in
    let form = Factor.factor n.Network.sop in
    let rec build = function
      | Factor.Const v -> Subject.add_const b v
      | Factor.Lit (v, true) -> signal_id n.Network.fanins.(v)
      | Factor.Lit (v, false) -> Subject.add_inv b (signal_id n.Network.fanins.(v))
      | Factor.And fs -> reduce and2 (List.map build fs)
      | Factor.Or fs -> reduce or2 (List.map build fs)
    in
    Hashtbl.replace node_ids i (build form)
  in
  List.iter build_node (Network.topo_order net);
  Array.iter
    (fun (name, s) -> Subject.set_output b name (signal_id s))
    (Network.outputs net);
  Subject.freeze b

let factored_literals net =
  let live = Network.live_nodes net in
  let acc = ref 0 in
  for i = 0 to Network.num_nodes net - 1 do
    if live.(i) then
      acc := !acc + Factor.num_literals (Factor.factor (Network.node net i).Network.sop)
  done;
  !acc
