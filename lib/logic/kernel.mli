(** Kernels and co-kernels of an SOP expression.

    A kernel of [f] is a cube-free quotient of [f] by a cube (the
    co-kernel). Kernels are the candidate multi-cube divisors used by the
    technology-independent extraction passes — exactly the "unrestrained
    factorization based on kernel extraction" whose congestion side-effects
    the paper studies. *)

type t = {
  cokernel : Cube.t;  (** The cube whose quotient yields [kernel]. *)
  kernel : Sop.t;  (** Cube-free, at least two cubes (or the whole f). *)
}

val all : Sop.t -> t list
(** Every kernel/co-kernel pair, by the classic recursive algorithm.
    Includes [f] itself (with universe co-kernel) when [f] is cube-free
    and has two or more cubes. *)

val level0 : Sop.t -> t list
(** Kernels having no kernels other than themselves. *)

val literal_savings : Sop.t list -> t -> int
(** [literal_savings uses k]: literals saved by extracting kernel [k] as a
    new node given the list of functions in which it divides:
    [(n-1) * lits(kernel) - n] style SIS "value" (non-positive means not
    worth extracting). *)
