(** Technology-independent Boolean network.

    Nodes carry a sum-of-products function over their fanins (local variable
    [i] of a node is its [i]-th fanin). The network is mutable: the
    optimization passes in {!Optimize} rewrite node functions in place, add
    divisor nodes and remove dead ones. *)

type signal =
  | Pi of int  (** Primary input index. *)
  | Node of int  (** Internal node id. *)

type node = {
  mutable fanins : signal array;
  mutable sop : Sop.t;  (** Over local fanin positions. *)
}

type t

val create : pi_names:string array -> t
(** Empty network over the named primary inputs. *)

val num_pis : t -> int
(** Number of primary inputs. *)

val pi_names : t -> string array
(** Primary-input names, in index order. *)

val add_node : t -> signal array -> Sop.t -> int
(** Appends a node; the SOP support must fit the fanin count. *)

val node : t -> int -> node
(** The (mutable) node record for an id. *)

val num_nodes : t -> int
(** Allocated node count, including dead nodes. *)

val copy : t -> t
(** Deep copy: the optimization passes may mutate the copy (or the
    original) without affecting the other. Used to keep a pristine
    reference for equivalence checking across an optimization script. *)

val set_output : t -> string -> signal -> unit
(** Add (or redefine, by name) a primary output driven by the signal. *)

val outputs : t -> (string * signal) array
(** Primary outputs in declaration order. *)

val set_outputs : t -> (string * signal) array -> unit
(** Replace the whole output list (used by passes that renumber nodes). *)

val live_nodes : t -> bool array
(** Reachability from the outputs. *)

val topo_order : t -> int list
(** Live nodes only, fanins before fanouts. Raises [Failure] on a
    combinational cycle. *)

val fanout_table : t -> (int, int list) Hashtbl.t
(** For each live node id, the list of live consumer node ids (excludes
    primary-output references; those are in [outputs]). *)

val num_literals : t -> int
(** Total SOP literals over live nodes — the SIS area-estimation metric. *)

val num_live_nodes : t -> int
(** Nodes reachable from the outputs. *)

val normalize_fanins : t -> int -> unit
(** Drop fanins no longer used by the node's SOP and compact variables. *)

val sweep : t -> unit
(** Remove dead nodes (compacts ids), propagate constant nodes and collapse
    single-positive-literal (buffer) nodes. *)

val simulate : t -> int64 array -> int64 array
(** Bit-parallel over 64 vectors; stimulus per PI, result per output. *)

val random_vectors : Cals_util.Rng.t -> t -> int64 array
(** One random 64-bit stimulus word per primary input, for {!simulate}. *)

val validate : t -> (unit, string) result
(** Structural checks: signal ranges, support within fanins, acyclicity. *)
