(** Pass-ordering orchestration for the tech-independent front end.

    One fixed script cannot fit every structure: PLA-shaped logic wants
    aggressive sharing, deep control logic wants balancing, and — the
    point of this reproduction — the structure handed to the mapper
    shifts downstream congestion in ways only the K-loop can price. This
    module generates {e candidate} front-end results: the legacy SOP
    pipeline as the baseline, plus AIG pass sequences drawn from
    {!Aig.pass} ({{!Aig.Strash}strash}, rewrite, balance, DCE, CSE,
    constant propagation), each projected onto a subject graph. Scoring
    the candidates through the flow's estimator-pruned K-loop is
    {!Cals_core}'s job ([Flow.orchestrate]); this module owns the search
    space and keeps it deterministic.

    Determinism: {!schedule} is a pure function of [budget] (a curated
    prefix, then lexicographic enumeration), every {!Aig} pass rebuilds
    in structure-derived order, and candidate evaluation downstream
    derives all seeds from the spec — so repeated runs are bit-identical
    (asserted by the CLI determinism test). *)

type candidate = {
  label : string;  (** ["aig:strash,rewrite,…"] — the pass names. *)
  passes : Aig.pass list;  (** Applied left to right by {!Aig.run}. *)
}

val default_budget : int
(** Candidate count used when [--orchestrate] is given without a value
    ([8] — the curated schedule). *)

val schedule : budget:int -> candidate list
(** The first [budget] candidate pass sequences: a curated list of
    known-good orderings (the exemplar
    strash/DCE/CSE/constprop/balance script among them), extended past
    its length by every 2- then 3-pass sequence over {!Aig.all_passes}
    in lexicographic order, duplicates skipped. Pure in [budget]:
    the same budget always yields the same schedule. *)

val aig_pass : Aig.pass list -> Optimize.pass
(** Wrap an AIG sequence as a registry pass ({!Aig.run} under the
    candidate's label), so orchestrated sequences and the legacy
    pipeline compose through one {!Optimize.run_pipeline} mechanism. *)

type prepared = {
  label : string;  (** ["baseline"] or the candidate label. *)
  network : Network.t;
      (** The candidate's optimized network — the equivalence-check
          subject and the record of what the front end produced. *)
  subject : Cals_netlist.Subject.t;
      (** What the flow scores: {!Decompose.subject_of_network} for the
          baseline, {!Aig.to_subject} for AIG candidates. *)
  aig_ands : int option;  (** Live AIG nodes; [None] for the baseline. *)
  aig_depth : int option;  (** {!Aig.depth}; [None] for the baseline. *)
}

val subject_gates : Cals_netlist.Subject.t -> int
(** Gate count of a candidate subject — the node guard the flow compares
    against the baseline before spending a K-loop evaluation. *)

val prepare : ?optimize:bool -> budget:int -> Network.t -> prepared list
(** [prepare ~optimize ~budget net] builds the candidate list for [net]:
    element 0 is always the baseline (a copy of [net] through
    {!Optimize.script_area}, or {!Optimize.script_light} when [optimize]
    is [false], decomposed exactly as the plain flow would), followed by
    {!schedule}[ ~budget] AIG candidates, each running its pass sequence
    on an AIG of the {e optimized} baseline network (AIG restructuring
    composes with, rather than replaces, the algebraic script). [net]
    itself is never mutated. Bumps the [orchestrate_candidates_generated]
    and [orchestrate_aig_nodes_saved] telemetry counters. *)
