(** Factored forms and algebraic factoring.

    Decomposition into base gates works from a factored form of each node
    function: the number of literals in the factored form tracks the final
    gate count much better than the flat SOP does (Brayton et al., the
    correlation the paper cites in its Section 1). *)

type t =
  | Lit of int * bool  (** Variable and phase. *)
  | And of t list  (** Two or more factors. *)
  | Or of t list  (** Two or more terms. *)
  | Const of bool

val factor : Sop.t -> t
(** Quick-factor: divide by the best kernel (falling back to the most
    frequent literal), recurse on quotient, divisor and remainder. *)

val num_literals : t -> int
(** Literal count of the factored form — the gate-count proxy. *)

val eval : t -> bool array -> bool
(** Evaluate under an assignment indexed by variable. *)

val eval64 : t -> int64 array -> int64
(** Bit-parallel {!eval} over 64 assignments at once. *)

val to_string : ?names:string array -> t -> string
(** Infix rendering with primes for negation, e.g. ["a (b + c')"]. *)

val support_list : t -> int list
(** Variables mentioned anywhere in the form, increasing, deduplicated. *)
