(** And-Inverter Graph: the tech-independent optimization substrate.

    An AIG represents a combinational function as a DAG of 2-input AND
    nodes connected by possibly-complemented edges — the representation
    behind ABC-style synthesis. Complementation is a bit on the edge, not
    a node, so inverters are free; every richer gate is expressed through
    De Morgan ([a OR b = NOT (NOT a AND NOT b)]).

    Construction is {e canonical}: {!mk_and} orders its fanins, folds
    constants, collapses [x AND x] / [x AND NOT x], and (by default)
    hash-conses structurally identical ANDs, so the graph never holds two
    nodes with the same (ordered, phased) fanin pair. The optimization
    {{!pass}passes} rebuild the graph under stronger rule sets — two-level
    rewriting, chain-canonical CSE, delay-oriented balancing — and every
    pass is equivalence-preserving (guarded by the {!Cals_verify.Equiv}
    miter in the test suite).

    Node ids are dense: node [0] is the constant-[false] source, nodes
    [1..num_pis] are the primary inputs, AND nodes follow in topological
    order (fanins always have smaller ids). A {e literal} packs a node id
    and a complement bit; see {!lit}. *)

type t
(** A mutable AIG under construction, plus its outputs. The passes do not
    mutate their argument — they return a rebuilt graph. *)

(** {1 Literals}

    A literal is [2 * node_id + complement_bit], the AIGER packing:
    literal [0] is constant false, literal [1] constant true. *)

val const_false : int
(** The always-false literal ([0]). *)

val const_true : int
(** The always-true literal ([1]). *)

val lit : int -> bool -> int
(** [lit node complemented] packs a literal. *)

val lit_node : int -> int
(** Node id of a literal. *)

val lit_compl : int -> bool
(** Complement bit of a literal. *)

val neg : int -> int
(** Complement a literal (an edge inversion — free). *)

(** {1 Construction} *)

val create : ?strash:bool -> pi_names:string array -> unit -> t
(** An empty AIG over the given primary inputs. [strash] (default [true])
    enables hash-consing in {!mk_and}; building with [strash:false] keeps
    every structurally duplicated AND, which is how the {!Strash} pass's
    node reduction is measured. *)

val pi : t -> int -> int
(** Positive literal of primary input [i] (0-based, the {!pi_names}
    order). *)

val mk_and : t -> int -> int -> int
(** The canonical AND constructor. Applies, in order: operand ordering
    (smaller literal first), constant folding ([x AND 0 = 0],
    [x AND 1 = x]), idempotence ([x AND x = x]), complementation
    ([x AND NOT x = 0]), then — on a hash-consing graph — structural
    lookup before allocating a node. Fanins must already be literals of
    this graph. *)

val mk_or : t -> int -> int -> int
(** De Morgan: [mk_or t a b = neg (mk_and t (neg a) (neg b))]. *)

val set_output : t -> string -> int -> unit
(** Append (or overwrite, by name) a primary output driven by a literal. *)

val outputs : t -> (string * int) array
(** Output names and driving literals, in declaration order. *)

(** {1 Statistics} *)

val num_pis : t -> int
(** Primary-input count. *)

val pi_names : t -> string array
(** Primary-input names, index-aligned with {!pi}. *)

val num_nodes : t -> int
(** Allocated AND nodes, including ones no output reaches. *)

val num_ands : t -> int
(** Live AND nodes — reachable from some output. The subject-DAG size
    proxy the orchestrator minimizes. *)

val depth : t -> int
(** Largest number of AND nodes on any output-to-input path (inverters
    are free). 0 when every output is a constant or an input. *)

(** {1 Simulation} *)

val simulate : t -> int64 array -> int64 array
(** Bit-parallel evaluation over 64 vectors: one stimulus word per
    primary input (index-aligned with {!pi_names}), one result word per
    output (aligned with {!outputs}). Mirrors
    {!Cals_logic.Network.simulate} so either side can feed the
    equivalence miter. *)

(** {1 Conversions}

    Both directions preserve the function exactly (the qcheck
    differential in [test_logic] miters the round trip against the
    original network over the fuzz substrate). *)

val of_network : ?strash:bool -> Network.t -> t
(** Convert a Boolean network ({e Network.to_aig} in the flow's
    vocabulary — it lives here to keep the dependency one-way). Each
    node's factored form ({!Factor.factor}) is expanded over balanced AND
    trees with De Morgan ORs, so algebraic structure survives the trip.
    [strash] is passed to {!create} (default [true]).

    @raise Failure on a combinational cycle (via {!Network.topo_order}). *)

val to_network : t -> Network.t
(** Project the AIG back onto a {!Network}: one 2-literal AND node per
    live AIG node (complement bits become SOP literal phases), plus an
    inverter or constant node per complemented or constant output. The
    result is ready for {!Decompose.subject_of_network} or another
    {!of_network} round trip. *)

val to_subject : t -> Cals_netlist.Subject.t
(** Direct NAND2/INV projection: every live AND node becomes one NAND2
    gate (its complemented value), complemented edges are absorbed into
    the consuming gate, and only positive references pay an inverter.
    Structurally cheaper than [Decompose.subject_of_network (to_network t)]
    — this is the subject graph the orchestrator scores. *)

(** {1 Optimization passes} *)

(** One rebuild rule set. Every pass returns a fresh graph and leaves its
    argument untouched; all are equivalence-preserving.

    On an already-canonical graph, {!Strash}, {!Dce} and {!Constprop}
    are idempotent clean-up passes (constants and structural duplicates
    cannot survive {!mk_and}); they earn their place in the orchestrator
    search space by re-canonicalizing after {!Balance}/{!Cse}
    reconstructions and by matching the exemplar script ordering
    (strash, DCE, CSE, constant propagation, balance). *)
type pass =
  | Strash
      (** Rebuild from the outputs through a fresh hash table: merges
          structural duplicates, folds constants, drops unreachable
          nodes. The 15–30%% node reduction of the literature is this
          pass applied to a non-hashed ([strash:false]) construction. *)
  | Rewrite
      (** {!Strash} with two-level rules: absorption
          ([x AND (x AND y) = x AND y]), substitution
          ([x AND NOT (x AND y) = x AND NOT y]), two-level contradiction
          ([(x AND y) AND (x AND NOT y) = 0]) and OR-collapse
          ([NOT (x AND y) AND NOT (x AND NOT y) = NOT x]) — each AND is
          inspected one level into its fanins before being allocated. *)
  | Balance
      (** Delay-oriented reconstruction: maximal single-fanout AND cones
          are flattened and rebuilt lowest-level-first (Huffman order),
          minimizing {!depth} without increasing the live node count of
          the cone. *)
  | Dce
      (** Dead-code elimination: drop nodes no output reaches and
          compact ids. Pure garbage collection — never merges or folds,
          so it is the cheap (hash-free) way to shed dead structure. *)
  | Cse
      (** Chain-canonical sharing: AND cones are flattened like
          {!Balance} but rebuilt as literal-sorted left-deep chains, so
          cones sharing a leaf subset share the chain prefix — sharing
          that pairwise structural hashing cannot see. *)
  | Constprop
      (** Constant propagation: rebuild folding constant fanins through
          {!mk_and}'s rules. Subsumed by construction-time folding on a
          canonical graph; kept for exemplar-script parity. *)

val all_passes : pass list
(** Every pass, in the exemplar script order:
    [[Strash; Dce; Cse; Constprop; Balance; Rewrite]]. *)

val pass_name : pass -> string
(** Lower-case pass name, e.g. ["strash"]. *)

val pass_of_string : string -> (pass, string) result
(** Inverse of {!pass_name}; [Error] names the unknown pass. *)

val apply : pass -> t -> t
(** Run one pass, returning the rebuilt graph. *)

val run : pass list -> Network.t -> Network.t
(** [run passes net]: {!of_network}, fold {!apply}, {!to_network}. The
    network-level entry point the shared {!Optimize.pass} registry wraps;
    [net] itself is not modified. *)
