type signal =
  | Pi of int
  | Node of int

type node = {
  mutable fanins : signal array;
  mutable sop : Sop.t;
}

type t = {
  pis : string array;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable outs : (string * signal) array;
}

let dummy_node () = { fanins = [||]; sop = Sop.zero }
let create ~pi_names = { pis = pi_names; nodes = [||]; n_nodes = 0; outs = [||] }
let num_pis t = Array.length t.pis
let pi_names t = t.pis

let check_signal t = function
  | Pi i -> if i < 0 || i >= num_pis t then invalid_arg "Network: bad PI"
  | Node i -> if i < 0 || i >= t.n_nodes then invalid_arg "Network: bad node"

let add_node t fanins sop =
  Array.iter (check_signal t) fanins;
  let nf = Array.length fanins in
  List.iter
    (fun v -> if v >= nf then invalid_arg "Network.add_node: support exceeds fanins")
    (Sop.support_list sop);
  if t.n_nodes = Array.length t.nodes then begin
    let narr = Array.make (max 64 (2 * t.n_nodes)) (dummy_node ()) in
    Array.blit t.nodes 0 narr 0 t.n_nodes;
    t.nodes <- narr
  end;
  t.nodes.(t.n_nodes) <- { fanins; sop };
  t.n_nodes <- t.n_nodes + 1;
  t.n_nodes - 1

let node t i =
  if i < 0 || i >= t.n_nodes then invalid_arg "Network.node";
  t.nodes.(i)

let num_nodes t = t.n_nodes

let copy t =
  {
    pis = t.pis;
    nodes =
      Array.map (fun n -> { fanins = Array.copy n.fanins; sop = n.sop }) t.nodes;
    n_nodes = t.n_nodes;
    outs = Array.copy t.outs;
  }

let set_output t name s =
  check_signal t s;
  t.outs <- Array.append t.outs [| (name, s) |]

let outputs t = t.outs

let set_outputs t outs =
  Array.iter (fun (_, s) -> check_signal t s) outs;
  t.outs <- outs

let live_nodes t =
  let live = Array.make t.n_nodes false in
  let rec visit = function
    | Pi _ -> ()
    | Node i ->
      if not live.(i) then begin
        live.(i) <- true;
        Array.iter visit (node t i).fanins
      end
  in
  Array.iter (fun (_, s) -> visit s) t.outs;
  live

let topo_order t =
  let live = live_nodes t in
  let state = Array.make t.n_nodes 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 -> failwith "Network.topo_order: combinational cycle"
    | _ ->
      state.(i) <- 1;
      Array.iter
        (function Node j -> visit j | Pi _ -> ())
        (node t i).fanins;
      state.(i) <- 2;
      order := i :: !order
  in
  for i = 0 to t.n_nodes - 1 do
    if live.(i) then visit i
  done;
  List.rev !order

let fanout_table t =
  let live = live_nodes t in
  let tbl = Hashtbl.create (t.n_nodes * 2) in
  for i = 0 to t.n_nodes - 1 do
    if live.(i) then Hashtbl.replace tbl i []
  done;
  for i = t.n_nodes - 1 downto 0 do
    if live.(i) then
      Array.iter
        (function
          | Node j ->
            Hashtbl.replace tbl j (i :: Option.value ~default:[] (Hashtbl.find_opt tbl j))
          | Pi _ -> ())
        (node t i).fanins
  done;
  tbl

let num_literals t =
  let live = live_nodes t in
  let acc = ref 0 in
  for i = 0 to t.n_nodes - 1 do
    if live.(i) then acc := !acc + Sop.num_literals (node t i).sop
  done;
  !acc

let num_live_nodes t =
  Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 (live_nodes t)

let normalize_fanins t i =
  let n = node t i in
  let used = Sop.support_list n.sop in
  let keep = Array.of_list used in
  let remap = Hashtbl.create 8 in
  Array.iteri (fun new_v old_v -> Hashtbl.add remap old_v new_v) keep;
  let fanins = Array.map (fun v -> n.fanins.(v)) keep in
  let sop = Sop.map_vars (fun v -> Hashtbl.find remap v) n.sop in
  n.fanins <- fanins;
  n.sop <- sop

(* Replace every use of node id [i] (as a signal) according to [subst]:
   either an alias signal or a constant. *)
type replacement =
  | Alias of signal
  | Constant of bool

let apply_replacement t victim repl =
  let rewrite_node i n =
    match repl with
    | Alias s ->
      n.fanins <-
        Array.map (fun f -> if f = Node victim then s else f) n.fanins
    | Constant b ->
      let touched = ref false in
      Array.iteri
        (fun v f ->
          if f = Node victim then begin
            n.sop <- Sop.cofactor n.sop v b;
            touched := true
          end)
        n.fanins;
      (* The cofactor removed [victim] from the SOP support but not from
         the fanin array; prune it, or the victim stays live through the
         stale reference and the sweep fixpoint never converges. *)
      if !touched then normalize_fanins t i
  in
  for i = 0 to t.n_nodes - 1 do
    if i <> victim then rewrite_node i (node t i)
  done;
  (match repl with
  | Alias s ->
    t.outs <- Array.map (fun (nm, o) -> (nm, if o = Node victim then s else o)) t.outs
  | Constant _ -> ());
  ()

let sweep t =
  (* Iterate constant propagation and buffer collapsing to a fixed point,
     then compact the node array. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let live = live_nodes t in
    for i = 0 to t.n_nodes - 1 do
      if live.(i) then begin
        let n = node t i in
        if Sop.is_zero n.sop || Sop.is_one n.sop then begin
          let b = Sop.is_one n.sop in
          let used_by_output =
            Array.exists (fun (_, s) -> s = Node i) t.outs
          in
          if not used_by_output then begin
            apply_replacement t i (Constant b);
            changed := true
          end
        end
        else
          match Sop.cubes n.sop with
          | [ c ] -> (
            match Cube.literals c with
            | [ (v, true) ] ->
              (* Pure buffer: alias the fanin. *)
              apply_replacement t i (Alias n.fanins.(v));
              changed := true
            | [ _ ] | [] | _ :: _ -> ())
          | [] | _ :: _ -> ()
      end
    done
  done;
  (* Compact: drop dead nodes and remap ids. *)
  let live = live_nodes t in
  let remap = Array.make t.n_nodes (-1) in
  let next = ref 0 in
  for i = 0 to t.n_nodes - 1 do
    if live.(i) then begin
      remap.(i) <- !next;
      incr next
    end
  done;
  let fix = function
    | Pi _ as s -> s
    | Node i ->
      if remap.(i) < 0 then failwith "Network.sweep: dangling reference"
      else Node remap.(i)
  in
  let narr = Array.make (max 1 !next) (dummy_node ()) in
  for i = 0 to t.n_nodes - 1 do
    if live.(i) then begin
      let n = node t i in
      narr.(remap.(i)) <- { fanins = Array.map fix n.fanins; sop = n.sop }
    end
  done;
  t.nodes <- narr;
  t.n_nodes <- !next;
  t.outs <- Array.map (fun (nm, s) -> (nm, fix s)) t.outs

let simulate t stimulus =
  if Array.length stimulus <> num_pis t then invalid_arg "Network.simulate";
  let values = Array.make (max 1 t.n_nodes) 0L in
  let read = function Pi i -> stimulus.(i) | Node i -> values.(i) in
  List.iter
    (fun i ->
      let n = node t i in
      let ins = Array.map read n.fanins in
      values.(i) <- Sop.eval64 n.sop ins)
    (topo_order t);
  Array.map (fun (_, s) -> read s) t.outs

let random_vectors rng t =
  Array.init (num_pis t) (fun _ -> Cals_util.Rng.bits64 rng)

let validate t =
  try
    for i = 0 to t.n_nodes - 1 do
      let n = node t i in
      Array.iter (check_signal t) n.fanins;
      List.iter
        (fun v ->
          if v >= Array.length n.fanins then
            failwith (Printf.sprintf "node %d: support exceeds fanins" i))
        (Sop.support_list n.sop)
    done;
    ignore (topo_order t);
    Ok ()
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
