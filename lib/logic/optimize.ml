module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_cubes_extracted =
  Metrics.counter ~help:"Common cubes extracted as new nodes"
    "optimize_cubes_extracted"

let m_kernels_extracted =
  Metrics.counter ~help:"Kernel divisors extracted as new nodes"
    "optimize_kernels_extracted"

let m_eliminated =
  Metrics.counter ~help:"Low-value nodes eliminated into their fanouts"
    "optimize_nodes_eliminated"

type stats = {
  live_nodes : int;
  literals : int;
}

let stats t =
  { live_nodes = Network.num_live_nodes t; literals = Network.num_literals t }

(* ------------------------------------------------------------------ *)
(* Signal-space translation                                            *)
(* ------------------------------------------------------------------ *)

(* A divisor candidate lives in "signal space": its cubes are literal sets
   over network signals rather than over one node's local variables. *)

type slit = Network.signal * bool

let node_cube_to_signals (n : Network.node) c : slit list =
  List.map (fun (v, ph) -> (n.Network.fanins.(v), ph)) (Cube.literals c)

let canonical_cube (lits : slit list) = List.sort compare lits
let canonical_sop (cubes : slit list list) = List.sort compare (List.map canonical_cube cubes)

let sop_to_signal_space (n : Network.node) sop =
  canonical_sop (List.map (node_cube_to_signals n) (Sop.cubes sop))

(* Translate a signal-space divisor into the local space of node [n],
   returning [None] when some divisor signal is not a fanin of [n]. *)
let divisor_in_local_space (n : Network.node) (cubes : slit list list) =
  let pos_of = Hashtbl.create 8 in
  Array.iteri (fun v s -> if not (Hashtbl.mem pos_of s) then Hashtbl.add pos_of s v) n.Network.fanins;
  let translate_cube lits =
    let rec go acc = function
      | [] -> Some acc
      | (s, ph) :: rest -> (
        match Hashtbl.find_opt pos_of s with
        | Some v -> go ((v, ph) :: acc) rest
        | None -> None)
    in
    (* Aliased fanins can merge or contradict; a contradictory product
       never divides anything, so reject the candidate here. *)
    Option.bind (go [] lits) Cube.of_literals_merged
  in
  let rec all acc = function
    | [] -> Some (Sop.of_cubes acc)
    | c :: rest -> (
      match translate_cube c with Some cu -> all (cu :: acc) rest | None -> None)
  in
  all [] cubes

(* Distinct signals of a signal-space divisor, in deterministic order. *)
let divisor_signals (cubes : slit list list) =
  List.sort_uniq compare (List.concat_map (List.map fst) cubes)

(* Build the local SOP of the new divisor node over [divisor_signals]. *)
let divisor_node_sop (cubes : slit list list) signals =
  let pos = Hashtbl.create 8 in
  List.iteri (fun i s -> Hashtbl.add pos s i) signals;
  Sop.of_cubes
    (List.filter_map
       (fun lits ->
         Cube.of_literals_merged
           (List.map (fun (s, ph) -> (Hashtbl.find pos s, ph)) lits))
       cubes)

(* Literals saved by rewriting node [f] with divisor [d] (trial division;
   0 when the divisor does not divide). *)
let node_savings (n : Network.node) d_local =
  let f = n.Network.sop in
  let q, r = Sop.divide f d_local in
  if Sop.is_zero q then 0
  else
    let before = Sop.num_literals f in
    let after = Sop.num_literals q + Sop.num_cubes q + Sop.num_literals r in
    before - after

(* Rewrite node [n]: f = q * x_new + r. Returns true when applied. *)
let rewrite_with_divisor t node_id (cubes : slit list list) new_node =
  let n = Network.node t node_id in
  match divisor_in_local_space n cubes with
  | None -> false
  | Some d_local ->
    let q, r = Sop.divide n.Network.sop d_local in
    if Sop.is_zero q then false
    else begin
      let nf = Array.length n.Network.fanins in
      if nf >= Cube.max_vars then false
      else begin
        n.Network.fanins <-
          Array.append n.Network.fanins [| Network.Node new_node |];
        n.Network.sop <- Sop.sum (Sop.product q (Sop.var nf)) r;
        Network.normalize_fanins t node_id;
        true
      end
    end

(* ------------------------------------------------------------------ *)
(* Candidate collection                                                *)
(* ------------------------------------------------------------------ *)

type candidate = {
  cubes : slit list list;  (** Canonical signal-space divisor. *)
  mutable hits : int;  (** Cheap occurrence count from collection. *)
  mutable value : int;
  mutable users : int list;  (** Node ids where it divides. *)
}

let evaluate_candidate t cand =
  let signals = divisor_signals cand.cubes in
  let body = divisor_node_sop cand.cubes signals in
  let overhead = Sop.num_literals body + 1 in
  let value = ref (-overhead) in
  let users = ref [] in
  let live = Network.live_nodes t in
  for i = 0 to Network.num_nodes t - 1 do
    if live.(i) then begin
      let n = Network.node t i in
      match divisor_in_local_space n cand.cubes with
      | None -> ()
      | Some d_local ->
        let s = node_savings n d_local in
        if s > 0 then begin
          value := !value + s;
          users := i :: !users
        end
    end
  done;
  cand.value <- !value;
  cand.users <- !users

let materialize t cand =
  let signals = divisor_signals cand.cubes in
  let body = divisor_node_sop cand.cubes signals in
  let new_node = Network.add_node t (Array.of_list signals) body in
  let applied =
    List.fold_left
      (fun acc i -> if rewrite_with_divisor t i cand.cubes new_node then acc + 1 else acc)
      0 cand.users
  in
  applied > 0

(* ------------------------------------------------------------------ *)
(* Cube extraction                                                     *)
(* ------------------------------------------------------------------ *)

let cube_candidates t =
  let tbl : (slit list, candidate) Hashtbl.t = Hashtbl.create 256 in
  let register lits =
    if List.length lits >= 2 then begin
      let key = canonical_cube lits in
      match Hashtbl.find_opt tbl key with
      | Some c -> c.hits <- c.hits + 1
      | None -> Hashtbl.add tbl key { cubes = [ key ]; hits = 1; value = 0; users = [] }
    end
  in
  let live = Network.live_nodes t in
  for i = 0 to Network.num_nodes t - 1 do
    if live.(i) then begin
      let n = Network.node t i in
      let cubes = Array.of_list (Sop.cubes n.Network.sop) in
      (* Identical full cubes across nodes. *)
      Array.iter (fun c -> register (node_cube_to_signals n c)) cubes;
      (* Pairwise intersections within a node, capped for speed. *)
      let cap = min (Array.length cubes) 30 in
      for a = 0 to cap - 1 do
        for b = a + 1 to cap - 1 do
          let common = Cube.common cubes.(a) cubes.(b) in
          if Cube.num_literals common >= 2 then
            register (node_cube_to_signals n common)
        done
      done
    end
  done;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

(* Exact evaluation is expensive (trial division against every node), so
   rank candidates by a cheap score first and only evaluate the best few. *)
let best_candidate ?(exact_budget = 48) t cands =
  let cheap c =
    let lits = List.fold_left (fun acc cu -> acc + List.length cu) 0 c.cubes in
    c.hits * (lits - 1)
  in
  let ranked = List.sort (fun a b -> compare (cheap b) (cheap a)) cands in
  let shortlist = List.filteri (fun i _ -> i < exact_budget) ranked in
  List.iter (evaluate_candidate t) shortlist;
  List.fold_left
    (fun best c ->
      match best with
      | Some b when b.value >= c.value -> best
      | Some _ | None -> if c.value > 0 && List.length c.users >= 1 then Some c else best)
    None shortlist

let extract_common_cubes ?(max_rounds = 64) t =
  let rec go round created =
    if round >= max_rounds then created
    else
      match best_candidate t (cube_candidates t) with
      | None -> created
      | Some c -> if materialize t c then go (round + 1) (created + 1) else created
  in
  let n = go 0 0 in
  Network.sweep t;
  n

(* ------------------------------------------------------------------ *)
(* Kernel extraction                                                   *)
(* ------------------------------------------------------------------ *)

let kernel_candidates ~max_node_cubes t =
  let tbl : (slit list list, candidate) Hashtbl.t = Hashtbl.create 256 in
  let live = Network.live_nodes t in
  for i = 0 to Network.num_nodes t - 1 do
    if live.(i) then begin
      let n = Network.node t i in
      if Sop.num_cubes n.Network.sop <= max_node_cubes then
        List.iter
          (fun k ->
            let kern = k.Kernel.kernel in
            if Sop.num_cubes kern >= 2 && Sop.num_cubes kern <= 12 then begin
              let key = sop_to_signal_space n kern in
              match Hashtbl.find_opt tbl key with
              | Some c -> c.hits <- c.hits + 1
              | None ->
                Hashtbl.add tbl key { cubes = key; hits = 1; value = 0; users = [] }
            end)
          (Kernel.all n.Network.sop)
    end
  done;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

let extract_kernels ?(max_rounds = 64) ?(max_node_cubes = 40) t =
  let rec go round created =
    if round >= max_rounds then created
    else
      match best_candidate t (kernel_candidates ~max_node_cubes t) with
      | None -> created
      | Some c -> if materialize t c then go (round + 1) (created + 1) else created
  in
  let n = go 0 0 in
  Network.sweep t;
  n

(* ------------------------------------------------------------------ *)
(* Eliminate                                                           *)
(* ------------------------------------------------------------------ *)

let eliminate ?(value_threshold = 0) t =
  let eliminated = ref 0 in
  let fanouts = Network.fanout_table t in
  let po_refs = Hashtbl.create 16 in
  Array.iter
    (fun (_, s) ->
      match s with
      | Network.Node i ->
        Hashtbl.replace po_refs i (1 + Option.value ~default:0 (Hashtbl.find_opt po_refs i))
      | Network.Pi _ -> ())
    (Network.outputs t);
  let order = Network.topo_order t in
  let try_eliminate i =
    let n = Network.node t i in
    let consumers = Option.value ~default:[] (Hashtbl.find_opt fanouts i) in
    let pos = Option.value ~default:0 (Hashtbl.find_opt po_refs i) in
    if pos > 0 || consumers = [] then ()
    else begin
      let lits = Sop.num_literals n.Network.sop in
      let refs = List.length consumers in
      (* Extra literals created by collapsing into every consumer. *)
      let value = ((refs - 1) * lits) - refs in
      if value <= value_threshold then begin
        (* Substitute into each consumer; only commit when all succeed so
           the node can be swept afterwards. *)
        let plan =
          List.map
            (fun c_id ->
              let c = Network.node t c_id in
              (* Find the local var reading node i. *)
              let var = ref (-1) in
              Array.iteri
                (fun v s -> if s = Network.Node i && !var < 0 then var := v)
                c.Network.fanins;
              (c_id, c, !var))
            (List.sort_uniq compare consumers)
        in
        let feasible =
          List.for_all
            (fun (_, c, var) ->
              var >= 0
              &&
              (* Bring node i's fanins into c's space (appending missing). *)
              let extra =
                Array.to_list n.Network.fanins
                |> List.filter (fun s -> not (Array.exists (( = ) s) c.Network.fanins))
                |> List.length
              in
              Array.length c.Network.fanins + extra < Cube.max_vars
              &&
              let pos_of = Hashtbl.create 8 in
              Array.iteri
                (fun v s -> if not (Hashtbl.mem pos_of s) then Hashtbl.add pos_of s v)
                c.Network.fanins;
              let next = ref (Array.length c.Network.fanins) in
              Array.iter
                (fun s ->
                  if not (Hashtbl.mem pos_of s) then begin
                    Hashtbl.add pos_of s !next;
                    incr next
                  end)
                n.Network.fanins;
              let g =
                Sop.map_vars
                  (fun v -> Hashtbl.find pos_of n.Network.fanins.(v))
                  n.Network.sop
              in
              Sop.can_substitute c.Network.sop var g)
            plan
        in
        if feasible then begin
          List.iter
            (fun (c_id, c, var) ->
              let missing =
                Array.to_list n.Network.fanins
                |> List.filter (fun s -> not (Array.exists (( = ) s) c.Network.fanins))
              in
              c.Network.fanins <- Array.append c.Network.fanins (Array.of_list missing);
              let pos_of = Hashtbl.create 8 in
              Array.iteri
                (fun v s -> if not (Hashtbl.mem pos_of s) then Hashtbl.add pos_of s v)
                c.Network.fanins;
              let g =
                Sop.map_vars
                  (fun v -> Hashtbl.find pos_of n.Network.fanins.(v))
                  n.Network.sop
              in
              c.Network.sop <- Sop.substitute c.Network.sop var g;
              Network.normalize_fanins t c_id)
            plan;
          incr eliminated
        end
      end
    end
  in
  List.iter try_eliminate order;
  Network.sweep t;
  !eliminated

(* ------------------------------------------------------------------ *)
(* Pass registry and scripts                                           *)
(* ------------------------------------------------------------------ *)

type pass = {
  pass_name : string;
  run : Network.t -> Network.t;
}

let sweep_pass =
  {
    pass_name = "sweep";
    run =
      (fun t ->
        Network.sweep t;
        t);
  }

let cubes_pass =
  {
    pass_name = "cubes";
    run =
      (fun t ->
        Metrics.add m_cubes_extracted (extract_common_cubes t);
        t);
  }

let kernels_pass =
  {
    pass_name = "kernels";
    run =
      (fun t ->
        Metrics.add m_kernels_extracted (extract_kernels t);
        t);
  }

let eliminate_pass =
  {
    pass_name = "eliminate";
    run =
      (fun t ->
        Metrics.add m_eliminated (eliminate ~value_threshold:0 t);
        t);
  }

let area_pipeline ?(rounds = 2) () =
  let round = [ cubes_pass; kernels_pass; eliminate_pass ] in
  let rec repeat n = if n = 0 then [] else round @ repeat (n - 1) in
  (sweep_pass :: repeat rounds) @ [ sweep_pass ]

let run_pipeline passes t = List.fold_left (fun t p -> p.run t) t passes

let pipeline_name passes =
  String.concat "," (List.map (fun p -> p.pass_name) passes)

let script_area ?(rounds = 2) t =
  Span.with_ ~cat:"logic" ~meta:(Printf.sprintf "%d rounds" rounds)
    "logic.script_area"
  @@ fun () -> ignore (run_pipeline (area_pipeline ~rounds ()) t)

let script_light t =
  Span.with_ ~cat:"logic" "logic.script_light"
  @@ fun () -> ignore (run_pipeline [ sweep_pass ] t)
