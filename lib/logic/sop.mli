(** Sum-of-products Boolean functions (cube lists).

    This is the node representation of the technology-independent network,
    the input to kernel extraction and to factoring. The constructor removes
    duplicate and single-cube-contained cubes, so values are in a canonical
    "minimal with respect to single-cube containment" form. *)

type t

val zero : t
(** Constant false (no cubes). *)

val one : t
(** Constant true (the universe cube). *)

val of_cubes : Cube.t list -> t
(** Deduplicates and drops covered cubes. *)

val cubes : t -> Cube.t list
(** The canonical cube list, in {!Cube.compare} order. *)

val num_cubes : t -> int
(** Number of product terms. *)

val num_literals : t -> int
(** Total literal count over all cubes — the SIS area proxy. *)

val support : t -> int
(** Mask of variables appearing in some cube. *)

val support_list : t -> int list
(** {!support} as an increasing variable list. *)

val is_zero : t -> bool
(** Whether the function is constant false. *)

val is_one : t -> bool
(** Whether the function is constant true. *)

val var : int -> t
(** The single positive literal on a variable, as a one-cube SOP. *)

val lit : int -> bool -> t
(** A single literal of either phase, as a one-cube SOP. *)

val sum : t -> t -> t
(** Boolean OR (cube-list union, re-canonicalized). *)

val product : t -> t -> t
(** Cube-by-cube product (drops empty products). *)

val cofactor : t -> int -> bool -> t
(** Shannon cofactor with respect to a literal. *)

val map_vars : (int -> int) -> t -> t
(** Rename variables; the mapping must be injective on the support. *)

val divide_by_cube : t -> Cube.t -> t * t
(** Algebraic division [(quotient, remainder)]: [f = q*c + r] with no cube
    of [r] divisible by [c]. *)

val divide : t -> t -> t * t
(** Weak (algebraic) division by a multi-cube divisor. *)

val largest_common_cube : t -> Cube.t
(** Largest cube dividing every cube ([universe] when none / empty sop). *)

val make_cube_free : t -> t
(** Divide out [largest_common_cube]. *)

val is_cube_free : t -> bool

val complement : ?max_cubes:int -> t -> t option
(** Shannon-recursion complement; [None] when the result would exceed
    [max_cubes] (default 512). *)

val substitute : t -> int -> t -> t
(** [substitute f v g] replaces the variable [v] in [f] by the function [g]
    (both phases; uses {!complement} internally, falling back to expanding
    the positive phase only — callers must check with [can_substitute]). *)

val can_substitute : ?max_cubes:int -> t -> int -> t -> bool
(** True when [substitute] can be performed exactly within the size cap. *)

val eval : t -> bool array -> bool
(** Evaluate under an assignment indexed by variable. *)

val eval64 : t -> int64 array -> int64
(** Bit-parallel {!eval} over 64 assignments at once. *)

val equal : t -> t -> bool
(** Structural equality of canonical cube sets (not Boolean equivalence). *)

val to_string : ?names:string array -> t -> string
(** Cubes joined with [" + "], each via {!Cube.to_string}. *)
