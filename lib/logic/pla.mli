(** Espresso PLA format reader (type fr / f).

    SPLA and PDC, the paper's two K-sweep benchmarks, are distributed as
    two-level PLA descriptions; this reader lets the flow consume the real
    files when available. Supports [.i], [.o], [.p], [.ilb], [.ob], [.type],
    [.e] and product-term lines. *)

exception Parse_error of string
(** Raised with a message containing the offending line number. *)

val parse : string -> Network.t
(** One network node per output, whose SOP collects the products with '1'
    (or '4') in that output column. *)

val read_file : string -> Network.t
(** {!parse} the contents of a file. *)

val print : Network.t -> string
(** Render a two-level network back to PLA. Raises [Invalid_argument] when
    some output is not a direct function of primary inputs. *)
