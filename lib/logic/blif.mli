(** Berkeley Logic Interchange Format reader/writer.

    Supports the combinational subset used by the IWLS93 benchmarks the
    paper evaluates: [.model], [.inputs], [.outputs], [.names] (on-set and
    off-set cover lines), comments and line continuations. Latches and
    subcircuits are rejected with a clear error. *)

exception Parse_error of string
(** Raised with a message containing the offending line number. *)

val parse : string -> Network.t
(** Parse BLIF source text. *)

val read_file : string -> Network.t
(** {!parse} the contents of a file. *)

val print : ?model:string -> Network.t -> string
(** Render a network back to BLIF (one [.names] per live node). *)

val write_file : ?model:string -> string -> Network.t -> unit
(** {!print} to a file. *)
