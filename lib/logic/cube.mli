(** Product terms (cubes) over up to {!max_vars} Boolean variables.

    A cube is a conjunction of literals; each variable appears positively,
    negatively, or not at all. The representation is a pair of bit masks,
    which keeps the cube algebra used by kernel extraction and algebraic
    division allocation-free. *)

type t = private {
  pos : int;  (** Bit [i] set: positive literal on variable [i]. *)
  neg : int;  (** Bit [i] set: negative literal on variable [i]. *)
}

val max_vars : int
(** 60 — enough for every node and PLA this library builds. *)

val universe : t
(** The empty product (constant true). *)

val of_literals : (int * bool) list -> t
(** [(var, phase)] pairs; [phase = true] is the positive literal. Raises
    [Invalid_argument] on contradictions, duplicates or out-of-range vars. *)

val of_literals_merged : (int * bool) list -> t option
(** Like {!of_literals} but merges repeated literals on the same variable
    and returns [None] when two phases contradict (the empty product).
    Needed when a variable renaming is not injective, e.g. a node with two
    fanins wired to the same signal. *)

val literals : t -> (int * bool) list
(** Increasing variable order. *)

val lit : int -> bool -> t
(** Single-literal cube; [lit v phase] with [phase = true] positive. *)

val num_literals : t -> int
(** Number of literals (population count of both masks). *)

val support : t -> int
(** Mask of mentioned variables. *)

val has_var : t -> int -> bool
(** Whether the cube has a literal (either phase) on the variable. *)

val is_universe : t -> bool
(** Whether the cube is the empty product (constant true). *)

val inter : t -> t -> t option
(** Conjunction; [None] when the product is empty (x and x'). *)

val covers : t -> t -> bool
(** [covers c d]: every minterm of [d] satisfies [c] (c's literal set is a
    subset of d's). *)

val divide : t -> t -> t option
(** [divide c d] = the cube [q] with [c = q AND d], when [d]'s literals are
    a subset of [c]'s. *)

val remove_var : t -> int -> t
(** Drop any literal on the given variable. *)

val common : t -> t -> t
(** Largest cube dividing both (shared literals). *)

val eval : t -> bool array -> bool
(** Evaluate under an assignment indexed by variable. *)

val eval64 : t -> int64 array -> int64
(** Bit-parallel {!eval} over 64 assignments at once. *)

val compare : t -> t -> int
(** Total order on the mask pair (arbitrary but deterministic). *)

val equal : t -> t -> bool
(** Mask equality — cubes are canonical, so this is semantic equality. *)

val to_string : ?names:string array -> t -> string
(** e.g. ["a b' d"]; ["<1>"] for the universe. *)
