(** Technology-independent optimization (the "SIS" role in the paper).

    The passes minimize the factored-literal count of the network by
    algebraic restructuring: shared-divisor extraction (kernels and common
    cubes) plus node elimination. The paper's premise is that this
    unrestrained sharing, while optimal for cell area, creates high-fanout
    structure that congests routing — so this module is both a substrate
    (front end of every flow) and the "SIS" comparison subject of Tables
    1-5. *)

type stats = {
  live_nodes : int;  (** {!Network.num_live_nodes}. *)
  literals : int;  (** {!Network.num_literals} — the area proxy. *)
}

val stats : Network.t -> stats
(** Snapshot of the two numbers every pass tries to shrink. *)

val eliminate : ?value_threshold:int -> Network.t -> int
(** Collapse nodes whose elimination "value" (extra literals created by
    collapsing) is at most the threshold (default 0) into their consumers.
    Returns the number of nodes eliminated. *)

val extract_common_cubes : ?max_rounds:int -> Network.t -> int
(** Repeatedly extract the best-value common cube as a new AND node.
    Considers both identical cubes shared across nodes (PLA product terms)
    and pairwise cube intersections within a node. Returns the number of
    divisor nodes created. *)

val extract_kernels : ?max_rounds:int -> ?max_node_cubes:int -> Network.t -> int
(** Repeatedly extract the best-value multi-cube kernel as a new node.
    Nodes with more than [max_node_cubes] cubes (default 40) are skipped as
    kernel sources (but still rewritten as uses). Returns the number of
    divisor nodes created. *)

(** {1 Pass registry}

    The scripts used to hardcode their ordering; they are now built from
    first-class passes so the synthesis orchestrator ({!Orchestrate}) and
    the legacy pipeline share one registry instead of duplicating pass
    glue. A pass takes a network and returns the optimized network —
    the SOP passes below restructure their argument in place and return
    it, while AIG-backed passes (built with {!Orchestrate.aig_pass})
    return a fresh network. *)

type pass = {
  pass_name : string;  (** Lower-case, e.g. ["kernels"] — for labels. *)
  run : Network.t -> Network.t;
      (** May mutate its argument; callers must use the return value. *)
}

val sweep_pass : pass
(** {!Network.sweep}: constant folding, dangling-node removal. *)

val cubes_pass : pass
(** {!extract_common_cubes} with its extraction count recorded on the
    [optimize_cubes_extracted] counter. *)

val kernels_pass : pass
(** {!extract_kernels} recorded on [optimize_kernels_extracted]. *)

val eliminate_pass : pass
(** {!eliminate} at threshold 0 recorded on [optimize_nodes_eliminated]. *)

val area_pipeline : ?rounds:int -> unit -> pass list
(** The pass list behind {!script_area}: sweep, then [rounds] (default 2)
    repetitions of cubes/kernels/eliminate, then a final sweep. *)

val run_pipeline : pass list -> Network.t -> Network.t
(** Fold the passes left to right, threading the returned network. *)

val pipeline_name : pass list -> string
(** Comma-joined pass names, e.g. ["sweep,cubes,kernels"]. *)

val script_area : ?rounds:int -> Network.t -> unit
(** The aggressive area script — {!run_pipeline} over {!area_pipeline}
    under a telemetry span. Mirrors a SIS [script.algebraic] run in
    spirit. The pipeline's passes all mutate in place, so the unit
    return loses nothing. *)

val script_light : Network.t -> unit
(** Sweep only — the front end used for the "DAGON" baseline netlists. *)
