module Subject = Cals_netlist.Subject

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let const_false = 0
let const_true = 1
let lit node complemented = (node lsl 1) lor (if complemented then 1 else 0)
let lit_node l = l lsr 1
let lit_compl l = l land 1 = 1
let neg l = l lxor 1

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

(* Node 0 is the constant-false source; nodes 1..num_pis the PIs; AND
   nodes follow. [fan0]/[fan1] hold fanin literals (-1 below the first
   AND id). The strash table keys the ordered fanin pair; [table = None]
   disables hash-consing (the measurement mode of [create ~strash:false]).
   [two_level] arms the rewrite rules inside [mk_and] during a Rewrite
   rebuild. *)
type t = {
  names : string array;
  mutable fan0 : int array;
  mutable fan1 : int array;
  mutable levels : int array;
  mutable n : int;
  table : (int, int) Hashtbl.t option;
  mutable two_level : bool;
  mutable outs : (string * int) array;
}

let num_pis t = Array.length t.names
let pi_names t = t.names
let first_and t = num_pis t + 1
let is_and t id = id >= first_and t

let create ?(strash = true) ~pi_names () =
  let base = Array.length pi_names + 1 in
  let cap = max 16 (2 * base) in
  let fan0 = Array.make cap (-1) and fan1 = Array.make cap (-1) in
  let levels = Array.make cap 0 in
  {
    names = pi_names;
    fan0;
    fan1;
    levels;
    n = base;
    table = (if strash then Some (Hashtbl.create 256) else None);
    two_level = false;
    outs = [||];
  }

let pi t i =
  if i < 0 || i >= num_pis t then invalid_arg "Aig.pi: index out of range";
  lit (i + 1) false

let level_of t l =
  let id = lit_node l in
  if is_and t id then t.levels.(id) else 0

let grow t =
  let cap = Array.length t.fan0 in
  if t.n >= cap then begin
    let ncap = 2 * cap in
    let f0 = Array.make ncap (-1) and f1 = Array.make ncap (-1) in
    let lv = Array.make ncap 0 in
    Array.blit t.fan0 0 f0 0 cap;
    Array.blit t.fan1 0 f1 0 cap;
    Array.blit t.levels 0 lv 0 cap;
    t.fan0 <- f0;
    t.fan1 <- f1;
    t.levels <- lv
  end

(* Ordered pair key; literals stay far below 2^31 for any network this
   library builds. *)
let pair_key a b = (a lsl 31) lor b

let alloc t a b =
  grow t;
  let id = t.n in
  t.fan0.(id) <- a;
  t.fan1.(id) <- b;
  t.levels.(id) <- 1 + max (level_of t a) (level_of t b);
  t.n <- id + 1;
  (match t.table with
  | Some tbl -> Hashtbl.replace tbl (pair_key a b) id
  | None -> ());
  lit id false

(* Two-level structural rules: inspect AND fanins one level down before
   allocating. Each rule rewrites to literals whose node-id sum is
   strictly smaller, so the mutual recursion with [mk_and] terminates. *)
let rec two_level_rule t a b =
  let fanins l =
    let id = lit_node l in
    if is_and t id then Some (t.fan0.(id), t.fan1.(id)) else None
  in
  match (fanins a, fanins b) with
  | Some (x, y), _ when not (lit_compl a) && (b = x || b = y) ->
    (* Absorption: (x AND y) AND x = x AND y. *)
    Some a
  | Some (x, y), _ when not (lit_compl a) && (b = neg x || b = neg y) ->
    (* Contradiction one level down. *)
    Some const_false
  | _, Some (u, v) when not (lit_compl b) && (a = u || a = v) -> Some b
  | _, Some (u, v) when not (lit_compl b) && (a = neg u || a = neg v) ->
    Some const_false
  | Some (x, y), _ when lit_compl a && (b = x || b = y) ->
    (* Substitution: x AND NOT (x AND y) = x AND NOT y. *)
    Some (mk_and t b (neg (if b = x then y else x)))
  | Some (x, y), _ when lit_compl a && (b = neg x || b = neg y) ->
    (* NOT x implies NOT (x AND y). *)
    Some b
  | _, Some (u, v) when lit_compl b && (a = u || a = v) ->
    Some (mk_and t a (neg (if a = u then v else u)))
  | _, Some (u, v) when lit_compl b && (a = neg u || a = neg v) -> Some a
  | Some (x, y), Some (u, v)
    when (not (lit_compl a)) && not (lit_compl b) ->
    (* Shared-variable contradiction: (x AND y) AND (x AND NOT y) = 0. *)
    if x = neg u || x = neg v || y = neg u || y = neg v then
      Some const_false
    else None
  | Some (x, y), Some (u, v) when lit_compl a && lit_compl b ->
    (* OR-collapse: NOT (x AND y) AND NOT (x AND NOT y) = NOT x. *)
    if x = u && y = neg v then Some (neg x)
    else if x = v && y = neg u then Some (neg x)
    else if y = u && x = neg v then Some (neg y)
    else if y = v && x = neg u then Some (neg y)
    else None
  | _ -> None

and mk_and t a b =
  if a >= 2 * t.n || b >= 2 * t.n || a < 0 || b < 0 then
    invalid_arg "Aig.mk_and: literal out of range";
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = neg b then const_false
  else
    let rewritten = if t.two_level then two_level_rule t a b else None in
    match rewritten with
    | Some l -> l
    | None -> (
      match t.table with
      | None -> alloc t a b
      | Some tbl -> (
        match Hashtbl.find_opt tbl (pair_key a b) with
        | Some id -> lit id false
        | None -> alloc t a b))

let mk_or t a b = neg (mk_and t (neg a) (neg b))

let set_output t name l =
  let replaced = ref false in
  let outs =
    Array.map
      (fun (n, v) ->
        if n = name then begin
          replaced := true;
          (n, l)
        end
        else (n, v))
      t.outs
  in
  t.outs <- (if !replaced then outs else Array.append t.outs [| (name, l) |])

let outputs t = t.outs
let num_nodes t = t.n - first_and t

(* ------------------------------------------------------------------ *)
(* Liveness and statistics                                             *)
(* ------------------------------------------------------------------ *)

(* Iterative mark from the outputs; fanin ids are strictly smaller than
   the node's, so a stack never revisits marked nodes. *)
let live_marks t =
  let live = Array.make t.n false in
  let stack = ref [] in
  let push l =
    let id = lit_node l in
    if is_and t id && not live.(id) then begin
      live.(id) <- true;
      stack := id :: !stack
    end
  in
  Array.iter (fun (_, l) -> push l) t.outs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      push t.fan0.(id);
      push t.fan1.(id);
      drain ()
  in
  drain ();
  live

let num_ands t =
  let live = live_marks t in
  let c = ref 0 in
  for id = first_and t to t.n - 1 do
    if live.(id) then incr c
  done;
  !c

let depth t =
  Array.fold_left (fun acc (_, l) -> max acc (level_of t l)) 0 t.outs

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let simulate t stimulus =
  if Array.length stimulus <> num_pis t then
    invalid_arg "Aig.simulate: stimulus arity mismatch";
  let vals = Array.make t.n 0L in
  Array.blit stimulus 0 vals 1 (num_pis t);
  let word l =
    let v = vals.(lit_node l) in
    if lit_compl l then Int64.lognot v else v
  in
  for id = first_and t to t.n - 1 do
    vals.(id) <- Int64.logand (word t.fan0.(id)) (word t.fan1.(id))
  done;
  Array.map (fun (_, l) -> word l) t.outs

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

(* Balanced pairwise AND keeps conversion depth logarithmic in the
   factored-form width. *)
let and_reduce t = function
  | [] -> const_true
  | lits ->
    let rec go = function
      | [ x ] -> x
      | xs ->
        let rec pair = function
          | a :: b :: rest -> mk_and t a b :: pair rest
          | ([ _ ] | []) as tail -> tail
        in
        go (pair xs)
    in
    go lits

let of_network ?strash net =
  let t = create ?strash ~pi_names:(Network.pi_names net) () in
  let node_lit = Hashtbl.create (Network.num_nodes net) in
  let signal_lit = function
    | Network.Pi i -> pi t i
    | Network.Node i -> Hashtbl.find node_lit i
  in
  let build_node i =
    let n = Network.node net i in
    let rec build = function
      | Factor.Const v -> if v then const_true else const_false
      | Factor.Lit (v, ph) ->
        let l = signal_lit n.Network.fanins.(v) in
        if ph then l else neg l
      | Factor.And fs -> and_reduce t (List.map build fs)
      | Factor.Or fs ->
        neg (and_reduce t (List.map (fun f -> neg (build f)) fs))
    in
    Hashtbl.replace node_lit i (build (Factor.factor n.Network.sop))
  in
  List.iter build_node (Network.topo_order net);
  Array.iter
    (fun (name, s) -> set_output t name (signal_lit s))
    (Network.outputs net);
  t

let to_network t =
  let net = Network.create ~pi_names:t.names in
  let live = live_marks t in
  let node_sig = Array.make t.n (Network.Pi 0) in
  for i = 0 to num_pis t - 1 do
    node_sig.(i + 1) <- Network.Pi i
  done;
  let signal_of_positive l = node_sig.(lit_node l) in
  for id = first_and t to t.n - 1 do
    if live.(id) then begin
      let f0 = t.fan0.(id) and f1 = t.fan1.(id) in
      let sop =
        Sop.of_cubes
          [ Cube.of_literals
              [ (0, not (lit_compl f0)); (1, not (lit_compl f1)) ] ]
      in
      let nid =
        Network.add_node net
          [| signal_of_positive f0; signal_of_positive f1 |]
          sop
      in
      node_sig.(id) <- Network.Node nid
    end
  done;
  (* Constant and complemented outputs need a node to carry them; share
     one per distinct literal. *)
  let extra = Hashtbl.create 8 in
  let output_signal l =
    if l = const_false || l = const_true || lit_compl l then (
      match Hashtbl.find_opt extra l with
      | Some s -> s
      | None ->
        let s =
          if l = const_false then
            Network.Node (Network.add_node net [||] Sop.zero)
          else if l = const_true then
            Network.Node (Network.add_node net [||] Sop.one)
          else
            Network.Node
              (Network.add_node net
                 [| signal_of_positive l |]
                 (Sop.of_cubes [ Cube.lit 0 false ]))
        in
        Hashtbl.replace extra l s;
        s)
    else signal_of_positive l
  in
  Array.iter (fun (name, l) -> Network.set_output net name (output_signal l)) t.outs;
  net

let to_subject t =
  let b = Subject.builder () in
  let pis = Array.map (fun name -> Subject.add_pi b name) t.names in
  (* One subject node per materialized literal: AND nodes canonically
     carry their complemented (NAND) value, so complemented edges are
     free and only positive references pay an inverter. *)
  let memo = Hashtbl.create (2 * t.n) in
  let rec signal_of l =
    match Hashtbl.find_opt memo l with
    | Some s -> s
    | None ->
      let s =
        if l = const_false then Subject.add_const b false
        else if l = const_true then Subject.add_const b true
        else
          let id = lit_node l in
          if not (is_and t id) then
            let p = pis.(id - 1) in
            if lit_compl l then Subject.add_inv b p else p
          else
            let nand =
              Subject.add_nand b
                (signal_of t.fan0.(id))
                (signal_of t.fan1.(id))
            in
            if lit_compl l then nand else Subject.add_inv b nand
      in
      Hashtbl.replace memo l s;
      s
  in
  Array.iter (fun (name, l) -> Subject.set_output b name (signal_of l)) t.outs;
  Subject.freeze b

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)
(* ------------------------------------------------------------------ *)

type pass = Strash | Rewrite | Balance | Dce | Cse | Constprop

let all_passes = [ Strash; Dce; Cse; Constprop; Balance; Rewrite ]

let pass_name = function
  | Strash -> "strash"
  | Rewrite -> "rewrite"
  | Balance -> "balance"
  | Dce -> "dce"
  | Cse -> "cse"
  | Constprop -> "constprop"

let pass_of_string = function
  | "strash" -> Ok Strash
  | "rewrite" -> Ok Rewrite
  | "balance" -> Ok Balance
  | "dce" -> Ok Dce
  | "cse" -> Ok Cse
  | "constprop" -> Ok Constprop
  | other -> Error (Printf.sprintf "unknown AIG pass %S" other)

(* Rebuild every live node bottom-up through a fresh (hash-consing)
   graph; [two_level] arms the rewrite rules. Ids are topological, so a
   single ascending sweep sees fanins before fanouts. *)
let rebuild ?(two_level = false) t =
  let s = create ~pi_names:t.names () in
  s.two_level <- two_level;
  let live = live_marks t in
  let map = Array.make t.n const_false in
  for i = 0 to num_pis t do
    map.(i) <- lit i false
  done;
  let translate l =
    let m = map.(lit_node l) in
    if lit_compl l then neg m else m
  in
  for id = first_and t to t.n - 1 do
    if live.(id) then
      map.(id) <- mk_and s (translate t.fan0.(id)) (translate t.fan1.(id))
  done;
  Array.iter (fun (name, l) -> set_output s name (translate l)) t.outs;
  s.two_level <- false;
  s

(* Garbage collection without a hash table: copy live nodes, renumber.
   Structure-preserving, so it can never merge or fold. *)
let compact t =
  let live = live_marks t in
  let s = create ~strash:false ~pi_names:t.names () in
  let map = Array.make t.n const_false in
  for i = 0 to num_pis t do
    map.(i) <- lit i false
  done;
  let translate l =
    let m = map.(lit_node l) in
    if lit_compl l then neg m else m
  in
  for id = first_and t to t.n - 1 do
    if live.(id) then
      map.(id) <- alloc s (translate t.fan0.(id)) (translate t.fan1.(id))
  done;
  Array.iter (fun (name, l) -> set_output s name (translate l)) t.outs;
  s

(* Reference counts over live structure (outputs included), used to stop
   cone flattening at shared nodes so rebuilds never duplicate logic. *)
let ref_counts t live =
  let refs = Array.make t.n 0 in
  let bump l = refs.(lit_node l) <- refs.(lit_node l) + 1 in
  for id = first_and t to t.n - 1 do
    if live.(id) then begin
      bump t.fan0.(id);
      bump t.fan1.(id)
    end
  done;
  Array.iter (fun (_, l) -> bump l) t.outs;
  refs

(* Leaves of the maximal AND cone rooted at [id]: expand through
   non-complemented, single-fanout AND fanins. Deterministic
   (structure-derived) leaf order. *)
let cone_leaves t refs id =
  let rec gather acc l =
    let i = lit_node l in
    if (not (lit_compl l)) && is_and t i && refs.(i) = 1 then
      gather (gather acc t.fan0.(i)) t.fan1.(i)
    else l :: acc
  in
  gather (gather [] t.fan0.(id)) t.fan1.(id)

(* Cone-restructuring rebuilds (Balance and Cse): only referenced nodes
   materialize in the new graph; single-fanout cone interiors are
   re-derived from the flattened leaf list by [combine]. *)
let restructure t ~combine =
  let s = create ~pi_names:t.names () in
  let live = live_marks t in
  let refs = ref_counts t live in
  let map = Array.make t.n (-1) in
  for i = 0 to num_pis t do
    map.(i) <- lit i false
  done;
  let rec translate l =
    let m = build (lit_node l) in
    if lit_compl l then neg m else m
  and build id =
    if map.(id) >= 0 then map.(id)
    else begin
      let leaves = List.map translate (cone_leaves t refs id) in
      let m = combine s leaves in
      map.(id) <- m;
      m
    end
  in
  Array.iter (fun (name, l) -> set_output s name (translate l)) t.outs;
  s

(* Huffman-style delay balancing: always combine the two shallowest
   operands. Sorting by (level, literal) keeps ties — and therefore the
   whole rebuild — deterministic. *)
let balance_combine s leaves =
  let le (la, a) (lb, b) = la < lb || (la = lb && a <= b) in
  let rec insert x = function
    | [] -> [ x ]
    | y :: rest -> if le x y then x :: y :: rest else y :: insert x rest
  in
  let sorted =
    List.fold_left
      (fun acc l -> insert (level_of s l, l) acc)
      []
      leaves
  in
  let rec reduce = function
    | [] -> const_true
    | [ (_, l) ] -> l
    | (_, a) :: (_, b) :: rest ->
      let l = mk_and s a b in
      reduce (insert (level_of s l, l) rest)
  in
  reduce sorted

(* Chain-canonical CSE: sorted leaves folded into a left-deep chain, so
   cones sharing a leaf-set prefix share the chain nodes through the
   hash table. *)
let cse_combine s leaves =
  match List.sort compare leaves with
  | [] -> const_true
  | first :: rest -> List.fold_left (fun acc l -> mk_and s acc l) first rest

let apply pass t =
  match pass with
  | Strash | Constprop -> rebuild t
  | Rewrite -> rebuild ~two_level:true t
  | Dce -> compact t
  | Balance -> restructure t ~combine:balance_combine
  | Cse -> restructure t ~combine:cse_combine

let run passes net =
  let t = List.fold_left (fun t p -> apply p t) (of_network net) passes in
  to_network t
