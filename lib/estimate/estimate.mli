(** Millisecond congestion forecasting from placement.

    The flow's bottleneck is the negotiated global route it pays at every
    K point of the schedule, on a *different* netlist each time — routing
    is far too slow to sit inside an optimization loop. This module
    forecasts the router's verdict directly from the placed netlist, in
    the spirit of RUDY-style probabilistic congestion estimation: each
    net's half-perimeter wirelength is spread uniformly over the gcells
    its bounding box covers (wire demand), pins add a per-gcell escape
    term (pin demand), and the demand map is compared against the exact
    per-gcell supply the router's grid would offer (layer tracks plus the
    density-coupled M1 share — see {!Cals_route.Rgrid.create}). The
    whole forecast is a handful of linear passes over the nets and the
    grid: microseconds to low milliseconds, versus seconds for a
    negotiated route.

    The forecast feeds a calibrated three-way {!verdict}. Thresholds are
    fitted on the golden corpus and the bench presets against the real
    router (see DESIGN.md, Section 4k): a {e confident} [Unroutable] lets
    {!Cals_core.Flow.evaluate_k} skip the negotiated route entirely,
    [Uncertain] points route for real, and an accepted K is always
    confirmed by a real route — the estimator can only ever prune
    rejections, never certify an acceptance. *)

type verdict =
  | Routable  (** Confidently under capacity everywhere. *)
  | Unroutable  (** Confidently over capacity; predicted violations > 0. *)
  | Uncertain  (** Near the boundary (or degenerate input): route for real. *)

(** How callers use the forecast inside a K sweep. *)
type policy =
  | Off  (** Never forecast; every point pays a real route. *)
  | Prune
      (** Forecast first; a confident [Unroutable] skips the real route
          (recording the estimated report), everything else routes. *)
  | Triage
      (** Estimator-only: no point routes for real, acceptance is decided
          on the forecast. The batch service's deepest degradation rung —
          results are explicitly marked estimated. *)

type maps = {
  cols : int;
  rows : int;  (** Same grid the router would build ({!Cals_route.Rgrid.dims}). *)
  gcell_um : float;
  wire_density : Cals_util.Grid2d.t;
      (** Demand: expected track-lengths of wire per gcell (RUDY spread
          plus the pin escape term). *)
  pin_density : Cals_util.Grid2d.t;  (** Pins per gcell. *)
  supply : Cals_util.Grid2d.t;
      (** Track-lengths each gcell can host: layer tracks plus the
          density-coupled M1 share, mirroring {!Cals_route.Rgrid.create}. *)
  utilization : Cals_util.Grid2d.t;  (** [demand / supply] per gcell. *)
}

type forecast = {
  maps : maps;
  overflow_score : float;
      (** Sum over gcells of [max 0 (demand - supply)], in track units —
          the estimator's counterpart of the router's total overflow. *)
  normalized_overflow : float;
      (** [overflow_score / total supply]; scale-free, what the verdict
          thresholds are calibrated on. *)
  peak_utilization : float;  (** Largest per-gcell [demand / supply]. *)
  hot_fraction : float;
      (** Gcells above {!Cals_route.Congestion.hot_threshold}. *)
  predicted_violations : int;
      (** Rounded overflow score damped by {!negotiation_relief} — the
          router negotiates demand away from hotspots, so raw RUDY
          overflow overestimates the post-negotiation residual. *)
  hpwl_um : float;  (** Summed net HPWL (the wirelength stand-in). *)
  verdict : verdict;
}

val forecast_pins :
  ?config:Cals_route.Router.config ->
  ?density:Cals_util.Grid2d.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  Cals_util.Geom.point list array ->
  forecast
(** Forecast one net per array slot (list of pin locations), the
    estimator mirror of {!Cals_route.Router.route_pins}. [density] feeds
    the M1 supply model exactly as it feeds the router's grid. Never
    raises on degenerate input — empty net arrays, single-pin nets,
    zero-area bounding boxes and single-gcell grids all produce a
    forecast whose verdict is [Uncertain] when the numbers cannot be
    trusted (see {!degenerate}). *)

val forecast_mapped :
  ?config:Cals_route.Router.config ->
  Cals_netlist.Mapped.t ->
  floorplan:Cals_place.Floorplan.t ->
  wire:Cals_cell.Library.wire_model ->
  placement:Cals_place.Placement.mapped_placement ->
  forecast
(** Forecast a placed mapped netlist: pin clusters and the cell-density
    map are derived exactly as {!Cals_route.Router.route_mapped} derives
    them, so the estimator sees the same geometry the router would. *)

val report : forecast -> Cals_route.Congestion.report
(** The forecast as a congestion report, so a skipped K point records in
    the same shape as a routed one: [violations] is
    [predicted_violations], [total_overflow] the overflow score,
    [wirelength_um] the HPWL stand-in. *)

val degenerate : maps -> bool
(** Whether the grid is too small or the supply too empty for the
    thresholds to mean anything ([verdict] is then [Uncertain]). *)

(** {2 Calibration constants}

    Fitted once against the real router on the golden corpus and the
    SPLA/PDC bench presets (DESIGN.md, Section 4k records the fitting
    table). Exposed so tests can assert the calibration's soundness
    margins rather than hard-coding copies. *)

val pin_track_cost : float
(** Track-lengths of escape routing charged per pin (0.125). *)

val negotiation_relief : float
(** Fraction of raw RUDY overflow the negotiated router is expected to
    resolve; damps [predicted_violations] (0.5). *)

val unroutable_min_norm : float
(** Normalized overflow at or above which the verdict is [Unroutable]. *)

val routable_max_norm : float
(** Normalized overflow at or below which the verdict may be [Routable]. *)

val routable_max_peak : float
(** Peak utilization a [Routable] verdict additionally requires. *)

val verdict_of_scores :
  degenerate:bool -> normalized_overflow:float -> peak_utilization:float -> verdict
(** The threshold logic alone, exposed for tests ([degenerate:true]
    forces [Uncertain]). *)

val verdict_to_string : verdict -> string

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** ["off"], ["on"]/["prune"], ["triage"] (case-insensitive). *)
