module Geom = Cals_util.Geom
module Grid2d = Cals_util.Grid2d
module Rgrid = Cals_route.Rgrid
module Router = Cals_route.Router
module Congestion = Cals_route.Congestion
module Mapped = Cals_netlist.Mapped
module Metrics = Cals_telemetry.Metrics
module Span = Cals_telemetry.Span

let m_forecasts =
  Metrics.counter ~help:"Congestion forecasts computed" "estimate_forecasts"

let m_routable =
  Metrics.counter ~help:"Forecasts with a confident Routable verdict"
    "estimate_verdict_routable"

let m_unroutable =
  Metrics.counter ~help:"Forecasts with a confident Unroutable verdict"
    "estimate_verdict_unroutable"

let m_uncertain =
  Metrics.counter ~help:"Forecasts near the boundary (or degenerate)"
    "estimate_verdict_uncertain"

let m_seconds =
  Metrics.histogram ~help:"Wall seconds per forecast"
    ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]
    "estimate_seconds"

type verdict = Routable | Unroutable | Uncertain

type policy = Off | Prune | Triage

type maps = {
  cols : int;
  rows : int;
  gcell_um : float;
  wire_density : Grid2d.t;
  pin_density : Grid2d.t;
  supply : Grid2d.t;
  utilization : Grid2d.t;
}

type forecast = {
  maps : maps;
  overflow_score : float;
  normalized_overflow : float;
  peak_utilization : float;
  hot_fraction : float;
  predicted_violations : int;
  hpwl_um : float;
  verdict : verdict;
}

(* ------------------------- calibration ------------------------- *)

(* Fitted against the real router on the golden corpus (always routable,
   utilization 0.42-0.53) and the SPLA/PDC presets at the congested
   bench scales (DESIGN.md, Section 4k has the fitting table). The
   margins are deliberately asymmetric: a wrong Unroutable would change
   the sweep's accepted K, a wrong Routable merely wastes one real
   route, and a wrong Uncertain only costs the route we would have paid
   anyway. *)
let pin_track_cost = 0.125
let negotiation_relief = 0.5
let unroutable_min_norm = 0.02
let routable_max_norm = 1e-4
let routable_max_peak = 0.8

let verdict_of_scores ~degenerate ~normalized_overflow ~peak_utilization =
  if degenerate then Uncertain
  else if normalized_overflow >= unroutable_min_norm then Unroutable
  else if
    normalized_overflow <= routable_max_norm
    && peak_utilization <= routable_max_peak
  then Routable
  else Uncertain

(* The thresholds are meaningless when the grid barely exists or offers
   no capacity, and a netlist with no two-pin net has no routing demand
   to score — all three answer Uncertain rather than a confident guess. *)
let degenerate_scores ~cols ~rows ~total_supply ~routable_nets =
  cols * rows <= 4 || total_supply <= 1e-9 || routable_nets = 0

let degenerate m =
  let total_supply = Grid2d.total m.supply in
  m.cols * m.rows <= 4 || total_supply <= 1e-9

let verdict_to_string = function
  | Routable -> "routable"
  | Unroutable -> "unroutable"
  | Uncertain -> "uncertain"

let policy_to_string = function
  | Off -> "off"
  | Prune -> "on"
  | Triage -> "triage"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "on" | "prune" -> Ok Prune
  | "triage" -> Ok Triage
  | other ->
    Error (Printf.sprintf "unknown estimate policy %S (off, on, triage)" other)

(* ------------------------- the forecast ------------------------- *)

let clamp_int lo hi v = if v < lo then lo else if v > hi then hi else v

let forecast_pins ?(config = Router.default_config) ?density ~floorplan ~wire
    nets =
  Span.with_ ~cat:"estimate"
    ~meta:(Printf.sprintf "%d nets" (Array.length nets))
    "estimate.forecast"
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Metrics.incr m_forecasts;
  let cols, rows, gcell_um =
    Rgrid.dims ~floorplan ~gcell_rows:config.Router.gcell_rows
  in
  let wire_density = Grid2d.create ~cols ~rows 0.0 in
  let pin_density = Grid2d.create ~cols ~rows 0.0 in
  let supply = Grid2d.create ~cols ~rows 0.0 in
  (* Supply mirrors Rgrid.create's capacity model, folded per gcell: the
     layers above M1 contribute [tracks] full track-lengths in each
     direction, M1 contributes the share the standard cells leave over
     (shrinking linearly with local cell density). *)
  let tracks = gcell_um /. max 1e-9 wire.Cals_cell.Library.pitch_um in
  let n_routing = max 0 (config.Router.layers - 1) in
  let nh = float_of_int ((n_routing + 1) / 2) in
  let nv = float_of_int (n_routing / 2) in
  let density_at c r =
    match density with
    | None -> 0.0
    | Some g ->
      let c = clamp_int 0 (Grid2d.cols g - 1) c
      and r = clamp_int 0 (Grid2d.rows g - 1) r in
      Geom.clamp 0.0 1.0 (Grid2d.get g c r)
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let d = density_at c r in
      Grid2d.set supply c r
        (tracks
        *. (nh +. nv +. (2.0 *. config.Router.m1_free *. (1.0 -. d))))
    done
  done;
  (* Same clamp as Rgrid.gcell_of_point, so pin gcells agree with the
     grid the router would build. *)
  let gcell_of (p : Geom.point) =
    let c = clamp_int 0 (cols - 1) (int_of_float (p.Geom.x /. gcell_um)) in
    let r = clamp_int 0 (rows - 1) (int_of_float (p.Geom.y /. gcell_um)) in
    (c, r)
  in
  let hpwl_total = ref 0.0 in
  let routable_nets = ref 0 in
  Array.iter
    (fun pins ->
      match pins with
      | [] -> ()
      | first :: rest ->
        let x0 = ref first.Geom.x and x1 = ref first.Geom.x in
        let y0 = ref first.Geom.y and y1 = ref first.Geom.y in
        let distinct = ref false in
        let c0, r0 = gcell_of first in
        Grid2d.add pin_density c0 r0 1.0;
        Grid2d.add wire_density c0 r0 pin_track_cost;
        List.iter
          (fun (p : Geom.point) ->
            if p.Geom.x < !x0 then x0 := p.Geom.x;
            if p.Geom.x > !x1 then x1 := p.Geom.x;
            if p.Geom.y < !y0 then y0 := p.Geom.y;
            if p.Geom.y > !y1 then y1 := p.Geom.y;
            let c, r = gcell_of p in
            if c <> c0 || r <> r0 then distinct := true;
            Grid2d.add pin_density c r 1.0;
            Grid2d.add wire_density c r pin_track_cost)
          rest;
        if !distinct then incr routable_nets;
        let hpwl = !x1 -. !x0 +. (!y1 -. !y0) in
        hpwl_total := !hpwl_total +. hpwl;
        if hpwl > 0.0 then begin
          (* RUDY spread: the net's HPWL worth of wire, uniform over its
             bounding box inflated by half a gcell per side (so zero-area
             boxes — straight-line nets — still cover real area). *)
          let half = gcell_um /. 2.0 in
          let bx0 = !x0 -. half and bx1 = !x1 +. half in
          let by0 = !y0 -. half and by1 = !y1 +. half in
          let area = (bx1 -. bx0) *. (by1 -. by0) in
          let c_lo = clamp_int 0 (cols - 1) (int_of_float (bx0 /. gcell_um)) in
          let c_hi = clamp_int 0 (cols - 1) (int_of_float (bx1 /. gcell_um)) in
          let r_lo = clamp_int 0 (rows - 1) (int_of_float (by0 /. gcell_um)) in
          let r_hi = clamp_int 0 (rows - 1) (int_of_float (by1 /. gcell_um)) in
          let per_area = hpwl /. max 1e-9 area /. gcell_um in
          for r = r_lo to r_hi do
            let gy0 = float_of_int r *. gcell_um in
            let oy =
              Float.min by1 (gy0 +. gcell_um) -. Float.max by0 gy0
            in
            if oy > 0.0 then
              for c = c_lo to c_hi do
                let gx0 = float_of_int c *. gcell_um in
                let ox =
                  Float.min bx1 (gx0 +. gcell_um) -. Float.max bx0 gx0
                in
                if ox > 0.0 then
                  Grid2d.add wire_density c r (ox *. oy *. per_area)
              done
          done
        end)
    nets;
  let utilization = Grid2d.create ~cols ~rows 0.0 in
  let overflow = ref 0.0 in
  let total_supply = ref 0.0 in
  let peak = ref 0.0 in
  let hot = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let d = Grid2d.get wire_density c r in
      let s = Grid2d.get supply c r in
      total_supply := !total_supply +. s;
      let u = d /. max 1e-9 s in
      Grid2d.set utilization c r u;
      if u > !peak then peak := u;
      if u > Congestion.hot_threshold then incr hot;
      if d > s then overflow := !overflow +. (d -. s)
    done
  done;
  let normalized_overflow = !overflow /. max 1e-9 !total_supply in
  let deg =
    degenerate_scores ~cols ~rows ~total_supply:!total_supply
      ~routable_nets:!routable_nets
  in
  let verdict =
    verdict_of_scores ~degenerate:deg ~normalized_overflow
      ~peak_utilization:!peak
  in
  Metrics.incr
    (match verdict with
    | Routable -> m_routable
    | Unroutable -> m_unroutable
    | Uncertain -> m_uncertain);
  let predicted_violations =
    match verdict with
    | Routable -> 0
    | Unroutable | Uncertain ->
      let damped =
        int_of_float (Float.round ((1.0 -. negotiation_relief) *. !overflow))
      in
      if verdict = Unroutable then max 1 damped else damped
  in
  let f =
    {
      maps =
        { cols; rows; gcell_um; wire_density; pin_density; supply;
          utilization };
      overflow_score = !overflow;
      normalized_overflow;
      peak_utilization = !peak;
      hot_fraction = float_of_int !hot /. float_of_int (max 1 (cols * rows));
      predicted_violations;
      hpwl_um = !hpwl_total;
      verdict;
    }
  in
  Metrics.observe m_seconds (Unix.gettimeofday () -. t0);
  f

let forecast_mapped ?config mapped ~floorplan ~wire
    ~(placement : Cals_place.Placement.mapped_placement) =
  (* Pin clusters and the cell-density map exactly as
     Router.route_mapped derives them, so the forecast scores the same
     geometry the router would route. *)
  let density = Router.density_map ?config mapped ~floorplan ~placement in
  let nets = Mapped.nets mapped in
  let pos_of_signal = function
    | Mapped.Of_pi i -> placement.Cals_place.Placement.pi_pos.(i)
    | Mapped.Of_inst i -> placement.Cals_place.Placement.cell_pos.(i)
  in
  let pin_clusters =
    Array.map
      (fun net ->
        match net.Mapped.sinks with
        | [] -> []
        | sinks ->
          let sink_pos = function
            | Mapped.Cell_pin (i, _) ->
              placement.Cals_place.Placement.cell_pos.(i)
            | Mapped.Po oi -> placement.Cals_place.Placement.po_pos.(oi)
          in
          pos_of_signal net.Mapped.driver :: List.map sink_pos sinks)
      nets
  in
  forecast_pins ?config ~density ~floorplan ~wire pin_clusters

let report f =
  {
    Congestion.violations = f.predicted_violations;
    total_overflow = f.overflow_score;
    max_utilization = f.peak_utilization;
    congested_gcell_fraction = f.hot_fraction;
    wirelength_um = f.hpwl_um;
  }
