type gate =
  | Pi of int
  | Inv of int
  | Nand2 of int * int

type t = {
  gates : gate array;
  pi_names : string array;
  outputs : (string * int) array;
}

(* Growable gate vector; OCaml 5.1 has no Dynarray yet. *)
type builder = {
  mutable arr : gate array;
  mutable len : int;
  strash : (gate, int) Hashtbl.t;
  mutable pis : string list;  (** reversed *)
  mutable n_pis : int;
  pi_seen : (string, unit) Hashtbl.t;
  mutable outs : (string * int) list;  (** reversed *)
  out_seen : (string, unit) Hashtbl.t;
  mutable const0 : int option;
}

let builder () =
  {
    arr = Array.make 64 (Pi 0);
    len = 0;
    strash = Hashtbl.create 1024;
    pis = [];
    n_pis = 0;
    pi_seen = Hashtbl.create 64;
    outs = [];
    out_seen = Hashtbl.create 64;
    const0 = None;
  }

let push b g =
  if b.len = Array.length b.arr then begin
    let narr = Array.make (2 * b.len) (Pi 0) in
    Array.blit b.arr 0 narr 0 b.len;
    b.arr <- narr
  end;
  b.arr.(b.len) <- g;
  b.len <- b.len + 1;
  b.len - 1

let check_ref b v =
  if v < 0 || v >= b.len then invalid_arg "Subject: dangling node reference"

let add_pi b name =
  if Hashtbl.mem b.pi_seen name then invalid_arg ("Subject.add_pi: duplicate " ^ name);
  Hashtbl.add b.pi_seen name ();
  b.pis <- name :: b.pis;
  let idx = b.n_pis in
  b.n_pis <- b.n_pis + 1;
  push b (Pi idx)

let hashed b g =
  match Hashtbl.find_opt b.strash g with
  | Some id -> id
  | None ->
    let id = push b g in
    Hashtbl.add b.strash g id;
    id

let add_inv b a =
  check_ref b a;
  hashed b (Inv a)

let add_nand b a0 a1 =
  check_ref b a0;
  check_ref b a1;
  let lo, hi = if a0 <= a1 then a0, a1 else a1, a0 in
  hashed b (Nand2 (lo, hi))

let add_const b value =
  let zero =
    match b.const0 with
    | Some id -> id
    | None ->
      let id = add_pi b "__const0" in
      b.const0 <- Some id;
      id
  in
  if value then add_inv b zero else zero

let set_output b name v =
  check_ref b v;
  if Hashtbl.mem b.out_seen name then
    invalid_arg ("Subject.set_output: duplicate " ^ name);
  Hashtbl.add b.out_seen name ();
  b.outs <- (name, v) :: b.outs

let freeze b =
  {
    gates = Array.sub b.arr 0 b.len;
    pi_names = Array.of_list (List.rev b.pis);
    outputs = Array.of_list (List.rev b.outs);
  }

let num_nodes t = Array.length t.gates
let num_pis t = Array.length t.pi_names

let count pred t =
  Array.fold_left (fun acc g -> if pred g then acc + 1 else acc) 0 t.gates

let num_nand2 = count (function Nand2 _ -> true | Pi _ | Inv _ -> false)
let num_inv = count (function Inv _ -> true | Pi _ | Nand2 _ -> false)
let num_gates t = num_nand2 t + num_inv t

let fanins = function
  | Pi _ -> []
  | Inv a -> [ a ]
  | Nand2 (a, b) -> if a = b then [ a ] else [ a; b ]

let fanouts t =
  let fo = Array.make (num_nodes t) [] in
  for v = num_nodes t - 1 downto 0 do
    List.iter (fun u -> fo.(u) <- v :: fo.(u)) (fanins t.gates.(v))
  done;
  fo

let output_refs t =
  let refs = Array.make (num_nodes t) 0 in
  Array.iter (fun (_, v) -> refs.(v) <- refs.(v) + 1) t.outputs;
  refs

let fanout_counts t =
  let fo = fanouts t and refs = output_refs t in
  Array.init (num_nodes t) (fun v -> List.length fo.(v) + refs.(v))

let simulate t pi_vectors =
  if Array.length pi_vectors <> num_pis t then invalid_arg "Subject.simulate";
  let values = Array.make (num_nodes t) 0L in
  Array.iteri
    (fun v g ->
      values.(v) <-
        (match g with
        | Pi idx -> pi_vectors.(idx)
        | Inv a -> Int64.lognot values.(a)
        | Nand2 (a, b) -> Int64.lognot (Int64.logand values.(a) values.(b))))
    t.gates;
  Array.map (fun (_, v) -> values.(v)) t.outputs

let random_vectors rng t =
  Array.init (num_pis t) (fun i ->
      (* __const0 must stay 0 in every vector. *)
      if t.pi_names.(i) = "__const0" then 0L else Cals_util.Rng.bits64 rng)

let simulate_one t assignment =
  let stimulus = Array.map (fun b -> if b then -1L else 0L) assignment in
  Array.map (fun v -> Int64.logand v 1L <> 0L) (simulate t stimulus)
