type signal =
  | Of_pi of int
  | Of_inst of int

type instance = {
  cell : Cals_cell.Cell.t;
  fanins : signal array;
  seed : Cals_util.Geom.point;
}

type t = {
  pi_names : string array;
  instances : instance array;
  outputs : (string * signal) array;
}

let check_signal ~npis ~before s =
  match s with
  | Of_pi i -> if i < 0 || i >= npis then invalid_arg "Mapped: bad PI reference"
  | Of_inst i ->
    if i < 0 || i >= before then invalid_arg "Mapped: fanin breaks topological order"

let make ~pi_names ~instances ~outputs =
  let npis = Array.length pi_names in
  Array.iteri
    (fun idx inst ->
      let arity = Cals_cell.Cell.num_inputs inst.cell in
      if Array.length inst.fanins <> arity then
        invalid_arg
          (Printf.sprintf "Mapped: instance %d of %s has %d fanins, expected %d" idx
             inst.cell.Cals_cell.Cell.name
             (Array.length inst.fanins) arity);
      Array.iter (check_signal ~npis ~before:idx) inst.fanins)
    instances;
  Array.iter
    (fun (_, s) -> check_signal ~npis ~before:(Array.length instances) s)
    outputs;
  { pi_names; instances; outputs }

let num_cells t = Array.length t.instances

let total_area t =
  Array.fold_left (fun acc i -> acc +. i.cell.Cals_cell.Cell.area) 0.0 t.instances

let total_sites t =
  Array.fold_left (fun acc i -> acc + i.cell.Cals_cell.Cell.width_sites) 0 t.instances

let cell_histogram t =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun i ->
      let name = i.cell.Cals_cell.Cell.name in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    t.instances;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type sink =
  | Cell_pin of int * int
  | Po of int

type net = {
  driver : signal;
  sinks : sink list;
}

let signal_index t = function
  | Of_pi i -> i
  | Of_inst i -> Array.length t.pi_names + i

let nets t =
  let npis = Array.length t.pi_names in
  let n = npis + Array.length t.instances in
  let sinks = Array.make n [] in
  (* Collect in reverse so each list ends up in increasing order. *)
  for idx = Array.length t.instances - 1 downto 0 do
    let inst = t.instances.(idx) in
    for pin = Array.length inst.fanins - 1 downto 0 do
      let s = signal_index t inst.fanins.(pin) in
      sinks.(s) <- Cell_pin (idx, pin) :: sinks.(s)
    done
  done;
  Array.iteri
    (fun oi (_, sg) ->
      let s = signal_index t sg in
      sinks.(s) <- sinks.(s) @ [ Po oi ])
    t.outputs;
  Array.init n (fun i ->
      let driver = if i < npis then Of_pi i else Of_inst (i - npis) in
      { driver; sinks = sinks.(i) })

let simulate t pi_vectors =
  if Array.length pi_vectors <> Array.length t.pi_names then
    invalid_arg "Mapped.simulate";
  let values = Array.make (Array.length t.instances) 0L in
  let read = function
    | Of_pi i -> pi_vectors.(i)
    | Of_inst i -> values.(i)
  in
  Array.iteri
    (fun idx inst ->
      let ins = Array.map read inst.fanins in
      values.(idx) <- Cals_cell.Cell.eval64 inst.cell ins)
    t.instances;
  Array.map (fun (_, s) -> read s) t.outputs

let simulate_one t assignment =
  let stimulus = Array.map (fun b -> if b then -1L else 0L) assignment in
  Array.map (fun v -> Int64.logand v 1L <> 0L) (simulate t stimulus)

let sanitize name =
  String.map (fun c -> if c = '[' || c = ']' || c = '.' || c = '-' then '_' else c) name

let to_verilog ?(module_name = "mapped") t =
  Cals_telemetry.Span.with_ ~cat:"netlist"
    ~meta:(Printf.sprintf "%d cells" (Array.length t.instances))
    "netlist.verilog"
  @@ fun () ->
  let buf = Buffer.create 4096 in
  let pin_names = [| "a"; "b"; "c"; "d" |] in
  let wire = function
    | Of_pi i -> sanitize t.pi_names.(i)
    | Of_inst i -> Printf.sprintf "n%d" i
  in
  let pis =
    Array.to_list t.pi_names |> List.map sanitize |> String.concat ", "
  in
  let pos =
    Array.to_list t.outputs |> List.map (fun (n, _) -> sanitize n) |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s%s%s);\n" module_name pis
       (if pis = "" || pos = "" then "" else ", ")
       pos);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (sanitize n)))
    t.pi_names;
  Array.iter
    (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (sanitize n)))
    t.outputs;
  Array.iteri
    (fun idx _ -> Buffer.add_string buf (Printf.sprintf "  wire n%d;\n" idx))
    t.instances;
  Array.iteri
    (fun idx inst ->
      let conns =
        Array.to_list
          (Array.mapi
             (fun pin s -> Printf.sprintf ".%s(%s)" pin_names.(pin) (wire s))
             inst.fanins)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s u%d (%s, .y(n%d));\n" inst.cell.Cals_cell.Cell.name idx
           (String.concat ", " conns) idx))
    t.instances;
  Array.iter
    (fun (n, s) ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" (sanitize n) (wire s)))
    t.outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf
