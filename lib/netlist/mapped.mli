(** Mapped (technology-dependent) netlist: instances of library cells.

    The instance array is topologically ordered; instance fanins reference
    either a primary input or an earlier instance output. Each instance
    carries the seed position produced by the congestion-aware mapper (the
    center of mass of the base gates it covers), which physical design
    legalizes onto rows. *)

type signal =
  | Of_pi of int  (** Index into [pi_names]. *)
  | Of_inst of int  (** Output of instance [i]. *)

type instance = {
  cell : Cals_cell.Cell.t;
  fanins : signal array;  (** Length = cell input count. *)
  seed : Cals_util.Geom.point;
}

type t = private {
  pi_names : string array;
  instances : instance array;
  outputs : (string * signal) array;
}

val make :
  pi_names:string array ->
  instances:instance array ->
  outputs:(string * signal) array ->
  t
(** Validates topological order, signal ranges and fanin arities. *)

(** {1 Metrics} *)

val num_cells : t -> int
val total_area : t -> float

val cell_histogram : t -> (string * int) list
(** Instance count per cell name, sorted by name. *)

val total_sites : t -> int

(** {1 Connectivity} *)

type sink =
  | Cell_pin of int * int  (** Instance index, input-pin index. *)
  | Po of int  (** Index into [outputs]. *)

type net = {
  driver : signal;
  sinks : sink list;
}

val nets : t -> net array
(** One entry per signal: indices [0 .. num_pis-1] are PI nets, then one
    per instance. Nets with no sinks are included (empty sink list). *)

val signal_index : t -> signal -> int
(** Position of a signal's net inside [nets]. *)

(** {1 Simulation} *)

val simulate : t -> int64 array -> int64 array
(** Bit-parallel simulation; stimulus indexed like [pi_names], result like
    [outputs]. Used to verify that mapping preserved the function. *)

val simulate_one : t -> bool array -> bool array
(** Single-assignment simulation (one value per PI) — counterexample
    replay for the verification layer. *)

(** {1 Export} *)

val to_verilog : ?module_name:string -> t -> string
(** Structural Verilog (cells as module instantiations with pins
    [a, b, c, d] and output [y]). *)
