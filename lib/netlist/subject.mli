(** The subject graph: a technology-independent netlist of base gates
    (2-input NANDs and inverters) plus primary inputs and outputs.

    Nodes are integers; the node array is topologically ordered by
    construction (a gate may only reference already-created nodes). The
    builder performs structural hashing so that identical subexpressions
    share one node. *)

type gate =
  | Pi of int  (** Primary input; payload is the index into [pi_names]. *)
  | Inv of int  (** Fanin node id. *)
  | Nand2 of int * int  (** Fanin node ids, stored in canonical order. *)

type t = private {
  gates : gate array;  (** Topologically ordered. *)
  pi_names : string array;
  outputs : (string * int) array;  (** Primary-output name and driver node. *)
}

(** {1 Building} *)

type builder

val builder : unit -> builder

val add_pi : builder -> string -> int
(** New primary input node. Names must be unique. *)

val add_inv : builder -> int -> int
(** Structural-hashed inverter. [add_inv b (add_inv b x) = x] is {e not}
    simplified — double inverters are kept so mapping can choose BUF —
    but two calls with the same fanin return the same node. *)

val add_nand : builder -> int -> int -> int
(** Structural-hashed NAND2; argument order is irrelevant. *)

val add_const : builder -> bool -> int
(** Constants are modelled as a dedicated tied-off input net: [add_const]
    creates (once) a PI named ["__const0"] and returns it or its inverter. *)

val set_output : builder -> string -> int -> unit
val freeze : builder -> t

(** {1 Queries} *)

val num_nodes : t -> int
val num_pis : t -> int

val num_gates : t -> int
(** NAND2 + INV count (the paper's "base gates" metric). *)

val num_nand2 : t -> int
val num_inv : t -> int

val fanouts : t -> int list array
(** [fanouts t].(v) lists the nodes reading [v], in increasing order.
    Primary-output reads are not included; see [output_refs]. *)

val fanout_counts : t -> int array
(** Fanout degree including primary-output reads. *)

val fanins : gate -> int list

val output_refs : t -> int array
(** [output_refs t].(v) = number of primary outputs driven by [v]. *)

(** {1 Simulation} *)

val simulate : t -> int64 array -> int64 array
(** [simulate t pi_vectors] runs 64 test vectors in parallel;
    [pi_vectors] is indexed like [pi_names], the result like [outputs]. *)

val random_vectors : Cals_util.Rng.t -> t -> int64 array
(** Fresh random stimulus for property tests. *)

val simulate_one : t -> bool array -> bool array
(** Single-assignment simulation (one value per PI) — counterexample
    replay for the verification layer. *)
