(** Small filesystem helpers shared by the serve scheduler, the shard
    front-end and the match-cache store (previously private to the
    scheduler). *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents; existing directories are
    fine. Raises [Unix.Unix_error] when a component cannot be created
    (e.g. a parent is a regular file). *)

val sanitize : string -> string
(** Map a job or file identifier to a safe filename component:
    alphanumerics, ['-'], ['_'] and ['.'] pass through, everything else
    becomes ['_']; the empty string becomes ["_"]. *)

val write_file : string -> string -> unit
(** Write a whole file (creating parent directories), truncating any
    previous content. *)

val read_lines : string -> string list
(** All lines of a text file, without terminators. *)

val writable_dir : string -> (unit, string) result
(** Ensure the directory exists (creating it if needed) and prove it is
    writable by creating and removing a probe file. Used to validate
    [--cache-dir] and output directories up front, before any job runs. *)
