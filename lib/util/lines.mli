(** Incremental newline framing for non-blocking byte streams.

    The shard front-end multiplexes worker pipes and client sockets
    through one [select] loop; reads arrive in arbitrary chunks that may
    split a JSON line anywhere. A {!t} buffers the tail between reads and
    hands back only complete lines. *)

type t

val create : unit -> t

val feed : t -> bytes -> int -> string list
(** [feed t buf n] absorbs the first [n] bytes of [buf] and returns the
    complete lines now available, in order, without their terminating
    ['\n'] (a trailing ['\r'] is also stripped, for telnet-style TCP
    clients). Bytes after the last newline stay buffered for the next
    feed. *)

val pending : t -> string
(** The buffered partial line (empty if the stream ended cleanly). *)
