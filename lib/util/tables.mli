(** Plain-text table rendering for bench output and reports, plus small
    summary statistics. The bench harness prints the paper's tables through
    this module so every experiment has a uniform, diffable format. *)

type align = Left | Right

val render : ?title:string -> header:string list -> align list -> string list list -> string
(** [render ~title ~header aligns rows] lays out a boxed text table. The
    [aligns] list gives per-column alignment and must match [header]. *)

val fmt_float : int -> float -> string
(** [fmt_float digits v] fixed-point formatting. *)

val fmt_int : int -> string
(** Decimal with thousands separators, e.g. [126394 -> "126,394"]. *)

(** 64-bit FNV-1a incremental hashing — the fingerprint primitive used by
    caches that key on structural summaries (e.g. the incremental mapper's
    per-tree match cache). Deterministic across runs and domains. *)
module Fnv64 : sig
  val empty : int64
  (** The FNV-1a offset basis. *)

  val int : int64 -> int -> int64
  (** Absorb an integer (all eight little-endian bytes). *)

  val string : int64 -> string -> int64
  (** Absorb every byte of a string. *)
end

val mean : float list -> float
val stddev : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]]; nearest-rank on sorted data. *)
