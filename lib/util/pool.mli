(** Fixed-size fork/join work pool over OCaml 5 domains.

    A pool owns [jobs - 1] worker domains (the caller's domain is the
    remaining worker) fed from a shared task queue. The only scheduling
    primitive is {!map_array}, a deterministic fork/join: tasks are
    claimed by atomic index, every result lands at its own index, and the
    output is therefore independent of which domain ran what.

    Intended for coarse-grained tasks (a full map/place/route evaluation,
    not per-element arithmetic). Not reentrant: do not call {!map_array}
    from inside a task running on the same pool. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. [jobs <= 1]
    yields a pool that runs everything on the caller's domain. *)

val jobs : t -> int
(** Parallelism the pool was created with (always >= 1). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_array : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array pool ~f arr] computes [[| f 0 arr.(0); ... |]], spreading
    the calls over the pool's domains, and returns once every element is
    done. Deterministic: the result array is identical to [Array.mapi f
    arr] whenever [f] is pure. If any call raises, the first exception
    (by completion order) is re-raised in the caller after all domains
    stop claiming work; remaining unclaimed elements are skipped.

    @raise Invalid_argument if the pool has been {!shutdown}: its
    workers are gone, so queued helper tasks would never run and the
    caller would deadlock waiting for them. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. Call when done with the pool;
    a pool left running keeps its domains blocked on the queue. *)
