(** Growable flat integer arena backed by a [Bigarray].

    A bump allocator for variable-length integer records (the router's
    committed edge-id paths): [alloc] hands out a contiguous slice at the
    end, [clear] recycles the whole arena in O(1), and the backing store
    survives between uses, so a long-lived owner (a router session) pays
    for the buffer once instead of re-allocating scratch on every call.
    The Bigarray lives outside the OCaml heap: slices written here are
    invisible to the GC, which is the point — path storage stops being
    minor-heap churn.

    Not domain-safe: one arena belongs to one routing call at a time
    (sessions hand them out through a mutex-guarded pool). *)

type t

type buffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : ?capacity:int -> unit -> t
(** A fresh arena with [capacity] slots reserved (default 1024). *)

val data : t -> buffer
(** The backing store. Only indices below {!used} hold allocated slices.
    Invalidated by any {!alloc} that grows the arena — re-fetch after
    allocating, never cache across calls. *)

val used : t -> int
(** Slots allocated since the last {!clear}. *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] slots and returns the offset of the first;
    grows the backing store (doubling) when needed. *)

val truncate : t -> int -> unit
(** [truncate t off] abandons every slice at or above [off] (which must
    be a value previously returned by {!alloc}, or {!used}). *)

val clear : t -> unit
(** Abandon every slice; capacity is retained. *)

val capacity : t -> int
(** Current slot capacity of the backing store. *)

val capacity_bytes : t -> int
(** Backing-store footprint in bytes. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Move [len] slots from [src] to [dst] within the arena (ranges may
    overlap; copies as [memmove]). Bookkeeping ([used]) is untouched. *)
