exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled reason -> Some (Printf.sprintf "Cancel.Cancelled(%s)" reason)
    | _ -> None)

type t = {
  flag : bool Atomic.t;
  why : string Atomic.t;
  expires : unit -> bool;
  sentinel : bool;  (* [never] must survive a stray [cancel]. *)
}

let never =
  { flag = Atomic.make false; why = Atomic.make ""; sentinel = true;
    expires = (fun () -> false) }

let create ?(expires = fun () -> false) () =
  { flag = Atomic.make false; why = Atomic.make ""; expires; sentinel = false }

(* The first CAS winner records its reason; a racing second firing
   changes nothing. *)
let fire t reason =
  if (not t.sentinel) && Atomic.compare_and_set t.flag false true then
    Atomic.set t.why reason

let cancel ?(reason = "cancelled") t = fire t reason

let fired t =
  Atomic.get t.flag
  || ((not t.sentinel) && t.expires ()
     && begin
          fire t "deadline exceeded";
          true
        end)

let reason t = if Atomic.get t.flag then Atomic.get t.why else ""
let check t = if fired t then raise (Cancelled (Atomic.get t.why))
