(** Listen/connect addresses for the serve fleet.

    A tiny parser over the two socket families the front-end supports,
    plus the listen/connect syscall wrappers, so [bin/cals.ml] and the
    shard front-end share one address grammar:

    - [unix:/path/to.sock] — a Unix-domain socket;
    - [host:port], [:port] or [port] — TCP ([host] defaults to
      127.0.0.1);
    - [tcp:host:port] — explicit TCP.

    Parsing is pure; host resolution happens at {!listen}/{!connect}
    time. *)

type t =
  | Unix_sock of string  (** Filesystem path of a Unix-domain socket. *)
  | Tcp of string * int  (** Host (name or dotted quad) and port. *)

val parse : string -> (t, string) result
(** Parse the grammar above. Errors on an empty address, an empty Unix
    path, a non-numeric or out-of-range port, or an empty host in the
    [tcp:] form. *)

val to_string : t -> string
(** Canonical rendering, accepted back by {!parse}. *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind and listen (default [backlog] 64). A pre-existing socket file
    under a [Unix_sock] address is unlinked first; TCP sockets are bound
    with [SO_REUSEADDR]. Raises [Unix.Unix_error] or [Failure] (host
    resolution) on failure. *)

val connect : t -> Unix.file_descr
(** Connect a fresh socket to the address. Raises like {!listen}. *)
