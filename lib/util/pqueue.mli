(** Mutable binary-heap minimum priority queue with [float] priorities.

    Used by the maze router (Dijkstra wavefront) and the MST net-topology
    builder. Decrease-key is handled by lazy deletion: push the element again
    with the smaller priority and ignore stale pops at the caller.

    Freed heap slots are blanked and {!clear} releases the backing array,
    so the queue never keeps popped or cleared values live. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority value] inserts [value]. Smaller priority pops first. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
(** Empties the queue and releases the backing array, dropping every
    reference the queue held. *)

(** Min-queue specialized to [int] payloads, backed by a flat unboxed
    [float array] of priorities and an [int array] of values. [push] and
    [pop] allocate nothing (amortized: [push] may grow the backing
    arrays), which keeps them out of the maze router's inner loop GC
    traffic. *)
module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val is_empty : t -> bool
  val length : t -> int

  val clear : t -> unit
  (** Constant time; int/float slots cannot pin heap values. *)

  val push : t -> float -> int -> unit

  val min_prio : t -> float
  (** Priority of the minimum element.
      @raise Invalid_argument on an empty queue. *)

  val pop : t -> int
  (** Remove and return the minimum-priority value. Read {!min_prio}
      first if the priority is needed — returning both would allocate.
      @raise Invalid_argument on an empty queue. *)
end
