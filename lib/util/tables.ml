type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?title ~header aligns rows =
  if List.length header <> List.length aligns then invalid_arg "Tables.render";
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let fmt_float digits v = Printf.sprintf "%.*f" digits v

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  let body = Buffer.contents buf in
  if n < 0 then "-" ^ body else body

module Fnv64 = struct
  let empty = 0xcbf29ce484222325L
  let prime = 0x100000001b3L

  let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

  let int h n =
    (* Fold all eight bytes so node ids and small tags both perturb the
       whole state; OCaml ints fit in 63 bits. *)
    let x = Int64.of_int n in
    let h = ref h in
    for i = 0 to 7 do
      h := byte !h (Int64.to_int (Int64.shift_right_logical x (i * 8)))
    done;
    !h

  let string h s =
    let h = ref h in
    String.iter (fun c -> h := byte !h (Char.code c)) s;
    !h
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let percentile p = function
  | [] -> invalid_arg "Tables.percentile: empty"
  | xs ->
    let sorted = List.sort compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = int_of_float (p *. float_of_int (n - 1) +. 0.5) in
    let rank = if rank < 0 then 0 else if rank >= n then n - 1 else rank in
    arr.(rank)
