let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize name =
  let safe = function
    | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.') as c -> c
    | _ -> '_'
  in
  let s = String.map safe name in
  if s = "" then "_" else s

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let writable_dir dir =
  try
    mkdir_p dir;
    if not (Sys.is_directory dir) then
      Error (Printf.sprintf "%s is not a directory" dir)
    else begin
      let probe =
        Filename.concat dir (Printf.sprintf ".probe-%d" (Unix.getpid ()))
      in
      let oc = open_out probe in
      close_out oc;
      Sys.remove probe;
      Ok ()
    end
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))
