type t = Unix_sock of string | Tcp of string * int

let parse_port s =
  match int_of_string_opt s with
  | Some p when p >= 1 && p <= 65535 -> Ok p
  | Some p -> Error (Printf.sprintf "port %d out of range" p)
  | None -> Error (Printf.sprintf "invalid port %S" s)

let parse addr =
  let tcp host port =
    let host = if host = "" then "127.0.0.1" else host in
    Result.map (fun p -> Tcp (host, p)) (parse_port port)
  in
  if addr = "" then Error "empty address"
  else if String.length addr > 5 && String.sub addr 0 5 = "unix:" then begin
    let path = String.sub addr 5 (String.length addr - 5) in
    Ok (Unix_sock path)
  end
  else if addr = "unix:" then Error "empty unix socket path"
  else
    let rest =
      if String.length addr >= 4 && String.sub addr 0 4 = "tcp:" then begin
        String.sub addr 4 (String.length addr - 4)
      end
      else addr
    in
    match String.rindex_opt rest ':' with
    | Some i ->
      tcp (String.sub rest 0 i)
        (String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> tcp "" rest

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      failwith (Printf.sprintf "host %s has no address" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> failwith (Printf.sprintf "unknown host %s" host))

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let domain_of = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 64) t =
  (match t with
  | Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket (domain_of t) Unix.SOCK_STREAM 0 in
  (try
     (match t with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | _ -> ());
     Unix.bind fd (sockaddr_of t);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect t =
  let fd = Unix.socket (domain_of t) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of t)
   with e ->
     Unix.close fd;
     raise e);
  fd
