type buffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable data : buffer;
  mutable used : int;
}

let make_buffer n : buffer =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create ?(capacity = 1024) () =
  { data = make_buffer (max 1 capacity); used = 0 }

let data t = t.data
let used t = t.used
let capacity t = Bigarray.Array1.dim t.data

let capacity_bytes t =
  Bigarray.Array1.dim t.data * (Sys.word_size / 8)

let grow t need =
  let cap = Bigarray.Array1.dim t.data in
  let ncap = ref (max 16 (2 * cap)) in
  while !ncap < need do
    ncap := 2 * !ncap
  done;
  let ndata = make_buffer !ncap in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.data 0 t.used)
    (Bigarray.Array1.sub ndata 0 t.used);
  t.data <- ndata

let alloc t n =
  if n < 0 then invalid_arg "Arena.alloc: negative size";
  let off = t.used in
  if off + n > Bigarray.Array1.dim t.data then grow t (off + n);
  t.used <- off + n;
  off

let truncate t off =
  if off < 0 || off > t.used then invalid_arg "Arena.truncate: bad offset";
  t.used <- off

let clear t = t.used <- 0

let blit t ~src ~dst ~len =
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.data src len)
    (Bigarray.Array1.sub t.data dst len)
