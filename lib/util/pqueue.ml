type 'a entry = { prio : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

(* Well-formed entry used to blank freed slots, so the backing array never
   keeps popped or cleared values live. Its [value] field is never read:
   slots at indices >= size are overwritten before their next read. *)
let dummy_entry () : 'a entry = Obj.magic { prio = nan; value = () }

let create () = { data = [||]; size = 0 }
let is_empty q = q.size = 0
let length q = q.size

let grow q =
  let cap = Array.length q.data in
  if q.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let ndata = Array.make ncap (dummy_entry ()) in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.data.(i).prio < q.data.(parent).prio then begin
      let tmp = q.data.(i) in
      q.data.(i) <- q.data.(parent);
      q.data.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.data.(l).prio < q.data.(!smallest).prio then smallest := l;
  if r < q.size && q.data.(r).prio < q.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = q.data.(i) in
    q.data.(i) <- q.data.(!smallest);
    q.data.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q prio value =
  grow q;
  q.data.(q.size) <- { prio; value };
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      q.data.(q.size) <- dummy_entry ();
      sift_down q 0
    end
    else q.data.(0) <- dummy_entry ();
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let clear q =
  q.data <- [||];
  q.size <- 0

(* ---------------- Unboxed int-payload variant ---------------- *)

module Int = struct
  type t = {
    mutable prio : float array;  (* flat float array: unboxed storage *)
    mutable data : int array;
    mutable size : int;
  }

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    { prio = Array.make capacity 0.0; data = Array.make capacity 0; size = 0 }

  let is_empty q = q.size = 0
  let length q = q.size
  let clear q = q.size <- 0

  let grow q =
    if q.size >= Array.length q.data then begin
      let ncap = max 16 (2 * Array.length q.data) in
      let nprio = Array.make ncap 0.0 and ndata = Array.make ncap 0 in
      Array.blit q.prio 0 nprio 0 q.size;
      Array.blit q.data 0 ndata 0 q.size;
      q.prio <- nprio;
      q.data <- ndata
    end

  let swap q i j =
    let p = q.prio.(i) and d = q.data.(i) in
    q.prio.(i) <- q.prio.(j);
    q.data.(i) <- q.data.(j);
    q.prio.(j) <- p;
    q.data.(j) <- d

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if q.prio.(i) < q.prio.(parent) then begin
        swap q i parent;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < q.size && q.prio.(l) < q.prio.(!smallest) then smallest := l;
    if r < q.size && q.prio.(r) < q.prio.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap q i !smallest;
      sift_down q !smallest
    end

  let push q prio value =
    grow q;
    q.prio.(q.size) <- prio;
    q.data.(q.size) <- value;
    q.size <- q.size + 1;
    sift_up q (q.size - 1)

  let min_prio q =
    if q.size = 0 then invalid_arg "Pqueue.Int.min_prio: empty";
    q.prio.(0)

  let pop q =
    if q.size = 0 then invalid_arg "Pqueue.Int.pop: empty";
    let v = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.prio.(0) <- q.prio.(q.size);
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    v
end
