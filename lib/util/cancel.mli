(** Cooperative cancellation tokens with optional deadlines.

    A token is shared between the party that wants work stopped (a job
    scheduler enforcing a deadline, a user pressing Ctrl-C) and the code
    doing the work. The work side calls {!check} at its natural safe
    points — once per K point in the flow loop, once per rip-up
    iteration and rerouted segment in the router — and unwinds with
    {!Cancelled} when the token has fired. Cancellation is therefore
    only as prompt as the checks are frequent: a single uninterruptible
    stage (one covering DP, one maze search) always runs to completion.

    Deadlines are expressed as an [expires] closure rather than a clock
    reading so this module stays dependency-free: the caller supplies
    [fun () -> Unix.gettimeofday () > t_deadline] (or any other
    predicate) and the token latches the first time it observes it
    true. All operations are domain-safe: the fired flag is an atomic,
    so one domain may {!cancel} a token while worker domains {!check}
    it. *)

type t

exception Cancelled of string
(** Raised by {!check} on a fired token; carries {!reason}. A printer
    is registered, so an uncaught cancellation prints legibly. *)

val never : t
(** The no-op token: never fires. The default for every [?cancel]
    parameter in the tree, so un-parameterized callers pay one atomic
    load per check and nothing else. *)

val create : ?expires:(unit -> bool) -> unit -> t
(** A fresh token. [expires] (default [fun () -> false]) is polled by
    {!fired} / {!check}; the first [true] latches the token with reason
    ["deadline exceeded"], after which the closure is no longer
    consulted. *)

val cancel : ?reason:string -> t -> unit
(** Fire the token explicitly (default reason ["cancelled"]). The first
    call wins; later calls and a later deadline expiry do not change
    the recorded reason. Never raises — {!never} ignores it. *)

val fired : t -> bool
(** Whether the token has fired (explicitly or by deadline), latching
    the deadline if it just expired. *)

val check : t -> unit
(** @raise Cancelled when {!fired}. *)

val reason : t -> string
(** Why the token fired; [""] while it has not. *)
