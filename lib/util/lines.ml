type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 256 }

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed t bytes n =
  Buffer.add_subbytes t.buf bytes 0 n;
  let s = Buffer.contents t.buf in
  let rec split acc start =
    match String.index_from_opt s start '\n' with
    | Some i -> split (strip_cr (String.sub s start (i - start)) :: acc) (i + 1)
    | None ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s start (String.length s - start);
      List.rev acc
  in
  split [] 0

let pending t = Buffer.contents t.buf
