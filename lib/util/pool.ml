type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable joined : bool;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

(* Workers block on the queue until shutdown; tasks never raise (map_array
   wraps user code), so a worker only exits via [closed]. *)
let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.work_ready pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      next ()
    end
  in
  next ()

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      joined = false;
    }
  in
  pool.workers <-
    Array.init (jobs - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown t =
  if not t.joined then begin
    t.joined <- true;
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

let map_array t ~f arr =
  (* After shutdown no worker remains to pop helper closures, so the
     caller would block forever on [pending]; refuse instead. *)
  if t.joined then invalid_arg "Pool.map_array: pool is shut down";
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    (* Claim indices until the array (or an error) exhausts them; each
       result is written at its claimed index, so the output does not
       depend on the domain-to-index assignment. *)
    let rec sweep () =
      if Atomic.get error = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try results.(i) <- Some (f i arr.(i))
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
          sweep ()
        end
      end
    in
    let helpers = min (t.jobs - 1) (n - 1) in
    let pending = ref helpers in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let helper () =
      sweep ();
      Mutex.lock done_mutex;
      decr pending;
      if !pending = 0 then Condition.signal done_cond;
      Mutex.unlock done_mutex
    in
    Mutex.lock t.mutex;
    for _ = 1 to helpers do
      Queue.push helper t.queue
    done;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    sweep ();
    Mutex.lock done_mutex;
    while !pending > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function Some v -> v | None -> invalid_arg "Pool.map_array: hole")
        results
  end
