module Rng = Cals_util.Rng
module Metrics = Cals_telemetry.Metrics

let log_src = Logs.Src.create "cals.fuzz" ~doc:"Shrinking flow fuzzer"

module Log = (val Logs.src_log log_src)

let m_iterations =
  Metrics.counter ~help:"Fuzz workloads checked" "verify_fuzz_iterations"

let m_failures =
  Metrics.counter ~help:"Fuzz workloads that failed a check" "verify_fuzz_failures"

let m_shrink_steps =
  Metrics.counter ~help:"Accepted fuzz shrink steps" "verify_fuzz_shrink_steps"

type family =
  | Pla
  | Multilevel

type params = {
  seed : int;
  family : family;
  inputs : int;
  outputs : int;
  size : int;
}

type failure = {
  params : params;
  stage : string;
  detail : string;
  shrink_steps : int;
}

type outcome = {
  iterations : int;
  failure : failure option;
}

let family_to_string = function Pla -> "pla" | Multilevel -> "multilevel"

let family_of_string = function
  | "pla" -> Pla
  | "multilevel" -> Multilevel
  | s -> failwith (Printf.sprintf "Fuzz: unknown family %S" s)

let params_to_string p =
  Printf.sprintf "%s seed=%d inputs=%d outputs=%d size=%d"
    (family_to_string p.family) p.seed p.inputs p.outputs p.size

(* Parameter-space floors; shrinking never goes below these (Gen rejects
   degenerate sizes, and a 4-input circuit is still a readable repro). *)
let min_inputs = 4
let min_outputs = 2
let min_size = 4

let sample rng =
  let family = if Rng.bool rng then Pla else Multilevel in
  {
    seed = Rng.int rng 1_000_000;
    family;
    inputs = Rng.range rng min_inputs 12;
    outputs = Rng.range rng min_outputs 10;
    size =
      (match family with
      | Pla -> Rng.range rng 12 80
      | Multilevel -> Rng.range rng 10 50);
  }

(* Shrink candidates, most aggressive first: halve each dimension toward
   its floor, then decrement. The seed is never shrunk — it is what makes
   the workload reproducible. *)
let candidates p =
  let clamp lo v = max lo v in
  List.filter
    (fun c -> c <> p)
    [
      { p with inputs = clamp min_inputs (p.inputs / 2) };
      { p with outputs = clamp min_outputs (p.outputs / 2) };
      { p with size = clamp min_size (p.size / 2) };
      { p with inputs = clamp min_inputs (p.inputs - 1) };
      { p with outputs = clamp min_outputs (p.outputs - 1) };
      { p with size = clamp min_size (p.size - 1) };
    ]

let shrink ~check ~budget p0 stage0 detail0 =
  let steps = ref 0 and calls = ref 0 in
  let rec go p stage detail =
    let rec try_candidates = function
      | [] -> { params = p; stage; detail; shrink_steps = !steps }
      | c :: rest ->
        if !calls >= budget then { params = p; stage; detail; shrink_steps = !steps }
        else begin
          incr calls;
          match check c with
          | Ok () -> try_candidates rest
          | Error (stage', detail') ->
            incr steps;
            Metrics.incr m_shrink_steps;
            Log.info (fun m ->
                m "shrunk to %s (step %d)" (params_to_string c) !steps);
            go c stage' detail'
        end
    in
    try_candidates (candidates p)
  in
  go p0 stage0 detail0

let write_reproducer ~path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  Printf.fprintf oc "# cals fuzz reproducer — replay with: cals fuzz --replay %s\n" path;
  Printf.fprintf oc "stage: %s\n" f.stage;
  Printf.fprintf oc "detail: %s\n" (String.map (function '\n' -> ' ' | c -> c) f.detail);
  Printf.fprintf oc "shrink-steps: %d\n" f.shrink_steps;
  Printf.fprintf oc "family: %s\n" (family_to_string f.params.family);
  Printf.fprintf oc "seed: %d\n" f.params.seed;
  Printf.fprintf oc "inputs: %d\n" f.params.inputs;
  Printf.fprintf oc "outputs: %d\n" f.params.outputs;
  Printf.fprintf oc "size: %d\n" f.params.size

let run ?(iterations = 25) ?(seed = 0) ?reproducer_path ~check () =
  let rng = Rng.create seed in
  let rec loop i =
    if i > iterations then { iterations; failure = None }
    else begin
      let p = sample rng in
      Metrics.incr m_iterations;
      Log.info (fun m -> m "iteration %d/%d: %s" i iterations (params_to_string p));
      match check p with
      | Ok () -> loop (i + 1)
      | Error (stage, detail) ->
        Metrics.incr m_failures;
        Log.warn (fun m ->
            m "iteration %d failed [%s]: %s — shrinking" i stage detail);
        let failure = shrink ~check ~budget:200 p stage detail in
        Option.iter (fun path -> write_reproducer ~path failure) reproducer_path;
        { iterations = i; failure = Some failure }
    end
  in
  loop 1

let read_reproducer path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let fields = Hashtbl.create 8 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ':' with
         | Some i ->
           let key = String.trim (String.sub line 0 i) in
           let value =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           Hashtbl.replace fields key value
         | None -> ()
     done
   with End_of_file -> ());
  let get key =
    match Hashtbl.find_opt fields key with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Fuzz: reproducer %s lacks %S" path key)
  in
  let int_of key =
    match int_of_string_opt (get key) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Fuzz: reproducer %s: bad %S" path key)
  in
  {
    seed = int_of "seed";
    family = family_of_string (get "family");
    inputs = int_of "inputs";
    outputs = int_of "outputs";
    size = int_of "size";
  }
