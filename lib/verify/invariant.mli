(** Structural invariant checkers for physical-design stages.

    Each checker re-derives a stage's claimed properties from first
    principles — row geometry for placement, the routing grid for routing —
    and returns a diagnosis naming the first offending cell, net or edge.
    They are pure observers: nothing in the checked structures is
    mutated. *)

val check_placement :
  floorplan:Cals_place.Floorplan.t ->
  Cals_netlist.Mapped.t ->
  Cals_place.Placement.mapped_placement ->
  (unit, string) result
(** Legalized-placement invariants:
    - one position per instance (and per PI / PO pad),
    - every cell center sits on a row center and on the site grid,
    - every cell lies fully inside the core,
    - cells sharing a row do not overlap,
    - the recorded [row_fill] frontier equals the re-derived last occupied
      site of each row. *)

val check_routing :
  ?usage:bool -> Cals_route.Router.result -> (unit, string) result
(** Routed-result invariants:
    - every route's edges are legal grid edges,
    - every segment's path connects its two endpoint gcells,
    - for every net, all its pin gcells are connected by the union of its
      segments' paths,
    - with [usage] (default [true]): per-edge usage re-derived from the
      routes matches the grid's usage arrays exactly, and the derived
      totals (overflow, violations, per-net and total wirelength) match
      the figures in the result record. *)
