module Rng = Cals_util.Rng
module Network = Cals_logic.Network
module Subject = Cals_netlist.Subject
module Mapped = Cals_netlist.Mapped

type side = {
  label : string;
  pi_names : string array;
  output_names : string array;
  simulate : int64 array -> int64 array;
}

(* The subject builder models constants as a tied-off PI named __const0;
   the network side has no such input. Hide it from the oracle's visible
   PI list and pin it to 0 in every simulation, so a decomposed subject
   (and the netlists mapped from it) compare against the network it came
   from. *)
let const_pi = "__const0"

let hide_const pi_names simulate =
  if not (Array.exists (String.equal const_pi) pi_names) then
    (pi_names, simulate)
  else begin
    let visible =
      Array.of_list
        (List.filter
           (fun n -> not (String.equal n const_pi))
           (Array.to_list pi_names))
    in
    let n = Array.length pi_names in
    let sim stimulus =
      let full = Array.make n 0L in
      let j = ref 0 in
      for i = 0 to n - 1 do
        if not (String.equal pi_names.(i) const_pi) then begin
          full.(i) <- stimulus.(!j);
          incr j
        end
      done;
      simulate full
    in
    (visible, sim)
  end

let of_network ?(label = "network") net =
  {
    label;
    pi_names = Network.pi_names net;
    output_names = Array.map fst (Network.outputs net);
    simulate = (fun stimulus -> Network.simulate net stimulus);
  }

let of_subject ?(label = "subject") subject =
  let pi_names, simulate =
    hide_const subject.Subject.pi_names (fun stimulus ->
        Subject.simulate subject stimulus)
  in
  {
    label;
    pi_names;
    output_names = Array.map fst subject.Subject.outputs;
    simulate;
  }

let of_mapped ?(label = "mapped") mapped =
  let pi_names, simulate =
    hide_const mapped.Mapped.pi_names (fun stimulus ->
        Mapped.simulate mapped stimulus)
  in
  {
    label;
    pi_names;
    output_names = Array.map fst mapped.Mapped.outputs;
    simulate;
  }

type counterexample = {
  output : string;
  expected : bool;
  got : bool;
  pis : string array;
  assignment : bool array;
  relevant : bool array;
  round : int;
}

let num_relevant cex =
  Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 cex.relevant

let counterexample_to_string cex =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "output %s: expected %d, got %d under " cex.output
       (Bool.to_int cex.expected) (Bool.to_int cex.got));
  let any = ref false in
  Array.iteri
    (fun i name ->
      if cex.relevant.(i) then begin
        if !any then Buffer.add_char buf ' ';
        any := true;
        Buffer.add_string buf
          (Printf.sprintf "%s=%d" name (Bool.to_int cex.assignment.(i)))
      end)
    cex.pis;
  if not !any then Buffer.add_string buf "any assignment";
  Buffer.add_string buf
    (Printf.sprintf " (%d/%d PIs relevant, round %d)" (num_relevant cex)
       (Array.length cex.pis) cex.round);
  Buffer.contents buf

let same_names kind a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> String.equal x y) a b
  ||
  invalid_arg
    (Printf.sprintf "Equiv.check: sides disagree on %s names (%d vs %d)" kind
       (Array.length a) (Array.length b))

(* Single-assignment evaluation by broadcasting the boolean to all 64
   lanes; any lane (we read bit 0) carries the answer. *)
let broadcast assignment =
  Array.map (fun b -> if b then -1L else 0L) assignment

(* Index of the first output differing under [assignment], or -1. *)
let first_diff a b assignment =
  let stimulus = broadcast assignment in
  let oa = a.simulate stimulus and ob = b.simulate stimulus in
  let n = Array.length oa in
  let rec go i =
    if i >= n then -1
    else if Int64.logand (Int64.logxor oa.(i) ob.(i)) 1L <> 0L then i
    else go (i + 1)
  in
  go 0

(* Greedy PI-assignment shrinking: a PI whose flip leaves the miter
   failing is irrelevant; pin it to false (false is known to fail: it is
   either the current value or the flip we just tested). The invariant
   that [assignment] fails is maintained at every step. *)
let shrink a b assignment =
  let n = Array.length assignment in
  let relevant = Array.make n true in
  for i = 0 to n - 1 do
    let saved = assignment.(i) in
    assignment.(i) <- not saved;
    if first_diff a b assignment >= 0 then begin
      relevant.(i) <- false;
      assignment.(i) <- false
    end
    else assignment.(i) <- saved
  done;
  relevant

let check ?(rounds = 8) ~rng a b =
  ignore (same_names "PI" a.pi_names b.pi_names : bool);
  ignore (same_names "output" a.output_names b.output_names : bool);
  let n_pis = Array.length a.pi_names in
  let rec run round =
    if round > rounds then Ok ()
    else begin
      let stimulus = Array.init n_pis (fun _ -> Rng.bits64 rng) in
      let oa = a.simulate stimulus and ob = b.simulate stimulus in
      let mismatch = ref None in
      Array.iteri
        (fun o va ->
          if !mismatch = None && va <> ob.(o) then
            let bit = Int64.logxor va ob.(o) in
            let rec lowest i =
              if Int64.logand (Int64.shift_right_logical bit i) 1L <> 0L then i
              else lowest (i + 1)
            in
            mismatch := Some (o, lowest 0))
        oa;
      match !mismatch with
      | None -> run (round + 1)
      | Some (_, bit) ->
        let assignment =
          Array.map
            (fun v -> Int64.logand (Int64.shift_right_logical v bit) 1L <> 0L)
            stimulus
        in
        let relevant = shrink a b assignment in
        (* The shrunk assignment still fails; re-derive the differing
           output so the report matches the canonicalized vector. *)
        let o = first_diff a b assignment in
        assert (o >= 0);
        let stim = broadcast assignment in
        let va = Int64.logand (a.simulate stim).(o) 1L <> 0L in
        let vb = Int64.logand (b.simulate stim).(o) 1L <> 0L in
        Error
          {
            output = a.output_names.(o);
            expected = va;
            got = vb;
            pis = Array.copy a.pi_names;
            assignment;
            relevant;
            round;
          }
    end
  in
  run 1

let check_exn ?rounds ~rng ~stage a b =
  match check ?rounds ~rng a b with
  | Ok () -> Check.pass ~stage
  | Error cex ->
    Check.fail ~stage
      (Printf.sprintf "%s vs %s: %s" a.label b.label
         (counterexample_to_string cex))
