(** Miter-style combinational equivalence oracle.

    The flow's argument (and the paper's) is that only the {e cost} of the
    netlist changes with K — the function must survive optimization,
    decomposition and mapping untouched. This module checks that claim at
    any stage boundary by simulating both representations on shared random
    stimulus, 64 vectors at a time, and — on a mismatch — extracting one
    failing primary-input assignment and greedily shrinking it to the
    essential inputs.

    A {!side} is any representation reduced to its simulation semantics, so
    the same oracle compares network vs network, network vs subject graph,
    or subject graph vs mapped netlist. *)

type side = {
  label : string;  (** For messages: ["network"], ["mapped@K=0.01"], ... *)
  pi_names : string array;
  output_names : string array;
  simulate : int64 array -> int64 array;
      (** Bit-parallel over 64 vectors; stimulus indexed like [pi_names],
          result like [output_names]. *)
}

val of_network : ?label:string -> Cals_logic.Network.t -> side
val of_subject : ?label:string -> Cals_netlist.Subject.t -> side
val of_mapped : ?label:string -> Cals_netlist.Mapped.t -> side

type counterexample = {
  output : string;  (** First differing primary output. *)
  expected : bool;  (** The first side's value under [assignment]. *)
  got : bool;  (** The second side's value. *)
  pis : string array;
  assignment : bool array;
      (** One value per PI; irrelevant PIs are canonicalized to [false]. *)
  relevant : bool array;
      (** [relevant.(i)] iff flipping PI [i] alone makes the two sides
          agree again — the shrunk core of the counterexample. *)
  round : int;  (** 1-based simulation round that exposed the mismatch. *)
}

val num_relevant : counterexample -> int

val counterexample_to_string : counterexample -> string
(** One line: the differing output, both values, and the essential PI
    assignments only. *)

val check :
  ?rounds:int ->
  rng:Cals_util.Rng.t ->
  side ->
  side ->
  (unit, counterexample) result
(** [check ~rounds ~rng a b] runs [rounds] (default 8) rounds of 64 shared
    random vectors. On the first differing output bit it rebuilds the
    single failing assignment and shrinks it: each PI is flipped in turn
    and, when the mismatch survives both values, pinned to [false] and
    marked irrelevant.

    @raise Invalid_argument when the two sides disagree on PI or output
    names (a structural, not functional, mismatch). *)

val check_exn : ?rounds:int -> rng:Cals_util.Rng.t -> stage:string -> side -> side -> unit
(** {!check} wired into {!Check}: records a pass or raises
    {!Check.Violation} with the rendered counterexample. *)
