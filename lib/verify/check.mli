(** Verification policy shared by every checker in the flow.

    The flow's checks knob selects how much of the verification layer runs:

    - {b Off}: no checks — the shipped default; the flow behaves exactly as
      before this library existed.
    - {b Cheap}: structural invariants on every evaluated K point (cover
      legality, placement legality, routed-net connectivity) plus an
      equivalence spot-check of the {e accepted} mapped netlist.
    - {b Full}: everything in Cheap, plus per-edge routing-usage
      re-derivation and an equivalence check of {e every} K point's mapped
      netlist against the subject graph, with more simulation rounds.

    Every checker reports through {!pass} / {!fail} / {!record}, which bump
    per-stage pass/fail counters in {!Cals_telemetry.Metrics} so that
    verification cost and outcomes are observable alongside the rest of the
    flow's telemetry. *)

type level =
  | Off
  | Cheap
  | Full

val level_of_string : string -> (level, string) result
(** Accepts ["off"], ["cheap"], ["full"] (case-insensitive). *)

val level_to_string : level -> string

val rounds : level -> int
(** Random-simulation rounds (64 vectors each) the equivalence oracle runs
    at this level: 0 / 2 / 8. *)

exception Violation of { stage : string; detail : string }
(** Raised by {!fail}; carries the checker stage (["cover"], ["place"],
    ["route"], ["equiv"], ...) and a human-readable diagnosis. A printer is
    registered, so an uncaught violation prints legibly. *)

val pass : stage:string -> unit
(** Record a successful check for [stage]. *)

val fail : stage:string -> string -> 'a
(** Record a failed check for [stage] and raise {!Violation}. *)

val record : stage:string -> (unit, string) result -> unit
(** [record ~stage r] is {!pass} on [Ok] and {!fail} on [Error]. *)
