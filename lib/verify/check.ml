module Metrics = Cals_telemetry.Metrics

type level =
  | Off
  | Cheap
  | Full

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Ok Off
  | "cheap" -> Ok Cheap
  | "full" -> Ok Full
  | other -> Error (Printf.sprintf "unknown check level %S (off|cheap|full)" other)

let level_to_string = function Off -> "off" | Cheap -> "cheap" | Full -> "full"
let rounds = function Off -> 0 | Cheap -> 2 | Full -> 8

exception Violation of { stage : string; detail : string }

let () =
  Printexc.register_printer (function
    | Violation { stage; detail } ->
      Some (Printf.sprintf "verification failed [%s]: %s" stage detail)
    | _ -> None)

(* Counters are registered once at module initialization (the registry is
   not written to from worker domains); [tally] only touches the lock-free
   atomics, so checkers may run on any domain. *)
let stage_counters stage =
  ( Metrics.counter
      ~help:(Printf.sprintf "Verification checks passed at stage %s" stage)
      (Printf.sprintf "verify_%s_pass" stage),
    Metrics.counter
      ~help:(Printf.sprintf "Verification checks failed at stage %s" stage)
      (Printf.sprintf "verify_%s_fail" stage) )

let c_cover = stage_counters "cover"
let c_place = stage_counters "place"
let c_route = stage_counters "route"
let c_equiv = stage_counters "equiv"
let c_other = stage_counters "other"

let tally stage ok =
  let p, f =
    match stage with
    | "cover" -> c_cover
    | "place" -> c_place
    | "route" -> c_route
    | "equiv" -> c_equiv
    | _ -> c_other
  in
  Metrics.incr (if ok then p else f)

let pass ~stage = tally stage true

let fail ~stage detail =
  tally stage false;
  raise (Violation { stage; detail })

let record ~stage = function
  | Ok () -> pass ~stage
  | Error detail -> fail ~stage detail
