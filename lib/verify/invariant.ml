module Geom = Cals_util.Geom
module Union_find = Cals_util.Union_find
module Floorplan = Cals_place.Floorplan
module Placement = Cals_place.Placement
module Mapped = Cals_netlist.Mapped
module Router = Cals_route.Router
module Rgrid = Cals_route.Rgrid
module Cell = Cals_cell.Cell

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ---------------- Placement ---------------- *)

let check_placement ~floorplan mapped (pl : Placement.mapped_placement) =
  let fp = floorplan in
  let instances = mapped.Mapped.instances in
  let n = Array.length instances in
  let* () =
    if Array.length pl.Placement.cell_pos <> n then
      errf "placement has %d cell positions for %d instances"
        (Array.length pl.Placement.cell_pos) n
    else if Array.length pl.Placement.pi_pos <> Array.length mapped.Mapped.pi_names
    then errf "placement PI pad count mismatch"
    else if Array.length pl.Placement.po_pos <> Array.length mapped.Mapped.outputs
    then errf "placement PO pad count mismatch"
    else if Array.length pl.Placement.row_fill <> fp.Floorplan.num_rows then
      errf "row_fill has %d entries for %d rows"
        (Array.length pl.Placement.row_fill) fp.Floorplan.num_rows
    else Ok ()
  in
  let site = fp.Floorplan.site_width in
  (* Site intervals per row, re-derived from cell centers. *)
  let rows : (int * int * int) list array = Array.make fp.Floorplan.num_rows [] in
  let rec place i =
    if i >= n then Ok ()
    else begin
      let p = pl.Placement.cell_pos.(i) in
      let w = instances.(i).Mapped.cell.Cell.width_sites in
      match Floorplan.row_of_y fp p.Geom.y with
      | None -> errf "cell %d center y=%.4f um is on no row" i p.Geom.y
      | Some r ->
        let start_f = (p.Geom.x /. site) -. (float_of_int w /. 2.0) in
        let start = int_of_float (Float.round start_f) in
        if abs_float (start_f -. float_of_int start) > 1e-4 then
          errf "cell %d is off the site grid (x=%.4f um)" i p.Geom.x
        else if start < 0 || start + w > fp.Floorplan.sites_per_row then
          errf "cell %d spills out of its row (sites %d..%d of %d)" i start
            (start + w) fp.Floorplan.sites_per_row
        else begin
          rows.(r) <- (start, start + w, i) :: rows.(r);
          place (i + 1)
        end
    end
  in
  let* () = place 0 in
  let rec check_rows r =
    if r >= fp.Floorplan.num_rows then Ok ()
    else begin
      let cells =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) rows.(r)
      in
      let rec scan frontier = function
        | [] ->
          if pl.Placement.row_fill.(r) <> frontier then
            errf "row %d: recorded fill %d sites, re-derived %d" r
              pl.Placement.row_fill.(r) frontier
          else check_rows (r + 1)
        | (start, stop, i) :: rest ->
          if start < frontier then
            errf "cell %d overlaps its left neighbour in row %d (site %d < %d)"
              i r start frontier
          else scan stop rest
      in
      scan 0 cells
    end
  in
  check_rows 0

(* ---------------- Routing ---------------- *)

(* Gcells incident to an edge, as flat node ids; Error for edges outside
   the grid (the accessors would raise, which we want to diagnose). *)
let edge_nodes cols rows = function
  | Rgrid.H (c, r) ->
    if c < 0 || c >= cols - 1 || r < 0 || r >= rows then None
    else Some ((r * cols) + c, (r * cols) + c + 1)
  | Rgrid.V (c, r) ->
    if c < 0 || c >= cols || r < 0 || r >= rows - 1 then None
    else Some ((r * cols) + c, ((r + 1) * cols) + c)

let edge_to_string = function
  | Rgrid.H (c, r) -> Printf.sprintf "H(%d,%d)" c r
  | Rgrid.V (c, r) -> Printf.sprintf "V(%d,%d)" c r

let check_routing ?(usage = true) (res : Router.result) =
  let grid = res.Router.grid in
  let cols = grid.Rgrid.cols and rows = grid.Rgrid.rows in
  let node (c, r) = (r * cols) + c in
  let num_nets = res.Router.num_nets in
  let* () =
    if Array.length res.Router.net_gcells <> num_nets then
      errf "net_gcells has %d entries for %d nets"
        (Array.length res.Router.net_gcells)
        num_nets
    else if Array.length res.Router.net_length_um <> num_nets then
      errf "net_length_um has %d entries for %d nets"
        (Array.length res.Router.net_length_um)
        num_nets
    else Ok ()
  in
  (* Per-net segment lists, preserving the route order. *)
  let by_net = Array.make num_nets [] in
  let rec bucket i =
    if i >= Array.length res.Router.routes then Ok ()
    else begin
      let rt = res.Router.routes.(i) in
      if rt.Router.net < 0 || rt.Router.net >= num_nets then
        errf "route %d references net %d of %d" i rt.Router.net num_nets
      else begin
        by_net.(rt.Router.net) <- rt :: by_net.(rt.Router.net);
        bucket (i + 1)
      end
    end
  in
  let* () = bucket 0 in
  let check_net net =
    let segments = List.rev by_net.(net) in
    let pins = res.Router.net_gcells.(net) in
    match (segments, pins) with
    | [], ([] | [ _ ]) -> Ok ()
    | _ ->
      let uf = Union_find.create (cols * rows) in
      let rec link_segments = function
        | [] -> Ok ()
        | rt :: rest ->
          let src, dst = rt.Router.gends in
          let rec link_edges = function
            | [] ->
              if src <> dst && rt.Router.edges = [] then
                errf "net %d: segment (%d,%d)-(%d,%d) has no path" net
                  (fst src) (snd src) (fst dst) (snd dst)
              else if not (Union_find.same uf (node src) (node dst)) then
                errf "net %d: segment (%d,%d)-(%d,%d) path does not connect \
                      its endpoints"
                  net (fst src) (snd src) (fst dst) (snd dst)
              else link_segments rest
            | e :: es -> (
              match edge_nodes cols rows e with
              | None ->
                errf "net %d: edge %s outside the %dx%d grid" net
                  (edge_to_string e) cols rows
              | Some (a, b) ->
                ignore (Union_find.union uf a b : bool);
                link_edges es)
          in
          link_edges rt.Router.edges
      in
      let* () = link_segments segments in
      (* Every pin gcell of the net must land in one component. *)
      let rec link_pins anchor = function
        | [] -> Ok ()
        | g :: rest ->
          if not (Union_find.same uf (node anchor) (node g)) then
            errf "net %d: pin gcell (%d,%d) is not connected to (%d,%d)" net
              (fst g) (snd g) (fst anchor) (snd anchor)
          else link_pins anchor rest
      in
      (match pins with [] -> Ok () | anchor :: rest -> link_pins anchor rest)
  in
  let rec all_nets net =
    if net >= num_nets then Ok ()
    else
      let* () = check_net net in
      all_nets (net + 1)
  in
  let* () = all_nets 0 in
  if not usage then Ok ()
  else begin
    (* Re-derive per-edge usage and per-net lengths from the routes alone
       and compare with what the router accumulated incrementally. *)
    let husage = Array.make (Array.length grid.Rgrid.husage) 0.0 in
    let vusage = Array.make (Array.length grid.Rgrid.vusage) 0.0 in
    let net_length = Array.make num_nets 0.0 in
    Array.iter
      (fun rt ->
        List.iter
          (fun e ->
            (match e with
            | Rgrid.H (c, r) ->
              husage.((r * (cols - 1)) + c) <- husage.((r * (cols - 1)) + c) +. 1.0
            | Rgrid.V (c, r) ->
              vusage.((r * cols) + c) <- vusage.((r * cols) + c) +. 1.0);
            net_length.(rt.Router.net) <-
              net_length.(rt.Router.net) +. grid.Rgrid.gcell_um)
          rt.Router.edges)
      res.Router.routes;
    let eps = 1e-6 in
    let mismatch kind i expected actual =
      errf "%s usage mismatch on edge %d: grid has %.3f, routes re-derive %.3f"
        kind i actual expected
    in
    let rec cmp kind derived actual i =
      if i >= Array.length derived then Ok ()
      else if abs_float (derived.(i) -. actual.(i)) > eps then
        mismatch kind i derived.(i) actual.(i)
      else cmp kind derived actual (i + 1)
    in
    let* () = cmp "horizontal" husage grid.Rgrid.husage 0 in
    let* () = cmp "vertical" vusage grid.Rgrid.vusage 0 in
    let rec cmp_len net =
      if net >= num_nets then Ok ()
      else if
        abs_float (net_length.(net) -. res.Router.net_length_um.(net))
        > eps *. (1.0 +. abs_float net_length.(net))
      then
        errf "net %d: recorded length %.3f um, routes re-derive %.3f um" net
          res.Router.net_length_um.(net) net_length.(net)
      else cmp_len (net + 1)
    in
    let* () = cmp_len 0 in
    let wirelength = Array.fold_left ( +. ) 0.0 net_length in
    let* () =
      if
        abs_float (wirelength -. res.Router.wirelength_um)
        > eps *. (1.0 +. abs_float wirelength)
      then
        errf "total wirelength %.3f um does not match re-derived %.3f um"
          res.Router.wirelength_um wirelength
      else Ok ()
    in
    let overflow = Rgrid.total_overflow grid in
    if abs_float (overflow -. res.Router.total_overflow) > eps then
      errf "reported overflow %.3f does not match the grid's %.3f"
        res.Router.total_overflow overflow
    else if res.Router.violations <> int_of_float (ceil overflow) then
      errf "reported violations %d do not match ceil(overflow) = %d"
        res.Router.violations
        (int_of_float (ceil overflow))
    else Ok ()
  end
