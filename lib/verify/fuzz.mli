(** Shrinking fuzz harness for the whole synthesis flow.

    The harness owns the search: it samples random workload parameters,
    hands each {!params} record to a caller-supplied [check] callback (which
    builds the circuit, runs the flow with checks on, and reports the first
    failing stage), and — when a workload fails — greedily shrinks the
    parameters toward the smallest circuit that still fails, writing a
    reproducer file to disk.

    Keeping the callback abstract keeps this module free of a dependency on
    the flow driver (which itself depends on this library's checkers); the
    canonical callback is [Cals_core.Harness.check_params]. *)

type family =
  | Pla  (** {!Cals_workload.Gen.pla}-shaped two-level logic. *)
  | Multilevel  (** {!Cals_workload.Gen.multilevel} random control logic. *)

type params = {
  seed : int;  (** Seed for the workload's own generator. *)
  family : family;
  inputs : int;
  outputs : int;
  size : int;  (** Product-pool size (Pla) or internal nodes (Multilevel). *)
}

type failure = {
  params : params;  (** Fully shrunk. *)
  stage : string;
  detail : string;
  shrink_steps : int;  (** Accepted shrink steps from the original params. *)
}

type outcome = {
  iterations : int;  (** Workloads checked before stopping. *)
  failure : failure option;
}

val params_to_string : params -> string
(** One line, e.g. ["pla seed=77 inputs=8 outputs=4 size=24"]. *)

val run :
  ?iterations:int ->
  ?seed:int ->
  ?reproducer_path:string ->
  check:(params -> (unit, string * string) result) ->
  unit ->
  outcome
(** [run ~iterations ~seed ~check ()] samples [iterations] (default 25)
    workloads from the harness RNG seeded with [seed] (default 0) and stops
    at the first failure, shrinking it and — when [reproducer_path] is
    given — writing the reproducer there. [check] returns
    [Error (stage, detail)] for a failing workload; exceptions escaping
    [check] abort the harness (wrap them in the callback). *)

val write_reproducer : path:string -> failure -> unit

val read_reproducer : string -> params
(** Parse a reproducer file back into its parameters.
    @raise Failure on a malformed file. *)
