type counter = { c_name : string; c_help : string; cell : int Atomic.t }
type gauge = { g_name : string; g_help : string; value : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;
  buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  total : int Atomic.t;
  sum : float Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry_mutex = Mutex.create ()
let registry : instrument list ref = ref []  (* reverse registration order *)

let instrument_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let register name make =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match List.find_opt (fun i -> instrument_name i = name) !registry with
  | Some existing -> existing
  | None ->
    let i = make () in
    registry := i :: !registry;
    i

let counter ?(help = "") name =
  match
    register name (fun () ->
        Counter { c_name = name; c_help = help; cell = Atomic.make 0 })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg ("Metrics.counter: " ^ name ^ " registered as another kind")

let gauge ?(help = "") name =
  match
    register name (fun () ->
        Gauge { g_name = name; g_help = help; value = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg ("Metrics.gauge: " ^ name ^ " registered as another kind")

let histogram ?(help = "") ~buckets name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && buckets.(i - 1) >= b then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be non-empty and increasing";
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            h_help = help;
            bounds = Array.copy buckets;
            buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            total = Atomic.make 0;
            sum = Atomic.make 0.0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg ("Metrics.histogram: " ^ name ^ " registered as another kind")

let add c n = if Probe.enabled () then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let set g v = if Probe.enabled () then Atomic.set g.value v

let rec atomic_add_float cell d =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. d)) then
    atomic_add_float cell d

let observe h v =
  if Probe.enabled () then begin
    let n = Array.length h.bounds in
    let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add h.buckets.(bucket 0) 1);
    ignore (Atomic.fetch_and_add h.total 1);
    atomic_add_float h.sum v
  end

type counter_value = { c_name : string; c_help : string; c_value : int }
type gauge_value = { g_name : string; g_help : string; g_value : float }

type histogram_value = {
  h_name : string;
  h_help : string;
  h_bounds : float array;
  h_counts : int array;
  h_count : int;
  h_sum : float;
}

type snapshot = {
  counters : counter_value list;
  gauges : gauge_value list;
  histograms : histogram_value list;
}

let snapshot () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  let ordered = List.rev !registry in
  {
    counters =
      List.filter_map
        (function
          | Counter c ->
            Some
              {
                c_name = c.c_name;
                c_help = c.c_help;
                c_value = Atomic.get c.cell;
              }
          | Gauge _ | Histogram _ -> None)
        ordered;
    gauges =
      List.filter_map
        (function
          | Gauge g ->
            Some
              {
                g_name = g.g_name;
                g_help = g.g_help;
                g_value = Atomic.get g.value;
              }
          | Counter _ | Histogram _ -> None)
        ordered;
    histograms =
      List.filter_map
        (function
          | Histogram h ->
            Some
              {
                h_name = h.h_name;
                h_help = h.h_help;
                h_bounds = Array.copy h.bounds;
                h_counts = Array.map Atomic.get h.buckets;
                h_count = Atomic.get h.total;
                h_sum = Atomic.get h.sum;
              }
          | Counter _ | Gauge _ -> None)
        ordered;
  }

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  List.iter
    (function
      | Counter c -> Atomic.set c.cell 0
      | Gauge g -> Atomic.set g.value 0.0
      | Histogram h ->
        Array.iter (fun b -> Atomic.set b 0) h.buckets;
        Atomic.set h.total 0;
        Atomic.set h.sum 0.0)
    !registry
