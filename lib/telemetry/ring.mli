(** Per-domain event ring buffers.

    Each domain that records a span owns one fixed-capacity buffer,
    created lazily through domain-local storage, so the recording path
    takes no lock and shares no cache line with other domains. Buffers
    register themselves in a global list at creation (the only locked
    operation, once per domain), which is how {!collect} later merges
    events from worker domains that may already have exited — e.g.
    spans emitted inside [Cals_util.Pool.map_array] tasks.

    {!collect} and {!clear} must only run while no other domain is
    recording (after the fork/join parallel section has joined); the
    per-domain buffers are not synchronized beyond that contract. *)

type event = {
  name : string;
  cat : string;  (** Pipeline stage family, e.g. ["map"], ["route"]. *)
  meta : string;  (** Freeform detail, e.g. ["K=0.001"]; [""] if none. *)
  ts_us : float;  (** Start, microseconds since the trace origin. *)
  dur_us : float;
  tid : int;  (** Id of the domain that ran the span. *)
  seq : int;  (** Per-domain completion order (0, 1, ...). *)
}

val capacity : int
(** Events kept per domain (65536). When a buffer is full further
    events are counted in {!dropped} and discarded. *)

val record :
  name:string -> cat:string -> meta:string -> ts_us:float -> dur_us:float ->
  unit
(** Append a completed span to the calling domain's buffer. *)

val collect : unit -> event list
(** Merge every domain's buffer into one deterministic order: by start
    time, then domain id, then per-domain sequence number. Call only
    from a quiescent point (no concurrent recorder). *)

val dropped : unit -> int
(** Total events discarded across all buffers since the last {!clear}. *)

val clear : unit -> unit
(** Empty every buffer and reset drop counts (buffers stay registered). *)
