(** Exporters over collected spans and metrics.

    Three formats: Chrome [trace_event] JSON (open in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}), a Prometheus-style text
    dump of the metric registry, and an ASCII per-stage summary table
    rendered through [Cals_util.Tables]. All of them read the current
    buffers without consuming them; call from a quiescent point. *)

type span_stat = {
  s_name : string;
  s_cat : string;
  s_count : int;
  s_total_us : float;
  s_mean_us : float;
  s_max_us : float;
}

val span_stats : unit -> span_stat list
(** Spans aggregated by name, ordered by first occurrence in the
    merged (deterministic) event order. *)

val chrome_trace : unit -> string
(** The full trace as a JSON object with a [traceEvents] array of
    complete ("ph":"X") events; [tid] is the recording domain's id. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] writes {!chrome_trace} to [path]. *)

val prometheus : unit -> string
(** Text exposition of every counter, gauge and histogram, with a
    [cals_] name prefix ([_total] on counters, [_bucket]/[_sum]/[_count]
    on histograms). *)

val summary : unit -> string
(** Per-stage wall-clock table (count, total, mean, max per span name)
    followed by a table of non-zero counters and gauges. *)
