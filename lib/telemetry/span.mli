(** Nestable timed regions.

    A span measures one region of one domain's execution. Spans nest:
    each domain keeps a stack of open spans, and closing a span records
    a completed event (name, start, duration) into that domain's ring
    buffer ({!Ring}). Opening and closing is domain-local — safe inside
    [Cals_util.Pool.map_array] tasks with no locks taken.

    When telemetry is disabled ({!Probe.enabled}[ = false]) every entry
    point reduces to that single flag check; {!enter} then returns a
    dead token that {!exit} ignores, so a probe that straddles an
    enable/disable transition can never corrupt the stack. *)

type token
(** Proof that {!enter} ran; consumed by {!exit}. *)

val enter : ?cat:string -> ?meta:string -> string -> token
(** [enter name] opens a span. [cat] groups related spans in exporters
    (defaults to ["cals"]); [meta] is freeform detail shown as trace
    args, e.g. ["K=0.001"]. *)

val exit : token -> unit
(** Close the span opened by the matching {!enter}, recording it. If
    inner spans are still open (an exception unwound past them) they
    are discarded rather than misattributed. *)

val with_ : ?cat:string -> ?meta:string -> string -> (unit -> 'a) -> 'a
(** [with_ name f] = enter, run [f], exit — exception-safe. *)
