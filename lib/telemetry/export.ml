module Tables = Cals_util.Tables

type span_stat = {
  s_name : string;
  s_cat : string;
  s_count : int;
  s_total_us : float;
  s_mean_us : float;
  s_max_us : float;
}

let span_stats () =
  let events = Ring.collect () in
  let order = ref [] in
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun (e : Ring.event) ->
      match Hashtbl.find_opt by_name e.Ring.name with
      | None ->
        order := e.Ring.name :: !order;
        Hashtbl.add by_name e.Ring.name
          (ref (e.Ring.cat, 1, e.Ring.dur_us, e.Ring.dur_us))
      | Some acc ->
        let cat, n, total, mx = !acc in
        acc := (cat, n + 1, total +. e.Ring.dur_us, max mx e.Ring.dur_us))
    events;
  List.rev_map
    (fun name ->
      let cat, n, total, mx = !(Hashtbl.find by_name name) in
      {
        s_name = name;
        s_cat = cat;
        s_count = n;
        s_total_us = total;
        s_mean_us = total /. float_of_int n;
        s_max_us = mx;
      })
    !order

(* ---------------- Chrome trace_event JSON ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace () =
  let events = Ring.collect () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (e : Ring.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.Ring.name) (json_escape e.Ring.cat) e.Ring.ts_us
           e.Ring.dur_us e.Ring.tid);
      if e.Ring.meta <> "" then
        Buffer.add_string buf
          (Printf.sprintf ",\"args\":{\"detail\":\"%s\"}"
             (json_escape e.Ring.meta));
      Buffer.add_char buf '}')
    events;
  Buffer.add_string buf
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":%d}\n"
       (Ring.dropped ()));
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (chrome_trace ())

(* ---------------- Prometheus text exposition ---------------- *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus () =
  let snap = Metrics.snapshot () in
  let buf = Buffer.create 1024 in
  let header name kind help =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (c : Metrics.counter_value) ->
      let name = "cals_" ^ c.Metrics.c_name ^ "_total" in
      header name "counter" c.Metrics.c_help;
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name c.Metrics.c_value))
    snap.Metrics.counters;
  List.iter
    (fun (g : Metrics.gauge_value) ->
      let name = "cals_" ^ g.Metrics.g_name in
      header name "gauge" g.Metrics.g_help;
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" name (fmt_value g.Metrics.g_value)))
    snap.Metrics.gauges;
  List.iter
    (fun (h : Metrics.histogram_value) ->
      let name = "cals_" ^ h.Metrics.h_name in
      header name "histogram" h.Metrics.h_help;
      let cumulative = ref 0 in
      Array.iteri
        (fun i n ->
          cumulative := !cumulative + n;
          let le =
            if i < Array.length h.Metrics.h_bounds then
              fmt_value h.Metrics.h_bounds.(i)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le !cumulative))
        h.Metrics.h_counts;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name (fmt_value h.Metrics.h_sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name h.Metrics.h_count))
    snap.Metrics.histograms;
  Buffer.contents buf

(* ---------------- ASCII summary ---------------- *)

let summary () =
  let buf = Buffer.create 1024 in
  (match span_stats () with
  | [] -> Buffer.add_string buf "no spans recorded\n"
  | stats ->
    let rows =
      List.map
        (fun s ->
          [
            s.s_name;
            s.s_cat;
            string_of_int s.s_count;
            Tables.fmt_float 3 (s.s_total_us /. 1e3);
            Tables.fmt_float 3 (s.s_mean_us /. 1e3);
            Tables.fmt_float 3 (s.s_max_us /. 1e3);
          ])
        stats
    in
    Buffer.add_string buf
      (Tables.render ~title:"Telemetry: per-stage spans"
         ~header:[ "Span"; "Cat"; "Count"; "Total ms"; "Mean ms"; "Max ms" ]
         [ Tables.Left; Tables.Left; Tables.Right; Tables.Right; Tables.Right;
           Tables.Right ]
         rows));
  let snap = Metrics.snapshot () in
  let counter_rows =
    List.filter_map
      (fun (c : Metrics.counter_value) ->
        if c.Metrics.c_value = 0 then None
        else Some [ c.Metrics.c_name; Tables.fmt_int c.Metrics.c_value ])
      snap.Metrics.counters
  in
  let gauge_rows =
    List.filter_map
      (fun (g : Metrics.gauge_value) ->
        if g.Metrics.g_value = 0.0 then None
        else Some [ g.Metrics.g_name; fmt_value g.Metrics.g_value ])
      snap.Metrics.gauges
  in
  (match counter_rows @ gauge_rows with
  | [] -> ()
  | rows ->
    Buffer.add_string buf
      (Tables.render ~title:"Telemetry: counters and gauges"
         ~header:[ "Metric"; "Value" ]
         [ Tables.Left; Tables.Right ]
         rows));
  Buffer.contents buf
