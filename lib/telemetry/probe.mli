(** Global telemetry switch.

    Every probe in the tree — span enter/exit, counter increments,
    histogram observations — starts with a branch on one {!Atomic.t}
    read through {!enabled}. While the switch is off that branch is the
    *entire* cost of instrumentation, so probes can stay in hot paths
    permanently (the bench harness verifies <= 1% overhead on the
    maze router with telemetry disabled). *)

val enabled : unit -> bool
(** One [Atomic.get]; safe to call from any domain at any rate. *)

val enable : unit -> unit
(** Turn collection on. The first call (re)sets the trace time origin,
    so span timestamps are relative to the moment telemetry started. *)

val disable : unit -> unit
(** Turn collection off. Buffered events and metric values survive and
    can still be exported; they just stop growing. *)

val now_us : unit -> float
(** Microseconds since {!enable} (wall clock). Meaningful only while a
    trace origin exists; returns an absolute epoch value otherwise. *)
