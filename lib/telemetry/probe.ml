let flag = Atomic.make false
let origin_us = Atomic.make 0.0

let enabled () = Atomic.get flag

let enable () =
  if not (Atomic.get flag) then begin
    Atomic.set origin_us (Unix.gettimeofday () *. 1e6);
    Atomic.set flag true
  end

let disable () = Atomic.set flag false
let now_us () = (Unix.gettimeofday () *. 1e6) -. Atomic.get origin_us
