(** Counters, gauges and fixed-bucket histograms.

    Instruments register themselves once (typically at module
    initialization) in a global registry keyed by name; registration is
    idempotent, so two modules asking for the same name share the
    instrument. Updates are lock-free atomics and, like spans, start
    with the {!Probe.enabled} branch — a disabled probe costs one load.

    Hot loops should accumulate locally and publish once per coarse
    operation (e.g. one {!add} per maze-route call, not per pop), which
    keeps atomic contention negligible even with many worker domains. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
(** Monotonically increasing integer. Idempotent by name.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : ?help:string -> string -> gauge
(** Last-write-wins float value. *)

val histogram : ?help:string -> buckets:float array -> string -> histogram
(** Fixed cumulative bucket upper bounds, strictly increasing; an
    implicit [+Inf] bucket is appended. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

type counter_value = { c_name : string; c_help : string; c_value : int }
type gauge_value = { g_name : string; g_help : string; g_value : float }

type histogram_value = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (** Upper bounds, without the +Inf bucket. *)
  h_counts : int array;  (** Per-bucket counts, length [bounds + 1]. *)
  h_count : int;
  h_sum : float;
}

type snapshot = {
  counters : counter_value list;
  gauges : gauge_value list;
  histograms : histogram_value list;
}

val snapshot : unit -> snapshot
(** Registration-order listing of every instrument's current value. *)

val reset : unit -> unit
(** Zero every instrument (instruments stay registered). *)
