type frame = {
  mutable name : string;
  mutable cat : string;
  mutable meta : string;
  mutable start_us : float;
}

type stack = { mutable frames : frame array; mutable depth : int }

let new_frame () = { name = ""; cat = ""; meta = ""; start_us = 0.0 }

let key =
  Domain.DLS.new_key (fun () ->
      { frames = Array.init 16 (fun _ -> new_frame ()); depth = 0 })

(* A token is the stack depth at entry, or -1 when the probe was
   disabled at entry: exit on a dead token is a no-op, so spans that
   straddle an enable/disable flip unwind cleanly. *)
type token = int

let disabled_token = -1

let enter ?(cat = "cals") ?(meta = "") name =
  if not (Probe.enabled ()) then disabled_token
  else begin
    let s = Domain.DLS.get key in
    let d = s.depth in
    if d >= Array.length s.frames then begin
      let bigger = Array.init (2 * d) (fun _ -> new_frame ()) in
      Array.blit s.frames 0 bigger 0 d;
      s.frames <- bigger
    end;
    let f = s.frames.(d) in
    f.name <- name;
    f.cat <- cat;
    f.meta <- meta;
    f.start_us <- Probe.now_us ();
    s.depth <- d + 1;
    d
  end

let exit token =
  if token >= 0 then begin
    let s = Domain.DLS.get key in
    (* Anything still open above [token] was abandoned by an exception;
       drop it so those frames cannot leak into a later span. *)
    if s.depth > token then begin
      let f = s.frames.(token) in
      s.depth <- token;
      Ring.record ~name:f.name ~cat:f.cat ~meta:f.meta ~ts_us:f.start_us
        ~dur_us:(Probe.now_us () -. f.start_us)
    end
  end

let with_ ?cat ?meta name f =
  let token = enter ?cat ?meta name in
  match f () with
  | v ->
    exit token;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    exit token;
    Printexc.raise_with_backtrace e bt
