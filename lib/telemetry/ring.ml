type event = {
  name : string;
  cat : string;
  meta : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  seq : int;
}

let capacity = 65536

type buffer = {
  tid : int;
  events : event array;
  mutable len : int;
  mutable dropped : int;
  mutable seq : int;
}

let dummy_event =
  { name = ""; cat = ""; meta = ""; ts_us = 0.0; dur_us = 0.0; tid = 0; seq = 0 }

(* All buffers ever created, so collect sees events from worker domains
   even after those domains exit. Locked only at buffer creation and
   during collect/clear — never on the recording path. *)
let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          events = Array.make capacity dummy_event;
          len = 0;
          dropped = 0;
          seq = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let record ~name ~cat ~meta ~ts_us ~dur_us =
  let b = Domain.DLS.get key in
  if b.len >= capacity then b.dropped <- b.dropped + 1
  else begin
    b.events.(b.len) <-
      { name; cat; meta; ts_us; dur_us; tid = b.tid; seq = b.seq };
    b.len <- b.len + 1;
    b.seq <- b.seq + 1
  end

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  f !registry

let collect () =
  let all =
    with_registry (fun buffers ->
        List.concat_map
          (fun b -> Array.to_list (Array.sub b.events 0 b.len))
          buffers)
  in
  List.sort
    (fun a b ->
      match compare a.ts_us b.ts_us with
      | 0 -> (
        match compare a.tid b.tid with 0 -> compare a.seq b.seq | c -> c)
      | c -> c)
    all

let dropped () =
  with_registry (fun buffers ->
      List.fold_left (fun acc b -> acc + b.dropped) 0 buffers)

let clear () =
  with_registry (fun buffers ->
      List.iter
        (fun b ->
          b.len <- 0;
          b.dropped <- 0;
          b.seq <- 0)
        buffers)
