module Geom = Cals_util.Geom
module Mapped = Cals_netlist.Mapped
module Cell = Cals_cell.Cell
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let m_analyses = Metrics.counter ~help:"Full STA analyses run" "sta_analyses"

let m_endpoints =
  Metrics.counter ~help:"Timing endpoints propagated" "sta_endpoints"

type config = {
  input_drive_kohm : float;
  output_load_pf : float;
}

let default_config = { input_drive_kohm = 1.0; output_load_pf = 0.01 }

type endpoint = {
  po : string;
  through_pi : string;
  arrival_ns : float;
}

type report = {
  endpoints : endpoint array;
  critical : endpoint;
  critical_path : (string * float) list;
  total_net_cap_pf : float;
}

(* Per-net electrical view shared by both entry points. *)
type net_info = {
  driver_pos : Geom.point;
  length_um : float;
  load_pf : float;  (** Wire cap + sum of sink pin caps. *)
}

let sink_cap mapped = function
  | Mapped.Cell_pin (i, _) ->
    mapped.Mapped.instances.(i).Mapped.cell.Cell.input_cap_pf
  | Mapped.Po _ -> 0.0

let signal_pos mapped (placement : Cals_place.Placement.mapped_placement) = function
  | Mapped.Of_pi i -> placement.Cals_place.Placement.pi_pos.(i)
  | Mapped.Of_inst i ->
    ignore mapped;
    placement.Cals_place.Placement.cell_pos.(i)

let sink_pos (placement : Cals_place.Placement.mapped_placement) = function
  | Mapped.Cell_pin (i, _) -> placement.Cals_place.Placement.cell_pos.(i)
  | Mapped.Po oi -> placement.Cals_place.Placement.po_pos.(oi)

let build_net_infos cfg ?net_length_um mapped ~wire ~placement =
  let nets = Mapped.nets mapped in
  let infos =
    Array.mapi
      (fun ni net ->
        let driver_pos = signal_pos mapped placement net.Mapped.driver in
        let length =
          match net_length_um with
          | Some lengths when ni < Array.length lengths && lengths.(ni) > 0.0 ->
            lengths.(ni)
          | Some _ | None ->
            (* HPWL of the placed net. *)
            let box =
              List.fold_left
                (fun b s -> Geom.bbox_add b (sink_pos placement s))
                (Geom.bbox_add Geom.bbox_empty driver_pos)
                net.Mapped.sinks
            in
            if net.Mapped.sinks = [] then 0.0 else Geom.half_perimeter box
        in
        let pin_caps =
          List.fold_left (fun acc s -> acc +. sink_cap mapped s) 0.0 net.Mapped.sinks
        in
        let po_loads =
          List.fold_left
            (fun acc s ->
              match s with
              | Mapped.Po _ -> acc +. cfg.output_load_pf
              | Mapped.Cell_pin _ -> acc)
            0.0 net.Mapped.sinks
        in
        let wire_cap = length *. wire.Cals_cell.Library.cap_pf_per_um in
        { driver_pos; length_um = length; load_pf = wire_cap +. pin_caps +. po_loads })
      nets
  in
  (nets, infos)

(* Elmore wire delay from a net's driver to one sink. *)
let wire_delay cfg wire (info : net_info) ~sink_pos:sp ~sink_cap:sc =
  ignore cfg;
  let d = Geom.manhattan info.driver_pos sp in
  (* Use the net length to scale distributed cap seen along the branch. *)
  let r = d *. wire.Cals_cell.Library.res_kohm_per_um in
  let c_branch = d *. wire.Cals_cell.Library.cap_pf_per_um in
  r *. ((c_branch /. 2.0) +. sc)

(* Forward propagation. [pi_arrival] gives each PI's start time, or None to
   exclude that PI (used by the single-path query). Returns per-instance
   output arrivals, each PO's arrival, and the latest-fanin trace. *)
let propagate cfg ?net_length_um mapped ~wire ~placement ~pi_arrival =
  let nets, infos = build_net_infos cfg ?net_length_um mapped ~wire ~placement in
  ignore nets;
  let n_inst = Array.length mapped.Mapped.instances in
  let inst_arrival = Array.make n_inst neg_infinity in
  let best_fanin = Array.make n_inst (-1) in
  (* Arrival of a signal at its driver output. *)
  let signal_arrival = function
    | Mapped.Of_pi i -> (
      match pi_arrival i with
      | None -> neg_infinity
      | Some t ->
        (* Pad driver delay into the PI net. *)
        let info = infos.(Mapped.signal_index mapped (Mapped.Of_pi i)) in
        t +. (cfg.input_drive_kohm *. info.load_pf))
    | Mapped.Of_inst i -> inst_arrival.(i)
  in
  Array.iteri
    (fun idx inst ->
      let cell = inst.Mapped.cell in
      let my_pos = placement.Cals_place.Placement.cell_pos.(idx) in
      let latest = ref neg_infinity and latest_pin = ref (-1) in
      Array.iteri
        (fun pin s ->
          let t0 = signal_arrival s in
          if t0 > neg_infinity then begin
            let info = infos.(Mapped.signal_index mapped s) in
            let wd =
              wire_delay cfg wire info ~sink_pos:my_pos
                ~sink_cap:cell.Cell.input_cap_pf
            in
            let t = t0 +. wd in
            if t > !latest then begin
              latest := t;
              latest_pin := pin
            end
          end)
        inst.Mapped.fanins;
      if !latest > neg_infinity then begin
        let my_net = infos.(Mapped.signal_index mapped (Mapped.Of_inst idx)) in
        inst_arrival.(idx) <-
          !latest +. Cell.delay_ns cell ~load_pf:my_net.load_pf;
        best_fanin.(idx) <- !latest_pin
      end)
    mapped.Mapped.instances;
  let po_arrival =
    Array.map
      (fun (_, s) ->
        let t0 = signal_arrival s in
        if t0 = neg_infinity then neg_infinity
        else
          let info = infos.(Mapped.signal_index mapped s) in
          let oi =
            (* Find this PO's pad position for the final wire hop. *)
            s
          in
          ignore oi;
          t0 +. (info.length_um *. wire.Cals_cell.Library.res_kohm_per_um
                 *. cfg.output_load_pf))
      mapped.Mapped.outputs
  in
  (inst_arrival, best_fanin, po_arrival, infos)

(* Walk the latest-fanin trace back from a signal to a PI. *)
let trace_start mapped best_fanin s =
  let rec go = function
    | Mapped.Of_pi i -> mapped.Mapped.pi_names.(i)
    | Mapped.Of_inst i ->
      let pin = best_fanin.(i) in
      if pin < 0 then "?"
      else go mapped.Mapped.instances.(i).Mapped.fanins.(pin)
  in
  go s

let analyze ?(config = default_config) ?net_length_um mapped ~wire ~placement =
  Span.with_ ~cat:"sta"
    ~meta:(Printf.sprintf "%d cells" (Array.length mapped.Mapped.instances))
    "sta.analyze"
  @@ fun () ->
  Metrics.incr m_analyses;
  Metrics.add m_endpoints (Array.length mapped.Mapped.outputs);
  let inst_arrival, best_fanin, po_arrival, infos =
    propagate config ?net_length_um mapped ~wire ~placement ~pi_arrival:(fun _ ->
        Some 0.0)
  in
  let endpoints =
    Array.mapi
      (fun oi (name, s) ->
        {
          po = name;
          through_pi = trace_start mapped best_fanin s;
          arrival_ns = po_arrival.(oi);
        })
      mapped.Mapped.outputs
  in
  let critical =
    Array.fold_left
      (fun best e ->
        match best with
        | Some b when b.arrival_ns >= e.arrival_ns -> best
        | Some _ | None -> Some e)
      None endpoints
    |> function
    | Some e -> e
    | None -> { po = "-"; through_pi = "-"; arrival_ns = 0.0 }
  in
  (* Critical-path trace as (label, arrival) pairs. *)
  let critical_path =
    let _, s =
      Array.to_list mapped.Mapped.outputs
      |> List.find (fun (name, _) -> name = critical.po)
    in
    let rec walk s acc =
      match s with
      | Mapped.Of_pi i -> (mapped.Mapped.pi_names.(i) ^ " (in)", 0.0) :: acc
      | Mapped.Of_inst i ->
        let inst = mapped.Mapped.instances.(i) in
        let label = Printf.sprintf "%s u%d" inst.Mapped.cell.Cell.name i in
        let acc = (label, inst_arrival.(i)) :: acc in
        let pin = best_fanin.(i) in
        if pin < 0 then acc else walk inst.Mapped.fanins.(pin) acc
    in
    walk s [ (critical.po ^ " (out)", critical.arrival_ns) ]
  in
  let total_net_cap =
    Array.fold_left (fun acc info -> acc +. info.load_pf) 0.0 infos
  in
  { endpoints; critical; critical_path; total_net_cap_pf = total_net_cap }

let po_arrival_from_pi ?(config = default_config) ?net_length_um mapped ~wire
    ~placement ~pi ~po =
  let pi_idx = ref (-1) in
  Array.iteri (fun i n -> if n = pi then pi_idx := i) mapped.Mapped.pi_names;
  if !pi_idx < 0 then None
  else begin
    let _, _, po_arrival, _ =
      propagate config ?net_length_um mapped ~wire ~placement ~pi_arrival:(fun i ->
          if i = !pi_idx then Some 0.0 else None)
    in
    let result = ref None in
    Array.iteri
      (fun oi (name, _) ->
        if name = po && po_arrival.(oi) > neg_infinity then
          result := Some po_arrival.(oi))
      mapped.Mapped.outputs;
    !result
  end

let endpoint_to_string e =
  Printf.sprintf "%s (in)  %s (out)  %.2f" e.through_pi e.po e.arrival_ns
