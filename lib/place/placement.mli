(** Placement orchestration for the two netlist flavours the flow places.

    - the technology-independent subject graph is placed once per circuit
      (the paper's companion placement; positions feed the mapper's wire
      cost), and
    - each mapped netlist is legalized from the mapper's center-of-mass
      seeds (the incremental-placement aspect of the methodology), with a
      from-scratch global placement available for comparison. *)

type mapped_placement = {
  cell_pos : Cals_util.Geom.point array;  (** Per instance. *)
  pi_pos : Cals_util.Geom.point array;  (** Pad per primary input. *)
  po_pos : Cals_util.Geom.point array;  (** Pad per primary output. *)
  hpwl : float;  (** Half-perimeter wirelength, µm. *)
  row_fill : int array;  (** Occupied sites per row. *)
}

val place_subject :
  Cals_netlist.Subject.t ->
  floorplan:Floorplan.t ->
  rng:Cals_util.Rng.t ->
  Cals_util.Geom.point array
(** Companion placement: a position for every subject node (PIs at pads,
    gates by recursive bisection). Continuous coordinates — base gates are
    abstract and uniform, as in the paper. *)

val place_mapped_seeded :
  Cals_netlist.Mapped.t -> floorplan:Floorplan.t -> mapped_placement
(** Legalize the mapper's seed positions onto rows. Raises
    {!Legalize.Overflow} when the netlist does not fit. *)

val place_mapped_global :
  Cals_netlist.Mapped.t ->
  floorplan:Floorplan.t ->
  rng:Cals_util.Rng.t ->
  mapped_placement
(** Full recursive-bisection placement ignoring seeds (ablation and the
    from-scratch "SIS" flow). *)

val mapped_hpwl :
  Cals_netlist.Mapped.t -> floorplan:Floorplan.t -> cell_pos:Cals_util.Geom.point array -> float
(** HPWL of a mapped netlist under arbitrary cell positions. *)
