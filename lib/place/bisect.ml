module Geom = Cals_util.Geom
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

let leaf_size = 4

let m_regions =
  Metrics.counter ~help:"Bisection regions partitioned" "bisect_regions"

let place (hg : Hypergraph.t) ~floorplan ~rng =
  Span.with_ ~cat:"place"
    ~meta:(Printf.sprintf "%d nodes" (Hypergraph.num_nodes hg))
    "place.bisect"
  @@ fun () ->
  let n = Hypergraph.num_nodes hg in
  let pos = Array.make n (Geom.point 0.0 0.0) in
  let center =
    Geom.point (floorplan.Floorplan.die_width /. 2.0)
      (floorplan.Floorplan.die_height /. 2.0)
  in
  Array.iteri
    (fun i f -> pos.(i) <- (match f with Some p -> p | None -> center))
    hg.Hypergraph.fixed;
  (* Spread the nodes of a leaf region on a local grid. *)
  let distribute nodes (box : Geom.bbox) =
    match nodes with
    | [] -> ()
    | _ ->
      let k = List.length nodes in
      let cols = int_of_float (ceil (sqrt (float_of_int k))) in
      let rows = (k + cols - 1) / cols in
      let w = (box.Geom.hx -. box.Geom.lx) /. float_of_int cols in
      let h = (box.Geom.hy -. box.Geom.ly) /. float_of_int rows in
      List.iteri
        (fun i v ->
          let c = i mod cols and r = i / cols in
          pos.(v) <-
            Geom.point
              (box.Geom.lx +. ((float_of_int c +. 0.5) *. w))
              (box.Geom.ly +. ((float_of_int r +. 0.5) *. h)))
        nodes
  in
  let in_region = Array.make n false in
  (* [nets] passed down: ids of hypergraph nets with >= 1 pin in region. *)
  let rec split nodes net_ids (box : Geom.bbox) depth =
    if List.length nodes <= leaf_size || depth > 40 then distribute nodes box
    else begin
      Metrics.incr m_regions;
      let vertical_cut = box.Geom.hx -. box.Geom.lx >= box.Geom.hy -. box.Geom.ly in
      let mid =
        if vertical_cut then (box.Geom.lx +. box.Geom.hx) /. 2.0
        else (box.Geom.ly +. box.Geom.hy) /. 2.0
      in
      List.iter (fun v -> in_region.(v) <- true) nodes;
      (* Local ids: region nodes then two anchors. *)
      let node_arr = Array.of_list nodes in
      let local_of = Hashtbl.create (Array.length node_arr) in
      Array.iteri (fun li v -> Hashtbl.add local_of v li) node_arr;
      let k = Array.length node_arr in
      let anchor0 = k and anchor1 = k + 1 in
      let local_nets = ref [] in
      let surviving = ref [] in
      List.iter
        (fun ni ->
          let net = hg.Hypergraph.nets.(ni) in
          let locals = ref [] and ext0 = ref false and ext1 = ref false in
          Array.iter
            (fun v ->
              if in_region.(v) then locals := Hashtbl.find local_of v :: !locals
              else begin
                let coord =
                  if vertical_cut then pos.(v).Geom.x else pos.(v).Geom.y
                in
                if coord <= mid then ext0 := true else ext1 := true
              end)
            net;
          match !locals with
          | [] -> ()
          | locals_list ->
            surviving := ni :: !surviving;
            let pins = locals_list in
            let pins = if !ext0 then anchor0 :: pins else pins in
            let pins = if !ext1 then anchor1 :: pins else pins in
            if List.length pins >= 2 then
              local_nets := Array.of_list pins :: !local_nets)
        net_ids;
      let weights = Array.make (k + 2) 0 in
      Array.iteri
        (fun li v -> weights.(li) <- max 1 hg.Hypergraph.weights.(v))
        node_arr;
      let locked = Array.make (k + 2) None in
      locked.(anchor0) <- Some 0;
      locked.(anchor1) <- Some 1;
      let problem =
        { Fm.weights; nets = Array.of_list !local_nets; locked }
      in
      let side = Fm.bipartition ~rng problem in
      List.iter (fun v -> in_region.(v) <- false) nodes;
      (* Cut position proportional to the side weights. *)
      let w0 = ref 0 and w1 = ref 0 in
      Array.iteri
        (fun li v ->
          ignore v;
          if side.(li) = 0 then w0 := !w0 + weights.(li) else w1 := !w1 + weights.(li))
        node_arr;
      let frac =
        let total = !w0 + !w1 in
        if total = 0 then 0.5 else float_of_int !w0 /. float_of_int total
      in
      let frac = Geom.clamp 0.1 0.9 frac in
      let box0, box1 =
        if vertical_cut then begin
          let cut = box.Geom.lx +. (frac *. (box.Geom.hx -. box.Geom.lx)) in
          ( { box with Geom.hx = cut }, { box with Geom.lx = cut } )
        end
        else begin
          let cut = box.Geom.ly +. (frac *. (box.Geom.hy -. box.Geom.ly)) in
          ( { box with Geom.hy = cut }, { box with Geom.ly = cut } )
        end
      in
      let nodes0 = ref [] and nodes1 = ref [] in
      Array.iteri
        (fun li v ->
          if side.(li) = 0 then nodes0 := v :: !nodes0 else nodes1 := v :: !nodes1)
        node_arr;
      (* Update positions to sub-region centers for terminal propagation
         deeper in the recursion. *)
      let c0 =
        Geom.point ((box0.Geom.lx +. box0.Geom.hx) /. 2.0)
          ((box0.Geom.ly +. box0.Geom.hy) /. 2.0)
      and c1 =
        Geom.point ((box1.Geom.lx +. box1.Geom.hx) /. 2.0)
          ((box1.Geom.ly +. box1.Geom.hy) /. 2.0)
      in
      List.iter (fun v -> pos.(v) <- c0) !nodes0;
      List.iter (fun v -> pos.(v) <- c1) !nodes1;
      split !nodes0 !surviving box0 (depth + 1);
      split !nodes1 !surviving box1 (depth + 1)
    end
  in
  let movables = ref [] in
  for i = n - 1 downto 0 do
    if hg.Hypergraph.fixed.(i) = None then movables := i :: !movables
  done;
  let all_nets = List.init (Array.length hg.Hypergraph.nets) (fun i -> i) in
  let die_box =
    {
      Geom.lx = 0.0;
      ly = 0.0;
      hx = floorplan.Floorplan.die_width;
      hy = floorplan.Floorplan.die_height;
    }
  in
  split !movables all_nets die_box 0;
  pos
