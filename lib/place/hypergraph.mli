(** Placement hypergraph: movable cells, fixed terminals (pads), nets.

    Built either from the technology-independent subject graph (the paper's
    companion placement of base gates, all of comparable size) or from a
    mapped netlist (cells with real widths). *)

type t = {
  weights : int array;  (** Width in sites per node. *)
  fixed : Cals_util.Geom.point option array;  (** [Some p]: pad at [p]. *)
  nets : int array array;  (** Each net lists its node ids (>= 2 pins). *)
}

val num_nodes : t -> int
(** Movable and fixed nodes together. *)

val num_movable : t -> int
(** Nodes without a fixed pad position. *)

val of_subject :
  Cals_netlist.Subject.t ->
  floorplan:Floorplan.t ->
  t * int array
(** Nodes [0 .. num_nodes-1] mirror subject node ids (PIs fixed at pads);
    one extra fixed node per primary output (its pad). The returned array
    maps each primary-output index to its pad node id. *)

val of_mapped :
  Cals_netlist.Mapped.t ->
  floorplan:Floorplan.t ->
  t * int array * int array
(** Node layout: first all cell instances (movable), then PI pads, then PO
    pads (both fixed). Returns [(graph, pi_pad_ids, po_pad_ids)]. *)

val hpwl : t -> Cals_util.Geom.point array -> float
(** Total half-perimeter wirelength of all nets under the given positions. *)

val net_degree_stats : t -> int * float
(** [(max_degree, mean_degree)]. *)
