module Geom = Cals_util.Geom
module Span = Cals_telemetry.Span
module Metrics = Cals_telemetry.Metrics

exception Overflow of string

let m_cells = Metrics.counter ~help:"Cells legalized onto rows" "legalize_cells"

let m_displacement =
  Metrics.gauge ~help:"Total displacement of the last legalization (um)"
    "legalize_displacement_um"

type result = {
  positions : Geom.point array;
  total_displacement : float;
  row_fill : int array;
}

let run ~floorplan ~widths ~desired ~movable =
  Span.with_ ~cat:"place" "place.legalize" @@ fun () ->
  let fp = floorplan in
  let n = Array.length widths in
  if Array.length desired <> n || Array.length movable <> n then
    invalid_arg "Legalize.run: length mismatch";
  let positions = Array.copy desired in
  let next_free = Array.make fp.Floorplan.num_rows 0 in
  let order =
    Array.init n (fun i -> i)
    |> Array.to_list
    |> List.filter (fun i -> movable.(i) && widths.(i) > 0)
    |> List.sort (fun a b -> compare desired.(a).Geom.x desired.(b).Geom.x)
  in
  let site = fp.Floorplan.site_width in
  let displacement = ref 0.0 in
  (* Gaps left before a cell waste capacity; bound their total by the
     floorplan slack minus a per-row reserve of the widest cell, so by
     pigeonhole some row can always take the next cell. *)
  let total_width = List.fold_left (fun acc i -> acc + widths.(i)) 0 order in
  let max_width = List.fold_left (fun acc i -> max acc widths.(i)) 0 order in
  let slack = (fp.Floorplan.num_rows * fp.Floorplan.sites_per_row) - total_width in
  let gap_budget = ref (max 0 (slack - (fp.Floorplan.num_rows * max_width))) in
  let place_cell i =
    let w = widths.(i) in
    let want = desired.(i) in
    let best = ref None in
    for r = 0 to fp.Floorplan.num_rows - 1 do
      let raw = max next_free.(r) (int_of_float (want.Geom.x /. site) - (w / 2)) in
      let start_site = min raw (next_free.(r) + !gap_budget) in
      let start_site =
        if start_site + w > fp.Floorplan.sites_per_row then
          fp.Floorplan.sites_per_row - w
        else start_site
      in
      if start_site >= next_free.(r) && start_site >= 0 then begin
        let x = (float_of_int start_site +. (float_of_int w /. 2.0)) *. site in
        let y = Floorplan.row_y fp r in
        let cost = abs_float (x -. want.Geom.x) +. abs_float (y -. want.Geom.y) in
        match !best with
        | Some (bcost, _, _) when bcost <= cost -> ()
        | Some _ | None -> best := Some (cost, r, start_site)
      end
    done;
    (* Fallback: when every preferred spot overshoots its row, take the
       emptiest row regardless of displacement (packing guarantee). *)
    (if !best = None then begin
       let r = ref (-1) in
       for cand = 0 to fp.Floorplan.num_rows - 1 do
         if !r < 0 || next_free.(cand) < next_free.(!r) then r := cand
       done;
       if next_free.(!r) + w <= fp.Floorplan.sites_per_row then begin
         let x = (float_of_int next_free.(!r) +. (float_of_int w /. 2.0)) *. site in
         let y = Floorplan.row_y fp !r in
         let cost = abs_float (x -. want.Geom.x) +. abs_float (y -. want.Geom.y) in
         best := Some (cost, !r, next_free.(!r))
       end
     end);
    match !best with
    | None ->
      raise
        (Overflow
           (Printf.sprintf "cell %d (%d sites) fits in no row; floorplan %s" i w
              (Floorplan.describe fp)))
    | Some (cost, r, start_site) ->
      gap_budget := max 0 (!gap_budget - (start_site - next_free.(r)));
      next_free.(r) <- start_site + w;
      positions.(i) <-
        Geom.point
          ((float_of_int start_site +. (float_of_int w /. 2.0)) *. site)
          (Floorplan.row_y fp r);
      displacement := !displacement +. cost
  in
  List.iter place_cell order;
  Metrics.add m_cells (List.length order);
  Metrics.set m_displacement !displacement;
  { positions; total_displacement = !displacement; row_fill = Array.copy next_free }
