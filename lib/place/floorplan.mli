(** Floorplans: die outline, standard-cell rows and the pad ring.

    The paper's experiments fix a die size and row count per circuit and
    then ask whether each mapped netlist routes inside it; this module is
    where those constraints live. *)

type t = private {
  die_width : float;  (** µm, core width. *)
  die_height : float;  (** µm. *)
  row_height : float;
  site_width : float;
  num_rows : int;
  sites_per_row : int;
}

val make :
  die_width:float -> die_height:float -> geometry:Cals_cell.Library.geometry -> t
(** Rows fill the die height; raises [Invalid_argument] when no full row
    fits. *)

val of_rows :
  num_rows:int -> sites_per_row:int -> geometry:Cals_cell.Library.geometry -> t
(** Exact row/site grid (die dimensions derived). *)

val for_area :
  core_area:float ->
  utilization:float ->
  aspect:float ->
  geometry:Cals_cell.Library.geometry ->
  t
(** Square-ish die sized so that [core_area] occupies [utilization] of it;
    [aspect] = width / height. *)

val core_area : t -> float
(** [die_width *. die_height], µm². *)

val row_y : t -> int -> float
(** Center y of row [i]. *)

val row_of_y : t -> float -> int option
(** Inverse of {!row_y}: the row whose center is [y] (within 1e-6 µm),
    or [None] when [y] sits on no row — the placement-legality checkers'
    way of asking "is this cell row-aligned?". *)

val utilization : t -> cell_area:float -> float
(** Fraction of the core covered by [cell_area]. *)

val pad_positions : t -> names:string array -> Cals_util.Geom.point array
(** Deterministic pad ring: the [i]-th name is placed on the die perimeter,
    clockwise from the lower-left corner, evenly spaced. *)

val contains : t -> Cals_util.Geom.point -> bool
(** Whether a point lies on the die outline (borders included). *)

val describe : t -> string
(** One line for logs: dimensions, core area, rows and sites. *)
