type t = {
  die_width : float;
  die_height : float;
  row_height : float;
  site_width : float;
  num_rows : int;
  sites_per_row : int;
}

let make ~die_width ~die_height ~geometry =
  let row_height = geometry.Cals_cell.Library.row_height in
  let site_width = geometry.Cals_cell.Library.site_width in
  let num_rows = int_of_float (die_height /. row_height) in
  let sites_per_row = int_of_float (die_width /. site_width) in
  if num_rows < 1 || sites_per_row < 1 then
    invalid_arg "Floorplan.make: die smaller than one row";
  { die_width; die_height; row_height; site_width; num_rows; sites_per_row }

let of_rows ~num_rows ~sites_per_row ~geometry =
  if num_rows < 1 || sites_per_row < 1 then invalid_arg "Floorplan.of_rows";
  let row_height = geometry.Cals_cell.Library.row_height in
  let site_width = geometry.Cals_cell.Library.site_width in
  {
    die_width = float_of_int sites_per_row *. site_width;
    die_height = float_of_int num_rows *. row_height;
    row_height;
    site_width;
    num_rows;
    sites_per_row;
  }

let for_area ~core_area ~utilization ~aspect ~geometry =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Floorplan.for_area: utilization";
  let die_area = core_area /. utilization in
  let die_height = sqrt (die_area /. aspect) in
  let die_width = aspect *. die_height in
  (* Snap to whole rows and sites so utilization is well defined. *)
  let row_height = geometry.Cals_cell.Library.row_height in
  let site_width = geometry.Cals_cell.Library.site_width in
  let num_rows = max 1 (int_of_float (ceil (die_height /. row_height))) in
  let sites_per_row = max 1 (int_of_float (ceil (die_width /. site_width))) in
  of_rows ~num_rows ~sites_per_row ~geometry

let core_area t = t.die_width *. t.die_height
let row_y t i = (float_of_int i +. 0.5) *. t.row_height

let row_of_y t y =
  let r = int_of_float (Float.round ((y /. t.row_height) -. 0.5)) in
  if r < 0 || r >= t.num_rows || abs_float (y -. row_y t r) > 1e-6 then None
  else Some r
let utilization t ~cell_area = cell_area /. core_area t

let pad_positions t ~names =
  let n = Array.length names in
  let perimeter = 2.0 *. (t.die_width +. t.die_height) in
  Array.init n (fun i ->
      let d = (float_of_int i +. 0.5) *. perimeter /. float_of_int (max 1 n) in
      if d < t.die_width then Cals_util.Geom.point d 0.0
      else if d < t.die_width +. t.die_height then
        Cals_util.Geom.point t.die_width (d -. t.die_width)
      else if d < (2.0 *. t.die_width) +. t.die_height then
        Cals_util.Geom.point ((2.0 *. t.die_width) +. t.die_height -. d) t.die_height
      else Cals_util.Geom.point 0.0 (perimeter -. d))

let contains t p =
  p.Cals_util.Geom.x >= 0.0
  && p.Cals_util.Geom.x <= t.die_width
  && p.Cals_util.Geom.y >= 0.0
  && p.Cals_util.Geom.y <= t.die_height

let describe t =
  Printf.sprintf "%.0fx%.0fum (%.0f um2), %d rows of %d sites" t.die_width
    t.die_height (core_area t) t.num_rows t.sites_per_row
