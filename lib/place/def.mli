(** DEF (Design Exchange Format) export of a placed mapped netlist.

    Emits the subset other physical-design tools read: DIEAREA, ROW
    statements, placed COMPONENTS, PINS on the pad ring and NETS. Distances
    use the conventional 1000 database units per micron. *)

val print :
  ?design:string ->
  Cals_netlist.Mapped.t ->
  floorplan:Floorplan.t ->
  placement:Placement.mapped_placement ->
  string
(** The DEF text for a placed netlist. [design] (default ["mapped"])
    names the DESIGN statement. *)

val write_file :
  ?design:string ->
  string ->
  Cals_netlist.Mapped.t ->
  floorplan:Floorplan.t ->
  placement:Placement.mapped_placement ->
  unit
(** {!print} to a file (truncating). *)
