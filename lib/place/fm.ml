type problem = {
  weights : int array;
  nets : int array array;
  locked : int option array;
}

module Metrics = Cals_telemetry.Metrics

let m_passes = Metrics.counter ~help:"FM bipartition passes run" "fm_passes"

let m_moves =
  Metrics.counter ~help:"FM gain-bucket moves applied (before rollback)"
    "fm_moves"

let m_improvement =
  Metrics.histogram ~help:"Cut-size improvement per FM pass"
    ~buckets:[| 0.0; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
    "fm_pass_improvement"

let cut_size p side =
  Array.fold_left
    (fun acc net ->
      let has0 = Array.exists (fun v -> side.(v) = 0) net in
      let has1 = Array.exists (fun v -> side.(v) = 1) net in
      if has0 && has1 then acc + 1 else acc)
    0 p.nets

(* Doubly-linked gain buckets over a fixed gain range. *)
type buckets = {
  offset : int;
  head : int array;  (** head.(g + offset) = first node or -1. *)
  prev : int array;
  next : int array;
  gain : int array;
  in_bucket : bool array;
  mutable max_gain : int;  (** Upper bound on the best non-empty bucket. *)
}

let buckets_create n max_deg =
  {
    offset = max_deg;
    head = Array.make ((2 * max_deg) + 1) (-1);
    prev = Array.make n (-1);
    next = Array.make n (-1);
    gain = Array.make n 0;
    in_bucket = Array.make n false;
    max_gain = -max_deg;
  }

let bucket_insert b v g =
  let idx = g + b.offset in
  b.gain.(v) <- g;
  b.prev.(v) <- -1;
  b.next.(v) <- b.head.(idx);
  if b.head.(idx) >= 0 then b.prev.(b.head.(idx)) <- v;
  b.head.(idx) <- v;
  b.in_bucket.(v) <- true;
  if g > b.max_gain then b.max_gain <- g

let bucket_remove b v =
  if b.in_bucket.(v) then begin
    let idx = b.gain.(v) + b.offset in
    if b.prev.(v) >= 0 then b.next.(b.prev.(v)) <- b.next.(v)
    else b.head.(idx) <- b.next.(v);
    if b.next.(v) >= 0 then b.prev.(b.next.(v)) <- b.prev.(v);
    b.in_bucket.(v) <- false
  end

let bucket_update b v g =
  if b.in_bucket.(v) then begin
    bucket_remove b v;
    bucket_insert b v g
  end

(* Pop the best node satisfying [ok]; returns -1 when none. *)
let bucket_best b ok =
  let rec scan g =
    if g + b.offset < 0 then -1
    else begin
      let rec walk v = if v < 0 then -1 else if ok v then v else walk b.next.(v) in
      match walk b.head.(g + b.offset) with
      | -1 -> scan (g - 1)
      | v ->
        b.max_gain <- g;
        v
    end
  in
  scan b.max_gain

let bipartition ?(max_passes = 8) ?(balance_tolerance = 0.1) ~rng p =
  let n = Array.length p.weights in
  let side = Array.make n 0 in
  let total_weight = Array.fold_left ( + ) 0 p.weights in
  let side_weight = [| 0; 0 |] in
  (* Initial: locked nodes first, then randomized greedy fill of the
     lighter side. *)
  let order = Array.init n (fun i -> i) in
  Cals_util.Rng.shuffle rng order;
  Array.iteri
    (fun i lock ->
      match lock with
      | Some s ->
        side.(i) <- s;
        side_weight.(s) <- side_weight.(s) + p.weights.(i)
      | None -> ())
    p.locked;
  Array.iter
    (fun i ->
      match p.locked.(i) with
      | Some _ -> ()
      | None ->
        let s = if side_weight.(0) <= side_weight.(1) then 0 else 1 in
        side.(i) <- s;
        side_weight.(s) <- side_weight.(s) + p.weights.(i))
    order;
  (* Node -> incident net ids. *)
  let degree = Array.make n 0 in
  Array.iter (fun net -> Array.iter (fun v -> degree.(v) <- degree.(v) + 1) net) p.nets;
  let incident = Array.map (fun d -> Array.make d 0) degree in
  let fill = Array.make n 0 in
  Array.iteri
    (fun ni net ->
      Array.iter
        (fun v ->
          incident.(v).(fill.(v)) <- ni;
          fill.(v) <- fill.(v) + 1)
        net)
    p.nets;
  let max_deg = Array.fold_left max 1 degree in
  let counts = Array.make_matrix (Array.length p.nets) 2 0 in
  let recount () =
    Array.iteri
      (fun ni net ->
        counts.(ni).(0) <- 0;
        counts.(ni).(1) <- 0;
        Array.iter (fun v -> counts.(ni).(side.(v)) <- counts.(ni).(side.(v)) + 1) net)
      p.nets
  in
  let node_gain v =
    let s = side.(v) in
    Array.fold_left
      (fun acc ni ->
        let f = counts.(ni).(s) and t = counts.(ni).(1 - s) in
        let acc = if f = 1 then acc + 1 else acc in
        if t = 0 then acc - 1 else acc)
      0 incident.(v)
  in
  let limit =
    int_of_float ((0.5 +. balance_tolerance) *. float_of_int total_weight)
  in
  let balanced_after v =
    let s = side.(v) in
    side_weight.(1 - s) + p.weights.(v) <= max limit (p.weights.(v))
  in
  let current_cut () =
    Array.fold_left
      (fun acc c -> if c.(0) > 0 && c.(1) > 0 then acc + 1 else acc)
      0 counts
  in
  let pass () =
    recount ();
    let b = buckets_create n max_deg in
    let locked_now = Array.make n false in
    Array.iteri
      (fun v lock ->
        match lock with
        | Some _ -> locked_now.(v) <- true
        | None -> bucket_insert b v (node_gain v))
      p.locked;
    let start_cut = current_cut () in
    let best_cut = ref start_cut and best_prefix = ref 0 in
    let moves = ref [] and nmoves = ref 0 in
    let cut = ref start_cut in
    let continue = ref true in
    while !continue do
      let v = bucket_best b (fun v -> (not locked_now.(v)) && balanced_after v) in
      if v < 0 then continue := false
      else begin
        bucket_remove b v;
        locked_now.(v) <- true;
        let s = side.(v) in
        let t = 1 - s in
        (* Gain updates around the move (standard FM increments). *)
        Array.iter
          (fun ni ->
            let net = p.nets.(ni) in
            let sc_old = counts.(ni).(s) in
            let tc = counts.(ni).(t) in
            if tc = 0 then
              Array.iter
                (fun u ->
                  if (not locked_now.(u)) && b.in_bucket.(u) then
                    bucket_update b u (b.gain.(u) + 1))
                net
            else if tc = 1 then
              Array.iter
                (fun u ->
                  if side.(u) = t && (not locked_now.(u)) && b.in_bucket.(u) then
                    bucket_update b u (b.gain.(u) - 1))
                net;
            counts.(ni).(s) <- counts.(ni).(s) - 1;
            counts.(ni).(t) <- counts.(ni).(t) + 1;
            let fc = counts.(ni).(s) in
            if fc = 0 then
              Array.iter
                (fun u ->
                  if (not locked_now.(u)) && b.in_bucket.(u) then
                    bucket_update b u (b.gain.(u) - 1))
                net
            else if fc = 1 then
              Array.iter
                (fun u ->
                  if side.(u) = s && u <> v && (not locked_now.(u)) && b.in_bucket.(u)
                  then bucket_update b u (b.gain.(u) + 1))
                net;
            (* Maintain the cut count incrementally: after the move the
               to-side is non-empty, so the net is cut iff pins remain on
               the from-side. *)
            let was_cut = sc_old > 0 && tc > 0 in
            let is_cut = sc_old - 1 > 0 in
            if was_cut && not is_cut then decr cut
            else if (not was_cut) && is_cut then incr cut)
          incident.(v);
        side.(v) <- t;
        side_weight.(s) <- side_weight.(s) - p.weights.(v);
        side_weight.(t) <- side_weight.(t) + p.weights.(v);
        moves := v :: !moves;
        incr nmoves;
        if !cut < !best_cut then begin
          best_cut := !cut;
          best_prefix := !nmoves
        end
      end
    done;
    (* Roll back the moves after the best prefix. *)
    let to_undo = !nmoves - !best_prefix in
    let rec undo k = function
      | [] -> ()
      | v :: rest ->
        if k > 0 then begin
          let s = side.(v) in
          side.(v) <- 1 - s;
          side_weight.(s) <- side_weight.(s) - p.weights.(v);
          side_weight.(1 - s) <- side_weight.(1 - s) + p.weights.(v);
          undo (k - 1) rest
        end
    in
    undo to_undo !moves;
    Metrics.incr m_passes;
    Metrics.add m_moves !nmoves;
    Metrics.observe m_improvement (float_of_int (start_cut - !best_cut));
    start_cut - !best_cut
  in
  let rec loop i =
    if i < max_passes then begin
      let improvement = pass () in
      if improvement > 0 then loop (i + 1)
    end
  in
  loop 0;
  side
